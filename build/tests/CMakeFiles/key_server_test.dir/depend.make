# Empty dependencies file for key_server_test.
# This may be replaced when dependencies are built.
