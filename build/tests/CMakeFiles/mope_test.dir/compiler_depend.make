# Empty compiler generated dependencies file for mope_test.
# This may be replaced when dependencies are built.
