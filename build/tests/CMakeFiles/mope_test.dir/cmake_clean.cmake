file(REMOVE_RECURSE
  "CMakeFiles/mope_test.dir/mope_test.cpp.o"
  "CMakeFiles/mope_test.dir/mope_test.cpp.o.d"
  "mope_test"
  "mope_test.pdb"
  "mope_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
