file(REMOVE_RECURSE
  "CMakeFiles/ope_test.dir/ope_test.cpp.o"
  "CMakeFiles/ope_test.dir/ope_test.cpp.o.d"
  "ope_test"
  "ope_test.pdb"
  "ope_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
