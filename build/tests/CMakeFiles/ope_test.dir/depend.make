# Empty dependencies file for ope_test.
# This may be replaced when dependencies are built.
