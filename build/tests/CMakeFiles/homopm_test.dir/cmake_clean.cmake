file(REMOVE_RECURSE
  "CMakeFiles/homopm_test.dir/homopm_test.cpp.o"
  "CMakeFiles/homopm_test.dir/homopm_test.cpp.o.d"
  "homopm_test"
  "homopm_test.pdb"
  "homopm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homopm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
