# Empty compiler generated dependencies file for homopm_test.
# This may be replaced when dependencies are built.
