file(REMOVE_RECURSE
  "CMakeFiles/entropy_map_test.dir/entropy_map_test.cpp.o"
  "CMakeFiles/entropy_map_test.dir/entropy_map_test.cpp.o.d"
  "entropy_map_test"
  "entropy_map_test.pdb"
  "entropy_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entropy_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
