# Empty compiler generated dependencies file for entropy_map_test.
# This may be replaced when dependencies are built.
