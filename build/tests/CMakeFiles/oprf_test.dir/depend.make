# Empty dependencies file for oprf_test.
# This may be replaced when dependencies are built.
