file(REMOVE_RECURSE
  "CMakeFiles/oprf_test.dir/oprf_test.cpp.o"
  "CMakeFiles/oprf_test.dir/oprf_test.cpp.o.d"
  "oprf_test"
  "oprf_test.pdb"
  "oprf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oprf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
