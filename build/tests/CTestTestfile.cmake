# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bigint_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/gf_test[1]_include.cmake")
include("/root/repo/build/tests/ope_test[1]_include.cmake")
include("/root/repo/build/tests/oprf_test[1]_include.cmake")
include("/root/repo/build/tests/paillier_test[1]_include.cmake")
include("/root/repo/build/tests/group_test[1]_include.cmake")
include("/root/repo/build/tests/entropy_map_test[1]_include.cmake")
include("/root/repo/build/tests/chain_test[1]_include.cmake")
include("/root/repo/build/tests/keygen_test[1]_include.cmake")
include("/root/repo/build/tests/auth_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/datasets_test[1]_include.cmake")
include("/root/repo/build/tests/homopm_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/mope_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/related_work_test[1]_include.cmake")
include("/root/repo/build/tests/key_server_test[1]_include.cmake")
include("/root/repo/build/tests/secure_channel_test[1]_include.cmake")
include("/root/repo/build/tests/serde_test[1]_include.cmake")
