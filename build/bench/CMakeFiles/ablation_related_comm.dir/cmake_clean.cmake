file(REMOVE_RECURSE
  "CMakeFiles/ablation_related_comm.dir/ablation_related_comm.cpp.o"
  "CMakeFiles/ablation_related_comm.dir/ablation_related_comm.cpp.o.d"
  "ablation_related_comm"
  "ablation_related_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_related_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
