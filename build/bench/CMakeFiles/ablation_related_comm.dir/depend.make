# Empty dependencies file for ablation_related_comm.
# This may be replaced when dependencies are built.
