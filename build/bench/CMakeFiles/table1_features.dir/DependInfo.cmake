
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_features.cpp" "bench/CMakeFiles/table1_features.dir/table1_features.cpp.o" "gcc" "bench/CMakeFiles/table1_features.dir/table1_features.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/smatch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/smatch_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/smatch_net.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/smatch_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/smatch_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/oprf/CMakeFiles/smatch_oprf.dir/DependInfo.cmake"
  "/root/repo/build/src/group/CMakeFiles/smatch_group.dir/DependInfo.cmake"
  "/root/repo/build/src/ope/CMakeFiles/smatch_ope.dir/DependInfo.cmake"
  "/root/repo/build/src/paillier/CMakeFiles/smatch_paillier.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/smatch_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/smatch_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smatch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
