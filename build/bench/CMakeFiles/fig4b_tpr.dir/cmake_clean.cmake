file(REMOVE_RECURSE
  "CMakeFiles/fig4b_tpr.dir/fig4b_tpr.cpp.o"
  "CMakeFiles/fig4b_tpr.dir/fig4b_tpr.cpp.o.d"
  "fig4b_tpr"
  "fig4b_tpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_tpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
