# Empty dependencies file for fig4b_tpr.
# This may be replaced when dependencies are built.
