file(REMOVE_RECURSE
  "CMakeFiles/ablation_mope_interaction.dir/ablation_mope_interaction.cpp.o"
  "CMakeFiles/ablation_mope_interaction.dir/ablation_mope_interaction.cpp.o.d"
  "ablation_mope_interaction"
  "ablation_mope_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mope_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
