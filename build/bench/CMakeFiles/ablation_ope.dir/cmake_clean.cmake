file(REMOVE_RECURSE
  "CMakeFiles/ablation_ope.dir/ablation_ope.cpp.o"
  "CMakeFiles/ablation_ope.dir/ablation_ope.cpp.o.d"
  "ablation_ope"
  "ablation_ope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
