# Empty dependencies file for ablation_ope.
# This may be replaced when dependencies are built.
