file(REMOVE_RECURSE
  "CMakeFiles/ablation_pipeline_leakage.dir/ablation_pipeline_leakage.cpp.o"
  "CMakeFiles/ablation_pipeline_leakage.dir/ablation_pipeline_leakage.cpp.o.d"
  "ablation_pipeline_leakage"
  "ablation_pipeline_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pipeline_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
