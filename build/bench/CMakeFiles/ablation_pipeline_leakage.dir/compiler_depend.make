# Empty compiler generated dependencies file for ablation_pipeline_leakage.
# This may be replaced when dependencies are built.
