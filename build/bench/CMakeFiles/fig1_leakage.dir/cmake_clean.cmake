file(REMOVE_RECURSE
  "CMakeFiles/fig1_leakage.dir/fig1_leakage.cpp.o"
  "CMakeFiles/fig1_leakage.dir/fig1_leakage.cpp.o.d"
  "fig1_leakage"
  "fig1_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
