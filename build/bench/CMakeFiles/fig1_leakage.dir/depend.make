# Empty dependencies file for fig1_leakage.
# This may be replaced when dependencies are built.
