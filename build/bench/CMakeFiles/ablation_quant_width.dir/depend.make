# Empty dependencies file for ablation_quant_width.
# This may be replaced when dependencies are built.
