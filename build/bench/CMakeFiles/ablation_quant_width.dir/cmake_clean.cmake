file(REMOVE_RECURSE
  "CMakeFiles/ablation_quant_width.dir/ablation_quant_width.cpp.o"
  "CMakeFiles/ablation_quant_width.dir/ablation_quant_width.cpp.o.d"
  "ablation_quant_width"
  "ablation_quant_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quant_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
