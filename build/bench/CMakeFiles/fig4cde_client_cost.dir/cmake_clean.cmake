file(REMOVE_RECURSE
  "CMakeFiles/fig4cde_client_cost.dir/fig4cde_client_cost.cpp.o"
  "CMakeFiles/fig4cde_client_cost.dir/fig4cde_client_cost.cpp.o.d"
  "fig4cde_client_cost"
  "fig4cde_client_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4cde_client_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
