# Empty compiler generated dependencies file for fig4cde_client_cost.
# This may be replaced when dependencies are built.
