file(REMOVE_RECURSE
  "CMakeFiles/fig5def_comm_cost.dir/fig5def_comm_cost.cpp.o"
  "CMakeFiles/fig5def_comm_cost.dir/fig5def_comm_cost.cpp.o.d"
  "fig5def_comm_cost"
  "fig5def_comm_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5def_comm_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
