# Empty dependencies file for fig5def_comm_cost.
# This may be replaced when dependencies are built.
