file(REMOVE_RECURSE
  "CMakeFiles/fig5abc_server_cost.dir/fig5abc_server_cost.cpp.o"
  "CMakeFiles/fig5abc_server_cost.dir/fig5abc_server_cost.cpp.o.d"
  "fig5abc_server_cost"
  "fig5abc_server_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5abc_server_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
