# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig5abc_server_cost.
