# Empty compiler generated dependencies file for fig5abc_server_cost.
# This may be replaced when dependencies are built.
