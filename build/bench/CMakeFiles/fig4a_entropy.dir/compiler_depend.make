# Empty compiler generated dependencies file for fig4a_entropy.
# This may be replaced when dependencies are built.
