file(REMOVE_RECURSE
  "CMakeFiles/fig4a_entropy.dir/fig4a_entropy.cpp.o"
  "CMakeFiles/fig4a_entropy.dir/fig4a_entropy.cpp.o.d"
  "fig4a_entropy"
  "fig4a_entropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
