# Empty dependencies file for ablation_keygen_breakdown.
# This may be replaced when dependencies are built.
