file(REMOVE_RECURSE
  "CMakeFiles/ablation_keygen_breakdown.dir/ablation_keygen_breakdown.cpp.o"
  "CMakeFiles/ablation_keygen_breakdown.dir/ablation_keygen_breakdown.cpp.o.d"
  "ablation_keygen_breakdown"
  "ablation_keygen_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_keygen_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
