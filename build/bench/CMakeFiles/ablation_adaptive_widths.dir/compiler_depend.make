# Empty compiler generated dependencies file for ablation_adaptive_widths.
# This may be replaced when dependencies are built.
