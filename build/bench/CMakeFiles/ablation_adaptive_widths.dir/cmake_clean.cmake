file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptive_widths.dir/ablation_adaptive_widths.cpp.o"
  "CMakeFiles/ablation_adaptive_widths.dir/ablation_adaptive_widths.cpp.o.d"
  "ablation_adaptive_widths"
  "ablation_adaptive_widths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_widths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
