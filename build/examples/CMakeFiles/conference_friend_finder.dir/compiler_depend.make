# Empty compiler generated dependencies file for conference_friend_finder.
# This may be replaced when dependencies are built.
