file(REMOVE_RECURSE
  "CMakeFiles/conference_friend_finder.dir/conference_friend_finder.cpp.o"
  "CMakeFiles/conference_friend_finder.dir/conference_friend_finder.cpp.o.d"
  "conference_friend_finder"
  "conference_friend_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conference_friend_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
