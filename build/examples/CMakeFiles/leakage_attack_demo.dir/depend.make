# Empty dependencies file for leakage_attack_demo.
# This may be replaced when dependencies are built.
