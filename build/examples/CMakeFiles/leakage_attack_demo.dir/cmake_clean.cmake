file(REMOVE_RECURSE
  "CMakeFiles/leakage_attack_demo.dir/leakage_attack_demo.cpp.o"
  "CMakeFiles/leakage_attack_demo.dir/leakage_attack_demo.cpp.o.d"
  "leakage_attack_demo"
  "leakage_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakage_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
