file(REMOVE_RECURSE
  "libsmatch_group.a"
)
