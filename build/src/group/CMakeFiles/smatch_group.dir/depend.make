# Empty dependencies file for smatch_group.
# This may be replaced when dependencies are built.
