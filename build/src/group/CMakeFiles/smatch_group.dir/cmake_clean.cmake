file(REMOVE_RECURSE
  "CMakeFiles/smatch_group.dir/modp_group.cpp.o"
  "CMakeFiles/smatch_group.dir/modp_group.cpp.o.d"
  "libsmatch_group.a"
  "libsmatch_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smatch_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
