# Empty compiler generated dependencies file for smatch_datasets.
# This may be replaced when dependencies are built.
