
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/dataset.cpp" "src/datasets/CMakeFiles/smatch_datasets.dir/dataset.cpp.o" "gcc" "src/datasets/CMakeFiles/smatch_datasets.dir/dataset.cpp.o.d"
  "/root/repo/src/datasets/stats.cpp" "src/datasets/CMakeFiles/smatch_datasets.dir/stats.cpp.o" "gcc" "src/datasets/CMakeFiles/smatch_datasets.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smatch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
