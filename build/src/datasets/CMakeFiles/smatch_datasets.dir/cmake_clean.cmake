file(REMOVE_RECURSE
  "CMakeFiles/smatch_datasets.dir/dataset.cpp.o"
  "CMakeFiles/smatch_datasets.dir/dataset.cpp.o.d"
  "CMakeFiles/smatch_datasets.dir/stats.cpp.o"
  "CMakeFiles/smatch_datasets.dir/stats.cpp.o.d"
  "libsmatch_datasets.a"
  "libsmatch_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smatch_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
