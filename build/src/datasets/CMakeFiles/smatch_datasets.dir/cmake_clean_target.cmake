file(REMOVE_RECURSE
  "libsmatch_datasets.a"
)
