
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gf/galois.cpp" "src/gf/CMakeFiles/smatch_gf.dir/galois.cpp.o" "gcc" "src/gf/CMakeFiles/smatch_gf.dir/galois.cpp.o.d"
  "/root/repo/src/gf/reed_solomon.cpp" "src/gf/CMakeFiles/smatch_gf.dir/reed_solomon.cpp.o" "gcc" "src/gf/CMakeFiles/smatch_gf.dir/reed_solomon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smatch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
