file(REMOVE_RECURSE
  "libsmatch_gf.a"
)
