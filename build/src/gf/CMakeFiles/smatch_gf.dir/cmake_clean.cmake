file(REMOVE_RECURSE
  "CMakeFiles/smatch_gf.dir/galois.cpp.o"
  "CMakeFiles/smatch_gf.dir/galois.cpp.o.d"
  "CMakeFiles/smatch_gf.dir/reed_solomon.cpp.o"
  "CMakeFiles/smatch_gf.dir/reed_solomon.cpp.o.d"
  "libsmatch_gf.a"
  "libsmatch_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smatch_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
