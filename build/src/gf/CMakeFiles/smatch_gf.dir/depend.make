# Empty dependencies file for smatch_gf.
# This may be replaced when dependencies are built.
