file(REMOVE_RECURSE
  "CMakeFiles/smatch_oprf.dir/rsa.cpp.o"
  "CMakeFiles/smatch_oprf.dir/rsa.cpp.o.d"
  "CMakeFiles/smatch_oprf.dir/rsa_oprf.cpp.o"
  "CMakeFiles/smatch_oprf.dir/rsa_oprf.cpp.o.d"
  "libsmatch_oprf.a"
  "libsmatch_oprf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smatch_oprf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
