file(REMOVE_RECURSE
  "libsmatch_oprf.a"
)
