# Empty dependencies file for smatch_oprf.
# This may be replaced when dependencies are built.
