# Empty compiler generated dependencies file for smatch_crypto.
# This may be replaced when dependencies are built.
