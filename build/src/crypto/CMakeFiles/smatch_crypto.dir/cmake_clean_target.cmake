file(REMOVE_RECURSE
  "libsmatch_crypto.a"
)
