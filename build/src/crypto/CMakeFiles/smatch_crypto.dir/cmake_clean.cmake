file(REMOVE_RECURSE
  "CMakeFiles/smatch_crypto.dir/aes.cpp.o"
  "CMakeFiles/smatch_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/smatch_crypto.dir/drbg.cpp.o"
  "CMakeFiles/smatch_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/smatch_crypto.dir/hmac.cpp.o"
  "CMakeFiles/smatch_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/smatch_crypto.dir/sha2.cpp.o"
  "CMakeFiles/smatch_crypto.dir/sha2.cpp.o.d"
  "libsmatch_crypto.a"
  "libsmatch_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smatch_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
