# Empty dependencies file for smatch_common.
# This may be replaced when dependencies are built.
