file(REMOVE_RECURSE
  "libsmatch_common.a"
)
