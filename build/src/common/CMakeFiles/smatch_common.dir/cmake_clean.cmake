file(REMOVE_RECURSE
  "CMakeFiles/smatch_common.dir/bytes.cpp.o"
  "CMakeFiles/smatch_common.dir/bytes.cpp.o.d"
  "CMakeFiles/smatch_common.dir/serde.cpp.o"
  "CMakeFiles/smatch_common.dir/serde.cpp.o.d"
  "libsmatch_common.a"
  "libsmatch_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smatch_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
