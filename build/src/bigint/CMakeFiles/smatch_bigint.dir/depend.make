# Empty dependencies file for smatch_bigint.
# This may be replaced when dependencies are built.
