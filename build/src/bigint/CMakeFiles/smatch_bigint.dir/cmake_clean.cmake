file(REMOVE_RECURSE
  "CMakeFiles/smatch_bigint.dir/bigint.cpp.o"
  "CMakeFiles/smatch_bigint.dir/bigint.cpp.o.d"
  "CMakeFiles/smatch_bigint.dir/prime.cpp.o"
  "CMakeFiles/smatch_bigint.dir/prime.cpp.o.d"
  "libsmatch_bigint.a"
  "libsmatch_bigint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smatch_bigint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
