file(REMOVE_RECURSE
  "libsmatch_bigint.a"
)
