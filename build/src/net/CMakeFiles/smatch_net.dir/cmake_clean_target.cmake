file(REMOVE_RECURSE
  "libsmatch_net.a"
)
