file(REMOVE_RECURSE
  "CMakeFiles/smatch_net.dir/channel.cpp.o"
  "CMakeFiles/smatch_net.dir/channel.cpp.o.d"
  "CMakeFiles/smatch_net.dir/secure_channel.cpp.o"
  "CMakeFiles/smatch_net.dir/secure_channel.cpp.o.d"
  "libsmatch_net.a"
  "libsmatch_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smatch_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
