# Empty compiler generated dependencies file for smatch_net.
# This may be replaced when dependencies are built.
