file(REMOVE_RECURSE
  "CMakeFiles/smatch_ope.dir/mope.cpp.o"
  "CMakeFiles/smatch_ope.dir/mope.cpp.o.d"
  "CMakeFiles/smatch_ope.dir/ope.cpp.o"
  "CMakeFiles/smatch_ope.dir/ope.cpp.o.d"
  "libsmatch_ope.a"
  "libsmatch_ope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smatch_ope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
