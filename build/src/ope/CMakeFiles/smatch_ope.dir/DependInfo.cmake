
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ope/mope.cpp" "src/ope/CMakeFiles/smatch_ope.dir/mope.cpp.o" "gcc" "src/ope/CMakeFiles/smatch_ope.dir/mope.cpp.o.d"
  "/root/repo/src/ope/ope.cpp" "src/ope/CMakeFiles/smatch_ope.dir/ope.cpp.o" "gcc" "src/ope/CMakeFiles/smatch_ope.dir/ope.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bigint/CMakeFiles/smatch_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/smatch_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smatch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
