file(REMOVE_RECURSE
  "libsmatch_ope.a"
)
