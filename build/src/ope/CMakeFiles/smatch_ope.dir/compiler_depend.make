# Empty compiler generated dependencies file for smatch_ope.
# This may be replaced when dependencies are built.
