file(REMOVE_RECURSE
  "CMakeFiles/smatch_baseline.dir/homopm.cpp.o"
  "CMakeFiles/smatch_baseline.dir/homopm.cpp.o.d"
  "CMakeFiles/smatch_baseline.dir/pairwise_match.cpp.o"
  "CMakeFiles/smatch_baseline.dir/pairwise_match.cpp.o.d"
  "CMakeFiles/smatch_baseline.dir/psi_match.cpp.o"
  "CMakeFiles/smatch_baseline.dir/psi_match.cpp.o.d"
  "libsmatch_baseline.a"
  "libsmatch_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smatch_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
