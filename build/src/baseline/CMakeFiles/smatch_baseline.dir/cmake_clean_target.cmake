file(REMOVE_RECURSE
  "libsmatch_baseline.a"
)
