# Empty dependencies file for smatch_baseline.
# This may be replaced when dependencies are built.
