file(REMOVE_RECURSE
  "libsmatch_core.a"
)
