# Empty dependencies file for smatch_core.
# This may be replaced when dependencies are built.
