
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/smatch_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/smatch_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/auth.cpp" "src/core/CMakeFiles/smatch_core.dir/auth.cpp.o" "gcc" "src/core/CMakeFiles/smatch_core.dir/auth.cpp.o.d"
  "/root/repo/src/core/chain.cpp" "src/core/CMakeFiles/smatch_core.dir/chain.cpp.o" "gcc" "src/core/CMakeFiles/smatch_core.dir/chain.cpp.o.d"
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/smatch_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/smatch_core.dir/client.cpp.o.d"
  "/root/repo/src/core/entropy_map.cpp" "src/core/CMakeFiles/smatch_core.dir/entropy_map.cpp.o" "gcc" "src/core/CMakeFiles/smatch_core.dir/entropy_map.cpp.o.d"
  "/root/repo/src/core/key_server.cpp" "src/core/CMakeFiles/smatch_core.dir/key_server.cpp.o" "gcc" "src/core/CMakeFiles/smatch_core.dir/key_server.cpp.o.d"
  "/root/repo/src/core/keygen.cpp" "src/core/CMakeFiles/smatch_core.dir/keygen.cpp.o" "gcc" "src/core/CMakeFiles/smatch_core.dir/keygen.cpp.o.d"
  "/root/repo/src/core/messages.cpp" "src/core/CMakeFiles/smatch_core.dir/messages.cpp.o" "gcc" "src/core/CMakeFiles/smatch_core.dir/messages.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/core/CMakeFiles/smatch_core.dir/server.cpp.o" "gcc" "src/core/CMakeFiles/smatch_core.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smatch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/smatch_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/smatch_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/smatch_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/group/CMakeFiles/smatch_group.dir/DependInfo.cmake"
  "/root/repo/build/src/oprf/CMakeFiles/smatch_oprf.dir/DependInfo.cmake"
  "/root/repo/build/src/ope/CMakeFiles/smatch_ope.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/smatch_datasets.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
