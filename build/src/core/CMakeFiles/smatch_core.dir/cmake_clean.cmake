file(REMOVE_RECURSE
  "CMakeFiles/smatch_core.dir/adaptive.cpp.o"
  "CMakeFiles/smatch_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/smatch_core.dir/auth.cpp.o"
  "CMakeFiles/smatch_core.dir/auth.cpp.o.d"
  "CMakeFiles/smatch_core.dir/chain.cpp.o"
  "CMakeFiles/smatch_core.dir/chain.cpp.o.d"
  "CMakeFiles/smatch_core.dir/client.cpp.o"
  "CMakeFiles/smatch_core.dir/client.cpp.o.d"
  "CMakeFiles/smatch_core.dir/entropy_map.cpp.o"
  "CMakeFiles/smatch_core.dir/entropy_map.cpp.o.d"
  "CMakeFiles/smatch_core.dir/key_server.cpp.o"
  "CMakeFiles/smatch_core.dir/key_server.cpp.o.d"
  "CMakeFiles/smatch_core.dir/keygen.cpp.o"
  "CMakeFiles/smatch_core.dir/keygen.cpp.o.d"
  "CMakeFiles/smatch_core.dir/messages.cpp.o"
  "CMakeFiles/smatch_core.dir/messages.cpp.o.d"
  "CMakeFiles/smatch_core.dir/server.cpp.o"
  "CMakeFiles/smatch_core.dir/server.cpp.o.d"
  "libsmatch_core.a"
  "libsmatch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smatch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
