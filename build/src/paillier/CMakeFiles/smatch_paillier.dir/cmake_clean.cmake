file(REMOVE_RECURSE
  "CMakeFiles/smatch_paillier.dir/paillier.cpp.o"
  "CMakeFiles/smatch_paillier.dir/paillier.cpp.o.d"
  "libsmatch_paillier.a"
  "libsmatch_paillier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smatch_paillier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
