# Empty compiler generated dependencies file for smatch_paillier.
# This may be replaced when dependencies are built.
