file(REMOVE_RECURSE
  "libsmatch_paillier.a"
)
