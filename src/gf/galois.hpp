// Galois field GF(2^m) arithmetic with log/antilog tables.
//
// The S-MATCH fuzzy key generation runs Reed-Solomon decoding over
// GF(2^10) ("n = 2^10 as Galois Field GF(10) is utilized" in the paper);
// this implementation supports any m in [3, 16].
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace smatch {

class GaloisField {
 public:
  using Elem = std::uint16_t;

  /// Constructs GF(2^m) with the default primitive polynomial for m.
  explicit GaloisField(unsigned m);
  /// Constructs GF(2^m) with an explicit primitive polynomial (must have
  /// degree m and be primitive; primitivity is validated by table
  /// construction).
  GaloisField(unsigned m, std::uint32_t prim_poly);

  [[nodiscard]] unsigned m() const { return m_; }
  /// Field size 2^m.
  [[nodiscard]] std::uint32_t size() const { return 1u << m_; }
  /// Multiplicative group order 2^m - 1.
  [[nodiscard]] std::uint32_t order() const { return size() - 1; }

  /// Addition == subtraction == XOR in characteristic 2.
  [[nodiscard]] static Elem add(Elem a, Elem b) { return a ^ b; }

  [[nodiscard]] Elem mul(Elem a, Elem b) const;
  /// Throws CryptoError on division by zero.
  [[nodiscard]] Elem div(Elem a, Elem b) const;
  /// Throws CryptoError on zero.
  [[nodiscard]] Elem inv(Elem a) const;
  /// a^e with e reduced mod the group order; 0^0 == 1.
  [[nodiscard]] Elem pow(Elem a, std::uint64_t e) const;
  /// alpha^i for the primitive element alpha (i may be any integer,
  /// reduced mod order).
  [[nodiscard]] Elem alpha_pow(std::int64_t i) const;
  /// Discrete log base alpha; throws CryptoError on zero.
  [[nodiscard]] std::uint32_t log(Elem a) const;

 private:
  void build_tables(std::uint32_t prim_poly);

  unsigned m_;
  std::vector<Elem> exp_;           // alpha^i, doubled for wraparound-free mul
  std::vector<std::uint32_t> log_;  // log table, log_[0] unused
};

/// Polynomials over GF(2^m), coefficient order: c[0] + c[1] x + ...
namespace gfpoly {

using Poly = std::vector<GaloisField::Elem>;

/// Drops trailing zero coefficients.
void trim(Poly& p);
[[nodiscard]] std::size_t degree(const Poly& p);  // 0 for the zero poly
[[nodiscard]] Poly add(const Poly& a, const Poly& b);
[[nodiscard]] Poly mul(const GaloisField& gf, const Poly& a, const Poly& b);
/// Remainder of a mod b; b must be non-zero.
[[nodiscard]] Poly mod(const GaloisField& gf, const Poly& a, const Poly& b);
[[nodiscard]] GaloisField::Elem eval(const GaloisField& gf, const Poly& p, GaloisField::Elem x);
/// Formal derivative (in characteristic 2 every even-power term vanishes).
[[nodiscard]] Poly derivative(const Poly& p);

}  // namespace gfpoly

}  // namespace smatch
