// Reed-Solomon (n, k) codes over GF(2^m): systematic encoder and a
// Berlekamp-Massey + Chien + Forney decoder.
//
// S-MATCH uses RS *decoding* as a fuzzy quantizer: a profile vector is
// treated as a noisy codeword, and profiles within the decoding radius
// theta snap to the same codeword, from which the shared profile key is
// derived (paper Section VI, "Key Generation").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "gf/galois.hpp"

namespace smatch {

class ReedSolomon {
 public:
  using Elem = GaloisField::Elem;
  using Word = std::vector<Elem>;

  /// (n, k) code over `gf`; requires k < n <= 2^m - 1 and n - k even.
  /// Corrects up to t = (n - k) / 2 symbol errors.
  ReedSolomon(GaloisField gf, std::size_t n, std::size_t k);

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] std::size_t t() const { return (n_ - k_) / 2; }
  [[nodiscard]] const GaloisField& field() const { return gf_; }

  /// Systematic encoding: returns n symbols with parity in positions
  /// [0, n-k) and the message in positions [n-k, n).
  [[nodiscard]] Word encode(std::span<const Elem> message) const;

  struct Decoded {
    Word codeword;                       // corrected, length n
    Word message;                        // systematic part, length k
    std::vector<std::size_t> error_positions;
  };

  /// Corrects up to t symbol errors; throws DecodeError beyond capacity.
  [[nodiscard]] Decoded decode(std::span<const Elem> received) const;

  /// True when `word` is a codeword (all syndromes zero).
  [[nodiscard]] bool is_codeword(std::span<const Elem> word) const;

 private:
  [[nodiscard]] std::vector<Elem> syndromes(std::span<const Elem> received) const;

  GaloisField gf_;
  std::size_t n_;
  std::size_t k_;
  gfpoly::Poly generator_;
};

}  // namespace smatch
