#include "gf/galois.hpp"

namespace smatch {
namespace {

// Default primitive polynomials for GF(2^m), m = 3..16 (from Lin & Costello
// appendix); index by m.
constexpr std::uint32_t kDefaultPoly[17] = {
    0,      0,      0,
    0xb,    // m=3:  x^3+x+1
    0x13,   // m=4:  x^4+x+1
    0x25,   // m=5:  x^5+x^2+1
    0x43,   // m=6:  x^6+x+1
    0x89,   // m=7:  x^7+x^3+1
    0x11d,  // m=8:  x^8+x^4+x^3+x^2+1
    0x211,  // m=9:  x^9+x^4+1
    0x409,  // m=10: x^10+x^3+1
    0x805,  // m=11: x^11+x^2+1
    0x1053, // m=12: x^12+x^6+x^4+x+1
    0x201b, // m=13: x^13+x^4+x^3+x+1
    0x4443, // m=14: x^14+x^10+x^6+x+1
    0x8003, // m=15: x^15+x+1
    0x1100b // m=16: x^16+x^12+x^3+x+1
};

}  // namespace

GaloisField::GaloisField(unsigned m) : GaloisField(m, kDefaultPoly[m]) {}

GaloisField::GaloisField(unsigned m, std::uint32_t prim_poly) : m_(m) {
  if (m < 3 || m > 16) throw CryptoError("GaloisField: m must be in [3,16]");
  if (prim_poly >> (m + 1) || !(prim_poly >> m)) {
    throw CryptoError("GaloisField: polynomial degree must equal m");
  }
  build_tables(prim_poly);
}

void GaloisField::build_tables(std::uint32_t prim_poly) {
  const std::uint32_t n = order();
  exp_.assign(2 * n, 0);
  log_.assign(size(), 0);
  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (i != 0 && x == 1) {
      throw CryptoError("GaloisField: polynomial is not primitive");
    }
    exp_[i] = static_cast<Elem>(x);
    exp_[i + n] = static_cast<Elem>(x);
    log_[x] = i;
    x <<= 1;
    if (x >> m_) x ^= prim_poly;
  }
}

GaloisField::Elem GaloisField::mul(Elem a, Elem b) const {
  if (a == 0 || b == 0) return 0;
  return exp_[log_[a] + log_[b]];
}

GaloisField::Elem GaloisField::div(Elem a, Elem b) const {
  if (b == 0) throw CryptoError("GaloisField: division by zero");
  if (a == 0) return 0;
  return exp_[log_[a] + order() - log_[b]];
}

GaloisField::Elem GaloisField::inv(Elem a) const {
  if (a == 0) throw CryptoError("GaloisField: zero has no inverse");
  return exp_[order() - log_[a]];
}

GaloisField::Elem GaloisField::pow(Elem a, std::uint64_t e) const {
  if (a == 0) return e == 0 ? 1 : 0;
  const std::uint64_t le = (static_cast<std::uint64_t>(log_[a]) * (e % order())) % order();
  return exp_[le];
}

GaloisField::Elem GaloisField::alpha_pow(std::int64_t i) const {
  const auto n = static_cast<std::int64_t>(order());
  std::int64_t r = i % n;
  if (r < 0) r += n;
  return exp_[static_cast<std::size_t>(r)];
}

std::uint32_t GaloisField::log(Elem a) const {
  if (a == 0) throw CryptoError("GaloisField: log of zero");
  return log_[a];
}

namespace gfpoly {

void trim(Poly& p) {
  while (!p.empty() && p.back() == 0) p.pop_back();
}

std::size_t degree(const Poly& p) {
  return p.empty() ? 0 : p.size() - 1;
}

Poly add(const Poly& a, const Poly& b) {
  Poly r(std::max(a.size(), b.size()), 0);
  for (std::size_t i = 0; i < r.size(); ++i) {
    GaloisField::Elem x = i < a.size() ? a[i] : 0;
    GaloisField::Elem y = i < b.size() ? b[i] : 0;
    r[i] = GaloisField::add(x, y);
  }
  trim(r);
  return r;
}

Poly mul(const GaloisField& gf, const Poly& a, const Poly& b) {
  if (a.empty() || b.empty()) return {};
  Poly r(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      r[i + j] = GaloisField::add(r[i + j], gf.mul(a[i], b[j]));
    }
  }
  trim(r);
  return r;
}

Poly mod(const GaloisField& gf, const Poly& a, const Poly& b) {
  Poly r = a;
  trim(r);
  Poly d = b;
  trim(d);
  if (d.empty()) throw CryptoError("gfpoly::mod: division by zero polynomial");
  while (r.size() >= d.size() && !r.empty()) {
    const GaloisField::Elem coef = gf.div(r.back(), d.back());
    const std::size_t shift = r.size() - d.size();
    for (std::size_t i = 0; i < d.size(); ++i) {
      r[shift + i] = GaloisField::add(r[shift + i], gf.mul(coef, d[i]));
    }
    trim(r);
  }
  return r;
}

GaloisField::Elem eval(const GaloisField& gf, const Poly& p, GaloisField::Elem x) {
  GaloisField::Elem acc = 0;
  for (std::size_t i = p.size(); i-- > 0;) {
    acc = GaloisField::add(gf.mul(acc, x), p[i]);
  }
  return acc;
}

Poly derivative(const Poly& p) {
  if (p.size() <= 1) return {};
  Poly r(p.size() - 1, 0);
  for (std::size_t i = 1; i < p.size(); ++i) {
    // d/dx x^i = i * x^{i-1}; in char 2 the coefficient survives only for
    // odd i.
    r[i - 1] = (i % 2 == 1) ? p[i] : 0;
  }
  trim(r);
  return r;
}

}  // namespace gfpoly
}  // namespace smatch
