#include "gf/reed_solomon.hpp"

#include <algorithm>

namespace smatch {

ReedSolomon::ReedSolomon(GaloisField gf, std::size_t n, std::size_t k)
    : gf_(std::move(gf)), n_(n), k_(k) {
  if (k >= n || n > gf_.order()) {
    throw CryptoError("ReedSolomon: require k < n <= 2^m - 1");
  }
  if ((n - k) % 2 != 0) {
    throw CryptoError("ReedSolomon: n - k must be even");
  }
  // g(x) = prod_{i=1}^{n-k} (x - alpha^i)  (first consecutive root fcr=1).
  generator_ = {1};
  for (std::size_t i = 1; i <= n - k; ++i) {
    const gfpoly::Poly factor = {gf_.alpha_pow(static_cast<std::int64_t>(i)), 1};
    generator_ = gfpoly::mul(gf_, generator_, factor);
  }
}

ReedSolomon::Word ReedSolomon::encode(std::span<const Elem> message) const {
  if (message.size() != k_) throw CryptoError("ReedSolomon: message length != k");
  for (Elem s : message) {
    if (s >= gf_.size()) throw CryptoError("ReedSolomon: symbol out of field");
  }
  // c(x) = m(x) * x^{n-k} + (m(x) * x^{n-k} mod g(x)).
  gfpoly::Poly shifted(n_, 0);
  std::copy(message.begin(), message.end(),
            shifted.begin() + static_cast<std::ptrdiff_t>(n_ - k_));
  gfpoly::Poly parity = gfpoly::mod(gf_, shifted, generator_);

  Word codeword(n_, 0);
  for (std::size_t i = 0; i < parity.size(); ++i) codeword[i] = parity[i];
  std::copy(message.begin(), message.end(),
            codeword.begin() + static_cast<std::ptrdiff_t>(n_ - k_));
  return codeword;
}

std::vector<ReedSolomon::Elem> ReedSolomon::syndromes(std::span<const Elem> received) const {
  const std::size_t num = n_ - k_;
  std::vector<Elem> s(num, 0);
  gfpoly::Poly r(received.begin(), received.end());
  for (std::size_t i = 0; i < num; ++i) {
    s[i] = gfpoly::eval(gf_, r, gf_.alpha_pow(static_cast<std::int64_t>(i + 1)));
  }
  return s;
}

bool ReedSolomon::is_codeword(std::span<const Elem> word) const {
  if (word.size() != n_) return false;
  const auto s = syndromes(word);
  return std::all_of(s.begin(), s.end(), [](Elem e) { return e == 0; });
}

ReedSolomon::Decoded ReedSolomon::decode(std::span<const Elem> received) const {
  if (received.size() != n_) throw CryptoError("ReedSolomon: word length != n");
  for (Elem s : received) {
    if (s >= gf_.size()) throw CryptoError("ReedSolomon: symbol out of field");
  }

  Decoded out;
  out.codeword.assign(received.begin(), received.end());

  const std::vector<Elem> synd = syndromes(received);
  const bool clean = std::all_of(synd.begin(), synd.end(), [](Elem e) { return e == 0; });
  if (!clean) {
    // Berlekamp-Massey: find the error locator Lambda(x).
    gfpoly::Poly lambda = {1};
    gfpoly::Poly prev_b = {1};
    std::size_t errors = 0;   // L
    std::size_t gap = 1;      // m
    Elem prev_delta = 1;      // b

    for (std::size_t step = 0; step < synd.size(); ++step) {
      Elem delta = synd[step];
      for (std::size_t i = 1; i <= errors && i < lambda.size(); ++i) {
        delta = GaloisField::add(delta, gf_.mul(lambda[i], synd[step - i]));
      }
      if (delta == 0) {
        ++gap;
        continue;
      }
      // correction = (delta / prev_delta) * x^gap * prev_b
      gfpoly::Poly correction(gap, 0);
      correction.insert(correction.end(), prev_b.begin(), prev_b.end());
      const Elem scale = gf_.div(delta, prev_delta);
      for (auto& c : correction) c = gf_.mul(c, scale);

      if (2 * errors <= step) {
        gfpoly::Poly old_lambda = lambda;
        lambda = gfpoly::add(lambda, correction);
        errors = step + 1 - errors;
        prev_b = std::move(old_lambda);
        prev_delta = delta;
        gap = 1;
      } else {
        lambda = gfpoly::add(lambda, correction);
        ++gap;
      }
    }

    const std::size_t deg = gfpoly::degree(lambda);
    if (deg > t()) throw DecodeError("ReedSolomon: too many errors (locator degree)");

    // Chien search: error at position j iff Lambda(alpha^{-j}) == 0.
    std::vector<std::size_t> positions;
    for (std::size_t j = 0; j < n_; ++j) {
      if (gfpoly::eval(gf_, lambda, gf_.alpha_pow(-static_cast<std::int64_t>(j))) == 0) {
        positions.push_back(j);
      }
    }
    if (positions.size() != deg) {
      throw DecodeError("ReedSolomon: locator roots do not match degree");
    }

    // Forney: Omega(x) = S(x) * Lambda(x) mod x^{2t}.
    gfpoly::Poly s_poly(synd.begin(), synd.end());
    gfpoly::Poly omega = gfpoly::mul(gf_, s_poly, lambda);
    if (omega.size() > n_ - k_) omega.resize(n_ - k_);
    gfpoly::trim(omega);
    const gfpoly::Poly lambda_deriv = gfpoly::derivative(lambda);

    for (std::size_t j : positions) {
      const Elem x_inv = gf_.alpha_pow(-static_cast<std::int64_t>(j));
      const Elem denom = gfpoly::eval(gf_, lambda_deriv, x_inv);
      if (denom == 0) throw DecodeError("ReedSolomon: Forney derivative is zero");
      const Elem num = gfpoly::eval(gf_, omega, x_inv);
      // fcr = 1, so the X_j^{1-fcr} factor is 1.
      const Elem magnitude = gf_.div(num, denom);
      out.codeword[j] = GaloisField::add(out.codeword[j], magnitude);
    }

    if (!is_codeword(out.codeword)) {
      throw DecodeError("ReedSolomon: correction failed (residual syndromes)");
    }
    out.error_positions = std::move(positions);
  }

  out.message.assign(out.codeword.begin() + static_cast<std::ptrdiff_t>(n_ - k_),
                     out.codeword.end());
  return out;
}

}  // namespace smatch
