// HMAC (RFC 2104) over SHA-256, plus HKDF (RFC 5869).
#pragma once

#include "common/bytes.hpp"

namespace smatch {

/// HMAC-SHA256(key, data) -> 32-byte tag.
[[nodiscard]] Bytes hmac_sha256(BytesView key, BytesView data);

/// HKDF-Extract(salt, ikm) -> 32-byte pseudorandom key.
[[nodiscard]] Bytes hkdf_extract(BytesView salt, BytesView ikm);

/// HKDF-Expand(prk, info, len) -> len bytes (len <= 255*32).
[[nodiscard]] Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t len);

/// Convenience: extract-then-expand.
[[nodiscard]] Bytes hkdf(BytesView ikm, BytesView salt, BytesView info, std::size_t len);

}  // namespace smatch
