// SHA-256 and SHA-512 (FIPS 180-4), implemented from scratch.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace smatch {

/// Incremental SHA-256.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();
  void update(BytesView data);
  /// Finalizes and returns the digest; the object must not be reused.
  [[nodiscard]] Bytes finish();

  /// One-shot convenience.
  [[nodiscard]] static Bytes hash(BytesView data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Incremental SHA-512.
class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  static constexpr std::size_t kBlockSize = 128;

  Sha512();
  void update(BytesView data);
  [[nodiscard]] Bytes finish();

  [[nodiscard]] static Bytes hash(BytesView data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint64_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace smatch
