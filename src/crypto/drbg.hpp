// Deterministic random bit generator built on the ChaCha20 core, plus a
// system-entropy-backed variant.
//
// All randomized components in S-MATCH draw through the RandomSource
// interface so experiments can be replayed bit-for-bit from a seed.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/random.hpp"

namespace smatch {

/// ChaCha20-based DRBG. Seeded with up to 32 bytes; identical seeds
/// produce identical streams.
class Drbg final : public RandomSource {
 public:
  /// Seed from raw bytes (hashed down to 32 bytes if longer).
  explicit Drbg(BytesView seed);
  /// Seed from a 64-bit value (convenience for tests/benchmarks).
  explicit Drbg(std::uint64_t seed);

  void fill(std::span<std::uint8_t> out) override;

  /// Derives an independent child generator; children with different
  /// labels produce independent streams.
  [[nodiscard]] Drbg fork(BytesView label);

 private:
  void refill();

  std::array<std::uint32_t, 16> state_{};
  std::array<std::uint8_t, 64> block_{};
  std::size_t block_pos_ = 64;  // force refill on first use
};

/// RandomSource backed by the OS entropy pool (std::random_device).
class SystemRandom final : public RandomSource {
 public:
  void fill(std::span<std::uint8_t> out) override;
};

}  // namespace smatch
