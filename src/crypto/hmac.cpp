#include "crypto/hmac.hpp"

#include "common/error.hpp"
#include "crypto/sha2.hpp"

namespace smatch {

Bytes hmac_sha256(BytesView key, BytesView data) {
  Bytes k(Sha256::kBlockSize, 0);
  if (key.size() > Sha256::kBlockSize) {
    const Bytes hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  Bytes ipad(Sha256::kBlockSize), opad(Sha256::kBlockSize);
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const Bytes inner_digest = inner.finish();
  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

Bytes hkdf_extract(BytesView salt, BytesView ikm) {
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t len) {
  constexpr std::size_t kHashLen = Sha256::kDigestSize;
  if (len > 255 * kHashLen) throw CryptoError("hkdf_expand: output too long");
  Bytes out;
  out.reserve(len);
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < len) {
    Bytes block = t;
    append(block, info);
    block.push_back(counter++);
    t = hmac_sha256(prk, block);
    const std::size_t take = std::min(kHashLen, len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

Bytes hkdf(BytesView ikm, BytesView salt, BytesView info, std::size_t len) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, len);
}

}  // namespace smatch
