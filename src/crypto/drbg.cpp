#include "crypto/drbg.hpp"

#include <bit>
#include <cstring>
#include <random>

#include "crypto/sha2.hpp"

namespace smatch {
namespace {

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c, std::uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

void chacha20_block(const std::array<std::uint32_t, 16>& in, std::array<std::uint8_t, 64>& out) {
  std::array<std::uint32_t, 16> x = in;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[static_cast<std::size_t>(i)] + in[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(4 * i + 0)] = static_cast<std::uint8_t>(v);
    out[static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(v >> 8);
    out[static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(v >> 16);
    out[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(v >> 24);
  }
}

}  // namespace

Drbg::Drbg(BytesView seed) {
  Bytes key(32, 0);
  if (seed.size() <= 32) {
    std::copy(seed.begin(), seed.end(), key.begin());
  } else {
    key = Sha256::hash(seed);
  }
  // "expand 32-byte k" sigma constants.
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    std::uint32_t w = 0;
    std::memcpy(&w, key.data() + 4 * i, 4);
    state_[static_cast<std::size_t>(4 + i)] = w;
  }
  // Counter (words 12-13) and nonce (14-15) start at zero.
}

Drbg::Drbg(std::uint64_t seed) : Drbg([seed] {
  Bytes b(8);
  for (int i = 0; i < 8; ++i) b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(seed >> (8 * i));
  return b;
}()) {}

void Drbg::refill() {
  chacha20_block(state_, block_);
  block_pos_ = 0;
  // 64-bit block counter across words 12-13.
  if (++state_[12] == 0) ++state_[13];
}

void Drbg::fill(std::span<std::uint8_t> out) {
  std::size_t off = 0;
  while (off < out.size()) {
    if (block_pos_ == 64) refill();
    const std::size_t n = std::min(out.size() - off, 64 - block_pos_);
    std::memcpy(out.data() + off, block_.data() + block_pos_, n);
    block_pos_ += n;
    off += n;
  }
}

Drbg Drbg::fork(BytesView label) {
  // Child seed = SHA-256(parent_bytes || label): child streams are
  // independent of the parent's subsequent output.
  Bytes material = bytes(32);
  append(material, label);
  return Drbg(Sha256::hash(material));
}

void SystemRandom::fill(std::span<std::uint8_t> out) {
  static thread_local std::random_device dev;
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(dev());
  }
}

}  // namespace smatch
