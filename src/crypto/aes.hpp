// AES block cipher (FIPS 197) with 128/192/256-bit keys, plus CTR mode.
//
// CTR with a random IV is what the S-MATCH verification protocol uses for
// the authentication token ciph_v = AES_Enc(K_vp, g^s || h(g^{s*ID})).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/random.hpp"

namespace smatch {

/// Raw AES block operations. Encrypt-only is enough for CTR, but the
/// inverse cipher is provided for completeness and testing.
class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Key must be 16, 24, or 32 bytes; throws CryptoError otherwise.
  explicit Aes(BytesView key);

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

 private:
  std::array<std::uint32_t, 60> round_keys_{};
  std::array<std::uint32_t, 60> dec_round_keys_{};
  int rounds_ = 0;
};

/// AES-CTR stream: same function encrypts and decrypts.
/// `iv` is the 16-byte initial counter block, incremented big-endian.
[[nodiscard]] Bytes aes_ctr(BytesView key, BytesView iv, BytesView data);

/// Encrypts with a random IV; output is IV || ciphertext.
[[nodiscard]] Bytes aes_ctr_encrypt(BytesView key, BytesView plaintext, RandomSource& rng);

/// Inverse of aes_ctr_encrypt; throws CryptoError when input is shorter
/// than one IV.
[[nodiscard]] Bytes aes_ctr_decrypt(BytesView key, BytesView blob);

}  // namespace smatch
