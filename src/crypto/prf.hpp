// Keyed PRF helpers.
//
// OPE needs a deterministic coin stream per (key, recursion node): we
// derive a ChaCha20 DRBG from HMAC-SHA256(key, context). Equal inputs give
// equal streams; distinct contexts give computationally independent ones.
#pragma once

#include "common/bytes.hpp"
#include "crypto/drbg.hpp"
#include "crypto/hmac.hpp"

namespace smatch {

/// A deterministic RandomSource derived from (key, context).
[[nodiscard]] inline Drbg prf_stream(BytesView key, BytesView context) {
  return Drbg(hmac_sha256(key, context));
}

/// PRF to a fixed 32-byte output (alias for HMAC-SHA256).
[[nodiscard]] inline Bytes prf(BytesView key, BytesView input) {
  return hmac_sha256(key, input);
}

}  // namespace smatch
