#include "crypto/aes.hpp"

#include <cstring>

#include "common/error.hpp"

namespace smatch {
namespace {

// GF(2^8) multiplication modulo x^8 + x^4 + x^3 + x + 1 (0x11b).
constexpr std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    const bool hi = a & 0x80;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1b;
    b >>= 1;
  }
  return p;
}

constexpr std::uint8_t gf_inv(std::uint8_t a) {
  if (a == 0) return 0;
  // a^254 = a^-1 in GF(2^8).
  std::uint8_t result = 1;
  std::uint8_t base = a;
  int e = 254;
  while (e) {
    if (e & 1) result = gf_mul(result, base);
    base = gf_mul(base, base);
    e >>= 1;
  }
  return result;
}

struct SboxTables {
  std::array<std::uint8_t, 256> fwd{};
  std::array<std::uint8_t, 256> inv{};
};

constexpr SboxTables make_sboxes() {
  SboxTables t{};
  for (int x = 0; x < 256; ++x) {
    const std::uint8_t b = gf_inv(static_cast<std::uint8_t>(x));
    std::uint8_t s = 0;
    for (int i = 0; i < 8; ++i) {
      const int bit = ((b >> i) & 1) ^ ((b >> ((i + 4) % 8)) & 1) ^
                      ((b >> ((i + 5) % 8)) & 1) ^ ((b >> ((i + 6) % 8)) & 1) ^
                      ((b >> ((i + 7) % 8)) & 1) ^ ((0x63 >> i) & 1);
      s = static_cast<std::uint8_t>(s | (bit << i));
    }
    t.fwd[static_cast<std::size_t>(x)] = s;
    t.inv[s] = static_cast<std::uint8_t>(x);
  }
  return t;
}

constexpr SboxTables kSbox = make_sboxes();

constexpr std::array<std::uint8_t, 11> kRcon = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                                                0x20, 0x40, 0x80, 0x1b, 0x36};

std::uint32_t sub_word(std::uint32_t w) {
  return static_cast<std::uint32_t>(kSbox.fwd[w >> 24]) << 24 |
         static_cast<std::uint32_t>(kSbox.fwd[(w >> 16) & 0xff]) << 16 |
         static_cast<std::uint32_t>(kSbox.fwd[(w >> 8) & 0xff]) << 8 |
         kSbox.fwd[w & 0xff];
}

std::uint32_t rot_word(std::uint32_t w) { return w << 8 | w >> 24; }

void add_round_key(std::uint8_t state[16], const std::uint32_t* rk) {
  for (int c = 0; c < 4; ++c) {
    state[4 * c + 0] ^= static_cast<std::uint8_t>(rk[c] >> 24);
    state[4 * c + 1] ^= static_cast<std::uint8_t>(rk[c] >> 16);
    state[4 * c + 2] ^= static_cast<std::uint8_t>(rk[c] >> 8);
    state[4 * c + 3] ^= static_cast<std::uint8_t>(rk[c]);
  }
}

void sub_bytes(std::uint8_t s[16]) {
  for (int i = 0; i < 16; ++i) s[i] = kSbox.fwd[s[i]];
}

void inv_sub_bytes(std::uint8_t s[16]) {
  for (int i = 0; i < 16; ++i) s[i] = kSbox.inv[s[i]];
}

void shift_rows(std::uint8_t s[16]) {
  // State is column-major: s[4c + r].
  std::uint8_t t[16];
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) t[4 * c + r] = s[4 * ((c + r) % 4) + r];
  }
  std::memcpy(s, t, 16);
}

void inv_shift_rows(std::uint8_t s[16]) {
  std::uint8_t t[16];
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) t[4 * ((c + r) % 4) + r] = s[4 * c + r];
  }
  std::memcpy(s, t, 16);
}

void mix_columns(std::uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3));
    col[3] = static_cast<std::uint8_t>(gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2));
  }
}

void inv_mix_columns(std::uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gf_mul(a0, 14) ^ gf_mul(a1, 11) ^ gf_mul(a2, 13) ^ gf_mul(a3, 9));
    col[1] = static_cast<std::uint8_t>(gf_mul(a0, 9) ^ gf_mul(a1, 14) ^ gf_mul(a2, 11) ^ gf_mul(a3, 13));
    col[2] = static_cast<std::uint8_t>(gf_mul(a0, 13) ^ gf_mul(a1, 9) ^ gf_mul(a2, 14) ^ gf_mul(a3, 11));
    col[3] = static_cast<std::uint8_t>(gf_mul(a0, 11) ^ gf_mul(a1, 13) ^ gf_mul(a2, 9) ^ gf_mul(a3, 14));
  }
}

}  // namespace

Aes::Aes(BytesView key) {
  const std::size_t nk = key.size() / 4;
  if (key.size() != 16 && key.size() != 24 && key.size() != 32) {
    throw CryptoError("AES key must be 16, 24, or 32 bytes");
  }
  rounds_ = static_cast<int>(nk) + 6;
  const std::size_t total_words = 4 * static_cast<std::size_t>(rounds_ + 1);

  for (std::size_t i = 0; i < nk; ++i) {
    round_keys_[i] = static_cast<std::uint32_t>(key[4 * i]) << 24 |
                     static_cast<std::uint32_t>(key[4 * i + 1]) << 16 |
                     static_cast<std::uint32_t>(key[4 * i + 2]) << 8 |
                     key[4 * i + 3];
  }
  for (std::size_t i = nk; i < total_words; ++i) {
    std::uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = sub_word(rot_word(temp)) ^ (static_cast<std::uint32_t>(kRcon[i / nk]) << 24);
    } else if (nk > 6 && i % nk == 4) {
      temp = sub_word(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }
  dec_round_keys_ = round_keys_;
}

void Aes::encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  add_round_key(s, round_keys_.data());
  for (int round = 1; round < rounds_; ++round) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, round_keys_.data() + 4 * round);
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, round_keys_.data() + 4 * rounds_);
  std::memcpy(out, s, 16);
}

void Aes::decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  add_round_key(s, dec_round_keys_.data() + 4 * rounds_);
  for (int round = rounds_ - 1; round >= 1; --round) {
    inv_shift_rows(s);
    inv_sub_bytes(s);
    add_round_key(s, dec_round_keys_.data() + 4 * round);
    inv_mix_columns(s);
  }
  inv_shift_rows(s);
  inv_sub_bytes(s);
  add_round_key(s, dec_round_keys_.data());
  std::memcpy(out, s, 16);
}

Bytes aes_ctr(BytesView key, BytesView iv, BytesView data) {
  if (iv.size() != Aes::kBlockSize) throw CryptoError("CTR IV must be 16 bytes");
  const Aes cipher(key);
  std::uint8_t counter[16];
  std::memcpy(counter, iv.data(), 16);

  Bytes out(data.size());
  std::uint8_t keystream[16];
  for (std::size_t off = 0; off < data.size(); off += 16) {
    cipher.encrypt_block(counter, keystream);
    const std::size_t n = std::min<std::size_t>(16, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) {
      out[off + i] = static_cast<std::uint8_t>(data[off + i] ^ keystream[i]);
    }
    // Big-endian increment of the counter block.
    for (int i = 15; i >= 0; --i) {
      if (++counter[i] != 0) break;
    }
  }
  return out;
}

Bytes aes_ctr_encrypt(BytesView key, BytesView plaintext, RandomSource& rng) {
  Bytes iv = rng.bytes(Aes::kBlockSize);
  Bytes ct = aes_ctr(key, iv, plaintext);
  Bytes out = std::move(iv);
  append(out, ct);
  return out;
}

Bytes aes_ctr_decrypt(BytesView key, BytesView blob) {
  if (blob.size() < Aes::kBlockSize) throw CryptoError("CTR blob shorter than IV");
  const BytesView iv = blob.subspan(0, Aes::kBlockSize);
  const BytesView ct = blob.subspan(Aes::kBlockSize);
  return aes_ctr(key, iv, ct);
}

}  // namespace smatch
