// Scoped spans and a process-wide trace buffer, exported as Chrome
// trace-event JSON (open chrome://tracing or https://ui.perfetto.dev and
// load the file).
//
// Usage on a hot path:
//
//   BigInt Ope::encrypt(const BigInt& m) const {
//     SMATCH_SPAN("ope.encrypt");
//     ...
//   }
//
// The macro plants an RAII `ScopedSpan`. When the span closes it pushes a
// complete ('X') trace event — name, thread, start, duration, nesting
// depth — into a bounded ring buffer (oldest events are overwritten under
// sustained load; `TraceBuffer::dropped()` counts the overwrites).
// `SMATCH_SPAN_HIST(name, hist)` additionally records the duration, in
// nanoseconds, into an obs::Histogram — the engines use this form so one
// clock pair feeds both the trace and the latency metrics.
//
// Cost model: tracing is off by default at runtime; a closed span then
// costs two steady_clock reads plus a couple of relaxed loads (or, for
// the _HIST form, one histogram record). `trace_begin()` arms the buffer.
// Spans also feed the slow-request exemplar recorder (obs/exemplar.hpp)
// when it is armed and the thread carries a TraceContext.
//
// Compile-time kill switch: building with -DSMATCH_OBS=OFF (cmake option;
// defines SMATCH_OBS_ENABLED=0) expands both macros to nothing — no span
// object, no clock reads, no histogram feed. Protocol bytes are identical
// either way: observability never touches RNG state or message payloads
// (tests/golden_vectors_test.cpp passes in both builds).
//
// Per-thread span stacks give each event its nesting depth; threads are
// numbered in first-span order so exported tids are small and stable.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

#ifndef SMATCH_OBS_ENABLED
#define SMATCH_OBS_ENABLED 1
#endif

namespace smatch::obs {

/// One closed span. Timestamps are steady-clock nanoseconds relative to
/// the trace_begin() call that armed the buffer.
struct TraceEvent {
  const char* name = "";        // static string supplied by SMATCH_SPAN
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint32_t thread = 0;     // small first-span-order thread number
  std::uint32_t depth = 0;      // span-stack depth at open (0 = top level)
  std::uint64_t trace_id = 0;   // cross-wire trace id (0 = no context)
};

/// Cross-wire trace context: the 16-byte (trace_id, span_id) pair the
/// session envelope carries (net/session.hpp). SessionClient installs it
/// around a call; the server-side dispatcher adopts the received pair
/// around the handler, so spans on both sides of the wire close with the
/// same trace_id and stitch into one Chrome-trace timeline.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

#if SMATCH_OBS_ENABLED

/// The calling thread's current context ({0, 0} when none is installed).
[[nodiscard]] TraceContext current_trace_context();

/// RAII: installs a context for the enclosing scope and restores the
/// previous one on exit (contexts nest; spans opened inside the scope
/// close with `trace_id`).
class TraceContextScope {
 public:
  TraceContextScope(std::uint64_t trace_id, std::uint64_t span_id);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

#else  // SMATCH_OBS_ENABLED

inline TraceContext current_trace_context() { return {}; }

class TraceContextScope {
 public:
  TraceContextScope(std::uint64_t, std::uint64_t) {}
};

#endif  // SMATCH_OBS_ENABLED

/// Bounded ring of closed spans. One process-wide instance
/// (`TraceBuffer::instance()`); all members are thread-safe.
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  static TraceBuffer& instance();

  /// Arms the buffer: clears previous events, re-zeroes the time base,
  /// and starts accepting spans. Capacity 0 keeps the current one.
  void begin(std::size_t capacity = 0);
  /// Stops accepting spans; recorded events stay readable.
  void end();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void push(const TraceEvent& event);

  /// Events recorded since begin(), oldest first (ring order).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// Spans overwritten because the ring wrapped.
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const;

  /// Chrome trace-event JSON (array-of-objects form) of the buffered
  /// events, sorted by start time. Loadable in Perfetto as-is.
  [[nodiscard]] std::string chrome_json() const;

  /// Nanoseconds since the last begin() (the spans' time base).
  [[nodiscard]] std::uint64_t now_ns() const;

 private:
  TraceBuffer();

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::uint64_t next_ = 0;  // total pushes since begin()
  std::uint64_t base_ns_ = 0;
  std::atomic<bool> enabled_{false};
};

/// Validates Chrome trace-event JSON produced by chrome_json(): parses the
/// array, checks the required fields, non-negative monotonic-by-sort
/// timestamps, and proper nesting (a depth-d+1 span must start inside the
/// enclosing depth-d span on the same thread). Events may carry a string
/// `args.trace` hex id (the cross-wire trace context). On success fills
/// `distinct_names` with the number of unique span names. On failure
/// returns false and describes the problem in `error`.
[[nodiscard]] bool validate_chrome_trace(const std::string& json, std::string* error,
                                         std::size_t* distinct_names);

#if SMATCH_OBS_ENABLED

/// RAII span: opens at construction, closes (and publishes) at scope
/// exit. Use through SMATCH_SPAN / SMATCH_SPAN_HIST, not directly.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Histogram* hist = nullptr);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  Histogram* hist_;
  std::uint64_t start_ns_;  // absolute steady-clock ns
  std::uint32_t depth_;
  std::uint64_t trace_id_;  // captured from the thread's TraceContext
};

#define SMATCH_OBS_CONCAT_IMPL(a, b) a##b
#define SMATCH_OBS_CONCAT(a, b) SMATCH_OBS_CONCAT_IMPL(a, b)
#define SMATCH_SPAN(name) \
  ::smatch::obs::ScopedSpan SMATCH_OBS_CONCAT(smatch_span_, __LINE__)(name)
#define SMATCH_SPAN_HIST(name, hist) \
  ::smatch::obs::ScopedSpan SMATCH_OBS_CONCAT(smatch_span_, __LINE__)(name, hist)

#else  // SMATCH_OBS_ENABLED

#define SMATCH_SPAN(name) ((void)0)
#define SMATCH_SPAN_HIST(name, hist) ((void)(hist))

#endif  // SMATCH_OBS_ENABLED

}  // namespace smatch::obs
