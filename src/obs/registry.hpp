// Named metric registry with Prometheus-exposition-text and JSON
// exporters.
//
// Two kinds of entries coexist:
//
//   * Live metrics — `counter()` / `gauge()` / `histogram()` get-or-create
//     a named instrument and hand back a stable pointer the caller can
//     update lock-free forever after (the registry owns the storage).
//     Process-wide stage metrics register here.
//   * Published snapshots — the engines own their instruments and fold
//     them into per-instance metrics structs (core/metrics.hpp);
//     `publish()` / `publish_value()` copy such a snapshot into the
//     registry under a name so one exporter endpoint covers engine-owned
//     state too (core/metrics_export.hpp does this for all three engines,
//     the thread pools, and SimChannel). Re-publishing a name replaces
//     the previous snapshot.
//
// Exporters render whatever is present at call time. Histograms follow
// the log2-bucket scheme of obs/histogram.hpp with nanosecond-valued
// `le` bounds (docs/OBSERVABILITY.md documents the format); names are
// sanitized to the Prometheus charset ([a-zA-Z0-9_:]).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace smatch::obs {

/// Replaces every character outside [a-zA-Z0-9_:] with '_' (Prometheus
/// metric-name charset); prefixes '_' when the name starts with a digit.
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

/// Lints exposition text as produced by Registry::prometheus_text():
/// every sample line parses (name[{labels}] value), metric names stay in
/// the Prometheus charset, every family is announced by a preceding
/// `# TYPE` line, histogram `le` bucket counts are cumulative
/// (monotonically nondecreasing) and the `+Inf` bucket equals `_count`.
/// Shared by the admin-endpoint tests and the scripts/ci.sh scrape gate.
/// On failure returns false and describes the first problem in `error`.
[[nodiscard]] bool lint_prometheus_text(const std::string& text, std::string* error);

/// Reconstructs the log2-bucket snapshot of histogram family `name` from
/// exposition text (inverts append_prometheus_histogram: de-cumulates the
/// `le` buckets, reads _sum/_count). False when `name` is absent or a
/// bucket bound does not match the log2 scheme. The scenario driver uses
/// this to turn mid-run /metrics scrapes into per-phase p50/p99 deltas.
[[nodiscard]] bool parse_prometheus_histogram(const std::string& text,
                                              const std::string& name,
                                              HistogramSnapshot* out);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry.
  static Registry& global();

  /// Get-or-create a live monotonic counter. The pointer stays valid for
  /// the registry's lifetime; increment with fetch_add(relaxed).
  [[nodiscard]] std::atomic<std::uint64_t>* counter(std::string_view name);
  /// Get-or-create a live gauge (a settable signed level).
  [[nodiscard]] std::atomic<std::int64_t>* gauge(std::string_view name);
  /// Get-or-create a live histogram.
  [[nodiscard]] Histogram* histogram(std::string_view name);

  /// Stores (or replaces) an externally owned histogram snapshot under
  /// `name`; exported exactly like a live histogram.
  void publish(std::string_view name, const HistogramSnapshot& snapshot);
  /// Stores (or replaces) an externally owned scalar under `name`.
  /// `as_gauge` selects the exported Prometheus type.
  void publish_value(std::string_view name, double value, bool as_gauge = false);

  /// Prometheus exposition text (text/plain version 0.0.4) of every entry.
  [[nodiscard]] std::string prometheus_text() const;
  /// JSON snapshot: counters/gauges as numbers, histograms as
  /// {count, sum, p50, p90, p99, mean}.
  [[nodiscard]] std::string json() const;

  /// Drops every entry (tests).
  void clear();

 private:
  /// Plain-value copy of every entry, taken under mu_ in one short
  /// critical section so the exporters can format text with the lock
  /// released (hot-path counter()/histogram() lookups contend on mu_).
  struct ExportSnapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<std::pair<std::string, std::pair<double, bool>>> values;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  };
  [[nodiscard]] ExportSnapshot export_snapshot() const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>> counters_;
  std::map<std::string, std::unique_ptr<std::atomic<std::int64_t>>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, HistogramSnapshot> published_;
  std::map<std::string, std::pair<double, bool>> published_values_;  // value, as_gauge
};

}  // namespace smatch::obs
