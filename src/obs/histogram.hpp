// Mergeable, thread-safe latency histograms with log2 bucketing.
//
// A `Histogram` is a fixed array of 64 relaxed-atomic buckets: a recorded
// value v lands in bucket bit_width(v), i.e. bucket 0 holds v == 0 and
// bucket i (i >= 1) holds v in [2^(i-1), 2^i).  Recording is a single
// relaxed fetch_add — these are statistics, not synchronization — so the
// hot paths of the engines (core/server.hpp, core/key_server.hpp,
// core/client.hpp) and the worker pool (common/thread_pool.hpp) can feed
// one histogram from many threads without contention.
//
// `snapshot()` folds the live buckets into a plain-value
// `HistogramSnapshot` that is copyable, mergeable across shards/instances,
// and answers quantile queries with at most one-bucket error (the p50/p90/
// p99 numbers of the metrics snapshots and the Prometheus exporter in
// obs/registry.hpp).  Values are unit-agnostic; by convention the
// instrumentation layer records nanoseconds.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace smatch::obs {

/// Number of log2 buckets; covers the whole uint64 range.
inline constexpr std::size_t kNumHistogramBuckets = 64;

/// Bucket index for a value: 0 for v == 0, otherwise bit_width(v), so
/// bucket i collects [2^(i-1), 2^i).
[[nodiscard]] std::size_t histogram_bucket(std::uint64_t value);

/// Inclusive upper bound of a bucket (the representative a quantile query
/// returns). Bucket 0 -> 0; bucket i -> 2^i - 1.
[[nodiscard]] std::uint64_t histogram_bucket_bound(std::size_t bucket);

/// Plain-value, copyable view of a histogram. Merge folds shards or
/// instances together; quantile estimates carry at most one bucket of
/// error (the estimate is the upper bound of the bucket holding the
/// requested rank).
struct HistogramSnapshot {
  std::array<std::uint64_t, kNumHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  /// Rank-q value (q in [0, 1]); 0 when empty. q <= 0 returns the first
  /// occupied bucket's bound, q >= 1 the last one's.
  [[nodiscard]] std::uint64_t quantile(double q) const;
  [[nodiscard]] std::uint64_t p50() const { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p90() const { return quantile(0.90); }
  [[nodiscard]] std::uint64_t p99() const { return quantile(0.99); }
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }

  void merge(const HistogramSnapshot& other);
};

/// Live histogram: concurrent `record()` from any thread, snapshot/reset
/// from observers. Not copyable (atomics); owners expose snapshots.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value) {
    buckets_[histogram_bucket(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] std::uint64_t count() const;

  /// Clears every bucket. Not atomic against concurrent record();
  /// intended for quiescent resets (tests, SimChannel::reset).
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kNumHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace smatch::obs
