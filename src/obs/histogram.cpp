#include "obs/histogram.hpp"

#include <bit>
#include <limits>

namespace smatch::obs {

std::size_t histogram_bucket(std::uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t histogram_bucket_bound(std::size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= kNumHistogramBuckets) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << bucket) - 1;
}

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the requested order statistic, 1-based: ceil(q * count),
  // clamped to [1, count] so q == 0 still lands on a real sample.
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;

  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kNumHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) return histogram_bucket_bound(b);
  }
  return histogram_bucket_bound(kNumHistogramBuckets - 1);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t b = 0; b < kNumHistogramBuckets; ++b) buckets[b] += other.buckets[b];
  count += other.count;
  sum += other.sum;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (std::size_t b = 0; b < kNumHistogramBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    s.count += s.buckets[b];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

}  // namespace smatch::obs
