// Flight recorder: a lock-free bounded ring of structured operational
// events — connection lifecycle, request sheds, session retries, WAL
// fsync stalls, store evictions. Cheap enough to stay on in production
// (one clock read plus a handful of relaxed atomic stores per event), it
// answers "what was the server doing just before X?" without logs.
//
// Recording sites use the SMATCH_FLIGHT macro, which compiles to nothing
// under -DSMATCH_OBS=OFF. Each event carries a steady-clock timestamp, a
// kind, and two kind-specific payload words (documented per enumerator).
//
// The ring is a fixed array of seqlock slots: a writer takes a global
// ticket (fetch_add), marks its slot busy, stores the fields, then
// publishes the ticket with a release store; `snapshot()` double-reads
// each slot's sequence and skips slots a concurrent writer is touching,
// so readers never block writers and the whole structure is
// ThreadSanitizer-clean.
//
// Dump paths: the admin endpoint /statusz renders `dump_text()`, and
// `install_fatal_dump()` registers async-signal-safe handlers that write
// the ring to stderr on SIGSEGV / SIGBUS / SIGFPE / SIGABRT before
// re-raising.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#ifndef SMATCH_OBS_ENABLED
#define SMATCH_OBS_ENABLED 1
#endif

namespace smatch::obs {

enum class FlightKind : std::uint8_t {
  kConnAccepted = 0,  // a = connection id
  kConnClosed = 1,    // a = connection id
  kConnShed = 2,      // a = active connections at the cap
  kRequestShed = 3,   // a = connection id, b = inflight at the cap
  kRetry = 4,         // a = request id, b = attempt number
  kFsyncStall = 5,    // a = shard, b = fsync duration ns
  kEviction = 6,      // a = group key hash, b = bytes paged out
  kWalAppend = 7,     // a = shard, b = record bytes (sampled call sites)
  kServerStart = 8,   // a = tcp port, b = admin port
  kServerStop = 9,    // a = connections still active
};

/// Human-readable enumerator name ("conn_accepted", ...).
[[nodiscard]] const char* flight_kind_name(FlightKind kind);

/// One recorded event. `ts_ns` is absolute steady-clock nanoseconds;
/// `seq` is the global ticket (total order of recording).
struct FlightEvent {
  std::uint64_t seq = 0;
  std::uint64_t ts_ns = 0;
  FlightKind kind = FlightKind::kConnAccepted;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kCapacity = 1024;

  static FlightRecorder& instance();

  void record(FlightKind kind, std::uint64_t a = 0, std::uint64_t b = 0);

  /// Events recorded so far (monotone; may exceed kCapacity).
  [[nodiscard]] std::uint64_t total() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// Consistent slots, oldest first. Slots a writer is mutating during
  /// the read are skipped, so the result can momentarily be short.
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  /// One line per event: "+<ms since first> <kind> a=<a> b=<b>".
  [[nodiscard]] std::string dump_text() const;

  /// Installs fatal-signal handlers (SIGSEGV, SIGBUS, SIGFPE, SIGABRT)
  /// that write the ring to stderr and re-raise. Idempotent.
  static void install_fatal_dump();

  /// Async-signal-safe dump to stderr (raw write(2), no allocation, no
  /// formatting library). Used by the fatal handler; callable directly.
  void fatal_write() const;

  /// Resets the ring (tests). Not safe against concurrent record().
  void reset();

 private:
  FlightRecorder() = default;

  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // 0 = empty, ticket+1 = published
    std::atomic<std::uint64_t> ts_ns{0};
    std::atomic<std::uint8_t> kind{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
  };

  std::atomic<std::uint64_t> next_{0};
  std::array<Slot, kCapacity> slots_{};
};

#if SMATCH_OBS_ENABLED
#define SMATCH_FLIGHT(kind, a, b) \
  ::smatch::obs::FlightRecorder::instance().record((kind), (a), (b))
#else
#define SMATCH_FLIGHT(kind, a, b) ((void)0)
#endif

}  // namespace smatch::obs
