// Slow-request exemplars: when an RPC's end-to-end latency crosses a
// configured threshold, its full span tree (client-side net.call/net.retry
// plus the server-side dispatch and handler spans, stitched by the shared
// trace id) is promoted into a bounded ring for post-hoc inspection.
//
// Flow:
//   * `arm(threshold_ns)` turns collection on (one relaxed load per span
//     close when disarmed — cheap enough to leave compiled in).
//   * `~ScopedSpan` (obs/trace.hpp) appends each closed span to a bounded
//     pending table keyed by the thread's current trace id.
//   * `SessionClient::call` finishes the trace with the measured
//     end-to-end latency: at or above the threshold the pending spans are
//     promoted into the exemplar ring (oldest exemplar overwritten),
//     below it they are discarded.
//
// The ring is exported as Chrome-trace JSON via the admin endpoint
// `/trace?exemplars=1`; occupancy and capture counters are published as
// smatch_obs_exemplar_* metrics by publish_trace_metrics()
// (obs/registry.hpp consumers call it before rendering).
//
// Under -DSMATCH_OBS=OFF nothing feeds the recorder (spans compile out
// and the session layer's guard is a no-op), so it stays empty.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"

namespace smatch::obs {

/// One captured slow request: the trace id, the end-to-end latency that
/// crossed the threshold, and the span tree rebased so the earliest span
/// starts at t=0.
struct Exemplar {
  std::uint64_t trace_id = 0;
  std::uint64_t total_ns = 0;
  std::vector<TraceEvent> spans;
};

/// Process-wide bounded recorder. All members are thread-safe; the
/// disarmed fast path is a single relaxed atomic load.
class ExemplarRecorder {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 32;
  /// Traces being assembled concurrently; beyond this, new trace ids are
  /// dropped (counted in pending_overflows()).
  static constexpr std::size_t kMaxPendingTraces = 256;
  /// Spans kept per pending trace; extras are dropped, keeping the
  /// earliest ones (the request's outer structure).
  static constexpr std::size_t kMaxSpansPerTrace = 192;

  static ExemplarRecorder& instance();

  /// Arms collection: requests finishing at or above `threshold_ns` are
  /// captured. `ring_capacity` 0 keeps the current capacity.
  void arm(std::uint64_t threshold_ns, std::size_t ring_capacity = 0);
  /// Stops collection and drops pending traces; captured exemplars stay
  /// readable.
  void disarm();
  [[nodiscard]] bool armed() const {
    return threshold_ns_.load(std::memory_order_relaxed) != 0;
  }
  [[nodiscard]] std::uint64_t threshold_ns() const {
    return threshold_ns_.load(std::memory_order_relaxed);
  }

  /// Appends a closed span to the pending trace (no-op when disarmed or
  /// trace_id == 0). `event.start_ns` is absolute steady-clock ns.
  void record_span(std::uint64_t trace_id, const TraceEvent& event);

  /// Finishes a trace with its end-to-end latency: promotes the pending
  /// spans into the ring when `total_ns >= threshold`, discards otherwise.
  void finish(std::uint64_t trace_id, std::uint64_t total_ns);

  /// Captured exemplars, oldest first.
  [[nodiscard]] std::vector<Exemplar> exemplars() const;
  [[nodiscard]] std::size_t occupancy() const;
  [[nodiscard]] std::uint64_t captured_total() const;
  [[nodiscard]] std::uint64_t pending_overflows() const;

  /// Chrome trace-event JSON of every captured exemplar (same format as
  /// TraceBuffer::chrome_json(); each span carries args.trace and
  /// args.exemplar_total_ns). Validates with validate_chrome_trace().
  [[nodiscard]] std::string chrome_json() const;

  /// Drops exemplars and pending traces; keeps the armed threshold.
  void clear();

 private:
  ExemplarRecorder() = default;

  std::atomic<std::uint64_t> threshold_ns_{0};

  mutable std::mutex mu_;
  std::size_t ring_capacity_ = kDefaultRingCapacity;
  std::list<Exemplar> ring_;  // oldest at front
  std::unordered_map<std::uint64_t, std::vector<TraceEvent>> pending_;
  std::uint64_t captured_ = 0;
  std::uint64_t overflows_ = 0;
};

/// Publishes the trace-plane self-metrics into Registry::global():
///   smatch_obs_trace_dropped_total   — TraceBuffer ring overwrites
///   smatch_obs_exemplar_occupancy    — exemplars currently held (gauge)
///   smatch_obs_exemplars_captured_total
///   smatch_obs_exemplar_overflows_total — pending-table drops
/// Callers (admin /metrics, scenario driver) invoke this right before
/// rendering so the exposition reflects live trace-buffer state.
void publish_trace_metrics();

}  // namespace smatch::obs
