#include "obs/registry.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace smatch::obs {

namespace {

void append_f(std::string& out, const char* fmt, auto... args) {
  char buf[192];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out += buf;
}

/// One Prometheus histogram family: cumulative le-bucket counts over the
/// log2 scheme (le bounds are the inclusive bucket upper bounds, in the
/// recorded unit — nanoseconds by convention), then _sum and _count.
void append_prometheus_histogram(std::string& out, const std::string& name,
                                 const HistogramSnapshot& snap) {
  append_f(out, "# TYPE %s histogram\n", name.c_str());
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kNumHistogramBuckets; ++b) {
    if (snap.buckets[b] == 0) continue;  // elide empty buckets: log2 spans 64 of them
    cumulative += snap.buckets[b];
    append_f(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n", name.c_str(),
             histogram_bucket_bound(b), cumulative);
  }
  append_f(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(), snap.count);
  append_f(out, "%s_sum %" PRIu64 "\n", name.c_str(), snap.sum);
  append_f(out, "%s_count %" PRIu64 "\n", name.c_str(), snap.count);
}

void append_json_histogram(std::string& out, const std::string& name,
                           const HistogramSnapshot& snap, bool& first) {
  if (!first) out += ",";
  first = false;
  append_f(out,
           "\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"p50\":%" PRIu64
           ",\"p90\":%" PRIu64 ",\"p99\":%" PRIu64 ",\"mean\":%.1f}",
           name.c_str(), snap.count, snap.sum, snap.p50(), snap.p90(), snap.p99(),
           snap.mean());
}

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out.front()))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const char c0 = name.front();
  if (std::isalpha(static_cast<unsigned char>(c0)) == 0 && c0 != '_' && c0 != ':') {
    return false;
  }
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' && c != ':') {
      return false;
    }
  }
  return true;
}

/// Splits one sample line into (name, le-label-or-empty, value). Returns
/// false on any syntax problem.
bool split_sample_line(const std::string& line, std::string* name, std::string* le,
                      double* value, std::string* error) {
  const std::size_t brace = line.find('{');
  const std::size_t space = line.find(' ');
  if (space == std::string::npos) {
    *error = "sample line without a value: " + line;
    return false;
  }
  le->clear();
  if (brace != std::string::npos && brace < space) {
    const std::size_t close = line.find('}', brace);
    if (close == std::string::npos || close > space) {
      *error = "unterminated label set: " + line;
      return false;
    }
    *name = line.substr(0, brace);
    const std::string labels = line.substr(brace + 1, close - brace - 1);
    // The exporter only emits the `le` label, in le="bound" form.
    if (labels.rfind("le=\"", 0) != 0 || labels.back() != '"') {
      *error = "unexpected label set: " + line;
      return false;
    }
    *le = labels.substr(4, labels.size() - 5);
  } else {
    *name = line.substr(0, space);
  }
  const std::string val = line.substr(line.rfind(' ') + 1);
  try {
    std::size_t used = 0;
    *value = std::stod(val, &used);
    if (used != val.size()) throw std::invalid_argument(val);
  } catch (const std::exception&) {
    *error = "unparseable sample value: " + line;
    return false;
  }
  return true;
}

}  // namespace

bool lint_prometheus_text(const std::string& text, std::string* error) {
  std::string err;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (text.empty()) return fail("empty exposition payload");

  std::map<std::string, std::string> types;  // family -> TYPE
  // Per histogram family: last cumulative bucket count, +Inf count, _count.
  std::map<std::string, double> last_bucket;
  std::map<std::string, double> inf_bucket;
  std::map<std::string, double> count_sample;

  std::size_t pos = 0;
  std::size_t samples = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // Only `# TYPE <name> <type>` comments are emitted.
      if (line.rfind("# TYPE ", 0) != 0) return fail("unexpected comment: " + line);
      const std::size_t name_start = 7;
      const std::size_t name_end = line.find(' ', name_start);
      if (name_end == std::string::npos) return fail("malformed TYPE line: " + line);
      const std::string name = line.substr(name_start, name_end - name_start);
      const std::string type = line.substr(name_end + 1);
      if (type != "counter" && type != "gauge" && type != "histogram") {
        return fail("unknown metric type '" + type + "' for " + name);
      }
      if (!valid_metric_name(name)) return fail("invalid metric name: " + name);
      types[name] = type;
      continue;
    }

    std::string name;
    std::string le;
    double value = 0;
    if (!split_sample_line(line, &name, &le, &value, &err)) return fail(err);
    if (!valid_metric_name(name)) return fail("invalid metric name: " + name);
    ++samples;

    // Resolve the family: histogram samples use _bucket/_sum/_count.
    std::string family = name;
    std::string matched_suffix;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s = suffix;
      if (name.size() > s.size() && name.compare(name.size() - s.size(), s.size(), s) == 0) {
        const std::string candidate = name.substr(0, name.size() - s.size());
        if (types.count(candidate) != 0 && types[candidate] == "histogram") {
          family = candidate;
          matched_suffix = s;
          break;
        }
      }
    }
    if (types.count(family) == 0) {
      return fail("sample without a preceding # TYPE line: " + name);
    }
    if (!le.empty()) {
      if (types[family] != "histogram") {
        return fail("le label on non-histogram sample: " + line);
      }
      if (le == "+Inf") {
        inf_bucket[family] = value;
      } else {
        const auto it = last_bucket.find(family);
        if (it != last_bucket.end() && value < it->second) {
          return fail("histogram " + family + " bucket counts are not cumulative");
        }
        last_bucket[family] = value;
      }
    } else if (matched_suffix == "_count") {
      count_sample[family] = value;
    }
  }
  if (samples == 0) return fail("no samples in exposition payload");

  for (const auto& [family, inf] : inf_bucket) {
    const auto last = last_bucket.find(family);
    if (last != last_bucket.end() && inf < last->second) {
      return fail("histogram " + family + " +Inf bucket below the last finite bucket");
    }
    const auto cnt = count_sample.find(family);
    if (cnt == count_sample.end()) {
      return fail("histogram " + family + " has buckets but no _count sample");
    }
    if (inf != cnt->second) {
      return fail("histogram " + family + " +Inf bucket disagrees with _count");
    }
  }
  return true;
}

bool parse_prometheus_histogram(const std::string& text, const std::string& name,
                                HistogramSnapshot* out) {
  *out = HistogramSnapshot{};
  bool found = false;
  std::uint64_t prev_cumulative = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty() || line[0] == '#') continue;
    std::string sample_name;
    std::string le;
    double value = 0;
    std::string err;
    if (!split_sample_line(line, &sample_name, &le, &value, &err)) continue;
    if (sample_name == name + "_bucket" && !le.empty() && le != "+Inf") {
      // Invert the elided-cumulative encoding: bound -> log2 bucket index.
      const std::uint64_t bound = std::strtoull(le.c_str(), nullptr, 10);
      std::size_t bucket = kNumHistogramBuckets;
      for (std::size_t b = 0; b < kNumHistogramBuckets; ++b) {
        if (histogram_bucket_bound(b) == bound) {
          bucket = b;
          break;
        }
      }
      if (bucket == kNumHistogramBuckets) return false;  // not log2-scheme
      const auto cumulative = static_cast<std::uint64_t>(value);
      if (cumulative < prev_cumulative) return false;
      out->buckets[bucket] = cumulative - prev_cumulative;
      prev_cumulative = cumulative;
      found = true;
    } else if (sample_name == name + "_sum" && le.empty()) {
      out->sum = static_cast<std::uint64_t>(value);
      found = true;
    } else if (sample_name == name + "_count" && le.empty()) {
      out->count = static_cast<std::uint64_t>(value);
      found = true;
    }
  }
  return found;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

std::atomic<std::uint64_t>* Registry::counter(std::string_view name) {
  std::lock_guard lk(mu_);
  auto& slot = counters_[sanitize_metric_name(name)];
  if (!slot) slot = std::make_unique<std::atomic<std::uint64_t>>(0);
  return slot.get();
}

std::atomic<std::int64_t>* Registry::gauge(std::string_view name) {
  std::lock_guard lk(mu_);
  auto& slot = gauges_[sanitize_metric_name(name)];
  if (!slot) slot = std::make_unique<std::atomic<std::int64_t>>(0);
  return slot.get();
}

Histogram* Registry::histogram(std::string_view name) {
  std::lock_guard lk(mu_);
  auto& slot = histograms_[sanitize_metric_name(name)];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void Registry::publish(std::string_view name, const HistogramSnapshot& snapshot) {
  std::lock_guard lk(mu_);
  published_[sanitize_metric_name(name)] = snapshot;
}

void Registry::publish_value(std::string_view name, double value, bool as_gauge) {
  std::lock_guard lk(mu_);
  published_values_[sanitize_metric_name(name)] = {value, as_gauge};
}

// Exporters copy plain values out under mu_ and do all string formatting
// unlocked: counter()/gauge()/histogram() on the request hot path take
// the same mutex, so a scrape must hold it for microseconds of copying,
// not the whole render (the admin-scrape tier of bench/obs_overhead.cpp
// gates on the resulting tail-latency shift staying under 5%).
Registry::ExportSnapshot Registry::export_snapshot() const {
  ExportSnapshot snap;
  std::lock_guard lk(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->load(std::memory_order_relaxed));
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->load(std::memory_order_relaxed));
  }
  snap.values.assign(published_values_.begin(), published_values_.end());
  snap.histograms.reserve(histograms_.size() + published_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  for (const auto& [name, s] : published_) {
    snap.histograms.emplace_back(name, s);
  }
  return snap;
}

std::string Registry::prometheus_text() const {
  const ExportSnapshot snap = export_snapshot();
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    append_f(out, "# TYPE %s counter\n%s %" PRIu64 "\n", name.c_str(), name.c_str(),
             v);
  }
  for (const auto& [name, v] : snap.gauges) {
    append_f(out, "# TYPE %s gauge\n%s %" PRId64 "\n", name.c_str(), name.c_str(),
             v);
  }
  for (const auto& [name, vt] : snap.values) {
    append_f(out, "# TYPE %s %s\n%s %.17g\n", name.c_str(),
             vt.second ? "gauge" : "counter", name.c_str(), vt.first);
  }
  for (const auto& [name, h] : snap.histograms) {
    append_prometheus_histogram(out, name, h);
  }
  return out;
}

std::string Registry::json() const {
  const ExportSnapshot snap = export_snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out += ",";
    first = false;
    append_f(out, "\"%s\":%" PRIu64, name.c_str(), v);
  }
  for (const auto& [name, vt] : snap.values) {
    if (vt.second) continue;
    if (!first) out += ",";
    first = false;
    append_f(out, "\"%s\":%.17g", name.c_str(), vt.first);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out += ",";
    first = false;
    append_f(out, "\"%s\":%" PRId64, name.c_str(), v);
  }
  for (const auto& [name, vt] : snap.values) {
    if (!vt.second) continue;
    if (!first) out += ",";
    first = false;
    append_f(out, "\"%s\":%.17g", name.c_str(), vt.first);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    append_json_histogram(out, name, h, first);
  }
  out += "}}";
  return out;
}

void Registry::clear() {
  std::lock_guard lk(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  published_.clear();
  published_values_.clear();
}

}  // namespace smatch::obs
