#include "obs/registry.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace smatch::obs {

namespace {

void append_f(std::string& out, const char* fmt, auto... args) {
  char buf[192];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out += buf;
}

/// One Prometheus histogram family: cumulative le-bucket counts over the
/// log2 scheme (le bounds are the inclusive bucket upper bounds, in the
/// recorded unit — nanoseconds by convention), then _sum and _count.
void append_prometheus_histogram(std::string& out, const std::string& name,
                                 const HistogramSnapshot& snap) {
  append_f(out, "# TYPE %s histogram\n", name.c_str());
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kNumHistogramBuckets; ++b) {
    if (snap.buckets[b] == 0) continue;  // elide empty buckets: log2 spans 64 of them
    cumulative += snap.buckets[b];
    append_f(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n", name.c_str(),
             histogram_bucket_bound(b), cumulative);
  }
  append_f(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(), snap.count);
  append_f(out, "%s_sum %" PRIu64 "\n", name.c_str(), snap.sum);
  append_f(out, "%s_count %" PRIu64 "\n", name.c_str(), snap.count);
}

void append_json_histogram(std::string& out, const std::string& name,
                           const HistogramSnapshot& snap, bool& first) {
  if (!first) out += ",";
  first = false;
  append_f(out,
           "\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"p50\":%" PRIu64
           ",\"p90\":%" PRIu64 ",\"p99\":%" PRIu64 ",\"mean\":%.1f}",
           name.c_str(), snap.count, snap.sum, snap.p50(), snap.p90(), snap.p99(),
           snap.mean());
}

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out.front()))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

std::atomic<std::uint64_t>* Registry::counter(std::string_view name) {
  std::lock_guard lk(mu_);
  auto& slot = counters_[sanitize_metric_name(name)];
  if (!slot) slot = std::make_unique<std::atomic<std::uint64_t>>(0);
  return slot.get();
}

std::atomic<std::int64_t>* Registry::gauge(std::string_view name) {
  std::lock_guard lk(mu_);
  auto& slot = gauges_[sanitize_metric_name(name)];
  if (!slot) slot = std::make_unique<std::atomic<std::int64_t>>(0);
  return slot.get();
}

Histogram* Registry::histogram(std::string_view name) {
  std::lock_guard lk(mu_);
  auto& slot = histograms_[sanitize_metric_name(name)];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void Registry::publish(std::string_view name, const HistogramSnapshot& snapshot) {
  std::lock_guard lk(mu_);
  published_[sanitize_metric_name(name)] = snapshot;
}

void Registry::publish_value(std::string_view name, double value, bool as_gauge) {
  std::lock_guard lk(mu_);
  published_values_[sanitize_metric_name(name)] = {value, as_gauge};
}

std::string Registry::prometheus_text() const {
  std::lock_guard lk(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    append_f(out, "# TYPE %s counter\n%s %" PRIu64 "\n", name.c_str(), name.c_str(),
             c->load(std::memory_order_relaxed));
  }
  for (const auto& [name, g] : gauges_) {
    append_f(out, "# TYPE %s gauge\n%s %" PRId64 "\n", name.c_str(), name.c_str(),
             g->load(std::memory_order_relaxed));
  }
  for (const auto& [name, vt] : published_values_) {
    append_f(out, "# TYPE %s %s\n%s %.17g\n", name.c_str(),
             vt.second ? "gauge" : "counter", name.c_str(), vt.first);
  }
  for (const auto& [name, h] : histograms_) {
    append_prometheus_histogram(out, name, h->snapshot());
  }
  for (const auto& [name, snap] : published_) {
    append_prometheus_histogram(out, name, snap);
  }
  return out;
}

std::string Registry::json() const {
  std::lock_guard lk(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    append_f(out, "\"%s\":%" PRIu64, name.c_str(),
             c->load(std::memory_order_relaxed));
  }
  for (const auto& [name, vt] : published_values_) {
    if (vt.second) continue;
    if (!first) out += ",";
    first = false;
    append_f(out, "\"%s\":%.17g", name.c_str(), vt.first);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    append_f(out, "\"%s\":%" PRId64, name.c_str(),
             g->load(std::memory_order_relaxed));
  }
  for (const auto& [name, vt] : published_values_) {
    if (!vt.second) continue;
    if (!first) out += ",";
    first = false;
    append_f(out, "\"%s\":%.17g", name.c_str(), vt.first);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    append_json_histogram(out, name, h->snapshot(), first);
  }
  for (const auto& [name, snap] : published_) {
    append_json_histogram(out, name, snap, first);
  }
  out += "}}";
  return out;
}

void Registry::clear() {
  std::lock_guard lk(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  published_.clear();
  published_values_.clear();
}

}  // namespace smatch::obs
