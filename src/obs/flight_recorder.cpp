#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <unistd.h>

namespace smatch::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* flight_kind_name(FlightKind kind) {
  switch (kind) {
    case FlightKind::kConnAccepted: return "conn_accepted";
    case FlightKind::kConnClosed: return "conn_closed";
    case FlightKind::kConnShed: return "conn_shed";
    case FlightKind::kRequestShed: return "request_shed";
    case FlightKind::kRetry: return "retry";
    case FlightKind::kFsyncStall: return "fsync_stall";
    case FlightKind::kEviction: return "eviction";
    case FlightKind::kWalAppend: return "wal_append";
    case FlightKind::kServerStart: return "server_start";
    case FlightKind::kServerStop: return "server_stop";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::record(FlightKind kind, std::uint64_t a, std::uint64_t b) {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % kCapacity];
  // Seqlock write: mark busy, store fields relaxed, publish with release.
  // Two writers a full ring apart can race one slot; readers detect the
  // mid-write window via the 0 marker / changed sequence and skip it.
  slot.seq.store(0, std::memory_order_relaxed);
  slot.ts_ns.store(steady_now_ns(), std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.seq.store(ticket + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(kCapacity);
  for (const Slot& slot : slots_) {
    const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0) continue;  // empty or mid-write
    FlightEvent ev;
    ev.seq = s1 - 1;
    ev.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    ev.kind = static_cast<FlightKind>(slot.kind.load(std::memory_order_relaxed));
    ev.a = slot.a.load(std::memory_order_relaxed);
    ev.b = slot.b.load(std::memory_order_relaxed);
    const std::uint64_t s2 = slot.seq.load(std::memory_order_acquire);
    if (s1 != s2) continue;  // torn by a concurrent writer
    out.push_back(ev);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) { return x.seq < y.seq; });
  return out;
}

std::string FlightRecorder::dump_text() const {
  const std::vector<FlightEvent> events = snapshot();
  std::string out;
  char line[160];
  const std::uint64_t base = events.empty() ? 0 : events.front().ts_ns;
  for (const FlightEvent& ev : events) {
    std::snprintf(line, sizeof line, "+%10.3fms #%llu %-13s a=%llu b=%llu\n",
                  static_cast<double>(ev.ts_ns - base) / 1e6,
                  static_cast<unsigned long long>(ev.seq), flight_kind_name(ev.kind),
                  static_cast<unsigned long long>(ev.a),
                  static_cast<unsigned long long>(ev.b));
    out += line;
  }
  return out;
}

void FlightRecorder::reset() {
  next_.store(0, std::memory_order_relaxed);
  for (Slot& slot : slots_) slot.seq.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Fatal-signal dump. Everything below sticks to async-signal-safe
// primitives: raw write(2) and hand-rolled integer formatting — no
// snprintf, no allocation, no locks (the recorder itself is lock-free).

namespace {

void write_str(const char* s) {
  std::size_t n = 0;
  while (s[n] != '\0') ++n;
  (void)::write(STDERR_FILENO, s, n);
}

void write_u64(std::uint64_t v) {
  char buf[21];
  char* p = buf + sizeof buf;
  *--p = '\0';
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  write_str(p);
}

void fatal_dump_handler(int signo) {
  write_str("\n=== smatch flight recorder (fatal signal ");
  write_u64(static_cast<std::uint64_t>(signo));
  write_str(") ===\n");
  FlightRecorder::instance().fatal_write();
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

void FlightRecorder::fatal_write() const {
  const std::uint64_t total = next_.load(std::memory_order_relaxed);
  write_str("events_total=");
  write_u64(total);
  write_str("\n");
  // Oldest surviving ticket first; slots are read without sorting or
  // allocation (the handler may run with the heap in an arbitrary state).
  const std::uint64_t count = total < kCapacity ? total : kCapacity;
  for (std::uint64_t t = total - count; t < total; ++t) {
    const Slot& slot = slots_[t % kCapacity];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq != t + 1) continue;  // overwritten or mid-write
    write_str("#");
    write_u64(t);
    write_str(" ");
    write_str(flight_kind_name(
        static_cast<FlightKind>(slot.kind.load(std::memory_order_relaxed))));
    write_str(" a=");
    write_u64(slot.a.load(std::memory_order_relaxed));
    write_str(" b=");
    write_u64(slot.b.load(std::memory_order_relaxed));
    write_str("\n");
  }
}

void FlightRecorder::install_fatal_dump() {
  static std::atomic<bool> installed{false};
  bool expected = false;
  if (!installed.compare_exchange_strong(expected, true)) return;
  struct sigaction sa;
  sa.sa_handler = &fatal_dump_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  for (const int signo : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
    (void)::sigaction(signo, &sa, nullptr);
  }
}

}  // namespace smatch::obs
