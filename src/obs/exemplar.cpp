#include "obs/exemplar.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/registry.hpp"

namespace smatch::obs {

ExemplarRecorder& ExemplarRecorder::instance() {
  static ExemplarRecorder recorder;
  return recorder;
}

void ExemplarRecorder::arm(std::uint64_t threshold_ns, std::size_t ring_capacity) {
  std::lock_guard lk(mu_);
  if (ring_capacity != 0) {
    ring_capacity_ = ring_capacity;
    while (ring_.size() > ring_capacity_) ring_.pop_front();
  }
  threshold_ns_.store(threshold_ns, std::memory_order_relaxed);
}

void ExemplarRecorder::disarm() {
  std::lock_guard lk(mu_);
  threshold_ns_.store(0, std::memory_order_relaxed);
  pending_.clear();
}

void ExemplarRecorder::record_span(std::uint64_t trace_id, const TraceEvent& event) {
  if (trace_id == 0 || !armed()) return;
  std::lock_guard lk(mu_);
  auto it = pending_.find(trace_id);
  if (it == pending_.end()) {
    if (pending_.size() >= kMaxPendingTraces) {
      // A full table means traces are being opened faster than finished
      // (or finish() is never reached, e.g. a crashed caller); dropping
      // the new trace keeps the recorder bounded either way.
      ++overflows_;
      return;
    }
    it = pending_.emplace(trace_id, std::vector<TraceEvent>{}).first;
  }
  if (it->second.size() >= kMaxSpansPerTrace) return;
  it->second.push_back(event);
}

void ExemplarRecorder::finish(std::uint64_t trace_id, std::uint64_t total_ns) {
  if (trace_id == 0 || !armed()) return;
  std::lock_guard lk(mu_);
  const auto it = pending_.find(trace_id);
  std::vector<TraceEvent> spans;
  if (it != pending_.end()) {
    spans = std::move(it->second);
    pending_.erase(it);
  }
  if (total_ns < threshold_ns_.load(std::memory_order_relaxed)) return;

  // Rebase the tree so its earliest span starts at t=0: exemplars are
  // self-contained timelines, independent of the TraceBuffer time base.
  std::uint64_t base = ~0ull;
  for (const TraceEvent& e : spans) base = std::min(base, e.start_ns);
  for (TraceEvent& e : spans) e.start_ns -= (base == ~0ull ? 0 : base);

  Exemplar ex;
  ex.trace_id = trace_id;
  ex.total_ns = total_ns;
  ex.spans = std::move(spans);
  ring_.push_back(std::move(ex));
  if (ring_.size() > ring_capacity_) ring_.pop_front();
  ++captured_;
}

std::vector<Exemplar> ExemplarRecorder::exemplars() const {
  std::lock_guard lk(mu_);
  return {ring_.begin(), ring_.end()};
}

std::size_t ExemplarRecorder::occupancy() const {
  std::lock_guard lk(mu_);
  return ring_.size();
}

std::uint64_t ExemplarRecorder::captured_total() const {
  std::lock_guard lk(mu_);
  return captured_;
}

std::uint64_t ExemplarRecorder::pending_overflows() const {
  std::lock_guard lk(mu_);
  return overflows_;
}

std::string ExemplarRecorder::chrome_json() const {
  const std::vector<Exemplar> exs = exemplars();

  // One flat event array; spans of one exemplar stay contiguous and
  // sorted so validate_chrome_trace()'s nesting check passes. Successive
  // exemplars are offset past the previous one's end to keep the global
  // sort-by-ts invariant.
  std::string out = "[\n";
  char line[320];
  std::uint64_t offset = 0;
  bool first = true;
  for (const Exemplar& ex : exs) {
    std::vector<TraceEvent> spans = ex.spans;
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                       return a.depth < b.depth;
                     });
    std::uint64_t end = 0;
    for (const TraceEvent& e : spans) {
      if (!first) out += ",\n";
      first = false;
      std::snprintf(line, sizeof line,
                    "{\"name\":\"%s\",\"cat\":\"smatch\",\"ph\":\"X\",\"ts\":%.3f,"
                    "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"depth\":%u,"
                    "\"trace\":\"%016" PRIx64 "\",\"exemplar_total_ns\":%" PRIu64 "}}",
                    e.name, static_cast<double>(offset + e.start_ns) / 1e3,
                    static_cast<double>(e.duration_ns) / 1e3, e.thread, e.depth,
                    ex.trace_id, ex.total_ns);
      out += line;
      end = std::max(end, e.start_ns + e.duration_ns);
    }
    offset += end + 1000;  // 1 us gap between exemplars
  }
  out += "\n]\n";
  return out;
}

void ExemplarRecorder::clear() {
  std::lock_guard lk(mu_);
  ring_.clear();
  pending_.clear();
}

void publish_trace_metrics() {
  auto& reg = Registry::global();
  reg.publish_value("smatch_obs_trace_dropped_total",
                    static_cast<double>(TraceBuffer::instance().dropped()));
  const ExemplarRecorder& ex = ExemplarRecorder::instance();
  reg.publish_value("smatch_obs_exemplar_occupancy",
                    static_cast<double>(ex.occupancy()), /*as_gauge=*/true);
  reg.publish_value("smatch_obs_exemplars_captured_total",
                    static_cast<double>(ex.captured_total()));
  reg.publish_value("smatch_obs_exemplar_overflows_total",
                    static_cast<double>(ex.pending_overflows()));
}

}  // namespace smatch::obs
