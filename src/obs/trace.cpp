#include "obs/trace.hpp"

#include "obs/exemplar.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

namespace smatch::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-thread span bookkeeping: a small exported tid (first-span order)
/// and the current span-stack depth.
struct ThreadState {
  std::uint32_t id;
  std::uint32_t depth = 0;
};

ThreadState& thread_state() {
  static std::atomic<std::uint32_t> next{0};
  thread_local ThreadState state{next.fetch_add(1, std::memory_order_relaxed)};
  return state;
}

}  // namespace

TraceBuffer::TraceBuffer() { ring_.resize(kDefaultCapacity); }

TraceBuffer& TraceBuffer::instance() {
  static TraceBuffer buffer;
  return buffer;
}

void TraceBuffer::begin(std::size_t capacity) {
  std::lock_guard lk(mu_);
  if (capacity != 0) ring_.assign(capacity, TraceEvent{});
  next_ = 0;
  base_ns_ = steady_now_ns();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceBuffer::end() { enabled_.store(false, std::memory_order_relaxed); }

void TraceBuffer::push(const TraceEvent& event) {
  std::lock_guard lk(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  TraceEvent& slot = ring_[next_ % ring_.size()];
  slot = event;
  // Spans carry absolute steady-clock ns; store relative to begin().
  slot.start_ns = event.start_ns >= base_ns_ ? event.start_ns - base_ns_ : 0;
  ++next_;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::lock_guard lk(mu_);
  std::vector<TraceEvent> out;
  const std::size_t n = std::min<std::uint64_t>(next_, ring_.size());
  out.reserve(n);
  // Oldest first: when the ring wrapped, the oldest surviving slot is the
  // one the next push would overwrite.
  const std::size_t start = next_ > ring_.size() ? next_ % ring_.size() : 0;
  for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard lk(mu_);
  return next_ > ring_.size() ? next_ - ring_.size() : 0;
}

std::size_t TraceBuffer::capacity() const {
  std::lock_guard lk(mu_);
  return ring_.size();
}

std::uint64_t TraceBuffer::now_ns() const {
  std::lock_guard lk(mu_);
  const std::uint64_t now = steady_now_ns();
  return now >= base_ns_ ? now - base_ns_ : 0;
}

std::string TraceBuffer::chrome_json() const {
  std::vector<TraceEvent> evs = events();
  // Chrome's importer tolerates any order, but sorted-by-start output
  // makes the artifact diffable and lets the validator check nesting with
  // one forward pass. Parents sort ahead of the children they enclose.
  std::stable_sort(evs.begin(), evs.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.depth < b.depth;
  });

  std::string out = "[\n";
  char line[320];
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const TraceEvent& e = evs[i];
    // ts/dur are microseconds; three decimals preserve the ns timestamps.
    // Spans that carried a cross-wire context get an args.trace hex id so
    // Perfetto queries can group one request's client+server spans.
    char trace_arg[40] = "";
    if (e.trace_id != 0) {
      std::snprintf(trace_arg, sizeof trace_arg, ",\"trace\":\"%016llx\"",
                    static_cast<unsigned long long>(e.trace_id));
    }
    std::snprintf(line, sizeof line,
                  "{\"name\":\"%s\",\"cat\":\"smatch\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"depth\":%u%s}}%s\n",
                  e.name, static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.duration_ns) / 1e3, e.thread, e.depth,
                  trace_arg, i + 1 < evs.size() ? "," : "");
    out += line;
  }
  out += "]\n";
  return out;
}

// ---------------------------------------------------------------------------
// Trace validation: a purpose-built parser for the exact JSON subset
// chrome_json() emits (array of flat objects, string/number/object
// values, no escape sequences). Shared by tests/obs_test.cpp and
// bench/obs_overhead.cpp so the CI artifact gate and the unit tests agree
// on what "well-formed" means.

namespace {

struct ParsedEvent {
  std::string name;
  std::string ph;
  std::string trace;  // optional args.trace hex id
  double ts = -1.0;
  double dur = -1.0;
  long tid = -1;
  long depth = -1;
};

struct Parser {
  const std::string& s;
  std::size_t i = 0;
  std::string error = {};

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }

  bool expect(char c) {
    skip_ws();
    if (i >= s.size() || s[i] != c) {
      error = std::string("expected '") + c + "' at offset " + std::to_string(i);
      return false;
    }
    ++i;
    return true;
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (i >= s.size() || s[i] != '"') {
      error = "expected string at offset " + std::to_string(i);
      return false;
    }
    ++i;
    out.clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        error = "escape sequences not expected in trace output";
        return false;
      }
      out += s[i++];
    }
    if (i >= s.size()) {
      error = "unterminated string";
      return false;
    }
    ++i;
    return true;
  }

  bool parse_number(double& out) {
    skip_ws();
    const std::size_t start = i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
            s[i] == '-' || s[i] == '+' || s[i] == 'e' || s[i] == 'E')) {
      ++i;
    }
    if (i == start) {
      error = "expected number at offset " + std::to_string(i);
      return false;
    }
    out = std::stod(s.substr(start, i - start));
    return true;
  }

  /// Parses one event object, tolerating unknown keys.
  bool parse_event(ParsedEvent& ev) {
    if (!expect('{')) return false;
    for (;;) {
      std::string key;
      if (!parse_string(key) || !expect(':')) return false;
      if (key == "args") {
        if (!expect('{')) return false;
        for (;;) {
          std::string akey;
          if (!parse_string(akey) || !expect(':')) return false;
          skip_ws();
          if (i < s.size() && s[i] == '"') {
            // String-valued args (the hex trace id of a cross-wire span).
            std::string aval;
            if (!parse_string(aval)) return false;
            if (akey == "trace") ev.trace = aval;
          } else {
            double aval = 0;
            if (!parse_number(aval)) return false;
            if (akey == "depth") ev.depth = static_cast<long>(aval);
          }
          skip_ws();
          if (i < s.size() && s[i] == ',') {
            ++i;
            continue;
          }
          break;
        }
        if (!expect('}')) return false;
      } else {
        skip_ws();
        if (i < s.size() && s[i] == '"') {
          std::string val;
          if (!parse_string(val)) return false;
          if (key == "name") ev.name = val;
          if (key == "ph") ev.ph = val;
        } else {
          double val = 0;
          if (!parse_number(val)) return false;
          if (key == "ts") ev.ts = val;
          if (key == "dur") ev.dur = val;
          if (key == "tid") ev.tid = static_cast<long>(val);
        }
      }
      skip_ws();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
    return expect('}');
  }
};

}  // namespace

bool validate_chrome_trace(const std::string& json, std::string* error,
                           std::size_t* distinct_names) {
  Parser p{json};
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };

  if (!p.expect('[')) return fail(p.error);
  std::vector<ParsedEvent> events;
  p.skip_ws();
  if (p.i < json.size() && json[p.i] != ']') {
    for (;;) {
      ParsedEvent ev;
      if (!p.parse_event(ev)) return fail(p.error);
      events.push_back(std::move(ev));
      p.skip_ws();
      if (p.i < json.size() && json[p.i] == ',') {
        ++p.i;
        continue;
      }
      break;
    }
  }
  if (!p.expect(']')) return fail(p.error);

  std::set<std::string> names;
  double prev_ts = -1.0;
  // Per (tid, depth): [start, end] in ns of the latest span seen there,
  // for the nesting check below.
  std::map<std::pair<long, long>, std::pair<std::uint64_t, std::uint64_t>> latest;
  for (const ParsedEvent& ev : events) {
    if (ev.name.empty()) return fail("event without a name");
    if (ev.ph != "X") return fail("event phase is not 'X' (complete)");
    if (ev.ts < 0.0 || ev.dur < 0.0) return fail("negative or missing ts/dur");
    if (ev.tid < 0 || ev.depth < 0) return fail("missing tid or args.depth");
    if (ev.ts < prev_ts) return fail("events not sorted by start timestamp");
    prev_ts = ev.ts;
    names.insert(ev.name);
    if (!ev.trace.empty()) {
      if (ev.trace.size() != 16) return fail("args.trace is not a 16-hex-digit id");
      for (const char c : ev.trace) {
        if (std::isxdigit(static_cast<unsigned char>(c)) == 0 ||
            (std::isalpha(static_cast<unsigned char>(c)) != 0 &&
             std::islower(static_cast<unsigned char>(c)) == 0)) {
          return fail("args.trace is not lowercase hex");
        }
      }
    }

    const auto start = static_cast<std::uint64_t>(std::llround(ev.ts * 1e3));
    const auto end = start + static_cast<std::uint64_t>(std::llround(ev.dur * 1e3));
    if (ev.depth > 0) {
      const auto parent = latest.find({ev.tid, ev.depth - 1});
      if (parent == latest.end()) {
        return fail("span '" + ev.name + "' at depth " + std::to_string(ev.depth) +
                    " has no enclosing span");
      }
      if (start < parent->second.first || end > parent->second.second) {
        return fail("span '" + ev.name + "' is not nested inside its parent");
      }
    }
    latest[{ev.tid, ev.depth}] = {start, end};
  }

  if (distinct_names != nullptr) *distinct_names = names.size();
  return true;
}

#if SMATCH_OBS_ENABLED

namespace {

TraceContext& thread_trace_context() {
  thread_local TraceContext ctx;
  return ctx;
}

}  // namespace

TraceContext current_trace_context() { return thread_trace_context(); }

TraceContextScope::TraceContextScope(std::uint64_t trace_id, std::uint64_t span_id)
    : saved_(thread_trace_context()) {
  thread_trace_context() = {trace_id, span_id};
}

TraceContextScope::~TraceContextScope() { thread_trace_context() = saved_; }

ScopedSpan::ScopedSpan(const char* name, Histogram* hist)
    : name_(nullptr), hist_(hist), start_ns_(0), depth_(0), trace_id_(0) {
  trace_id_ = thread_trace_context().trace_id;
  // Skip the clock reads entirely when the span would go nowhere: no
  // histogram, trace buffer disarmed, and no chance of an exemplar
  // capture (recorder disarmed or no trace context on this thread).
  if (hist == nullptr && !TraceBuffer::instance().enabled() &&
      (trace_id_ == 0 || !ExemplarRecorder::instance().armed())) {
    return;
  }
  name_ = name;
  depth_ = thread_state().depth++;
  start_ns_ = steady_now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr) return;
  const std::uint64_t end_ns = steady_now_ns();
  ThreadState& state = thread_state();
  --state.depth;
  const std::uint64_t dur = end_ns - start_ns_;
  if (hist_ != nullptr) hist_->record(dur);
  TraceBuffer& buf = TraceBuffer::instance();
  if (buf.enabled()) buf.push({name_, start_ns_, dur, state.id, depth_, trace_id_});
  if (trace_id_ != 0 && ExemplarRecorder::instance().armed()) {
    // Absolute timestamps here; ExemplarRecorder::finish rebases per trace.
    ExemplarRecorder::instance().record_span(
        trace_id_, {name_, start_ns_, dur, state.id, depth_, trace_id_});
  }
}

#endif  // SMATCH_OBS_ENABLED

}  // namespace smatch::obs
