#include "bigint/prime.hpp"

#include <array>

#include "common/error.hpp"

namespace smatch {
namespace {

// Enough small primes to filter ~90% of random candidates before
// Miller-Rabin.
constexpr std::array<std::uint64_t, 60> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,
    53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113,
    127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197,
    199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281};

bool miller_rabin_round(const BigInt& n, const BigInt& n_minus_1, const BigInt& d,
                        std::size_t r, const BigInt& base) {
  BigInt x = base.pow_mod(d, n);
  if (x == BigInt{1} || x == n_minus_1) return true;
  for (std::size_t i = 1; i < r; ++i) {
    x = BigInt::mul_mod(x, x, n);
    if (x == n_minus_1) return true;
  }
  return false;
}

}  // namespace

bool is_probable_prime(const BigInt& n, RandomSource& rng, int rounds) {
  if (n.is_negative()) return false;
  for (std::uint64_t p : kSmallPrimes) {
    const BigInt bp{p};
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }
  if (n < BigInt{2}) return false;

  // Write n-1 = d * 2^r with d odd.
  const BigInt n_minus_1 = n - BigInt{1};
  BigInt d = n_minus_1;
  std::size_t r = 0;
  while (d.is_even()) {
    d >>= 1;
    ++r;
  }

  const BigInt two{2};
  const BigInt span = n - BigInt{3};  // bases drawn from [2, n-2]
  for (int i = 0; i < rounds; ++i) {
    const BigInt base = BigInt::random_below(rng, span) + two;
    if (!miller_rabin_round(n, n_minus_1, d, r, base)) return false;
  }
  return true;
}

BigInt random_prime(RandomSource& rng, std::size_t bits, int rounds) {
  if (bits < 2) throw CryptoError("random_prime: need at least 2 bits");
  while (true) {
    BigInt candidate = BigInt::random_bits(rng, bits);
    if (candidate.is_even()) candidate += BigInt{1};
    if (candidate.bit_length() != bits) continue;  // +1 overflowed the width
    if (is_probable_prime(candidate, rng, rounds)) return candidate;
  }
}

BigInt random_safe_prime(RandomSource& rng, std::size_t bits, int rounds) {
  if (bits < 3) throw CryptoError("random_safe_prime: need at least 3 bits");
  while (true) {
    const BigInt q = random_prime(rng, bits - 1, rounds);
    const BigInt p = (q << 1) + BigInt{1};
    if (p.bit_length() != bits) continue;
    if (is_probable_prime(p, rng, rounds)) return p;
  }
}

}  // namespace smatch
