// Arbitrary-precision integers (sign-magnitude, 64-bit limbs).
//
// This is the arithmetic substrate for RSA-OPRF, Paillier, the verification
// group, and big-domain OPE. It implements schoolbook multiplication with a
// Karatsuba crossover, Knuth Algorithm-D division, windowed modular
// exponentiation, and extended-Euclid modular inverse.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/random.hpp"

namespace smatch {

class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From built-in integers.
  BigInt(std::uint64_t v);              // NOLINT(google-explicit-constructor)
  BigInt(std::int64_t v);               // NOLINT(google-explicit-constructor)
  BigInt(int v) : BigInt(static_cast<std::int64_t>(v)) {}  // NOLINT
  BigInt(unsigned v) : BigInt(static_cast<std::uint64_t>(v)) {}  // NOLINT

  /// Parses decimal ("-123") or, with `from_hex_string`, hex digits.
  static BigInt from_decimal(std::string_view s);
  static BigInt from_hex_string(std::string_view s);
  /// Big-endian unsigned bytes.
  static BigInt from_bytes(BytesView data);
  /// Uniform in [0, bound); bound must be positive.
  static BigInt random_below(RandomSource& rng, const BigInt& bound);
  /// Uniform with exactly `bits` bits (MSB forced to 1); bits >= 1.
  static BigInt random_bits(RandomSource& rng, std::size_t bits);

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_negative() const { return neg_; }
  [[nodiscard]] bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  [[nodiscard]] bool is_even() const { return !is_odd(); }

  /// Number of significant bits; 0 for zero.
  [[nodiscard]] std::size_t bit_length() const;
  /// Bit i (0 = LSB) of the magnitude.
  [[nodiscard]] bool bit(std::size_t i) const;

  /// Value as u64; throws CryptoError if negative or too large.
  [[nodiscard]] std::uint64_t to_u64() const;
  /// Decimal string with optional leading '-'.
  [[nodiscard]] std::string to_decimal() const;
  /// Lowercase hex, no sign (magnitude only), "0" for zero.
  [[nodiscard]] std::string to_hex_string() const;
  /// Big-endian magnitude bytes, minimal length ("" for zero).
  [[nodiscard]] Bytes to_bytes() const;
  /// Big-endian magnitude bytes left-padded to exactly `len`;
  /// throws CryptoError if the value does not fit.
  [[nodiscard]] Bytes to_bytes_padded(std::size_t len) const;

  [[nodiscard]] BigInt operator-() const;
  [[nodiscard]] BigInt abs() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  BigInt& operator/=(const BigInt& rhs);  // truncated toward zero
  BigInt& operator%=(const BigInt& rhs);  // sign follows dividend
  BigInt& operator<<=(std::size_t n);
  BigInt& operator>>=(std::size_t n);

  friend BigInt operator+(BigInt a, const BigInt& b) { return a += b; }
  friend BigInt operator-(BigInt a, const BigInt& b) { return a -= b; }
  friend BigInt operator*(BigInt a, const BigInt& b) { return a *= b; }
  friend BigInt operator/(BigInt a, const BigInt& b) { return a /= b; }
  friend BigInt operator%(BigInt a, const BigInt& b) { return a %= b; }
  friend BigInt operator<<(BigInt a, std::size_t n) { return a <<= n; }
  friend BigInt operator>>(BigInt a, std::size_t n) { return a >>= n; }

  friend bool operator==(const BigInt& a, const BigInt& b) = default;
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);

  /// Quotient and remainder in one division (truncated; remainder has the
  /// dividend's sign). Throws CryptoError on division by zero.
  [[nodiscard]] static std::pair<BigInt, BigInt> div_mod(const BigInt& a, const BigInt& b);

  /// Non-negative residue in [0, m); m must be positive.
  [[nodiscard]] BigInt mod(const BigInt& m) const;
  /// (a * b) mod m with non-negative result.
  [[nodiscard]] static BigInt mul_mod(const BigInt& a, const BigInt& b, const BigInt& m);
  /// this^e mod m (e >= 0, m > 0). Uses Montgomery (REDC) arithmetic with
  /// a 4-bit window for odd moduli of >= 8 limbs (every RSA/Paillier/
  /// safe-prime modulus), and plain windowed exponentiation otherwise.
  [[nodiscard]] BigInt pow_mod(const BigInt& e, const BigInt& m) const;
  /// Modular inverse in [0, m); throws CryptoError when gcd(this, m) != 1.
  [[nodiscard]] BigInt inv_mod(const BigInt& m) const;
  /// this^e for small plain exponent.
  [[nodiscard]] BigInt pow(std::uint64_t e) const;

  [[nodiscard]] static BigInt gcd(BigInt a, BigInt b);
  [[nodiscard]] static BigInt lcm(const BigInt& a, const BigInt& b);

  /// Extended gcd: returns g and sets x, y with a*x + b*y = g.
  static BigInt ext_gcd(const BigInt& a, const BigInt& b, BigInt& x, BigInt& y);

  /// Integer square root (floor); value must be non-negative.
  [[nodiscard]] BigInt isqrt() const;

  /// Approximate conversion to long double (magnitude with sign); loses
  /// precision beyond ~64 bits, used only by samplers for ratio estimates.
  [[nodiscard]] long double to_long_double() const;

 private:
  friend class ModExpContext;

  [[nodiscard]] BigInt pow_mod_generic(const BigInt& e, const BigInt& m) const;
  [[nodiscard]] BigInt pow_mod_montgomery(const BigInt& e, const BigInt& m) const;
  [[nodiscard]] static int cmp_mag(const BigInt& a, const BigInt& b);
  static void add_mag(const BigInt& a, const BigInt& b, BigInt& out);
  /// Requires |a| >= |b|.
  static void sub_mag(const BigInt& a, const BigInt& b, BigInt& out);
  static BigInt mul_schoolbook(const BigInt& a, const BigInt& b);
  static BigInt mul_karatsuba(const BigInt& a, const BigInt& b);
  static void div_mod_mag(const BigInt& a, const BigInt& b, BigInt& q, BigInt& r);
  void trim();

  // Magnitude, little-endian 64-bit limbs; empty == zero.
  std::vector<std::uint64_t> limbs_;
  // Sign; never true when limbs_ is empty.
  bool neg_ = false;
};

/// Reusable fixed-exponent modular exponentiation: base^e mod m for a
/// (exponent, modulus) pair fixed at construction.
///
/// Precomputes everything that does not depend on the base — the
/// Montgomery parameters of the modulus (R^2 mod m, the Montgomery one)
/// and the 4-bit fixed-window decomposition of the exponent — so repeated
/// evaluations skip the per-call setup `pow_mod` pays (one full-width
/// division for R^2 plus the exponent bit scan). `pow()` is const and
/// thread-safe: one context can serve concurrent evaluations, which is how
/// the RSA-OPRF key service shares its per-CRT-prime contexts across a
/// batch thread pool.
///
/// Moduli outside the Montgomery fast path (even, or narrower than the
/// crossover) fall back to plain `BigInt::pow_mod` per call.
class ModExpContext {
 public:
  /// An empty context; `pow` must not be called until one is assigned.
  ModExpContext() = default;
  /// Requires e >= 0 and m > 0 (throws CryptoError otherwise).
  ModExpContext(const BigInt& exponent, const BigInt& modulus);

  /// base^exponent mod modulus. Thread-safe on a shared context.
  [[nodiscard]] BigInt pow(const BigInt& base) const;

 private:
  BigInt exponent_;
  BigInt modulus_;
  bool montgomery_ = false;
  std::vector<std::uint64_t> r2_;      // R^2 mod m (R = 2^(64k))
  std::vector<std::uint64_t> one_;     // R mod m, the Montgomery one
  std::vector<std::uint8_t> windows_;  // 4-bit exponent digits, MSB first
};

}  // namespace smatch
