// Primality testing and prime generation on top of BigInt.
#pragma once

#include <cstddef>

#include "bigint/bigint.hpp"
#include "common/random.hpp"

namespace smatch {

/// Miller-Rabin probabilistic primality test with `rounds` random bases
/// (error probability <= 4^-rounds), preceded by trial division against
/// small primes.
[[nodiscard]] bool is_probable_prime(const BigInt& n, RandomSource& rng, int rounds = 32);

/// Uniformly random probable prime with exactly `bits` bits.
[[nodiscard]] BigInt random_prime(RandomSource& rng, std::size_t bits, int rounds = 32);

/// Random safe prime p = 2q + 1 (q also prime) with exactly `bits` bits.
/// Safe-prime search is expensive; intended for test-scale parameters.
/// Production-size verification groups use the precomputed RFC 3526 modulus
/// in group/modp_group.hpp.
[[nodiscard]] BigInt random_safe_prime(RandomSource& rng, std::size_t bits, int rounds = 16);

}  // namespace smatch
