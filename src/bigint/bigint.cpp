#include "bigint/bigint.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "common/error.hpp"

namespace smatch {

using u64 = std::uint64_t;
using u128 = unsigned __int128;
using i128 = __int128;

namespace {
// Karatsuba pays off only for operands well past RSA-2048 sizes.
constexpr std::size_t kKaratsubaLimbs = 40;
// 10^19 is the largest power of ten below 2^64.
constexpr u64 kDecChunk = 10000000000000000000ULL;
constexpr int kDecChunkDigits = 19;
}  // namespace

BigInt::BigInt(u64 v) {
  if (v != 0) limbs_.push_back(v);
}

BigInt::BigInt(std::int64_t v) {
  if (v < 0) {
    neg_ = true;
    // Avoid UB on INT64_MIN.
    limbs_.push_back(static_cast<u64>(-(v + 1)) + 1);
  } else if (v > 0) {
    limbs_.push_back(static_cast<u64>(v));
  }
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) neg_ = false;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  return 64 * (limbs_.size() - 1) +
         static_cast<std::size_t>(64 - std::countl_zero(limbs_.back()));
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

u64 BigInt::to_u64() const {
  if (neg_) throw CryptoError("to_u64: negative value");
  if (limbs_.size() > 1) throw CryptoError("to_u64: value exceeds 64 bits");
  return limbs_.empty() ? 0 : limbs_[0];
}

int BigInt::cmp_mag(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.neg_ != b.neg_) {
    return a.neg_ ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  const int mag = BigInt::cmp_mag(a, b);
  const int signed_cmp = a.neg_ ? -mag : mag;
  if (signed_cmp < 0) return std::strong_ordering::less;
  if (signed_cmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

void BigInt::add_mag(const BigInt& a, const BigInt& b, BigInt& out) {
  const std::vector<u64>& x = a.limbs_.size() >= b.limbs_.size() ? a.limbs_ : b.limbs_;
  const std::vector<u64>& y = a.limbs_.size() >= b.limbs_.size() ? b.limbs_ : a.limbs_;
  std::vector<u64> r(x.size() + 1, 0);
  u128 carry = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    u128 s = carry + x[i] + (i < y.size() ? y[i] : 0);
    r[i] = static_cast<u64>(s);
    carry = s >> 64;
  }
  r[x.size()] = static_cast<u64>(carry);
  out.limbs_ = std::move(r);
  out.trim();
}

void BigInt::sub_mag(const BigInt& a, const BigInt& b, BigInt& out) {
  // Precondition: |a| >= |b|.
  std::vector<u64> r(a.limbs_.size(), 0);
  i128 borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    i128 d = static_cast<i128>(a.limbs_[i]) - borrow -
             (i < b.limbs_.size() ? static_cast<i128>(b.limbs_[i]) : 0);
    if (d < 0) {
      d += (static_cast<i128>(1) << 64);
      borrow = 1;
    } else {
      borrow = 0;
    }
    r[i] = static_cast<u64>(d);
  }
  out.limbs_ = std::move(r);
  out.trim();
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (neg_ == rhs.neg_) {
    const bool sign = neg_;
    add_mag(*this, rhs, *this);
    neg_ = !limbs_.empty() && sign;
    return *this;
  }
  // Opposite signs: subtract the smaller magnitude from the larger.
  const int c = cmp_mag(*this, rhs);
  if (c == 0) {
    limbs_.clear();
    neg_ = false;
  } else if (c > 0) {
    const bool sign = neg_;
    sub_mag(*this, rhs, *this);
    neg_ = !limbs_.empty() && sign;
  } else {
    const bool sign = rhs.neg_;
    sub_mag(rhs, *this, *this);
    neg_ = !limbs_.empty() && sign;
  }
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) {
  BigInt negated = rhs;
  if (!negated.limbs_.empty()) negated.neg_ = !negated.neg_;
  return *this += negated;
}

BigInt BigInt::operator-() const {
  BigInt r = *this;
  if (!r.limbs_.empty()) r.neg_ = !r.neg_;
  return r;
}

BigInt BigInt::abs() const {
  BigInt r = *this;
  r.neg_ = false;
  return r;
}

BigInt BigInt::mul_schoolbook(const BigInt& a, const BigInt& b) {
  BigInt out;
  if (a.limbs_.empty() || b.limbs_.empty()) return out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    u128 carry = 0;
    const u64 ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      u128 cur = static_cast<u128>(ai) * b.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<u64>(cur);
      carry = cur >> 64;
    }
    out.limbs_[i + b.limbs_.size()] = static_cast<u64>(carry);
  }
  out.trim();
  return out;
}

BigInt BigInt::mul_karatsuba(const BigInt& a, const BigInt& b) {
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  if (n < kKaratsubaLimbs) return mul_schoolbook(a, b);
  const std::size_t half = n / 2;

  auto split = [half](const BigInt& v, BigInt& lo, BigInt& hi) {
    if (v.limbs_.size() <= half) {
      lo = v;
      lo.neg_ = false;
      hi = BigInt{};
    } else {
      lo.limbs_.assign(v.limbs_.begin(), v.limbs_.begin() + static_cast<std::ptrdiff_t>(half));
      lo.neg_ = false;
      lo.trim();
      hi.limbs_.assign(v.limbs_.begin() + static_cast<std::ptrdiff_t>(half), v.limbs_.end());
      hi.neg_ = false;
      hi.trim();
    }
  };

  BigInt a0, a1, b0, b1;
  split(a, a0, a1);
  split(b, b0, b1);

  BigInt z0 = mul_karatsuba(a0, b0);
  BigInt z2 = mul_karatsuba(a1, b1);
  BigInt z1 = mul_karatsuba(a0 + a1, b0 + b1) - z0 - z2;

  BigInt r = (z2 << (128 * half)) + (z1 << (64 * half)) + z0;
  r.neg_ = false;
  return r;
}

BigInt& BigInt::operator*=(const BigInt& rhs) {
  const bool sign = neg_ != rhs.neg_;
  BigInt r = mul_karatsuba(*this, rhs);
  r.neg_ = !r.limbs_.empty() && sign;
  *this = std::move(r);
  return *this;
}

void BigInt::div_mod_mag(const BigInt& a, const BigInt& b, BigInt& q, BigInt& r) {
  // Preconditions: b != 0; signs are ignored (magnitudes only).
  if (cmp_mag(a, b) < 0) {
    q = BigInt{};
    r = a;
    r.neg_ = false;
    return;
  }
  if (b.limbs_.size() == 1) {
    const u64 d = b.limbs_[0];
    std::vector<u64> quot(a.limbs_.size(), 0);
    u128 rem = 0;
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
      u128 cur = (rem << 64) | a.limbs_[i];
      quot[i] = static_cast<u64>(cur / d);
      rem = cur % d;
    }
    q.limbs_ = std::move(quot);
    q.neg_ = false;
    q.trim();
    r = BigInt{static_cast<u64>(rem)};
    return;
  }

  // Knuth TAOCP vol. 2, Algorithm D, with 64-bit limbs.
  const std::size_t n = b.limbs_.size();
  const std::size_t m = a.limbs_.size() - n;
  const int shift = std::countl_zero(b.limbs_.back());

  BigInt vb = b;
  vb.neg_ = false;
  vb <<= static_cast<std::size_t>(shift);
  BigInt ua = a;
  ua.neg_ = false;
  ua <<= static_cast<std::size_t>(shift);

  std::vector<u64> u = ua.limbs_;
  u.resize(m + n + 1, 0);
  const std::vector<u64>& v = vb.limbs_;
  std::vector<u64> quot(m + 1, 0);

  const u64 vn1 = v[n - 1];
  const u64 vn2 = v[n - 2];
  constexpr u128 kBase = static_cast<u128>(1) << 64;

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate qhat.
    u128 num = (static_cast<u128>(u[j + n]) << 64) | u[j + n - 1];
    u128 qhat = num / vn1;
    u128 rhat = num - qhat * vn1;
    while (qhat >= kBase ||
           static_cast<u128>(static_cast<u64>(qhat)) * vn2 >
               ((rhat << 64) | u[j + n - 2])) {
      --qhat;
      rhat += vn1;
      if (rhat >= kBase) break;
    }
    const u64 qh = static_cast<u64>(qhat);

    // D4: multiply and subtract.
    i128 t;
    i128 k = 0;
    for (std::size_t i = 0; i < n; ++i) {
      u128 p = static_cast<u128>(qh) * v[i];
      t = static_cast<i128>(u[i + j]) - k - static_cast<i128>(static_cast<u64>(p));
      u[i + j] = static_cast<u64>(t);
      k = static_cast<i128>(p >> 64) - (t >> 64);
    }
    t = static_cast<i128>(u[j + n]) - k;
    u[j + n] = static_cast<u64>(t);

    quot[j] = qh;
    if (t < 0) {
      // D6: the estimate was one too large; add the divisor back.
      --quot[j];
      u128 carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        u128 s = static_cast<u128>(u[i + j]) + v[i] + carry;
        u[i + j] = static_cast<u64>(s);
        carry = s >> 64;
      }
      u[j + n] += static_cast<u64>(carry);
    }
  }

  q.limbs_ = std::move(quot);
  q.neg_ = false;
  q.trim();

  r.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  r.neg_ = false;
  r.trim();
  r >>= static_cast<std::size_t>(shift);
}

std::pair<BigInt, BigInt> BigInt::div_mod(const BigInt& a, const BigInt& b) {
  if (b.is_zero()) throw CryptoError("division by zero");
  BigInt q, r;
  div_mod_mag(a, b, q, r);
  // Truncated division: quotient sign is XOR, remainder follows dividend.
  q.neg_ = !q.limbs_.empty() && (a.neg_ != b.neg_);
  r.neg_ = !r.limbs_.empty() && a.neg_;
  return {std::move(q), std::move(r)};
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  *this = div_mod(*this, rhs).first;
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  *this = div_mod(*this, rhs).second;
  return *this;
}

BigInt& BigInt::operator<<=(std::size_t nbits) {
  if (limbs_.empty() || nbits == 0) return *this;
  const std::size_t limb_shift = nbits / 64;
  const std::size_t bit_shift = nbits % 64;
  std::vector<u64> r(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    r[i + limb_shift] |= bit_shift == 0 ? limbs_[i] : (limbs_[i] << bit_shift);
    if (bit_shift != 0) {
      r[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  limbs_ = std::move(r);
  trim();
  return *this;
}

BigInt& BigInt::operator>>=(std::size_t nbits) {
  if (limbs_.empty() || nbits == 0) return *this;
  const std::size_t limb_shift = nbits / 64;
  const std::size_t bit_shift = nbits % 64;
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    neg_ = false;
    return *this;
  }
  std::vector<u64> r(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      r[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  limbs_ = std::move(r);
  trim();
  return *this;
}

BigInt BigInt::mod(const BigInt& m) const {
  if (m.is_zero() || m.neg_) throw CryptoError("mod: modulus must be positive");
  BigInt r = div_mod(*this, m).second;
  if (r.neg_) r += m;
  return r;
}

BigInt BigInt::mul_mod(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a * b).mod(m);
}

BigInt BigInt::pow_mod(const BigInt& e, const BigInt& m) const {
  if (m.is_zero() || m.neg_) throw CryptoError("pow_mod: modulus must be positive");
  if (e.neg_) throw CryptoError("pow_mod: negative exponent");
  if (m == BigInt{1}) return BigInt{};
  if (e.is_zero()) return BigInt{1};
  // Montgomery arithmetic needs an odd modulus and pays off once operands
  // are several limbs wide.
  if (m.is_odd() && m.limbs_.size() >= 8) {
    return pow_mod_montgomery(e, m);
  }
  return pow_mod_generic(e, m);
}

BigInt BigInt::pow_mod_generic(const BigInt& e, const BigInt& m) const {
  BigInt base = mod(m);

  // 4-bit fixed-window exponentiation.
  std::array<BigInt, 16> table;
  table[0] = BigInt{1};
  for (int i = 1; i < 16; ++i) table[static_cast<std::size_t>(i)] = mul_mod(table[static_cast<std::size_t>(i - 1)], base, m);

  const std::size_t bits = e.bit_length();
  // Round the window scan up to a multiple of 4.
  std::size_t top = (bits + 3) / 4 * 4;
  BigInt acc{1};
  while (top >= 4) {
    top -= 4;
    for (int s = 0; s < 4; ++s) acc = mul_mod(acc, acc, m);
    unsigned window = 0;
    for (int s = 3; s >= 0; --s) {
      window = window << 1 | static_cast<unsigned>(e.bit(top + static_cast<std::size_t>(s)));
    }
    if (window != 0) acc = mul_mod(acc, table[window], m);
  }
  return acc;
}

namespace {

// Montgomery REDC over raw limb vectors (little-endian), word size 2^64.
// Given T < m * R with R = 2^(64k), computes T * R^-1 mod m in place.
struct MontgomeryCtx {
  std::vector<u64> m;  // modulus limbs, size k
  u64 inv = 0;         // -m[0]^-1 mod 2^64

  explicit MontgomeryCtx(const std::vector<u64>& modulus) : m(modulus) {
    // Newton iteration: x_{n+1} = x_n * (2 - m0 * x_n) doubles correct
    // bits per step; 6 steps cover 64 bits (m0 odd).
    const u64 m0 = m[0];
    u64 x = 1;
    for (int i = 0; i < 6; ++i) x *= 2 - m0 * x;
    inv = ~x + 1;  // -m0^-1 mod 2^64
  }

  [[nodiscard]] std::size_t k() const { return m.size(); }

  // out = REDC(a * b); a, b in the Montgomery domain, size k, < m.
  void mul(const std::vector<u64>& a, const std::vector<u64>& b,
           std::vector<u64>& out, std::vector<u64>& scratch) const {
    const std::size_t n = k();
    scratch.assign(2 * n + 1, 0);
    // Schoolbook product into scratch.
    for (std::size_t i = 0; i < n; ++i) {
      u128 carry = 0;
      const u64 ai = a[i];
      for (std::size_t j = 0; j < n; ++j) {
        u128 cur = static_cast<u128>(ai) * b[j] + scratch[i + j] + carry;
        scratch[i + j] = static_cast<u64>(cur);
        carry = cur >> 64;
      }
      scratch[i + n] += static_cast<u64>(carry);
    }
    reduce(scratch, out);
  }

  // out = REDC(T); T has 2k+1 limbs, consumed.
  void reduce(std::vector<u64>& t, std::vector<u64>& out) const {
    const std::size_t n = k();
    for (std::size_t i = 0; i < n; ++i) {
      const u64 u = t[i] * inv;
      u128 carry = 0;
      for (std::size_t j = 0; j < n; ++j) {
        u128 cur = static_cast<u128>(u) * m[j] + t[i + j] + carry;
        t[i + j] = static_cast<u64>(cur);
        carry = cur >> 64;
      }
      // Propagate the carry through the upper limbs.
      std::size_t idx = i + n;
      while (carry != 0 && idx < t.size()) {
        u128 cur = static_cast<u128>(t[idx]) + carry;
        t[idx] = static_cast<u64>(cur);
        carry = cur >> 64;
        ++idx;
      }
    }
    out.assign(t.begin() + static_cast<std::ptrdiff_t>(n),
               t.begin() + static_cast<std::ptrdiff_t>(2 * n + 1));
    // Conditional subtraction: result < 2m here.
    if (ge(out, m)) sub_in_place(out, m);
    out.resize(n);
  }

  // Compares little-endian limb vectors (out may have one extra limb).
  static bool ge(const std::vector<u64>& a, const std::vector<u64>& b) {
    std::size_t a_len = a.size();
    while (a_len > 0 && a[a_len - 1] == 0) --a_len;
    std::size_t b_len = b.size();
    while (b_len > 0 && b[b_len - 1] == 0) --b_len;
    if (a_len != b_len) return a_len > b_len;
    for (std::size_t i = a_len; i-- > 0;) {
      if (a[i] != b[i]) return a[i] > b[i];
    }
    return true;  // equal
  }

  static void sub_in_place(std::vector<u64>& a, const std::vector<u64>& b) {
    i128 borrow = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      i128 d = static_cast<i128>(a[i]) - borrow - (i < b.size() ? static_cast<i128>(b[i]) : 0);
      if (d < 0) {
        d += static_cast<i128>(1) << 64;
        borrow = 1;
      } else {
        borrow = 0;
      }
      a[i] = static_cast<u64>(d);
    }
  }
};

}  // namespace

BigInt BigInt::pow_mod_montgomery(const BigInt& e, const BigInt& m) const {
  // One-shot path: build the reusable context and evaluate once. Callers
  // with a fixed (e, m) pair hold a ModExpContext instead and amortize the
  // setup (R^2 division, exponent windows) across evaluations.
  return ModExpContext(e, m).pow(*this);
}

ModExpContext::ModExpContext(const BigInt& exponent, const BigInt& modulus)
    : exponent_(exponent), modulus_(modulus) {
  if (modulus_.is_zero() || modulus_.neg_) {
    throw CryptoError("ModExpContext: modulus must be positive");
  }
  if (exponent_.neg_) throw CryptoError("ModExpContext: negative exponent");
  montgomery_ = modulus_.is_odd() && modulus_.limbs_.size() >= 8;
  if (!montgomery_) return;

  const std::size_t n = modulus_.limbs_.size();
  const MontgomeryCtx ctx(modulus_.limbs_);

  // R^2 mod m, one full-width division — the dominant per-call setup cost
  // pow_mod pays and this context pays once.
  const BigInt r2_big = (BigInt{1} << (128 * n)).mod(modulus_);
  r2_ = r2_big.limbs_;
  r2_.resize(n, 0);

  // mont(1) = R mod m = REDC(R^2).
  std::vector<u64> t = r2_;
  t.resize(2 * n + 1, 0);
  one_.resize(n);
  ctx.reduce(t, one_);

  // Fixed-window decomposition of the exponent, most significant digit
  // first, so evaluations skip the per-bit scan.
  const std::size_t digits = (exponent_.bit_length() + 3) / 4;
  windows_.resize(digits);
  for (std::size_t d = 0; d < digits; ++d) {
    const std::size_t lo = (digits - 1 - d) * 4;
    unsigned w = 0;
    for (int s = 3; s >= 0; --s) {
      w = w << 1 | static_cast<unsigned>(exponent_.bit(lo + static_cast<std::size_t>(s)));
    }
    windows_[d] = static_cast<std::uint8_t>(w);
  }
}

BigInt ModExpContext::pow(const BigInt& base) const {
  if (modulus_.is_zero()) throw CryptoError("ModExpContext: pow on an empty context");
  if (modulus_ == BigInt{1}) return BigInt{};
  if (exponent_.is_zero()) return BigInt{1};
  if (!montgomery_) return base.pow_mod(exponent_, modulus_);

  // Rebuilding the REDC helper is just the Newton inversion of m[0] —
  // nanoseconds — while r2_/one_/windows_ carry the expensive state.
  const MontgomeryCtx ctx(modulus_.limbs_);
  const std::size_t n = ctx.k();

  // Into the Montgomery domain: mont(x) = REDC(x * R^2).
  std::vector<u64> b = base.mod(modulus_).limbs_;
  b.resize(n, 0);
  std::vector<u64> scratch;
  std::vector<u64> mont_base(n);
  ctx.mul(b, r2_, mont_base, scratch);

  // 4-bit window table of mont_base powers.
  std::array<std::vector<u64>, 16> table;
  table[0] = one_;
  table[1] = mont_base;
  for (std::size_t i = 2; i < 16; ++i) {
    table[i].resize(n);
    ctx.mul(table[i - 1], mont_base, table[i], scratch);
  }

  std::vector<u64> acc = one_;
  std::vector<u64> tmp(n);
  for (const std::uint8_t window : windows_) {
    for (int s = 0; s < 4; ++s) {
      ctx.mul(acc, acc, tmp, scratch);
      acc.swap(tmp);
    }
    if (window != 0) {
      ctx.mul(acc, table[window], tmp, scratch);
      acc.swap(tmp);
    }
  }

  // Out of the domain: REDC(acc).
  std::vector<u64> t(2 * n + 1, 0);
  std::copy(acc.begin(), acc.end(), t.begin());
  std::vector<u64> result(n);
  ctx.reduce(t, result);

  BigInt out;
  out.limbs_ = std::move(result);
  out.trim();
  return out;
}

BigInt BigInt::pow(u64 e) const {
  BigInt acc{1};
  BigInt base = *this;
  while (e != 0) {
    if (e & 1) acc *= base;
    base *= base;
    e >>= 1;
  }
  return acc;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.neg_ = false;
  b.neg_ = false;
  while (!b.is_zero()) {
    BigInt r = div_mod(a, b).second;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::lcm(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt{};
  return (a.abs() / gcd(a, b)) * b.abs();
}

BigInt BigInt::ext_gcd(const BigInt& a, const BigInt& b, BigInt& x, BigInt& y) {
  // Iterative extended Euclid on signed values.
  BigInt old_r = a, r = b;
  BigInt old_s{1}, s{};
  BigInt old_t{}, t{1};
  while (!r.is_zero()) {
    auto [q, rem] = div_mod(old_r, r);
    old_r = std::move(r);
    r = std::move(rem);
    BigInt tmp_s = old_s - q * s;
    old_s = std::move(s);
    s = std::move(tmp_s);
    BigInt tmp_t = old_t - q * t;
    old_t = std::move(t);
    t = std::move(tmp_t);
  }
  x = std::move(old_s);
  y = std::move(old_t);
  return old_r;
}

BigInt BigInt::inv_mod(const BigInt& m) const {
  if (m.is_zero() || m.neg_) throw CryptoError("inv_mod: modulus must be positive");
  BigInt x, y;
  const BigInt g = ext_gcd(this->mod(m), m, x, y);
  if (g != BigInt{1}) throw CryptoError("inv_mod: value not invertible");
  return x.mod(m);
}

BigInt BigInt::isqrt() const {
  if (neg_) throw CryptoError("isqrt: negative value");
  if (is_zero()) return BigInt{};
  // Newton's method with an over-estimate start: 2^ceil(bits/2).
  BigInt x = BigInt{1} << ((bit_length() + 1) / 2);
  while (true) {
    BigInt next = (x + *this / x) >> 1;
    if (next >= x) break;
    x = std::move(next);
  }
  return x;
}

BigInt BigInt::from_decimal(std::string_view s) {
  bool neg = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    neg = s[0] == '-';
    s.remove_prefix(1);
  }
  if (s.empty()) throw SerdeError("empty decimal string");
  BigInt r;
  std::size_t i = 0;
  while (i < s.size()) {
    const std::size_t chunk_len = std::min<std::size_t>(kDecChunkDigits, s.size() - i);
    u64 chunk = 0;
    u64 scale = 1;
    for (std::size_t j = 0; j < chunk_len; ++j) {
      const char c = s[i + j];
      if (c < '0' || c > '9') throw SerdeError("invalid decimal digit");
      chunk = chunk * 10 + static_cast<u64>(c - '0');
      scale *= 10;
    }
    r *= BigInt{chunk_len == kDecChunkDigits ? kDecChunk : scale};
    r += BigInt{chunk};
    i += chunk_len;
  }
  r.neg_ = !r.limbs_.empty() && neg;
  return r;
}

std::string BigInt::to_decimal() const {
  if (is_zero()) return "0";
  std::vector<u64> chunks;
  BigInt v = abs();
  const BigInt divisor{kDecChunk};
  while (!v.is_zero()) {
    auto [q, r] = div_mod(v, divisor);
    chunks.push_back(r.limbs_.empty() ? 0 : r.limbs_[0]);
    v = std::move(q);
  }
  std::string out;
  if (neg_) out.push_back('-');
  out += std::to_string(chunks.back());
  for (std::size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out.append(static_cast<std::size_t>(kDecChunkDigits) - part.size(), '0');
    out += part;
  }
  return out;
}

BigInt BigInt::from_hex_string(std::string_view s) {
  bool neg = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    neg = s[0] == '-';
    s.remove_prefix(1);
  }
  if (s.starts_with("0x") || s.starts_with("0X")) s.remove_prefix(2);
  if (s.empty()) throw SerdeError("empty hex string");
  BigInt r;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else throw SerdeError("invalid hex digit");
    r <<= 4;
    r += BigInt{static_cast<u64>(d)};
  }
  r.neg_ = !r.limbs_.empty() && neg;
  return r;
}

std::string BigInt::to_hex_string() const {
  if (is_zero()) return "0";
  constexpr char digits[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(digits[(limbs_[i] >> shift) & 0xf]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

BigInt BigInt::from_bytes(BytesView data) {
  BigInt r;
  for (std::uint8_t b : data) {
    r <<= 8;
    r += BigInt{static_cast<u64>(b)};
  }
  return r;
}

Bytes BigInt::to_bytes() const {
  const std::size_t len = (bit_length() + 7) / 8;
  return to_bytes_padded(len);
}

Bytes BigInt::to_bytes_padded(std::size_t len) const {
  if ((bit_length() + 7) / 8 > len) {
    throw CryptoError("to_bytes_padded: value too large for requested length");
  }
  Bytes out(len, 0);
  for (std::size_t i = 0; i < len; ++i) {
    const std::size_t byte_index = len - 1 - i;  // big-endian position
    const std::size_t limb = i / 8;
    if (limb < limbs_.size()) {
      out[byte_index] = static_cast<std::uint8_t>(limbs_[limb] >> (8 * (i % 8)));
    }
  }
  return out;
}

BigInt BigInt::random_bits(RandomSource& rng, std::size_t bits) {
  if (bits == 0) throw CryptoError("random_bits: bits must be >= 1");
  const std::size_t nbytes = (bits + 7) / 8;
  Bytes buf = rng.bytes(nbytes);
  // Clear excess top bits, then force the MSB so bit_length() == bits.
  const std::size_t excess = nbytes * 8 - bits;
  buf[0] = static_cast<std::uint8_t>(buf[0] & (0xffu >> excess));
  buf[0] |= static_cast<std::uint8_t>(0x80u >> excess);
  return from_bytes(buf);
}

BigInt BigInt::random_below(RandomSource& rng, const BigInt& bound) {
  if (bound.is_zero() || bound.neg_) {
    throw CryptoError("random_below: bound must be positive");
  }
  const std::size_t bits = bound.bit_length();
  const std::size_t nbytes = (bits + 7) / 8;
  const std::size_t excess = nbytes * 8 - bits;
  while (true) {
    Bytes buf = rng.bytes(nbytes);
    buf[0] = static_cast<std::uint8_t>(buf[0] & (0xffu >> excess));
    BigInt candidate = from_bytes(buf);
    if (candidate < bound) return candidate;
  }
}

long double BigInt::to_long_double() const {
  if (limbs_.empty()) return 0.0L;
  long double v = 0.0L;
  // Top two limbs capture all precision a long double can hold.
  const std::size_t n = limbs_.size();
  v = static_cast<long double>(limbs_[n - 1]);
  if (n >= 2) {
    v = v * 18446744073709551616.0L + static_cast<long double>(limbs_[n - 2]);
  }
  const std::size_t dropped_limbs = n >= 2 ? n - 2 : 0;
  v = std::ldexp(v, static_cast<int>(dropped_limbs * 64));
  return neg_ ? -v : v;
}

}  // namespace smatch
