// Real TCP Transport over POSIX sockets.
//
// Sockets run non-blocking; every call drives its own poll(2) loop
// against the caller's deadline, so a slow or dead peer surfaces as
// kTimeout instead of a hung thread. Frames are the length-prefixed
// CRC-protected records of net/transport.hpp, reassembled from the byte
// stream by the shared FrameDecoder (TCP does not respect frame
// boundaries; short reads are the normal case, not an error path).
//
// Connect/accept/send/recv are instrumented with net.* spans and the
// smatch_net_{connects,accepts}_total registry counters.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/transport.hpp"

namespace smatch {

class TcpTransport final : public Transport {
 public:
  /// Connects to host:port (numeric IPv4 dotted quad or "localhost").
  /// kConnectionReset when the peer refuses, kTimeout when the handshake
  /// outlives the deadline.
  [[nodiscard]] static StatusOr<std::unique_ptr<TcpTransport>> connect(
      const std::string& host, std::uint16_t port, std::chrono::milliseconds timeout);

  ~TcpTransport() override;

  Status send(MessageKind kind, BytesView payload,
              std::chrono::milliseconds timeout) override;
  StatusOr<Frame> recv(std::chrono::milliseconds timeout) override;
  Status close() override;

  // Readiness mode: the socket itself is the pollable handle. A fault-
  // injected delay is honoured without blocking by holding staged bytes
  // until the deadline (flush_some reports kWouldBlock meanwhile).
  [[nodiscard]] int pollable_fd() const override { return fd_; }
  StatusOr<Frame> recv_some() override;
  Status send_some(MessageKind kind, BytesView payload) override;
  Status flush_some() override;
  [[nodiscard]] std::size_t pending_out_bytes() const override;

 private:
  friend class TcpListener;
  explicit TcpTransport(int fd);

  /// Writes staged bytes until done or EAGAIN; caller holds send_mu_.
  [[nodiscard]] Status flush_locked();

  int fd_ = -1;
  mutable std::mutex send_mu_;  // one writer at a time; recv has its own decoder
  FrameDecoder decoder_;

  // Nonblocking-send staging buffer (consumed prefix compacted on flush)
  // and the fault-injection hold deadline. Guarded by send_mu_ so the
  // blocking and nonblocking send paths cannot interleave mid-frame.
  Bytes out_buf_;
  std::size_t out_pos_ = 0;
  std::chrono::steady_clock::time_point hold_until_{};
};

/// Listening socket; accept() yields connected TcpTransport endpoints.
class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port —
  /// read it back with port()).
  [[nodiscard]] static StatusOr<TcpListener> bind(std::uint16_t port);

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// The listening socket (nonblocking) for readiness polling; -1 once
  /// closed. Owned by the listener — callers only ever poll it.
  [[nodiscard]] int fd() const { return fd_; }

  /// Waits up to `timeout` for one inbound connection. kTimeout when
  /// nobody called, kConnectionReset once the listener is closed.
  [[nodiscard]] StatusOr<std::unique_ptr<TcpTransport>> accept(
      std::chrono::milliseconds timeout);

  /// Stops accepting; a blocked accept() returns promptly.
  void close();

 private:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace smatch
