#include "net/fault.hpp"

#include "obs/registry.hpp"

namespace smatch {

FaultInjector::FaultInjector(FaultSpec spec) : spec_(spec), rng_(spec.seed) {}

bool FaultInjector::roll(double probability) {
  if (probability <= 0.0) return false;
  // 53-bit uniform in [0, 1): plenty for test-grade probabilities.
  const double u = static_cast<double>(rng_.u64() >> 11) * 0x1.0p-53;
  return u < probability;
}

std::vector<Bytes> FaultInjector::on_send(Bytes frame,
                                          std::chrono::milliseconds* delayed_out) {
  obs::Registry& reg = obs::Registry::global();
  std::lock_guard lk(mu_);
  if (delayed_out != nullptr) *delayed_out = std::chrono::milliseconds{0};

  if (roll(spec_.drop)) {
    ++counters_.dropped;
    reg.counter("smatch_net_fault_dropped_total")->fetch_add(1, std::memory_order_relaxed);
    // A held frame stays held: the drop eats only this one.
    return {};
  }
  if (roll(spec_.corrupt) && !frame.empty()) {
    ++counters_.corrupted;
    reg.counter("smatch_net_fault_corrupted_total")->fetch_add(1, std::memory_order_relaxed);
    // Flip one bit past the length prefix so the stream stays framed and
    // the damage lands in the CRC-protected region.
    const std::size_t lo = frame.size() > 4 ? 4 : 0;
    const std::size_t pos = lo + rng_.below(frame.size() - lo);
    frame[pos] ^= static_cast<std::uint8_t>(1u << rng_.below(8));
  }
  if (roll(spec_.delay) && delayed_out != nullptr) {
    ++counters_.delayed;
    reg.counter("smatch_net_fault_delayed_total")->fetch_add(1, std::memory_order_relaxed);
    *delayed_out = spec_.delay_ms;
  }

  if (held_.has_value()) {
    // Release the held frame *behind* the current one: swapped order.
    std::vector<Bytes> out;
    out.push_back(std::move(frame));
    out.push_back(std::move(*held_));
    held_.reset();
    return out;
  }
  if (roll(spec_.reorder)) {
    ++counters_.reordered;
    reg.counter("smatch_net_fault_reordered_total")->fetch_add(1, std::memory_order_relaxed);
    held_ = std::move(frame);
    return {};
  }
  std::vector<Bytes> out;
  out.push_back(std::move(frame));
  return out;
}

FaultCounters FaultInjector::counters() const {
  std::lock_guard lk(mu_);
  return counters_;
}

}  // namespace smatch
