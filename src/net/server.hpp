// Frame server: one listener plus N connection workers on a ThreadPool.
//
// The server owns a FrameDispatcher and serves every connection with
// serve_connection (net/session.hpp): each connection gets its own
// replay cache, requests are answered in arrival order per connection,
// and different connections run on different workers.
//
// Thread layout: the pool is sized to exactly workers + 1 threads and
// driven by a single blocking parallel_for(workers + 1) — index 0 runs
// the accept loop, indices 1..workers run connection workers. With that
// sizing every loop index gets its own thread, so none of the infinite
// loops ever share (or starve) a pool thread. A dedicated runner thread
// hosts the parallel_for so start() returns immediately.
//
// Shutdown is cooperative and TSan-clean: stop() only flips an atomic
// that every loop polls between short timeouts; sockets are closed by
// the thread that owns them after its loop exits, never from another
// thread.
//
// Two ways in:
//   * start(port) — bind a TCP listener on 127.0.0.1 (port 0 picks an
//     ephemeral port, read it back with port()).
//   * attach(transport) — hand the server one end of an in-process
//     transport pair (net/inproc_transport.hpp); it is served by the
//     same workers and dispatcher as a TCP connection.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <optional>
#include <thread>

#include "common/thread_pool.hpp"
#include "net/session.hpp"
#include "net/tcp_transport.hpp"

namespace smatch {

class NetServer {
 public:
  /// `workers` = concurrent connections served; total threads used is
  /// workers + 1 (the listener) + 1 (the runner hosting the pool).
  explicit NetServer(FrameDispatcher dispatcher, std::size_t workers = 2);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds 127.0.0.1:`port` and starts serving. Call at most once.
  [[nodiscard]] Status start(std::uint16_t port);

  /// The bound TCP port (0 until start() succeeded).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Enqueues an in-process connection for the worker pool. Lazily
  /// launches the loops, so a TCP-less server works too.
  void attach(std::unique_ptr<Transport> connection);

  /// Stops every loop and joins. Idempotent; also run by the destructor.
  void stop();

  /// Connections currently being served.
  [[nodiscard]] std::size_t active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  void launch();       // starts the runner once
  void accept_loop();  // pool index 0
  void worker_loop();  // pool indices 1..workers

  FrameDispatcher dispatcher_;
  std::size_t workers_;
  ThreadPool pool_;
  std::thread runner_;
  bool launched_ = false;  // guarded by mu_
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> active_{0};

  std::optional<TcpListener> listener_;
  std::uint16_t port_ = 0;

  std::mutex mu_;
  std::condition_variable pending_cv_;
  std::deque<std::unique_ptr<Transport>> pending_;
};

}  // namespace smatch
