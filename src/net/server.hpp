// Frame server: N event-loop I/O threads + a dispatch thread pool.
//
// Connections are sharded round-robin across io_threads IoLoops
// (net/event_loop.hpp); each loop multiplexes its share with a readiness
// poller (epoll on Linux, poll fallback), so the process holds tens of
// thousands of connections with a handful of threads — concurrency is no
// longer bounded by a thread count. Decoded requests are dispatched as
// individual ThreadPool tasks and responses are written back by the
// owning loop in completion order; requests on one connection pipeline,
// matched by the request-id envelope of net/session.hpp. Each connection
// keeps its own LRU replay cache, so retransmits stay idempotent.
//
// Admission control and backpressure are part of the API, not emergent
// behaviour:
//   * max_connections — a connection beyond the cap is closed at accept
//     (smatch_net_shed_connections_total counts them);
//   * max_inflight_per_connection — a request beyond the cap is answered
//     with a kOverloaded envelope, no handler runs, the reply is not
//     replay-cached (a retransmit after load drains succeeds);
//   * max_pending_bytes_per_connection — a connection whose staged
//     outbound bytes exceed the budget stops being read until it drains.
//
// Shutdown is cooperative and TSan-clean: loops are asked to stop and
// joined; every connection fd is closed by the loop thread that owns it,
// never from another thread.
//
// Two ways in:
//   * start(ServerConfig{.tcp_port = p}) — bind a TCP listener on
//     127.0.0.1 (port 0 picks an ephemeral port, read it back with
//     port()).
//   * attach(transport) — hand the server one end of an in-process
//     transport pair (net/inproc_transport.hpp); it is sharded onto the
//     same loops as a TCP connection (or a dedicated blocking thread if
//     the transport has no readiness mode).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "net/admin.hpp"
#include "net/event_loop.hpp"
#include "net/session.hpp"
#include "net/tcp_transport.hpp"

namespace smatch {

/// Everything a NetServer needs to know, in one place. Field-by-field
/// defaults are serviceable for tests; benchmarks and deployments size
/// io_threads / dispatch_workers / the admission caps explicitly.
struct ServerConfig {
  /// Bind 127.0.0.1:*tcp_port when set (0 = ephemeral); nullopt serves
  /// attach()ed connections only.
  std::optional<std::uint16_t> tcp_port;

  std::size_t io_threads = 1;        ///< event-loop threads (connections shard)
  std::size_t dispatch_workers = 2;  ///< ThreadPool threads running handlers

  // Admission control / backpressure.
  std::size_t max_connections = 16384;
  std::size_t max_inflight_per_connection = 64;
  std::size_t max_pending_bytes_per_connection = 4u << 20;  // 4 MiB

  /// Per-connection replay-cache entries (LRU-evicted).
  std::size_t replay_cache_capacity = 128;

  /// Skip epoll even where it exists — exercises the poll(2) fallback.
  bool force_poll_fallback = false;

  /// Bind the admin plane (net/admin.hpp) on 127.0.0.1:*admin_port when
  /// set (0 = ephemeral; read back with admin_port()). Ignored under
  /// -DSMATCH_OBS=OFF — the OFF build has no admin surface.
  std::optional<std::uint16_t> admin_port;

  /// Arm the slow-request exemplar recorder: client calls finishing at
  /// or above this end-to-end latency capture their span tree
  /// (/trace?exemplars=1). 0 leaves the recorder disarmed.
  std::uint64_t slow_request_threshold_ns = 0;
};

class NetServer {
 public:
  explicit NetServer(FrameDispatcher dispatcher);

  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds (when configured) and starts the loops. Call at most once.
  [[nodiscard]] Status start(const ServerConfig& config);

  /// The bound TCP port (0 until a start() with tcp_port succeeded).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Hands the server one end of a connection. Lazily starts with a
  /// default TCP-less config if start() was never called. Connections
  /// beyond max_connections are shed (closed immediately).
  void attach(std::unique_ptr<Transport> connection);

  /// Stops every loop and joins. Idempotent; also run by the destructor.
  void stop();

  /// Connections currently admitted (across all loops and fallbacks).
  [[nodiscard]] std::size_t active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// The config start() ran with (defaults until then).
  [[nodiscard]] const ServerConfig& config() const { return config_; }

  /// The bound admin port (0 when no admin plane is serving — config
  /// had no admin_port, or the build is -DSMATCH_OBS=OFF).
  [[nodiscard]] std::uint16_t admin_port() const;

  /// The admin plane, for registering extra refresh hooks / statusz
  /// sections. Nullptr when no admin plane is serving.
  [[nodiscard]] AdminServer* admin() { return admin_ ? admin_.get() : nullptr; }

 private:
  [[nodiscard]] Status start_locked(const ServerConfig& config);
  void ensure_started();
  /// Claims an admission slot; false (and a shed tick) at the cap.
  [[nodiscard]] bool admit();
  /// Routes an admitted connection to a loop or a fallback thread.
  void route(std::unique_ptr<Transport> connection);
  /// Loop-0 callback: accepts until the listener would block.
  void handle_accept();

  FrameDispatcher dispatcher_;
  ServerConfig config_;

  std::mutex mu_;
  bool started_ = false;  // guarded by mu_
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> active_{0};
  std::atomic<std::size_t> rr_{0};  // round-robin shard cursor

  std::optional<TcpListener> listener_;
  std::uint16_t port_ = 0;
  std::unique_ptr<AdminServer> admin_;

  // Declaration order is destruction order in reverse: the pool dies
  // before the loops, so in-flight dispatch tasks can still hand their
  // completions to live IoLoop objects while draining.
  std::vector<std::unique_ptr<IoLoop>> loops_;
  std::unique_ptr<ThreadPool> pool_;

  // Transports without a readiness mode get one blocking thread each.
  std::vector<std::thread> fallback_threads_;  // guarded by mu_
};

}  // namespace smatch
