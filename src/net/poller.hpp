// Readiness multiplexer behind the NetServer event loops.
//
// One Poller watches many fds (sockets, self-pipes) and reports which of
// them can make progress. The backend is epoll(7) where available —
// O(ready) per wakeup, the mechanism that lets one thread hold 10k+
// connections — with a poll(2) fallback that rebuilds its pollfd array
// per wait. The fallback is selectable at construction so tests exercise
// both code paths on the same machine; both backends are level-triggered,
// matching the Transport contract ("call recv_some until kWouldBlock").
//
// Threading: a Poller belongs to exactly one loop thread. Waking that
// thread from outside goes through a registered self-pipe, not through
// this class.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"

namespace smatch {

/// One readiness report; `key` is the token the fd was registered under.
struct PollEvent {
  std::uint64_t key = 0;
  bool readable = false;
  bool writable = false;
  bool hangup = false;  // peer went away (POLLHUP/POLLERR); drain then close
};

class Poller {
 public:
  /// `force_poll_fallback` skips epoll even where it exists (tests).
  explicit Poller(bool force_poll_fallback = false);
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// Registers `fd` under `key`. The fd must stay open until remove().
  [[nodiscard]] Status add(int fd, std::uint64_t key, bool want_read, bool want_write);

  /// Updates the interest set of a registered fd.
  [[nodiscard]] Status modify(int fd, std::uint64_t key, bool want_read, bool want_write);

  /// Deregisters; safe to call for an fd that was never added.
  void remove(int fd);

  /// Waits up to `timeout_ms` (-1 = indefinitely, 0 = just poll) and
  /// fills `out` with ready fds (cleared first). Returns the event count
  /// — 0 means the timeout expired. EINTR retries internally.
  [[nodiscard]] StatusOr<std::size_t> wait(std::vector<PollEvent>& out, int timeout_ms);

  [[nodiscard]] bool using_epoll() const { return epfd_ >= 0; }

 private:
  int epfd_ = -1;  // -1 → poll(2) fallback

  // Fallback registration table; linear scans are acceptable because the
  // fallback exists for coverage, not for the 10k-connection path.
  struct Reg {
    int fd = -1;
    std::uint64_t key = 0;
    short events = 0;
  };
  std::vector<Reg> regs_;
};

}  // namespace smatch
