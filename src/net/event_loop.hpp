// IoLoop: one readiness-driven I/O thread multiplexing many connections.
//
// Each loop owns a Poller (net/poller.hpp), a wakeup self-pipe, and a set
// of connections; NetServer shards its connections across N loops. The
// loop thread is the only thread that ever touches a connection's
// Transport — pool workers run handlers and hand finished responses back
// through complete(), which enqueues and pokes the wakeup pipe. That
// single-owner rule is what keeps fd lifetime and the nonblocking
// Transport calls race-free without per-connection locks.
//
// Per wakeup the loop:
//   1. retries connections whose outbound bytes stayed staged (socket
//      full or a fault-injected delay hold) — timer-driven at a few ms,
//   2. re-reads connections that hit the per-wakeup frame budget (the
//      decoder may hold complete frames that will never re-signal the
//      level-triggered fd),
//   3. processes poller events: wakeup pipe (adopted connections +
//      completed dispatches), external fds (the TCP listener), and
//      connection readability.
//
// Admission inside the loop: a request arriving while the connection
// already has max_inflight_per_connection dispatches outstanding is
// answered immediately with a kOverloaded envelope built on the loop
// thread — no handler runs, and the shed response is never cached, so a
// later retransmit can succeed once load drains. A connection whose
// staged outbound bytes exceed max_pending_bytes_per_connection stops
// being polled for readability until the backlog drains (backpressure
// instead of unbounded buffering).
//
// Requests on one connection pipeline naturally: every decoded frame is
// dispatched as its own pool task, and responses go out in completion
// order — the request-id envelope (net/session.hpp) lets the client match
// them out of order.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.hpp"
#include "net/poller.hpp"
#include "net/session.hpp"
#include "net/transport.hpp"
#include "obs/histogram.hpp"

namespace smatch {

/// Per-connection limits an IoLoop enforces (NetServer copies these out
/// of its ServerConfig).
struct IoLoopOptions {
  std::size_t max_inflight_per_connection = 64;
  std::size_t max_pending_bytes_per_connection = 4u << 20;
  std::size_t replay_cache_capacity = 128;
  bool force_poll_fallback = false;
};

class IoLoop {
 public:
  /// `dispatcher` and `pool` must outlive the loop; `active` is the
  /// server-wide connection count this loop decrements as it closes
  /// connections.
  IoLoop(const FrameDispatcher& dispatcher, ThreadPool& pool, IoLoopOptions opts,
         std::atomic<std::size_t>& active);
  ~IoLoop();

  IoLoop(const IoLoop&) = delete;
  IoLoop& operator=(const IoLoop&) = delete;

  /// Watches an external readable fd (the TCP listener); `on_ready` runs
  /// on the loop thread whenever it signals. Call before start().
  void watch_external(int fd, std::function<void()> on_ready);

  void start();
  void request_stop();
  void join();

  /// Hands the loop a connection (thread-safe). The transport must have a
  /// pollable_fd(); ownership transfers unconditionally — a stopped loop
  /// closes it and releases its slot in `active`.
  void adopt(std::unique_ptr<Transport> conn);

  /// Connections currently registered on this loop.
  [[nodiscard]] std::size_t connections() const {
    return conn_count_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    std::uint64_t id = 0;
    std::unique_ptr<Transport> transport;
    SessionState session;
    std::atomic<std::size_t> inflight{0};
    bool read_armed = true;  // loop thread only

    Conn(std::uint64_t id_in, std::unique_ptr<Transport> t, std::size_t replay_cap)
        : id(id_in), transport(std::move(t)), session(replay_cap) {}
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    MessageKind kind = MessageKind::kOther;
    Bytes response;
  };

  void run();
  void notify();  // pokes the wakeup pipe (any thread)
  void register_conn(std::unique_ptr<Transport> transport);
  void read_conn(const std::shared_ptr<Conn>& conn);
  void handle_frame(const std::shared_ptr<Conn>& conn, Frame frame);
  void close_conn(const std::shared_ptr<Conn>& conn);
  /// Pool-thread entry: queues a finished response for the loop.
  void complete(std::uint64_t conn_id, MessageKind kind, Bytes response);
  /// Sends (or stages) bytes and books the flush-retry set; false when
  /// the connection died.
  bool send_or_stage(const std::shared_ptr<Conn>& conn, MessageKind kind,
                     BytesView response);
  /// Re-arms / disarms POLLIN from the staged-byte backpressure budget.
  void update_read_interest(const std::shared_ptr<Conn>& conn);

  const FrameDispatcher& dispatcher_;
  ThreadPool& pool_;
  const IoLoopOptions opts_;
  std::atomic<std::size_t>& active_;

  Poller poller_;
  int wake_pipe_[2] = {-1, -1};
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> conn_count_{0};

  // Cross-thread inboxes, drained by the loop on wakeup.
  std::mutex mu_;
  std::vector<std::unique_ptr<Transport>> inbox_;
  std::vector<Completion> completions_;

  // Loop-thread state.
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> conns_;
  std::unordered_set<std::uint64_t> flush_pending_;  // staged bytes to retry
  std::unordered_set<std::uint64_t> read_again_;     // frame budget hit
  std::vector<std::pair<std::uint64_t, std::function<void()>>> externals_;

  // Cached registry handles.
  std::atomic<std::int64_t>* conn_gauge_ = nullptr;
  std::atomic<std::int64_t>* inflight_gauge_ = nullptr;
  std::atomic<std::uint64_t>* shed_requests_ = nullptr;
  obs::Histogram* wakeup_hist_ = nullptr;
};

}  // namespace smatch
