// Simulated client<->server transport with exact byte accounting.
//
// The paper's testbed shipped messages over 802.11n (53 Mbps) between an
// Android client and a PC server; here both endpoints live in one process
// and every protocol message passes through a SimChannel that records
// message counts, bytes, and models transfer time. The communication-cost
// figures (5d-f) are produced from these counters.
//
// Traffic is attributed per MessageKind (a closed enum, not free-form
// strings) so the byte breakdown cannot be skewed by label typos.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"
#include "obs/histogram.hpp"

namespace smatch {

/// Protocol message classes the byte accounting distinguishes.
enum class MessageKind : std::uint8_t {
  kUpload = 0,  // UploadMessage (Eq. 3 + verification token)
  kQuery,       // QueryRequest Q_q
  kResult,      // QueryResult R_q
  kAuth,        // session-layer handshake / auth traffic
  kOprf,        // key-service OPRF round (versioned KeyRequest/KeyResponse,
                // single or batched — see core/key_server.hpp)
  kOther,       // anything else (default)
};

inline constexpr std::size_t kNumMessageKinds = 6;

/// Human-readable kind name for the benchmark tables.
[[nodiscard]] constexpr std::string_view to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kUpload: return "upload";
    case MessageKind::kQuery: return "query";
    case MessageKind::kResult: return "result";
    case MessageKind::kAuth: return "auth";
    case MessageKind::kOprf: return "oprf";
    case MessageKind::kOther: return "other";
  }
  return "invalid";
}

/// Link model: fixed per-message latency plus serialization delay.
struct LinkModel {
  double bandwidth_mbps = 53.0;  // paper's 802.11n link
  double latency_ms = 2.0;

  /// Simulated one-way transfer time for a payload, in seconds.
  [[nodiscard]] double transfer_seconds(std::size_t bytes) const {
    return latency_ms / 1e3 + static_cast<double>(bytes) * 8.0 / (bandwidth_mbps * 1e6);
  }
};

class SimChannel {
 public:
  struct DirectionStats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    double sim_seconds = 0.0;
  };

  SimChannel() = default;
  explicit SimChannel(LinkModel link) : link_(link) {}

  /// Records an uplink (client -> server) message; returns simulated
  /// transfer seconds.
  double send_to_server(BytesView payload, MessageKind kind = MessageKind::kOther);
  /// Records a downlink (server -> client) message.
  double send_to_client(BytesView payload, MessageKind kind = MessageKind::kOther);

  [[nodiscard]] const DirectionStats& uplink() const { return uplink_; }
  [[nodiscard]] const DirectionStats& downlink() const { return downlink_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return uplink_.bytes + downlink_.bytes; }
  /// Byte totals per message kind (both directions).
  [[nodiscard]] const std::array<std::uint64_t, kNumMessageKinds>& bytes_by_kind() const {
    return by_kind_;
  }
  [[nodiscard]] std::uint64_t bytes_of(MessageKind kind) const {
    return by_kind_[static_cast<std::size_t>(kind)];
  }
  /// Message counts per kind (both directions) — the companion of
  /// bytes_by_kind(), so per-message overheads are attributable too.
  [[nodiscard]] const std::array<std::uint64_t, kNumMessageKinds>& messages_by_kind()
      const {
    return msgs_by_kind_;
  }
  [[nodiscard]] std::uint64_t messages_of(MessageKind kind) const {
    return msgs_by_kind_[static_cast<std::size_t>(kind)];
  }
  /// Simulated one-way transfer latency distribution for a kind, in
  /// nanoseconds (log2 buckets — see obs/histogram.hpp).
  [[nodiscard]] obs::HistogramSnapshot latency_of(MessageKind kind) const {
    return latency_by_kind_[static_cast<std::size_t>(kind)].snapshot();
  }

  /// Clears every counter, per-kind attribution, and latency histogram.
  void reset();

 private:
  double record(DirectionStats& dir, BytesView payload, MessageKind kind);

  LinkModel link_;
  DirectionStats uplink_;
  DirectionStats downlink_;
  std::array<std::uint64_t, kNumMessageKinds> by_kind_{};
  std::array<std::uint64_t, kNumMessageKinds> msgs_by_kind_{};
  std::array<obs::Histogram, kNumMessageKinds> latency_by_kind_;
};

}  // namespace smatch
