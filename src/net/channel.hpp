// Simulated client<->server transport with exact byte accounting.
//
// The paper's testbed shipped messages over 802.11n (53 Mbps) between an
// Android client and a PC server; here both endpoints live in one process
// and every protocol message passes through a SimChannel that records
// message counts, bytes, and models transfer time. The communication-cost
// figures (5d-f) are produced from these counters.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.hpp"

namespace smatch {

/// Link model: fixed per-message latency plus serialization delay.
struct LinkModel {
  double bandwidth_mbps = 53.0;  // paper's 802.11n link
  double latency_ms = 2.0;

  /// Simulated one-way transfer time for a payload, in seconds.
  [[nodiscard]] double transfer_seconds(std::size_t bytes) const {
    return latency_ms / 1e3 + static_cast<double>(bytes) * 8.0 / (bandwidth_mbps * 1e6);
  }
};

class SimChannel {
 public:
  struct DirectionStats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    double sim_seconds = 0.0;
  };

  SimChannel() = default;
  explicit SimChannel(LinkModel link) : link_(link) {}

  /// Records an uplink (client -> server) message; returns simulated
  /// transfer seconds.
  double send_to_server(BytesView payload, const std::string& label = {});
  /// Records a downlink (server -> client) message.
  double send_to_client(BytesView payload, const std::string& label = {});

  [[nodiscard]] const DirectionStats& uplink() const { return uplink_; }
  [[nodiscard]] const DirectionStats& downlink() const { return downlink_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return uplink_.bytes + downlink_.bytes; }
  /// Byte totals by caller-supplied label (e.g. "upload", "auth", "query").
  [[nodiscard]] const std::map<std::string, std::uint64_t>& bytes_by_label() const {
    return by_label_;
  }

  void reset();

 private:
  double record(DirectionStats& dir, BytesView payload, const std::string& label);

  LinkModel link_;
  DirectionStats uplink_;
  DirectionStats downlink_;
  std::map<std::string, std::uint64_t> by_label_;
};

}  // namespace smatch
