// The one transport API every S-MATCH byte travels through.
//
// The paper's testbed ships protocol messages over a real 802.11n link
// (Sec. V); this interface abstracts that hop so the same client, server,
// and benchmark code runs over
//
//   * TcpTransport      — real POSIX sockets (net/tcp_transport.hpp),
//   * InProcTransport   — the in-process simulated link with exact byte
//                         accounting (net/inproc_transport.hpp), and
//   * SecureTransport   — an Encrypt-then-MAC decorator over either
//                         (net/secure_channel.hpp).
//
// It replaces the three ad-hoc channel APIs that used to coexist:
// SimChannel's send/record methods, SecureChannel's throwing calls, and
// raw wire:: buffers handed around by benches and examples.
//
// Wire framing
// ------------
// A frame is a length-prefixed record around one protocol payload:
//
//   frame := len:u32 || kind:u8 || payload[len-5] || crc:u32
//
// `len` is big-endian and counts everything after itself (kind, payload,
// crc). `kind` is the MessageKind tag the byte accounting attributes
// traffic to. `crc` is CRC-32 (IEEE) over kind || payload: transports are
// allowed to deliver corrupted frames (the fault injector does so on
// purpose), and the CRC lets the receiver drop them silently so the
// session layer's retransmit logic kicks in — exactly how a lost TCP
// segment would behave. The payload itself carries the versioned "SM"
// wire header (core/messages.hpp) like every other protocol message.
//
// Error model: every call reports failure through Status / StatusOr with
// the transport codes added for this subsystem — kTimeout when the
// per-call deadline expires, kConnectionReset when the peer is gone.
// Transports never throw on the I/O paths.
//
// Two modes
// ---------
// The *blocking* calls (send/recv with a deadline) serve one caller
// thread per connection — SessionClient and the golden tests use them
// unchanged. The *readiness* calls (pollable_fd + recv_some / send_some /
// flush_some, all returning kWouldBlock instead of waiting) let one
// event-loop thread multiplex thousands of connections: the NetServer
// I/O loops (net/event_loop.hpp) poll pollable_fd() for readability and
// drive the nonblocking calls on readiness. A connection is driven in
// exactly one mode at a time; the readiness calls are single-threaded by
// contract (only the owning loop thread touches them).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/wire.hpp"  // crc32 — shared with the store's on-disk records
#include "net/channel.hpp"

namespace smatch {

/// Largest frame payload a peer may claim. A corrupted or hostile length
/// prefix beyond this is rejected before any allocation happens.
inline constexpr std::size_t kMaxFramePayload = 1u << 24;  // 16 MiB

/// Serialized overhead a frame adds around its payload
/// (len:u32 + kind:u8 + crc:u32).
inline constexpr std::size_t kFrameOverheadBytes = 9;

/// One decoded frame: the payload plus its traffic-accounting tag.
struct Frame {
  MessageKind kind = MessageKind::kOther;
  Bytes payload;
};

/// Encodes one frame (length prefix + kind + payload + CRC). The frame
/// checksum is the shared smatch::crc32 of common/wire.hpp.
[[nodiscard]] Bytes encode_frame(MessageKind kind, BytesView payload);

/// Incremental frame decoder for a byte stream (TCP segments arrive in
/// arbitrary chunks; the in-process transport reuses it so both paths
/// exercise identical parsing).
class FrameDecoder {
 public:
  /// Appends raw stream bytes.
  void feed(BytesView data);

  /// Extracts the next complete frame.
  ///   * value with frame  — one frame decoded and consumed;
  ///   * value with nullopt — need more bytes (no complete frame buffered);
  ///   * kMalformedMessage  — a complete frame failed its CRC or carried an
  ///     unknown kind byte; the frame was consumed, the stream stays in
  ///     sync and the caller may keep reading;
  ///   * kConnectionReset   — the length prefix is unframeable (payload
  ///     beyond kMaxFramePayload): the stream cannot be resynchronised and
  ///     the connection must be torn down.
  [[nodiscard]] StatusOr<std::optional<Frame>> next();

  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  Bytes buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted lazily
};

/// Per-endpoint traffic accounting, mirroring SimChannel's per-kind
/// breakdown so byte counts measured over real TCP are directly
/// comparable with the simulated-channel numbers. Counts are of frame
/// *payloads* (the protocol bytes); framing overhead is attributable via
/// the frame counts × kFrameOverheadBytes.
struct TransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;      // payload bytes
  std::uint64_t bytes_received = 0;  // payload bytes
  std::uint64_t crc_drops = 0;       // received frames dropped by checksum
  std::array<std::uint64_t, kNumMessageKinds> sent_by_kind{};
  std::array<std::uint64_t, kNumMessageKinds> received_by_kind{};

  [[nodiscard]] std::uint64_t sent_of(MessageKind k) const {
    return sent_by_kind[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t received_of(MessageKind k) const {
    return received_by_kind[static_cast<std::size_t>(k)];
  }
};

class FaultInjector;  // net/fault.hpp

/// Abstract bidirectional frame transport. One instance is one endpoint
/// of one connection; implementations are safe for one sender and one
/// receiver thread operating concurrently.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Ships one frame. Blocks at most `timeout`; kTimeout when the
  /// deadline expires mid-write, kConnectionReset when the peer is gone.
  [[nodiscard]] virtual Status send(MessageKind kind, BytesView payload,
                                    std::chrono::milliseconds timeout) = 0;

  /// Receives the next well-formed frame (CRC-failed frames are counted
  /// and skipped). kTimeout when nothing arrived within the deadline,
  /// kConnectionReset on EOF / peer close.
  [[nodiscard]] virtual StatusOr<Frame> recv(std::chrono::milliseconds timeout) = 0;

  /// Closes this endpoint; subsequent sends/recvs on either side report
  /// kConnectionReset. Idempotent.
  virtual Status close() = 0;

  // --- Readiness (nonblocking) mode ---------------------------------------
  //
  // Implemented by TcpTransport (the socket fd), InProcTransport (a
  // self-pipe signalled on enqueue), and SecureTransport (delegates to
  // its inner transport). The default implementations advertise "no
  // readiness support" (pollable_fd() == -1); NetServer falls back to a
  // dedicated blocking serve thread for such transports.

  /// A poll(2)/epoll-able handle that turns readable when recv_some()
  /// may make progress (bytes or a close arrived). -1 when this
  /// transport has no readiness mode. The fd is owned by the transport;
  /// callers only ever poll it.
  [[nodiscard]] virtual int pollable_fd() const { return -1; }

  /// Nonblocking receive: drains whatever the link has ready and returns
  /// the next complete well-formed frame. kWouldBlock when no complete
  /// frame can be assembled right now — poll pollable_fd() and retry.
  /// Call repeatedly until kWouldBlock: a single readiness event may
  /// deliver many frames, and buffered frames do not re-signal the fd.
  [[nodiscard]] virtual StatusOr<Frame> recv_some();

  /// Nonblocking send: encodes the frame, stages it, and writes as much
  /// as the link accepts without waiting. Ok when fully flushed;
  /// kWouldBlock when bytes remain staged (flush_some() drives them when
  /// the link turns writable). Staged bytes are delivered in order
  /// before any later frame.
  [[nodiscard]] virtual Status send_some(MessageKind kind, BytesView payload);

  /// Drives previously staged outbound bytes. Ok when the staging buffer
  /// drained, kWouldBlock when the link is still full (or a fault-
  /// injected delay holds the bytes back — retry after a short wait).
  [[nodiscard]] virtual Status flush_some();

  /// Outbound bytes staged but not yet on the wire — the backpressure
  /// signal NetServer budgets per connection.
  [[nodiscard]] virtual std::size_t pending_out_bytes() const { return 0; }

  /// Installs (or clears) a seeded fault injector consulted on every
  /// send — see net/fault.hpp. Not owned; caller keeps it alive.
  void set_fault_injector(FaultInjector* injector) { faults_ = injector; }

  /// Copy of the per-kind traffic counters.
  [[nodiscard]] TransportStats stats() const {
    std::lock_guard lk(stats_mu_);
    return stats_;
  }

 protected:
  void note_sent(MessageKind kind, std::size_t payload_bytes) {
    std::lock_guard lk(stats_mu_);
    ++stats_.frames_sent;
    stats_.bytes_sent += payload_bytes;
    stats_.sent_by_kind[static_cast<std::size_t>(kind)] += payload_bytes;
  }
  void note_received(MessageKind kind, std::size_t payload_bytes) {
    std::lock_guard lk(stats_mu_);
    ++stats_.frames_received;
    stats_.bytes_received += payload_bytes;
    stats_.received_by_kind[static_cast<std::size_t>(kind)] += payload_bytes;
  }
  void note_crc_drop() {
    std::lock_guard lk(stats_mu_);
    ++stats_.crc_drops;
  }

  FaultInjector* faults_ = nullptr;

 private:
  mutable std::mutex stats_mu_;
  TransportStats stats_;
};

}  // namespace smatch
