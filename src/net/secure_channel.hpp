// Encrypt-then-MAC session channel (paper Section VIII, Communication:
// "the packages are sent with the mode Encrypt-then-MAC" over the
// client<->server socket).
//
// A session is keyed by a 32-byte master secret (in the paper's testbed
// it comes from the SSL handshake; here from any agreed secret, e.g. a DH
// exchange over ModpGroup). Each record is
//     seq(8) || IV(16) || AES-256-CTR ciphertext || HMAC-SHA256 tag(32)
// with the MAC over seq || IV || ciphertext. Sequence numbers make
// replayed or reordered records detectable.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/random.hpp"

namespace smatch {

/// One direction of a secure session. Create one sender and one receiver
/// from the same traffic key (derive per-direction keys from a master
/// secret with make_session_keys).
class SecureSender {
 public:
  /// Traffic key: 64 bytes (32 encryption + 32 MAC).
  explicit SecureSender(Bytes traffic_key);

  /// Seals a plaintext record; sequence number auto-increments.
  [[nodiscard]] Bytes seal(BytesView plaintext, RandomSource& rng);

  [[nodiscard]] std::uint64_t records_sent() const { return seq_; }

 private:
  Bytes enc_key_;
  Bytes mac_key_;
  std::uint64_t seq_ = 0;
};

class SecureReceiver {
 public:
  explicit SecureReceiver(Bytes traffic_key);

  /// Opens a sealed record. Throws CryptoError on a bad MAC or truncated
  /// record and ProtocolError on a replayed / out-of-order sequence.
  [[nodiscard]] Bytes open(BytesView record);

 private:
  Bytes enc_key_;
  Bytes mac_key_;
  std::uint64_t expected_seq_ = 0;
};

struct SessionKeys {
  Bytes client_to_server;  // 64-byte traffic key
  Bytes server_to_client;  // 64-byte traffic key
};

/// Derives independent per-direction traffic keys from a shared master
/// secret (e.g. a DH shared element).
[[nodiscard]] SessionKeys make_session_keys(BytesView master_secret);

}  // namespace smatch
