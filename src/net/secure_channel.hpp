// Encrypt-then-MAC session channel (paper Section VIII, Communication:
// "the packages are sent with the mode Encrypt-then-MAC" over the
// client<->server socket).
//
// A session is keyed by a 32-byte master secret (in the paper's testbed
// it comes from the SSL handshake; here from any agreed secret, e.g. a DH
// exchange over ModpGroup). Each record is
//     seq(8) || IV(16) || AES-256-CTR ciphertext || HMAC-SHA256 tag(32)
// with the MAC over seq || IV || ciphertext. Sequence numbers make
// replayed or reordered records detectable.
//
// Error contract: open() reports wire damage through StatusOr like every
// other parse path in the system — kMalformedMessage for a truncated
// record or a failed MAC, kStaleTimestamp for a replayed / out-of-order
// sequence number — and never throws on attacker-controlled input.
// Constructors still throw CryptoError for a mis-sized traffic key
// (construction-time misconfiguration, not wire input).
//
// SecureTransport composes this channel with the Transport API
// (net/transport.hpp): a decorator that seals every outbound frame
// payload and opens every inbound one, so a session layer or RemoteClient
// runs over EtM without knowing it.
#pragma once

#include <cstdint>
#include <memory>

#include "common/bytes.hpp"
#include "common/random.hpp"
#include "common/status.hpp"
#include "net/transport.hpp"

namespace smatch {

/// One direction of a secure session. Create one sender and one receiver
/// from the same traffic key (derive per-direction keys from a master
/// secret with make_session_keys).
class SecureSender {
 public:
  /// Traffic key: 64 bytes (32 encryption + 32 MAC).
  explicit SecureSender(Bytes traffic_key);

  /// Seals a plaintext record; sequence number auto-increments.
  [[nodiscard]] Bytes seal(BytesView plaintext, RandomSource& rng);

  [[nodiscard]] std::uint64_t records_sent() const { return seq_; }

 private:
  Bytes enc_key_;
  Bytes mac_key_;
  std::uint64_t seq_ = 0;
};

class SecureReceiver {
 public:
  explicit SecureReceiver(Bytes traffic_key);

  /// Opens a sealed record. kMalformedMessage on a truncated record or a
  /// bad MAC, kStaleTimestamp on a replayed / out-of-order sequence.
  /// Never throws on wire input.
  [[nodiscard]] StatusOr<Bytes> open(BytesView record);

 private:
  Bytes enc_key_;
  Bytes mac_key_;
  std::uint64_t expected_seq_ = 0;
};

struct SessionKeys {
  Bytes client_to_server;  // 64-byte traffic key
  Bytes server_to_client;  // 64-byte traffic key
};

/// Derives independent per-direction traffic keys from a shared master
/// secret (e.g. a DH shared element).
[[nodiscard]] SessionKeys make_session_keys(BytesView master_secret);

/// Transport decorator: Encrypt-then-MAC over any inner Transport.
///
/// Outbound frame payloads are sealed before the inner send; inbound
/// records are opened after the inner recv, so stats() on this layer
/// counts plaintext protocol bytes while the inner transport counts the
/// sealed sizes. The EtM stream is strictly ordered — use it over a
/// reliable inner transport (TCP, in-process pair); a lossy link (fault
/// injection dropping records below this layer) desynchronizes the
/// sequence numbers by design, exactly like TLS over a corrupted stream.
class SecureTransport final : public Transport {
 public:
  /// `rng` supplies record IVs and must outlive the transport.
  SecureTransport(std::unique_ptr<Transport> inner, Bytes send_key,
                  Bytes recv_key, RandomSource& rng);

  /// The client end of a session: seals with client_to_server, opens
  /// with server_to_client.
  [[nodiscard]] static std::unique_ptr<SecureTransport> client_end(
      std::unique_ptr<Transport> inner, const SessionKeys& keys, RandomSource& rng);
  /// The server end: the converse key assignment.
  [[nodiscard]] static std::unique_ptr<SecureTransport> server_end(
      std::unique_ptr<Transport> inner, const SessionKeys& keys, RandomSource& rng);

  Status send(MessageKind kind, BytesView payload,
              std::chrono::milliseconds timeout) override;
  StatusOr<Frame> recv(std::chrono::milliseconds timeout) override;
  Status close() override;

  // Readiness mode: the inner transport supplies the pollable handle and
  // the nonblocking byte movement; this layer just seals / opens payloads
  // at the frame boundary.
  [[nodiscard]] int pollable_fd() const override { return inner_->pollable_fd(); }
  StatusOr<Frame> recv_some() override;
  Status send_some(MessageKind kind, BytesView payload) override;
  Status flush_some() override { return inner_->flush_some(); }
  [[nodiscard]] std::size_t pending_out_bytes() const override {
    return inner_->pending_out_bytes();
  }

  [[nodiscard]] Transport& inner() { return *inner_; }

 private:
  std::unique_ptr<Transport> inner_;
  SecureSender sender_;
  SecureReceiver receiver_;
  RandomSource& rng_;
};

}  // namespace smatch
