#include "net/event_loop.hpp"

#include <chrono>
#include <fcntl.h>
#include <unistd.h>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"

namespace smatch {

namespace {

using Clock = std::chrono::steady_clock;

/// Poller keys reserved for non-connection fds. Connection ids start at 1
/// and count up, so they can never collide with these.
constexpr std::uint64_t kWakeupKey = ~0ull;
constexpr std::uint64_t kExternalBase = ~0ull - 1;  // counts downward

/// Frames one connection may deliver per wakeup before the loop moves on
/// (fairness); the connection re-enters via the read_again_ ring.
constexpr std::size_t kMaxFramesPerWakeup = 128;

/// Retry cadence for staged outbound bytes (socket full or delay hold).
constexpr int kFlushRetryMs = 5;

}  // namespace

IoLoop::IoLoop(const FrameDispatcher& dispatcher, ThreadPool& pool,
               IoLoopOptions opts, std::atomic<std::size_t>& active)
    : dispatcher_(dispatcher),
      pool_(pool),
      opts_(opts),
      active_(active),
      poller_(opts.force_poll_fallback) {
  auto& reg = obs::Registry::global();
  conn_gauge_ = reg.gauge("smatch_net_connections_active");
  inflight_gauge_ = reg.gauge("smatch_net_inflight");
  shed_requests_ = reg.counter("smatch_net_shed_requests_total");
  wakeup_hist_ = reg.histogram("smatch_net_loop_wakeup_ns");
  if (::pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) == 0) {
    (void)poller_.add(wake_pipe_[0], kWakeupKey, /*want_read=*/true,
                      /*want_write=*/false);
  }
}

IoLoop::~IoLoop() {
  request_stop();
  join();
  // Connections adopted after the loop stopped never reached the thread;
  // close them here and release their admission slots.
  for (auto& conn : inbox_) {
    (void)conn->close();
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
  inbox_.clear();
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void IoLoop::watch_external(int fd, std::function<void()> on_ready) {
  const std::uint64_t key = kExternalBase - externals_.size();
  (void)poller_.add(fd, key, /*want_read=*/true, /*want_write=*/false);
  externals_.emplace_back(key, std::move(on_ready));
}

void IoLoop::start() {
  thread_ = std::thread([this] { run(); });
}

void IoLoop::request_stop() {
  stop_.store(true, std::memory_order_release);
  notify();
}

void IoLoop::join() {
  if (thread_.joinable()) thread_.join();
}

void IoLoop::adopt(std::unique_ptr<Transport> conn) {
  {
    std::lock_guard lk(mu_);
    inbox_.push_back(std::move(conn));
  }
  notify();
}

void IoLoop::notify() {
  if (wake_pipe_[1] < 0) return;
  const std::uint8_t byte = 1;
  (void)::write(wake_pipe_[1], &byte, 1);  // EAGAIN: already signalled
}

void IoLoop::complete(std::uint64_t conn_id, MessageKind kind, Bytes response) {
  {
    std::lock_guard lk(mu_);
    completions_.push_back({conn_id, kind, std::move(response)});
  }
  notify();
}

void IoLoop::register_conn(std::unique_ptr<Transport> transport) {
  const int fd = transport->pollable_fd();
  if (fd < 0) {
    // NetServer routes readiness-less transports to fallback threads;
    // reaching here means misrouting — drop rather than crash.
    (void)transport->close();
    active_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t id = next_id_++;
  auto conn =
      std::make_shared<Conn>(id, std::move(transport), opts_.replay_cache_capacity);
  if (Status s = poller_.add(fd, id, /*want_read=*/true, /*want_write=*/false);
      !s.is_ok()) {
    (void)conn->transport->close();
    active_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  conns_.emplace(id, std::move(conn));
  conn_count_.store(conns_.size(), std::memory_order_relaxed);
  conn_gauge_->fetch_add(1, std::memory_order_relaxed);
  SMATCH_FLIGHT(obs::FlightKind::kConnAccepted, id, 0);
}

void IoLoop::close_conn(const std::shared_ptr<Conn>& conn) {
  if (conns_.erase(conn->id) == 0) return;  // already closed this wakeup
  conn_count_.store(conns_.size(), std::memory_order_relaxed);
  const int fd = conn->transport->pollable_fd();
  if (fd >= 0) poller_.remove(fd);
  (void)conn->transport->close();
  flush_pending_.erase(conn->id);
  read_again_.erase(conn->id);
  conn_gauge_->fetch_sub(1, std::memory_order_relaxed);
  active_.fetch_sub(1, std::memory_order_relaxed);
  SMATCH_FLIGHT(obs::FlightKind::kConnClosed, conn->id, 0);
}

bool IoLoop::send_or_stage(const std::shared_ptr<Conn>& conn, MessageKind kind,
                           BytesView response) {
  Status s = conn->transport->send_some(kind, response);
  if (s.code() == StatusCode::kWouldBlock) {
    flush_pending_.insert(conn->id);
    update_read_interest(conn);
    return true;
  }
  if (!s.is_ok()) {
    close_conn(conn);
    return false;
  }
  return true;
}

void IoLoop::update_read_interest(const std::shared_ptr<Conn>& conn) {
  const bool want =
      conn->transport->pending_out_bytes() < opts_.max_pending_bytes_per_connection;
  if (want == conn->read_armed) return;
  const int fd = conn->transport->pollable_fd();
  if (fd < 0) return;
  if (poller_.modify(fd, conn->id, want, /*want_write=*/false).is_ok()) {
    conn->read_armed = want;
  }
}

void IoLoop::handle_frame(const std::shared_ptr<Conn>& conn, Frame frame) {
  if (conn->inflight.load(std::memory_order_relaxed) >=
      opts_.max_inflight_per_connection) {
    // Load-shed on the loop thread: answer with a typed kOverloaded
    // envelope without running (or queueing) any handler. The response
    // is deliberately not remembered in the replay cache, so the
    // client's retransmit succeeds once the backlog drains.
    shed_requests_->fetch_add(1, std::memory_order_relaxed);
    SMATCH_FLIGHT(obs::FlightKind::kRequestShed, conn->id,
                  conn->inflight.load(std::memory_order_relaxed));
    StatusOr<Envelope> env = Envelope::parse(frame.payload);
    if (env.is_ok() && !env->is_response) {
      const Bytes shed = make_error_envelope(
          env->request_id, StatusCode::kOverloaded,
          "connection at max_inflight_per_connection; retry later");
      (void)send_or_stage(conn, frame.kind, shed);
    }
    return;
  }
  conn->inflight.fetch_add(1, std::memory_order_relaxed);
  inflight_gauge_->fetch_add(1, std::memory_order_relaxed);
  // The task owns a shared_ptr so the session (replay cache) stays alive
  // even if the loop drops the connection mid-dispatch; the transport is
  // never touched off-loop.
  pool_.submit([this, conn, kind = frame.kind, payload = std::move(frame.payload)] {
    Bytes response = dispatcher_.dispatch(kind, payload, conn->session);
    complete(conn->id, kind, std::move(response));
  });
}

void IoLoop::read_conn(const std::shared_ptr<Conn>& conn) {
  if (conns_.count(conn->id) == 0) return;
  std::size_t budget = kMaxFramesPerWakeup;
  for (;;) {
    if (budget == 0) {
      // Decoder-buffered frames never re-signal a level-triggered fd;
      // park the connection in the re-read ring instead of starving it.
      read_again_.insert(conn->id);
      return;
    }
    StatusOr<Frame> frame = conn->transport->recv_some();
    if (!frame.is_ok()) {
      if (frame.code() == StatusCode::kWouldBlock) break;
      close_conn(conn);
      return;
    }
    --budget;
    handle_frame(conn, std::move(*frame));
    if (conns_.count(conn->id) == 0) return;  // handle_frame may close
  }
  update_read_interest(conn);
}

void IoLoop::run() {
  std::vector<PollEvent> events;
  std::vector<std::unique_ptr<Transport>> inbox;
  std::vector<Completion> completions;
  std::vector<std::uint64_t> ids;

  while (!stop_.load(std::memory_order_acquire)) {
    int timeout_ms = -1;
    if (!read_again_.empty()) {
      timeout_ms = 0;
    } else if (!flush_pending_.empty()) {
      timeout_ms = kFlushRetryMs;
    }
    StatusOr<std::size_t> n = poller_.wait(events, timeout_ms);
    if (!n.is_ok()) break;  // poller is broken beyond repair
    const auto wake_start = Clock::now();

    // 1. Retry staged outbound bytes (socket drained or delay expired).
    if (!flush_pending_.empty()) {
      ids.assign(flush_pending_.begin(), flush_pending_.end());
      for (const std::uint64_t id : ids) {
        const auto it = conns_.find(id);
        if (it == conns_.end()) {
          flush_pending_.erase(id);
          continue;
        }
        const std::shared_ptr<Conn> conn = it->second;
        Status s = conn->transport->flush_some();
        if (s.is_ok()) {
          flush_pending_.erase(id);
          update_read_interest(conn);
        } else if (s.code() != StatusCode::kWouldBlock) {
          close_conn(conn);
        }
      }
    }

    // 2. Connections that hit the frame budget last wakeup.
    if (!read_again_.empty()) {
      ids.assign(read_again_.begin(), read_again_.end());
      read_again_.clear();
      for (const std::uint64_t id : ids) {
        const auto it = conns_.find(id);
        if (it != conns_.end()) read_conn(it->second);
      }
    }

    // 3. Poller events.
    for (const PollEvent& ev : events) {
      if (ev.key == kWakeupKey) {
        std::uint8_t buf[256];
        while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
        }
        {
          std::lock_guard lk(mu_);
          inbox.swap(inbox_);
          completions.swap(completions_);
        }
        for (auto& transport : inbox) register_conn(std::move(transport));
        inbox.clear();
        for (Completion& done : completions) {
          inflight_gauge_->fetch_sub(1, std::memory_order_relaxed);
          const auto it = conns_.find(done.conn_id);
          if (it == conns_.end()) continue;  // connection died mid-dispatch
          const std::shared_ptr<Conn> conn = it->second;
          conn->inflight.fetch_sub(1, std::memory_order_relaxed);
          (void)send_or_stage(conn, done.kind, done.response);
        }
        completions.clear();
        continue;
      }
      bool external = false;
      for (const auto& [key, on_ready] : externals_) {
        if (ev.key == key) {
          on_ready();
          external = true;
          break;
        }
      }
      if (external) continue;
      const auto it = conns_.find(ev.key);
      if (it == conns_.end()) continue;  // closed earlier this wakeup
      const std::shared_ptr<Conn> conn = it->second;
      if (ev.readable || ev.hangup) read_conn(conn);
    }

    wakeup_hist_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             wake_start)
            .count()));
  }

  // Shutdown on the loop thread: the only place connection fds die.
  {
    std::lock_guard lk(mu_);
    inbox.swap(inbox_);
  }
  for (auto& transport : inbox) {
    (void)transport->close();
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
  inbox.clear();
  for (auto& [id, conn] : conns_) {
    const int fd = conn->transport->pollable_fd();
    if (fd >= 0) poller_.remove(fd);
    (void)conn->transport->close();
    conn_gauge_->fetch_sub(1, std::memory_order_relaxed);
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
  conns_.clear();
  conn_count_.store(0, std::memory_order_relaxed);
}

}  // namespace smatch
