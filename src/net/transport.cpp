#include "net/transport.hpp"

#include "common/serde.hpp"

namespace smatch {

Bytes encode_frame(MessageKind kind, BytesView payload) {
  Writer w;
  // len counts kind + payload + crc.
  w.u32(static_cast<std::uint32_t>(payload.size() + 5));
  w.u8(static_cast<std::uint8_t>(kind));
  w.raw(payload);
  // CRC over kind || payload: everything the length prefix frames except
  // the checksum itself.
  w.u32(crc32(BytesView(w.bytes()).subspan(4, payload.size() + 1)));
  return w.take();
}

void FrameDecoder::feed(BytesView data) {
  // Compact the consumed prefix before growing the buffer.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 4096)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  append(buf_, data);
}

StatusOr<std::optional<Frame>> FrameDecoder::next() {
  const BytesView view = BytesView(buf_).subspan(pos_);
  if (view.size() < 4) return std::optional<Frame>{};
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len = len << 8 | view[static_cast<std::size_t>(i)];
  if (len < 5 || len - 5 > kMaxFramePayload) {
    return Status(StatusCode::kConnectionReset,
                  "unframeable length prefix " + std::to_string(len));
  }
  if (view.size() < 4u + len) return std::optional<Frame>{};

  const BytesView body = view.subspan(4, len - 4);        // kind || payload
  const BytesView crc_bytes = view.subspan(4 + len - 4);  // trailing u32
  pos_ += 4u + len;

  std::uint32_t claimed = 0;
  for (int i = 0; i < 4; ++i) claimed = claimed << 8 | crc_bytes[static_cast<std::size_t>(i)];
  if (crc32(body) != claimed) {
    return Status(StatusCode::kMalformedMessage, "frame checksum mismatch");
  }
  const std::uint8_t kind_byte = body[0];
  if (kind_byte >= kNumMessageKinds) {
    return Status(StatusCode::kMalformedMessage,
                  "unknown frame kind " + std::to_string(kind_byte));
  }
  Frame frame;
  frame.kind = static_cast<MessageKind>(kind_byte);
  frame.payload.assign(body.begin() + 1, body.end());
  return std::optional<Frame>{std::move(frame)};
}

StatusOr<Frame> Transport::recv_some() {
  return Status(StatusCode::kMalformedMessage,
                "transport has no readiness mode (pollable_fd() == -1)");
}

Status Transport::send_some(MessageKind /*kind*/, BytesView /*payload*/) {
  return {StatusCode::kMalformedMessage,
          "transport has no readiness mode (pollable_fd() == -1)"};
}

Status Transport::flush_some() { return Status::ok(); }

}  // namespace smatch
