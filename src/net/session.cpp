#include "net/session.hpp"

#include <thread>
#include <utility>

#include "common/wire.hpp"
#include "obs/exemplar.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace smatch {

namespace {

using Clock = std::chrono::steady_clock;

void bump(const char* name) {
  obs::Registry::global().counter(name)->fetch_add(1, std::memory_order_relaxed);
}

constexpr std::uint8_t kEnvelopeRequest = 0;
constexpr std::uint8_t kEnvelopeResponse = 1;
constexpr std::uint8_t kEnvelopeTracedRequest = 2;  // + trace_id/span_id

#if SMATCH_OBS_ENABLED
/// RAII around one client call: at destruction (after the net.call span
/// has closed into the exemplar pending table) hands the measured
/// end-to-end latency to the slow-request exemplar recorder. A no-op
/// unless the recorder is armed; compiles to nothing worth noting under
/// -DSMATCH_OBS=OFF (spans never feed the recorder there).
class SlowCallGuard {
 public:
  explicit SlowCallGuard(std::uint64_t trace_id)
      : trace_id_(trace_id), start_(Clock::now()) {}
  ~SlowCallGuard() {
    auto& recorder = obs::ExemplarRecorder::instance();
    if (!recorder.armed()) return;
    recorder.finish(trace_id_,
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            Clock::now() - start_)
                            .count()));
  }
  SlowCallGuard(const SlowCallGuard&) = delete;
  SlowCallGuard& operator=(const SlowCallGuard&) = delete;

 private:
  std::uint64_t trace_id_;
  Clock::time_point start_;
};
#endif  // SMATCH_OBS_ENABLED

}  // namespace

Bytes make_error_envelope(std::uint64_t request_id, StatusCode code,
                          const std::string& message) {
  Envelope e;
  e.is_response = true;
  e.request_id = request_id;
  e.status = code;
  e.body.assign(message.begin(), message.end());
  return e.serialize();
}

Bytes Envelope::serialize() const {
  Writer w;
  wire::write_header(w);
  const bool traced = !is_response && (trace_id != 0 || span_id != 0);
  w.u8(is_response ? kEnvelopeResponse
                   : (traced ? kEnvelopeTracedRequest : kEnvelopeRequest));
  w.u64(request_id);
  if (traced) {
    w.u64(trace_id);
    w.u64(span_id);
  }
  if (is_response) w.u8(static_cast<std::uint8_t>(status));
  w.var_bytes(body);
  return w.take();
}

StatusOr<Envelope> Envelope::parse(BytesView data) {
  return wire::parse_framed<Envelope>(data, [](Reader& r) {
    Envelope e;
    const std::uint8_t type = r.u8();
    if (type != kEnvelopeRequest && type != kEnvelopeResponse &&
        type != kEnvelopeTracedRequest) {
      throw SerdeError("unknown envelope type");
    }
    e.is_response = (type == kEnvelopeResponse);
    e.request_id = r.u64();
    if (type == kEnvelopeTracedRequest) {
      e.trace_id = r.u64();
      e.span_id = r.u64();
    }
    if (e.is_response) {
      const std::uint8_t code = r.u8();
      if (code > static_cast<std::uint8_t>(kMaxWireStatusCode)) {
        throw SerdeError("unknown status code");
      }
      e.status = static_cast<StatusCode>(code);
    }
    e.body = r.var_bytes();
    return e;
  });
}

SessionClient::SessionClient(Transport& transport, RetryPolicy policy,
                             std::uint64_t seed)
    : transport_(transport),
      policy_(policy),
      rng_(seed),
      // High random bits keep concurrent sessions' id spaces disjoint, so a
      // response can never match another session's outstanding request.
      next_id_(rng_.u64() | 1) {}

StatusOr<Bytes> SessionClient::call(MessageKind kind, BytesView body) {
  Envelope request;
  request.is_response = false;
  request.request_id = next_id_++;
  // The trace context rides the envelope (type-2) so server-side spans
  // stitch to this call's. Drawn from the session DRBG unconditionally —
  // also in -DSMATCH_OBS=OFF builds — so wire bytes never depend on
  // whether observability is compiled in. |1 keeps the ids nonzero
  // (0 means "no context" on the wire).
  request.trace_id = rng_.u64() | 1;
  request.span_id = rng_.u64() | 1;
  request.body.assign(body.begin(), body.end());
  const Bytes frame = request.serialize();

  // Declaration order matters: the net.call span must close (feeding the
  // exemplar pending table) before the guard finishes the trace, and the
  // context must be installed before the span opens.
  obs::TraceContextScope trace_scope(request.trace_id, request.span_id);
#if SMATCH_OBS_ENABLED
  SlowCallGuard slow_guard(request.trace_id);
#endif
  SMATCH_SPAN("net.call");
  auto& reg = obs::Registry::global();
  reg.counter("smatch_net_calls_total")->fetch_add(1, std::memory_order_relaxed);
  ++stats_.calls;

  const auto call_start = Clock::now();
  Status last(StatusCode::kTimeout, "no attempt made");
  for (std::size_t attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      SMATCH_SPAN("net.retry");
      SMATCH_FLIGHT(obs::FlightKind::kRetry, request.request_id, attempt);
      ++stats_.retries;
      reg.counter("smatch_net_retries_total")
          ->fetch_add(1, std::memory_order_relaxed);
      // Exponential backoff with seeded jitter: base * 2^(attempt-1),
      // capped, stretched by a factor in [1, 1 + jitter].
      std::chrono::milliseconds backoff =
          policy_.initial_backoff * (1ll << (attempt - 1));
      backoff = std::min(backoff, policy_.max_backoff);
      const double stretch =
          1.0 + policy_.jitter * ((rng_.u64() >> 11) * 0x1.0p-53);
      const auto jittered = std::chrono::milliseconds(
          static_cast<long long>(static_cast<double>(backoff.count()) * stretch));
      reg.histogram("smatch_net_backoff_ns")
          ->record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(jittered)
                  .count()));
      std::this_thread::sleep_for(jittered);
    }

    if (Status s = transport_.send(kind, frame, policy_.attempt_timeout);
        !s.is_ok()) {
      if (s.code() == StatusCode::kConnectionReset) return s;
      last = s;
      continue;
    }

    // Drain responses until ours arrives or the attempt deadline passes.
    // Stale ids (a retransmit answered twice) are counted and skipped.
    const auto attempt_deadline = Clock::now() + policy_.attempt_timeout;
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          attempt_deadline - Clock::now());
      if (left.count() <= 0) {
        last = Status(StatusCode::kTimeout, "attempt deadline expired");
        ++stats_.timeouts;
        reg.counter("smatch_net_timeouts_total")
            ->fetch_add(1, std::memory_order_relaxed);
        break;
      }
      StatusOr<Frame> reply = transport_.recv(left);
      if (!reply.is_ok()) {
        if (reply.code() == StatusCode::kConnectionReset) return reply.status();
        last = reply.status();
        if (last.code() == StatusCode::kTimeout) {
          ++stats_.timeouts;
          reg.counter("smatch_net_timeouts_total")
              ->fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      StatusOr<Envelope> envelope = Envelope::parse(reply->payload);
      if (!envelope.is_ok() || !envelope->is_response) continue;  // noise
      if (envelope->request_id != request.request_id) {
        ++stats_.stale_responses;
        bump("smatch_net_stale_responses_total");
        continue;
      }
      reg.histogram("smatch_net_rtt_ns")
          ->record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - call_start)
                  .count()));
      if (envelope->status != StatusCode::kOk) {
        return Status(envelope->status,
                      std::string(envelope->body.begin(), envelope->body.end()));
      }
      return std::move(envelope->body);
    }
  }
  return Status(StatusCode::kRetriesExhausted,
                "gave up after " + std::to_string(policy_.max_attempts) +
                    " attempts (last: " + last.message() + ")");
}

std::optional<Bytes> SessionState::lookup(std::uint64_t id) {
  std::lock_guard lk(mu_);
  const auto it = responses_.find(id);
  if (it == responses_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void SessionState::remember(std::uint64_t id, Bytes response) {
  std::lock_guard lk(mu_);
  if (responses_.count(id) != 0) return;
  if (capacity_ == 0) return;
  if (lru_.size() >= capacity_) {
    responses_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
    bump("smatch_net_replay_evictions_total");
  }
  lru_.emplace_front(id, std::move(response));
  responses_.emplace(id, lru_.begin());
}

std::uint64_t SessionState::evictions() const {
  std::lock_guard lk(mu_);
  return evictions_;
}

void FrameDispatcher::register_handler(MessageKind kind, Handler handler) {
  handlers_[static_cast<std::size_t>(kind)] = std::move(handler);
}

Bytes FrameDispatcher::dispatch(MessageKind kind, BytesView frame_payload,
                                SessionState& session) const {
  SMATCH_SPAN("net.dispatch");
  bump("smatch_net_dispatches_total");

  StatusOr<Envelope> request = Envelope::parse(frame_payload);
  if (!request.is_ok()) {
    // Unparseable envelope: no request id to echo. Id 0 is never issued
    // by SessionClient, so the caller can't confuse this with a reply.
    return make_error_envelope(0, StatusCode::kMalformedMessage,
                               request.status().message());
  }
  if (request->is_response) {
    return make_error_envelope(request->request_id, StatusCode::kMalformedMessage,
                               "server received a response envelope");
  }
  // Adopt the caller's trace context for everything downstream: the
  // net.handle span and every span the handler opens close with the
  // client's trace id, stitching both sides of the wire together.
  obs::TraceContextScope trace_scope(request->trace_id, request->span_id);
  SMATCH_SPAN("net.handle");

  if (std::optional<Bytes> cached = session.lookup(request->request_id)) {
    bump("smatch_net_replays_served_total");
    return std::move(*cached);
  }

  const Handler& handler = handlers_[static_cast<std::size_t>(kind)];
  Bytes response;
  if (!handler) {
    response = make_error_envelope(request->request_id, StatusCode::kMalformedMessage,
                                   "no handler for message kind");
  } else if (StatusOr<Bytes> result = handler(request->body); result.is_ok()) {
    Envelope e;
    e.is_response = true;
    e.request_id = request->request_id;
    e.status = StatusCode::kOk;
    e.body = std::move(*result);
    response = e.serialize();
  } else {
    response = make_error_envelope(request->request_id, result.code(),
                                   result.status().message());
  }
  session.remember(request->request_id, response);
  return response;
}

Status serve_connection(Transport& transport, const FrameDispatcher& dispatcher,
                        const std::atomic<bool>& stop,
                        std::chrono::milliseconds poll_interval) {
  SessionState session;
  while (!stop.load(std::memory_order_relaxed)) {
    StatusOr<Frame> frame = transport.recv(poll_interval);
    if (!frame.is_ok()) {
      if (frame.code() == StatusCode::kTimeout) continue;  // re-check stop
      if (frame.code() == StatusCode::kConnectionReset) return Status::ok();
      return frame.status();
    }
    const Bytes response = dispatcher.dispatch(frame->kind, frame->payload, session);
    if (Status s = transport.send(frame->kind, response, poll_interval);
        !s.is_ok()) {
      return s.code() == StatusCode::kConnectionReset ? Status::ok() : s;
    }
  }
  return Status::ok();
}

}  // namespace smatch
