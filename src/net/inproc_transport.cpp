#include "net/inproc_transport.hpp"

#include <algorithm>
#include <fcntl.h>
#include <thread>
#include <unistd.h>

#include "net/fault.hpp"
#include "obs/trace.hpp"

namespace smatch {

InProcTransport::Core::~Core() {
  for (int* p : {client_pipe, server_pipe}) {
    if (p[0] >= 0) ::close(p[0]);
    if (p[1] >= 0) ::close(p[1]);
  }
}

void InProcTransport::Core::notify_locked(bool client_end) {
  int* p = client_end ? client_pipe : server_pipe;
  if (p[1] < 0) return;
  const std::uint8_t byte = 1;
  (void)::write(p[1], &byte, 1);  // EAGAIN on a full pipe: already readable
}

void InProcTransport::Core::drain_locked(bool client_end) {
  int* p = client_end ? client_pipe : server_pipe;
  if (p[0] < 0) return;
  std::uint8_t buf[256];
  while (::read(p[0], buf, sizeof buf) > 0) {
  }
}

std::pair<std::unique_ptr<InProcTransport>, std::unique_ptr<InProcTransport>>
InProcTransport::make_pair(SimChannel* sim) {
  auto core = std::make_shared<Core>();
  core->sim = sim;
  auto client = std::unique_ptr<InProcTransport>(new InProcTransport(core, true));
  auto server = std::unique_ptr<InProcTransport>(new InProcTransport(core, false));
  return {std::move(client), std::move(server)};
}

InProcTransport::InProcTransport(std::shared_ptr<Core> core, bool is_client)
    : core_(std::move(core)), is_client_(is_client) {}

InProcTransport::~InProcTransport() { (void)close(); }

Status InProcTransport::send(MessageKind kind, BytesView payload,
                             std::chrono::milliseconds /*timeout*/) {
  SMATCH_SPAN("net.send");
  if (payload.size() > kMaxFramePayload) {
    return {StatusCode::kMalformedMessage, "payload exceeds frame limit"};
  }
  Bytes framed = encode_frame(kind, payload);

  // Account before fault application: an attempted send occupies the link
  // whether or not the frame survives it.
  note_sent(kind, payload.size());

  std::vector<Bytes> to_deliver;
  std::chrono::milliseconds delay{0};
  if (faults_ != nullptr) {
    to_deliver = faults_->on_send(std::move(framed), &delay);
  } else {
    to_deliver.push_back(std::move(framed));
  }
  if (delay.count() > 0) std::this_thread::sleep_for(delay);

  std::lock_guard lk(core_->mu);
  const bool peer_closed = is_client_ ? core_->server_closed : core_->client_closed;
  const bool self_closed = is_client_ ? core_->client_closed : core_->server_closed;
  if (peer_closed || self_closed) {
    return {StatusCode::kConnectionReset, "in-proc peer closed"};
  }
  if (core_->sim != nullptr) {
    if (is_client_) {
      (void)core_->sim->send_to_server(payload, kind);
    } else {
      (void)core_->sim->send_to_client(payload, kind);
    }
  }
  auto& queue = is_client_ ? core_->to_server : core_->to_client;
  for (auto& f : to_deliver) queue.push_back(std::move(f));
  core_->cv.notify_all();
  core_->notify_locked(/*client_end=*/!is_client_);
  return Status::ok();
}

StatusOr<Frame> InProcTransport::recv(std::chrono::milliseconds timeout) {
  SMATCH_SPAN("net.recv");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    // Drain anything already buffered in the decoder first.
    for (;;) {
      StatusOr<std::optional<Frame>> frame = decoder_.next();
      if (!frame.is_ok()) {
        if (frame.code() == StatusCode::kMalformedMessage) {
          note_crc_drop();
          continue;  // skip the bad frame, stay in sync
        }
        return frame.status();
      }
      if (frame->has_value()) {
        note_received((**frame).kind, (**frame).payload.size());
        return std::move(**frame);
      }
      break;  // need more bytes
    }

    std::unique_lock lk(core_->mu);
    auto& queue = is_client_ ? core_->to_client : core_->to_server;
    const bool ok = core_->cv.wait_until(lk, deadline, [&] {
      return !queue.empty() || core_->client_closed || core_->server_closed;
    });
    if (!queue.empty()) {
      const Bytes framed = std::move(queue.front());
      queue.pop_front();
      lk.unlock();
      decoder_.feed(framed);
      continue;
    }
    if (core_->client_closed || core_->server_closed) {
      return Status(StatusCode::kConnectionReset, "in-proc peer closed");
    }
    if (!ok) return Status(StatusCode::kTimeout, "in-proc recv deadline expired");
  }
}

Status InProcTransport::close() {
  std::lock_guard lk(core_->mu);
  (is_client_ ? core_->client_closed : core_->server_closed) = true;
  core_->cv.notify_all();
  // Both ends must wake: the peer to observe the reset, this end so a
  // poller blocked on our own pipe re-evaluates the connection.
  core_->notify_locked(/*client_end=*/true);
  core_->notify_locked(/*client_end=*/false);
  return Status::ok();
}

int InProcTransport::pollable_fd() const {
  std::lock_guard lk(core_->mu);
  int* p = is_client_ ? core_->client_pipe : core_->server_pipe;
  if (p[0] < 0) {
    if (::pipe2(p, O_NONBLOCK | O_CLOEXEC) != 0) return -1;
    // Frames queued (or a close flagged) before the pipe existed never
    // wrote a notify byte — seed one so the first poll sees them.
    const auto& queue = is_client_ ? core_->to_client : core_->to_server;
    if (!queue.empty() || core_->client_closed || core_->server_closed) {
      core_->notify_locked(is_client_);
    }
  }
  return p[0];
}

StatusOr<Frame> InProcTransport::recv_some() {
  for (;;) {
    // Hand out anything the decoder already holds before touching queues.
    for (;;) {
      StatusOr<std::optional<Frame>> frame = decoder_.next();
      if (!frame.is_ok()) {
        if (frame.code() == StatusCode::kMalformedMessage) {
          note_crc_drop();
          continue;  // skip the bad frame, stay in sync
        }
        return frame.status();
      }
      if (frame->has_value()) {
        note_received((**frame).kind, (**frame).payload.size());
        return std::move(**frame);
      }
      break;  // need more bytes
    }

    std::unique_lock lk(core_->mu);
    // Drain notify bytes while holding mu: any enqueue after the unlock
    // writes a fresh byte, so readiness is never silently lost.
    core_->drain_locked(is_client_);
    auto& queue = is_client_ ? core_->to_client : core_->to_server;
    if (!queue.empty()) {
      const Bytes framed = std::move(queue.front());
      queue.pop_front();
      lk.unlock();
      decoder_.feed(framed);
      continue;
    }
    if (core_->client_closed || core_->server_closed) {
      return Status(StatusCode::kConnectionReset, "in-proc peer closed");
    }
    return Status(StatusCode::kWouldBlock, "no complete frame ready");
  }
}

Status InProcTransport::send_some(MessageKind kind, BytesView payload) {
  SMATCH_SPAN("net.send");
  if (payload.size() > kMaxFramePayload) {
    return {StatusCode::kMalformedMessage, "payload exceeds frame limit"};
  }
  Bytes framed = encode_frame(kind, payload);
  note_sent(kind, payload.size());

  std::vector<Bytes> to_deliver;
  std::chrono::milliseconds delay{0};
  if (faults_ != nullptr) {
    to_deliver = faults_->on_send(std::move(framed), &delay);
  } else {
    to_deliver.push_back(std::move(framed));
  }

  {
    std::lock_guard lk(core_->mu);
    const bool peer_closed = is_client_ ? core_->server_closed : core_->client_closed;
    const bool self_closed = is_client_ ? core_->client_closed : core_->server_closed;
    if (peer_closed || self_closed) {
      return {StatusCode::kConnectionReset, "in-proc peer closed"};
    }
    // Sim byte accounting happens at send time (the attempt occupies the
    // link) exactly like the blocking path, even if a delay fault holds
    // the frames back.
    if (core_->sim != nullptr) {
      if (is_client_) {
        (void)core_->sim->send_to_server(payload, kind);
      } else {
        (void)core_->sim->send_to_client(payload, kind);
      }
    }
  }

  // A delay fault must not stall the event loop: hold the staged frames
  // until the deadline instead of sleeping. In-order delivery means later
  // frames wait behind the held ones, like a slow link.
  if (delay.count() > 0) {
    hold_until_ = std::max(hold_until_, std::chrono::steady_clock::now() + delay);
  }
  for (auto& f : to_deliver) {
    staged_bytes_ += f.size();
    staged_.push_back(std::move(f));
  }
  return flush_staged();
}

Status InProcTransport::flush_some() { return flush_staged(); }

Status InProcTransport::flush_staged() {
  if (staged_.empty()) return Status::ok();
  if (std::chrono::steady_clock::now() < hold_until_) {
    return {StatusCode::kWouldBlock, "frames held by injected delay"};
  }
  std::lock_guard lk(core_->mu);
  const bool peer_closed = is_client_ ? core_->server_closed : core_->client_closed;
  const bool self_closed = is_client_ ? core_->client_closed : core_->server_closed;
  if (peer_closed || self_closed) {
    return {StatusCode::kConnectionReset, "in-proc peer closed"};
  }
  auto& queue = is_client_ ? core_->to_server : core_->to_client;
  for (auto& f : staged_) queue.push_back(std::move(f));
  staged_.clear();
  staged_bytes_ = 0;
  core_->cv.notify_all();
  core_->notify_locked(/*client_end=*/!is_client_);
  return Status::ok();
}

std::size_t InProcTransport::pending_out_bytes() const { return staged_bytes_; }

}  // namespace smatch
