#include "net/inproc_transport.hpp"

#include <thread>

#include "net/fault.hpp"
#include "obs/trace.hpp"

namespace smatch {

std::pair<std::unique_ptr<InProcTransport>, std::unique_ptr<InProcTransport>>
InProcTransport::make_pair(SimChannel* sim) {
  auto core = std::make_shared<Core>();
  core->sim = sim;
  auto client = std::unique_ptr<InProcTransport>(new InProcTransport(core, true));
  auto server = std::unique_ptr<InProcTransport>(new InProcTransport(core, false));
  return {std::move(client), std::move(server)};
}

InProcTransport::InProcTransport(std::shared_ptr<Core> core, bool is_client)
    : core_(std::move(core)), is_client_(is_client) {}

InProcTransport::~InProcTransport() { (void)close(); }

Status InProcTransport::send(MessageKind kind, BytesView payload,
                             std::chrono::milliseconds /*timeout*/) {
  SMATCH_SPAN("net.send");
  if (payload.size() > kMaxFramePayload) {
    return {StatusCode::kMalformedMessage, "payload exceeds frame limit"};
  }
  Bytes framed = encode_frame(kind, payload);

  // Account before fault application: an attempted send occupies the link
  // whether or not the frame survives it.
  note_sent(kind, payload.size());

  std::vector<Bytes> to_deliver;
  std::chrono::milliseconds delay{0};
  if (faults_ != nullptr) {
    to_deliver = faults_->on_send(std::move(framed), &delay);
  } else {
    to_deliver.push_back(std::move(framed));
  }
  if (delay.count() > 0) std::this_thread::sleep_for(delay);

  std::lock_guard lk(core_->mu);
  const bool peer_closed = is_client_ ? core_->server_closed : core_->client_closed;
  const bool self_closed = is_client_ ? core_->client_closed : core_->server_closed;
  if (peer_closed || self_closed) {
    return {StatusCode::kConnectionReset, "in-proc peer closed"};
  }
  if (core_->sim != nullptr) {
    if (is_client_) {
      (void)core_->sim->send_to_server(payload, kind);
    } else {
      (void)core_->sim->send_to_client(payload, kind);
    }
  }
  auto& queue = is_client_ ? core_->to_server : core_->to_client;
  for (auto& f : to_deliver) queue.push_back(std::move(f));
  core_->cv.notify_all();
  return Status::ok();
}

StatusOr<Frame> InProcTransport::recv(std::chrono::milliseconds timeout) {
  SMATCH_SPAN("net.recv");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    // Drain anything already buffered in the decoder first.
    for (;;) {
      StatusOr<std::optional<Frame>> frame = decoder_.next();
      if (!frame.is_ok()) {
        if (frame.code() == StatusCode::kMalformedMessage) {
          note_crc_drop();
          continue;  // skip the bad frame, stay in sync
        }
        return frame.status();
      }
      if (frame->has_value()) {
        note_received((**frame).kind, (**frame).payload.size());
        return std::move(**frame);
      }
      break;  // need more bytes
    }

    std::unique_lock lk(core_->mu);
    auto& queue = is_client_ ? core_->to_client : core_->to_server;
    const bool ok = core_->cv.wait_until(lk, deadline, [&] {
      return !queue.empty() || core_->client_closed || core_->server_closed;
    });
    if (!queue.empty()) {
      const Bytes framed = std::move(queue.front());
      queue.pop_front();
      lk.unlock();
      decoder_.feed(framed);
      continue;
    }
    if (core_->client_closed || core_->server_closed) {
      return Status(StatusCode::kConnectionReset, "in-proc peer closed");
    }
    if (!ok) return Status(StatusCode::kTimeout, "in-proc recv deadline expired");
  }
}

Status InProcTransport::close() {
  std::lock_guard lk(core_->mu);
  (is_client_ ? core_->client_closed : core_->server_closed) = true;
  core_->cv.notify_all();
  return Status::ok();
}

}  // namespace smatch
