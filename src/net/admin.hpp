// Admin plane: a minimal HTTP/1.0 responder (no external dependencies)
// on its own port, serving the live telemetry of a running server:
//
//   GET /healthz            -> "ok"
//   GET /metrics            -> Prometheus exposition text (obs::Registry)
//   GET /metrics.json       -> JSON snapshot of the same registry
//   GET /trace              -> Chrome-trace JSON drained from the
//                              TraceBuffer (arm with trace_begin() /
//                              TraceBuffer::begin())
//   GET /trace?exemplars=1  -> Chrome-trace JSON of the slow-request
//                              exemplar ring (obs/exemplar.hpp)
//   GET /statusz            -> build info, uptime, registered status
//                              sections (server config, store state), and
//                              the flight-recorder dump
//
// One background thread accepts and serves connections sequentially —
// scrapes render a few strings, so a queue depth of one is plenty — with
// a per-connection deadline so a stuck scraper cannot wedge the plane.
// Responses close the connection (HTTP/1.0 semantics; curl needs no
// flags). NetServer starts one when ServerConfig::admin_port is set.
//
// Under -DSMATCH_OBS=OFF the responder is compiled out: start() returns
// an error status and no port is ever bound, so the OFF build provably
// has no admin surface (bench/obs_overhead.cpp gates this).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "net/tcp_transport.hpp"

namespace smatch {

class AdminServer {
 public:
  AdminServer() = default;
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral, read back with port()) and
  /// starts the serving thread. Under -DSMATCH_OBS=OFF: always an error.
  [[nodiscard]] Status start(std::uint16_t port);

  /// Stops the thread and closes the listener. Idempotent.
  void stop();

  /// The bound port; 0 until start() succeeds.
  [[nodiscard]] std::uint16_t port() const {
    return port_.load(std::memory_order_relaxed);
  }

  /// Registers a hook run before rendering /metrics and /metrics.json
  /// (publish engine snapshots, trace-plane self-metrics, ...).
  void set_refresh(std::function<void()> refresh);

  /// Appends a named /statusz section; the callback renders its body.
  void add_status_section(std::string title, std::function<std::string()> render);

  /// Requests answered so far (any endpoint, including 404s).
  [[nodiscard]] std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void serve_one(int fd, std::chrono::steady_clock::time_point deadline);
  [[nodiscard]] std::string render(const std::string& path_and_query);

  std::optional<TcpListener> listener_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint16_t> port_{0};
  std::atomic<std::uint64_t> served_{0};
  std::chrono::steady_clock::time_point started_at_{};

  std::mutex mu_;  // guards the hooks (settable while serving)
  std::function<void()> refresh_;
  std::vector<std::pair<std::string, std::function<std::string()>>> sections_;
};

/// Minimal HTTP/1.0 GET client for the admin plane (CI probes, the
/// scenario driver's mid-run /metrics sampling, benchmark scrape loops).
/// Returns the response body on HTTP 200; kConnectionReset/kTimeout on
/// transport trouble, kMalformedMessage on a non-200 or unparseable
/// response. Compiled in both builds (callers gate on admin presence).
[[nodiscard]] StatusOr<std::string> http_get(const std::string& host,
                                             std::uint16_t port,
                                             const std::string& path,
                                             std::chrono::milliseconds timeout =
                                                 std::chrono::milliseconds{2000});

}  // namespace smatch
