#include "net/admin.hpp"

#include <cerrno>
#include <cstdio>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "obs/exemplar.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace smatch {

namespace {

using Clock = std::chrono::steady_clock;

/// Polls `fd` for `events` until ready or the deadline passes.
bool wait_fd(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) return false;
    struct pollfd p {
      fd, events, 0
    };
    const int r = ::poll(&p, 1, static_cast<int>(left.count()));
    if (r > 0) return true;
    if (r < 0 && errno != EINTR) return false;
  }
}

/// Reads from a nonblocking fd until `stop_marker` appears, EOF, `limit`
/// bytes, or the deadline. Returns false only on the deadline/transport
/// failing before any marker/EOF.
bool read_until(int fd, std::string* out, const std::string& stop_marker,
                std::size_t limit, Clock::time_point deadline) {
  char buf[4096];
  for (;;) {
    if (!stop_marker.empty() && out->find(stop_marker) != std::string::npos) {
      return true;
    }
    if (out->size() >= limit) return !stop_marker.empty() ? false : true;
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n > 0) {
      out->append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return stop_marker.empty();  // EOF: fine for read-to-close
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!wait_fd(fd, POLLIN, deadline)) return false;
      continue;
    }
    if (errno == EINTR) continue;
    return false;
  }
}

bool write_all(int fd, const std::string& data, Clock::time_point deadline) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_fd(fd, POLLOUT, deadline)) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::string http_response(int code, const char* reason, const char* content_type,
                          const std::string& body) {
  char head[160];
  std::snprintf(head, sizeof head,
                "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                code, reason, content_type, body.size());
  return std::string(head) + body;
}

}  // namespace

#if SMATCH_OBS_ENABLED

AdminServer::~AdminServer() { stop(); }

Status AdminServer::start(std::uint16_t port) {
  if (thread_.joinable()) {
    return {StatusCode::kMalformedMessage, "AdminServer already started"};
  }
  StatusOr<TcpListener> listener = TcpListener::bind(port);
  if (!listener.is_ok()) return listener.status();
  port_.store(listener->port(), std::memory_order_relaxed);
  listener_.emplace(std::move(*listener));
  started_at_ = Clock::now();
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { run(); });
  return Status::ok();
}

void AdminServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listener_.has_value()) {
    listener_->close();
    listener_.reset();
  }
  port_.store(0, std::memory_order_relaxed);
}

void AdminServer::set_refresh(std::function<void()> refresh) {
  std::lock_guard lk(mu_);
  refresh_ = std::move(refresh);
}

void AdminServer::add_status_section(std::string title,
                                     std::function<std::string()> render) {
  std::lock_guard lk(mu_);
  sections_.emplace_back(std::move(title), std::move(render));
}

void AdminServer::run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    // accept() drives its own poll loop; a short timeout keeps the stop
    // flag responsive without spinning.
    StatusOr<std::unique_ptr<TcpTransport>> conn =
        listener_->accept(std::chrono::milliseconds{100});
    if (!conn.is_ok()) {
      if (conn.code() == StatusCode::kConnectionReset) return;  // listener closed
      continue;  // kTimeout: nobody called
    }
    const int fd = (*conn)->pollable_fd();
    if (fd >= 0) serve_one(fd, Clock::now() + std::chrono::seconds{2});
    (void)(*conn)->close();
  }
}

void AdminServer::serve_one(int fd, Clock::time_point deadline) {
  std::string request;
  if (!read_until(fd, &request, "\r\n\r\n", 8192, deadline)) return;
  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t sp1 = request.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? sp1 : request.find(' ', sp1 + 1);
  std::string response;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response = http_response(400, "Bad Request", "text/plain", "bad request\n");
  } else if (request.substr(0, sp1) != "GET") {
    response =
        http_response(405, "Method Not Allowed", "text/plain", "GET only\n");
  } else {
    response = render(request.substr(sp1 + 1, sp2 - sp1 - 1));
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  (void)write_all(fd, response, deadline);
}

std::string AdminServer::render(const std::string& path_and_query) {
  const std::size_t q = path_and_query.find('?');
  const std::string path = path_and_query.substr(0, q);
  const std::string query =
      q == std::string::npos ? "" : path_and_query.substr(q + 1);

  if (path == "/healthz") {
    return http_response(200, "OK", "text/plain", "ok\n");
  }

  if (path == "/metrics" || path == "/metrics.json") {
    std::function<void()> refresh;
    {
      std::lock_guard lk(mu_);
      refresh = refresh_;
    }
    if (refresh) refresh();
    obs::publish_trace_metrics();
    if (path == "/metrics") {
      return http_response(200, "OK", "text/plain; version=0.0.4",
                           obs::Registry::global().prometheus_text());
    }
    return http_response(200, "OK", "application/json",
                         obs::Registry::global().json());
  }

  if (path == "/trace") {
    const bool exemplars = query.find("exemplars=1") != std::string::npos;
    return http_response(200, "OK", "application/json",
                         exemplars
                             ? obs::ExemplarRecorder::instance().chrome_json()
                             : obs::TraceBuffer::instance().chrome_json());
  }

  if (path == "/statusz") {
    char line[256];
    std::string body = "smatch statusz\n\n";
    std::snprintf(line, sizeof line, "build: %s, obs=%d\n", __VERSION__,
                  SMATCH_OBS_ENABLED);
    body += line;
    const auto uptime = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - started_at_);
    std::snprintf(line, sizeof line, "uptime_ms: %lld\nadmin_requests: %llu\n",
                  static_cast<long long>(uptime.count()),
                  static_cast<unsigned long long>(
                      served_.load(std::memory_order_relaxed)));
    body += line;
    const obs::TraceBuffer& buf = obs::TraceBuffer::instance();
    const obs::ExemplarRecorder& ex = obs::ExemplarRecorder::instance();
    std::snprintf(line, sizeof line,
                  "trace: enabled=%d dropped=%llu capacity=%zu\n"
                  "exemplars: armed=%d threshold_ns=%llu occupancy=%zu "
                  "captured=%llu\n",
                  buf.enabled() ? 1 : 0,
                  static_cast<unsigned long long>(buf.dropped()), buf.capacity(),
                  ex.armed() ? 1 : 0,
                  static_cast<unsigned long long>(ex.threshold_ns()),
                  ex.occupancy(),
                  static_cast<unsigned long long>(ex.captured_total()));
    body += line;

    std::vector<std::pair<std::string, std::function<std::string()>>> sections;
    {
      std::lock_guard lk(mu_);
      sections = sections_;
    }
    for (const auto& [title, render_fn] : sections) {
      body += "\n== " + title + " ==\n";
      body += render_fn ? render_fn() : std::string{};
    }

    body += "\n== flight recorder ==\n";
    body += obs::FlightRecorder::instance().dump_text();
    return http_response(200, "OK", "text/plain", body);
  }

  return http_response(404, "Not Found", "text/plain", "not found\n");
}

#else  // SMATCH_OBS_ENABLED

// Kill-switch build: no admin surface exists. The class keeps its shape
// so NetServer code compiles, but start() refuses and never binds.

AdminServer::~AdminServer() = default;

Status AdminServer::start(std::uint16_t) {
  return {StatusCode::kMalformedMessage,
          "admin plane compiled out (-DSMATCH_OBS=OFF)"};
}

void AdminServer::stop() {}

void AdminServer::set_refresh(std::function<void()>) {}

void AdminServer::add_status_section(std::string, std::function<std::string()>) {}

void AdminServer::run() {}

void AdminServer::serve_one(int, Clock::time_point) {}

std::string AdminServer::render(const std::string&) { return {}; }

#endif  // SMATCH_OBS_ENABLED

StatusOr<std::string> http_get(const std::string& host, std::uint16_t port,
                               const std::string& path,
                               std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  StatusOr<std::unique_ptr<TcpTransport>> conn =
      TcpTransport::connect(host, port, timeout);
  if (!conn.is_ok()) return conn.status();
  const int fd = (*conn)->pollable_fd();
  if (fd < 0) return Status(StatusCode::kConnectionReset, "no usable socket");

  const std::string request = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!write_all(fd, request, deadline)) {
    (void)(*conn)->close();
    return Status(StatusCode::kTimeout, "admin request send timed out");
  }
  std::string response;
  // Read to EOF (HTTP/1.0 close-delimited), bounded to keep a haywire
  // endpoint from ballooning memory.
  if (!read_until(fd, &response, "", 16u << 20, deadline)) {
    (void)(*conn)->close();
    return Status(StatusCode::kTimeout, "admin response read timed out");
  }
  (void)(*conn)->close();

  const std::size_t line_end = response.find("\r\n");
  if (line_end == std::string::npos) {
    return Status(StatusCode::kMalformedMessage, "short HTTP response");
  }
  const std::string status_line = response.substr(0, line_end);
  if (status_line.find(" 200") == std::string::npos) {
    return Status(StatusCode::kMalformedMessage,
                  "HTTP status not 200: " + status_line);
  }
  const std::size_t body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos) {
    return Status(StatusCode::kMalformedMessage, "HTTP response without body");
  }
  return response.substr(body_at + 4);
}

}  // namespace smatch
