// In-process Transport adapter over the simulated 802.11n link.
//
// make_pair() returns the two endpoints of one connection: frames sent on
// the client end arrive at the server end and vice versa. Every frame is
// genuinely *encoded* (length prefix + kind + CRC) and decoded through
// the same FrameDecoder the TCP transport uses, so framing bugs and
// injected corruption behave identically on both transports; only the
// socket is simulated.
//
// When constructed over a SimChannel, each send also records its payload
// into the channel's per-kind byte accounting and link model — the
// communication-cost benchmarks (fig5d-f) keep their exact numbers while
// speaking the unified Transport API.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "net/transport.hpp"

namespace smatch {

class InProcTransport final : public Transport {
 public:
  /// Both endpoints of a fresh connection: {client end, server end}.
  /// `sim`, when non-null, receives the byte accounting (client-end sends
  /// count as uplink, server-end sends as downlink) and must outlive both
  /// endpoints.
  [[nodiscard]] static std::pair<std::unique_ptr<InProcTransport>,
                                 std::unique_ptr<InProcTransport>>
  make_pair(SimChannel* sim = nullptr);

  ~InProcTransport() override;

  Status send(MessageKind kind, BytesView payload,
              std::chrono::milliseconds timeout) override;
  StatusOr<Frame> recv(std::chrono::milliseconds timeout) override;
  Status close() override;

  // Readiness mode: each endpoint lazily owns a self-pipe whose read end
  // is the pollable handle. Producers write a notify byte under the same
  // mutex that guards the frame queues, so a wakeup can never be lost
  // between "queue checked empty" and "poll started". Delay faults hold
  // staged frames until the deadline instead of sleeping the loop thread.
  [[nodiscard]] int pollable_fd() const override;
  StatusOr<Frame> recv_some() override;
  Status send_some(MessageKind kind, BytesView payload) override;
  Status flush_some() override;
  [[nodiscard]] std::size_t pending_out_bytes() const override;

 private:
  /// State shared by the two endpoints of one connection.
  struct Core {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Bytes> to_client;  // encoded frames awaiting the client end
    std::deque<Bytes> to_server;
    bool client_closed = false;
    bool server_closed = false;
    SimChannel* sim = nullptr;
    // Per-endpoint readiness self-pipes {read, write}, created lazily by
    // pollable_fd(); -1 while the endpoint never asked for readiness.
    int client_pipe[2] = {-1, -1};
    int server_pipe[2] = {-1, -1};

    ~Core();
    /// Writes one notify byte to an endpoint's pipe (no-op while the pipe
    /// does not exist or is full — full means already readable). Caller
    /// holds mu.
    void notify_locked(bool client_end);
    /// Consumes buffered notify bytes from an endpoint's pipe. Caller
    /// holds mu, so a concurrent producer's byte lands after the drain.
    void drain_locked(bool client_end);
  };

  InProcTransport(std::shared_ptr<Core> core, bool is_client);

  /// Moves staged frames into the peer's queue once any delay-fault hold
  /// expired. Ok when nothing stays staged.
  Status flush_staged();

  std::shared_ptr<Core> core_;
  bool is_client_;
  FrameDecoder decoder_;  // reassembles frames popped from the queue

  // Nonblocking-send staging (only the owning loop thread touches these,
  // per the readiness-mode single-thread contract).
  std::vector<Bytes> staged_;
  std::size_t staged_bytes_ = 0;
  std::chrono::steady_clock::time_point hold_until_{};
};

}  // namespace smatch
