// In-process Transport adapter over the simulated 802.11n link.
//
// make_pair() returns the two endpoints of one connection: frames sent on
// the client end arrive at the server end and vice versa. Every frame is
// genuinely *encoded* (length prefix + kind + CRC) and decoded through
// the same FrameDecoder the TCP transport uses, so framing bugs and
// injected corruption behave identically on both transports; only the
// socket is simulated.
//
// When constructed over a SimChannel, each send also records its payload
// into the channel's per-kind byte accounting and link model — the
// communication-cost benchmarks (fig5d-f) keep their exact numbers while
// speaking the unified Transport API.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>

#include "net/transport.hpp"

namespace smatch {

class InProcTransport final : public Transport {
 public:
  /// Both endpoints of a fresh connection: {client end, server end}.
  /// `sim`, when non-null, receives the byte accounting (client-end sends
  /// count as uplink, server-end sends as downlink) and must outlive both
  /// endpoints.
  [[nodiscard]] static std::pair<std::unique_ptr<InProcTransport>,
                                 std::unique_ptr<InProcTransport>>
  make_pair(SimChannel* sim = nullptr);

  ~InProcTransport() override;

  Status send(MessageKind kind, BytesView payload,
              std::chrono::milliseconds timeout) override;
  StatusOr<Frame> recv(std::chrono::milliseconds timeout) override;
  Status close() override;

 private:
  /// State shared by the two endpoints of one connection.
  struct Core {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Bytes> to_client;  // encoded frames awaiting the client end
    std::deque<Bytes> to_server;
    bool client_closed = false;
    bool server_closed = false;
    SimChannel* sim = nullptr;
  };

  InProcTransport(std::shared_ptr<Core> core, bool is_client);

  std::shared_ptr<Core> core_;
  bool is_client_;
  FrameDecoder decoder_;  // reassembles frames popped from the queue
};

}  // namespace smatch
