#include "net/server.hpp"

#include <utility>

#include "obs/registry.hpp"

namespace smatch {

namespace {
constexpr std::chrono::milliseconds kPollInterval{50};
}

NetServer::NetServer(FrameDispatcher dispatcher, std::size_t workers)
    : dispatcher_(std::move(dispatcher)),
      workers_(workers == 0 ? 1 : workers),
      pool_(workers_ + 1) {}

NetServer::~NetServer() { stop(); }

Status NetServer::start(std::uint16_t port) {
  StatusOr<TcpListener> listener = TcpListener::bind(port);
  if (!listener.is_ok()) return listener.status();
  port_ = listener->port();
  listener_.emplace(std::move(*listener));
  launch();
  return Status::ok();
}

void NetServer::attach(std::unique_ptr<Transport> connection) {
  launch();
  {
    std::lock_guard lk(mu_);
    pending_.push_back(std::move(connection));
  }
  pending_cv_.notify_one();
}

void NetServer::launch() {
  std::lock_guard lk(mu_);
  if (launched_) return;
  launched_ = true;
  // The runner hosts the blocking parallel_for; with workers_+1 pool
  // threads and workers_+1 indices, every loop gets its own thread.
  runner_ = std::thread([this] {
    pool_.parallel_for(workers_ + 1, [this](std::size_t i) {
      if (i == 0) {
        accept_loop();
      } else {
        worker_loop();
      }
    });
  });
}

void NetServer::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    if (!listener_.has_value()) {
      // In-process-only server: nothing to accept, just idle until stop.
      std::unique_lock lk(mu_);
      pending_cv_.wait_for(lk, kPollInterval);
      continue;
    }
    StatusOr<std::unique_ptr<TcpTransport>> conn = listener_->accept(kPollInterval);
    if (!conn.is_ok()) continue;  // kTimeout: re-check stop and poll again
    {
      std::lock_guard lk(mu_);
      pending_.push_back(std::move(*conn));
    }
    pending_cv_.notify_one();
  }
  // The accept loop owns the listening socket; closing it here (after the
  // loop exits) keeps fd lifetime single-threaded.
  if (listener_.has_value()) listener_->close();
}

void NetServer::worker_loop() {
  while (true) {
    std::unique_ptr<Transport> conn;
    {
      std::unique_lock lk(mu_);
      pending_cv_.wait_for(lk, kPollInterval, [this] {
        return !pending_.empty() || stop_.load(std::memory_order_relaxed);
      });
      if (stop_.load(std::memory_order_relaxed)) return;
      if (pending_.empty()) continue;
      conn = std::move(pending_.front());
      pending_.pop_front();
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global()
        .counter("smatch_net_connections_total")
        ->fetch_add(1, std::memory_order_relaxed);
    (void)serve_connection(*conn, dispatcher_, stop_, kPollInterval);
    (void)conn->close();
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void NetServer::stop() {
  {
    std::lock_guard lk(mu_);
    if (!launched_) return;
  }
  stop_.store(true, std::memory_order_relaxed);
  pending_cv_.notify_all();
  if (runner_.joinable()) runner_.join();
  // Connections that never got picked up are closed on this thread after
  // every loop has joined — no concurrent owner remains.
  std::lock_guard lk(mu_);
  for (auto& conn : pending_) (void)conn->close();
  pending_.clear();
  launched_ = false;
}

}  // namespace smatch
