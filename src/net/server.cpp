#include "net/server.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/exemplar.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"

namespace smatch {

namespace {

void bump(const char* name) {
  obs::Registry::global().counter(name)->fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

NetServer::NetServer(FrameDispatcher dispatcher)
    : dispatcher_(std::move(dispatcher)) {}

NetServer::~NetServer() { stop(); }

Status NetServer::start(const ServerConfig& config) {
  std::lock_guard lk(mu_);
  return start_locked(config);
}

Status NetServer::start_locked(const ServerConfig& config) {
  if (started_) {
    return {StatusCode::kMalformedMessage, "NetServer already started"};
  }
  config_ = config;
  config_.io_threads = std::max<std::size_t>(1, config_.io_threads);
  config_.dispatch_workers = std::max<std::size_t>(1, config_.dispatch_workers);
  config_.max_connections = std::max<std::size_t>(1, config_.max_connections);
  config_.max_inflight_per_connection =
      std::max<std::size_t>(1, config_.max_inflight_per_connection);

  if (config_.tcp_port.has_value()) {
    StatusOr<TcpListener> listener = TcpListener::bind(*config_.tcp_port);
    if (!listener.is_ok()) return listener.status();
    port_ = listener->port();
    listener_.emplace(std::move(*listener));
  }

  // ThreadPool(n) spawns n-1 workers (the caller participates in
  // parallel_for); submit()-only usage wants dispatch_workers real ones.
  pool_ = std::make_unique<ThreadPool>(config_.dispatch_workers + 1);

  IoLoopOptions opts;
  opts.max_inflight_per_connection = config_.max_inflight_per_connection;
  opts.max_pending_bytes_per_connection = config_.max_pending_bytes_per_connection;
  opts.replay_cache_capacity = config_.replay_cache_capacity;
  opts.force_poll_fallback = config_.force_poll_fallback;
  loops_.reserve(config_.io_threads);
  for (std::size_t i = 0; i < config_.io_threads; ++i) {
    loops_.push_back(std::make_unique<IoLoop>(dispatcher_, *pool_, opts, active_));
  }
  // Loop 0 owns accept readiness; accepted connections still shard
  // round-robin across every loop.
  if (listener_.has_value()) {
    loops_[0]->watch_external(listener_->fd(), [this] { handle_accept(); });
  }
  for (auto& loop : loops_) loop->start();

#if SMATCH_OBS_ENABLED
  if (config_.slow_request_threshold_ns != 0) {
    obs::ExemplarRecorder::instance().arm(config_.slow_request_threshold_ns);
  }
  if (config_.admin_port.has_value()) {
    obs::FlightRecorder::install_fatal_dump();
    admin_ = std::make_unique<AdminServer>();
    if (Status s = admin_->start(*config_.admin_port); !s.is_ok()) {
      admin_.reset();
      return s;
    }
    admin_->add_status_section("net server", [this] {
      char buf[512];
      std::snprintf(
          buf, sizeof buf,
          "tcp_port: %u\nactive_connections: %zu\nio_threads: %zu\n"
          "dispatch_workers: %zu\nmax_connections: %zu\n"
          "max_inflight_per_connection: %zu\n"
          "max_pending_bytes_per_connection: %zu\n"
          "replay_cache_capacity: %zu\nslow_request_threshold_ns: %llu\n",
          port_, active_connections(), config_.io_threads,
          config_.dispatch_workers, config_.max_connections,
          config_.max_inflight_per_connection,
          config_.max_pending_bytes_per_connection, config_.replay_cache_capacity,
          static_cast<unsigned long long>(config_.slow_request_threshold_ns));
      return std::string(buf);
    });
  }
#endif  // SMATCH_OBS_ENABLED

  SMATCH_FLIGHT(obs::FlightKind::kServerStart, port_, admin_port());
  started_ = true;
  return Status::ok();
}

std::uint16_t NetServer::admin_port() const {
  return admin_ ? admin_->port() : 0;
}

void NetServer::ensure_started() {
  std::lock_guard lk(mu_);
  if (started_) return;
  ServerConfig config;  // TCP-less defaults for attach()-only use
  (void)start_locked(config);
}

bool NetServer::admit() {
  std::size_t current = active_.load(std::memory_order_relaxed);
  while (current < config_.max_connections) {
    if (active_.compare_exchange_weak(current, current + 1,
                                      std::memory_order_relaxed)) {
      bump("smatch_net_connections_total");
      return true;
    }
  }
  bump("smatch_net_shed_connections_total");
  SMATCH_FLIGHT(obs::FlightKind::kConnShed, current, 0);
  return false;
}

void NetServer::route(std::unique_ptr<Transport> connection) {
  if (connection->pollable_fd() >= 0) {
    loops_[rr_.fetch_add(1, std::memory_order_relaxed) % loops_.size()]->adopt(
        std::move(connection));
    return;
  }
  // No readiness mode: serve with the blocking session loop on its own
  // thread. The thread idles on recv(poll_interval) to re-check stop_.
  std::lock_guard lk(mu_);
  fallback_threads_.emplace_back(
      [this, conn = std::shared_ptr<Transport>(std::move(connection))] {
        (void)serve_connection(*conn, dispatcher_, stop_);
        (void)conn->close();
        active_.fetch_sub(1, std::memory_order_relaxed);
      });
}

void NetServer::attach(std::unique_ptr<Transport> connection) {
  ensure_started();
  if (stop_.load(std::memory_order_relaxed)) {
    (void)connection->close();
    return;
  }
  if (!admit()) {
    (void)connection->close();
    return;
  }
  route(std::move(connection));
}

void NetServer::handle_accept() {
  // Drain the backlog: accept(0ms) tries exactly one nonblocking accept.
  for (;;) {
    StatusOr<std::unique_ptr<TcpTransport>> conn =
        listener_->accept(std::chrono::milliseconds{0});
    if (!conn.is_ok()) return;  // kTimeout = would block; others retry later
    if (!admit()) {
      (void)(*conn)->close();  // shed: beyond max_connections
      continue;
    }
    route(std::move(*conn));
  }
}

void NetServer::stop() {
  {
    std::lock_guard lk(mu_);
    if (!started_) return;
  }
  stop_.store(true, std::memory_order_relaxed);
  SMATCH_FLIGHT(obs::FlightKind::kServerStop,
                active_.load(std::memory_order_relaxed), 0);
#if SMATCH_OBS_ENABLED
  // Symmetric with start_locked's arm(): captured exemplars stay
  // readable, but a later server (or test) starts from a disarmed
  // recorder instead of inheriting this one's threshold.
  if (config_.slow_request_threshold_ns != 0) {
    obs::ExemplarRecorder::instance().disarm();
  }
#endif  // SMATCH_OBS_ENABLED
  if (admin_) admin_->stop();
  for (auto& loop : loops_) loop->request_stop();
  for (auto& loop : loops_) loop->join();
  if (listener_.has_value()) listener_->close();
  std::vector<std::thread> fallbacks;
  {
    std::lock_guard lk(mu_);
    fallbacks.swap(fallback_threads_);
  }
  for (auto& t : fallbacks) {
    if (t.joinable()) t.join();
  }
}

}  // namespace smatch
