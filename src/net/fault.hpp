// Seeded fault injection for transports: drop, corrupt, delay, reorder.
//
// Both TcpTransport and InProcTransport consult an installed injector on
// every send, *after* frame encoding — a corrupted frame therefore fails
// its CRC at the receiver and is silently skipped, so the observable
// failure mode is "the frame never arrived", exactly like a lost segment
// on a real link. That makes the session layer's retransmit/backoff logic
// testable deterministically: the same seed produces the same fault
// schedule.
//
// Thread-safe; fault decisions draw from an internal ChaCha20 DRBG under
// a mutex. Counters are mirrored into the global metric registry as
// smatch_net_fault_{dropped,corrupted,delayed,reordered}_total.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/drbg.hpp"

namespace smatch {

/// Fault probabilities (each in [0, 1], evaluated independently per
/// frame) and the deterministic seed.
struct FaultSpec {
  double drop = 0.0;     // frame silently discarded
  double corrupt = 0.0;  // one random byte of the encoded frame flipped
  double delay = 0.0;    // blocking send sleeps delay_ms; nonblocking
                         // send_some stages the bytes and holds them
                         // until the deadline (kWouldBlock meanwhile)
  double reorder = 0.0;  // frame held back and sent after the next one
  std::chrono::milliseconds delay_ms{5};
  std::uint64_t seed = 1;
};

/// Counters of faults actually applied.
struct FaultCounters {
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t delayed = 0;
  std::uint64_t reordered = 0;
  [[nodiscard]] std::uint64_t total() const {
    return dropped + corrupted + delayed + reordered;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec);

  /// Applies the fault schedule to one encoded frame, in place.
  /// Returns the frame(s) to actually put on the wire, in order — empty
  /// when the frame was dropped, two frames when a previously held frame
  /// is released behind this one. `delayed_out`, when set, tells the
  /// caller to sleep before writing (transports sleep outside the lock).
  [[nodiscard]] std::vector<Bytes> on_send(Bytes frame,
                                           std::chrono::milliseconds* delayed_out);

  [[nodiscard]] FaultCounters counters() const;

 private:
  [[nodiscard]] bool roll(double probability);

  FaultSpec spec_;
  mutable std::mutex mu_;
  Drbg rng_;
  std::optional<Bytes> held_;  // frame awaiting reorder release
  FaultCounters counters_;
};

}  // namespace smatch
