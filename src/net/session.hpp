// Fault-tolerant request/response session layer over a Transport.
//
// Envelope format (the frame payload; carries the standard versioned
// "SM" wire header of common/wire.hpp):
//
//   request   := header(3) || type:u8 = 0 || request_id:u64 || var_bytes(body)
//   request'  := header(3) || type:u8 = 2 || request_id:u64
//                || trace_id:u64 || span_id:u64 || var_bytes(body)
//   response  := header(3) || type:u8 = 1 || request_id:u64 || status:u8
//                || var_bytes(body)
//
// Type 2 is the trace-context request (envelope format v2,
// docs/PROTOCOL.md): 16 extra bytes carry the (trace_id, span_id) pair
// that stitches client- and server-side spans into one timeline. A zero
// context serializes as the legacy type 0, and both parse, so old and
// new peers interoperate. The ids are drawn from the session DRBG —
// deterministic per seed, identical whether observability is compiled
// in or out (-DSMATCH_OBS=OFF), so golden vectors hold in both builds.
//
// Request IDs make retransmits idempotent: the server keeps a bounded
// per-connection replay cache of recent responses and answers a repeated
// request_id from the cache without re-running the handler. The client
// retransmits on timeout with exponential backoff plus seeded jitter and
// gives up with kRetriesExhausted after the attempt budget. A response's
// status byte transports the server-side Status code (body = the status
// message when non-ok), so service errors arrive as typed statuses, never
// as exceptions.
//
// Metrics live in the global registry under smatch_net_*:
//   smatch_net_calls_total / retries_total / timeouts_total /
//   replays_served_total / dispatches_total, histograms
//   smatch_net_rtt_ns and smatch_net_backoff_ns.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "crypto/drbg.hpp"
#include "net/transport.hpp"

namespace smatch {

/// Session envelope, symmetric for both directions.
struct Envelope {
  bool is_response = false;
  std::uint64_t request_id = 0;
  StatusCode status = StatusCode::kOk;  // responses only
  /// Cross-wire trace context (requests only; 0 = none, serializes as
  /// the legacy type-0 envelope).
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  Bytes body;

  [[nodiscard]] Bytes serialize() const;
  /// kMalformedMessage / kUnsupportedVersion on wire damage. Never throws.
  [[nodiscard]] static StatusOr<Envelope> parse(BytesView data);
};

/// Client-side retry schedule. Backoff for attempt n (0-based) is
/// initial_backoff * 2^n, capped at max_backoff, stretched by a uniform
/// jitter factor in [1, 1 + jitter].
struct RetryPolicy {
  std::size_t max_attempts = 4;
  std::chrono::milliseconds attempt_timeout{250};  // per-attempt recv deadline
  std::chrono::milliseconds initial_backoff{5};
  std::chrono::milliseconds max_backoff{200};
  double jitter = 0.5;
};

/// Per-call statistics of a SessionClient.
struct SessionStats {
  std::uint64_t calls = 0;
  std::uint64_t retries = 0;         // retransmits beyond the first attempt
  std::uint64_t timeouts = 0;        // attempts that expired
  std::uint64_t stale_responses = 0; // responses for an older request_id
};

/// One logical RPC channel over a Transport. Not thread-safe: one
/// SessionClient per calling thread (they may share a Transport only if
/// the transport is used by a single session at a time).
class SessionClient {
 public:
  /// `seed` drives the request-id sequence and backoff jitter, so a test
  /// run is reproducible end to end.
  explicit SessionClient(Transport& transport, RetryPolicy policy = {},
                         std::uint64_t seed = 0x5eed);

  /// Sends `body` as `kind` and waits for the matching response.
  /// Status codes from the server pass through verbatim (kUnknownUser,
  /// kBudgetExhausted, ...); transport failures surface as kTimeout /
  /// kConnectionReset, and a spent retry budget as kRetriesExhausted.
  [[nodiscard]] StatusOr<Bytes> call(MessageKind kind, BytesView body);

  [[nodiscard]] const SessionStats& stats() const { return stats_; }
  [[nodiscard]] Transport& transport() { return transport_; }

 private:
  Transport& transport_;
  RetryPolicy policy_;
  Drbg rng_;
  std::uint64_t next_id_;
  SessionStats stats_;
};

/// Bounded per-connection replay cache: request_id -> serialized response,
/// evicting least-recently-used entries at capacity (a hit refreshes the
/// entry, so an id a slow client keeps retransmitting stays cached while
/// long-acknowledged ones age out). Evictions land in the
/// smatch_net_replay_evictions_total counter. Thread-safe: the event loop
/// probes the cache while pool workers remember completions.
class SessionState {
 public:
  explicit SessionState(std::size_t capacity = 128) : capacity_(capacity) {}

  /// A copy of the cached response for `id` (copy, not pointer: the entry
  /// may be evicted by a concurrent remember() the moment the lock drops).
  /// A hit marks the entry most-recently-used.
  [[nodiscard]] std::optional<Bytes> lookup(std::uint64_t id);
  void remember(std::uint64_t id, Bytes response);

  /// Entries evicted to make room (monotone).
  [[nodiscard]] std::uint64_t evictions() const;

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  // MRU at the front; responses_ maps id -> position in lru_.
  std::list<std::pair<std::uint64_t, Bytes>> lru_;
  std::unordered_map<std::uint64_t, std::list<std::pair<std::uint64_t, Bytes>>::iterator>
      responses_;
  std::uint64_t evictions_ = 0;
};

/// Serializes a response envelope for `request_id` carrying only an error
/// status — the shape every failure path uses (dispatch errors, and the
/// server's kOverloaded load-shedding replies, which are built on the
/// event-loop thread without running any handler).
[[nodiscard]] Bytes make_error_envelope(std::uint64_t request_id, StatusCode code,
                                        const std::string& message);

/// Routes request envelopes to per-kind handlers and produces response
/// envelopes. Shared by every connection of a server; handler
/// registration happens before serving starts and is immutable after.
class FrameDispatcher {
 public:
  /// A handler gets the request body and returns the response body (or
  /// the error Status that becomes the envelope's status byte).
  using Handler = std::function<StatusOr<Bytes>(BytesView)>;

  void register_handler(MessageKind kind, Handler handler);

  /// Handles one request frame: envelope parse, replay-cache lookup,
  /// handler dispatch, response build. Always returns a response frame
  /// payload (errors travel inside the envelope). Thread-safe given the
  /// per-connection `session`  is not shared across threads.
  [[nodiscard]] Bytes dispatch(MessageKind kind, BytesView frame_payload,
                               SessionState& session) const;

 private:
  std::array<Handler, kNumMessageKinds> handlers_;
};

/// Serves one connection: recv → dispatch → respond, until the peer
/// closes (returns ok), the transport errors out (returns that status),
/// or `stop` turns true (checked between recvs, at `poll_interval`
/// granularity).
Status serve_connection(Transport& transport, const FrameDispatcher& dispatcher,
                        const std::atomic<bool>& stop,
                        std::chrono::milliseconds poll_interval =
                            std::chrono::milliseconds{50});

}  // namespace smatch
