#include "net/channel.hpp"

namespace smatch {

double SimChannel::record(DirectionStats& dir, BytesView payload, const std::string& label) {
  ++dir.messages;
  dir.bytes += payload.size();
  const double secs = link_.transfer_seconds(payload.size());
  dir.sim_seconds += secs;
  if (!label.empty()) by_label_[label] += payload.size();
  return secs;
}

double SimChannel::send_to_server(BytesView payload, const std::string& label) {
  return record(uplink_, payload, label);
}

double SimChannel::send_to_client(BytesView payload, const std::string& label) {
  return record(downlink_, payload, label);
}

void SimChannel::reset() {
  uplink_ = {};
  downlink_ = {};
  by_label_.clear();
}

}  // namespace smatch
