#include "net/channel.hpp"

namespace smatch {

double SimChannel::record(DirectionStats& dir, BytesView payload, MessageKind kind) {
  ++dir.messages;
  dir.bytes += payload.size();
  const double secs = link_.transfer_seconds(payload.size());
  dir.sim_seconds += secs;
  by_kind_[static_cast<std::size_t>(kind)] += payload.size();
  return secs;
}

double SimChannel::send_to_server(BytesView payload, MessageKind kind) {
  return record(uplink_, payload, kind);
}

double SimChannel::send_to_client(BytesView payload, MessageKind kind) {
  return record(downlink_, payload, kind);
}

void SimChannel::reset() {
  uplink_ = {};
  downlink_ = {};
  by_kind_.fill(0);
}

}  // namespace smatch
