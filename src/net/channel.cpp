#include "net/channel.hpp"

#include <cmath>

namespace smatch {

double SimChannel::record(DirectionStats& dir, BytesView payload, MessageKind kind) {
  ++dir.messages;
  dir.bytes += payload.size();
  const double secs = link_.transfer_seconds(payload.size());
  dir.sim_seconds += secs;
  const auto k = static_cast<std::size_t>(kind);
  by_kind_[k] += payload.size();
  ++msgs_by_kind_[k];
  latency_by_kind_[k].record(static_cast<std::uint64_t>(std::llround(secs * 1e9)));
  return secs;
}

double SimChannel::send_to_server(BytesView payload, MessageKind kind) {
  return record(uplink_, payload, kind);
}

double SimChannel::send_to_client(BytesView payload, MessageKind kind) {
  return record(downlink_, payload, kind);
}

void SimChannel::reset() {
  uplink_ = {};
  downlink_ = {};
  by_kind_.fill(0);
  msgs_by_kind_.fill(0);
  for (auto& h : latency_by_kind_) h.reset();
}

}  // namespace smatch
