#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "net/fault.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace smatch {

namespace {

using Clock = std::chrono::steady_clock;

Status errno_status(const char* op) {
  const int err = errno;
  const StatusCode code = (err == ECONNRESET || err == ECONNREFUSED || err == EPIPE ||
                           err == ENOTCONN || err == EBADF)
                              ? StatusCode::kConnectionReset
                              : StatusCode::kMalformedMessage;
  return {code, std::string(op) + ": " + std::strerror(err)};
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return errno_status("fcntl");
  }
  return Status::ok();
}

/// Remaining budget in whole milliseconds, clamped for poll(2).
int remaining_ms(Clock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
  if (left.count() <= 0) return 0;
  return static_cast<int>(std::min<long long>(left.count(), 60'000));
}

/// Polls one fd for `events`; ok when ready, kTimeout at the deadline,
/// kConnectionReset on hangup/error.
Status poll_for(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    const int budget = remaining_ms(deadline);
    if (budget == 0) return {StatusCode::kTimeout, "transport deadline expired"};
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, budget);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return errno_status("poll");
    }
    if (rc == 0) continue;  // loop re-checks the deadline
    if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) {
      return {StatusCode::kConnectionReset, "socket error"};
    }
    // POLLHUP may still have readable data queued; let read() decide.
    return Status::ok();
  }
}

/// Writes the whole buffer, polling for writability between short writes.
Status write_all(int fd, BytesView data, Clock::time_point deadline) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (Status ready = poll_for(fd, POLLOUT, deadline); !ready.is_ok()) return ready;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return errno_status("send");
  }
  return Status::ok();
}

}  // namespace

StatusOr<std::unique_ptr<TcpTransport>> TcpTransport::connect(
    const std::string& host, std::uint16_t port, std::chrono::milliseconds timeout) {
  SMATCH_SPAN("net.connect");
  const auto deadline = Clock::now() + timeout;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status(StatusCode::kMalformedMessage, "unparseable host " + host);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  if (Status nb = set_nonblocking(fd); !nb.is_ok()) {
    ::close(fd);
    return nb;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 &&
      errno != EINPROGRESS) {
    Status s = errno_status("connect");
    ::close(fd);
    return s;
  }
  // Non-blocking connect completes when the socket turns writable; the
  // definitive verdict lives in SO_ERROR.
  if (Status ready = poll_for(fd, POLLOUT, deadline); !ready.is_ok()) {
    ::close(fd);
    return ready;
  }
  int so_error = 0;
  socklen_t len = sizeof so_error;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 || so_error != 0) {
    ::close(fd);
    return Status(StatusCode::kConnectionReset,
                  std::string("connect: ") + std::strerror(so_error));
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  obs::Registry::global()
      .counter("smatch_net_connects_total")
      ->fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<TcpTransport>(new TcpTransport(fd));
}

TcpTransport::TcpTransport(int fd) : fd_(fd) {}

TcpTransport::~TcpTransport() { (void)close(); }

Status TcpTransport::send(MessageKind kind, BytesView payload,
                          std::chrono::milliseconds timeout) {
  SMATCH_SPAN("net.send");
  if (fd_ < 0) return {StatusCode::kConnectionReset, "transport closed"};
  if (payload.size() > kMaxFramePayload) {
    return {StatusCode::kMalformedMessage, "payload exceeds frame limit"};
  }
  const auto deadline = Clock::now() + timeout;
  Bytes framed = encode_frame(kind, payload);
  note_sent(kind, payload.size());

  std::vector<Bytes> to_write;
  std::chrono::milliseconds delay{0};
  if (faults_ != nullptr) {
    to_write = faults_->on_send(std::move(framed), &delay);
  } else {
    to_write.push_back(std::move(framed));
  }
  if (delay.count() > 0) std::this_thread::sleep_for(delay);

  std::lock_guard lk(send_mu_);
  for (const Bytes& buf : to_write) {
    if (Status s = write_all(fd_, buf, deadline); !s.is_ok()) return s;
  }
  return Status::ok();
}

StatusOr<Frame> TcpTransport::recv(std::chrono::milliseconds timeout) {
  SMATCH_SPAN("net.recv");
  if (fd_ < 0) return Status(StatusCode::kConnectionReset, "transport closed");
  const auto deadline = Clock::now() + timeout;
  std::uint8_t chunk[16 * 1024];
  for (;;) {
    // Decode everything already buffered before touching the socket.
    for (;;) {
      StatusOr<std::optional<Frame>> frame = decoder_.next();
      if (!frame.is_ok()) {
        if (frame.code() == StatusCode::kMalformedMessage) {
          note_crc_drop();
          continue;  // CRC-failed frame skipped; stream is still in sync
        }
        return frame.status();  // unframeable: connection is unusable
      }
      if (frame->has_value()) {
        note_received((**frame).kind, (**frame).payload.size());
        return std::move(**frame);
      }
      break;
    }

    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      decoder_.feed(BytesView(chunk, static_cast<std::size_t>(n)));
      continue;
    }
    if (n == 0) return Status(StatusCode::kConnectionReset, "peer closed connection");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (Status ready = poll_for(fd_, POLLIN, deadline); !ready.is_ok()) return ready;
      continue;
    }
    if (errno == EINTR) continue;
    return errno_status("recv");
  }
}

StatusOr<Frame> TcpTransport::recv_some() {
  if (fd_ < 0) return Status(StatusCode::kConnectionReset, "transport closed");
  std::uint8_t chunk[16 * 1024];
  for (;;) {
    // Hand out anything the decoder already holds before reading more.
    for (;;) {
      StatusOr<std::optional<Frame>> frame = decoder_.next();
      if (!frame.is_ok()) {
        if (frame.code() == StatusCode::kMalformedMessage) {
          note_crc_drop();
          continue;  // CRC-failed frame skipped; stream is still in sync
        }
        return frame.status();  // unframeable: connection is unusable
      }
      if (frame->has_value()) {
        note_received((**frame).kind, (**frame).payload.size());
        return std::move(**frame);
      }
      break;
    }

    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      decoder_.feed(BytesView(chunk, static_cast<std::size_t>(n)));
      continue;
    }
    if (n == 0) return Status(StatusCode::kConnectionReset, "peer closed connection");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status(StatusCode::kWouldBlock, "no complete frame ready");
    }
    if (errno == EINTR) continue;
    return errno_status("recv");
  }
}

Status TcpTransport::send_some(MessageKind kind, BytesView payload) {
  SMATCH_SPAN("net.send");
  if (fd_ < 0) return {StatusCode::kConnectionReset, "transport closed"};
  if (payload.size() > kMaxFramePayload) {
    return {StatusCode::kMalformedMessage, "payload exceeds frame limit"};
  }
  Bytes framed = encode_frame(kind, payload);
  note_sent(kind, payload.size());

  std::vector<Bytes> to_write;
  std::chrono::milliseconds delay{0};
  if (faults_ != nullptr) {
    to_write = faults_->on_send(std::move(framed), &delay);
  } else {
    to_write.push_back(std::move(framed));
  }

  std::lock_guard lk(send_mu_);
  // A delay fault must not stall the event loop: instead of sleeping,
  // hold the staged bytes back until the deadline. In-order delivery
  // means later frames wait behind the held ones, like a slow link.
  if (delay.count() > 0) {
    hold_until_ = std::max(hold_until_, Clock::now() + delay);
  }
  for (const Bytes& buf : to_write) append(out_buf_, buf);
  return flush_locked();
}

Status TcpTransport::flush_some() {
  std::lock_guard lk(send_mu_);
  return flush_locked();
}

Status TcpTransport::flush_locked() {
  if (fd_ < 0) return {StatusCode::kConnectionReset, "transport closed"};
  if (out_pos_ == out_buf_.size()) {
    out_buf_.clear();
    out_pos_ = 0;
    return Status::ok();
  }
  if (Clock::now() < hold_until_) {
    return {StatusCode::kWouldBlock, "frames held by injected delay"};
  }
  while (out_pos_ < out_buf_.size()) {
    const ssize_t n = ::send(fd_, out_buf_.data() + out_pos_,
                             out_buf_.size() - out_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      out_pos_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Compact the consumed prefix so the buffer cannot grow unbounded
      // across partial flushes.
      if (out_pos_ > 4096) {
        out_buf_.erase(out_buf_.begin(),
                       out_buf_.begin() + static_cast<std::ptrdiff_t>(out_pos_));
        out_pos_ = 0;
      }
      return {StatusCode::kWouldBlock, "socket send buffer full"};
    }
    if (n < 0 && errno == EINTR) continue;
    return errno_status("send");
  }
  out_buf_.clear();
  out_pos_ = 0;
  return Status::ok();
}

std::size_t TcpTransport::pending_out_bytes() const {
  std::lock_guard lk(send_mu_);
  return out_buf_.size() - out_pos_;
}

Status TcpTransport::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
  return Status::ok();
}

StatusOr<TcpListener> TcpListener::bind(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, SOMAXCONN) < 0) {
    Status s = errno_status("bind/listen");
    ::close(fd);
    return s;
  }
  if (Status nb = set_nonblocking(fd); !nb.is_ok()) {
    ::close(fd);
    return nb;
  }
  // Recover the ephemeral port the kernel picked for port 0.
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    Status s = errno_status("getsockname");
    ::close(fd);
    return s;
  }
  return TcpListener(fd, ntohs(bound.sin_port));
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

TcpListener::~TcpListener() { close(); }

StatusOr<std::unique_ptr<TcpTransport>> TcpListener::accept(
    std::chrono::milliseconds timeout) {
  if (fd_ < 0) return Status(StatusCode::kConnectionReset, "listener closed");
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      if (Status nb = set_nonblocking(client); !nb.is_ok()) {
        ::close(client);
        return nb;
      }
      const int one = 1;
      (void)::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      obs::Registry::global()
          .counter("smatch_net_accepts_total")
          ->fetch_add(1, std::memory_order_relaxed);
      return std::unique_ptr<TcpTransport>(new TcpTransport(client));
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (Status ready = poll_for(fd_, POLLIN, deadline); !ready.is_ok()) return ready;
      continue;
    }
    if (errno == EINTR) continue;
    return errno_status("accept");
  }
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace smatch
