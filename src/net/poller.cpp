#include "net/poller.hpp"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define SMATCH_HAVE_EPOLL 1
#else
#define SMATCH_HAVE_EPOLL 0
#endif

namespace smatch {

namespace {

Status poller_errno(const char* op) {
  return {StatusCode::kMalformedMessage,
          std::string(op) + ": " + std::strerror(errno)};
}

#if SMATCH_HAVE_EPOLL
std::uint32_t epoll_mask(bool want_read, bool want_write) {
  std::uint32_t ev = 0;
  if (want_read) ev |= EPOLLIN;
  if (want_write) ev |= EPOLLOUT;
  return ev;  // level-triggered by default; EPOLLHUP/ERR always reported
}
#endif

short poll_mask(bool want_read, bool want_write) {
  short ev = 0;
  if (want_read) ev |= POLLIN;
  if (want_write) ev |= POLLOUT;
  return ev;
}

}  // namespace

Poller::Poller(bool force_poll_fallback) {
#if SMATCH_HAVE_EPOLL
  if (!force_poll_fallback) {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);  // -1 on failure → fallback
  }
#else
  (void)force_poll_fallback;
#endif
}

Poller::~Poller() {
  if (epfd_ >= 0) ::close(epfd_);
}

Status Poller::add(int fd, std::uint64_t key, bool want_read, bool want_write) {
#if SMATCH_HAVE_EPOLL
  if (epfd_ >= 0) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.u64 = key;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      return poller_errno("epoll_ctl(ADD)");
    }
    return Status::ok();
  }
#endif
  regs_.push_back({fd, key, poll_mask(want_read, want_write)});
  return Status::ok();
}

Status Poller::modify(int fd, std::uint64_t key, bool want_read, bool want_write) {
#if SMATCH_HAVE_EPOLL
  if (epfd_ >= 0) {
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.u64 = key;
    if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      return poller_errno("epoll_ctl(MOD)");
    }
    return Status::ok();
  }
#endif
  for (Reg& r : regs_) {
    if (r.fd == fd) {
      r.key = key;
      r.events = poll_mask(want_read, want_write);
      return Status::ok();
    }
  }
  return {StatusCode::kMalformedMessage, "modify of unregistered fd"};
}

void Poller::remove(int fd) {
#if SMATCH_HAVE_EPOLL
  if (epfd_ >= 0) {
    epoll_event ev{};  // ignored since Linux 2.6.9, required pre-2.6.9
    (void)::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
    return;
  }
#endif
  for (std::size_t i = 0; i < regs_.size(); ++i) {
    if (regs_[i].fd == fd) {
      regs_[i] = regs_.back();
      regs_.pop_back();
      return;
    }
  }
}

StatusOr<std::size_t> Poller::wait(std::vector<PollEvent>& out, int timeout_ms) {
  out.clear();
#if SMATCH_HAVE_EPOLL
  if (epfd_ >= 0) {
    epoll_event events[128];
    for (;;) {
      const int n = ::epoll_wait(epfd_, events, 128, timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        return poller_errno("epoll_wait");
      }
      out.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        PollEvent pe;
        pe.key = events[i].data.u64;
        pe.readable = (events[i].events & EPOLLIN) != 0;
        pe.writable = (events[i].events & EPOLLOUT) != 0;
        pe.hangup = (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
        out.push_back(pe);
      }
      return out.size();
    }
  }
#endif
  std::vector<pollfd> pfds;
  pfds.reserve(regs_.size());
  for (const Reg& r : regs_) pfds.push_back({r.fd, r.events, 0});
  for (;;) {
    const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return poller_errno("poll");
    }
    if (n == 0) return std::size_t{0};
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      const short re = pfds[i].revents;
      if (re == 0) continue;
      PollEvent pe;
      pe.key = regs_[i].key;
      pe.readable = (re & POLLIN) != 0;
      pe.writable = (re & POLLOUT) != 0;
      pe.hangup = (re & (POLLHUP | POLLERR | POLLNVAL)) != 0;
      out.push_back(pe);
    }
    return out.size();
  }
}

}  // namespace smatch
