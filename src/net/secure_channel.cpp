#include "net/secure_channel.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/serde.hpp"
#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"

namespace smatch {
namespace {

constexpr std::size_t kSeqLen = 8;
constexpr std::size_t kIvLen = Aes::kBlockSize;
constexpr std::size_t kTagLen = 32;

void split_key(Bytes traffic_key, Bytes& enc, Bytes& mac) {
  if (traffic_key.size() != 64) {
    throw CryptoError("secure channel: traffic key must be 64 bytes");
  }
  enc.assign(traffic_key.begin(), traffic_key.begin() + 32);
  mac.assign(traffic_key.begin() + 32, traffic_key.end());
}

}  // namespace

SecureSender::SecureSender(Bytes traffic_key) {
  split_key(std::move(traffic_key), enc_key_, mac_key_);
}

Bytes SecureSender::seal(BytesView plaintext, RandomSource& rng) {
  Writer w;
  w.u64(seq_++);
  const Bytes iv = rng.bytes(kIvLen);
  w.raw(iv);
  w.raw(aes_ctr(enc_key_, iv, plaintext));
  // Encrypt-then-MAC: the tag covers seq || IV || ciphertext.
  const Bytes tag = hmac_sha256(mac_key_, w.bytes());
  w.raw(tag);
  return w.take();
}

SecureReceiver::SecureReceiver(Bytes traffic_key) {
  split_key(std::move(traffic_key), enc_key_, mac_key_);
}

StatusOr<Bytes> SecureReceiver::open(BytesView record) {
  if (record.size() < kSeqLen + kIvLen + kTagLen) {
    return Status(StatusCode::kMalformedMessage, "secure channel: record too short");
  }
  const std::size_t body_len = record.size() - kTagLen;
  const BytesView body = record.subspan(0, body_len);
  const BytesView tag = record.subspan(body_len);

  // MAC first (Encrypt-then-MAC verifies before touching the ciphertext).
  if (!ct_equal(hmac_sha256(mac_key_, body), tag)) {
    return Status(StatusCode::kMalformedMessage,
                  "secure channel: MAC verification failed");
  }

  Reader r(body);
  const std::uint64_t seq = r.u64();
  if (seq != expected_seq_) {
    return Status(StatusCode::kStaleTimestamp,
                  "secure channel: replayed or out-of-order record");
  }
  ++expected_seq_;

  const Bytes iv = r.raw(kIvLen);
  const Bytes ciphertext = r.raw(r.remaining());
  return aes_ctr(enc_key_, iv, ciphertext);
}

SessionKeys make_session_keys(BytesView master_secret) {
  SessionKeys keys;
  keys.client_to_server =
      hkdf(master_secret, to_bytes("smatch-etm-salt"), to_bytes("c2s"), 64);
  keys.server_to_client =
      hkdf(master_secret, to_bytes("smatch-etm-salt"), to_bytes("s2c"), 64);
  return keys;
}

SecureTransport::SecureTransport(std::unique_ptr<Transport> inner, Bytes send_key,
                                 Bytes recv_key, RandomSource& rng)
    : inner_(std::move(inner)),
      sender_(std::move(send_key)),
      receiver_(std::move(recv_key)),
      rng_(rng) {}

std::unique_ptr<SecureTransport> SecureTransport::client_end(
    std::unique_ptr<Transport> inner, const SessionKeys& keys, RandomSource& rng) {
  return std::make_unique<SecureTransport>(std::move(inner), keys.client_to_server,
                                           keys.server_to_client, rng);
}

std::unique_ptr<SecureTransport> SecureTransport::server_end(
    std::unique_ptr<Transport> inner, const SessionKeys& keys, RandomSource& rng) {
  return std::make_unique<SecureTransport>(std::move(inner), keys.server_to_client,
                                           keys.client_to_server, rng);
}

Status SecureTransport::send(MessageKind kind, BytesView payload,
                             std::chrono::milliseconds timeout) {
  note_sent(kind, payload.size());
  return inner_->send(kind, sender_.seal(payload, rng_), timeout);
}

StatusOr<Frame> SecureTransport::recv(std::chrono::milliseconds timeout) {
  StatusOr<Frame> sealed = inner_->recv(timeout);
  if (!sealed.is_ok()) return sealed;
  StatusOr<Bytes> plaintext = receiver_.open(sealed->payload);
  if (!plaintext.is_ok()) return plaintext.status();
  note_received(sealed->kind, plaintext->size());
  return Frame{sealed->kind, std::move(*plaintext)};
}

StatusOr<Frame> SecureTransport::recv_some() {
  StatusOr<Frame> sealed = inner_->recv_some();
  if (!sealed.is_ok()) return sealed;  // kWouldBlock passes through untouched
  StatusOr<Bytes> plaintext = receiver_.open(sealed->payload);
  if (!plaintext.is_ok()) return plaintext.status();
  note_received(sealed->kind, plaintext->size());
  return Frame{sealed->kind, std::move(*plaintext)};
}

Status SecureTransport::send_some(MessageKind kind, BytesView payload) {
  note_sent(kind, payload.size());
  return inner_->send_some(kind, sender_.seal(payload, rng_));
}

Status SecureTransport::close() { return inner_->close(); }

}  // namespace smatch
