#include "store/maintenance.hpp"

#ifdef __linux__
#include <sys/resource.h>
#include <unistd.h>
#endif

#include <algorithm>

#include "obs/registry.hpp"
#include "store/store.hpp"

namespace smatch::store {

namespace {

std::uint64_t unix_ms_now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

MaintenanceScheduler::MaintenanceScheduler(ProfileStore& store,
                                           MaintenancePolicy policy)
    : store_(store), policy_(policy) {}

MaintenanceScheduler::~MaintenanceScheduler() { stop(); }

void MaintenanceScheduler::start() {
  std::lock_guard lk(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { run(); });
}

void MaintenanceScheduler::stop() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
    // Whether or not a thread ever ran, nothing will serve what's
    // still queued.
    for (std::promise<Status>& p : requests_) {
      p.set_value(Status(StatusCode::kConnectionReset,
                         "maintenance scheduler stopped"));
    }
    requests_.clear();
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard lk(mu_);
  started_ = false;
}

std::future<Status> MaintenanceScheduler::request_checkpoint() {
  std::future<Status> fut;
  {
    std::lock_guard lk(mu_);
    requests_.emplace_back();
    fut = requests_.back().get_future();
  }
  // On-demand start keeps background=false configurations working: the
  // thread exists only to serve explicit requests.
  start();
  cv_.notify_all();
  return fut;
}

void MaintenanceScheduler::pause() {
  std::lock_guard lk(mu_);
  paused_ = true;
}

void MaintenanceScheduler::resume() {
  {
    std::lock_guard lk(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

bool MaintenanceScheduler::paused() const {
  std::lock_guard lk(mu_);
  return paused_;
}

MaintenanceStats MaintenanceScheduler::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

void MaintenanceScheduler::run() {
#ifdef __linux__
  if (policy_.background_nice > 0) {
    // Dropping our own priority never needs privileges; best-effort — a
    // failure just means compaction competes at normal weight.
    ::setpriority(PRIO_PROCESS, static_cast<id_t>(::gettid()),
                  std::clamp(policy_.background_nice, 0, 19));
  }
#endif
  for (;;) {
    std::size_t batch = 0;  // requests this cycle will satisfy
    {
      std::unique_lock lk(mu_);
      cv_.wait_for(lk, policy_.poll_interval, [this] {
        return stop_ || (!paused_ && !requests_.empty());
      });
      if (stop_) return;
      if (paused_) continue;
      batch = requests_.size();
    }

    // Rotation pass: seal any active segment past its policy
    // thresholds, independently of whether a checkpoint runs. An abort
    // from the test hook surfaces at the next cycle's rotate_all.
    if (policy_.background) {
      for (std::size_t i = 0; i < store_.shards(); ++i) {
        if (store_.rotation_due(i)) {
          if (Status s = store_.rotate(i); !s.is_ok()) break;
        }
      }
    }

    bool run_cycle = batch > 0;
    if (!run_cycle && policy_.background) {
      std::chrono::steady_clock::time_point last;
      {
        std::lock_guard lk(mu_);
        last = last_cycle_;
      }
      if (std::chrono::steady_clock::now() - last >= policy_.min_interval &&
          store_.checkpoint_due()) {
        run_cycle = true;
      }
    }
    if (!run_cycle) continue;

    const auto begin = std::chrono::steady_clock::now();
    const Status s = store_.run_maintenance_cycle();
    const auto took = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - begin);

    std::lock_guard lk(mu_);
    last_cycle_ = std::chrono::steady_clock::now();
    stats_.last_cycle_ms = static_cast<std::uint64_t>(took.count());
    if (s.is_ok()) {
      ++stats_.cycles;
      stats_.last_checkpoint_unix_ms = unix_ms_now();
    } else {
      ++stats_.failed_cycles;
      obs::Registry::global()
          .counter("smatch_store_maintenance_failures_total")
          ->fetch_add(1);
    }
    // Only the requests that were queued before the cycle began are
    // covered by it; anything that arrived mid-cycle may hold records
    // appended after rotation and waits for the next one.
    batch = std::min(batch, requests_.size());
    for (std::size_t i = 0; i < batch; ++i) {
      requests_.front().set_value(s);
      requests_.pop_front();
    }
  }
}

}  // namespace smatch::store
