#include "store/store.hpp"

#include <filesystem>
#include <system_error>

#include "common/serde.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace smatch::store {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestName = "MANIFEST";

/// MANIFEST layout: file header (kind kManifest, shard field 0), then
/// wal_shards:u32, then crc:u32 over that 4-byte body.
Bytes encode_manifest(std::uint32_t wal_shards) {
  Writer w;
  w.raw(encode_file_header(FileKind::kManifest, 0));
  Writer body;
  body.u32(wal_shards);
  w.raw(body.bytes());
  w.u32(crc32(body.bytes()));
  return w.take();
}

StatusOr<std::uint32_t> parse_manifest(BytesView data) {
  if (Status s = check_file_header(data, FileKind::kManifest); !s.is_ok()) return s;
  try {
    Reader r(data.subspan(kFileHeaderBytes));
    const std::uint32_t shards = r.u32();
    const std::uint32_t claimed = r.u32();
    r.finish();
    Writer body;
    body.u32(shards);
    if (crc32(body.bytes()) != claimed || shards == 0) {
      return Status(StatusCode::kMalformedMessage, "manifest checksum mismatch");
    }
    return shards;
  } catch (const SerdeError& e) {
    return Status(StatusCode::kMalformedMessage,
                  std::string("manifest: ") + e.what());
  }
}

Status fs_error(const char* what, const fs::path& path, const std::error_code& ec) {
  return {StatusCode::kConnectionReset,
          std::string(what) + " " + path.string() + ": " + ec.message()};
}

}  // namespace

StatusOr<std::unique_ptr<ProfileStore>> ProfileStore::open(
    const StoreConfig& config, std::size_t default_shards) {
  SMATCH_SPAN("store.open");
  if (!config.enabled()) {
    return Status(StatusCode::kMalformedMessage,
                  "ProfileStore::open with an empty directory");
  }
  std::error_code ec;
  const fs::path root(config.directory);
  fs::create_directories(root, ec);
  if (ec) return fs_error("create_directories", root, ec);

  auto store = std::unique_ptr<ProfileStore>(new ProfileStore());
  store->config_ = config;

  // Shard count: MANIFEST > config.wal_shards > engine default.
  std::size_t shards = config.wal_shards != 0 ? config.wal_shards : default_shards;
  shards = shards == 0 ? 1 : shards;
  const fs::path manifest = root / kManifestName;
  if (fs::exists(manifest, ec)) {
    StatusOr<Bytes> data = read_file(manifest.string());
    if (!data.is_ok()) return data.status();
    StatusOr<std::uint32_t> parsed = parse_manifest(*data);
    if (!parsed.is_ok()) return parsed.status();
    shards = *parsed;
  } else {
    if (Status s = write_file_atomic(manifest.string(),
                                     encode_manifest(static_cast<std::uint32_t>(shards)));
        !s.is_ok()) {
      return s;
    }
  }

  // Page files are a volatile cache of evicted groups: recovery replays
  // every group from snapshot + WAL, so stale pages are just deleted.
  const fs::path pages = root / "pages";
  fs::remove_all(pages, ec);
  fs::create_directories(pages, ec);
  if (ec) return fs_error("create_directories", pages, ec);

  store->wals_.reserve(shards);
  store->snapshot_last_seq_.assign(shards, 0);
  for (std::size_t i = 0; i < shards; ++i) {
    const fs::path dir = root / ("shard-" + std::to_string(i));
    fs::create_directories(dir, ec);
    if (ec) return fs_error("create_directories", dir, ec);
    auto wal = std::make_unique<WalFile>();
    if (Status s = wal->open((dir / "wal.log").string(), static_cast<std::uint32_t>(i),
                             config.fsync, config.fsync_batch_bytes);
        !s.is_ok()) {
      return s;
    }
    store->wals_.push_back(std::move(wal));
  }
  return store;
}

Status ProfileStore::append(std::size_t shard, RecordType type, BytesView payload) {
  StatusOr<std::uint64_t> seq = wals_[shard]->append(type, payload);
  if (!seq.is_ok()) return seq.status();
  return Status::ok();
}

Status ProfileStore::sync() {
  for (auto& wal : wals_) {
    if (Status s = wal->sync(); !s.is_ok()) return s;
  }
  return Status::ok();
}

Status ProfileStore::replay(std::size_t shard,
                            const std::function<Status(const StoreRecord&)>& apply) {
  SMATCH_SPAN("store.replay");
  // Snapshot first: the last committed full state of this shard. The
  // snapshot file is published by atomic rename, so it is either absent
  // or complete; damage inside it is disk rot and surfaces as an error
  // rather than silent data loss.
  std::uint64_t snapshot_seq = 0;
  const std::string snap = snapshot_path(shard);
  std::error_code ec;
  if (fs::exists(snap, ec)) {
    StatusOr<Bytes> data = read_file(snap);
    if (!data.is_ok()) return data.status();
    if (Status s = check_file_header(*data, FileKind::kSnapshot); !s.is_ok()) return s;
    try {
      Reader r(BytesView(*data).subspan(kFileHeaderBytes, 8));
      snapshot_seq = r.u64();
    } catch (const SerdeError& e) {
      return {StatusCode::kMalformedMessage, std::string("snapshot: ") + e.what()};
    }
    RecordScanner scanner(BytesView(*data).subspan(kFileHeaderBytes + 8));
    while (std::optional<StoreRecord> record = scanner.next()) {
      if (Status s = apply(*record); !s.is_ok()) return s;
      replayed_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::global().counter("smatch_store_replay_records_total")->fetch_add(1);
    }
    if (scanner.end() != ScanEnd::kClean) {
      return {StatusCode::kMalformedMessage,
              "snapshot " + snap + " is damaged (offset " +
                  std::to_string(scanner.offset()) + ")"};
    }
  }

  // Then the WAL tail. Records the snapshot already folded in (a crash
  // between snapshot rename and WAL reset leaves them behind) are
  // skipped by sequence number — replaying them twice would be harmless
  // for uploads (last-writer-wins) but not for deletes, so dedup is
  // structural, not probabilistic.
  StatusOr<WalReplayStats> stats = wals_[shard]->replay(snapshot_seq, apply);
  if (!stats.is_ok()) return stats.status();
  replayed_.fetch_add(stats->records, std::memory_order_relaxed);
  replay_skipped_.fetch_add(stats->skipped, std::memory_order_relaxed);
  torn_tails_.fetch_add(stats->torn_tail, std::memory_order_relaxed);
  crc_stops_.fetch_add(stats->crc_stopped, std::memory_order_relaxed);
  snapshot_last_seq_[shard] = snapshot_seq;
  return Status::ok();
}

ProfileStore::Checkpoint::Checkpoint(ProfileStore& store)
    : store_(store), lock_(store.checkpoint_mu_) {
  pending_.resize(store.shards());
  last_seq_.resize(store.shards());
  for (std::size_t i = 0; i < store.shards(); ++i) {
    // Everything appended before the checkpoint began is covered by the
    // snapshot the engine is about to stream (the engine holds its locks,
    // so memory state == WAL state right now).
    last_seq_[i] = store.wals_[i]->next_seq() - 1;
    smatch::append(pending_[i], encode_file_header(FileKind::kSnapshot,
                                                   static_cast<std::uint32_t>(i)));
    Writer w;
    w.u64(last_seq_[i]);
    smatch::append(pending_[i], w.bytes());
  }
}

void ProfileStore::Checkpoint::add(std::size_t shard, RecordType type,
                                   BytesView payload) {
  smatch::append(pending_[shard], encode_record(type, /*seq=*/0, payload));
}

Status ProfileStore::Checkpoint::commit() {
  SMATCH_SPAN("store.checkpoint_commit");
  if (committed_) return {StatusCode::kMalformedMessage, "checkpoint committed twice"};
  committed_ = true;
  // Publish every shard's snapshot before resetting any WAL: a crash
  // between the two leaves committed snapshots plus WALs whose records
  // replay() will dedup by sequence number.
  for (std::size_t i = 0; i < store_.shards(); ++i) {
    if (Status s = write_file_atomic(store_.snapshot_path(i), pending_[i]);
        !s.is_ok()) {
      return s;
    }
  }
  for (std::size_t i = 0; i < store_.shards(); ++i) {
    if (Status s = store_.wals_[i]->reset(); !s.is_ok()) return s;
    store_.snapshot_last_seq_[i] = last_seq_[i];
  }
  store_.snapshots_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("smatch_store_snapshots_total")->fetch_add(1);
  return Status::ok();
}

std::unique_ptr<ProfileStore::Checkpoint> ProfileStore::begin_checkpoint() {
  // The Checkpoint holds checkpoint_mu_ until it is destroyed, so two
  // concurrent checkpoints serialize rather than interleave WAL resets.
  return std::unique_ptr<Checkpoint>(new Checkpoint(*this));
}

Status ProfileStore::write_page(BytesView key, BytesView payload) {
  Writer w;
  w.raw(encode_file_header(FileKind::kPage, 0));
  w.raw(encode_record(RecordType::kGroupPage, /*seq=*/0, payload));
  if (Status s = write_file_atomic(page_path(key), w.bytes()); !s.is_ok()) return s;
  pages_written_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("smatch_store_evictions_total")->fetch_add(1);
  // FNV-1a of the group key identifies which group paged out without
  // putting the key bytes themselves in the flight ring.
  std::uint64_t key_hash = 1469598103934665603ull;
  for (const std::uint8_t byte : key) {
    key_hash = (key_hash ^ byte) * 1099511628211ull;
  }
  SMATCH_FLIGHT(obs::FlightKind::kEviction, key_hash, payload.size());
  return Status::ok();
}

StatusOr<Bytes> ProfileStore::read_page(BytesView key) {
  obs::Histogram* hist = obs::Registry::global().histogram("smatch_store_page_in_ns");
  SMATCH_SPAN_HIST("store.page_in", hist);
  StatusOr<Bytes> data = read_file(page_path(key));
  if (!data.is_ok()) return data.status();
  if (Status s = check_file_header(*data, FileKind::kPage); !s.is_ok()) return s;
  RecordScanner scanner(BytesView(*data).subspan(kFileHeaderBytes));
  std::optional<StoreRecord> record = scanner.next();
  if (!record.has_value() || record->type != RecordType::kGroupPage ||
      scanner.end() != ScanEnd::kClean) {
    return Status(StatusCode::kMalformedMessage,
                  "page file " + page_path(key) + " is damaged");
  }
  pages_read_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("smatch_store_page_ins_total")->fetch_add(1);
  return std::move(record->payload);
}

void ProfileStore::drop_page(BytesView key) {
  std::error_code ec;
  fs::remove(page_path(key), ec);
}

StoreMetrics ProfileStore::metrics() const {
  StoreMetrics m;
  for (const auto& wal : wals_) {
    m.wal_appends += wal->next_seq() - 1;
    m.wal_bytes += wal->appended_bytes();
  }
  m.replayed_records = replayed_.load(std::memory_order_relaxed);
  m.replay_skipped = replay_skipped_.load(std::memory_order_relaxed);
  m.torn_tails = torn_tails_.load(std::memory_order_relaxed);
  m.crc_stops = crc_stops_.load(std::memory_order_relaxed);
  m.snapshots = snapshots_.load(std::memory_order_relaxed);
  m.pages_written = pages_written_.load(std::memory_order_relaxed);
  m.pages_read = pages_read_.load(std::memory_order_relaxed);
  return m;
}

std::string ProfileStore::shard_dir(std::size_t shard) const {
  return (fs::path(config_.directory) / ("shard-" + std::to_string(shard))).string();
}

std::string ProfileStore::snapshot_path(std::size_t shard) const {
  return (fs::path(shard_dir(shard)) / "snapshot.bin").string();
}

std::string ProfileStore::page_path(BytesView key) const {
  return (fs::path(config_.directory) / "pages" / (to_hex(key) + ".pg")).string();
}

}  // namespace smatch::store
