#include "store/store.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <system_error>

#include "common/serde.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace smatch::store {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestName = "MANIFEST";

Status fs_error(const char* what, const fs::path& path, const std::error_code& ec) {
  return {StatusCode::kConnectionReset,
          std::string(what) + " " + path.string() + ": " + ec.message()};
}

/// Parses `<segno>` out of a `wal-<shard>-<segno>` file name belonging
/// to `shard`; nullopt for anything else (snapshots, tmp files, other
/// shards' strays).
std::optional<std::uint32_t> parse_segment_name(const std::string& name,
                                                std::size_t shard) {
  const std::string prefix = "wal-" + std::to_string(shard) + "-";
  if (name.rfind(prefix, 0) != 0) return std::nullopt;
  const std::string tail = name.substr(prefix.size());
  if (tail.empty() ||
      tail.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  try {
    const unsigned long v = std::stoul(tail);
    if (v == 0 || v > 0xFFFFFFFFul) return std::nullopt;
    return static_cast<std::uint32_t>(v);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Validates a sealed segment at open time and reports the highest
/// sequence and payload bytes it frames. Sealed segments are immutable,
/// so any damage here is disk rot — loud, not tolerated.
struct SegmentScan {
  std::uint64_t max_seq = 0;
  std::uint64_t bytes = 0;
};

StatusOr<SegmentScan> scan_sealed_segment(const std::string& path,
                                          std::uint32_t shard) {
  StatusOr<Bytes> data = read_file(path);
  if (!data.is_ok()) return data.status();
  std::uint32_t file_shard = 0;
  if (Status s = check_file_header(*data, FileKind::kWal, &file_shard); !s.is_ok()) {
    return s;
  }
  if (file_shard != shard) {
    return Status(StatusCode::kMalformedMessage,
                  "sealed segment " + path + " names a different shard");
  }
  SegmentScan scan;
  scan.bytes = data->size() - kFileHeaderBytes;
  RecordScanner scanner(BytesView(*data).subspan(kFileHeaderBytes));
  while (std::optional<StoreRecord> record = scanner.next()) {
    if (record->seq > scan.max_seq) scan.max_seq = record->seq;
  }
  if (scanner.end() != ScanEnd::kClean) {
    return Status(StatusCode::kMalformedMessage,
                  "sealed segment " + path + " is damaged (offset " +
                      std::to_string(scanner.offset()) + ")");
  }
  return scan;
}

}  // namespace

StatusOr<std::unique_ptr<ProfileStore>> ProfileStore::open(
    const StoreOptions& options, std::size_t default_shards) {
  SMATCH_SPAN("store.open");
  if (!options.enabled()) {
    return Status(StatusCode::kMalformedMessage,
                  "ProfileStore::open with an empty directory");
  }
  std::error_code ec;
  const fs::path root(options.directory);
  fs::create_directories(root, ec);
  if (ec) return fs_error("create_directories", root, ec);

  auto store = std::unique_ptr<ProfileStore>(new ProfileStore());
  store->options_ = options;

  // Shard count: MANIFEST > options.wal_shards > engine default.
  std::size_t shards = options.wal_shards != 0 ? options.wal_shards : default_shards;
  shards = shards == 0 ? 1 : shards;
  const fs::path manifest_path = root / kManifestName;
  Manifest manifest;
  if (fs::exists(manifest_path, ec)) {
    StatusOr<Bytes> data = read_file(manifest_path.string());
    if (!data.is_ok()) return data.status();
    StatusOr<Manifest> parsed = parse_manifest(*data);
    if (!parsed.is_ok()) return parsed.status();
    manifest = std::move(*parsed);
    if (manifest.version == 1) {
      // v1 store: one unnumbered `wal.log` per shard. Rename each to
      // segment 1 of its chain, then publish the v2 manifest. Both
      // steps are idempotent, so a crash mid-migration just reruns it.
      for (std::size_t i = 0; i < manifest.shards.size(); ++i) {
        const fs::path old_wal = root / ("shard-" + std::to_string(i)) / "wal.log";
        if (!fs::exists(old_wal, ec)) continue;
        const fs::path new_wal =
            root / ("shard-" + std::to_string(i)) /
            ("wal-" + std::to_string(i) + "-1");
        fs::rename(old_wal, new_wal, ec);
        if (ec) return fs_error("rename", old_wal, ec);
      }
      manifest.version = kManifestVersion;
      if (Status s = write_file_atomic(manifest_path.string(),
                                       encode_manifest(manifest));
          !s.is_ok()) {
        return s;
      }
    }
  } else {
    manifest.shards.assign(shards, ManifestShard{});
    if (Status s = write_file_atomic(manifest_path.string(),
                                     encode_manifest(manifest));
        !s.is_ok()) {
      return s;
    }
  }
  shards = manifest.shards.size();
  store->manifest_ = manifest;

  // Page files are a volatile cache of evicted groups: recovery replays
  // every group from snapshot + segments, so stale pages are just deleted.
  const fs::path pages = root / "pages";
  fs::remove_all(pages, ec);
  fs::create_directories(pages, ec);
  if (ec) return fs_error("create_directories", pages, ec);

  store->logs_.reserve(shards);
  store->snapshot_last_seq_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    store->snapshot_last_seq_[i].store(0, std::memory_order_relaxed);
    const fs::path dir = root / ("shard-" + std::to_string(i));
    fs::create_directories(dir, ec);
    if (ec) return fs_error("create_directories", dir, ec);

    auto log = std::make_unique<ShardLog>();
    log->first_live = manifest.shards[i].first_live;
    log->active_segno = manifest.shards[i].active;

    // Segment inventory. A crash inside rotation or GC can leave
    // segments outside the manifest's [first_live, active] range —
    // above it (sealed but never published) or below (published dead
    // but not yet unlinked). Both are deleted here. A *missing* segment
    // inside the live range is the opposite: acknowledged data that is
    // gone, and recovery must not silently skip it.
    std::vector<std::uint32_t> present;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
      const std::optional<std::uint32_t> segno =
          parse_segment_name(entry.path().filename().string(), i);
      if (!segno.has_value()) continue;
      if (*segno < log->first_live || *segno > log->active_segno) {
        fs::remove(entry.path(), ec);
        continue;
      }
      present.push_back(*segno);
    }
    std::sort(present.begin(), present.end());

    std::uint64_t max_sealed_seq = 0;
    for (std::uint32_t segno = log->first_live; segno < log->active_segno;
         ++segno) {
      if (!std::binary_search(present.begin(), present.end(), segno)) {
        return Status(StatusCode::kMalformedMessage,
                      "store shard " + std::to_string(i) +
                          ": live segment " + std::to_string(segno) +
                          " is missing (manifest names [" +
                          std::to_string(log->first_live) + ", " +
                          std::to_string(log->active_segno) + "])");
      }
      StatusOr<SegmentScan> scan = scan_sealed_segment(
          store->segment_path(i, segno), static_cast<std::uint32_t>(i));
      if (!scan.is_ok()) return scan.status();
      if (scan->max_seq > max_sealed_seq) max_sealed_seq = scan->max_seq;
      SealedSegment sealed;
      sealed.segno = segno;
      sealed.max_seq = max_sealed_seq;  // running max covers empty files
      sealed.bytes = scan->bytes;
      log->sealed.push_back(sealed);
    }

    // Only the active segment may be created from nothing (fresh store
    // or fresh chain tip); it fast-forwards past its own content at
    // replay time.
    log->active = std::make_unique<WalFile>();
    if (Status s = log->active->open(
            store->segment_path(i, log->active_segno),
            static_cast<std::uint32_t>(i), options.durability.fsync,
            options.durability.fsync_batch_bytes, max_sealed_seq + 1);
        !s.is_ok()) {
      return s;
    }
    store->logs_.push_back(std::move(log));
  }

  store->maintenance_ = std::make_unique<MaintenanceScheduler>(
      *store, options.maintenance.policy);
  return store;
}

ProfileStore::~ProfileStore() {
  // The scheduler thread calls back into this object; join it before
  // any member is torn down.
  if (maintenance_ != nullptr) maintenance_->stop();
}

Status ProfileStore::append(std::size_t shard, RecordType type, BytesView payload) {
  ShardLog& log = *logs_[shard];
  std::shared_lock lk(log.mu);
  StatusOr<std::uint64_t> seq = log.active->append(type, payload);
  if (!seq.is_ok()) return seq.status();
  return Status::ok();
}

Status ProfileStore::sync() {
  for (auto& log : logs_) {
    std::shared_lock lk(log->mu);
    if (Status s = log->active->sync(); !s.is_ok()) return s;
  }
  return Status::ok();
}

Status ProfileStore::replay(std::size_t shard,
                            const std::function<Status(const StoreRecord&)>& apply) {
  SMATCH_SPAN("store.replay");
  ShardLog& log = *logs_[shard];
  // Snapshot first: the last committed full state of this shard. The
  // snapshot file is published by atomic rename, so it is either absent
  // or complete; damage inside it is disk rot and surfaces as an error
  // rather than silent data loss.
  std::uint64_t snapshot_seq = 0;
  const std::string snap = snapshot_path(shard);
  std::error_code ec;
  if (fs::exists(snap, ec)) {
    StatusOr<Bytes> data = read_file(snap);
    if (!data.is_ok()) return data.status();
    if (Status s = check_file_header(*data, FileKind::kSnapshot); !s.is_ok()) return s;
    try {
      Reader r(BytesView(*data).subspan(kFileHeaderBytes, 8));
      snapshot_seq = r.u64();
    } catch (const SerdeError& e) {
      return {StatusCode::kMalformedMessage, std::string("snapshot: ") + e.what()};
    }
    RecordScanner scanner(BytesView(*data).subspan(kFileHeaderBytes + 8));
    while (std::optional<StoreRecord> record = scanner.next()) {
      if (Status s = apply(*record); !s.is_ok()) return s;
      replayed_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::global().counter("smatch_store_replay_records_total")->fetch_add(1);
    }
    if (scanner.end() != ScanEnd::kClean) {
      return {StatusCode::kMalformedMessage,
              "snapshot " + snap + " is damaged (offset " +
                  std::to_string(scanner.offset()) + ")"};
    }
  }

  // Then the surviving segments, sealed ones first, in segment order.
  // Records the snapshot already folded in are skipped by sequence
  // number — replaying them twice would be harmless for uploads
  // (last-writer-wins) but not for deletes, so dedup is structural, not
  // probabilistic. Records *beyond* the snapshot's boundary re-apply on
  // top of it and converge the same way. Damage in a sealed segment
  // fails loudly; the active tail tolerates (and truncates) torn
  // writes, the state a kill -9 mid-append leaves behind.
  std::vector<SealedSegment> sealed;
  std::uint64_t max_sealed_seq = 0;
  {
    std::shared_lock lk(log.mu);
    sealed = log.sealed;
  }
  for (const SealedSegment& seg : sealed) {
    StatusOr<WalReplayStats> stats =
        replay_wal_file(segment_path(shard, seg.segno),
                        static_cast<std::uint32_t>(shard), snapshot_seq, apply);
    if (!stats.is_ok()) return stats.status();
    replayed_.fetch_add(stats->records, std::memory_order_relaxed);
    replay_skipped_.fetch_add(stats->skipped, std::memory_order_relaxed);
    if (stats->next_seq > 1 && stats->next_seq - 1 > max_sealed_seq) {
      max_sealed_seq = stats->next_seq - 1;
    }
  }

  // The apply callback takes engine shard locks, and the append path
  // nests those *outside* the store's log.mu — so the callback must run
  // with no store lock held or the two orders form a deadlock cycle.
  // Dropping the lock here is safe because replay finishes before
  // start_maintenance(): nothing can rotate the active segment out from
  // under us yet.
  WalFile* active = nullptr;
  {
    std::shared_lock lk(log.mu);
    active = log.active.get();
    active->fast_forward(max_sealed_seq + 1);
  }
  StatusOr<WalReplayStats> stats = active->replay(snapshot_seq, apply);
  if (!stats.is_ok()) return stats.status();
  replayed_.fetch_add(stats->records, std::memory_order_relaxed);
  replay_skipped_.fetch_add(stats->skipped, std::memory_order_relaxed);
  torn_tails_.fetch_add(stats->torn_tail, std::memory_order_relaxed);
  log.torn_tail_records.fetch_add(stats->torn_tail, std::memory_order_relaxed);
  crc_stops_.fetch_add(stats->crc_stopped, std::memory_order_relaxed);
  snapshot_last_seq_[shard].store(snapshot_seq, std::memory_order_relaxed);
  return Status::ok();
}

Status ProfileStore::hook_point(std::string_view point) {
  MaintenanceHook hook;
  {
    std::lock_guard lk(hooks_mu_);
    hook = hook_;
  }
  if (hook && !hook(point)) {
    return Status(StatusCode::kConnectionReset,
                  "maintenance aborted by hook at " + std::string(point));
  }
  return Status::ok();
}

Status ProfileStore::publish_manifest(std::size_t shard,
                                      std::uint32_t first_live,
                                      std::uint32_t active) {
  std::lock_guard lk(manifest_mu_);
  // Both fields only ever grow; the max() makes a GC publish racing a
  // rotation publish on the same shard safe in either order (neither
  // may regress `active` — a crash would then delete the real active
  // segment as an orphan).
  ManifestShard& entry = manifest_.shards[shard];
  entry.first_live = std::max(entry.first_live, first_live);
  entry.active = std::max(entry.active, active);
  return write_file_atomic(
      (fs::path(options_.directory) / kManifestName).string(),
      encode_manifest(manifest_));
}

Status ProfileStore::rotate(std::size_t shard) {
  SMATCH_SPAN("store.rotate");
  ShardLog& log = *logs_[shard];
  std::unique_lock lk(log.mu);
  if (log.active->record_count() == 0) return Status::ok();
  // Seal: everything in the active segment goes durable, then the file
  // is never written again.
  if (Status s = log.active->sync(); !s.is_ok()) return s;
  const std::uint32_t next_segno = log.active_segno + 1;
  auto fresh = std::make_unique<WalFile>();
  if (Status s = fresh->open(segment_path(shard, next_segno),
                             static_cast<std::uint32_t>(shard),
                             options_.durability.fsync,
                             options_.durability.fsync_batch_bytes,
                             log.active->next_seq());
      !s.is_ok()) {
    return s;
  }
  if (Status s = hook_point("rotate.sealed"); !s.is_ok()) return s;
  // Publish the new active segment in the MANIFEST *before* swapping
  // the in-memory pointer: once an append can land in the new segment,
  // every future replay must already know to read it. A crash before
  // this write leaves an orphan file above the manifest's active range,
  // deleted at next open.
  if (Status s = publish_manifest(shard, log.first_live, next_segno);
      !s.is_ok()) {
    return s;
  }
  SealedSegment sealed;
  sealed.segno = log.active_segno;
  sealed.max_seq = log.active->next_seq() - 1;
  sealed.bytes = log.active->size_bytes() - kFileHeaderBytes;
  log.sealed.push_back(sealed);
  log.active = std::move(fresh);
  log.active_segno = next_segno;
  rotations_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("smatch_store_rotations_total")->fetch_add(1);
  if (Status s = hook_point("rotate.manifest"); !s.is_ok()) return s;
  return Status::ok();
}

StatusOr<std::vector<std::uint64_t>> ProfileStore::rotate_all() {
  std::vector<std::uint64_t> boundary(shards(), 0);
  for (std::size_t i = 0; i < shards(); ++i) {
    if (Status s = rotate(i); !s.is_ok()) return s;
    ShardLog& log = *logs_[i];
    std::shared_lock lk(log.mu);
    boundary[i] = log.sealed.empty()
                      ? snapshot_last_seq_[i].load(std::memory_order_relaxed)
                      : log.sealed.back().max_seq;
  }
  return boundary;
}

ProfileStore::Checkpoint::Checkpoint(ProfileStore& store,
                                     std::vector<std::uint64_t> boundary)
    : store_(store), lock_(store.checkpoint_mu_), boundary_(std::move(boundary)) {
  pending_.resize(store.shards());
  for (std::size_t i = 0; i < store.shards(); ++i) {
    // The snapshot claims coverage up to the sealed-segment frontier
    // (boundary_), not up to the newest append: the source streams
    // engine state that may already include fresher records, but those
    // live in active segments that survive GC and re-apply at replay —
    // converging by per-user last-writer-wins. Claiming more would let
    // replay *skip* active records that a not-yet-swept engine shard
    // appended after an already-swept one was snapshotted.
    smatch::append(pending_[i], encode_file_header(FileKind::kSnapshot,
                                                   static_cast<std::uint32_t>(i)));
    Writer w;
    w.u64(boundary_[i]);
    smatch::append(pending_[i], w.bytes());
  }
}

void ProfileStore::Checkpoint::add(std::size_t shard, RecordType type,
                                   BytesView payload) {
  smatch::append(pending_[shard], encode_record(type, /*seq=*/0, payload));
}

Status ProfileStore::Checkpoint::commit() {
  SMATCH_SPAN("store.checkpoint_commit");
  if (committed_) return {StatusCode::kMalformedMessage, "checkpoint committed twice"};
  committed_ = true;
  // Publish every shard's snapshot before touching any segment: a crash
  // between the two leaves committed snapshots plus sealed segments
  // whose records replay() dedups by sequence number.
  for (std::size_t i = 0; i < store_.shards(); ++i) {
    if (Status s = write_file_atomic(store_.snapshot_path(i), pending_[i]);
        !s.is_ok()) {
      return s;
    }
  }
  if (Status s = store_.hook_point("checkpoint.after_snapshots"); !s.is_ok()) {
    return s;
  }

  // GC: drop every sealed segment the snapshot covers. Guard per
  // segment — never a segment whose highest sequence is beyond the
  // snapshot's boundary (one sealed by a rotation that raced this
  // checkpoint). MANIFEST first, unlink after: a crash in between
  // leaves orphans below first_live, deleted at next open; the reverse
  // order would leave the manifest naming deleted files.
  for (std::size_t i = 0; i < store_.shards(); ++i) {
    ShardLog& log = *store_.logs_[i];
    std::vector<std::uint32_t> doomed;
    std::uint64_t reclaimed = 0;
    std::uint32_t new_first_live = 0;
    std::uint32_t active_segno = 0;
    {
      std::unique_lock lk(log.mu);
      std::size_t keep = 0;
      while (keep < log.sealed.size() &&
             log.sealed[keep].max_seq <= boundary_[i]) {
        doomed.push_back(log.sealed[keep].segno);
        reclaimed += log.sealed[keep].bytes;
        ++keep;
      }
      if (keep == 0) continue;
      log.sealed.erase(log.sealed.begin(), log.sealed.begin() + keep);
      log.first_live = log.sealed.empty() ? log.active_segno
                                          : log.sealed.front().segno;
      new_first_live = log.first_live;
      active_segno = log.active_segno;
    }
    if (Status s = store_.publish_manifest(i, new_first_live, active_segno);
        !s.is_ok()) {
      return s;
    }
    if (Status s = store_.hook_point("gc.manifest"); !s.is_ok()) return s;
    for (const std::uint32_t segno : doomed) {
      std::error_code ec;
      fs::remove(store_.segment_path(i, segno), ec);
    }
    store_.segments_gced_.fetch_add(doomed.size(), std::memory_order_relaxed);
    store_.gc_bytes_reclaimed_.fetch_add(reclaimed, std::memory_order_relaxed);
    obs::Registry::global()
        .counter("smatch_store_segments_gced_total")
        ->fetch_add(doomed.size());
    obs::Registry::global()
        .counter("smatch_store_gc_bytes_reclaimed_total")
        ->fetch_add(reclaimed);
  }

  for (std::size_t i = 0; i < store_.shards(); ++i) {
    store_.snapshot_last_seq_[i].store(boundary_[i], std::memory_order_relaxed);
  }
  store_.snapshots_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("smatch_store_snapshots_total")->fetch_add(1);
  return Status::ok();
}

StatusOr<std::unique_ptr<ProfileStore::Checkpoint>> ProfileStore::begin_checkpoint() {
  // Rotation first: the boundary a snapshot may claim is the sealed
  // frontier, and sealing now means this checkpoint compacts everything
  // appended before it began. The Checkpoint holds checkpoint_mu_ until
  // it is destroyed, so two concurrent checkpoints serialize rather
  // than interleave GC.
  StatusOr<std::vector<std::uint64_t>> boundary = rotate_all();
  if (!boundary.is_ok()) return boundary.status();
  return std::unique_ptr<Checkpoint>(new Checkpoint(*this, std::move(*boundary)));
}

void ProfileStore::set_checkpoint_source(CheckpointSource source) {
  std::lock_guard lk(hooks_mu_);
  source_ = std::move(source);
}

void ProfileStore::set_maintenance_hook(MaintenanceHook hook) {
  std::lock_guard lk(hooks_mu_);
  hook_ = std::move(hook);
}

std::future<Status> ProfileStore::request_checkpoint() {
  return maintenance_->request_checkpoint();
}

void ProfileStore::start_maintenance() {
  if (options_.maintenance.policy.background) maintenance_->start();
}

Status ProfileStore::run_maintenance_cycle() {
  SMATCH_SPAN("store.maintenance_cycle");
  CheckpointSource source;
  {
    std::lock_guard lk(hooks_mu_);
    source = source_;
  }
  if (!source) {
    return Status(StatusCode::kMalformedMessage,
                  "maintenance cycle with no checkpoint source registered");
  }
  StatusOr<std::unique_ptr<Checkpoint>> cp = begin_checkpoint();
  if (!cp.is_ok()) return cp.status();
  if (Status s = source(**cp); !s.is_ok()) return s;
  if (Status s = (*cp)->commit(); !s.is_ok()) return s;
  maintenance_cycles_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global()
      .counter("smatch_store_maintenance_cycles_total")
      ->fetch_add(1);
  return Status::ok();
}

bool ProfileStore::rotation_due(std::size_t shard) const {
  const MaintenancePolicy& policy = options_.maintenance.policy;
  const ShardLog& log = *logs_[shard];
  std::shared_lock lk(log.mu);
  if (policy.rotate_segment_bytes != 0 &&
      log.active->size_bytes() - kFileHeaderBytes >= policy.rotate_segment_bytes) {
    return true;
  }
  if (policy.rotate_segment_records != 0 &&
      log.active->record_count() >= policy.rotate_segment_records) {
    return true;
  }
  return false;
}

bool ProfileStore::checkpoint_due() const {
  const MaintenancePolicy& policy = options_.maintenance.policy;
  std::size_t wal_bytes = 0;
  std::uint64_t uncovered = 0;
  for (std::size_t i = 0; i < logs_.size(); ++i) {
    const ShardLog& log = *logs_[i];
    std::shared_lock lk(log.mu);
    if (policy.checkpoint_sealed_segments != 0 &&
        log.sealed.size() >= policy.checkpoint_sealed_segments) {
      return true;
    }
    for (const SealedSegment& seg : log.sealed) wal_bytes += seg.bytes;
    wal_bytes += log.active->size_bytes() - kFileHeaderBytes;
    const std::uint64_t appended = log.active->next_seq() - 1;
    const std::uint64_t covered =
        snapshot_last_seq_[i].load(std::memory_order_relaxed);
    if (appended > covered) uncovered += appended - covered;
  }
  if (policy.checkpoint_wal_bytes != 0 && wal_bytes >= policy.checkpoint_wal_bytes) {
    return true;
  }
  if (policy.checkpoint_wal_records != 0 &&
      uncovered >= policy.checkpoint_wal_records) {
    return true;
  }
  return false;
}

std::string ProfileStore::render_maintenance_status() const {
  const MaintenanceStats stats = maintenance_->stats();
  std::size_t sealed = 0;
  for (const auto& log : logs_) {
    std::shared_lock lk(log->mu);
    sealed += log->sealed.size();
  }
  std::ostringstream out;
  out << "cycles: " << stats.cycles << " (failed " << stats.failed_cycles
      << ")\n";
  if (stats.last_checkpoint_unix_ms == 0) {
    out << "last checkpoint: never\n";
  } else {
    out << "last checkpoint: " << stats.last_checkpoint_unix_ms
        << " unix-ms (took " << stats.last_cycle_ms << " ms)\n";
  }
  out << "sealed segments: " << sealed << "\n";
  out << "rotations: " << rotations_.load(std::memory_order_relaxed) << "\n";
  out << "segments gced: " << segments_gced_.load(std::memory_order_relaxed)
      << " (" << gc_bytes_reclaimed_.load(std::memory_order_relaxed)
      << " bytes reclaimed)\n";
  return out.str();
}

Status ProfileStore::write_page(BytesView key, BytesView payload) {
  Writer w;
  w.raw(encode_file_header(FileKind::kPage, 0));
  w.raw(encode_record(RecordType::kGroupPage, /*seq=*/0, payload));
  if (Status s = write_file_atomic(page_path(key), w.bytes()); !s.is_ok()) return s;
  pages_written_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("smatch_store_evictions_total")->fetch_add(1);
  // FNV-1a of the group key identifies which group paged out without
  // putting the key bytes themselves in the flight ring.
  std::uint64_t key_hash = 1469598103934665603ull;
  for (const std::uint8_t byte : key) {
    key_hash = (key_hash ^ byte) * 1099511628211ull;
  }
  SMATCH_FLIGHT(obs::FlightKind::kEviction, key_hash, payload.size());
  return Status::ok();
}

StatusOr<Bytes> ProfileStore::read_page(BytesView key) {
  obs::Histogram* hist = obs::Registry::global().histogram("smatch_store_page_in_ns");
  SMATCH_SPAN_HIST("store.page_in", hist);
  StatusOr<Bytes> data = read_file(page_path(key));
  if (!data.is_ok()) return data.status();
  if (Status s = check_file_header(*data, FileKind::kPage); !s.is_ok()) return s;
  RecordScanner scanner(BytesView(*data).subspan(kFileHeaderBytes));
  std::optional<StoreRecord> record = scanner.next();
  if (!record.has_value() || record->type != RecordType::kGroupPage ||
      scanner.end() != ScanEnd::kClean) {
    return Status(StatusCode::kMalformedMessage,
                  "page file " + page_path(key) + " is damaged");
  }
  pages_read_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("smatch_store_page_ins_total")->fetch_add(1);
  return std::move(record->payload);
}

void ProfileStore::drop_page(BytesView key) {
  std::error_code ec;
  fs::remove(page_path(key), ec);
}

StoreMetrics ProfileStore::metrics() const {
  StoreMetrics m;
  m.torn_tail_records.reserve(logs_.size());
  for (const auto& log : logs_) {
    std::shared_lock lk(log->mu);
    m.wal_appends += log->active->next_seq() - 1;
    m.wal_bytes += log->active->appended_bytes();
    m.sealed_segments += log->sealed.size();
    m.torn_tail_records.push_back(
        log->torn_tail_records.load(std::memory_order_relaxed));
  }
  m.replayed_records = replayed_.load(std::memory_order_relaxed);
  m.replay_skipped = replay_skipped_.load(std::memory_order_relaxed);
  m.torn_tails = torn_tails_.load(std::memory_order_relaxed);
  m.crc_stops = crc_stops_.load(std::memory_order_relaxed);
  m.snapshots = snapshots_.load(std::memory_order_relaxed);
  m.pages_written = pages_written_.load(std::memory_order_relaxed);
  m.pages_read = pages_read_.load(std::memory_order_relaxed);
  m.rotations = rotations_.load(std::memory_order_relaxed);
  m.segments_gced = segments_gced_.load(std::memory_order_relaxed);
  m.gc_bytes_reclaimed = gc_bytes_reclaimed_.load(std::memory_order_relaxed);
  m.maintenance_cycles = maintenance_cycles_.load(std::memory_order_relaxed);
  return m;
}

std::string ProfileStore::shard_dir(std::size_t shard) const {
  return (fs::path(options_.directory) / ("shard-" + std::to_string(shard))).string();
}

std::string ProfileStore::segment_path(std::size_t shard, std::uint32_t segno) const {
  return (fs::path(shard_dir(shard)) /
          ("wal-" + std::to_string(shard) + "-" + std::to_string(segno)))
      .string();
}

std::string ProfileStore::snapshot_path(std::size_t shard) const {
  return (fs::path(shard_dir(shard)) / "snapshot.bin").string();
}

std::string ProfileStore::page_path(BytesView key) const {
  return (fs::path(options_.directory) / "pages" / (to_hex(key) + ".pg")).string();
}

}  // namespace smatch::store
