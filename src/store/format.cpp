#include "store/format.hpp"

#include "common/serde.hpp"

namespace smatch::store {

bool is_known_record_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(RecordType::kUpload) &&
         type <= static_cast<std::uint8_t>(RecordType::kGroupPage);
}

Bytes encode_file_header(FileKind kind, std::uint32_t shard) {
  Writer w;
  w.u16(kWireMagic);
  w.u8(kStoreVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(shard);
  return w.take();
}

Status check_file_header(BytesView data, FileKind kind, std::uint32_t* shard) {
  if (data.size() < kFileHeaderBytes) {
    return {StatusCode::kMalformedMessage, "store file shorter than its header"};
  }
  Reader r(data.subspan(0, kFileHeaderBytes));
  if (r.u16() != kWireMagic) {
    return {StatusCode::kMalformedMessage, "store file: bad magic"};
  }
  const std::uint8_t version = r.u8();
  if (version != kStoreVersion) {
    return {StatusCode::kUnsupportedVersion,
            "store file version " + std::to_string(version) + " (expected " +
                std::to_string(kStoreVersion) + ")"};
  }
  if (r.u8() != static_cast<std::uint8_t>(kind)) {
    return {StatusCode::kMalformedMessage, "store file: unexpected file kind"};
  }
  const std::uint32_t s = r.u32();
  if (shard != nullptr) *shard = s;
  return Status::ok();
}

Bytes encode_record(RecordType type, std::uint64_t seq, BytesView payload) {
  Writer w;
  // len counts type + seq + payload + crc.
  w.u32(static_cast<std::uint32_t>(payload.size() + kRecordOverheadBytes - 4));
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(seq);
  w.raw(payload);
  // CRC over type || seq || payload: everything the length prefix frames
  // except the checksum itself (same shape as the transport frame).
  w.u32(crc32(BytesView(w.bytes()).subspan(4, payload.size() + 9)));
  return w.take();
}

std::optional<StoreRecord> RecordScanner::next() {
  if (end_ != ScanEnd::kClean) return std::nullopt;
  const BytesView view = data_.subspan(pos_);
  if (view.empty()) return std::nullopt;
  if (view.size() < 4) {
    end_ = ScanEnd::kTornTail;
    return std::nullopt;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(view[0]) << 24 |
                            static_cast<std::uint32_t>(view[1]) << 16 |
                            static_cast<std::uint32_t>(view[2]) << 8 |
                            static_cast<std::uint32_t>(view[3]);
  if (len < kRecordOverheadBytes - 4 ||
      len > kMaxRecordPayload + kRecordOverheadBytes - 4) {
    end_ = ScanEnd::kBadRecord;
    return std::nullopt;
  }
  if (view.size() < 4 + static_cast<std::size_t>(len)) {
    end_ = ScanEnd::kTornTail;
    return std::nullopt;
  }
  const BytesView body = view.subspan(4, len - 4);  // type || seq || payload
  const BytesView crc_bytes = view.subspan(static_cast<std::size_t>(len), 4);
  const std::uint32_t claimed = static_cast<std::uint32_t>(crc_bytes[0]) << 24 |
                                static_cast<std::uint32_t>(crc_bytes[1]) << 16 |
                                static_cast<std::uint32_t>(crc_bytes[2]) << 8 |
                                static_cast<std::uint32_t>(crc_bytes[3]);
  if (crc32(body) != claimed) {
    end_ = ScanEnd::kCrcMismatch;
    return std::nullopt;
  }
  if (!is_known_record_type(body[0])) {
    end_ = ScanEnd::kBadRecord;
    return std::nullopt;
  }
  StoreRecord record;
  record.type = static_cast<RecordType>(body[0]);
  record.seq = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    record.seq = record.seq << 8 | body[1 + i];
  }
  record.payload.assign(body.begin() + 9, body.end());
  pos_ += 4 + static_cast<std::size_t>(len);
  return record;
}

}  // namespace smatch::store
