#include "store/format.hpp"

#include "common/serde.hpp"

namespace smatch::store {

bool is_known_record_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(RecordType::kUpload) &&
         type <= static_cast<std::uint8_t>(RecordType::kGroupPage);
}

Bytes encode_file_header(FileKind kind, std::uint32_t shard) {
  Writer w;
  w.u16(kWireMagic);
  w.u8(kStoreVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(shard);
  return w.take();
}

Status check_file_header(BytesView data, FileKind kind, std::uint32_t* shard) {
  if (data.size() < kFileHeaderBytes) {
    return {StatusCode::kMalformedMessage, "store file shorter than its header"};
  }
  Reader r(data.subspan(0, kFileHeaderBytes));
  if (r.u16() != kWireMagic) {
    return {StatusCode::kMalformedMessage, "store file: bad magic"};
  }
  const std::uint8_t version = r.u8();
  if (version != kStoreVersion) {
    return {StatusCode::kUnsupportedVersion,
            "store file version " + std::to_string(version) + " (expected " +
                std::to_string(kStoreVersion) + ")"};
  }
  if (r.u8() != static_cast<std::uint8_t>(kind)) {
    return {StatusCode::kMalformedMessage, "store file: unexpected file kind"};
  }
  const std::uint32_t s = r.u32();
  if (shard != nullptr) *shard = s;
  return Status::ok();
}

Bytes encode_record(RecordType type, std::uint64_t seq, BytesView payload) {
  Writer w;
  // len counts type + seq + payload + crc.
  w.u32(static_cast<std::uint32_t>(payload.size() + kRecordOverheadBytes - 4));
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(seq);
  w.raw(payload);
  // CRC over type || seq || payload: everything the length prefix frames
  // except the checksum itself (same shape as the transport frame).
  w.u32(crc32(BytesView(w.bytes()).subspan(4, payload.size() + 9)));
  return w.take();
}

Bytes encode_manifest(const Manifest& manifest) {
  Writer w;
  w.raw(encode_file_header(FileKind::kManifest, 0));
  Writer body;
  body.u32(kManifestVersion);
  body.u32(manifest.wal_shards());
  for (const ManifestShard& shard : manifest.shards) {
    body.u32(shard.first_live);
    body.u32(shard.active);
  }
  w.raw(body.bytes());
  w.u32(crc32(body.bytes()));
  return w.take();
}

StatusOr<Manifest> parse_manifest(BytesView data) {
  if (Status s = check_file_header(data, FileKind::kManifest); !s.is_ok()) return s;
  const BytesView rest = data.subspan(kFileHeaderBytes);
  try {
    if (rest.size() == 8) {
      // v1 body: wal_shards:u32 || crc. Exactly 8 bytes — a v2 body is
      // at least 20 (ver + count + one shard pair + crc), so length
      // alone disambiguates. One implicit segment per shard, named
      // wal.log on disk; ProfileStore::open migrates the naming.
      Reader r(rest);
      const std::uint32_t shards = r.u32();
      const std::uint32_t claimed = r.u32();
      Writer body;
      body.u32(shards);
      if (crc32(body.bytes()) != claimed || shards == 0) {
        return Status(StatusCode::kMalformedMessage, "manifest checksum mismatch");
      }
      Manifest m;
      m.version = 1;
      m.shards.assign(shards, ManifestShard{});
      return m;
    }
    if (rest.size() < 12) {
      return Status(StatusCode::kMalformedMessage, "manifest truncated");
    }
    const BytesView body = rest.subspan(0, rest.size() - 4);
    Reader crc_reader(rest.subspan(rest.size() - 4));
    if (crc32(body) != crc_reader.u32()) {
      return Status(StatusCode::kMalformedMessage, "manifest checksum mismatch");
    }
    Reader r(body);
    const std::uint32_t version = r.u32();
    if (version != kManifestVersion) {
      return Status(StatusCode::kUnsupportedVersion,
                    "manifest body version " + std::to_string(version) +
                        " (expected " + std::to_string(kManifestVersion) + ")");
    }
    const std::uint32_t shards = r.u32();
    if (shards == 0) {
      return Status(StatusCode::kMalformedMessage, "manifest names zero shards");
    }
    Manifest m;
    m.shards.reserve(shards);
    for (std::uint32_t i = 0; i < shards; ++i) {
      ManifestShard shard;
      shard.first_live = r.u32();
      shard.active = r.u32();
      if (shard.first_live == 0 || shard.active < shard.first_live) {
        return Status(StatusCode::kMalformedMessage,
                      "manifest shard " + std::to_string(i) +
                          " has an inverted segment range");
      }
      m.shards.push_back(shard);
    }
    r.finish();
    return m;
  } catch (const SerdeError& e) {
    return Status(StatusCode::kMalformedMessage,
                  std::string("manifest: ") + e.what());
  }
}

std::optional<StoreRecord> RecordScanner::next() {
  if (end_ != ScanEnd::kClean) return std::nullopt;
  const BytesView view = data_.subspan(pos_);
  if (view.empty()) return std::nullopt;
  if (view.size() < 4) {
    end_ = ScanEnd::kTornTail;
    return std::nullopt;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(view[0]) << 24 |
                            static_cast<std::uint32_t>(view[1]) << 16 |
                            static_cast<std::uint32_t>(view[2]) << 8 |
                            static_cast<std::uint32_t>(view[3]);
  if (len < kRecordOverheadBytes - 4 ||
      len > kMaxRecordPayload + kRecordOverheadBytes - 4) {
    end_ = ScanEnd::kBadRecord;
    return std::nullopt;
  }
  if (view.size() < 4 + static_cast<std::size_t>(len)) {
    end_ = ScanEnd::kTornTail;
    return std::nullopt;
  }
  const BytesView body = view.subspan(4, len - 4);  // type || seq || payload
  const BytesView crc_bytes = view.subspan(static_cast<std::size_t>(len), 4);
  const std::uint32_t claimed = static_cast<std::uint32_t>(crc_bytes[0]) << 24 |
                                static_cast<std::uint32_t>(crc_bytes[1]) << 16 |
                                static_cast<std::uint32_t>(crc_bytes[2]) << 8 |
                                static_cast<std::uint32_t>(crc_bytes[3]);
  if (crc32(body) != claimed) {
    end_ = ScanEnd::kCrcMismatch;
    return std::nullopt;
  }
  if (!is_known_record_type(body[0])) {
    end_ = ScanEnd::kBadRecord;
    return std::nullopt;
  }
  StoreRecord record;
  record.type = static_cast<RecordType>(body[0]);
  record.seq = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    record.seq = record.seq << 8 | body[1 + i];
  }
  record.payload.assign(body.begin() + 9, body.end());
  pos_ += 4 + static_cast<std::size_t>(len);
  return record;
}

}  // namespace smatch::store
