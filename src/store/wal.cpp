#include "store/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace smatch::store {

namespace {

// An fsync slower than this lands a kFsyncStall event in the flight
// recorder — the "why did p99 spike?" breadcrumb for a wedged disk.
constexpr std::uint64_t kFsyncStallNs = 50'000'000;  // 50ms

Status errno_status(const char* what, const std::string& path) {
  return {StatusCode::kConnectionReset,
          std::string(what) + " " + path + ": " + std::strerror(errno)};
}

Status fsync_fd(int fd, const std::string& path,
                [[maybe_unused]] std::uint32_t shard = 0) {
  SMATCH_SPAN("store.fsync");
  const auto start = std::chrono::steady_clock::now();
  if (::fsync(fd) != 0) return errno_status("fsync", path);
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  obs::Registry::global().counter("smatch_store_fsyncs_total")->fetch_add(1);
  obs::Registry::global()
      .histogram("smatch_store_fsync_ns")
      ->record(static_cast<std::uint64_t>(ns));
  if (static_cast<std::uint64_t>(ns) >= kFsyncStallNs) {
    SMATCH_FLIGHT(obs::FlightKind::kFsyncStall, shard,
                  static_cast<std::uint64_t>(ns));
  }
  return Status::ok();
}

Status fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return errno_status("open dir", dir);
  Status s = fsync_fd(fd, dir);
  ::close(fd);
  return s;
}

}  // namespace

WalFile::~WalFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalFile::open(const std::string& path, std::uint32_t shard,
                     FsyncPolicy policy, std::size_t batch_bytes,
                     std::uint64_t start_seq) {
  std::lock_guard lk(mu_);
  path_ = path;
  shard_ = shard;
  policy_ = policy;
  batch_bytes_ = batch_bytes == 0 ? 1 : batch_bytes;
  next_seq_ = start_seq == 0 ? 1 : start_seq;

  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) return errno_status("open", path);

  struct stat st{};
  if (::fstat(fd_, &st) != 0) return errno_status("fstat", path);
  size_bytes_ = static_cast<std::uint64_t>(st.st_size);
  if (st.st_size == 0) {
    const Bytes header = encode_file_header(FileKind::kWal, shard);
    if (Status s = write_all(header); !s.is_ok()) return s;
    size_bytes_ = header.size();
    if (Status s = fsync_now(); !s.is_ok()) return s;
    // Make the directory entry durable too: rotation publishes this
    // segment in the MANIFEST right after open(), and a crash must not
    // leave the manifest naming a file that never reached the platter.
    return fsync_parent_dir(path);
  }

  // Existing log: the header must match before anything is appended.
  Bytes head(kFileHeaderBytes, 0);
  const ssize_t n = ::pread(fd_, head.data(), head.size(), 0);
  if (n < 0) return errno_status("read", path);
  head.resize(static_cast<std::size_t>(n));
  std::uint32_t file_shard = 0;
  if (Status s = check_file_header(head, FileKind::kWal, &file_shard); !s.is_ok()) {
    return s;
  }
  if (file_shard != shard) {
    return {StatusCode::kMalformedMessage, "wal header names a different shard"};
  }
  return Status::ok();
}

StatusOr<std::uint64_t> WalFile::append(RecordType type, BytesView payload) {
  obs::Histogram* append_hist =
      obs::Registry::global().histogram("smatch_store_wal_append_ns");
  SMATCH_SPAN_HIST("store.wal_append", append_hist);
  std::lock_guard lk(mu_);
  if (fd_ < 0) return Status(StatusCode::kConnectionReset, "wal not open");
  const std::uint64_t seq = next_seq_;
  const Bytes record = encode_record(type, seq, payload);
  if (Status s = write_all(record); !s.is_ok()) return s;
  ++next_seq_;
  appended_bytes_ += record.size();
  size_bytes_ += record.size();
  ++record_count_;
  unsynced_ += record.size();
  obs::Registry::global().counter("smatch_store_wal_appends_total")->fetch_add(1);
  obs::Registry::global()
      .counter("smatch_store_wal_bytes_total")
      ->fetch_add(record.size());
  // Sampled breadcrumb: one flight event per 64 appends keeps the ring
  // from being all WAL traffic while still timestamping write activity.
  if ((seq & 63u) == 0) {
    SMATCH_FLIGHT(obs::FlightKind::kWalAppend, shard_, record.size());
  }
  if (policy_ == FsyncPolicy::kAlways ||
      (policy_ == FsyncPolicy::kBatch && unsynced_ >= batch_bytes_)) {
    if (Status s = fsync_now(); !s.is_ok()) return s;
  }
  return seq;
}

Status WalFile::sync() {
  std::lock_guard lk(mu_);
  if (fd_ < 0) return {StatusCode::kConnectionReset, "wal not open"};
  return fsync_now();
}

Status WalFile::reset() {
  std::lock_guard lk(mu_);
  if (fd_ < 0) return {StatusCode::kConnectionReset, "wal not open"};
  if (::ftruncate(fd_, 0) != 0) return errno_status("ftruncate", path_);
  const Bytes header = encode_file_header(FileKind::kWal, shard_);
  // O_APPEND keeps writing at the (now zero) end of file.
  if (Status s = write_all(header); !s.is_ok()) return s;
  unsynced_ = 0;
  size_bytes_ = header.size();
  record_count_ = 0;
  return fsync_now();
}

StatusOr<WalReplayStats> WalFile::replay(
    std::uint64_t after_seq, const std::function<Status(const StoreRecord&)>& apply) {
  // Snapshot the log bytes under mu_, but run the caller's apply callback
  // outside it: apply re-enters engine locks that are also held around
  // append() (engine lock -> wal lock), so calling back while holding mu_
  // would invert that order. Replay runs at attach time, before anything
  // serves, so nothing appends concurrently with the unlocked scan.
  Bytes data;
  {
    std::lock_guard lk(mu_);
    if (fd_ < 0) return Status(StatusCode::kConnectionReset, "wal not open");
    StatusOr<Bytes> r = read_file(path_);
    if (!r.is_ok()) return r.status();
    data = std::move(*r);
  }
  if (Status s = check_file_header(data, FileKind::kWal); !s.is_ok()) return s;

  WalReplayStats stats;
  std::uint64_t records_in_file = 0;
  std::uint64_t max_seq_end = 0;  // one past the highest seq seen in the log
  RecordScanner scanner(BytesView(data).subspan(kFileHeaderBytes));
  while (std::optional<StoreRecord> record = scanner.next()) {
    ++records_in_file;
    if (record->seq + 1 > max_seq_end) max_seq_end = record->seq + 1;
    if (record->seq <= after_seq) {
      ++stats.skipped;
      obs::Registry::global()
          .counter("smatch_store_replay_duplicates_skipped_total")
          ->fetch_add(1);
      continue;
    }
    if (Status s = apply(*record); !s.is_ok()) return s;
    ++stats.records;
    obs::Registry::global().counter("smatch_store_replay_records_total")->fetch_add(1);
  }
  switch (scanner.end()) {
    case ScanEnd::kClean:
      break;
    case ScanEnd::kTornTail:
      stats.torn_tail = 1;
      obs::Registry::global()
          .counter("smatch_store_torn_tail_total")
          ->fetch_add(1);
      break;
    case ScanEnd::kCrcMismatch:
    case ScanEnd::kBadRecord:
      stats.crc_stopped = 1;
      obs::Registry::global()
          .counter("smatch_store_crc_stop_records_total")
          ->fetch_add(1);
      break;
  }
  {
    std::lock_guard lk(mu_);
    if (scanner.end() != ScanEnd::kClean) {
      // Cut the damaged tail off: the fd is O_APPEND, so without this a
      // post-recovery append would land *behind* the torn record where no
      // future replay could ever reach it.
      const auto keep =
          static_cast<off_t>(kFileHeaderBytes + scanner.offset());
      if (::ftruncate(fd_, keep) != 0) return errno_status("ftruncate", path_);
      size_bytes_ = static_cast<std::uint64_t>(keep);
    }
    if (max_seq_end > next_seq_) next_seq_ = max_seq_end;
    record_count_ = records_in_file;
    stats.next_seq = next_seq_;
  }
  return stats;
}

std::uint64_t WalFile::next_seq() const {
  std::lock_guard lk(mu_);
  return next_seq_;
}

void WalFile::fast_forward(std::uint64_t next_seq) {
  std::lock_guard lk(mu_);
  if (next_seq > next_seq_) next_seq_ = next_seq;
}

std::uint64_t WalFile::appended_bytes() const {
  std::lock_guard lk(mu_);
  return appended_bytes_;
}

std::uint64_t WalFile::record_count() const {
  std::lock_guard lk(mu_);
  return record_count_;
}

std::uint64_t WalFile::size_bytes() const {
  std::lock_guard lk(mu_);
  return size_bytes_;
}

StatusOr<WalReplayStats> replay_wal_file(
    const std::string& path, std::uint32_t shard, std::uint64_t after_seq,
    const std::function<Status(const StoreRecord&)>& apply) {
  StatusOr<Bytes> data = read_file(path);
  if (!data.is_ok()) return data.status();
  std::uint32_t file_shard = 0;
  if (Status s = check_file_header(*data, FileKind::kWal, &file_shard); !s.is_ok()) {
    return s;
  }
  if (file_shard != shard) {
    return Status(StatusCode::kMalformedMessage,
                  "sealed segment " + path + " names a different shard");
  }
  WalReplayStats stats;
  RecordScanner scanner(BytesView(*data).subspan(kFileHeaderBytes));
  while (std::optional<StoreRecord> record = scanner.next()) {
    if (record->seq + 1 > stats.next_seq) stats.next_seq = record->seq + 1;
    if (record->seq <= after_seq) {
      ++stats.skipped;
      obs::Registry::global()
          .counter("smatch_store_replay_duplicates_skipped_total")
          ->fetch_add(1);
      continue;
    }
    if (Status s = apply(*record); !s.is_ok()) return s;
    ++stats.records;
    obs::Registry::global().counter("smatch_store_replay_records_total")->fetch_add(1);
  }
  if (scanner.end() != ScanEnd::kClean) {
    return Status(StatusCode::kMalformedMessage,
                  "sealed segment " + path + " is damaged (offset " +
                      std::to_string(scanner.offset()) + ")");
  }
  return stats;
}

Status WalFile::write_all(BytesView data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status("write", path_);
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Status WalFile::fsync_now() {
  if (Status s = fsync_fd(fd_, path_, shard_); !s.is_ok()) return s;
  unsynced_ = 0;
  return Status::ok();
}

StatusOr<Bytes> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return errno_status("open", path);
  Bytes out;
  Bytes chunk(1 << 16, 0);
  for (;;) {
    const ssize_t n = ::read(fd, chunk.data(), chunk.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status(StatusCode::kMalformedMessage,
                    "read " + path + ": " + std::strerror(errno));
    }
    if (n == 0) break;
    out.insert(out.end(), chunk.begin(), chunk.begin() + n);
  }
  ::close(fd);
  return out;
}

Status write_file_atomic(const std::string& path, BytesView data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return errno_status("open", tmp);
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return errno_status("write", tmp);
    }
    done += static_cast<std::size_t>(n);
  }
  if (Status s = fsync_fd(fd, tmp); !s.is_ok()) {
    ::close(fd);
    return s;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) return errno_status("rename", tmp);
  return fsync_parent_dir(path);
}

}  // namespace smatch::store
