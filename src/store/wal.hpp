// One WAL segment: an append-only log file of one shard.
//
// A WalFile owns a POSIX fd opened for append. Records are framed by
// store/format.hpp; the file starts with the 8-byte kWal header. Appends
// are serialized by an internal mutex and assign monotonically increasing
// per-shard sequence numbers; durability follows the configured fsync
// policy (kAlways = fsync every append, kBatch = fsync once the unsynced
// byte count crosses a threshold, kNever = leave it to the OS). replay()
// scans the whole file, stopping — never failing — at a torn tail or a
// checksum mismatch, which is exactly the state a kill -9 mid-append
// leaves behind; the damaged tail is then truncated away so later
// appends extend a clean log instead of hiding behind the damage.
//
// A shard's log is a numbered sequence of segments (wal-<shard>-<segno>,
// see store/store.hpp): every segment below the active one is sealed —
// immutable, fully fsynced, replayed read-only via replay_wal_file() —
// and only the active segment is held open as a WalFile. Sequence
// numbers run monotonically across the whole segment chain (open() takes
// the first sequence the new segment will stamp), which is what lets
// replay dedup against a snapshot no matter how segments were compacted.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/status.hpp"
#include "store/format.hpp"

namespace smatch::store {

/// When appended records reach the disk platter.
enum class FsyncPolicy : std::uint8_t {
  kNever = 0,  // write() only; the OS flushes when it likes
  kBatch,      // fsync once >= fsync_batch_bytes are unsynced
  kAlways,     // fsync every append (strongest, slowest)
};

/// What one replay() pass saw.
struct WalReplayStats {
  std::uint64_t records = 0;      // records handed to the callback
  std::uint64_t skipped = 0;      // seq <= threshold (already snapshotted)
  std::uint64_t torn_tail = 0;    // 1 when the scan ended on a torn tail
  std::uint64_t crc_stopped = 0;  // 1 when the scan ended on a bad CRC
  std::uint64_t next_seq = 1;     // first unused sequence number
};

class WalFile {
 public:
  WalFile() = default;
  ~WalFile();

  WalFile(const WalFile&) = delete;
  WalFile& operator=(const WalFile&) = delete;

  /// Opens (creating if absent) the segment at `path` for shard `shard`.
  /// An existing file must carry a valid kWal header for this shard.
  /// `start_seq` is the first sequence number an append will stamp — 1
  /// for a shard's first segment, the predecessor's next_seq() for a
  /// segment created by rotation. replay() fast-forwards past whatever
  /// an existing file already holds.
  [[nodiscard]] Status open(const std::string& path, std::uint32_t shard,
                            FsyncPolicy policy, std::size_t batch_bytes,
                            std::uint64_t start_seq = 1);

  /// Appends one record and applies the fsync policy. Returns the
  /// sequence number the record was stamped with.
  [[nodiscard]] StatusOr<std::uint64_t> append(RecordType type, BytesView payload);

  /// Forces an fsync of everything appended so far.
  [[nodiscard]] Status sync();

  /// Truncates the log back to a bare header (after a committed
  /// snapshot). The sequence counter keeps counting — sequence numbers
  /// are never reused, which is what lets replay dedup against a
  /// snapshot's last-included sequence.
  [[nodiscard]] Status reset();

  /// Replays the on-disk log: every whole, checksummed record with
  /// seq > `after_seq` is handed to `apply` in file order. Stops cleanly
  /// at a torn tail / CRC mismatch / unknown type and reports which in
  /// the stats; the damaged tail is truncated off the file so subsequent
  /// appends (O_APPEND lands at end-of-file) extend the surviving prefix
  /// instead of landing unreachable behind the damage. `apply` returning
  /// an error aborts the replay with it. Also fast-forwards the in-memory
  /// sequence counter past everything seen, so post-replay appends extend
  /// the history.
  [[nodiscard]] StatusOr<WalReplayStats> replay(
      std::uint64_t after_seq, const std::function<Status(const StoreRecord&)>& apply);

  /// Next sequence number an append would use.
  [[nodiscard]] std::uint64_t next_seq() const;

  /// Raises the sequence counter to at least `next_seq` (no-op when it is
  /// already past). Used after replaying sealed predecessor segments so
  /// an empty reopened active segment continues the chain, not restarts it.
  void fast_forward(std::uint64_t next_seq);

  /// Bytes appended since open (header excluded).
  [[nodiscard]] std::uint64_t appended_bytes() const;

  /// Records currently framed in this file (existing content counted by
  /// replay(); appends and damage truncation keep it current).
  [[nodiscard]] std::uint64_t record_count() const;

  /// Current file size, header included (fstat at open, then tracked).
  [[nodiscard]] std::uint64_t size_bytes() const;

 private:
  [[nodiscard]] Status write_all(BytesView data);
  [[nodiscard]] Status fsync_now();

  mutable std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  std::uint32_t shard_ = 0;
  FsyncPolicy policy_ = FsyncPolicy::kBatch;
  std::size_t batch_bytes_ = 64 * 1024;
  std::size_t unsynced_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t appended_bytes_ = 0;
  std::uint64_t record_count_ = 0;
  std::uint64_t size_bytes_ = 0;
};

/// Read-only replay of a sealed WAL segment (no fd kept, no truncation).
/// Sealed segments are immutable once the MANIFEST stops naming them
/// active, so unlike the active tail any damage — torn record, CRC
/// mismatch, unknown type — is disk rot and fails loudly with
/// kMalformedMessage instead of being shrugged off as a crash artifact.
/// stats.next_seq reports one past the highest sequence seen.
[[nodiscard]] StatusOr<WalReplayStats> replay_wal_file(
    const std::string& path, std::uint32_t shard, std::uint64_t after_seq,
    const std::function<Status(const StoreRecord&)>& apply);

/// Reads a whole file into memory. kConnectionReset when it cannot be
/// opened, kMalformedMessage on a read error.
[[nodiscard]] StatusOr<Bytes> read_file(const std::string& path);

/// Writes `data` to `path.tmp`, fsyncs it, atomically renames it over
/// `path`, and fsyncs the containing directory — the crash-safe
/// publication step snapshots and page files share.
[[nodiscard]] Status write_file_atomic(const std::string& path, BytesView data);

}  // namespace smatch::store
