// One shard's append-only write-ahead log.
//
// A WalFile owns a POSIX fd opened for append. Records are framed by
// store/format.hpp; the file starts with the 8-byte kWal header. Appends
// are serialized by an internal mutex and assign monotonically increasing
// per-shard sequence numbers; durability follows the configured fsync
// policy (kAlways = fsync every append, kBatch = fsync once the unsynced
// byte count crosses a threshold, kNever = leave it to the OS). replay()
// scans the whole file, stopping — never failing — at a torn tail or a
// checksum mismatch, which is exactly the state a kill -9 mid-append
// leaves behind.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/status.hpp"
#include "store/format.hpp"

namespace smatch::store {

/// When appended records reach the disk platter.
enum class FsyncPolicy : std::uint8_t {
  kNever = 0,  // write() only; the OS flushes when it likes
  kBatch,      // fsync once >= fsync_batch_bytes are unsynced
  kAlways,     // fsync every append (strongest, slowest)
};

/// What one replay() pass saw.
struct WalReplayStats {
  std::uint64_t records = 0;      // records handed to the callback
  std::uint64_t skipped = 0;      // seq <= threshold (already snapshotted)
  std::uint64_t torn_tail = 0;    // 1 when the scan ended on a torn tail
  std::uint64_t crc_stopped = 0;  // 1 when the scan ended on a bad CRC
  std::uint64_t next_seq = 1;     // first unused sequence number
};

class WalFile {
 public:
  WalFile() = default;
  ~WalFile();

  WalFile(const WalFile&) = delete;
  WalFile& operator=(const WalFile&) = delete;

  /// Opens (creating if absent) the log at `path` for shard `shard`.
  /// An existing file must carry a valid kWal header for this shard.
  [[nodiscard]] Status open(const std::string& path, std::uint32_t shard,
                            FsyncPolicy policy, std::size_t batch_bytes);

  /// Appends one record and applies the fsync policy. Returns the
  /// sequence number the record was stamped with.
  [[nodiscard]] StatusOr<std::uint64_t> append(RecordType type, BytesView payload);

  /// Forces an fsync of everything appended so far.
  [[nodiscard]] Status sync();

  /// Truncates the log back to a bare header (after a committed
  /// snapshot). The sequence counter keeps counting — sequence numbers
  /// are never reused, which is what lets replay dedup against a
  /// snapshot's last-included sequence.
  [[nodiscard]] Status reset();

  /// Replays the on-disk log: every whole, checksummed record with
  /// seq > `after_seq` is handed to `apply` in file order. Stops cleanly
  /// at a torn tail / CRC mismatch / unknown type and reports which in
  /// the stats. `apply` returning an error aborts the replay with it.
  /// Also fast-forwards the in-memory sequence counter past everything
  /// seen, so post-replay appends extend the history.
  [[nodiscard]] StatusOr<WalReplayStats> replay(
      std::uint64_t after_seq, const std::function<Status(const StoreRecord&)>& apply);

  /// Next sequence number an append would use.
  [[nodiscard]] std::uint64_t next_seq() const;

  /// Bytes appended since open (header excluded).
  [[nodiscard]] std::uint64_t appended_bytes() const;

 private:
  [[nodiscard]] Status write_all(BytesView data);
  [[nodiscard]] Status fsync_now();

  mutable std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  std::uint32_t shard_ = 0;
  FsyncPolicy policy_ = FsyncPolicy::kBatch;
  std::size_t batch_bytes_ = 64 * 1024;
  std::size_t unsynced_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t appended_bytes_ = 0;
};

/// Reads a whole file into memory. kConnectionReset when it cannot be
/// opened, kMalformedMessage on a read error.
[[nodiscard]] StatusOr<Bytes> read_file(const std::string& path);

/// Writes `data` to `path.tmp`, fsyncs it, atomically renames it over
/// `path`, and fsyncs the containing directory — the crash-safe
/// publication step snapshots and page files share.
[[nodiscard]] Status write_file_atomic(const std::string& path, BytesView data);

}  // namespace smatch::store
