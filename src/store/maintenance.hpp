// The background maintenance plane of the durable store: when to seal
// the active WAL segment, when to compact sealed segments into a
// snapshot, and the scheduler thread that does both off the write path.
//
// A MaintenancePolicy is pure data — thresholds and intervals — owned by
// StoreOptions::Maintenance. The MaintenanceScheduler is owned by the
// ProfileStore it maintains and runs one cycle at a time:
//
//   rotation  ->  staggered per-shard checkpoint  ->  sealed-segment GC
//
// Rotation seals each shard's active segment (a brief per-shard
// exclusive lock; appends to other shards continue) so the checkpoint
// that follows compacts only immutable files while new writes land in
// the fresh active segment — there is no global quiesce anywhere in the
// cycle. The checkpoint itself streams through the engine-registered
// checkpoint source (ProfileStore::set_checkpoint_source), which the
// match engine implements as a staggered sweep: one directory shard at a
// time, so ingest stalls for at most 1/D of the population per step.
// docs/PERSISTENCE.md §Segments documents the on-disk lifecycle.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>

#include "common/status.hpp"

namespace smatch::store {

class ProfileStore;

/// When the maintenance plane acts. All byte/record thresholds are per
/// the unit named; a zero disables that individual trigger. An explicit
/// request_checkpoint() always runs a cycle regardless of triggers.
struct MaintenancePolicy {
  /// Start the scheduler thread when the engine attaches the store.
  /// false = no background work; request_checkpoint() still works (it
  /// starts the thread on demand and runs exactly one cycle per call).
  bool background = false;

  /// Seal a shard's active segment once it holds this many payload
  /// bytes (record framing included, file header excluded).
  std::size_t rotate_segment_bytes = 4 * 1024 * 1024;
  /// ... or this many records. 0 = bytes only.
  std::uint64_t rotate_segment_records = 0;

  /// Run a checkpoint cycle once any shard carries this many sealed
  /// segments. 0 disables the trigger.
  std::size_t checkpoint_sealed_segments = 4;
  /// ... or once the store-wide live WAL bytes (sealed + active,
  /// headers excluded) cross this. 0 disables.
  std::size_t checkpoint_wal_bytes = 0;
  /// ... or once this many records sit in the WALs beyond the last
  /// snapshot. 0 disables.
  std::uint64_t checkpoint_wal_records = 0;

  /// Floor between two background cycles (explicit requests ignore it).
  std::chrono::milliseconds min_interval{2000};
  /// How often the scheduler re-evaluates the triggers.
  std::chrono::milliseconds poll_interval{50};

  /// CPU niceness of the scheduler thread (0..19, Linux only; 0 = run at
  /// normal priority). Compaction is throughput work with no deadline,
  /// so it cedes the core to foreground traffic — on small hosts a cycle
  /// stretches out instead of inflating ingest tail latency (the
  /// checkpoint_under_load tier of bench/store_throughput measures
  /// exactly this).
  int background_nice = 10;

  /// Checkpoint sources should snapshot one engine shard at a time in a
  /// rotating order (bounded pause) instead of quiescing everything.
  /// The match engine honors this; the key server's budget table is
  /// small enough that it always quiesces.
  bool staggered = true;
};

/// Point-in-time counters of one scheduler (all cycles, background and
/// requested). Rendered into /statusz by render_maintenance_status().
struct MaintenanceStats {
  std::uint64_t cycles = 0;          ///< completed maintenance cycles
  std::uint64_t failed_cycles = 0;   ///< cycles that returned an error
  std::uint64_t last_cycle_ms = 0;   ///< wall time of the last cycle
  std::uint64_t last_checkpoint_unix_ms = 0;  ///< 0 = never checkpointed
};

/// The background thread that owns the rotate -> checkpoint -> GC cycle.
/// Owned by ProfileStore; tests reach it via ProfileStore::maintenance()
/// for pause()/resume() and deterministic single-cycle driving.
class MaintenanceScheduler {
 public:
  MaintenanceScheduler(ProfileStore& store, MaintenancePolicy policy);
  ~MaintenanceScheduler();

  MaintenanceScheduler(const MaintenanceScheduler&) = delete;
  MaintenanceScheduler& operator=(const MaintenanceScheduler&) = delete;

  /// Starts the thread (idempotent). Background triggers only fire when
  /// the policy says so; an explicit request always runs.
  void start();
  /// Stops and joins the thread. Pending requests fail kConnectionReset.
  void stop();

  /// Enqueues one maintenance cycle and returns its completion future.
  /// Starts the thread on demand, so it works with background=false too.
  [[nodiscard]] std::future<Status> request_checkpoint();

  /// Holds the scheduler between cycles (the running cycle finishes).
  /// Explicit requests queue up and run on resume().
  void pause();
  void resume();
  [[nodiscard]] bool paused() const;

  [[nodiscard]] const MaintenancePolicy& policy() const { return policy_; }
  [[nodiscard]] MaintenanceStats stats() const;

 private:
  void run();

  ProfileStore& store_;
  const MaintenancePolicy policy_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::promise<Status>> requests_;
  bool stop_ = false;
  bool paused_ = false;
  bool started_ = false;
  MaintenanceStats stats_;
  std::chrono::steady_clock::time_point last_cycle_{};
  std::thread thread_;
};

}  // namespace smatch::store
