// On-disk record formats of the durable profile store.
//
// Every store file — WAL segments, snapshots, page files, the manifest —
// opens with one 8-byte file header and then carries CRC-framed records
// that deliberately mirror the transport frame of net/transport.hpp:
//
//   file_header := magic:u16 = 0x534D ("SM") || store_version:u8
//                  || file_kind:u8 || shard:u32
//   record      := len:u32 || type:u8 || seq:u64 || payload[len-17]
//                  || crc:u32
//
// `len` is big-endian and counts everything after itself (type, seq,
// payload, crc). `crc` is the shared CRC-32 (common/wire.hpp) over
// type || seq || payload. `seq` is the per-shard append sequence number;
// snapshot and page records carry seq = 0 and the snapshot header records
// the last WAL sequence it folded in, which is how replay skips WAL
// records that a crash left behind after a committed snapshot.
//
// Record payloads are protocol wire bytes (core/messages.hpp encodings,
// versioned "SM" header included), never engine-internal structures: the
// disk carries exactly the structure the wire already leaks, nothing
// more. docs/PERSISTENCE.md is the normative spec with worked hex
// examples; tests/golden_vectors_test.cpp pins the bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/wire.hpp"

namespace smatch::store {

/// Current on-disk format version (file header layout v1).
inline constexpr std::uint8_t kStoreVersion = 1;

/// Serialized size of the file header (magic + version + kind + shard).
inline constexpr std::size_t kFileHeaderBytes = 8;

/// Serialized overhead a record adds around its payload
/// (len:u32 + type:u8 + seq:u64 + crc:u32).
inline constexpr std::size_t kRecordOverheadBytes = 17;

/// Largest record payload a file may claim; a corrupted length prefix
/// beyond this is treated as tail damage, not an allocation request.
inline constexpr std::size_t kMaxRecordPayload = 1u << 26;  // 64 MiB

/// What a store file holds. The byte is human-greppable in a hex dump.
enum class FileKind : std::uint8_t {
  kWal = 0x57,       // 'W' — append-only write-ahead log
  kSnapshot = 0x53,  // 'S' — atomically renamed full-state snapshot
  kPage = 0x50,      // 'P' — one evicted ciphertext group
  kManifest = 0x4D,  // 'M' — store-wide shard layout
};

/// What one record means to the engine replaying it. Payloads are opaque
/// to the store layer; the engines encode/decode them.
enum class RecordType : std::uint8_t {
  kUpload = 1,     // payload = UploadMessage wire bytes
  kDelete = 2,     // payload = wire header || user_id:u32
  kBudget = 3,     // payload = wire header || client_id:u32 || used:u32
  kEpoch = 4,      // payload empty: per-shard OPRF budget reset barrier
  kGroupPage = 5,  // payload = group-page body (see docs/PERSISTENCE.md)
};

[[nodiscard]] bool is_known_record_type(std::uint8_t type);

/// One decoded store record.
struct StoreRecord {
  RecordType type = RecordType::kUpload;
  std::uint64_t seq = 0;
  Bytes payload;
};

/// Encodes the 8-byte file header.
[[nodiscard]] Bytes encode_file_header(FileKind kind, std::uint32_t shard);

/// Validates a file header: kMalformedMessage on bad magic / wrong kind /
/// short buffer, kUnsupportedVersion on an unknown store version.
[[nodiscard]] Status check_file_header(BytesView data, FileKind kind,
                                       std::uint32_t* shard = nullptr);

/// Encodes one CRC-framed record.
[[nodiscard]] Bytes encode_record(RecordType type, std::uint64_t seq,
                                  BytesView payload);

/// MANIFEST body version. The file header version stays kStoreVersion —
/// the MANIFEST body carries its own version so the layout can evolve
/// without breaking every other store file. v1 (PR 7) held only the
/// shard count (each shard's whole log was one `wal.log`); v2 adds the
/// live segment range per shard. A v1 body is recognized by its exact
/// length (8 bytes — any v2 body is >= 20) and migrated on open.
inline constexpr std::uint32_t kManifestVersion = 2;

/// One shard's live WAL segment range: segments numbered
/// [first_live, active] exist on disk; `active` is the one held open for
/// appends, everything below it is sealed. Segments below first_live
/// were garbage-collected after a checkpoint folded them in.
struct ManifestShard {
  std::uint32_t first_live = 1;
  std::uint32_t active = 1;
};

/// The store-wide layout the MANIFEST pins: shard count and each
/// shard's live segment range. Written via write_file_atomic, so
/// readers see the old or the new layout, never a torn one.
struct Manifest {
  std::uint32_t version = kManifestVersion;
  std::vector<ManifestShard> shards;

  [[nodiscard]] std::uint32_t wal_shards() const {
    return static_cast<std::uint32_t>(shards.size());
  }
};

/// Encodes a v2 MANIFEST file (header || ver || wal_shards ||
/// per-shard(first_live || active) || crc32(body)).
[[nodiscard]] Bytes encode_manifest(const Manifest& manifest);

/// Parses a MANIFEST file, accepting v1 and v2 bodies. A v1 body comes
/// back with version = 1 and every shard at {first_live = 1, active = 1}
/// so the caller can migrate the on-disk file naming.
[[nodiscard]] StatusOr<Manifest> parse_manifest(BytesView data);

/// How a record scan ended. The distinction matters to recovery: a torn
/// tail (crash mid-append) is expected and replay simply stops there; a
/// CRC mismatch is also treated as tail damage but counted separately so
/// operators can tell bit rot from an interrupted write.
enum class ScanEnd : std::uint8_t {
  kClean = 0,     // buffer ended exactly on a record boundary
  kTornTail,      // trailing bytes too short for the claimed record
  kCrcMismatch,   // a complete record failed its checksum
  kBadRecord,     // unknown type byte or an unframeable length
};

/// Incremental record scanner over one file's bytes (header already
/// consumed). next() returns the next whole valid record, or nullopt once
/// the scan ended — after which `end()` says how and `offset()` where.
class RecordScanner {
 public:
  explicit RecordScanner(BytesView data) : data_(data) {}

  [[nodiscard]] std::optional<StoreRecord> next();

  [[nodiscard]] ScanEnd end() const { return end_; }
  /// Byte offset (into the scanned view) of the first unconsumed byte.
  [[nodiscard]] std::size_t offset() const { return pos_; }

 private:
  BytesView data_;
  std::size_t pos_ = 0;
  ScanEnd end_ = ScanEnd::kClean;
};

}  // namespace smatch::store
