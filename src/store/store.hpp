// The durable layer under the sharded engines: per-shard write-ahead
// logs, atomically renamed snapshots, and page files for evicted
// ciphertext groups — the txdb/dbwrapper split applied to S-MATCH: the
// engines (core/server.hpp, core/key_server.hpp) stay the source of
// truth in memory and talk to this narrow, payload-opaque interface;
// nothing here parses a profile.
//
// Directory layout (`StoreConfig::directory`):
//
//   MANIFEST              store version + WAL shard count
//   shard-<i>/
//     wal.log             append-only redo log (store/wal.hpp)
//     snapshot.bin        last committed full state of this shard
//   pages/
//     <hex(key)>.pg       one evicted ciphertext group (volatile cache)
//
// Protocol: the engine appends a record *before* mutating memory (WAL =
// redo log), periodically streams its full state through a Checkpoint
// (tmp + fsync + rename + WAL reset), and on startup replays
// snapshot.bin followed by the WAL tail, skipping records whose sequence
// the snapshot already folded in. Page files are a cache, not a source
// of truth: recovery deletes them (replay rebuilds every group) and the
// engine re-evicts under its memory budget.
//
// Records are sharded by *user id* (shard_of), not by key index: one
// user's re-uploads land in one log in order, which — together with the
// engine's total-order group sort — is what makes recovered kNN answers
// byte-identical. docs/PERSISTENCE.md is the format spec; the
// smatch_store_* registry metrics are documented there too.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "store/format.hpp"
#include "store/wal.hpp"

namespace smatch::store {

/// Everything the durable layer needs to know. `directory` empty means
/// persistence stays off — the engines behave exactly as before.
struct StoreConfig {
  /// Root directory of the store (created if absent). Empty = disabled.
  std::string directory;
  /// When WAL appends reach the disk.
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// Unsynced-byte threshold for FsyncPolicy::kBatch.
  std::size_t fsync_batch_bytes = 64 * 1024;
  /// WAL shard count; 0 adopts the engine's shard count on first open.
  /// An existing store's MANIFEST always wins over this field.
  std::size_t wal_shards = 0;
  /// Resident-ciphertext budget for the match engine; 0 = no eviction.
  /// Groups beyond it page out to `pages/` and fault back on query.
  std::size_t memory_budget_bytes = 0;

  [[nodiscard]] bool enabled() const { return !directory.empty(); }
};

/// Point-in-time counters of one ProfileStore instance (the global
/// smatch_store_* registry metrics aggregate across instances).
struct StoreMetrics {
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t replayed_records = 0;
  std::uint64_t replay_skipped = 0;   // seq-deduped after a partial snapshot
  std::uint64_t torn_tails = 0;       // shards whose WAL ended mid-record
  std::uint64_t crc_stops = 0;        // shards whose WAL ended on a bad CRC
  std::uint64_t snapshots = 0;        // committed checkpoints
  std::uint64_t pages_written = 0;    // group evictions
  std::uint64_t pages_read = 0;       // group fault-ins
};

class ProfileStore {
 public:
  /// Opens (creating if needed) the store rooted at config.directory.
  /// A fresh directory adopts `default_shards` (or config.wal_shards when
  /// set) and writes the MANIFEST; an existing one validates the manifest
  /// and adopts its shard count. Stale page files are removed — recovery
  /// replays every group back into memory.
  [[nodiscard]] static StatusOr<std::unique_ptr<ProfileStore>> open(
      const StoreConfig& config, std::size_t default_shards);

  ProfileStore(const ProfileStore&) = delete;
  ProfileStore& operator=(const ProfileStore&) = delete;

  [[nodiscard]] std::size_t shards() const { return wals_.size(); }
  /// The WAL shard a user's records always land in (`user` is the
  /// 32-bit UserId of core/types.hpp; the store stays below core).
  [[nodiscard]] std::size_t shard_of(std::uint32_t user) const {
    return user % wals_.size();
  }
  [[nodiscard]] const StoreConfig& config() const { return config_; }

  /// Appends one redo record to `shard`'s WAL (fsync per policy).
  [[nodiscard]] Status append(std::size_t shard, RecordType type, BytesView payload);

  /// Forces an fsync of every shard's WAL.
  [[nodiscard]] Status sync();

  /// Replays `shard`: snapshot records first (in snapshot order), then
  /// the WAL tail with seq <= snapshot-last-seq records skipped. Stops
  /// cleanly at WAL tail damage. `apply` errors abort with that status.
  [[nodiscard]] Status replay(std::size_t shard,
                              const std::function<Status(const StoreRecord&)>& apply);

  /// Streams one consistent full state into per-shard snapshot files.
  /// The engine quiesces itself (holds its locks), add()s every live
  /// record, then commit()s: tmp files are fsynced, renamed over
  /// snapshot.bin, and each WAL is reset. Abandoning the object without
  /// commit() leaves the store untouched.
  class Checkpoint {
   public:
    ~Checkpoint() = default;
    Checkpoint(const Checkpoint&) = delete;
    Checkpoint& operator=(const Checkpoint&) = delete;

    /// Adds one record to `shard`'s pending snapshot (seq = 0).
    void add(std::size_t shard, RecordType type, BytesView payload);
    /// Publishes every shard's snapshot atomically, then resets the WALs.
    [[nodiscard]] Status commit();

   private:
    friend class ProfileStore;
    explicit Checkpoint(ProfileStore& store);
    ProfileStore& store_;
    std::unique_lock<std::mutex> lock_;   // one checkpoint at a time
    std::vector<Bytes> pending_;          // per-shard record bytes
    std::vector<std::uint64_t> last_seq_; // per-shard WAL seq at start
    bool committed_ = false;
  };

  [[nodiscard]] std::unique_ptr<Checkpoint> begin_checkpoint();

  /// Writes (atomically) the page file for an evicted group.
  [[nodiscard]] Status write_page(BytesView key, BytesView payload);
  /// Reads a page file back; kConnectionReset when absent,
  /// kMalformedMessage when damaged.
  [[nodiscard]] StatusOr<Bytes> read_page(BytesView key);
  /// Removes a group's page file (no-op when absent).
  void drop_page(BytesView key);

  [[nodiscard]] StoreMetrics metrics() const;

 private:
  ProfileStore() = default;

  [[nodiscard]] std::string shard_dir(std::size_t shard) const;
  [[nodiscard]] std::string snapshot_path(std::size_t shard) const;
  [[nodiscard]] std::string page_path(BytesView key) const;

  StoreConfig config_;
  std::vector<std::unique_ptr<WalFile>> wals_;
  std::vector<std::uint64_t> snapshot_last_seq_;  // per shard, set at open

  std::mutex checkpoint_mu_;  // one checkpoint at a time

  std::atomic<std::uint64_t> replayed_{0};
  std::atomic<std::uint64_t> replay_skipped_{0};
  std::atomic<std::uint64_t> torn_tails_{0};
  std::atomic<std::uint64_t> crc_stops_{0};
  std::atomic<std::uint64_t> snapshots_{0};
  std::atomic<std::uint64_t> pages_written_{0};
  std::atomic<std::uint64_t> pages_read_{0};
};

}  // namespace smatch::store
