// The durable layer under the sharded engines: per-shard segmented
// write-ahead logs, atomically renamed snapshots, and page files for
// evicted ciphertext groups — the txdb/dbwrapper split applied to
// S-MATCH: the engines (core/server.hpp, core/key_server.hpp) stay the
// source of truth in memory and talk to this narrow, payload-opaque
// interface; nothing here parses a profile.
//
// Directory layout (`StoreOptions::directory`):
//
//   MANIFEST              store layout: shard count + per-shard live
//                         segment range (format.hpp, body v2)
//   shard-<i>/
//     wal-<i>-<segno>     one log segment; the highest segno is the
//                         *active* segment (open for appends), every
//                         lower one is *sealed* (immutable, fsynced)
//     snapshot.bin        last committed full state of this shard
//   pages/
//     <hex(key)>.pg       one evicted ciphertext group (volatile cache)
//
// Protocol: the engine appends a record *before* mutating memory (WAL =
// redo log). The maintenance plane (store/maintenance.hpp) periodically
// *rotates* each shard — seals the active segment and opens a fresh one
// — then streams a full snapshot through a Checkpoint and garbage-
// collects the sealed segments the snapshot covered. Only rotation
// takes a (brief, per-shard) exclusive lock; the snapshot itself runs
// against immutable files while new writes land in the fresh active
// segment — there is no global quiesce. On startup, replay = snapshot,
// then every surviving segment in order, seq-deduped against the
// snapshot's last-included sequence; a torn active tail is tolerated
// (and truncated) exactly as a single-file WAL's was, while damage in a
// sealed segment is disk rot and fails loudly.
//
// Records are sharded by *user id* (shard_of), not by key index: one
// user's re-uploads land in one log in order, which — together with the
// engine's total-order group sort — is what makes recovered kNN answers
// byte-identical. docs/PERSISTENCE.md is the format spec; the
// smatch_store_* registry metrics are documented there too.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "store/format.hpp"
#include "store/maintenance.hpp"
#include "store/wal.hpp"

namespace smatch::store {

/// Everything the durable layer needs to know, grouped by concern.
/// `directory` empty means persistence stays off — the engines behave
/// exactly as before.
struct StoreOptions {
  /// Root directory of the store (created if absent). Empty = disabled.
  std::string directory;
  /// WAL shard count; 0 adopts the engine's shard count on first open.
  /// An existing store's MANIFEST always wins over this field.
  std::size_t wal_shards = 0;

  /// When appended records reach the disk.
  struct Durability {
    FsyncPolicy fsync = FsyncPolicy::kBatch;
    /// Unsynced-byte threshold for FsyncPolicy::kBatch.
    std::size_t fsync_batch_bytes = 64 * 1024;
  } durability;

  /// When segments rotate and checkpoints run (store/maintenance.hpp).
  struct Maintenance {
    MaintenancePolicy policy;
  } maintenance;

  /// What stays resident in engine memory.
  struct Residency {
    /// Resident-ciphertext budget for the match engine; 0 = no
    /// eviction. Groups beyond it page out to `pages/` and fault back
    /// on query.
    std::size_t memory_budget_bytes = 0;
  } residency;

  [[nodiscard]] bool enabled() const { return !directory.empty(); }
};

/// DEPRECATED — one-PR migration shim for the flat pre-maintenance
/// config (same pattern as the PR 6 NetServer shim removed in PR 7).
/// New code composes a StoreOptions; this alias disappears next PR.
struct StoreConfig {
  std::string directory;
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  std::size_t fsync_batch_bytes = 64 * 1024;
  std::size_t wal_shards = 0;
  std::size_t memory_budget_bytes = 0;

  [[nodiscard]] bool enabled() const { return !directory.empty(); }

  [[nodiscard]] StoreOptions to_options() const {
    StoreOptions o;
    o.directory = directory;
    o.wal_shards = wal_shards;
    o.durability.fsync = fsync;
    o.durability.fsync_batch_bytes = fsync_batch_bytes;
    o.residency.memory_budget_bytes = memory_budget_bytes;
    return o;
  }
};

/// Point-in-time counters of one ProfileStore instance (the global
/// smatch_store_* registry metrics aggregate across instances).
struct StoreMetrics {
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t replayed_records = 0;
  std::uint64_t replay_skipped = 0;   // seq-deduped after a partial snapshot
  std::uint64_t torn_tails = 0;       // shards whose WAL ended mid-record
  std::uint64_t crc_stops = 0;        // shards whose WAL ended on a bad CRC
  std::uint64_t snapshots = 0;        // committed checkpoints
  std::uint64_t pages_written = 0;    // group evictions
  std::uint64_t pages_read = 0;       // group fault-ins
  std::uint64_t rotations = 0;        // active segments sealed
  std::uint64_t sealed_segments = 0;  // sealed segments currently live
  std::uint64_t segments_gced = 0;    // sealed segments deleted after GC
  std::uint64_t gc_bytes_reclaimed = 0;
  std::uint64_t maintenance_cycles = 0;
  /// Torn-tail recoveries per WAL shard (exported in aggregate as the
  /// smatch_store_torn_tail_total registry counter).
  std::vector<std::uint64_t> torn_tail_records;
};

class ProfileStore {
 public:
  /// Opens (creating if needed) the store rooted at options.directory.
  /// A fresh directory adopts `default_shards` (or options.wal_shards
  /// when set) and writes a v2 MANIFEST; an existing one validates the
  /// manifest, adopts its layout, and migrates a v1 (single `wal.log`
  /// per shard) store in place. Orphan segments a crash left outside
  /// the manifest's live range are deleted; a *missing* live segment is
  /// data loss and fails loudly. Stale page files are removed —
  /// recovery replays every group back into memory.
  [[nodiscard]] static StatusOr<std::unique_ptr<ProfileStore>> open(
      const StoreOptions& options, std::size_t default_shards);

  /// DEPRECATED — accepts the flat StoreConfig shim; forwards to the
  /// StoreOptions overload. Removed next PR.
  [[nodiscard]] static StatusOr<std::unique_ptr<ProfileStore>> open(
      const StoreConfig& config, std::size_t default_shards) {
    return open(config.to_options(), default_shards);
  }

  ~ProfileStore();

  ProfileStore(const ProfileStore&) = delete;
  ProfileStore& operator=(const ProfileStore&) = delete;

  [[nodiscard]] std::size_t shards() const { return logs_.size(); }
  /// The WAL shard a user's records always land in (`user` is the
  /// 32-bit UserId of core/types.hpp; the store stays below core).
  [[nodiscard]] std::size_t shard_of(std::uint32_t user) const {
    return user % logs_.size();
  }
  [[nodiscard]] const StoreOptions& options() const { return options_; }

  /// Appends one redo record to `shard`'s active segment (fsync per
  /// policy). Concurrent with everything except that shard's rotation.
  [[nodiscard]] Status append(std::size_t shard, RecordType type, BytesView payload);

  /// Forces an fsync of every shard's active segment.
  [[nodiscard]] Status sync();

  /// Replays `shard`: snapshot records first (in snapshot order), then
  /// every live segment in segment order with seq <= snapshot-last-seq
  /// records skipped. Damage in a sealed segment is a hard error; the
  /// active tail tolerates (and truncates) torn-write damage. `apply`
  /// errors abort with that status.
  [[nodiscard]] Status replay(std::size_t shard,
                              const std::function<Status(const StoreRecord&)>& apply);

  /// Seals `shard`'s active segment and opens a fresh one (no-op when
  /// the active segment holds no records). The only store operation
  /// that blocks that shard's appends, and only for the file create +
  /// MANIFEST rewrite. The maintenance plane calls this on policy
  /// triggers; tests call it directly for determinism.
  [[nodiscard]] Status rotate(std::size_t shard);

  /// Streams one consistent full state into per-shard snapshot files.
  /// The engine-registered source add()s every live record, then
  /// commit() publishes: tmp files are fsynced and renamed over
  /// snapshot.bin, then every sealed segment the snapshot covers is
  /// garbage-collected (MANIFEST first, unlink after). The active
  /// segments are untouched — records they hold beyond the checkpoint
  /// boundary replay on top of the snapshot and converge (last-writer-
  /// wins per user). Abandoning the object without commit() leaves the
  /// store untouched.
  class Checkpoint {
   public:
    ~Checkpoint() = default;
    Checkpoint(const Checkpoint&) = delete;
    Checkpoint& operator=(const Checkpoint&) = delete;

    /// Adds one record to `shard`'s pending snapshot (seq = 0).
    void add(std::size_t shard, RecordType type, BytesView payload);
    /// Publishes every shard's snapshot atomically, then GCs covered
    /// sealed segments.
    [[nodiscard]] Status commit();

   private:
    friend class ProfileStore;
    Checkpoint(ProfileStore& store, std::vector<std::uint64_t> boundary);
    ProfileStore& store_;
    std::unique_lock<std::mutex> lock_;   // one checkpoint at a time
    std::vector<Bytes> pending_;          // per-shard record bytes
    std::vector<std::uint64_t> boundary_; // per-shard max sealed seq
    bool committed_ = false;
  };

  /// DEPRECATED — caller-driven checkpoint entry point; prefer
  /// request_checkpoint(), which funnels tests and the admin plane
  /// through the one scheduler code path. Rotates every shard so the
  /// snapshot boundary is the sealed-segment frontier, then hands back
  /// the Checkpoint to stream into. Removed next PR.
  [[nodiscard]] StatusOr<std::unique_ptr<Checkpoint>> begin_checkpoint();

  /// Registers the engine callback that streams the full engine state
  /// into a Checkpoint. Required before any maintenance cycle can run.
  using CheckpointSource = std::function<Status(Checkpoint&)>;
  void set_checkpoint_source(CheckpointSource source);

  /// Enqueues one maintenance cycle (rotate -> checkpoint -> GC) on the
  /// scheduler thread and returns its completion future. Works with
  /// background maintenance off — the thread starts on demand.
  [[nodiscard]] std::future<Status> request_checkpoint();

  /// Starts background maintenance when the policy asks for it
  /// (options().maintenance.policy.background). Engines call this at
  /// the end of attach_store, after registering their source.
  void start_maintenance();

  /// The scheduler, for tests (pause/resume) and status rendering.
  [[nodiscard]] MaintenanceScheduler& maintenance() { return *maintenance_; }

  /// Test seam: called at named points inside rotation / checkpoint /
  /// GC ("rotate.sealed", "rotate.manifest", "checkpoint.after_snapshots",
  /// "gc.manifest"). Returning false aborts the operation right there —
  /// the on-disk state is exactly what a crash at that point leaves —
  /// and the crash harness instead calls _exit() inside the hook.
  using MaintenanceHook = std::function<bool(std::string_view)>;
  void set_maintenance_hook(MaintenanceHook hook);

  /// One maintenance cycle, run synchronously on the calling thread:
  /// rotate every shard, stream the registered checkpoint source,
  /// commit (snapshot + GC). The scheduler thread's unit of work.
  [[nodiscard]] Status run_maintenance_cycle();

  /// Whether the policy's rotation / checkpoint triggers currently
  /// fire (scheduler poll predicate).
  [[nodiscard]] bool rotation_due(std::size_t shard) const;
  [[nodiscard]] bool checkpoint_due() const;

  /// Human-readable maintenance summary for /statusz.
  [[nodiscard]] std::string render_maintenance_status() const;

  /// Writes (atomically) the page file for an evicted group.
  [[nodiscard]] Status write_page(BytesView key, BytesView payload);
  /// Reads a page file back; kConnectionReset when absent,
  /// kMalformedMessage when damaged.
  [[nodiscard]] StatusOr<Bytes> read_page(BytesView key);
  /// Removes a group's page file (no-op when absent).
  void drop_page(BytesView key);

  [[nodiscard]] StoreMetrics metrics() const;

 private:
  ProfileStore() = default;

  /// One sealed, immutable segment of a shard's log.
  struct SealedSegment {
    std::uint32_t segno = 0;
    std::uint64_t max_seq = 0;  // highest sequence framed inside
    std::uint64_t bytes = 0;    // file size minus header
  };

  /// One shard's segment chain. `mu` is held shared by appends/syncs
  /// (WalFile serializes internally) and exclusively by rotation and
  /// GC, which swap the active pointer / splice the sealed list.
  struct ShardLog {
    mutable std::shared_mutex mu;
    std::unique_ptr<WalFile> active;
    std::uint32_t active_segno = 1;
    std::uint32_t first_live = 1;
    std::vector<SealedSegment> sealed;  // ascending segno
    std::atomic<std::uint64_t> torn_tail_records{0};
  };

  /// Runs the registered hook at `point`; non-ok means the hook asked
  /// to abort (simulated crash) and the caller must stop right there.
  [[nodiscard]] Status hook_point(std::string_view point);

  /// Rewrites the MANIFEST with `shard`'s range updated (manifest_mu_).
  [[nodiscard]] Status publish_manifest(std::size_t shard,
                                        std::uint32_t first_live,
                                        std::uint32_t active);

  /// Rotates every shard and returns the per-shard checkpoint boundary:
  /// the highest sealed sequence (== everything a snapshot taken now is
  /// guaranteed to cover, since appends beyond it land in fresh active
  /// segments that survive GC).
  [[nodiscard]] StatusOr<std::vector<std::uint64_t>> rotate_all();

  [[nodiscard]] std::string shard_dir(std::size_t shard) const;
  [[nodiscard]] std::string segment_path(std::size_t shard, std::uint32_t segno) const;
  [[nodiscard]] std::string snapshot_path(std::size_t shard) const;
  [[nodiscard]] std::string page_path(BytesView key) const;

  StoreOptions options_;
  std::vector<std::unique_ptr<ShardLog>> logs_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> snapshot_last_seq_;

  std::mutex checkpoint_mu_;  // one checkpoint at a time
  std::mutex manifest_mu_;    // manifest_ cache + MANIFEST file rewrites
  Manifest manifest_;

  std::mutex hooks_mu_;  // source_ + hook_ registration vs. use
  CheckpointSource source_;
  MaintenanceHook hook_;

  std::unique_ptr<MaintenanceScheduler> maintenance_;

  std::atomic<std::uint64_t> replayed_{0};
  std::atomic<std::uint64_t> replay_skipped_{0};
  std::atomic<std::uint64_t> torn_tails_{0};
  std::atomic<std::uint64_t> crc_stops_{0};
  std::atomic<std::uint64_t> snapshots_{0};
  std::atomic<std::uint64_t> pages_written_{0};
  std::atomic<std::uint64_t> pages_read_{0};
  std::atomic<std::uint64_t> rotations_{0};
  std::atomic<std::uint64_t> segments_gced_{0};
  std::atomic<std::uint64_t> gc_bytes_reclaimed_{0};
  std::atomic<std::uint64_t> maintenance_cycles_{0};
};

}  // namespace smatch::store
