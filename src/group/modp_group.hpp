// Prime-order subgroup of Z_p^* for the verification protocol.
//
// The S-MATCH verification token is ciph_v = AES_Enc(K_vp,
// g^{s_v} || h(g^{s_v * ID_v})); its unforgeability rests on CDH in the
// subgroup of quadratic residues modulo a safe prime (paper Section VII-B).
#pragma once

#include <cstdint>

#include "bigint/bigint.hpp"
#include "common/random.hpp"

namespace smatch {

/// A cyclic group: the order-q subgroup of quadratic residues mod a safe
/// prime p = 2q + 1, with generator g.
class ModpGroup {
 public:
  /// Builds a group from a known safe prime. `generator_seed` is squared
  /// mod p to land in the QR subgroup.
  ModpGroup(BigInt safe_prime, const BigInt& generator_seed);

  /// RFC 3526 group 14 (2048-bit MODP) with g = 4 (a quadratic residue).
  [[nodiscard]] static ModpGroup rfc3526_2048();
  /// A small 512-bit group for fast unit tests (precomputed safe prime).
  [[nodiscard]] static ModpGroup test_512();
  /// Generates a fresh group from a random safe prime (slow; test-scale
  /// bit sizes only).
  [[nodiscard]] static ModpGroup generate(RandomSource& rng, std::size_t bits);

  [[nodiscard]] const BigInt& p() const { return p_; }
  [[nodiscard]] const BigInt& q() const { return q_; }  // subgroup order
  [[nodiscard]] const BigInt& g() const { return g_; }

  /// g^e mod p.
  [[nodiscard]] BigInt pow_g(const BigInt& e) const { return g_.pow_mod(e, p_); }
  /// base^e mod p.
  [[nodiscard]] BigInt pow(const BigInt& base, const BigInt& e) const {
    return base.pow_mod(e, p_);
  }
  /// Uniform exponent in [1, q).
  [[nodiscard]] BigInt random_exponent(RandomSource& rng) const;
  /// True when x is in the QR subgroup (x^q == 1 mod p).
  [[nodiscard]] bool contains(const BigInt& x) const;

  /// Fixed byte length of a serialized group element.
  [[nodiscard]] std::size_t element_bytes() const { return (p_.bit_length() + 7) / 8; }

 private:
  BigInt p_;
  BigInt q_;
  BigInt g_;
};

}  // namespace smatch
