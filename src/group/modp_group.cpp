#include "group/modp_group.hpp"

#include "bigint/prime.hpp"
#include "common/error.hpp"

namespace smatch {
namespace {

// RFC 3526 group 14: 2048-bit MODP safe prime.
constexpr const char* kRfc3526Prime2048 =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

// Precomputed 512-bit safe prime for test-scale groups.
constexpr const char* kTestPrime512 =
    "cf561c44ccc34e8f5a43b6862b5ab17a8a22b6da78b4892d547341c22b9e71ea"
    "3955e14d882da1c3d98fa29f4edfd2d9197b569d20e659a104808068edcc451b";

}  // namespace

ModpGroup::ModpGroup(BigInt safe_prime, const BigInt& generator_seed)
    : p_(std::move(safe_prime)) {
  if (p_ < BigInt{7}) throw CryptoError("ModpGroup: prime too small");
  q_ = (p_ - BigInt{1}) >> 1;
  // Square the seed to land in the quadratic-residue subgroup of order q.
  g_ = BigInt::mul_mod(generator_seed, generator_seed, p_);
  if (g_ <= BigInt{1} || g_ == p_ - BigInt{1}) {
    throw CryptoError("ModpGroup: degenerate generator");
  }
}

ModpGroup ModpGroup::rfc3526_2048() {
  // g = 2^2 = 4 generates the full QR subgroup for this prime.
  return ModpGroup(BigInt::from_hex_string(kRfc3526Prime2048), BigInt{2});
}

ModpGroup ModpGroup::test_512() {
  return ModpGroup(BigInt::from_hex_string(kTestPrime512), BigInt{2});
}

ModpGroup ModpGroup::generate(RandomSource& rng, std::size_t bits) {
  const BigInt p = random_safe_prime(rng, bits);
  // Random seed in [2, p-2]; squaring makes it a QR generator (order q,
  // since the QR subgroup of a safe prime has prime order).
  const BigInt seed = BigInt::random_below(rng, p - BigInt{3}) + BigInt{2};
  return ModpGroup(p, seed);
}

BigInt ModpGroup::random_exponent(RandomSource& rng) const {
  return BigInt::random_below(rng, q_ - BigInt{1}) + BigInt{1};
}

bool ModpGroup::contains(const BigInt& x) const {
  if (x <= BigInt{0} || x >= p_) return false;
  return x.pow_mod(q_, p_) == BigInt{1};
}

}  // namespace smatch
