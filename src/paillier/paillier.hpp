// Paillier additively homomorphic cryptosystem (EUROCRYPT'99).
//
// This is the substrate for the homoPM baseline (Zhang et al., INFOCOM'12)
// that the paper's Figures 4(c-e) and 5(a-c) compare S-MATCH against.
#pragma once

#include "bigint/bigint.hpp"
#include "common/random.hpp"

namespace smatch {

struct PaillierPublicKey {
  BigInt n;        // modulus
  BigInt n_sq;     // n^2, cached

  /// Encrypts m in [0, n) with fresh randomness.
  [[nodiscard]] BigInt encrypt(const BigInt& m, RandomSource& rng) const;
  /// E(a) * E(b) -> E(a + b mod n).
  [[nodiscard]] BigInt add(const BigInt& c1, const BigInt& c2) const;
  /// E(a), k -> E(a + k mod n).
  [[nodiscard]] BigInt add_plain(const BigInt& c, const BigInt& k) const;
  /// E(a), k -> E(a * k mod n).
  [[nodiscard]] BigInt mul_plain(const BigInt& c, const BigInt& k) const;
  /// E(a) -> E(-a mod n).
  [[nodiscard]] BigInt negate(const BigInt& c) const;
};

class PaillierKeyPair {
 public:
  static PaillierKeyPair generate(RandomSource& rng, std::size_t bits);

  [[nodiscard]] const PaillierPublicKey& public_key() const { return pub_; }
  /// Decrypts to [0, n).
  [[nodiscard]] BigInt decrypt(const BigInt& c) const;
  /// Decrypts, mapping residues above n/2 to negatives (two's-complement
  /// style signed decoding used by distance protocols).
  [[nodiscard]] BigInt decrypt_signed(const BigInt& c) const;

 private:
  PaillierKeyPair(PaillierPublicKey pub, BigInt lambda, BigInt mu)
      : pub_(std::move(pub)), lambda_(std::move(lambda)), mu_(std::move(mu)) {}

  PaillierPublicKey pub_;
  BigInt lambda_;  // lcm(p-1, q-1)
  BigInt mu_;      // (L(g^lambda mod n^2))^{-1} mod n
};

}  // namespace smatch
