#include "paillier/paillier.hpp"

#include "bigint/prime.hpp"
#include "common/error.hpp"

namespace smatch {
namespace {

// L(x) = (x - 1) / n.
BigInt l_function(const BigInt& x, const BigInt& n) {
  return (x - BigInt{1}) / n;
}

}  // namespace

BigInt PaillierPublicKey::encrypt(const BigInt& m, RandomSource& rng) const {
  if (m.is_negative() || m >= n) throw CryptoError("Paillier: plaintext out of range");
  // With g = n + 1: g^m = 1 + m*n (mod n^2), saving one exponentiation.
  const BigInt g_m = (BigInt{1} + m * n).mod(n_sq);
  BigInt r;
  do {
    r = BigInt::random_below(rng, n - BigInt{1}) + BigInt{1};
  } while (BigInt::gcd(r, n) != BigInt{1});
  const BigInt r_n = r.pow_mod(n, n_sq);
  return BigInt::mul_mod(g_m, r_n, n_sq);
}

BigInt PaillierPublicKey::add(const BigInt& c1, const BigInt& c2) const {
  return BigInt::mul_mod(c1, c2, n_sq);
}

BigInt PaillierPublicKey::add_plain(const BigInt& c, const BigInt& k) const {
  const BigInt g_k = (BigInt{1} + k.mod(n) * n).mod(n_sq);
  return BigInt::mul_mod(c, g_k, n_sq);
}

BigInt PaillierPublicKey::mul_plain(const BigInt& c, const BigInt& k) const {
  return c.pow_mod(k.mod(n), n_sq);
}

BigInt PaillierPublicKey::negate(const BigInt& c) const {
  return mul_plain(c, n - BigInt{1});
}

PaillierKeyPair PaillierKeyPair::generate(RandomSource& rng, std::size_t bits) {
  if (bits < 64) throw CryptoError("Paillier: modulus too small");
  while (true) {
    const BigInt p = random_prime(rng, bits / 2);
    const BigInt q = random_prime(rng, bits - bits / 2);
    if (p == q) continue;
    const BigInt n = p * q;
    if (n.bit_length() != bits) continue;
    // p*q coprime with (p-1)(q-1) holds automatically for same-size primes,
    // but verify to be safe.
    const BigInt phi = (p - BigInt{1}) * (q - BigInt{1});
    if (BigInt::gcd(n, phi) != BigInt{1}) continue;

    PaillierPublicKey pub{n, n * n};
    const BigInt lambda = BigInt::lcm(p - BigInt{1}, q - BigInt{1});
    // g = n + 1: mu = (L(g^lambda mod n^2))^{-1} mod n.
    const BigInt g = n + BigInt{1};
    const BigInt mu = l_function(g.pow_mod(lambda, pub.n_sq), n).inv_mod(n);
    return PaillierKeyPair(std::move(pub), lambda, mu);
  }
}

BigInt PaillierKeyPair::decrypt(const BigInt& c) const {
  if (c.is_negative() || c >= pub_.n_sq) throw CryptoError("Paillier: ciphertext out of range");
  const BigInt u = c.pow_mod(lambda_, pub_.n_sq);
  return BigInt::mul_mod(l_function(u, pub_.n), mu_, pub_.n);
}

BigInt PaillierKeyPair::decrypt_signed(const BigInt& c) const {
  const BigInt m = decrypt(c);
  return m > (pub_.n >> 1) ? m - pub_.n : m;
}

}  // namespace smatch
