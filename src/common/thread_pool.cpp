#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "obs/trace.hpp"

namespace smatch {

namespace {

/// Steady-clock ns for the wait/run histograms; 0 when timing is
/// compiled out so the cold fields stay inert.
std::uint64_t timing_now_ns() {
#if SMATCH_OBS_ENABLED
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#else
  return 0;
#endif
}

}  // namespace

/// Shared completion state for one parallel_for call.
struct Batch {
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t pending = 0;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The caller participates in parallel_for, so spawn one fewer worker.
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_task(const Task& task) {
  const std::uint64_t start_ns = timing_now_ns();
#if SMATCH_OBS_ENABLED
  if (task.enqueue_ns != 0) wait_hist_.record(start_ns - task.enqueue_ns);
#endif
  if (task.job) {
    // Single-shot submit() task: no batch to settle, nobody to rethrow
    // on. An escaping exception would cross a thread boundary with no
    // owner — let it terminate loudly rather than vanish.
    task.job();
#if SMATCH_OBS_ENABLED
    run_hist_.record(timing_now_ns() - start_ns);
#endif
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::exception_ptr error;
  try {
    for (std::size_t i = task.begin; i < task.end; ++i) (*task.fn)(i);
  } catch (...) {
    error = std::current_exception();
  }
#if SMATCH_OBS_ENABLED
  run_hist_.record(timing_now_ns() - start_ns);
#endif
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  // Notify while still holding the lock: the waiter may destroy the Batch
  // the instant it observes pending == 0, so the cv must not be touched
  // after the mutex is released.
  std::lock_guard lk(task.batch->mu);
  if (error && !task.batch->error) task.batch->error = error;
  --task.batch->pending;
  task.batch->done_cv.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lk(mu_);
      work_cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    run_task(task);
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // no worker exists; inline keeps the contract of "runs once"
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    std::lock_guard lk(mu_);
    Task t;
    t.job = std::move(task);
    t.enqueue_ns = timing_now_ns();
    queue_.push_back(std::move(t));
    peak_queue_depth_ = std::max<std::uint64_t>(peak_queue_depth_, queue_.size());
  }
  work_cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  parallel_fors_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t threads = num_threads();
  if (threads == 1 || n == 1) {
    SMATCH_SPAN_HIST("pool.parallel_for", &run_hist_);
    for (std::size_t i = 0; i < n; ++i) fn(i);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SMATCH_SPAN("pool.parallel_for");

  const std::size_t chunks = std::min(n, threads);
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;

  Batch batch;
  batch.pending = chunks;

  // Enqueue all but the first chunk; the caller runs the first one.
  const std::uint64_t enqueue_ns = timing_now_ns();
  std::size_t begin = base + (extra > 0 ? 1 : 0);
  {
    std::lock_guard lk(mu_);
    for (std::size_t c = 1; c < chunks; ++c) {
      const std::size_t len = base + (c < extra ? 1 : 0);
      queue_.push_back({begin, begin + len, &fn, &batch, enqueue_ns, {}});
      begin += len;
    }
    peak_queue_depth_ = std::max<std::uint64_t>(peak_queue_depth_, queue_.size());
  }
  work_cv_.notify_all();

  // The caller-run chunk never queued: no wait time to attribute.
  run_task({0, base + (extra > 0 ? 1 : 0), &fn, &batch, 0, {}});

  std::unique_lock lk(batch.mu);
  batch.done_cv.wait(lk, [&batch] { return batch.pending == 0; });
  if (batch.error) std::rethrow_exception(batch.error);
}

PoolMetrics ThreadPool::metrics() const {
  PoolMetrics m;
  m.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  m.parallel_fors = parallel_fors_.load(std::memory_order_relaxed);
  {
    std::lock_guard lk(mu_);
    m.queue_depth = queue_.size();
    m.peak_queue_depth = peak_queue_depth_;
  }
  m.task_wait_ns = wait_hist_.snapshot();
  m.task_run_ns = run_hist_.snapshot();
  return m;
}

}  // namespace smatch
