// Abstract randomness source.
//
// Every component that consumes randomness takes a RandomSource&, so tests
// and benchmarks can inject a seeded deterministic generator (see
// crypto/drbg.hpp) and reproduce results bit-for-bit.
#pragma once

#include <cstdint>
#include <span>

#include "common/bytes.hpp"

namespace smatch {

/// Interface for a byte-oriented random generator.
class RandomSource {
 public:
  virtual ~RandomSource() = default;

  /// Fills `out` with random bytes.
  virtual void fill(std::span<std::uint8_t> out) = 0;

  /// Convenience: a fresh buffer of `n` random bytes.
  [[nodiscard]] Bytes bytes(std::size_t n) {
    Bytes out(n);
    fill(out);
    return out;
  }

  /// A uniformly random 64-bit value.
  [[nodiscard]] std::uint64_t u64() {
    std::uint8_t buf[8];
    fill(buf);
    std::uint64_t v = 0;
    for (std::uint8_t b : buf) v = v << 8 | b;
    return v;
  }

  /// Uniform in [0, bound) via rejection sampling; bound must be > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) {
    // Rejection zone keeps the result exactly uniform.
    const std::uint64_t limit = bound * ((~std::uint64_t{0}) / bound);
    std::uint64_t v;
    do {
      v = u64();
    } while (v >= limit);
    return v % bound;
  }
};

}  // namespace smatch
