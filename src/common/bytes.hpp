// Byte-buffer utilities: hex encoding, constant-time comparison, XOR.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace smatch {

/// The library-wide owning byte buffer.
using Bytes = std::vector<std::uint8_t>;

/// A non-owning read-only view of bytes.
using BytesView = std::span<const std::uint8_t>;

/// Encodes `data` as lowercase hex.
[[nodiscard]] std::string to_hex(BytesView data);

/// Decodes a hex string (upper or lower case, even length).
/// Throws SerdeError on malformed input.
[[nodiscard]] Bytes from_hex(std::string_view hex);

/// Copies a UTF-8/ASCII string into a byte buffer.
[[nodiscard]] Bytes to_bytes(std::string_view s);

/// Interprets bytes as a string (no validation).
[[nodiscard]] std::string to_string(BytesView data);

/// Constant-time equality: runtime depends only on the lengths, never on
/// the contents. Returns false immediately when lengths differ.
[[nodiscard]] bool ct_equal(BytesView a, BytesView b);

/// Element-wise XOR of two equal-length buffers. Throws CryptoError when
/// the lengths differ.
[[nodiscard]] Bytes xor_bytes(BytesView a, BytesView b);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Concatenates any number of buffers.
[[nodiscard]] Bytes concat(std::initializer_list<BytesView> parts);

}  // namespace smatch
