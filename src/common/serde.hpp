// A small explicit wire format used by every S-MATCH protocol message.
//
// All integers are big-endian. Variable-length fields carry a u32 length
// prefix. The format is deliberately self-describing enough for the
// communication-cost benchmarks (Fig. 5d-f) to count exactly the bytes a
// real deployment would ship.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace smatch {

/// Serializes primitives into a growing byte buffer.
class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw bytes, no length prefix.
  void raw(BytesView data);
  /// u32 length prefix followed by the bytes.
  void var_bytes(BytesView data);
  /// u32 length prefix followed by UTF-8 bytes.
  void str(std::string_view s);

  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Deserializes primitives from a byte view; throws SerdeError on
/// truncation or trailing garbage (via `finish`).
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] Bytes raw(std::size_t n);
  [[nodiscard]] Bytes var_bytes();
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws SerdeError unless the whole buffer was consumed.
  void finish() const;

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace smatch
