// The versioned wire header and framing helpers shared by every S-MATCH
// protocol message — protocol payloads (core/messages.hpp,
// core/key_server.hpp) and the transport session envelope (net/session.hpp)
// alike. Lives in common/ so both the net layer and the core layer can
// frame messages without a dependency cycle; core/messages.hpp re-exports
// these names, so existing includes keep working.
#pragma once

#include <cstdint>
#include <utility>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/serde.hpp"
#include "common/status.hpp"

namespace smatch {

/// CRC-32 (IEEE 802.3 polynomial, reflected) — the checksum shared by the
/// transport frame codec (net/transport.hpp) and the durable store's
/// on-disk records (store/format.hpp). Lives here so both layers frame
/// records identically without a dependency between them.
[[nodiscard]] std::uint32_t crc32(BytesView data);

/// "SM" in ASCII: the first two bytes of every serialized message.
inline constexpr std::uint16_t kWireMagic = 0x534D;
/// Current wire-format version (header layout v1).
inline constexpr std::uint8_t kWireVersion = 1;
/// Serialized size of the magic + version header.
inline constexpr std::size_t kWireHeaderBytes = 3;

namespace wire {

/// Appends the 3-byte magic + version header.
void write_header(Writer& w);

/// Consumes and validates the header: kMalformedMessage on bad magic,
/// kUnsupportedVersion on an unknown version byte, ok otherwise.
[[nodiscard]] Status read_header(Reader& r);

/// Runs a Reader-based parse body under the versioned header, mapping
/// SerdeError (truncation, length lies, trailing bytes) to
/// kMalformedMessage. Framed parsers never throw.
template <typename Message, typename Body>
[[nodiscard]] StatusOr<Message> parse_framed(BytesView data, Body&& body) {
  try {
    Reader r(data);
    if (Status header = read_header(r); !header.is_ok()) return header;
    Message m = std::forward<Body>(body)(r);
    r.finish();
    return m;
  } catch (const SerdeError& e) {
    return Status(StatusCode::kMalformedMessage, e.what());
  }
}

}  // namespace wire

}  // namespace smatch
