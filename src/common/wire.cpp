#include "common/wire.hpp"

#include <array>
#include <string>

namespace smatch {

namespace {

/// CRC-32 lookup table (IEEE 802.3, reflected polynomial 0xEDB88320),
/// built once on first use.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(BytesView data) {
  const auto& table = crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) {
    c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace smatch

namespace smatch::wire {

void write_header(Writer& w) {
  w.u16(kWireMagic);
  w.u8(kWireVersion);
}

Status read_header(Reader& r) {
  if (r.u16() != kWireMagic) {
    return {StatusCode::kMalformedMessage, "bad wire magic"};
  }
  const std::uint8_t version = r.u8();
  if (version != kWireVersion) {
    return {StatusCode::kUnsupportedVersion,
            "wire version " + std::to_string(version) + " (expected " +
                std::to_string(kWireVersion) + ")"};
  }
  return Status::ok();
}

}  // namespace smatch::wire
