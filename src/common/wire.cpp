#include "common/wire.hpp"

#include <string>

namespace smatch::wire {

void write_header(Writer& w) {
  w.u16(kWireMagic);
  w.u8(kWireVersion);
}

Status read_header(Reader& r) {
  if (r.u16() != kWireMagic) {
    return {StatusCode::kMalformedMessage, "bad wire magic"};
  }
  const std::uint8_t version = r.u8();
  if (version != kWireVersion) {
    return {StatusCode::kUnsupportedVersion,
            "wire version " + std::to_string(version) + " (expected " +
                std::to_string(kWireVersion) + ")"};
  }
  return Status::ok();
}

}  // namespace smatch::wire
