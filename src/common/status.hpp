// Exception-free error reporting for the service-facing hot paths.
//
// The matching server, the wire parsers, and client-side verification all
// report failures through Status / StatusOr<T> instead of throwing: a
// production match loop handling millions of queries cannot afford stack
// unwinding for routine conditions (unknown querier, replayed timestamp,
// malformed message). Exceptions remain the right tool for programmer
// errors and construction-time misconfiguration (see common/error.hpp).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/error.hpp"

namespace smatch {

/// Canonical error space of the S-MATCH service API.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kUnknownUser,          // querier never uploaded a profile
  kStaleTimestamp,       // replayed or out-of-order query timestamp
  kMalformedMessage,     // truncated / corrupted / inconsistent wire data
  kEmptyGroup,           // querier's key group vanished mid-operation
  kUnsupportedVersion,   // wire header carries an unknown format version
  kBudgetExhausted,      // client exceeded its per-epoch OPRF budget
  kTimeout,              // per-call transport deadline expired
  kConnectionReset,      // peer closed / refused / reset the transport
  kRetriesExhausted,     // session layer gave up after its retry budget
  kOverloaded,           // server shed the request (admission control)
  kWouldBlock,           // nonblocking I/O: no progress possible right now
};

/// Largest StatusCode a wire envelope may carry. kWouldBlock is a local
/// control-flow signal of the nonblocking transport API and never
/// travels on the wire; a peer sending it is malformed.
inline constexpr StatusCode kMaxWireStatusCode = StatusCode::kOverloaded;

[[nodiscard]] constexpr std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kUnknownUser: return "UNKNOWN_USER";
    case StatusCode::kStaleTimestamp: return "STALE_TIMESTAMP";
    case StatusCode::kMalformedMessage: return "MALFORMED_MESSAGE";
    case StatusCode::kEmptyGroup: return "EMPTY_GROUP";
    case StatusCode::kUnsupportedVersion: return "UNSUPPORTED_VERSION";
    case StatusCode::kBudgetExhausted: return "BUDGET_EXHAUSTED";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kConnectionReset: return "CONNECTION_RESET";
    case StatusCode::kRetriesExhausted: return "RETRIES_EXHAUSTED";
    case StatusCode::kOverloaded: return "OVERLOADED";
    case StatusCode::kWouldBlock: return "WOULD_BLOCK";
  }
  return "INVALID_CODE";
}

/// A success-or-error result. Ok statuses carry no allocation.
class [[nodiscard]] Status {
 public:
  Status() = default;  // ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    std::string s{smatch::to_string(code_)};
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or the Status explaining why there is none.
///
/// `value()` throws Error when no value is held — an explicit escape hatch
/// for callers (tests, examples) that have already established success or
/// want fail-fast semantics; service code should branch on `is_ok()`.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.is_ok()) {
      throw Error("StatusOr constructed from an ok Status without a value");
    }
  }
  StatusOr(StatusCode code, std::string message)
      : StatusOr(Status(code, std::move(message))) {}

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] StatusCode code() const { return status_.code(); }

  [[nodiscard]] T& value() & { return checked(); }
  [[nodiscard]] const T& value() const& { return const_cast<StatusOr*>(this)->checked(); }
  [[nodiscard]] T&& value() && { return std::move(checked()); }

  [[nodiscard]] T& operator*() { return *value_; }
  [[nodiscard]] const T& operator*() const { return *value_; }
  [[nodiscard]] T* operator->() { return &*value_; }
  [[nodiscard]] const T* operator->() const { return &*value_; }

  /// The held value, or `fallback` when this holds an error.
  [[nodiscard]] T value_or(T fallback) const& {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  T& checked() {
    if (!value_.has_value()) {
      throw Error("StatusOr::value on error status — " + status_.to_string());
    }
    return *value_;
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace smatch
