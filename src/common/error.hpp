// Error types shared across all S-MATCH subsystems.
//
// Following the C++ Core Guidelines (E.2, E.14), errors that a caller
// cannot reasonably be expected to handle locally are reported with
// exceptions carrying a domain-specific type.
#pragma once

#include <stdexcept>
#include <string>

namespace smatch {

/// Base class for every error thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed, truncated, or otherwise invalid wire data.
class SerdeError : public Error {
 public:
  explicit SerdeError(const std::string& what) : Error("serde: " + what) {}
};

/// A cryptographic precondition was violated (bad key size, bad padding,
/// out-of-range plaintext, ...).
class CryptoError : public Error {
 public:
  explicit CryptoError(const std::string& what) : Error("crypto: " + what) {}
};

/// Decoding failure in an error-correcting code (too many symbol errors).
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error("decode: " + what) {}
};

/// A protocol message arrived that violates the S-MATCH state machine.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error("protocol: " + what) {}
};

}  // namespace smatch
