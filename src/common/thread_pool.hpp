// A small fixed-size worker pool for the batch entry points of the
// matching engine.
//
// Deliberately minimal: `parallel_for` partitions an index range into
// contiguous chunks, runs them on the workers, and blocks the caller until
// every chunk finished. With one worker (or a one-element range) the work
// runs inline on the calling thread — batch APIs stay cheap on small
// machines and deterministic to profile.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace smatch {

struct Batch;  // per-parallel_for completion state (thread_pool.cpp)

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n), split into per-worker chunks, and
  /// returns when all calls completed. The calling thread participates.
  /// Exceptions thrown by fn propagate std::terminate-free: the first one
  /// is rethrown on the caller after the range drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Task {
    std::size_t begin = 0;
    std::size_t end = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    Batch* batch = nullptr;
  };

  void worker_loop();
  void run_task(const Task& task);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;
};

}  // namespace smatch
