// A small fixed-size worker pool for the batch entry points of the
// matching engine.
//
// Deliberately minimal: `parallel_for` partitions an index range into
// contiguous chunks, runs them on the workers, and blocks the caller until
// every chunk finished. With one worker (or a one-element range) the work
// runs inline on the calling thread — batch APIs stay cheap on small
// machines and deterministic to profile.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"

namespace smatch {

struct Batch;  // per-parallel_for completion state (thread_pool.cpp)

/// Point-in-time view of a pool's scheduling behaviour, mirroring the
/// engine metrics style (core/metrics.hpp). Counters are monotonic;
/// `queue_depth` reflects the snapshot. The wait/run histograms are in
/// nanoseconds and stay empty when instrumentation is compiled out
/// (-DSMATCH_OBS=OFF).
struct PoolMetrics {
  std::uint64_t tasks_executed = 0;    // chunks run (workers + caller)
  std::uint64_t parallel_fors = 0;     // parallel_for invocations
  std::uint64_t queue_depth = 0;       // queued chunks right now
  std::uint64_t peak_queue_depth = 0;  // high-water mark of the queue
  obs::HistogramSnapshot task_wait_ns;  // enqueue -> dequeue latency
  obs::HistogramSnapshot task_run_ns;   // chunk execution time
};

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n), split into per-worker chunks, and
  /// returns when all calls completed. The calling thread participates.
  /// Exceptions thrown by fn propagate std::terminate-free: the first one
  /// is rethrown on the caller after the range drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Enqueues one independent fire-and-forget task and returns
  /// immediately. Tasks already queued when the destructor runs are
  /// drained before the workers join, so a submitted task always
  /// executes exactly once. On a pool with no spawned workers
  /// (`num_threads() == 1`) the task runs inline on the caller — there
  /// is no thread that could ever pick it up. Exceptions escaping a
  /// submitted task terminate (they have no caller to rethrow on);
  /// submitters wrap fallible work in their own error handling.
  void submit(std::function<void()> task);

  /// Scheduling metrics snapshot. Safe to call under traffic.
  [[nodiscard]] PoolMetrics metrics() const;

 private:
  struct Task {
    std::size_t begin = 0;
    std::size_t end = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    Batch* batch = nullptr;
    std::uint64_t enqueue_ns = 0;  // 0 when timing is compiled out
    std::function<void()> job;     // single-shot submit() task when set
  };

  void worker_loop();
  void run_task(const Task& task);

  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;

  // Scheduling statistics (relaxed atomics on the hot path; the queue
  // depths are only ever touched under mu_).
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> parallel_fors_{0};
  std::uint64_t peak_queue_depth_ = 0;
  obs::Histogram wait_hist_;
  obs::Histogram run_hist_;
};

}  // namespace smatch
