#include "scenario/scenarios.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <utility>

#include "core/service.hpp"
#include "core/smatch.hpp"
#include "crypto/drbg.hpp"
#include "group/modp_group.hpp"
#include "net/admin.hpp"
#include "net/inproc_transport.hpp"
#include "net/server.hpp"
#include "net/tcp_transport.hpp"
#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "store/store.hpp"

namespace smatch::scenario {
namespace {

constexpr std::chrono::milliseconds kConnectTimeout{5000};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SchemeParams scenario_params() {
  SchemeParams p;
  p.attribute_bits = 32;  // shallow OPE recursion: harness-sized chains
  p.rs_threshold = 8;
  return p;
}

/// One client worker: a connection, its fault injector, and the phones
/// plus connected sessions of its user slice.
struct Worker {
  std::size_t lo = 0, hi = 0;  // user-index slice [lo, hi)
  std::unique_ptr<Transport> conn;
  std::unique_ptr<FaultInjector> injector;
  // Fixed-size, slot = user - lo (null where setup failed), so slot
  // arithmetic can never desync from push order.
  std::vector<std::unique_ptr<Client>> phones;
  std::vector<std::unique_ptr<RemoteClient>> remotes;
  std::vector<bool> enrolled;
};

/// Runs `fn(worker)` on every worker concurrently and joins.
template <typename Fn>
void run_phase(std::vector<Worker>& workers, Fn&& fn) {
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (Worker& w : workers) {
    threads.emplace_back([&fn, &w] { fn(w); });
  }
  for (std::thread& t : threads) t.join();
}

std::uint64_t registry_count(const char* name) {
  return obs::Registry::global().counter(name)->load();
}

/// Per-phase latency from the outside in: scrapes /metrics over the
/// admin plane, lints the exposition, parses the smatch_net_rtt_ns
/// histogram back, and turns the delta between two scrapes bracketing a
/// phase into that phase's quantiles. Inactive (all no-ops) when the
/// admin plane is absent — the -DSMATCH_OBS=OFF build.
class PhaseScraper {
 public:
  void begin(std::uint16_t admin_port) {
    if (admin_port == 0) return;
    port_ = admin_port;
    active_ = scrape(&last_);
  }

  void sample(const char* phase, ScenarioResult* result) {
    if (!active_) return;
    obs::HistogramSnapshot now;
    if (!scrape(&now)) return;
    PhaseSample ps;
    ps.phase = phase;
    // De-accumulate: the registry histogram is process-global, so the
    // phase's own samples are the bucket-wise difference.
    obs::HistogramSnapshot delta;
    for (std::size_t i = 0; i < obs::kNumHistogramBuckets; ++i) {
      delta.buckets[i] = now.buckets[i] - last_.buckets[i];
    }
    delta.count = now.count - last_.count;
    delta.sum = now.sum - last_.sum;
    ps.ops = delta.count;
    ps.p50_ns = delta.p50();
    ps.p99_ns = delta.p99();
    result->phases.push_back(std::move(ps));
    last_ = now;
  }

  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] bool clean() const { return clean_; }
  [[nodiscard]] std::uint64_t scrapes() const { return scrapes_; }

 private:
  bool scrape(obs::HistogramSnapshot* out) {
    StatusOr<std::string> body = http_get("127.0.0.1", port_, "/metrics");
    if (!body.is_ok()) {
      clean_ = false;
      return false;
    }
    ++scrapes_;
    std::string error;
    if (!obs::lint_prometheus_text(*body, &error)) clean_ = false;
    if (!obs::parse_prometheus_histogram(*body, "smatch_net_rtt_ns", out)) {
      // No calls yet: an absent family is fine, an unparseable one is not.
      if (body->find("smatch_net_rtt_ns") != std::string::npos) clean_ = false;
      *out = obs::HistogramSnapshot{};
    }
    return true;
  }

  std::uint16_t port_ = 0;
  bool active_ = false;
  bool clean_ = true;
  std::uint64_t scrapes_ = 0;
  obs::HistogramSnapshot last_;
};

/// The CI rendezvous: publish the admin port, then hold the scenario at
/// the end of the enroll phase until the external prober (scripts/ci.sh)
/// finishes curling and touches "<prefix>.go". Bounded so an absent
/// prober can never wedge a run.
void admin_sync_point(const std::string& prefix, std::uint16_t admin_port) {
  if (prefix.empty() || admin_port == 0) return;
  {
    std::ofstream port_file(prefix + ".port", std::ios::trunc);
    port_file << admin_port << "\n";
  }
  const std::string go = prefix + ".go";
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    std::error_code ec;
    if (std::filesystem::exists(go, ec)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace

StatusOr<ScenarioResult> run_scenario(const ScenarioSpec& spec) {
  const Workload wl = Workload::generate(spec.workload);
  const std::size_t users = wl.num_users();
  if (users == 0) return Status(StatusCode::kMalformedMessage, "scenario: empty workload");

  Drbg master(spec.workload.seed);
  Drbg setup_rng = master.fork(to_bytes("scenario-setup"));

  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());
  const ClientConfig config = make_client_config(wl.spec(), scenario_params(), group);

  KeyServer key_server(RsaKeyPair::generate(setup_rng, spec.rsa_bits),
                       /*requests_per_epoch=*/0);
  MatchServer match_server(ServerOptions{.num_shards = 4});
  if (spec.store_budget_bytes > 0 || spec.store_maintenance) {
    if (spec.store_dir.empty()) {
      return Status(StatusCode::kMalformedMessage, "scenario: store without dir");
    }
    store::StoreOptions store_opts;
    store_opts.directory = spec.store_dir;
    store_opts.durability.fsync = store::FsyncPolicy::kNever;
    store_opts.residency.memory_budget_bytes = spec.store_budget_bytes;
    if (spec.store_maintenance) {
      // Aggressive relative to the workload size so several full
      // rotate -> checkpoint -> GC cycles land mid-scenario even at
      // smoke scale (a handful of uploads per WAL shard).
      store::MaintenancePolicy& policy = store_opts.maintenance.policy;
      policy.background = true;
      policy.rotate_segment_bytes = 1024;
      policy.checkpoint_sealed_segments = 1;
      policy.min_interval = std::chrono::milliseconds(10);
      policy.poll_interval = std::chrono::milliseconds(2);
    }
    if (Status s = match_server.attach_store(store_opts); !s.is_ok()) return s;
  }

  FrequencyAdversary adversary(config.attribute_probs);
  SmatchService service(match_server, key_server, spec.top_k,
                        [&adversary](BytesView body) { adversary.observe(body); });
  NetServer net(service.dispatcher());
  ServerConfig server_config;
  if (spec.over_tcp) server_config.tcp_port = 0;  // ephemeral
  server_config.io_threads = spec.io_threads;
  server_config.dispatch_workers = spec.dispatch_workers;
  if (spec.admin) server_config.admin_port = 0;  // ephemeral
  server_config.slow_request_threshold_ns = spec.slow_request_threshold_ns;
  if (Status s = net.start(server_config); !s.is_ok()) return s;

  // /statusz carries the live maintenance plane: cycles, segment counts,
  // last checkpoint age — the section scripts/ci.sh greps mid-scenario.
  if (AdminServer* admin = net.admin();
      admin != nullptr && match_server.store() != nullptr) {
    const store::ProfileStore* store = match_server.store();
    admin->add_status_section("store maintenance", [store] {
      return store->render_maintenance_status();
    });
  }

  PhaseScraper scraper;
  scraper.begin(net.admin_port());

  const std::uint64_t shed_req_before = registry_count("smatch_net_shed_requests_total");
  const std::uint64_t shed_conn_before =
      registry_count("smatch_net_shed_connections_total");

  // --- Workers: contiguous user slices, one connection each -------------
  const std::size_t n_workers = std::max<std::size_t>(1, spec.connections);
  const std::size_t per = (users + n_workers - 1) / n_workers;
  std::vector<Worker> workers(std::min(n_workers, (users + per - 1) / per));
  for (std::size_t i = 0; i < workers.size(); ++i) {
    Worker& w = workers[i];
    w.lo = i * per;
    w.hi = std::min(users, w.lo + per);
    if (spec.over_tcp) {
      auto conn = TcpTransport::connect("127.0.0.1", net.port(), kConnectTimeout);
      if (!conn.is_ok()) return conn.status();
      w.conn = std::move(*conn);
    } else {
      auto [client_end, server_end] = InProcTransport::make_pair();
      net.attach(std::move(server_end));
      w.conn = std::move(client_end);
    }
    if (spec.faulty) {
      FaultSpec faults = spec.faults;
      faults.seed = spec.faults.seed + i;  // distinct stream per connection
      w.injector = std::make_unique<FaultInjector>(faults);
      w.conn->set_fault_injector(w.injector.get());
    }
    const std::size_t slice = w.hi - w.lo;
    w.phones.resize(slice);
    w.remotes.resize(slice);
    w.enrolled.assign(slice, false);
  }

  ScenarioResult result;
  result.name = spec.name;
  result.workload_digest = wl.digest();
  obs::Histogram latency;
  std::atomic<std::uint64_t> failed{0}, ops{0}, enrolled{0}, churned{0};
  std::atomic<std::uint64_t> queries_done{0}, entries_verified{0};

  const std::uint64_t t0 = now_ns();

  // --- Phase 1: enroll storm — Keygen over OPRF + first upload ----------
  run_phase(workers, [&](Worker& w) {
    for (std::size_t u = w.lo; u < w.hi; ++u) {
      const auto id = static_cast<UserId>(u + 1);
      // Per-user DRBG off a private parent: fork() advances the parent
      // stream, so forking a shared master from worker threads would be
      // both racy and schedule-dependent.
      Drbg user_rng = Drbg(spec.workload.seed).fork(to_bytes("user-" + std::to_string(id)));
      auto phone = Client::create(id, wl.profile(u), config);
      if (!phone.is_ok()) {
        failed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const std::size_t slot = u - w.lo;
      w.phones[slot] = std::make_unique<Client>(std::move(*phone));
      w.remotes[slot] = std::make_unique<RemoteClient>(
          *w.phones[slot], *w.conn, key_server.public_key(), spec.policy,
          /*seed=*/id);
      RemoteClient& remote = *w.remotes[slot];

      std::uint64_t start = now_ns();
      const bool enroll_ok = remote.enroll(user_rng).is_ok();
      latency.record(now_ns() - start);
      ops.fetch_add(1, std::memory_order_relaxed);
      if (!enroll_ok) {
        failed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      start = now_ns();
      const bool upload_ok = remote.upload(user_rng).is_ok();
      latency.record(now_ns() - start);
      ops.fetch_add(1, std::memory_order_relaxed);
      if (!upload_ok) {
        failed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      w.enrolled[u - w.lo] = true;
      enrolled.fetch_add(1, std::memory_order_relaxed);
    }
  });
  scraper.sample("enroll", &result);
  admin_sync_point(spec.admin_sync_prefix, net.admin_port());

  // --- Phase 2: churn — re-enroll with changed attributes ---------------
  if (!wl.churners().empty()) {
    run_phase(workers, [&](Worker& w) {
      for (std::size_t u = w.lo; u < w.hi; ++u) {
        const std::size_t slot = u - w.lo;
        if (!wl.is_churner(u) || !w.enrolled[slot]) continue;
        const auto id = static_cast<UserId>(u + 1);
        Drbg user_rng = Drbg(spec.workload.seed).fork(to_bytes("churn-" + std::to_string(id)));
        auto phone = Client::create(id, wl.churned_profile(u), config);
        if (!phone.is_ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Swap the device's profile in place; the RemoteClient's Client&
        // stays valid and its session (request-id space) continues.
        *w.phones[slot] = std::move(*phone);
        RemoteClient& remote = *w.remotes[slot];
        std::uint64_t start = now_ns();
        const bool ok = remote.enroll(user_rng).is_ok() &&
                        remote.upload(user_rng).is_ok();
        latency.record(now_ns() - start);
        ops.fetch_add(2, std::memory_order_relaxed);
        if (ok) {
          churned.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
          w.enrolled[slot] = false;
        }
      }
    });
    scraper.sample("churn", &result);
  }

  // --- Phase 3: queries with hot-key skew -------------------------------
  if (spec.queries > 0) {
    const std::vector<std::size_t> sequence = wl.query_sequence(spec.queries);
    run_phase(workers, [&](Worker& w) {
      for (std::size_t i = 0; i < sequence.size(); ++i) {
        const std::size_t u = sequence[i];
        if (u < w.lo || u >= w.hi) continue;  // not this worker's user
        const std::size_t slot = u - w.lo;
        if (slot >= w.remotes.size() || !w.enrolled[slot]) continue;
        const std::uint64_t start = now_ns();
        const auto report = w.remotes[slot]->query(
            static_cast<std::uint32_t>(i + 1),
            /*timestamp=*/1700000000 + static_cast<std::uint64_t>(i));
        latency.record(now_ns() - start);
        ops.fetch_add(1, std::memory_order_relaxed);
        if (report.is_ok()) {
          queries_done.fetch_add(1, std::memory_order_relaxed);
          entries_verified.fetch_add(report->verified.size(),
                                     std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    scraper.sample("query", &result);
  }

  result.elapsed_ms = static_cast<double>(now_ns() - t0) / 1e6;
  result.admin_scrapes = scraper.scrapes();
  result.admin_scrape_clean = scraper.active() && scraper.clean();

  for (Worker& w : workers) {
    for (const auto& remote : w.remotes) {
      if (remote != nullptr) result.retries += remote->session_stats().retries;
    }
    if (w.conn != nullptr) (void)w.conn->close();
  }
  net.stop();

  result.ops = ops.load();
  result.failed_requests = failed.load();
  result.enrolled = enrolled.load();
  result.churned = churned.load();
  result.queries_done = queries_done.load();
  result.entries_verified = entries_verified.load();
  result.throughput_rps = result.elapsed_ms > 0.0
      ? static_cast<double>(result.ops) / result.elapsed_ms * 1e3
      : 0.0;
  const obs::HistogramSnapshot lat = latency.snapshot();
  result.p50_ns = lat.p50();
  result.p99_ns = lat.p99();
  result.shed_requests =
      registry_count("smatch_net_shed_requests_total") - shed_req_before;
  result.shed_connections =
      registry_count("smatch_net_shed_connections_total") - shed_conn_before;
  if (const store::ProfileStore* store = match_server.store(); store != nullptr) {
    const store::StoreMetrics m = store->metrics();
    result.store_evictions = m.pages_written;
    result.store_page_ins = m.pages_read;
    result.store_maintenance_cycles = m.maintenance_cycles;
    result.store_segments_gced = m.segments_gced;
  }

  // The adversary scores against the population's final (post-churn)
  // profiles — what the server actually holds.
  std::vector<ProfileVec> truth;
  truth.reserve(users);
  for (std::size_t u = 0; u < users; ++u) truth.push_back(wl.final_profile(u));
  result.adversary = adversary.report(truth);
  return result;
}

std::vector<ScenarioSpec> standard_scenarios(std::size_t scale_users,
                                             std::uint64_t seed,
                                             const std::string& store_root) {
  const std::size_t n = std::max<std::size_t>(scale_users, 16);
  std::vector<ScenarioSpec> specs;

  {
    ScenarioSpec s;
    s.name = "enroll_storm";
    s.workload = {.name = s.name, .num_users = n, .num_attributes = 4,
                  .cardinality = 32, .zipf_exponent = 1.1,
                  .churn_fraction = 0.0, .seed = seed};
    s.connections = 8;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "churn_reenroll";
    s.workload = {.name = s.name, .num_users = (n * 3) / 4, .num_attributes = 4,
                  .cardinality = 32, .zipf_exponent = 1.1,
                  .churn_fraction = 0.3, .seed = seed + 1};
    s.queries = n / 4;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "hot_query_skew";
    s.workload = {.name = s.name, .num_users = n / 2, .num_attributes = 4,
                  .cardinality = 32, .zipf_exponent = 1.3,
                  .churn_fraction = 0.0, .seed = seed + 2};
    s.queries = n * 3;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "lossy_clients";
    s.workload = {.name = s.name, .num_users = n / 4, .num_attributes = 4,
                  .cardinality = 32, .zipf_exponent = 1.1,
                  .churn_fraction = 0.0, .seed = seed + 3};
    s.queries = n / 2;
    s.connections = 2;
    s.faulty = true;
    s.faults.drop = 0.15;
    s.faults.delay = 0.05;
    s.faults.delay_ms = std::chrono::milliseconds{2};
    s.faults.seed = seed + 30;
    s.policy.max_attempts = 10;
    s.policy.attempt_timeout = std::chrono::milliseconds{250};
    s.policy.initial_backoff = std::chrono::milliseconds{2};
    s.policy.max_backoff = std::chrono::milliseconds{20};
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "evicting_store";
    s.workload = {.name = s.name, .num_users = n / 2, .num_attributes = 4,
                  .cardinality = 32, .zipf_exponent = 1.1,
                  .churn_fraction = 0.0, .seed = seed + 4};
    s.queries = n * 2;
    // A budget of ~an eighth of the resident ciphertext bytes: most
    // groups live in page files and queries keep faulting them back.
    s.store_budget_bytes = std::max<std::size_t>(512, (n / 2) * 10);
    s.store_dir = store_root + "/evicting_store";
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "checkpoint_under_load";
    s.workload = {.name = s.name, .num_users = n / 2, .num_attributes = 4,
                  .cardinality = 32, .zipf_exponent = 1.1,
                  .churn_fraction = 0.2, .seed = seed + 5};
    // Churn plus a long query phase keeps traffic flowing while the
    // background plane rotates segments and compacts them; the result's
    // store_maintenance_cycles / store_segments_gced prove it ran.
    s.queries = n * 2;
    s.store_maintenance = true;
    s.store_dir = store_root + "/checkpoint_under_load";
    specs.push_back(std::move(s));
  }
  return specs;
}

}  // namespace smatch::scenario
