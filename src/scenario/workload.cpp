#include "scenario/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/error.hpp"
#include "crypto/drbg.hpp"

namespace smatch::scenario {
namespace {

constexpr std::size_t kNoChurn = static_cast<std::size_t>(-1);

/// Uniform double in [0, 1) from the workload's DRBG.
double uniform01(RandomSource& rng) {
  return static_cast<double>(rng.u64() >> 11) * 0x1.0p-53;
}

/// Inverse-CDF sample from a pmf.
std::size_t sample_pmf(const std::vector<double>& probs, RandomSource& rng) {
  const double u = uniform01(rng);
  double cum = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    cum += probs[i];
    if (u < cum) return i;
  }
  return probs.size() - 1;
}

std::uint64_t fnv_u64(std::uint64_t v, std::uint64_t h) {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return fnv1a(buf, sizeof buf, h);
}

}  // namespace

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n, std::uint64_t h) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<double> zipf_probs(std::size_t n, double s) {
  if (n == 0) throw Error("zipf_probs: empty support");
  std::vector<double> probs(n);
  double norm = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    probs[r] = 1.0 / std::pow(static_cast<double>(r + 1), s);
    norm += probs[r];
  }
  for (double& p : probs) p /= norm;
  return probs;
}

DatasetSpec zipf_spec(const WorkloadConfig& config) {
  DatasetSpec spec;
  spec.name = config.name;
  spec.num_users = config.num_users;
  const std::vector<double> probs =
      zipf_probs(config.cardinality, config.zipf_exponent);
  for (std::size_t a = 0; a < config.num_attributes; ++a) {
    AttributeSpec attr;
    attr.name = config.name + "_attr" + std::to_string(a);
    attr.probs = probs;
    spec.attributes.push_back(std::move(attr));
  }
  return spec;
}

Workload Workload::generate(const WorkloadConfig& config) {
  Drbg master(config.seed);
  Drbg profile_rng = master.fork(to_bytes("scenario-profiles"));
  Dataset dataset = Dataset::generate(zipf_spec(config), profile_rng);
  Workload wl(config, std::move(dataset));

  const auto churn_count = static_cast<std::size_t>(
      config.churn_fraction * static_cast<double>(config.num_users));
  if (churn_count > 0) {
    // Churners are a seeded sample of users; a Fisher-Yates prefix of a
    // permutation keeps the draw uniform and deterministic.
    Drbg churn_rng = master.fork(to_bytes("scenario-churn"));
    std::vector<std::size_t> order(config.num_users);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = 0; i < churn_count; ++i) {
      const std::size_t j = i + churn_rng.below(order.size() - i);
      std::swap(order[i], order[j]);
    }
    wl.churners_.assign(order.begin(),
                        order.begin() + static_cast<std::ptrdiff_t>(churn_count));
    std::sort(wl.churners_.begin(), wl.churners_.end());

    const std::vector<double> probs =
        zipf_probs(config.cardinality, config.zipf_exponent);
    wl.churn_slot_.assign(config.num_users, kNoChurn);
    wl.churned_.reserve(churn_count);
    for (std::size_t slot = 0; slot < wl.churners_.size(); ++slot) {
      const std::size_t user = wl.churners_[slot];
      Drbg user_rng = churn_rng.fork(to_bytes("churn-user-" + std::to_string(user)));
      ProfileVec replacement = wl.dataset_.profile(user);
      // Re-sample each attribute with probability 1/2...
      for (std::size_t a = 0; a < replacement.size(); ++a) {
        if (user_rng.below(2) == 0) {
          replacement[a] = static_cast<AttrValue>(sample_pmf(probs, user_rng));
        }
      }
      // ...and force attribute 0 into a different quantization cell (the
      // engines quantize with SchemeParams::quant_width, default 8) so the
      // re-enrollment derives a fresh profile key. The scenario driver and
      // the churn integration test both rely on the key changing.
      constexpr AttrValue kQuantWidth = 8;
      const AttrValue old_cell = wl.dataset_.profile(user)[0] / kQuantWidth;
      for (int attempt = 0; attempt < 64; ++attempt) {
        if (replacement[0] / kQuantWidth != old_cell) break;
        replacement[0] = static_cast<AttrValue>(sample_pmf(probs, user_rng));
      }
      if (replacement[0] / kQuantWidth == old_cell) {
        // Zipf mass can concentrate in one cell; shift deterministically.
        replacement[0] = static_cast<AttrValue>(
            (old_cell * kQuantWidth + kQuantWidth) % config.cardinality);
      }
      wl.churn_slot_[user] = slot;
      wl.churned_.push_back(std::move(replacement));
    }
  }
  return wl;
}

Workload::Workload(WorkloadConfig config, Dataset dataset)
    : config_(std::move(config)), dataset_(std::move(dataset)) {}

const ProfileVec& Workload::churned_profile(std::size_t user) const {
  if (!is_churner(user)) throw Error("Workload: user is not in the churn set");
  return churned_[churn_slot_[user]];
}

bool Workload::is_churner(std::size_t user) const {
  return user < churn_slot_.size() && churn_slot_[user] != kNoChurn;
}

std::vector<std::size_t> Workload::query_sequence(std::size_t n) const {
  // Zipf popularity over a seeded permutation of users: rank r of the
  // permutation issues ~1/(r+1)^s of the queries. The permutation keeps
  // "hot" decoupled from user id (and therefore from WAL shard).
  Drbg rng = Drbg(config_.seed).fork(to_bytes("scenario-queries"));
  std::vector<std::size_t> perm(num_users());
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = perm.size(); i > 1; --i) {
    const std::size_t j = rng.below(i);
    std::swap(perm[i - 1], perm[j]);
  }
  const std::vector<double> popularity =
      zipf_probs(num_users(), std::max(config_.zipf_exponent, 0.5));
  std::vector<std::size_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(perm[sample_pmf(popularity, rng)]);
  }
  return out;
}

std::uint64_t Workload::digest() const {
  std::uint64_t h = fnv_u64(config_.seed, fnv_u64(num_users(), 1469598103934665603ull));
  h = fnv_u64(config_.cardinality, h);
  h = fnv_u64(config_.num_attributes, h);
  for (std::size_t u = 0; u < num_users(); ++u) {
    for (const AttrValue v : dataset_.profile(u)) h = fnv_u64(v, h);
  }
  for (std::size_t i = 0; i < churners_.size(); ++i) {
    h = fnv_u64(churners_[i], h);
    for (const AttrValue v : churned_[i]) h = fnv_u64(v, h);
  }
  return h;
}

}  // namespace smatch::scenario
