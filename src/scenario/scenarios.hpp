// Closed-loop mixed-scenario driver: replays named workload scenarios
// over the real serving stack (RemoteClient -> SessionClient -> TCP ->
// NetServer event loops -> SmatchService -> sharded engines -> optional
// durable store) and reports throughput, tail latency, shed/retry
// counts, and the measured frequency-analysis attacker advantage —
// bench/scenario_throughput.cpp turns the reports into
// BENCH_scenarios.json, the standing regression surface for scaling
// work.
//
// A scenario is closed-loop: a fixed population of client workers each
// drives its own connection synchronously (enroll -> upload -> churn ->
// query), so offered load follows service rate instead of open-loop
// overrunning it. Six standard scenarios (standard_scenarios()):
//
//   enroll_storm    every user races Keygen+upload through few workers
//   churn_reenroll  a fraction re-enrolls with changed attributes (new
//                   profile key: the old group entry is superseded)
//   hot_query_skew  Zipf-skewed queriers hammer a few hot groups
//   lossy_clients   seeded drop/delay faults under the session retry
//                   machinery; must finish with zero failed requests
//   evicting_store  store-backed engine under a tight memory budget:
//                   cold groups page out and fault back mid-workload
//   checkpoint_under_load  store-backed engine whose background
//                   maintenance plane rotates WAL segments and runs
//                   staggered checkpoints underneath the live workload
//
// Determinism: given a fixed seed, the workload, every protocol byte,
// and the adversary's advantage are identical across runs (per-user
// forked DRBGs make worker scheduling irrelevant); only wall-clock
// numbers move.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "net/fault.hpp"
#include "net/session.hpp"
#include "scenario/adversary.hpp"
#include "scenario/workload.hpp"

namespace smatch::scenario {

/// One named scenario, fully specified.
struct ScenarioSpec {
  std::string name;
  WorkloadConfig workload;

  std::size_t queries = 0;          ///< closed-loop query ops after enroll/churn
  std::size_t connections = 4;      ///< client workers (one connection each)
  std::size_t io_threads = 2;       ///< server event-loop threads
  std::size_t dispatch_workers = 4; ///< server handler threads
  std::size_t top_k = 5;
  std::size_t rsa_bits = 1024;      ///< key-server OPRF modulus

  bool over_tcp = true;             ///< false: in-process transport pair
  bool faulty = false;              ///< inject `faults` on every connection
  FaultSpec faults;
  RetryPolicy policy;

  /// >0 attaches a durable store with this resident-ciphertext budget
  /// (bytes) — small budgets force eviction + query fault-back.
  std::size_t store_budget_bytes = 0;
  /// true attaches a durable store (with or without a budget) running an
  /// aggressive background MaintenancePolicy: segments rotate and
  /// staggered checkpoints compact them underneath the live workload.
  /// When the admin plane is on, /statusz gains a "store maintenance"
  /// section rendered live from the scheduler.
  bool store_maintenance = false;
  std::string store_dir;  ///< required when the store is attached

  /// true: serve the admin plane on an ephemeral port and scrape
  /// /metrics after every phase; the smatch_net_rtt_ns deltas become the
  /// per-phase quantiles in ScenarioResult::phases. No-op (and no admin
  /// surface) under -DSMATCH_OBS=OFF.
  bool admin = false;
  /// >0: arm the slow-request exemplar recorder at this threshold.
  std::uint64_t slow_request_threshold_ns = 0;
  /// Non-empty: after the enroll phase, write "<prefix>.port" with the
  /// admin port and block (bounded) until "<prefix>.go" exists — the
  /// window scripts/ci.sh uses to curl the live server mid-scenario.
  std::string admin_sync_prefix;
};

/// Latency of one scenario phase, measured from the outside: the delta
/// of the server's smatch_net_rtt_ns histogram between two admin-plane
/// /metrics scrapes bracketing the phase.
struct PhaseSample {
  std::string phase;        ///< "enroll" | "churn" | "query"
  std::uint64_t ops = 0;    ///< rtt samples recorded during the phase
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
};

/// What one scenario run measured.
struct ScenarioResult {
  std::string name;
  double elapsed_ms = 0.0;
  double throughput_rps = 0.0;      ///< completed ops / elapsed
  std::uint64_t ops = 0;            ///< enrolls + uploads + churns + queries
  std::uint64_t failed_requests = 0;
  std::uint64_t retries = 0;        ///< session-layer retransmits
  std::uint64_t shed_requests = 0;  ///< server kOverloaded answers (delta)
  std::uint64_t shed_connections = 0;
  std::uint64_t p50_ns = 0;         ///< client-observed per-op latency
  std::uint64_t p99_ns = 0;
  std::uint64_t enrolled = 0;
  std::uint64_t churned = 0;
  std::uint64_t queries_done = 0;
  std::uint64_t entries_verified = 0;  ///< Vf-passed match entries
  std::uint64_t store_evictions = 0;   ///< groups paged out (delta)
  std::uint64_t store_page_ins = 0;    ///< groups faulted back (delta)
  std::uint64_t store_maintenance_cycles = 0;  ///< background cycles run
  std::uint64_t store_segments_gced = 0;       ///< sealed segments compacted away
  std::uint64_t workload_digest = 0;   ///< seed-determined; byte-stable
  AdversaryReport adversary;

  std::vector<PhaseSample> phases;  ///< admin-scraped (empty unless spec.admin)
  std::uint64_t admin_scrapes = 0;  ///< /metrics fetches that succeeded
  /// Every scrape both linted clean and parsed back as a histogram.
  bool admin_scrape_clean = false;
};

/// Runs one scenario end to end over a freshly built stack. Returns the
/// measurements; a Status only for harness-level failures (bind errors,
/// store setup) — per-request failures are counted, not fatal.
[[nodiscard]] StatusOr<ScenarioResult> run_scenario(const ScenarioSpec& spec);

/// The six standard scenarios at a given population scale. `store_root`
/// hosts the evicting_store scenario's directory (a subdirectory is
/// created and must be cleaned by the caller).
[[nodiscard]] std::vector<ScenarioSpec> standard_scenarios(
    std::size_t scale_users, std::uint64_t seed, const std::string& store_root);

}  // namespace smatch::scenario
