// The honest-but-curious wire adversary of the scenario harness: a
// frequency-analysis attacker (Naveed-style ciphertext-frequency
// matching) pointed at the full client -> TCP -> engine pipeline.
//
// fig1_leakage shows the *search-space* story on an isolated OPE table;
// this module extends it to a measured attack on real traffic. The
// adversary records every UploadMessage crossing the wire — exactly the
// fields an eavesdropper sees: user id, group index h(K_up), and the OPE
// chain ciphertext — and, knowing the published attribute distributions
// (they are public deployment config), tries to recover each user's
// attribute values by matching ciphertext multiplicities against value
// probabilities.
//
// What the gate asserts: S-MATCH's entropy-increase mapping draws fresh
// randomness per upload, so equal attribute values produce distinct
// ciphertexts and the multiplicity signal carries nothing — measured
// advantage over blind guessing must stay below a small threshold. The
// report also carries `raw_ope_advantage`: the same attack against a
// strawman that OPE-encrypts raw attribute values deterministically
// (no entropy increase), which under Zipf skew approaches total
// recovery. The gap between the two numbers is fig1's leakage story,
// measured end to end. Note the attack deliberately uses only the
// multiplicity signal — ciphertext *order* leakage is inherent to any
// order-preserving scheme and is the leakage the paper accepts (and
// bounds via per-group keys, Theorem 2).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/bytes.hpp"
#include "core/messages.hpp"
#include "scenario/workload.hpp"

namespace smatch::scenario {

/// Outcome of the frequency attack over one run's observations.
struct AdversaryReport {
  /// max over attributes of (attack accuracy - blind-mode accuracy) on
  /// the real pipeline traffic. ~0 (often negative) when entropy
  /// increase is doing its job.
  double advantage = 0.0;
  /// Same attack against the deterministic no-entropy-increase strawman.
  double raw_ope_advantage = 0.0;
  /// Best per-attribute attack accuracy on the real traffic.
  double attack_accuracy = 0.0;
  /// Accuracy of always guessing the most probable value (the blind
  /// baseline both advantages subtract).
  double blind_accuracy = 0.0;
  std::size_t observations = 0;  // uploads seen (re-uploads included)
  std::size_t users = 0;         // distinct users scored
  std::size_t groups = 0;        // distinct h(K_up) values seen
};

/// Passive wiretap + attack. `observe()` is thread-safe (the driver taps
/// the server dispatcher, which runs handlers concurrently); `report()`
/// is for after the run.
class FrequencyAdversary {
 public:
  /// `attribute_probs` is the published per-attribute distribution table
  /// (ClientConfig::attribute_probs — public deployment data).
  explicit FrequencyAdversary(std::vector<std::vector<double>> attribute_probs);

  /// Records one serialized UploadMessage as seen on the wire. Malformed
  /// bytes are counted but otherwise ignored (an eavesdropper keeps
  /// listening). Re-uploads supersede: the latest observation per user
  /// is what the attack scores, matching the server's semantics.
  void observe(BytesView upload_wire);

  [[nodiscard]] std::size_t observation_count() const;

  /// Runs the frequency attack and scores it against the ground truth.
  /// `truth[user_index]` must be each user's final (post-churn) profile;
  /// user ids on the wire are user_index + 1 (the harness convention).
  [[nodiscard]] AdversaryReport report(
      const std::vector<ProfileVec>& truth) const;

 private:
  struct Seen {
    Bytes key_index;
    BigInt chain_cipher;
  };

  std::vector<std::vector<double>> probs_;
  mutable std::mutex mu_;
  std::map<UserId, Seen> latest_;   // last upload per user (supersedes)
  std::size_t observations_ = 0;
  std::size_t malformed_ = 0;
};

/// The attack core, exposed for tests: given per-user opaque ciphertext
/// tokens (equal tokens = equal ciphertexts) and the true values, match
/// token multiplicities against `probs` ranks and return
/// (attack accuracy, blind accuracy). Tokens tie-break by FNV hash, so
/// an all-distinct multiset carries no usable signal.
[[nodiscard]] std::pair<double, double> frequency_attack(
    const std::vector<Bytes>& tokens, const std::vector<AttrValue>& truth,
    const std::vector<double>& probs);

}  // namespace smatch::scenario
