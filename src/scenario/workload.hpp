// Seeded workload synthesis for the scenario harness (bench/
// scenario_throughput.cpp, tests/scenario_test.cpp).
//
// Every bench before this layer fed the engines small uniform inputs;
// the regimes that actually stress S-MATCH are skewed ones. Real social
// attributes are Zipf-distributed (a handful of landmark values own most
// of the mass), which is exactly where the paper's entropy-increase
// mechanism earns its keep (fig1/fig4a) and where group-size skew leans
// on the sharded group sort and the store's eviction policy.
//
// A Workload is fully determined by its WorkloadConfig: profiles are
// drawn through the datasets layer (quota sampling against a Zipf
// DatasetSpec) from a Drbg forked off `seed`, the churn set and the
// churned replacement profiles come from independent forks, and the
// hot-key query sequence is Zipf over users. Two Workloads generated
// from equal configs are identical member for member — `digest()` is
// the cheap way to assert that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datasets/dataset.hpp"

namespace smatch::scenario {

/// Knobs of one synthetic population. Defaults are smoke-test sized.
struct WorkloadConfig {
  std::string name = "zipf";
  std::size_t num_users = 128;
  std::size_t num_attributes = 4;
  /// Distinct values per attribute (the Zipf support).
  std::size_t cardinality = 32;
  /// Rank-frequency slope s: P(rank r) ~ 1/r^s. 0 = uniform.
  double zipf_exponent = 1.0;
  /// Fraction of users that later re-enroll with changed attributes.
  double churn_fraction = 0.0;
  std::uint64_t seed = 1;
};

/// Normalized Zipf probability mass: probs[r] ~ 1/(r+1)^s, summing to 1.
[[nodiscard]] std::vector<double> zipf_probs(std::size_t n, double s);

/// A DatasetSpec whose every attribute is Zipf(cardinality, exponent).
[[nodiscard]] DatasetSpec zipf_spec(const WorkloadConfig& config);

class Workload {
 public:
  /// Deterministic: equal configs produce identical workloads.
  [[nodiscard]] static Workload generate(const WorkloadConfig& config);

  [[nodiscard]] const WorkloadConfig& config() const { return config_; }
  [[nodiscard]] const DatasetSpec& spec() const { return dataset_.spec(); }
  [[nodiscard]] const Dataset& dataset() const { return dataset_; }
  [[nodiscard]] std::size_t num_users() const { return dataset_.num_users(); }
  [[nodiscard]] const ProfileVec& profile(std::size_t user) const {
    return dataset_.profile(user);
  }

  /// User indices that churn (floor(churn_fraction * num_users) of them),
  /// in ascending order.
  [[nodiscard]] const std::vector<std::size_t>& churners() const { return churners_; }
  /// Replacement profile of a churner. At least one attribute lands in a
  /// different fuzzy-quantization cell of width `quant_width`, so the
  /// re-enrolled user derives a different profile key (their old group
  /// entry must be superseded, not joined).
  [[nodiscard]] const ProfileVec& churned_profile(std::size_t user) const;
  [[nodiscard]] bool is_churner(std::size_t user) const;

  /// The user's profile after all churn has been applied.
  [[nodiscard]] const ProfileVec& final_profile(std::size_t user) const {
    return is_churner(user) ? churned_profile(user) : profile(user);
  }

  /// `n` querier indices with hot-key skew: user popularity is Zipf with
  /// the config exponent over a seeded permutation of users, so a few
  /// users (and therefore a few h(K_up) groups) absorb most queries.
  [[nodiscard]] std::vector<std::size_t> query_sequence(std::size_t n) const;

  /// FNV-1a over every profile, churn replacement, and config knob —
  /// equal digests mean byte-identical workloads.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  Workload(WorkloadConfig config, Dataset dataset);

  WorkloadConfig config_;
  Dataset dataset_;
  std::vector<std::size_t> churners_;              // ascending user indices
  std::vector<ProfileVec> churned_;                // parallel to churners_
  std::vector<std::size_t> churn_slot_;            // user -> churners_ index or npos
};

/// FNV-1a 64-bit over a byte span; the harness's digest primitive.
[[nodiscard]] std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n,
                                  std::uint64_t h = 1469598103934665603ull);

}  // namespace smatch::scenario
