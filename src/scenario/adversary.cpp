#include "scenario/adversary.hpp"

#include <algorithm>
#include <utility>

#include "crypto/drbg.hpp"
#include "ope/ope.hpp"

namespace smatch::scenario {
namespace {

/// Number of bits needed to hold values in [0, cardinality).
std::size_t bits_for(std::size_t cardinality) {
  std::size_t bits = 1;
  while ((1ull << bits) < cardinality) ++bits;
  return bits;
}

/// Value indices ranked by probability, descending (index ascending on
/// ties) — the attacker's guess order.
std::vector<std::size_t> rank_by_prob(const std::vector<double>& probs) {
  std::vector<std::size_t> rank(probs.size());
  for (std::size_t i = 0; i < rank.size(); ++i) rank[i] = i;
  std::stable_sort(rank.begin(), rank.end(),
                   [&](std::size_t a, std::size_t b) { return probs[a] > probs[b]; });
  return rank;
}

}  // namespace

std::pair<double, double> frequency_attack(const std::vector<Bytes>& tokens,
                                           const std::vector<AttrValue>& truth,
                                           const std::vector<double>& probs) {
  if (tokens.empty() || tokens.size() != truth.size() || probs.empty()) {
    return {0.0, 0.0};
  }

  // Multiplicity of each distinct ciphertext token.
  std::map<Bytes, std::size_t> counts;
  for (const Bytes& t : tokens) ++counts[t];

  // Attacker's ciphertext ranking: multiplicity descending. Ties carry no
  // frequency information, so they are broken by the token's FNV hash —
  // a stand-in for "the attacker has no better signal than a coin". (An
  // order-based tie-break would smuggle in the OPE order leakage, which
  // is a different, accepted channel — see the header comment.)
  struct Ranked {
    const Bytes* token;
    std::size_t count;
    std::uint64_t hash;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(counts.size());
  for (const auto& [token, count] : counts) {
    ranked.push_back({&token, count, fnv1a(token.data(), token.size())});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.hash < b.hash;
  });

  // Frequency matching: ciphertext rank r guesses the value of
  // probability rank r (tail ranks all guess the least probable value).
  const std::vector<std::size_t> value_rank = rank_by_prob(probs);
  std::map<Bytes, AttrValue> guess;
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    const std::size_t vr = std::min(r, value_rank.size() - 1);
    guess[*ranked[r].token] = static_cast<AttrValue>(value_rank[vr]);
  }

  const auto blind_guess = static_cast<AttrValue>(value_rank.front());
  std::size_t hit = 0, blind_hit = 0;
  for (std::size_t u = 0; u < tokens.size(); ++u) {
    if (guess.at(tokens[u]) == truth[u]) ++hit;
    if (truth[u] == blind_guess) ++blind_hit;
  }
  const auto n = static_cast<double>(tokens.size());
  return {static_cast<double>(hit) / n, static_cast<double>(blind_hit) / n};
}

FrequencyAdversary::FrequencyAdversary(std::vector<std::vector<double>> attribute_probs)
    : probs_(std::move(attribute_probs)) {}

void FrequencyAdversary::observe(BytesView upload_wire) {
  StatusOr<UploadMessage> upload = UploadMessage::parse(upload_wire);
  std::lock_guard lock(mu_);
  ++observations_;
  if (!upload.is_ok()) {
    ++malformed_;
    return;
  }
  latest_[upload->user_id] = Seen{upload->key_index, upload->chain_cipher};
}

std::size_t FrequencyAdversary::observation_count() const {
  std::lock_guard lock(mu_);
  return observations_;
}

AdversaryReport FrequencyAdversary::report(const std::vector<ProfileVec>& truth) const {
  std::map<UserId, Seen> latest;
  AdversaryReport rep;
  {
    std::lock_guard lock(mu_);
    latest = latest_;
    rep.observations = observations_;
  }

  // Scoreable users: observed on the wire AND present in the truth table.
  std::vector<std::size_t> users;        // truth indices
  std::vector<Bytes> ciphertexts;        // their latest chain ciphertext
  std::map<Bytes, std::size_t> groups;   // h(K_up) -> group ordinal
  std::vector<std::size_t> group_of;     // per scored user
  for (const auto& [id, seen] : latest) {
    const std::size_t idx = static_cast<std::size_t>(id) - 1;
    if (id == 0 || idx >= truth.size()) continue;
    users.push_back(idx);
    ciphertexts.push_back(seen.chain_cipher.to_bytes());
    group_of.push_back(groups.emplace(seen.key_index, groups.size()).first->second);
  }
  rep.users = users.size();
  rep.groups = groups.size();
  if (users.empty() || probs_.empty()) return rep;

  // The strawman the raw advantage is measured against: raw attribute
  // values OPE-encrypted deterministically (no entropy increase), one
  // fixed key per attribute. Equal values collide, so multiplicities
  // mirror the published distribution — the pre-S-MATCH world of fig1.
  const std::size_t cardinality = probs_.front().size();
  const std::size_t pt_bits = bits_for(cardinality);
  double best_adv = -1.0, best_raw = -1.0;
  for (std::size_t a = 0; a < probs_.size(); ++a) {
    std::vector<AttrValue> attr_truth;
    attr_truth.reserve(users.size());
    for (const std::size_t u : users) attr_truth.push_back(truth[u][a]);

    const auto [acc, blind] = frequency_attack(ciphertexts, attr_truth, probs_[a]);
    if (acc - blind > best_adv) {
      best_adv = acc - blind;
      rep.attack_accuracy = acc;
      rep.blind_accuracy = blind;
    }

    Drbg key_rng(0x5ca1ab1eull + a);
    const Ope raw_ope(key_rng.bytes(32), pt_bits, pt_bits + 16);
    std::vector<Bytes> raw_cts;
    raw_cts.reserve(users.size());
    for (const AttrValue v : attr_truth) {
      raw_cts.push_back(raw_ope.encrypt(BigInt{v}).to_bytes());
    }
    const auto [raw_acc, raw_blind] = frequency_attack(raw_cts, attr_truth, probs_[a]);
    best_raw = std::max(best_raw, raw_acc - raw_blind);
  }
  rep.advantage = best_adv;
  rep.raw_ope_advantage = best_raw;
  return rep;
}

}  // namespace smatch::scenario
