// homoPM: the homomorphic-encryption profile-matching baseline
// (representative of Zhang et al., "Fine-grained private matching for
// proximity-based mobile social networking", INFOCOM 2012 — the scheme
// the paper benchmarks S-MATCH against in Figs. 4c-e / 5a-c).
//
// Shape of the protocol (squared-Euclidean fine-grained matching):
//   querier u:  Paillier-encrypts E(-2a_1)...E(-2a_d), E(sum a_i^2)
//   per candidate v: E(dist_v) = E(sum a^2) * prod_i E(-2a_i)^{b_i}
//                                 * g^{sum b_i^2}        (+ blinding)
//   querier:    decrypts blinded distances, ranks, takes top-k.
//
// Cost structure matches the paper's analysis: the client pays d+1
// Paillier encryptions (two big modular exponentiations each), the server
// pays O(d) modular exponentiations/multiplications *per candidate user*
// online, and nothing is verifiable. In ZZS12 the per-candidate work is
// done by the candidates themselves; this single-process reproduction
// executes the same operations in the server role, which preserves the
// measured computation and communication costs (DESIGN.md substitution #5).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/bytes.hpp"
#include "common/random.hpp"
#include "core/types.hpp"
#include "paillier/paillier.hpp"

namespace smatch {

struct HomoPmParams {
  /// Per-attribute plaintext size in bits (the Fig. 4/5 x-axis).
  std::size_t plaintext_bits = 64;

  /// Paillier modulus: must hold squared distances plus blinding.
  [[nodiscard]] std::size_t modulus_bits() const {
    const std::size_t needed = 2 * plaintext_bits + 96;
    return needed < 1024 ? 1024 : needed;
  }
};

/// The querier's encrypted matching request.
struct HomoPmQuery {
  PaillierPublicKey pk;
  std::vector<BigInt> enc_neg_2a;  // E(-2 a_i), i = 1..d
  BigInt enc_sum_a_sq;             // E(sum a_i^2)

  /// Wire size in bytes (pk modulus + d+1 ciphertexts of 2*|n| bits).
  [[nodiscard]] std::size_t wire_bytes(const HomoPmParams& params) const;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static HomoPmQuery parse(BytesView data);
};

/// One blinded encrypted distance per candidate.
struct HomoPmResponse {
  std::vector<std::pair<UserId, BigInt>> enc_distances;

  [[nodiscard]] std::size_t wire_bytes(const HomoPmParams& params) const;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static HomoPmResponse parse(BytesView data);
};

class HomoPmQuerier {
 public:
  /// Generates a fresh Paillier key pair (expensive; reuse across queries
  /// via the caching constructor below for benchmarks).
  HomoPmQuerier(Profile profile, HomoPmParams params, RandomSource& rng);
  HomoPmQuerier(Profile profile, HomoPmParams params, PaillierKeyPair keys);

  /// Client online cost: d+1 Paillier encryptions. Attribute values are
  /// lifted into the scheme's plaintext width (the evaluation scales
  /// values to k-bit strings just as S-MATCH's entropy increase does).
  [[nodiscard]] HomoPmQuery make_query(RandomSource& rng) const;

  /// Decrypts blinded distances and returns the k smallest (top-k match).
  [[nodiscard]] std::vector<UserId> rank(const HomoPmResponse& response, std::size_t k) const;

  [[nodiscard]] const HomoPmParams& params() const { return params_; }

 private:
  [[nodiscard]] BigInt lift(AttrValue v) const;

  Profile profile_;
  HomoPmParams params_;
  PaillierKeyPair keys_;
};

class HomoPmServer {
 public:
  explicit HomoPmServer(HomoPmParams params) : params_(params) {}

  void ingest(UserId id, Profile profile);

  /// Server online cost: per candidate, d ciphertext exponentiations
  /// (mul_plain), d multiplications, plus blinding. Returns one blinded
  /// E(dist) per stored user except the querier.
  [[nodiscard]] HomoPmResponse evaluate(UserId querier, const HomoPmQuery& query,
                                        RandomSource& rng) const;

  [[nodiscard]] std::size_t num_users() const { return profiles_.size(); }
  /// Cumulative modular operations performed (the paper's server metric).
  [[nodiscard]] std::uint64_t modular_ops() const { return modular_ops_; }

 private:
  [[nodiscard]] BigInt lift(AttrValue v) const;

  HomoPmParams params_;
  std::map<UserId, Profile> profiles_;
  mutable std::uint64_t modular_ops_ = 0;
};

}  // namespace smatch
