// Two-party symmetric-encryption matching — representative of ZLL13
// (Zhang, Li, Liu: "Message in a sealed bottle", ICDCS'13), the other
// SE-based verifiable scheme in paper Table I.
//
// Each *pair* of users runs its own session:
//   1. Diffie-Hellman agreement -> pairwise key k_uv;
//   2. both sides OPE-encrypt their profile chain under k_uv and exchange
//      ciphertext + HMAC tag (verifiability);
//   3. either side compares the order-preserving ciphertexts to decide
//      whether the profiles are within the match threshold.
//
// Fine-grained and verifiable — but every pair needs a fresh session, so
// matching against N users costs O(N) sessions per querier and O(N^2)
// system-wide: the "large communication cost when extended to a profile
// matching scheme in large scale" the paper criticises (Section II). The
// related-work bench quantifies this against S-MATCH's O(N) uploads.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "bigint/bigint.hpp"
#include "common/bytes.hpp"
#include "common/random.hpp"
#include "core/types.hpp"
#include "group/modp_group.hpp"

namespace smatch {

/// One message of a pairwise session.
struct PairwiseMessage {
  BigInt chain_cipher;  // OPE_{k_uv}(chain)
  Bytes tag;            // HMAC-SHA256(k_uv, ciphertext)

  /// Serialized size given the session's chain width and group.
  [[nodiscard]] static std::size_t wire_bytes(std::size_t chain_bits);
};

class PairwiseUser {
 public:
  /// `attribute_bits` is the per-attribute chain width.
  PairwiseUser(UserId id, Profile profile, std::shared_ptr<const ModpGroup> group,
               std::size_t attribute_bits, RandomSource& rng);

  [[nodiscard]] UserId id() const { return id_; }
  /// The DH public element g^x shipped once per session.
  [[nodiscard]] const BigInt& dh_public() const { return dh_public_; }

  /// Builds this side's session message for the peer.
  [[nodiscard]] PairwiseMessage make_message(const BigInt& peer_public) const;

  /// Outcome of evaluating the peer's message.
  struct Outcome {
    bool verified = false;  // HMAC tag checked out
    BigInt cipher_gap;      // |own ct - peer ct| (order-preserving proxy)
    bool matched = false;   // gap within the session threshold
  };

  /// Verifies and compares. `max_chain_gap` is the plaintext-side match
  /// threshold (applied in ciphertext space via decryption with the
  /// shared key — both sides hold k_uv, the two-party trust model).
  [[nodiscard]] Outcome evaluate(const BigInt& peer_public, const PairwiseMessage& msg,
                                 const BigInt& max_chain_gap) const;

  /// Total bytes a full session costs (2 DH elements + 2 messages).
  [[nodiscard]] std::size_t session_bytes() const;

 private:
  [[nodiscard]] Bytes pairwise_key(const BigInt& peer_public) const;
  [[nodiscard]] BigInt own_chain() const;

  UserId id_;
  Profile profile_;
  std::shared_ptr<const ModpGroup> group_;
  std::size_t attribute_bits_;
  BigInt dh_secret_;
  BigInt dh_public_;
};

}  // namespace smatch
