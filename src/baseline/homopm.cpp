#include "baseline/homopm.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/serde.hpp"

namespace smatch {
namespace {

// Attribute values are 32-bit; the evaluation represents them as k-bit
// strings. Lifting shifts the value into the top of the k-bit window so
// that costs (and ciphertext magnitudes) reflect k-bit plaintexts.
BigInt lift_value(AttrValue v, std::size_t plaintext_bits) {
  BigInt x{static_cast<std::uint64_t>(v)};
  if (plaintext_bits > 32) x <<= plaintext_bits - 32;
  return x;
}

}  // namespace

std::size_t HomoPmQuery::wire_bytes(const HomoPmParams& params) const {
  const std::size_t n_bytes = (params.modulus_bits() + 7) / 8;
  return n_bytes + (enc_neg_2a.size() + 1) * 2 * n_bytes;
}

std::size_t HomoPmResponse::wire_bytes(const HomoPmParams& params) const {
  const std::size_t n_bytes = (params.modulus_bits() + 7) / 8;
  return enc_distances.size() * (4 + 2 * n_bytes);
}

Bytes HomoPmQuery::serialize() const {
  Writer w;
  w.var_bytes(pk.n.to_bytes());
  w.u32(static_cast<std::uint32_t>(enc_neg_2a.size()));
  for (const auto& c : enc_neg_2a) w.var_bytes(c.to_bytes());
  w.var_bytes(enc_sum_a_sq.to_bytes());
  return w.take();
}

HomoPmQuery HomoPmQuery::parse(BytesView data) {
  Reader r(data);
  HomoPmQuery q;
  q.pk.n = BigInt::from_bytes(r.var_bytes());
  q.pk.n_sq = q.pk.n * q.pk.n;
  const std::uint32_t count = r.u32();
  if (count > r.remaining() / 4 + 1) throw SerdeError("homoPM: ciphertext count exceeds message");
  q.enc_neg_2a.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    q.enc_neg_2a.push_back(BigInt::from_bytes(r.var_bytes()));
  }
  q.enc_sum_a_sq = BigInt::from_bytes(r.var_bytes());
  r.finish();
  return q;
}

Bytes HomoPmResponse::serialize() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(enc_distances.size()));
  for (const auto& [id, enc] : enc_distances) {
    w.u32(id);
    w.var_bytes(enc.to_bytes());
  }
  return w.take();
}

HomoPmResponse HomoPmResponse::parse(BytesView data) {
  Reader r(data);
  HomoPmResponse resp;
  const std::uint32_t count = r.u32();
  if (count > r.remaining() / 8 + 1) throw SerdeError("homoPM: entry count exceeds message");
  resp.enc_distances.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const UserId id = r.u32();
    resp.enc_distances.emplace_back(id, BigInt::from_bytes(r.var_bytes()));
  }
  r.finish();
  return resp;
}

HomoPmQuerier::HomoPmQuerier(Profile profile, HomoPmParams params, RandomSource& rng)
    : HomoPmQuerier(std::move(profile), params,
                    PaillierKeyPair::generate(rng, params.modulus_bits())) {}

HomoPmQuerier::HomoPmQuerier(Profile profile, HomoPmParams params, PaillierKeyPair keys)
    : profile_(std::move(profile)), params_(params), keys_(std::move(keys)) {}

BigInt HomoPmQuerier::lift(AttrValue v) const { return lift_value(v, params_.plaintext_bits); }

HomoPmQuery HomoPmQuerier::make_query(RandomSource& rng) const {
  const PaillierPublicKey& pk = keys_.public_key();
  HomoPmQuery q;
  q.pk = pk;
  q.enc_neg_2a.reserve(profile_.size());
  BigInt sum_sq;
  for (AttrValue a : profile_) {
    const BigInt av = lift(a);
    // -2a encoded mod n.
    const BigInt neg_2a = (pk.n - ((av << 1) % pk.n)) % pk.n;
    q.enc_neg_2a.push_back(pk.encrypt(neg_2a, rng));
    sum_sq += av * av;
  }
  q.enc_sum_a_sq = pk.encrypt(sum_sq % pk.n, rng);
  return q;
}

std::vector<UserId> HomoPmQuerier::rank(const HomoPmResponse& response, std::size_t k) const {
  std::vector<std::pair<BigInt, UserId>> dists;
  dists.reserve(response.enc_distances.size());
  for (const auto& [id, enc] : response.enc_distances) {
    dists.emplace_back(keys_.decrypt(enc), id);
  }
  std::sort(dists.begin(), dists.end());
  std::vector<UserId> out;
  out.reserve(std::min(k, dists.size()));
  for (std::size_t i = 0; i < dists.size() && i < k; ++i) out.push_back(dists[i].second);
  return out;
}

void HomoPmServer::ingest(UserId id, Profile profile) {
  profiles_[id] = std::move(profile);
}

BigInt HomoPmServer::lift(AttrValue v) const { return lift_value(v, params_.plaintext_bits); }

HomoPmResponse HomoPmServer::evaluate(UserId querier, const HomoPmQuery& query,
                                      RandomSource& rng) const {
  const PaillierPublicKey& pk = query.pk;
  // One rank-preserving blinding offset per query.
  const BigInt delta = BigInt::random_below(rng, pk.n >> 2);

  HomoPmResponse resp;
  for (const auto& [id, profile] : profiles_) {
    if (id == querier) continue;
    if (profile.size() != query.enc_neg_2a.size()) {
      throw ProtocolError("homoPM: profile arity mismatch");
    }
    // E(dist) = E(sum a^2) * prod E(-2a_i)^{b_i} * g^{sum b_i^2}.
    BigInt acc = query.enc_sum_a_sq;
    BigInt sum_b_sq;
    for (std::size_t i = 0; i < profile.size(); ++i) {
      const BigInt bv = lift(profile[i]);
      acc = pk.add(acc, pk.mul_plain(query.enc_neg_2a[i], bv));
      sum_b_sq += bv * bv;
      modular_ops_ += 2;  // one ciphertext exponentiation + one multiplication
    }
    acc = pk.add_plain(acc, sum_b_sq % pk.n);
    acc = pk.add_plain(acc, delta);
    modular_ops_ += 2;
    resp.enc_distances.emplace_back(id, std::move(acc));
  }
  return resp;
}

}  // namespace smatch
