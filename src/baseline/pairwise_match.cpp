#include "baseline/pairwise_match.hpp"

#include "common/error.hpp"
#include "crypto/hmac.hpp"
#include "ope/ope.hpp"

namespace smatch {
namespace {

constexpr std::size_t kOpeSlackBits = 32;

}  // namespace

std::size_t PairwiseMessage::wire_bytes(std::size_t chain_bits) {
  return (chain_bits + kOpeSlackBits + 7) / 8 + 32 /*tag*/;
}

PairwiseUser::PairwiseUser(UserId id, Profile profile,
                           std::shared_ptr<const ModpGroup> group,
                           std::size_t attribute_bits, RandomSource& rng)
    : id_(id),
      profile_(std::move(profile)),
      group_(std::move(group)),
      attribute_bits_(attribute_bits) {
  if (!group_) throw Error("PairwiseUser: null group");
  if (profile_.empty()) throw Error("PairwiseUser: empty profile");
  for (AttrValue v : profile_) {
    if (BigInt{static_cast<std::uint64_t>(v)}.bit_length() > attribute_bits_) {
      throw Error("PairwiseUser: attribute exceeds chain width");
    }
  }
  dh_secret_ = group_->random_exponent(rng);
  dh_public_ = group_->pow_g(dh_secret_);
}

Bytes PairwiseUser::pairwise_key(const BigInt& peer_public) const {
  if (!group_->contains(peer_public)) {
    throw Error("PairwiseUser: peer public element not in group");
  }
  const BigInt shared = group_->pow(peer_public, dh_secret_);
  return hkdf(shared.to_bytes_padded(group_->element_bytes()),
              to_bytes("zll13-pairwise-salt"), to_bytes("zll13-session-key"), 32);
}

BigInt PairwiseUser::own_chain() const {
  // Plain big-endian concatenation of attribute values: the two parties
  // share the session key, so no population-statistics mapping is needed.
  BigInt chain;
  for (AttrValue v : profile_) {
    if (BigInt{static_cast<std::uint64_t>(v)}.bit_length() > attribute_bits_) {
      throw Error("PairwiseUser: attribute exceeds chain width");
    }
    chain <<= attribute_bits_;
    chain += BigInt{static_cast<std::uint64_t>(v)};
  }
  return chain;
}

PairwiseMessage PairwiseUser::make_message(const BigInt& peer_public) const {
  const Bytes key = pairwise_key(peer_public);
  const std::size_t chain_bits = attribute_bits_ * profile_.size();
  const Ope ope(key, chain_bits, chain_bits + kOpeSlackBits);
  PairwiseMessage msg;
  msg.chain_cipher = ope.encrypt(own_chain());
  msg.tag = hmac_sha256(key, msg.chain_cipher.to_bytes());
  return msg;
}

PairwiseUser::Outcome PairwiseUser::evaluate(const BigInt& peer_public,
                                             const PairwiseMessage& msg,
                                             const BigInt& max_chain_gap) const {
  Outcome out;
  const Bytes key = pairwise_key(peer_public);
  if (!ct_equal(hmac_sha256(key, msg.chain_cipher.to_bytes()), msg.tag)) {
    return out;  // forged or corrupted: unverified, no match claim
  }
  out.verified = true;

  const std::size_t chain_bits = attribute_bits_ * profile_.size();
  const Ope ope(key, chain_bits, chain_bits + kOpeSlackBits);
  const BigInt own_ct = ope.encrypt(own_chain());
  out.cipher_gap = (own_ct - msg.chain_cipher).abs();

  // Both parties hold k_uv (the two-party trust model), so the exact
  // plaintext gap is available for the threshold decision.
  try {
    const BigInt peer_chain = ope.decrypt(msg.chain_cipher);
    out.matched = (peer_chain - own_chain()).abs() <= max_chain_gap;
  } catch (const CryptoError&) {
    out.verified = false;  // tag matched but ciphertext invalid: reject
  }
  return out;
}

std::size_t PairwiseUser::session_bytes() const {
  const std::size_t chain_bits = attribute_bits_ * profile_.size();
  return 2 * group_->element_bytes() + 2 * PairwiseMessage::wire_bytes(chain_bits);
}

}  // namespace smatch
