// PSI-based attribute-level matching — representative of FindU (Li et
// al., INFOCOM'11) and the other Private-Set-Intersection schemes in
// paper Table I.
//
// Classic DH-commutative PSI: party A sends {H(x)^a} for its attribute
// set, B replies with {H(x)^{ab}} and its own {H(y)^b}; A raises the
// latter to a and intersects. Neither side learns non-common elements.
//
// The scheme matches on attribute-set overlap only: it "cannot
// differentiate users with different attribute values" (paper Section II)
// — users with numerically close but unequal values score zero. The
// tests and the related-work bench demonstrate exactly that limitation
// against S-MATCH's fine-grained matching.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "bigint/bigint.hpp"
#include "common/bytes.hpp"
#include "common/random.hpp"
#include "group/modp_group.hpp"

namespace smatch {

/// One party's attribute set, e.g. {"interest:jazz", "city:atlanta"}.
using AttributeSet = std::set<std::string>;

/// A PSI participant. Protocol (A = initiator, B = responder):
///   A -> B : round1 = { H(x)^a }            (PsiParty::round1)
///   B -> A : { H(x)^{ab} }, round1_B        (respond + round1)
///   A      : intersects H(y)^{ab} values    (intersect)
class PsiParty {
 public:
  PsiParty(AttributeSet attributes, const ModpGroup& group, RandomSource& rng);

  /// This party's blinded set {H(x)^secret}, shuffled.
  [[nodiscard]] std::vector<BigInt> round1(RandomSource& rng) const;

  /// Applies this party's secret exponent to the peer's blinded set.
  [[nodiscard]] std::vector<BigInt> respond(const std::vector<BigInt>& peer_round1) const;

  /// Final step: `own_doubly` are this party's round1 elements after the
  /// peer's respond(); `peer_doubly` are the peer's round1 elements after
  /// this party's respond(). Returns the intersection cardinality.
  [[nodiscard]] static std::size_t intersect(const std::vector<BigInt>& own_doubly,
                                             const std::vector<BigInt>& peer_doubly);

  [[nodiscard]] std::size_t set_size() const { return hashed_.size(); }

  /// Wire size of one blinded set (elements are group-element sized).
  [[nodiscard]] std::size_t message_bytes() const;

 private:
  const ModpGroup* group_;
  BigInt secret_;
  std::vector<BigInt> hashed_;  // H(x) for each attribute, deduplicated
};

/// Convenience: full two-party run, returning |A ∩ B|.
[[nodiscard]] std::size_t psi_intersection(const AttributeSet& a, const AttributeSet& b,
                                           const ModpGroup& group, RandomSource& rng);

/// Converts a numeric profile into the attribute-level set encoding PSI
/// schemes use ("attr<i>=<value>") — equality-only semantics.
[[nodiscard]] AttributeSet profile_to_set(const std::vector<std::uint32_t>& profile);

}  // namespace smatch
