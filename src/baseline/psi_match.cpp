#include "baseline/psi_match.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha2.hpp"

namespace smatch {
namespace {

// Hash-to-group: H(x) = seed^2 mod p lands in the QR subgroup, where the
// DDH-style blinding argument lives.
BigInt hash_to_group(const std::string& element, const ModpGroup& group) {
  const std::size_t width = (group.p().bit_length() + 7) / 8 + 16;
  const Bytes wide = hkdf_expand(Sha256::hash(to_bytes(element)),
                                 to_bytes("smatch-psi-h2g"), width);
  const BigInt seed = BigInt::from_bytes(wide).mod(group.p() - BigInt{3}) + BigInt{2};
  return BigInt::mul_mod(seed, seed, group.p());
}

}  // namespace

PsiParty::PsiParty(AttributeSet attributes, const ModpGroup& group, RandomSource& rng)
    : group_(&group), secret_(group.random_exponent(rng)) {
  if (attributes.empty()) throw Error("PSI: empty attribute set");
  hashed_.reserve(attributes.size());
  for (const auto& attr : attributes) {
    hashed_.push_back(hash_to_group(attr, group));
  }
}

std::vector<BigInt> PsiParty::round1(RandomSource& rng) const {
  std::vector<BigInt> out;
  out.reserve(hashed_.size());
  for (const auto& h : hashed_) out.push_back(group_->pow(h, secret_));
  // Shuffle so positions leak nothing about which attribute is which.
  for (std::size_t i = out.size(); i > 1; --i) {
    std::swap(out[i - 1], out[rng.below(i)]);
  }
  return out;
}

std::vector<BigInt> PsiParty::respond(const std::vector<BigInt>& peer_round1) const {
  std::vector<BigInt> out;
  out.reserve(peer_round1.size());
  for (const auto& e : peer_round1) {
    if (e <= BigInt{1} || e >= group_->p()) throw Error("PSI: element out of group");
    out.push_back(group_->pow(e, secret_));
  }
  return out;
}

std::size_t PsiParty::intersect(const std::vector<BigInt>& own_doubly,
                                const std::vector<BigInt>& peer_doubly) {
  std::size_t count = 0;
  for (const auto& mine : own_doubly) {
    if (std::find(peer_doubly.begin(), peer_doubly.end(), mine) != peer_doubly.end()) {
      ++count;
    }
  }
  return count;
}

std::size_t PsiParty::message_bytes() const {
  return hashed_.size() * group_->element_bytes();
}

std::size_t psi_intersection(const AttributeSet& a, const AttributeSet& b,
                             const ModpGroup& group, RandomSource& rng) {
  PsiParty alice(a, group, rng);
  PsiParty bob(b, group, rng);
  const auto a1 = alice.round1(rng);       // A -> B
  const auto b1 = bob.round1(rng);         // B -> A
  const auto a_doubly = bob.respond(a1);   // B -> A: {H(x)^{ab}}
  const auto b_doubly = alice.respond(b1); // A computes {H(y)^{ba}}
  return PsiParty::intersect(a_doubly, b_doubly);
}

AttributeSet profile_to_set(const std::vector<std::uint32_t>& profile) {
  AttributeSet out;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    out.insert("attr" + std::to_string(i) + "=" + std::to_string(profile[i]));
  }
  return out;
}

}  // namespace smatch
