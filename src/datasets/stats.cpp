#include "datasets/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace smatch {

AttributeStats analyze_attribute(const Dataset& ds, std::size_t attr_index) {
  if (attr_index >= ds.num_attributes()) throw Error("analyze_attribute: index out of range");
  std::map<AttrValue, std::size_t> counts;
  for (const auto& p : ds.profiles()) ++counts[p[attr_index]];

  AttributeStats stats;
  const auto total = static_cast<double>(ds.num_users());
  for (const auto& [value, count] : counts) {
    const double p = static_cast<double>(count) / total;
    stats.freqs[value] = p;
    stats.entropy -= p * std::log2(p);
    stats.top_prob = std::max(stats.top_prob, p);
  }
  stats.distinct_values = counts.size();
  return stats;
}

DatasetStats analyze_dataset(const Dataset& ds) {
  DatasetStats stats;
  stats.attributes.reserve(ds.num_attributes());
  for (std::size_t a = 0; a < ds.num_attributes(); ++a) {
    stats.attributes.push_back(analyze_attribute(ds, a));
  }
  if (stats.attributes.empty()) return stats;
  stats.min_entropy = stats.attributes.front().entropy;
  for (const auto& a : stats.attributes) {
    stats.avg_entropy += a.entropy;
    stats.max_entropy = std::max(stats.max_entropy, a.entropy);
    stats.min_entropy = std::min(stats.min_entropy, a.entropy);
  }
  stats.avg_entropy /= static_cast<double>(stats.attributes.size());
  return stats;
}

std::size_t DatasetStats::landmark_count(double tau) const {
  return static_cast<std::size_t>(
      std::count_if(attributes.begin(), attributes.end(),
                    [tau](const AttributeStats& a) { return a.is_landmark(tau); }));
}

double sample_entropy(const std::vector<std::uint64_t>& values) {
  if (values.empty()) return 0.0;
  std::map<std::uint64_t, std::size_t> counts;
  for (std::uint64_t v : values) ++counts[v];
  double h = 0.0;
  const auto total = static_cast<double>(values.size());
  for (const auto& [value, count] : counts) {
    const double p = static_cast<double>(count) / total;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace smatch
