// Dataset entropy and landmark analysis (paper Section IV-C, Table II).
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "datasets/dataset.hpp"

namespace smatch {

/// Empirical statistics of one attribute column.
struct AttributeStats {
  /// Empirical value frequencies T_i / U.
  std::map<AttrValue, double> freqs;
  /// Shannon entropy H(A_l) = -sum (T_i/U) lg (T_i/U)  (Eq. 1).
  double entropy = 0.0;
  /// Largest single-value probability.
  double top_prob = 0.0;
  std::size_t distinct_values = 0;

  /// Landmark attribute per Definition 2: some value's probability
  /// exceeds tau.
  [[nodiscard]] bool is_landmark(double tau) const { return top_prob > tau; }
};

/// Statistics across a whole dataset (one Table II row).
struct DatasetStats {
  std::vector<AttributeStats> attributes;
  double avg_entropy = 0.0;
  double max_entropy = 0.0;
  double min_entropy = 0.0;

  [[nodiscard]] std::size_t landmark_count(double tau) const;
};

/// Analyzes one attribute column (values of every user for attribute a).
[[nodiscard]] AttributeStats analyze_attribute(const Dataset& ds, std::size_t attr_index);

/// Full Table II row for a dataset.
[[nodiscard]] DatasetStats analyze_dataset(const Dataset& ds);

/// Shannon entropy (bits) of an arbitrary empirical sample of values.
[[nodiscard]] double sample_entropy(const std::vector<std::uint64_t>& values);

}  // namespace smatch
