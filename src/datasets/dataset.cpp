#include "datasets/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace smatch {
namespace {

// Fisher-Yates shuffle driven by the injected RandomSource.
template <typename T>
void shuffle(std::vector<T>& v, RandomSource& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = rng.below(i);
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace

AttributeSpec AttributeSpec::landmark(std::string name, double target_entropy,
                                      double top_prob) {
  if (top_prob <= 0.0 || top_prob >= 1.0) {
    throw Error("AttributeSpec: top_prob must be in (0,1)");
  }
  // Solve for a uniform tail q = (1-p0)/(n-1) such that
  // H = -p0 lg p0 - (1-p0) lg q equals target_entropy.
  const double p0 = top_prob;
  const double head = -p0 * std::log2(p0);
  const double tail_entropy = target_entropy - head;
  if (tail_entropy <= 0.0) {
    throw Error("AttributeSpec: entropy target unreachable with this top_prob");
  }
  const double lg_inv_q = tail_entropy / (1.0 - p0);
  const double q = std::exp2(-lg_inv_q);
  const auto tail_values = static_cast<std::size_t>(
      std::max(1.0, std::round((1.0 - p0) / q)));

  AttributeSpec spec;
  spec.name = std::move(name);
  spec.probs.push_back(p0);
  for (std::size_t i = 0; i < tail_values; ++i) {
    spec.probs.push_back((1.0 - p0) / static_cast<double>(tail_values));
  }
  return spec;
}

AttributeSpec AttributeSpec::uniform(std::string name, double target_entropy) {
  const auto n = static_cast<std::size_t>(std::max(2.0, std::round(std::exp2(target_entropy))));
  AttributeSpec spec;
  spec.name = std::move(name);
  spec.probs.assign(n, 1.0 / static_cast<double>(n));
  return spec;
}

double AttributeSpec::entropy() const {
  double h = 0.0;
  for (double p : probs) {
    if (p > 0.0) h -= p * std::log2(p);
  }
  return h;
}

Dataset Dataset::generate(const DatasetSpec& spec, RandomSource& rng) {
  Dataset ds;
  ds.name_ = spec.name;
  ds.spec_ = spec;
  ds.profiles_.assign(spec.num_users, ProfileVec(spec.attributes.size(), 0));

  for (std::size_t a = 0; a < spec.attributes.size(); ++a) {
    const auto& attr = spec.attributes[a];
    // Quota sampling: hit each value's expected count exactly (up to
    // integer rounding), then shuffle assignments across users.
    std::vector<AttrValue> column;
    column.reserve(spec.num_users);
    double carried = 0.0;
    for (std::size_t v = 0; v < attr.probs.size() && column.size() < spec.num_users; ++v) {
      const double exact = attr.probs[v] * static_cast<double>(spec.num_users) + carried;
      auto count = static_cast<std::size_t>(std::llround(std::floor(exact)));
      carried = exact - static_cast<double>(count);
      count = std::min(count, spec.num_users - column.size());
      column.insert(column.end(), count, static_cast<AttrValue>(v));
    }
    // Rounding leftovers: fill with the most probable value.
    while (column.size() < spec.num_users) column.push_back(0);
    shuffle(column, rng);
    for (std::size_t u = 0; u < spec.num_users; ++u) ds.profiles_[u][a] = column[u];
  }
  return ds;
}

Dataset Dataset::generate_clustered(const DatasetSpec& spec, RandomSource& rng,
                                    std::size_t num_clusters, std::uint32_t jitter) {
  if (num_clusters == 0) throw Error("generate_clustered: need at least one cluster");
  Dataset ds;
  ds.name_ = spec.name;
  ds.spec_ = spec;
  ds.profiles_.reserve(spec.num_users);
  ds.communities_.reserve(spec.num_users);

  // Community centers drawn from the spec distributions.
  std::vector<ProfileVec> centers(num_clusters, ProfileVec(spec.attributes.size(), 0));
  for (std::size_t c = 0; c < num_clusters; ++c) {
    for (std::size_t a = 0; a < spec.attributes.size(); ++a) {
      // Inverse-CDF sample from the attribute distribution.
      const auto& probs = spec.attributes[a].probs;
      double u = static_cast<double>(rng.u64() >> 11) * 0x1p-53;
      AttrValue v = 0;
      for (std::size_t i = 0; i < probs.size(); ++i) {
        u -= probs[i];
        if (u <= 0.0) {
          v = static_cast<AttrValue>(i);
          break;
        }
        v = static_cast<AttrValue>(i);
      }
      centers[c][a] = v;
    }
  }

  for (std::size_t u = 0; u < spec.num_users; ++u) {
    const std::size_t c = rng.below(num_clusters);
    ProfileVec p = centers[c];
    for (std::size_t a = 0; a < p.size(); ++a) {
      if (jitter == 0) continue;
      const auto num_values = static_cast<std::int64_t>(spec.attributes[a].num_values());
      const auto delta = static_cast<std::int64_t>(rng.below(2 * jitter + 1)) -
                         static_cast<std::int64_t>(jitter);
      std::int64_t v = static_cast<std::int64_t>(p[a]) + delta;
      v = std::clamp<std::int64_t>(v, 0, num_values - 1);
      p[a] = static_cast<AttrValue>(v);
    }
    ds.profiles_.push_back(std::move(p));
    ds.communities_.push_back(c);
  }
  return ds;
}

DatasetSpec infocom06_spec() {
  // 78 attendees, 6 questionnaire attributes. Entropy targets chosen so the
  // spec-level stats match Table II: AVG 3.10, MAX 5.34, MIN 0.82,
  // landmark attributes 2 (tau=0.6) / 1 (tau=0.8).
  DatasetSpec spec;
  spec.name = "Infocom06";
  spec.num_users = 78;
  spec.attributes = {
      AttributeSpec::landmark("country", 0.82, 0.85),
      AttributeSpec::landmark("affiliation_type", 1.45, 0.65),
      AttributeSpec::uniform("position", 2.70),
      AttributeSpec::uniform("topic_interest", 3.60),
      AttributeSpec::uniform("city", 4.70),
      AttributeSpec::uniform("affiliation", 5.34),
  };
  return spec;
}

DatasetSpec sigcomm09_spec() {
  // 76 volunteers, 6 profile attributes: AVG 3.40, MAX 5.62, MIN 0.86,
  // landmarks 3 (tau=0.6) / 1 (tau=0.8).
  DatasetSpec spec;
  spec.name = "Sigcomm09";
  spec.num_users = 76;
  spec.attributes = {
      AttributeSpec::landmark("country", 0.86, 0.84),
      AttributeSpec::landmark("language", 1.50, 0.65),
      AttributeSpec::landmark("affiliation_type", 2.30, 0.62),
      AttributeSpec::uniform("facebook_interest", 4.54),
      AttributeSpec::uniform("location", 5.58),
      AttributeSpec::uniform("affiliation", 5.62),
  };
  return spec;
}

DatasetSpec weibo_spec(std::size_t num_users) {
  // Paper: 1M users, 17 attributes (10 interests + basic profile +
  // check-ins): AVG 5.14, MAX 9.21, MIN 0.54, landmarks 5 (0.6) / 3 (0.8).
  DatasetSpec spec;
  spec.name = "Weibo";
  spec.num_users = num_users;
  spec.attributes = {
      AttributeSpec::landmark("verified", 0.54, 0.90),
      AttributeSpec::landmark("gender", 0.90, 0.85),
      AttributeSpec::landmark("account_type", 1.20, 0.82),
      AttributeSpec::landmark("province_tier", 1.80, 0.70),
      AttributeSpec::landmark("age_band", 2.00, 0.65),
      AttributeSpec::uniform("checkin_region", 9.21),
      AttributeSpec::uniform("checkin_city", 8.50),
      AttributeSpec::uniform("interest_1", 8.00),
      AttributeSpec::uniform("interest_2", 7.50),
      AttributeSpec::uniform("interest_3", 7.20),
      AttributeSpec::uniform("interest_4", 7.00),
      AttributeSpec::uniform("interest_5", 6.80),
      AttributeSpec::uniform("interest_6", 6.50),
      AttributeSpec::uniform("interest_7", 6.20),
      AttributeSpec::uniform("interest_8", 5.80),
      AttributeSpec::uniform("interest_9", 4.80),
      AttributeSpec::uniform("interest_10", 3.50),
  };
  return spec;
}

}  // namespace smatch
