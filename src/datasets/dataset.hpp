// Synthetic social-network datasets calibrated to the paper's Table II.
//
// The real Infocom06 / Sigcomm09 (CRAWDAD) and Weibo datasets are not
// redistributable; these generators reproduce the statistics the
// evaluation actually depends on — node count, attribute count,
// per-attribute entropy (AVG/MAX/MIN) and landmark-attribute counts at
// tau = 0.6 / 0.8 (see DESIGN.md substitution #2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hpp"

namespace smatch {

using AttrValue = std::uint32_t;
/// One user's profile: d attribute values, each in [0, num_values_i).
using ProfileVec = std::vector<AttrValue>;

/// A single social attribute's population distribution.
struct AttributeSpec {
  std::string name;
  /// Probability of value i (sums to 1).
  std::vector<double> probs;

  /// A distribution with a dominant "landmark" value of probability
  /// `top_prob` and a uniform tail sized so the entropy hits
  /// `target_entropy` bits.
  static AttributeSpec landmark(std::string name, double target_entropy, double top_prob);
  /// A uniform distribution over round(2^target_entropy) values.
  static AttributeSpec uniform(std::string name, double target_entropy);

  [[nodiscard]] std::size_t num_values() const { return probs.size(); }
  /// Shannon entropy of the spec distribution, in bits.
  [[nodiscard]] double entropy() const;
};

struct DatasetSpec {
  std::string name;
  std::size_t num_users = 0;
  std::vector<AttributeSpec> attributes;
};

/// A materialized dataset: num_users profiles over the spec's attributes.
class Dataset {
 public:
  /// Quota sampling: each attribute's empirical distribution matches the
  /// spec as closely as integer counts allow, independently per attribute.
  static Dataset generate(const DatasetSpec& spec, RandomSource& rng);

  /// Community-structured generation: users belong to one of
  /// `num_clusters` communities; each user's profile is the community
  /// profile with per-attribute jitter in [-jitter, +jitter] (clamped).
  /// This is the workload for the matching-correctness experiments, where
  /// ground-truth similarity must exist.
  static Dataset generate_clustered(const DatasetSpec& spec, RandomSource& rng,
                                    std::size_t num_clusters, std::uint32_t jitter);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_users() const { return profiles_.size(); }
  [[nodiscard]] std::size_t num_attributes() const { return spec_.attributes.size(); }
  [[nodiscard]] const DatasetSpec& spec() const { return spec_; }
  [[nodiscard]] const std::vector<ProfileVec>& profiles() const { return profiles_; }
  [[nodiscard]] const ProfileVec& profile(std::size_t user) const { return profiles_.at(user); }
  /// Community id per user; empty unless generated clustered.
  [[nodiscard]] const std::vector<std::size_t>& communities() const { return communities_; }

 private:
  std::string name_;
  DatasetSpec spec_;
  std::vector<ProfileVec> profiles_;
  std::vector<std::size_t> communities_;
};

/// Paper-calibrated dataset specs (Table II).
[[nodiscard]] DatasetSpec infocom06_spec();
[[nodiscard]] DatasetSpec sigcomm09_spec();
/// The paper's Weibo crawl has 1M users; default here is a scale model
/// with identical distributional parameters.
[[nodiscard]] DatasetSpec weibo_spec(std::size_t num_users = 50000);

}  // namespace smatch
