// RSA-OPRF: the oblivious pseudo-random function of paper Section III.
//
// Protocol (client input m, server secret (N, d)):
//   client:  x = h(m) * s^e mod N          (s random, blinds h(m))
//   server:  y = x^d mod N                 (learns nothing about m)
//   client:  r = h'(y * s^{-1} mod N)      (= h'(h(m)^d), the PRF value)
//
// S-MATCH runs the user's hashed fuzzy vector through this OPRF so that the
// final profile key cannot be brute-forced offline from a guessed profile:
// each guess costs a round with the (rate-limitable) key server.
#pragma once

#include "common/bytes.hpp"
#include "common/random.hpp"
#include "oprf/rsa.hpp"

namespace smatch {

/// First client flow: the blinded element sent to the server.
struct OprfRequest {
  BigInt blinded;  // x = h(m) * s^e mod N
};

/// Server flow: the evaluated blinded element.
struct OprfResponse {
  BigInt evaluated;  // y = x^d mod N
};

/// The OPRF evaluator (key server). Holds the RSA trapdoor.
class RsaOprfServer {
 public:
  explicit RsaOprfServer(RsaKeyPair key) : key_(std::move(key)) {}

  [[nodiscard]] const RsaPublicKey& public_key() const { return key_.public_key(); }

  /// Evaluates one blinded request. Rejects out-of-range elements.
  [[nodiscard]] OprfResponse evaluate(const OprfRequest& req) const;

  /// Unblinded evaluation h'(h(m)^d) — test oracle only; a real server
  /// never sees m.
  [[nodiscard]] Bytes evaluate_direct(BytesView m) const;

 private:
  RsaKeyPair key_;
};

/// Client side: blind, then unblind+hash. One instance per protocol run.
class RsaOprfClient {
 public:
  /// Blinds input m under the server public key using randomness from rng.
  RsaOprfClient(RsaPublicKey server_key, BytesView m, RandomSource& rng);

  [[nodiscard]] const OprfRequest& request() const { return request_; }

  /// Consumes the server response and outputs the 32-byte PRF value
  /// r = h'(h(m)^d). Throws CryptoError if the response is inconsistent
  /// (out-of-range element, or the unblinded value fails the
  /// unblinded^e == h(m) check). This is the low-level primitive; the
  /// service-facing wrapper KeygenSession::finalize (core/key_server.hpp)
  /// converts these failures into a Status and never throws.
  [[nodiscard]] Bytes finalize(const OprfResponse& resp) const;

 private:
  RsaPublicKey server_key_;
  BigInt hashed_input_;  // h(m), kept to verify the server response
  BigInt blind_;         // s
  OprfRequest request_;
};

/// Full-domain hash h: deterministic map of bytes into [2, n-1).
[[nodiscard]] BigInt oprf_fdh(BytesView m, const BigInt& n);

}  // namespace smatch
