#include "oprf/rsa.hpp"

#include "bigint/prime.hpp"
#include "common/error.hpp"

namespace smatch {

RsaKeyPair::RsaKeyPair(RsaPublicKey pub, BigInt d, BigInt p, BigInt q)
    : pub_(std::move(pub)), d_(std::move(d)), p_(std::move(p)), q_(std::move(q)) {
  dp_ = d_ % (p_ - BigInt{1});
  dq_ = d_ % (q_ - BigInt{1});
  qinv_ = q_.inv_mod(p_);
  dp_ctx_ = ModExpContext(dp_, p_);
  dq_ctx_ = ModExpContext(dq_, q_);
}

RsaKeyPair RsaKeyPair::generate(RandomSource& rng, std::size_t bits) {
  if (bits < 64) throw CryptoError("RSA: modulus too small");
  const BigInt e{65537};
  while (true) {
    const BigInt p = random_prime(rng, bits / 2);
    const BigInt q = random_prime(rng, bits - bits / 2);
    if (p == q) continue;
    const BigInt n = p * q;
    if (n.bit_length() != bits) continue;
    const BigInt phi = (p - BigInt{1}) * (q - BigInt{1});
    if (BigInt::gcd(e, phi) != BigInt{1}) continue;
    BigInt d = e.inv_mod(phi);
    return RsaKeyPair({n, e}, std::move(d), p, q);
  }
}

BigInt RsaKeyPair::public_op(const BigInt& x) const {
  return x.pow_mod(pub_.e, pub_.n);
}

BigInt RsaKeyPair::private_op(const BigInt& x) const {
  // Garner's CRT recombination, over the precomputed per-prime contexts.
  const BigInt m1 = dp_ctx_.pow(x);
  const BigInt m2 = dq_ctx_.pow(x);
  const BigInt h = BigInt::mul_mod(qinv_, (m1 - m2).mod(p_), p_);
  return (m2 + q_ * h).mod(pub_.n);
}

}  // namespace smatch
