// Minimal RSA key generation and raw exponentiation, the substrate for the
// RSA-OPRF (blind-RSA oblivious PRF) of paper Section III.
//
// This is deliberately "textbook" RSA: the OPRF only needs the trapdoor
// permutation x -> x^d, never padding-based encryption.
#pragma once

#include <cstddef>

#include "bigint/bigint.hpp"
#include "common/random.hpp"

namespace smatch {

struct RsaPublicKey {
  BigInt n;
  BigInt e;
};

class RsaKeyPair {
 public:
  /// Generates an RSA modulus of `bits` bits with e = 65537.
  static RsaKeyPair generate(RandomSource& rng, std::size_t bits);

  [[nodiscard]] const RsaPublicKey& public_key() const { return pub_; }
  [[nodiscard]] const BigInt& n() const { return pub_.n; }
  [[nodiscard]] const BigInt& e() const { return pub_.e; }
  [[nodiscard]] const BigInt& d() const { return d_; }

  /// x^e mod n.
  [[nodiscard]] BigInt public_op(const BigInt& x) const;
  /// x^d mod n via CRT (about 4x faster than a plain exponentiation).
  /// Thread-safe: the precomputed per-prime contexts are read-only, so a
  /// key service can fan evaluations across a pool on one key pair.
  [[nodiscard]] BigInt private_op(const BigInt& x) const;

 private:
  RsaKeyPair(RsaPublicKey pub, BigInt d, BigInt p, BigInt q);

  RsaPublicKey pub_;
  BigInt d_;
  // CRT components.
  BigInt p_, q_, dp_, dq_, qinv_;
  // Reused across private_op calls: Montgomery parameters + fixed-window
  // exponent decompositions for x^dp mod p and x^dq mod q.
  ModExpContext dp_ctx_, dq_ctx_;
};

}  // namespace smatch
