#include "oprf/rsa_oprf.hpp"

#include "common/error.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha2.hpp"
#include "obs/trace.hpp"

namespace smatch {

BigInt oprf_fdh(BytesView m, const BigInt& n) {
  // Expand SHA-256(m) to modulus width + 128 bits with HKDF, then reduce.
  // The 128 surplus bits make the mod-n bias negligible.
  const std::size_t out_len = (n.bit_length() + 7) / 8 + 16;
  const Bytes digest = Sha256::hash(m);
  const Bytes wide = hkdf_expand(digest, to_bytes("smatch-oprf-fdh"), out_len);
  BigInt h = BigInt::from_bytes(wide).mod(n);
  // Avoid the degenerate fixed points 0 and 1.
  if (h <= BigInt{1}) h += BigInt{2};
  return h;
}

OprfResponse RsaOprfServer::evaluate(const OprfRequest& req) const {
  SMATCH_SPAN("oprf.evaluate");
  if (req.blinded <= BigInt{0} || req.blinded >= key_.n()) {
    throw CryptoError("OPRF: blinded element out of range");
  }
  return {key_.private_op(req.blinded)};
}

Bytes RsaOprfServer::evaluate_direct(BytesView m) const {
  const BigInt h = oprf_fdh(m, key_.n());
  const BigInt sig = key_.private_op(h);
  return hmac_sha256(to_bytes("smatch-oprf-out"), sig.to_bytes_padded((key_.n().bit_length() + 7) / 8));
}

RsaOprfClient::RsaOprfClient(RsaPublicKey server_key, BytesView m, RandomSource& rng)
    : server_key_(std::move(server_key)) {
  SMATCH_SPAN("oprf.blind");
  hashed_input_ = oprf_fdh(m, server_key_.n);
  // Blinding factor must be invertible mod n; random values virtually
  // always are, but check anyway.
  do {
    blind_ = BigInt::random_below(rng, server_key_.n - BigInt{2}) + BigInt{2};
  } while (BigInt::gcd(blind_, server_key_.n) != BigInt{1});
  const BigInt s_e = blind_.pow_mod(server_key_.e, server_key_.n);
  request_.blinded = BigInt::mul_mod(hashed_input_, s_e, server_key_.n);
}

Bytes RsaOprfClient::finalize(const OprfResponse& resp) const {
  SMATCH_SPAN("oprf.unblind");
  if (resp.evaluated <= BigInt{0} || resp.evaluated >= server_key_.n) {
    throw CryptoError("OPRF: evaluated element out of range");
  }
  const BigInt s_inv = blind_.inv_mod(server_key_.n);
  const BigInt unblinded = BigInt::mul_mod(resp.evaluated, s_inv, server_key_.n);
  // Verify the server actually applied the trapdoor: unblinded^e == h(m).
  if (unblinded.pow_mod(server_key_.e, server_key_.n) != hashed_input_) {
    throw CryptoError("OPRF: server response failed verification");
  }
  const std::size_t len = (server_key_.n.bit_length() + 7) / 8;
  return hmac_sha256(to_bytes("smatch-oprf-out"), unblinded.to_bytes_padded(len));
}

}  // namespace smatch
