#include "core/auth.hpp"

#include "common/error.hpp"
#include "crypto/aes.hpp"
#include "crypto/sha2.hpp"

namespace smatch {

AuthScheme::AuthScheme(std::shared_ptr<const ModpGroup> group) : group_(std::move(group)) {
  if (!group_) throw Error("AuthScheme: null group");
}

BigInt AuthScheme::random_secret(RandomSource& rng) const {
  return group_->random_exponent(rng);
}

std::size_t AuthScheme::token_size() const {
  return Aes::kBlockSize + group_->element_bytes() + Sha256::kDigestSize;
}

Bytes AuthScheme::make_token(BytesView profile_key, const BigInt& secret,
                             UserId id, RandomSource& rng) const {
  const std::size_t eb = group_->element_bytes();
  const BigInt t1 = group_->pow_g(secret);  // g^s
  // t2 = h(g^{s * ID}) = h((g^s)^ID).
  const BigInt t1_id = group_->pow(t1, BigInt{static_cast<std::uint64_t>(id)});
  const Bytes tag = Sha256::hash(t1_id.to_bytes_padded(eb));

  Bytes plaintext = t1.to_bytes_padded(eb);
  append(plaintext, tag);
  return aes_ctr_encrypt(profile_key, plaintext, rng);
}

bool AuthScheme::verify_token(BytesView profile_key, BytesView token, UserId id) const {
  const std::size_t eb = group_->element_bytes();
  if (token.size() != token_size()) return false;
  Bytes plaintext;
  try {
    plaintext = aes_ctr_decrypt(profile_key, token);
  } catch (const CryptoError&) {
    return false;
  }
  if (plaintext.size() != eb + Sha256::kDigestSize) return false;

  const BigInt t1 = BigInt::from_bytes(BytesView(plaintext).subspan(0, eb));
  const BytesView t2 = BytesView(plaintext).subspan(eb);

  // A wrong profile key decrypts to a random t1; the subgroup check and
  // the tag comparison both reject it.
  if (t1 <= BigInt{1} || t1 >= group_->p()) return false;
  const BigInt t1_id = group_->pow(t1, BigInt{static_cast<std::uint64_t>(id)});
  const Bytes expected = Sha256::hash(t1_id.to_bytes_padded(eb));
  return ct_equal(expected, t2);
}

}  // namespace smatch
