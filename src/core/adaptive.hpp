// Adaptive plaintext widths — the paper's stated future work (Section X):
// "design our own OPE scheme which is able to choose the length of keys
// adaptively based on the entropy of social attributes."
//
// Instead of one fixed k for every attribute, each attribute i gets the
// smallest width k_i whose big-jump mapping reaches a common security
// target T bits of mapped entropy (Section VII: e.g. T = 64 for security
// level 80). High-entropy attributes need barely more than T bits;
// low-entropy ones pay only their own lg(n_i) overhead — shrinking the
// chain (and thus OPE cost and upload bytes) versus a uniform k sized for
// the worst attribute.
#pragma once

#include <cstddef>
#include <vector>

namespace smatch {

struct AdaptiveWidths {
  /// Per-attribute plaintext widths in bits.
  std::vector<std::size_t> bits;

  /// Chooses, per attribute, the smallest width whose EntropyMapper
  /// reaches `target_entropy_bits` of mapped entropy for that attribute's
  /// value distribution.
  static AdaptiveWidths for_target(const std::vector<std::vector<double>>& attribute_probs,
                                   double target_entropy_bits);

  /// Total chain width.
  [[nodiscard]] std::size_t chain_bits() const;
  /// Smallest per-attribute mapped entropy actually achieved.
  [[nodiscard]] double achieved_entropy(
      const std::vector<std::vector<double>>& attribute_probs) const;
};

}  // namespace smatch
