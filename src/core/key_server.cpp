#include "core/key_server.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/serde.hpp"
#include "core/messages.hpp"
#include "obs/trace.hpp"

namespace smatch {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

Bytes KeyRequest::serialize() const {
  Writer w;
  wire::write_header(w);
  w.u32(client_id);
  w.var_bytes(blinded.to_bytes());
  return w.take();
}

StatusOr<KeyRequest> KeyRequest::parse(BytesView data) {
  return wire::parse_framed<KeyRequest>(data, [](Reader& r) {
    KeyRequest req;
    req.client_id = r.u32();
    req.blinded = BigInt::from_bytes(r.var_bytes());
    return req;
  });
}

Bytes KeyResponse::serialize() const {
  Writer w;
  wire::write_header(w);
  w.var_bytes(evaluated.to_bytes());
  return w.take();
}

StatusOr<KeyResponse> KeyResponse::parse(BytesView data) {
  return wire::parse_framed<KeyResponse>(data, [](Reader& r) {
    KeyResponse resp;
    resp.evaluated = BigInt::from_bytes(r.var_bytes());
    return resp;
  });
}

KeyServer::KeyServer(RsaKeyPair key, KeyServerOptions options)
    : oprf_(std::move(key)),
      budget_(options.requests_per_epoch),
      batch_threads_(options.batch_threads) {
  const std::size_t n = std::max<std::size_t>(1, options.num_shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<BudgetShard>());
}

ThreadPool& KeyServer::pool() {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(batch_threads_);
    pool_ready_.store(true, std::memory_order_release);
  });
  return *pool_;
}

StatusOr<Bytes> KeyServer::handle(BytesView request_wire) {
  SMATCH_SPAN_HIST("keyserver.handle", &handle_hist_);
  StatusOr<KeyRequest> req = KeyRequest::parse(request_wire);
  if (!req.is_ok()) {
    auto& counter = req.code() == StatusCode::kUnsupportedVersion ? version_rejections_
                                                                  : malformed_rejections_;
    counter.fetch_add(1, kRelaxed);
    return req.status();
  }

  // Range-check before touching the trapdoor so the crypto layer never
  // throws on attacker-controlled input.
  if (req->blinded <= BigInt{0} || req->blinded >= public_key().n) {
    malformed_rejections_.fetch_add(1, kRelaxed);
    return Status(StatusCode::kMalformedMessage,
                  "key server: blinded element outside the RSA group");
  }

  BudgetShard& shard = shard_for(req->client_id);
  if (budget_ != 0) {
    std::unique_lock lk(shard.mu);
    std::uint32_t& used = shard.used[req->client_id];
    if (used >= budget_) {
      lk.unlock();
      shard.budget_rejections.fetch_add(1, kRelaxed);
      return Status(StatusCode::kBudgetExhausted,
                    "key server: request budget exhausted for client");
    }
    ++used;
    // Log the charge before evaluating, under the same lock that ordered
    // it: a crash after the evaluation but before the log would otherwise
    // refund the request on restart. Failure to log rolls the charge back
    // so memory and WAL never disagree.
    if (store_) {
      Writer w;
      w.u32(req->client_id);
      w.u32(used);
      if (Status s = store_->append(store_->shard_of(req->client_id),
                                    store::RecordType::kBudget, w.bytes());
          !s.is_ok()) {
        --used;
        return s;
      }
    }
  }

  // The expensive part — x^d mod N — runs outside any lock: the RSA
  // contexts inside RsaKeyPair are read-only and shared by every worker.
  OprfResponse resp;
  {
    SMATCH_SPAN_HIST("keyserver.modexp", &modexp_hist_);
    resp = oprf_.evaluate({req->blinded});
  }
  shard.evaluations.fetch_add(1, kRelaxed);
  return KeyResponse{resp.evaluated}.serialize();
}

std::vector<StatusOr<Bytes>> KeyServer::handle_batch(std::span<const Bytes> requests) {
  SMATCH_SPAN("keyserver.handle_batch");
  std::vector<StatusOr<Bytes>> results(
      requests.size(), Status(StatusCode::kMalformedMessage, "request not processed"));
  pool().parallel_for(requests.size(),
                      [&](std::size_t i) { results[i] = handle(requests[i]); });
  {
    std::lock_guard lk(batch_mu_);
    ++batches_;
    batched_requests_ += requests.size();
    ++batch_size_histogram_[requests.size()];
  }
  return results;
}

void KeyServer::next_epoch() {
  // One kEpoch marker per WAL shard: each shard's log replays
  // independently, so the marker must appear in every log whose clients
  // it resets. Requests racing this call may land before or after their
  // shard's marker — budgets are advisory rate-limit state, and the
  // restored count is correct to within that race.
  if (store_) {
    for (std::size_t s = 0; s < store_->shards(); ++s) {
      (void)store_->append(s, store::RecordType::kEpoch, {});
    }
  }
  for (auto& shard : shards_) {
    std::unique_lock lk(shard->mu);
    shard->used.clear();
  }
}

Status KeyServer::attach_store(const store::StoreOptions& options) {
  if (store_) {
    return {StatusCode::kMalformedMessage, "attach_store: store already attached"};
  }
  StatusOr<std::unique_ptr<store::ProfileStore>> opened =
      store::ProfileStore::open(options, shards_.size());
  if (!opened.is_ok()) return opened.status();
  store_ = std::move(*opened);

  for (std::size_t s = 0; s < store_->shards(); ++s) {
    Status replayed = store_->replay(s, [&](const store::StoreRecord& rec) -> Status {
      switch (rec.type) {
        case store::RecordType::kBudget: {
          try {
            Reader r(rec.payload);
            const UserId client = r.u32();
            const std::uint32_t used = r.u32();
            r.finish();
            BudgetShard& shard = shard_for(client);
            std::unique_lock lk(shard.mu);
            shard.used[client] = used;  // absolute count: last writer wins
            return Status::ok();
          } catch (const SerdeError& e) {
            return Status(StatusCode::kMalformedMessage,
                          std::string("budget record: ") + e.what());
          }
        }
        case store::RecordType::kEpoch: {
          // This WAL shard's epoch marker resets exactly the clients whose
          // records live in this log.
          for (auto& shard : shards_) {
            std::unique_lock lk(shard->mu);
            std::erase_if(shard->used, [&](const auto& entry) {
              return store_->shard_of(entry.first) == s;
            });
          }
          return Status::ok();
        }
        default:
          return Status(StatusCode::kMalformedMessage,
                        "key store: unexpected record type");
      }
    });
    if (!replayed.is_ok()) return replayed;
  }

  store_->set_checkpoint_source(
      [this](store::ProfileStore::Checkpoint& cp) { return stream_checkpoint(cp); });
  store_->start_maintenance();
  return Status::ok();
}

Status KeyServer::stream_checkpoint(store::ProfileStore::Checkpoint& cp) {
  // Quiesce: every budget charge holds its shard lock, so holding all of
  // them stops the world for the duration of the snapshot. The table is
  // a few counters per client — small enough that staggering would buy
  // nothing, so this source ignores policy.staggered.
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& shard : shards_) locks.emplace_back(shard->mu);
  for (const auto& shard : shards_) {
    for (const auto& [client, used] : shard->used) {
      Writer w;
      w.u32(client);
      w.u32(used);
      cp.add(store_->shard_of(client), store::RecordType::kBudget, w.bytes());
    }
  }
  return Status::ok();
}

Status KeyServer::checkpoint() {
  if (!store_) {
    return {StatusCode::kMalformedMessage, "checkpoint: no store attached"};
  }
  return store_->request_checkpoint().get();
}

std::uint64_t KeyServer::evaluations() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->evaluations.load(kRelaxed);
  return n;
}

KeyServerMetrics KeyServer::metrics() const {
  KeyServerMetrics m;
  m.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    KeyShardMetrics s;
    s.evaluations = shard->evaluations.load(kRelaxed);
    s.budget_rejections = shard->budget_rejections.load(kRelaxed);
    {
      std::shared_lock lk(shard->mu);
      s.clients = shard->used.size();
    }
    m.evaluations += s.evaluations;
    m.budget_rejections += s.budget_rejections;
    m.shards.push_back(s);
  }
  m.malformed_rejections = malformed_rejections_.load(kRelaxed);
  m.version_rejections = version_rejections_.load(kRelaxed);
  {
    std::lock_guard lk(batch_mu_);
    m.batches = batches_;
    m.batched_requests = batched_requests_;
    m.batch_size_histogram = batch_size_histogram_;
  }
  m.handle_latency_ns = handle_hist_.snapshot();
  m.modexp_latency_ns = modexp_hist_.snapshot();
  if (pool_ready_.load(std::memory_order_acquire)) m.pool = pool_->metrics();
  return m;
}

KeygenSession::KeygenSession(const FuzzyKeyGen& keygen, const Profile& profile,
                             const RsaPublicKey& server_key, UserId client_id,
                             RandomSource& rng)
    : client_id_(client_id),
      oprf_client_(server_key, keygen.key_material(profile), rng) {}

Bytes KeygenSession::request_wire() const {
  return KeyRequest{client_id_, oprf_client_.request().blinded}.serialize();
}

StatusOr<ProfileKey> KeygenSession::finalize(BytesView response_wire) const {
  StatusOr<KeyResponse> resp = KeyResponse::parse(response_wire);
  if (!resp.is_ok()) return resp.status();
  try {
    return FuzzyKeyGen::from_oprf_output(oprf_client_.finalize({resp->evaluated}));
  } catch (const CryptoError& e) {
    // Out-of-range element or a failed unblinded^e == h(m) check: the
    // response is not an honest evaluation of our request.
    return Status(StatusCode::kMalformedMessage, e.what());
  }
}

}  // namespace smatch
