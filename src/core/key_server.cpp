#include "core/key_server.hpp"

#include "common/error.hpp"
#include "common/serde.hpp"

namespace smatch {

Bytes KeyRequest::serialize() const {
  Writer w;
  w.u32(client_id);
  w.var_bytes(blinded.to_bytes());
  return w.take();
}

KeyRequest KeyRequest::parse(BytesView data) {
  Reader r(data);
  KeyRequest req;
  req.client_id = r.u32();
  req.blinded = BigInt::from_bytes(r.var_bytes());
  r.finish();
  return req;
}

Bytes KeyResponse::serialize() const {
  Writer w;
  w.var_bytes(evaluated.to_bytes());
  return w.take();
}

KeyResponse KeyResponse::parse(BytesView data) {
  Reader r(data);
  KeyResponse resp;
  resp.evaluated = BigInt::from_bytes(r.var_bytes());
  r.finish();
  return resp;
}

KeyServer::KeyServer(RsaKeyPair key, std::uint32_t requests_per_epoch)
    : oprf_(std::move(key)), budget_(requests_per_epoch) {}

Bytes KeyServer::handle(BytesView request_wire) {
  const KeyRequest req = KeyRequest::parse(request_wire);
  if (budget_ != 0) {
    std::uint32_t& used = counts_[req.client_id];
    if (used >= budget_) {
      throw ProtocolError("key server: request budget exhausted for client");
    }
    ++used;
  }
  const OprfResponse resp = oprf_.evaluate({req.blinded});
  ++evaluations_;
  return KeyResponse{resp.evaluated}.serialize();
}

KeygenSession::KeygenSession(const FuzzyKeyGen& keygen, const Profile& profile,
                             const RsaPublicKey& server_key, UserId client_id,
                             RandomSource& rng)
    : client_id_(client_id),
      oprf_client_(server_key, keygen.key_material(profile), rng) {}

Bytes KeygenSession::request_wire() const {
  return KeyRequest{client_id_, oprf_client_.request().blinded}.serialize();
}

ProfileKey KeygenSession::finalize(BytesView response_wire) const {
  const KeyResponse resp = KeyResponse::parse(response_wire);
  return FuzzyKeyGen::from_oprf_output(oprf_client_.finalize({resp.evaluated}));
}

}  // namespace smatch
