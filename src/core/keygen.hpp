// Fuzzy profile-key generation (paper Section VI, "Key Generation";
// Algorithm Keygen in Fig. 3).
//
// Pipeline:  profile A --quantize--> symbols s --RS decode--> fuzzy vector
// T(v) --SHA-256--> K' --RSA-OPRF--> profile key K_up, index h(K_up).
//
// Profiles that agree after quantization (cell width quant_width) produce
// identical fuzzy vectors and therefore identical keys; the RS decoder
// additionally snaps words within its decoding radius onto a common
// codeword. Decode failure falls back to the quantized word itself (see
// DESIGN.md substitution #4). The OPRF round prevents offline brute force
// of the (low-entropy) profile space: each guess costs an interaction with
// the key server.
#pragma once

#include <vector>

#include "common/bytes.hpp"
#include "core/types.hpp"
#include "gf/reed_solomon.hpp"
#include "oprf/rsa_oprf.hpp"

namespace smatch {

/// The derived per-profile key pair: secret key + public server index.
struct ProfileKey {
  Bytes key;    // K_up: 32 bytes, OPRF output
  Bytes index;  // h(K_up): 32 bytes, the server-side group index
};

class FuzzyKeyGen {
 public:
  /// `num_attributes` = d. Derives the RS(n, k) quantizer code:
  /// n = d * rep, k = n - 2*theta, with the repetition factor rep chosen
  /// minimally so that k >= 1 and n fits the field.
  FuzzyKeyGen(const SchemeParams& params, std::size_t num_attributes);

  [[nodiscard]] std::size_t rep() const { return rep_; }
  [[nodiscard]] const ReedSolomon& code() const { return rs_; }
  /// Quantization cell width (SchemeParams::quant_width).
  [[nodiscard]] std::uint32_t cell_width() const { return cell_width_; }

  /// Quantized symbols s_i = round(a_i / cell_width), one per attribute.
  [[nodiscard]] std::vector<GaloisField::Elem> quantize(const Profile& a) const;
  /// T(v): RS-decoded expansion of the quantized symbols (falls back to
  /// the expanded word when the word is beyond the decoding radius).
  [[nodiscard]] std::vector<GaloisField::Elem> fuzzy_vector(const Profile& a) const;
  /// K' = H(T(v)) with the scheme parameters bound in.
  [[nodiscard]] Bytes key_material(const Profile& a) const;

  /// Full derivation including the interactive OPRF round, executed
  /// in-process against the OPRF evaluator object. Deployments that run
  /// Keygen over the wire use KeygenSession / KeyServer
  /// (core/key_server.hpp), whose Status-based flow derives bit-identical
  /// keys; this shortcut exists for tests and single-process benchmarks.
  [[nodiscard]] ProfileKey derive(const Profile& a, const RsaOprfServer& oprf,
                                  RandomSource& rng) const;
  /// Derivation from already-finalized OPRF output.
  [[nodiscard]] static ProfileKey from_oprf_output(Bytes oprf_output);

 private:
  SchemeParams params_;
  std::size_t num_attributes_;
  std::size_t rep_;
  std::uint32_t cell_width_;
  ReedSolomon rs_;
};

}  // namespace smatch
