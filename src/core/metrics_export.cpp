#include "core/metrics_export.hpp"

#include <string>

namespace smatch {

namespace {

std::string joined(std::string_view prefix, std::string_view name) {
  std::string out(prefix);
  out += '_';
  out += name;
  return out;
}

void export_pool(obs::Registry& registry, const PoolMetrics& m,
                 const std::string& prefix) {
  registry.publish_value(prefix + "_tasks_total", static_cast<double>(m.tasks_executed));
  registry.publish_value(prefix + "_parallel_fors_total",
                         static_cast<double>(m.parallel_fors));
  registry.publish_value(prefix + "_queue_depth", static_cast<double>(m.queue_depth),
                         /*as_gauge=*/true);
  registry.publish_value(prefix + "_peak_queue_depth",
                         static_cast<double>(m.peak_queue_depth), /*as_gauge=*/true);
  registry.publish(prefix + "_task_wait_ns", m.task_wait_ns);
  registry.publish(prefix + "_task_run_ns", m.task_run_ns);
}

}  // namespace

void export_metrics(obs::Registry& registry, const ServerMetrics& m,
                    std::string_view prefix) {
  const std::string p = joined(prefix, "match");
  registry.publish_value(p + "_ingests_total", static_cast<double>(m.ingests));
  registry.publish_value(p + "_matches_total", static_cast<double>(m.matches));
  registry.publish_value(p + "_comparisons_total", static_cast<double>(m.comparisons));
  registry.publish_value(p + "_replay_rejections_total",
                         static_cast<double>(m.replay_rejections));
  registry.publish_value(p + "_batch_group_sorts_total",
                         static_cast<double>(m.batch_group_sorts));
  registry.publish(p + "_ingest_latency_ns", m.ingest_latency_ns);
  registry.publish(p + "_match_latency_ns", m.match_latency_ns);
  export_pool(registry, m.pool, p + "_pool");
}

void export_metrics(obs::Registry& registry, const KeyServerMetrics& m,
                    std::string_view prefix) {
  const std::string p = joined(prefix, "keyserver");
  registry.publish_value(p + "_evaluations_total", static_cast<double>(m.evaluations));
  registry.publish_value(p + "_budget_rejections_total",
                         static_cast<double>(m.budget_rejections));
  registry.publish_value(p + "_malformed_rejections_total",
                         static_cast<double>(m.malformed_rejections));
  registry.publish_value(p + "_version_rejections_total",
                         static_cast<double>(m.version_rejections));
  registry.publish_value(p + "_batches_total", static_cast<double>(m.batches));
  registry.publish(p + "_handle_latency_ns", m.handle_latency_ns);
  registry.publish(p + "_modexp_latency_ns", m.modexp_latency_ns);
  export_pool(registry, m.pool, p + "_pool");
}

void export_metrics(obs::Registry& registry, const ClientMetrics& m,
                    std::string_view prefix) {
  const std::string p = joined(prefix, "client");
  registry.publish_value(p + "_encryptions_total", static_cast<double>(m.encryptions));
  registry.publish_value(p + "_uploads_total", static_cast<double>(m.uploads));
  registry.publish_value(p + "_batches_total", static_cast<double>(m.batches));
  registry.publish_value(p + "_ope_cache_hits_total",
                         static_cast<double>(m.ope_cache_hits));
  registry.publish_value(p + "_ope_cache_misses_total",
                         static_cast<double>(m.ope_cache_misses));
  registry.publish_value(p + "_ope_cache_entries",
                         static_cast<double>(m.ope_cache_entries), /*as_gauge=*/true);
  registry.publish(p + "_encrypt_latency_ns", m.encrypt_latency_ns);
  registry.publish(p + "_upload_latency_ns", m.upload_latency_ns);
}

void export_metrics(obs::Registry& registry, const PoolMetrics& m,
                    std::string_view prefix) {
  export_pool(registry, m, joined(prefix, "pool"));
}

void export_metrics(obs::Registry& registry, const SimChannel& channel,
                    std::string_view prefix) {
  const std::string p = joined(prefix, "channel");
  registry.publish_value(p + "_uplink_bytes_total",
                         static_cast<double>(channel.uplink().bytes));
  registry.publish_value(p + "_downlink_bytes_total",
                         static_cast<double>(channel.downlink().bytes));
  for (std::size_t k = 0; k < kNumMessageKinds; ++k) {
    const auto kind = static_cast<MessageKind>(k);
    const std::string base = p + "_" + std::string(to_string(kind));
    registry.publish_value(base + "_bytes_total",
                           static_cast<double>(channel.bytes_of(kind)));
    registry.publish_value(base + "_messages_total",
                           static_cast<double>(channel.messages_of(kind)));
    registry.publish(base + "_sim_latency_ns", channel.latency_of(kind));
  }
}

}  // namespace smatch
