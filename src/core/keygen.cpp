#include "core/keygen.hpp"

#include "common/error.hpp"
#include "common/serde.hpp"
#include "crypto/sha2.hpp"

namespace smatch {
namespace {

ReedSolomon make_code(const SchemeParams& params, std::size_t d, std::size_t rep) {
  const GaloisField gf(params.gf_m);
  const std::size_t n = d * rep;
  const std::size_t two_t = 2 * params.rs_threshold;
  if (n <= two_t) throw Error("FuzzyKeyGen: expansion too small for threshold");
  if (n > gf.order()) throw Error("FuzzyKeyGen: profile too long for field");
  return ReedSolomon(gf, n, n - two_t);
}

std::size_t choose_rep(const SchemeParams& params, std::size_t d) {
  if (d == 0) throw Error("FuzzyKeyGen: need at least one attribute");
  // Smallest rep with d*rep - 2*theta >= 2 and (d*rep - k) even holds by
  // construction (k = n - 2*theta).
  const std::size_t needed = 2 * params.rs_threshold + 2;
  return (needed + d - 1) / d;
}

}  // namespace

FuzzyKeyGen::FuzzyKeyGen(const SchemeParams& params, std::size_t num_attributes)
    : params_(params),
      num_attributes_(num_attributes),
      rep_(choose_rep(params, num_attributes)),
      cell_width_(params.quant_width),
      rs_(make_code(params, num_attributes, rep_)) {
  if (cell_width_ == 0) throw Error("FuzzyKeyGen: quant_width must be >= 1");
}

std::vector<GaloisField::Elem> FuzzyKeyGen::quantize(const Profile& a) const {
  if (a.size() != num_attributes_) throw Error("FuzzyKeyGen: profile arity mismatch");
  std::vector<GaloisField::Elem> s(a.size());
  const std::uint32_t max_symbol = rs_.field().size() - 1;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Round-to-nearest quantization with cell width theta + 1.
    std::uint32_t q = (a[i] + cell_width_ / 2) / cell_width_;
    if (q > max_symbol) q = max_symbol;
    s[i] = static_cast<GaloisField::Elem>(q);
  }
  return s;
}

std::vector<GaloisField::Elem> FuzzyKeyGen::fuzzy_vector(const Profile& a) const {
  const auto s = quantize(a);
  // Expand by repetition to the code length.
  std::vector<GaloisField::Elem> word(rs_.n());
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (std::size_t j = 0; j < rep_; ++j) word[i * rep_ + j] = s[i];
  }
  try {
    return rs_.decode(word).codeword;
  } catch (const DecodeError&) {
    // Beyond the decoding radius: the quantized expansion itself is the
    // fuzzy vector (deterministic, so equal quantizations still agree).
    return word;
  }
}

Bytes FuzzyKeyGen::key_material(const Profile& a) const {
  const auto t = fuzzy_vector(a);
  Writer w;
  w.str("smatch-profile-key-v1");
  w.u8(static_cast<std::uint8_t>(params_.gf_m));
  w.u32(static_cast<std::uint32_t>(rs_.n()));
  w.u32(static_cast<std::uint32_t>(rs_.k()));
  w.u32(params_.rs_threshold);
  w.u32(static_cast<std::uint32_t>(t.size()));
  for (GaloisField::Elem e : t) w.u16(e);
  return Sha256::hash(w.bytes());
}

ProfileKey FuzzyKeyGen::derive(const Profile& a, const RsaOprfServer& oprf,
                               RandomSource& rng) const {
  const Bytes material = key_material(a);
  RsaOprfClient client(oprf.public_key(), material, rng);
  const OprfResponse resp = oprf.evaluate(client.request());
  return from_oprf_output(client.finalize(resp));
}

ProfileKey FuzzyKeyGen::from_oprf_output(Bytes oprf_output) {
  ProfileKey pk;
  pk.index = Sha256::hash(oprf_output);
  pk.key = std::move(oprf_output);
  return pk;
}

}  // namespace smatch
