// Entropy increase via big-jump mapping (paper Section VI, "Entropy
// Increase").
//
// Each attribute value j (empirical probability p_j, n values total) is
// mapped onto one of R_j = max(1, floor(p_j * Delta)) k-bit strings chosen
// uniformly from a disjoint sub-range anchored at slot j. Every used
// string then carries probability ~1/Delta, so the mapped distribution is
// (near-)uniform: frequency analysis on OPE ciphertexts of mapped values
// learns nothing beyond order.
//
// The mapping is a "big jump" function: inter-slot gaps dominate
// intra-slot spreads, so order (and coarse distance) of the original
// values survives into the mapped space, which is what keeps profile
// matching correct (paper: "the profile matching results will not change
// if the profiles are Euclidean-distance close").
#pragma once

#include <vector>

#include "bigint/bigint.hpp"
#include "common/random.hpp"
#include "core/types.hpp"

namespace smatch {

class EntropyMapper {
 public:
  /// `probs`: empirical probability of each attribute value (indices are
  /// the values); `k_bits`: mapped string width (message space 2^k).
  /// Requires at least 2 values and 2^k >= 4 * num_values.
  EntropyMapper(std::vector<double> probs, std::size_t k_bits);

  [[nodiscard]] std::size_t k_bits() const { return k_bits_; }
  [[nodiscard]] std::size_t num_values() const { return probs_.size(); }

  /// Maps value j to a uniformly chosen string in its sub-range.
  [[nodiscard]] BigInt map(AttrValue value, RandomSource& rng) const;
  /// Recovers the value (slot index) from a mapped string.
  [[nodiscard]] AttrValue unmap(const BigInt& mapped) const;

  /// A value's sub-range resolved once: repeated map() calls for a fixed
  /// value (a client re-uploading its profile) skip the per-call range
  /// checks and slot arithmetic. Produced by prepare(), consumed by
  /// map_prepared(); draws identical coins to map(), so the two paths
  /// yield identical strings for identical rng states.
  struct PreparedValue {
    BigInt base;  // first string of the sub-range
    BigInt size;  // R_j strings available
  };
  [[nodiscard]] PreparedValue prepare(AttrValue value) const;
  [[nodiscard]] static BigInt map_prepared(const PreparedValue& pv, RandomSource& rng);

  /// First string of value j's sub-range: floor(2^k * j / n).
  [[nodiscard]] BigInt slot_base(AttrValue value) const;
  /// Number of strings R_j available to value j.
  [[nodiscard]] BigInt subrange_size(AttrValue value) const;

  /// Shannon entropy (bits) of the mapped distribution: the quantity
  /// Fig. 4a plots per attribute. Computed analytically as
  /// H = -sum_j p_j * lg(p_j / R_j).
  [[nodiscard]] double mapped_entropy() const;
  /// Entropy of the raw value distribution.
  [[nodiscard]] double original_entropy() const;

 private:
  std::vector<double> probs_;
  std::size_t k_bits_;
  BigInt slot_width_;            // 2^k / n
  std::vector<BigInt> subrange_; // R_j per value
};

}  // namespace smatch
