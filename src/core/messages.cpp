#include "core/messages.hpp"

#include "common/error.hpp"
#include "common/serde.hpp"

namespace smatch {

Bytes UploadMessage::serialize() const {
  Writer w;
  wire::write_header(w);
  w.u32(user_id);
  w.var_bytes(key_index);
  w.u32(chain_cipher_bits);
  w.raw(chain_cipher.to_bytes_padded(
      (static_cast<std::size_t>(chain_cipher_bits) + 7) / 8));
  w.var_bytes(auth_token);
  return w.take();
}

StatusOr<UploadMessage> UploadMessage::parse(BytesView data) {
  return wire::parse_framed<UploadMessage>(data, [](Reader& r) {
    UploadMessage m;
    m.user_id = r.u32();
    m.key_index = r.var_bytes();
    m.chain_cipher_bits = r.u32();
    // Cap before the width arithmetic: near-UINT32_MAX values would wrap
    // `bits + 7` in u32 math to a tiny byte count and "parse" an absurd
    // width against an empty cipher.
    if (m.chain_cipher_bits > kMaxChainCipherBits) {
      throw SerdeError("chain cipher width exceeds limit");
    }
    m.chain_cipher = BigInt::from_bytes(
        r.raw((static_cast<std::size_t>(m.chain_cipher_bits) + 7) / 8));
    m.auth_token = r.var_bytes();
    return m;
  });
}

Bytes QueryRequest::serialize() const {
  Writer w;
  wire::write_header(w);
  w.u32(query_id);
  w.u64(timestamp);
  w.u32(user_id);
  return w.take();
}

StatusOr<QueryRequest> QueryRequest::parse(BytesView data) {
  return wire::parse_framed<QueryRequest>(data, [](Reader& r) {
    QueryRequest q;
    q.query_id = r.u32();
    q.timestamp = r.u64();
    q.user_id = r.u32();
    return q;
  });
}

Bytes QueryResult::serialize() const {
  Writer w;
  wire::write_header(w);
  w.u32(query_id);
  w.u64(timestamp);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.u32(e.user_id);
    w.var_bytes(e.auth_token);
  }
  return w.take();
}

StatusOr<QueryResult> QueryResult::parse(BytesView data) {
  return wire::parse_framed<QueryResult>(data, [](Reader& r) {
    QueryResult q;
    q.query_id = r.u32();
    q.timestamp = r.u64();
    const std::uint32_t count = r.u32();
    // Never trust a wire-supplied count for the allocation size: each entry
    // needs at least 8 bytes, so anything beyond remaining()/8 is malformed.
    if (count > r.remaining() / 8 + 1) throw SerdeError("entry count exceeds message size");
    q.entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      MatchEntry e;
      e.user_id = r.u32();
      e.auth_token = r.var_bytes();
      q.entries.push_back(std::move(e));
    }
    return q;
  });
}

}  // namespace smatch
