#include "core/messages.hpp"

#include "common/error.hpp"
#include "common/serde.hpp"

namespace smatch {

Bytes UploadMessage::serialize() const {
  Writer w;
  w.u32(user_id);
  w.var_bytes(key_index);
  w.u32(chain_cipher_bits);
  w.raw(chain_cipher.to_bytes_padded((chain_cipher_bits + 7) / 8));
  w.var_bytes(auth_token);
  return w.take();
}

UploadMessage UploadMessage::parse(BytesView data) {
  Reader r(data);
  UploadMessage m;
  m.user_id = r.u32();
  m.key_index = r.var_bytes();
  m.chain_cipher_bits = r.u32();
  m.chain_cipher = BigInt::from_bytes(r.raw((m.chain_cipher_bits + 7) / 8));
  m.auth_token = r.var_bytes();
  r.finish();
  return m;
}

Bytes QueryRequest::serialize() const {
  Writer w;
  w.u32(query_id);
  w.u64(timestamp);
  w.u32(user_id);
  return w.take();
}

QueryRequest QueryRequest::parse(BytesView data) {
  Reader r(data);
  QueryRequest q;
  q.query_id = r.u32();
  q.timestamp = r.u64();
  q.user_id = r.u32();
  r.finish();
  return q;
}

Bytes QueryResult::serialize() const {
  Writer w;
  w.u32(query_id);
  w.u64(timestamp);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.u32(e.user_id);
    w.var_bytes(e.auth_token);
  }
  return w.take();
}

QueryResult QueryResult::parse(BytesView data) {
  Reader r(data);
  QueryResult q;
  q.query_id = r.u32();
  q.timestamp = r.u64();
  const std::uint32_t count = r.u32();
  // Never trust a wire-supplied count for the allocation size: each entry
  // needs at least 8 bytes, so anything beyond remaining()/8 is malformed.
  if (count > r.remaining() / 8 + 1) throw SerdeError("entry count exceeds message size");
  q.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    MatchEntry e;
    e.user_id = r.u32();
    e.auth_token = r.var_bytes();
    q.entries.push_back(std::move(e));
  }
  r.finish();
  return q;
}

}  // namespace smatch
