// Wires the S-MATCH engines behind the transport layer.
//
// SmatchService binds a MatchServer and a KeyServer to the per-kind
// handlers of a net::FrameDispatcher, so one NetServer (or a bare
// serve_connection loop) exposes the whole protocol:
//
//   kUpload -> MatchServer::ingest            (empty response body)
//   kQuery  -> MatchServer::match(q, top_k)   (serialized QueryResult)
//   kOprf   -> KeyServer::handle              (serialized KeyResponse)
//
// Handlers run on NetServer's dispatch pool, concurrently across
// connections *and* across pipelined requests on one connection — both
// engines are built for that (shard-level shared_mutex locking), and any
// future handler must be thread-safe the same way.
//
// RemoteClient is the connected mode of core/client.hpp: the same
// Keygen / InitData+Enc+Auth / Match / Vf pipeline, but every round
// travels through a SessionClient over a real Transport — localhost TCP
// and the in-process pair produce byte-identical protocol payloads, so
// the fig5 communication-cost numbers hold over the wire.
#pragma once

#include <cstdint>
#include <functional>

#include "common/random.hpp"
#include "common/status.hpp"
#include "core/client.hpp"
#include "core/key_server.hpp"
#include "core/server.hpp"
#include "net/session.hpp"

namespace smatch {

/// Binds engine endpoints to dispatcher handlers. The engines outlive
/// the dispatcher (the handlers capture references).
class SmatchService {
 public:
  /// Called with every upload body (serialized UploadMessage wire bytes)
  /// before it reaches the engine — exactly what a passive eavesdropper
  /// on the transport sees. The scenario harness's frequency-analysis
  /// adversary (src/scenario/adversary.hpp) taps here. Must be
  /// thread-safe: handlers run concurrently on the dispatch pool.
  using UploadTap = std::function<void(BytesView)>;

  /// `top_k` is the k of every kNN answer this service gives — the wire
  /// QueryRequest (paper Fig. 2) carries no k, so it is service policy.
  SmatchService(MatchServer& match_server, KeyServer& key_server,
                std::size_t top_k = 5, UploadTap upload_tap = nullptr);

  /// A dispatcher serving all three endpoints. Valid while both engines
  /// live; safe to copy into any number of servers.
  [[nodiscard]] const FrameDispatcher& dispatcher() const { return dispatcher_; }

 private:
  FrameDispatcher dispatcher_;
};

/// Client-side connected mode: drives a Client's protocol rounds through
/// a session over one Transport. Not thread-safe (one per thread, like
/// SessionClient).
class RemoteClient {
 public:
  /// `transport` must outlive the RemoteClient. `seed` makes the retry
  /// jitter and request-id sequence reproducible.
  RemoteClient(Client& client, Transport& transport,
               const RsaPublicKey& key_server_public_key,
               RetryPolicy policy = {}, std::uint64_t seed = 0x5eed);

  /// Keygen over the wire: blinded OPRF round (kOprf) + verification
  /// secret; installs the profile key on success.
  [[nodiscard]] Status enroll(RandomSource& rng);

  /// InitData + Enc + Auth, shipped as one kUpload round. Requires a key
  /// (enroll first).
  [[nodiscard]] Status upload(RandomSource& rng);

  /// Match + Vf: one kQuery round, response parsed and verified against
  /// the query echo. Returns the verified entries (kMalformedMessage for
  /// a spliced or tampered response).
  [[nodiscard]] StatusOr<Client::VerifiedResult> query(std::uint32_t query_id,
                                                       std::uint64_t timestamp);

  [[nodiscard]] const SessionStats& session_stats() const { return session_.stats(); }
  [[nodiscard]] Client& client() { return client_; }

 private:
  Client& client_;
  SessionClient session_;
  const RsaPublicKey& key_server_public_key_;
};

}  // namespace smatch
