#include "core/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "core/entropy_map.hpp"

namespace smatch {

AdaptiveWidths AdaptiveWidths::for_target(
    const std::vector<std::vector<double>>& attribute_probs, double target_entropy_bits) {
  if (target_entropy_bits <= 0.0) {
    throw Error("AdaptiveWidths: target entropy must be positive");
  }
  AdaptiveWidths w;
  w.bits.reserve(attribute_probs.size());
  for (const auto& probs : attribute_probs) {
    // Analytic first guess: mapped entropy ~= k - lg(n) - 1, so
    // k ~= T + lg(n) + 1; then verify and bump (the mapper's rounding of
    // sub-range sizes can shave fractions of a bit).
    const double lg_n = std::log2(static_cast<double>(std::max<std::size_t>(probs.size(), 2)));
    auto k = static_cast<std::size_t>(std::ceil(target_entropy_bits + lg_n + 1.0));
    k = std::max<std::size_t>(k, 8);
    while (EntropyMapper(probs, k).mapped_entropy() < target_entropy_bits) {
      ++k;
      if (k > 8192) throw Error("AdaptiveWidths: target entropy unreachable");
    }
    w.bits.push_back(k);
  }
  return w;
}

std::size_t AdaptiveWidths::chain_bits() const {
  return std::accumulate(bits.begin(), bits.end(), std::size_t{0});
}

double AdaptiveWidths::achieved_entropy(
    const std::vector<std::vector<double>>& attribute_probs) const {
  if (attribute_probs.size() != bits.size()) {
    throw Error("AdaptiveWidths: arity mismatch");
  }
  double min_h = 1e300;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    min_h = std::min(min_h, EntropyMapper(attribute_probs[i], bits[i]).mapped_entropy());
  }
  return min_h;
}

}  // namespace smatch
