// Shared types and configuration for the S-MATCH core.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "datasets/dataset.hpp"

namespace smatch {

/// User identity; the paper evaluates with 32-bit IDs.
using UserId = std::uint32_t;

/// A raw social profile: d attribute values a_i in Z_n.
using Profile = ProfileVec;

/// Scheme parameters shared by every member of a deployment.
struct SchemeParams {
  /// Per-attribute plaintext size k in bits after entropy increase
  /// (the x-axis of Figures 4-5). Message space per attribute is 2^k.
  std::size_t attribute_bits = 64;
  /// RS decoder threshold theta (Fig. 4b sweeps 5..10): the error budget
  /// of the fuzzy quantizer's RS code and the deployment's claimed
  /// matching radius (Definition 3's ||A_u - A_v|| <= theta).
  std::uint32_t rs_threshold = 8;
  /// Quantization cell width of the fuzzy key generator: profiles agreeing
  /// per-attribute after round-to-nearest division by this width derive
  /// the same key. A deployment constant independent of theta.
  std::uint32_t quant_width = 8;
  /// OPE ciphertext slack: ciphertext bits = chain bits + this.
  /// The paper sets N = M (slack 0), which degenerates OPE to the
  /// identity map; a non-zero default keeps the cipher meaningful while
  /// changing message sizes by only slack/8 bytes.
  std::size_t ope_slack_bits = 64;
  /// Galois field exponent for the Reed-Solomon fuzzy quantizer
  /// (paper: GF(2^10)).
  unsigned gf_m = 10;

  [[nodiscard]] std::size_t chain_bits(std::size_t num_attributes) const {
    return attribute_bits * num_attributes;
  }
};

/// Chebyshev profile distance of paper Definition 3:
/// ||A_u - A_v|| = MAX_i |a_i^(u) - a_i^(v)|.
[[nodiscard]] inline std::uint32_t profile_distance(const Profile& a, const Profile& b) {
  std::uint32_t d = 0;
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t diff = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    if (diff > d) d = diff;
  }
  return d;
}

}  // namespace smatch
