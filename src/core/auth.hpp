// Result-verification protocol (paper Section VI, "Profile Verification";
// Algorithms Auth and Vf in Fig. 3) — a reversed fuzzy commitment.
//
// Each user v holds a random secret s_v and publishes, through the
// server, the token
//     ciph_v = AES-CTR_Enc(K_vp, g^{s_v} || h(g^{s_v * ID_v}))
// in the QR subgroup of a safe prime. A querying user whose profile key
// equals K_vp (i.e., whose profile is within the fuzzy-keygen radius)
// decrypts the token, parses t1 || t2, and accepts iff h(t1^{ID_v}) == t2.
// A malicious server cannot forge an accepting token without the profile
// key (and recovering s_v from g^{s_v} is DLOG-hard), so fake matching
// results are detected.
#pragma once

#include <memory>

#include "common/bytes.hpp"
#include "common/random.hpp"
#include "core/types.hpp"
#include "group/modp_group.hpp"

namespace smatch {

class AuthScheme {
 public:
  explicit AuthScheme(std::shared_ptr<const ModpGroup> group);

  [[nodiscard]] const ModpGroup& group() const { return *group_; }

  /// Fresh user secret s in [1, q).
  [[nodiscard]] BigInt random_secret(RandomSource& rng) const;

  /// Auth(u): builds the token under the user's profile key.
  [[nodiscard]] Bytes make_token(BytesView profile_key, const BigInt& secret,
                                 UserId id, RandomSource& rng) const;

  /// Vf(ID_v, ciph_v, u): true iff the token decrypts under
  /// `profile_key` to a well-formed pair with h(t1^ID) == t2.
  [[nodiscard]] bool verify_token(BytesView profile_key, BytesView token, UserId id) const;

  /// Serialized token size (AES-CTR IV + group element + 32-byte tag):
  /// the l_ciph term of the paper's communication-cost formula.
  [[nodiscard]] std::size_t token_size() const;

 private:
  std::shared_ptr<const ModpGroup> group_;
};

}  // namespace smatch
