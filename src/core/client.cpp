#include "core/client.hpp"

#include "common/error.hpp"
#include "crypto/prf.hpp"

namespace smatch {
namespace {

std::size_t width_of(const ClientConfig& config, std::size_t attr) {
  if (config.adaptive_widths.empty()) return config.params.attribute_bits;
  if (attr >= config.adaptive_widths.size()) {
    throw Error("Client: adaptive width table arity mismatch");
  }
  return config.adaptive_widths[attr];
}

std::vector<EntropyMapper> make_mappers(const ClientConfig& config) {
  std::vector<EntropyMapper> mappers;
  mappers.reserve(config.attribute_probs.size());
  for (std::size_t i = 0; i < config.attribute_probs.size(); ++i) {
    mappers.emplace_back(config.attribute_probs[i], width_of(config, i));
  }
  return mappers;
}

AttributeChain make_chain(const ClientConfig& config) {
  std::vector<std::size_t> widths(config.attribute_probs.size());
  for (std::size_t i = 0; i < widths.size(); ++i) widths[i] = width_of(config, i);
  return AttributeChain(std::move(widths));
}

}  // namespace

ClientConfig make_client_config(const DatasetSpec& spec, const SchemeParams& params,
                                std::shared_ptr<const ModpGroup> group) {
  ClientConfig cfg;
  cfg.params = params;
  cfg.attribute_probs.reserve(spec.attributes.size());
  for (const auto& attr : spec.attributes) cfg.attribute_probs.push_back(attr.probs);
  cfg.group = std::move(group);
  return cfg;
}

Client::Client(UserId id, Profile profile, ClientConfig config)
    : id_(id),
      profile_(std::move(profile)),
      config_(std::move(config)),
      mappers_(make_mappers(config_)),
      chain_(make_chain(config_)),
      keygen_(config_.params, config_.attribute_probs.size()),
      auth_(config_.group) {
  if (profile_.size() != config_.attribute_probs.size()) {
    throw Error("Client: profile arity does not match configured attributes");
  }
  if (!config_.adaptive_widths.empty() &&
      config_.adaptive_widths.size() != profile_.size()) {
    throw Error("Client: adaptive width table arity mismatch");
  }
}

void Client::generate_key(const RsaOprfServer& oprf, RandomSource& rng) {
  key_ = keygen_.derive(profile_, oprf, rng);
  secret_ = auth_.random_secret(rng);
}

void Client::set_profile_key(ProfileKey key, const BigInt& secret) {
  key_ = std::move(key);
  secret_ = secret;
}

const ProfileKey& Client::profile_key() const {
  if (!key_) throw Error("Client: profile key not generated yet");
  return *key_;
}

std::vector<BigInt> Client::init_data(RandomSource& rng) const {
  std::vector<BigInt> mapped;
  mapped.reserve(profile_.size());
  for (std::size_t i = 0; i < profile_.size(); ++i) {
    mapped.push_back(mappers_[i].map(profile_[i], rng));
  }
  return mapped;
}

Ope Client::make_ope() const {
  const std::size_t pt_bits = chain_.chain_bits();
  return Ope(prf(profile_key().key, to_bytes("smatch-ope-key")), pt_bits,
             pt_bits + config_.params.ope_slack_bits);
}

std::size_t Client::chain_cipher_bits() const {
  return chain_.chain_bits() + config_.params.ope_slack_bits;
}

BigInt Client::encrypt_chain(const std::vector<BigInt>& mapped) const {
  const BigInt chain = chain_.assemble(mapped, profile_key().key);
  return make_ope().encrypt(chain);
}

Bytes Client::make_auth_token(RandomSource& rng) const {
  return auth_.make_token(profile_key().key, secret_, id_, rng);
}

UploadMessage Client::make_upload(RandomSource& rng) const {
  UploadMessage up;
  up.user_id = id_;
  up.key_index = profile_key().index;
  up.chain_cipher = encrypt_chain(init_data(rng));
  up.chain_cipher_bits = static_cast<std::uint32_t>(chain_cipher_bits());
  up.auth_token = make_auth_token(rng);
  return up;
}

QueryRequest Client::make_query(std::uint32_t query_id, std::uint64_t timestamp) const {
  return {query_id, timestamp, id_};
}

bool Client::verify_entry(const MatchEntry& entry) const {
  return auth_.verify_token(profile_key().key, entry.auth_token, entry.user_id);
}

std::size_t Client::count_verified(const QueryResult& result) const {
  std::size_t n = 0;
  for (const auto& e : result.entries) {
    if (verify_entry(e)) ++n;
  }
  return n;
}

StatusOr<Client::VerifiedResult> Client::verify_result(const QueryRequest& query,
                                                       const QueryResult& result) const {
  if (result.query_id != query.query_id || result.timestamp != query.timestamp) {
    return Status(StatusCode::kMalformedMessage,
                  "result does not echo the query id/timestamp");
  }
  VerifiedResult report;
  for (const auto& e : result.entries) {
    if (verify_entry(e)) {
      report.verified.push_back(e);
    } else {
      ++report.rejected;
    }
  }
  return report;
}

}  // namespace smatch
