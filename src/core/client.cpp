#include "core/client.hpp"

#include "common/error.hpp"
#include "crypto/drbg.hpp"
#include "crypto/prf.hpp"

namespace smatch {
namespace {

std::size_t width_of(const ClientConfig& config, std::size_t attr) {
  if (config.adaptive_widths.empty()) return config.params.attribute_bits;
  if (attr >= config.adaptive_widths.size()) {
    throw Error("Client: adaptive width table arity mismatch");
  }
  return config.adaptive_widths[attr];
}

std::vector<EntropyMapper> make_mappers(const ClientConfig& config) {
  std::vector<EntropyMapper> mappers;
  mappers.reserve(config.attribute_probs.size());
  for (std::size_t i = 0; i < config.attribute_probs.size(); ++i) {
    mappers.emplace_back(config.attribute_probs[i], width_of(config, i));
  }
  return mappers;
}

AttributeChain make_chain(const ClientConfig& config) {
  std::vector<std::size_t> widths(config.attribute_probs.size());
  for (std::size_t i = 0; i < widths.size(); ++i) widths[i] = width_of(config, i);
  return AttributeChain(std::move(widths));
}

}  // namespace

ClientConfig make_client_config(const DatasetSpec& spec, const SchemeParams& params,
                                std::shared_ptr<const ModpGroup> group) {
  ClientConfig cfg;
  cfg.params = params;
  cfg.attribute_probs.reserve(spec.attributes.size());
  for (const auto& attr : spec.attributes) cfg.attribute_probs.push_back(attr.probs);
  cfg.group = std::move(group);
  return cfg;
}

Client::Client(UserId id, Profile profile, ClientConfig config)
    : id_(id),
      profile_(std::move(profile)),
      config_(std::move(config)),
      mappers_(make_mappers(config_)),
      chain_(make_chain(config_)),
      keygen_(config_.params, config_.attribute_probs.size()),
      auth_(config_.group) {
  if (profile_.size() != config_.attribute_probs.size()) {
    throw Error("Client: profile arity does not match configured attributes");
  }
  if (!config_.adaptive_widths.empty() &&
      config_.adaptive_widths.size() != profile_.size()) {
    throw Error("Client: adaptive width table arity mismatch");
  }
}

void Client::generate_key(const RsaOprfServer& oprf, RandomSource& rng) {
  key_ = keygen_.derive(profile_, oprf, rng);
  secret_ = auth_.random_secret(rng);
}

void Client::set_profile_key(ProfileKey key, const BigInt& secret) {
  key_ = std::move(key);
  secret_ = secret;
}

const ProfileKey& Client::profile_key() const {
  if (!key_) throw Error("Client: profile key not generated yet");
  return *key_;
}

std::vector<BigInt> Client::init_data(RandomSource& rng) const {
  std::vector<BigInt> mapped;
  mapped.reserve(profile_.size());
  for (std::size_t i = 0; i < profile_.size(); ++i) {
    mapped.push_back(mappers_[i].map(profile_[i], rng));
  }
  return mapped;
}

Ope Client::make_ope() const {
  const std::size_t pt_bits = chain_.chain_bits();
  return Ope(prf(profile_key().key, to_bytes("smatch-ope-key")), pt_bits,
             pt_bits + config_.params.ope_slack_bits);
}

std::size_t Client::chain_cipher_bits() const {
  return chain_.chain_bits() + config_.params.ope_slack_bits;
}

BigInt Client::encrypt_chain(const std::vector<BigInt>& mapped) const {
  const BigInt chain = chain_.assemble(mapped, profile_key().key);
  return make_ope().encrypt(chain);
}

Bytes Client::make_auth_token(RandomSource& rng) const {
  return auth_.make_token(profile_key().key, secret_, id_, rng);
}

UploadMessage Client::make_upload(RandomSource& rng) const {
  UploadMessage up;
  up.user_id = id_;
  up.key_index = profile_key().index;
  up.chain_cipher = encrypt_chain(init_data(rng));
  up.chain_cipher_bits = static_cast<std::uint32_t>(chain_cipher_bits());
  up.auth_token = make_auth_token(rng);
  return up;
}

QueryRequest Client::make_query(std::uint32_t query_id, std::uint64_t timestamp) const {
  return {query_id, timestamp, id_};
}

bool Client::verify_entry(const MatchEntry& entry) const {
  return auth_.verify_token(profile_key().key, entry.auth_token, entry.user_id);
}

std::size_t Client::count_verified(const QueryResult& result) const {
  std::size_t n = 0;
  for (const auto& e : result.entries) {
    if (verify_entry(e)) ++n;
  }
  return n;
}

StatusOr<Client::VerifiedResult> Client::verify_result(const QueryRequest& query,
                                                       const QueryResult& result) const {
  if (result.query_id != query.query_id || result.timestamp != query.timestamp) {
    return Status(StatusCode::kMalformedMessage,
                  "result does not echo the query id/timestamp");
  }
  VerifiedResult report;
  for (const auto& e : result.entries) {
    if (verify_entry(e)) {
      report.verified.push_back(e);
    } else {
      ++report.rejected;
    }
  }
  return report;
}

std::vector<StatusOr<UploadMessage>> enroll_batch(std::span<Client* const> clients,
                                                  KeyServer& key_server,
                                                  RandomSource& rng, ThreadPool* pool) {
  const std::size_t n = clients.size();
  const auto run = [&](std::size_t count, const std::function<void(std::size_t)>& fn) {
    if (pool != nullptr) {
      pool->parallel_for(count, fn);
    } else {
      for (std::size_t i = 0; i < count; ++i) fn(i);
    }
  };

  // Fork one child generator per client up front (the only stage that
  // touches the shared RandomSource), so everything after runs on any
  // thread without contention.
  std::vector<Drbg> rngs;
  rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rngs.emplace_back(rng.bytes(32));

  // Stage 1 — per-client blinding plus all key-independent profile work
  // (verification secret, entropy mapping), hoisted ahead of the OPRF
  // round so stage 3 only runs what genuinely needs the derived key.
  std::vector<std::optional<KeygenSession>> sessions(n);
  std::vector<BigInt> secrets(n);
  std::vector<std::vector<BigInt>> mapped(n);
  std::vector<Bytes> wires(n);
  run(n, [&](std::size_t i) {
    Client& c = *clients[i];
    sessions[i].emplace(c.keygen(), c.profile(), key_server.public_key(), c.id(), rngs[i]);
    secrets[i] = c.auth().random_secret(rngs[i]);
    mapped[i] = c.init_data(rngs[i]);
    wires[i] = sessions[i]->request_wire();
  });

  // Stage 2 — one batched OPRF round against the key service.
  const std::vector<StatusOr<Bytes>> responses = key_server.handle_batch(wires);

  // Stage 3 — unblind, install the key, and finish the upload (chaining,
  // OPE encryption, auth token), fanned across the pool.
  std::vector<StatusOr<UploadMessage>> results(
      n, Status(StatusCode::kMalformedMessage, "client not processed"));
  run(n, [&](std::size_t i) {
    if (!responses[i].is_ok()) {
      results[i] = responses[i].status();
      return;
    }
    StatusOr<ProfileKey> key = sessions[i]->finalize(*responses[i]);
    if (!key.is_ok()) {
      results[i] = key.status();
      return;
    }
    Client& c = *clients[i];
    c.set_profile_key(std::move(*key), secrets[i]);
    UploadMessage up;
    up.user_id = c.id();
    up.key_index = c.profile_key().index;
    up.chain_cipher = c.encrypt_chain(mapped[i]);
    up.chain_cipher_bits = static_cast<std::uint32_t>(c.chain_cipher_bits());
    up.auth_token = c.make_auth_token(rngs[i]);
    results[i] = std::move(up);
  });
  return results;
}

}  // namespace smatch
