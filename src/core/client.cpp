#include "core/client.hpp"

#include <atomic>
#include <map>
#include <mutex>

#include "common/error.hpp"
#include "crypto/drbg.hpp"
#include "crypto/prf.hpp"
#include "obs/trace.hpp"

namespace smatch {

/// Pipeline statistics. Hot counters are relaxed atomics (statistics, not
/// synchronization); batch bookkeeping is cold (once per batch call).
struct ClientCounters {
  std::atomic<std::uint64_t> encryptions{0};
  std::atomic<std::uint64_t> uploads{0};

  // Stage latency, fed by SMATCH_SPAN_HIST on the Enc/upload paths.
  obs::Histogram encrypt_hist;
  obs::Histogram upload_hist;

  mutable std::mutex batch_mu;
  std::uint64_t batches = 0;
  std::uint64_t batched_uploads = 0;
  std::map<std::size_t, std::uint64_t> batch_size_histogram;

  void count_batch(std::size_t size) {
    std::lock_guard<std::mutex> lock(batch_mu);
    ++batches;
    batched_uploads += size;
    ++batch_size_histogram[size];
  }
};

namespace {

std::size_t width_of(const ClientConfig& config, std::size_t attr) {
  if (config.adaptive_widths.empty()) return config.params.attribute_bits;
  if (attr >= config.adaptive_widths.size()) {
    throw Error("Client: adaptive width table arity mismatch");
  }
  return config.adaptive_widths[attr];
}

std::vector<EntropyMapper> make_mappers(const ClientConfig& config) {
  std::vector<EntropyMapper> mappers;
  mappers.reserve(config.attribute_probs.size());
  for (std::size_t i = 0; i < config.attribute_probs.size(); ++i) {
    mappers.emplace_back(config.attribute_probs[i], width_of(config, i));
  }
  return mappers;
}

AttributeChain make_chain(const ClientConfig& config) {
  std::vector<std::size_t> widths(config.attribute_probs.size());
  for (std::size_t i = 0; i < widths.size(); ++i) widths[i] = width_of(config, i);
  return AttributeChain(std::move(widths));
}

/// Runs fn over [0, n) on the pool, or inline when no pool was supplied.
void fan_out(ThreadPool* pool, std::size_t n,
             const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr) {
    pool->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

ClientConfig make_client_config(const DatasetSpec& spec, const SchemeParams& params,
                                std::shared_ptr<const ModpGroup> group) {
  ClientConfig cfg;
  cfg.params = params;
  cfg.attribute_probs.reserve(spec.attributes.size());
  for (const auto& attr : spec.attributes) cfg.attribute_probs.push_back(attr.probs);
  cfg.group = std::move(group);
  return cfg;
}

StatusOr<Client> Client::create(UserId id, Profile profile, ClientConfig config) {
  if (profile.size() != config.attribute_probs.size()) {
    return Status(StatusCode::kMalformedMessage,
                  "Client: profile arity does not match configured attributes");
  }
  if (!config.adaptive_widths.empty() &&
      config.adaptive_widths.size() != profile.size()) {
    return Status(StatusCode::kMalformedMessage,
                  "Client: adaptive width table arity mismatch");
  }
  for (std::size_t i = 0; i < profile.size(); ++i) {
    if (profile[i] >= config.attribute_probs[i].size()) {
      return Status(StatusCode::kMalformedMessage,
                    "Client: attribute value outside the published distribution");
    }
  }
  try {
    return Client(id, std::move(profile), std::move(config));
  } catch (const Error& e) {
    // Unusable published config (degenerate distributions, zero widths...).
    return Status(StatusCode::kMalformedMessage, e.what());
  }
}

Client::Client(UserId id, Profile profile, ClientConfig config)
    : id_(id),
      profile_(std::move(profile)),
      config_(std::move(config)),
      mappers_(make_mappers(config_)),
      chain_(make_chain(config_)),
      keygen_(config_.params, config_.attribute_probs.size()),
      auth_(config_.group),
      counters_(std::make_unique<ClientCounters>()) {
  // The profile is fixed for this client's lifetime: resolve each
  // attribute's entropy-map sub-range once instead of per upload.
  prepared_.reserve(profile_.size());
  for (std::size_t i = 0; i < profile_.size(); ++i) {
    prepared_.push_back(mappers_[i].prepare(profile_[i]));
  }
}

Client::~Client() = default;
Client::Client(Client&&) noexcept = default;
Client& Client::operator=(Client&&) noexcept = default;

void Client::install_key(ProfileKey key, const BigInt& secret) {
  key_ = std::move(key);
  secret_ = secret;
  const std::size_t pt_bits = chain_.chain_bits();
  ope_.emplace(prf(key_->key, to_bytes("smatch-ope-key")), pt_bits,
               pt_bits + config_.params.ope_slack_bits, config_.ope_cache_nodes);
  perm_ = chain_.permutation(key_->key);
}

void Client::generate_key(const RsaOprfServer& oprf, RandomSource& rng) {
  install_key(keygen_.derive(profile_, oprf, rng), auth_.random_secret(rng));
}

void Client::set_profile_key(ProfileKey key, const BigInt& secret) {
  install_key(std::move(key), secret);
}

const ProfileKey& Client::profile_key() const {
  if (!key_) throw Error("Client: profile key not generated yet");
  return *key_;
}

std::vector<BigInt> Client::init_data(RandomSource& rng) const {
  SMATCH_SPAN("client.init_data");
  std::vector<BigInt> mapped;
  mapped.reserve(prepared_.size());
  for (const auto& pv : prepared_) {
    mapped.push_back(EntropyMapper::map_prepared(pv, rng));
  }
  return mapped;
}

std::size_t Client::chain_cipher_bits() const {
  return chain_.chain_bits() + config_.params.ope_slack_bits;
}

BigInt Client::encrypt_chain(const std::vector<BigInt>& mapped) const {
  (void)profile_key();  // key required
  SMATCH_SPAN_HIST("client.encrypt_chain", &counters_->encrypt_hist);
  counters_->encryptions.fetch_add(1, std::memory_order_relaxed);
  return ope_->encrypt(chain_.assemble(mapped, perm_));
}

Bytes Client::make_auth_token(RandomSource& rng) const {
  SMATCH_SPAN("client.auth_token");
  return auth_.make_token(profile_key().key, secret_, id_, rng);
}

UploadMessage Client::make_upload(RandomSource& rng) const {
  SMATCH_SPAN_HIST("client.make_upload", &counters_->upload_hist);
  UploadMessage up;
  up.user_id = id_;
  up.key_index = profile_key().index;
  up.chain_cipher = encrypt_chain(init_data(rng));
  up.chain_cipher_bits = static_cast<std::uint32_t>(chain_cipher_bits());
  up.auth_token = make_auth_token(rng);
  counters_->uploads.fetch_add(1, std::memory_order_relaxed);
  return up;
}

UploadMessage Client::assemble_upload(const std::vector<BigInt>& mapped,
                                      RandomSource& rng) const {
  SMATCH_SPAN_HIST("client.make_upload", &counters_->upload_hist);
  UploadMessage up;
  up.user_id = id_;
  up.key_index = profile_key().index;
  up.chain_cipher = encrypt_chain(mapped);
  up.chain_cipher_bits = static_cast<std::uint32_t>(chain_cipher_bits());
  up.auth_token = make_auth_token(rng);
  counters_->uploads.fetch_add(1, std::memory_order_relaxed);
  return up;
}

QueryRequest Client::make_query(std::uint32_t query_id, std::uint64_t timestamp) const {
  return {query_id, timestamp, id_};
}

StatusOr<std::vector<BigInt>> Client::encrypt_batch(
    const std::vector<std::vector<BigInt>>& mapped_batch, ThreadPool* pool) const {
  if (!key_) {
    return Status(StatusCode::kMalformedMessage, "Client: profile key not generated yet");
  }
  // Validate everything up front so the fan-out stage cannot fail.
  for (const auto& mapped : mapped_batch) {
    if (mapped.size() != chain_.num_attributes()) {
      return Status(StatusCode::kMalformedMessage,
                    "Client: mapped vector arity does not match the chain");
    }
    for (std::size_t a = 0; a < mapped.size(); ++a) {
      if (mapped[a].is_negative() || mapped[a].bit_length() > chain_.attribute_bits(a)) {
        return Status(StatusCode::kMalformedMessage,
                      "Client: mapped value exceeds its attribute width");
      }
    }
  }
  std::vector<BigInt> ciphertexts(mapped_batch.size());
  fan_out(pool, mapped_batch.size(), [&](std::size_t i) {
    SMATCH_SPAN_HIST("client.encrypt_chain", &counters_->encrypt_hist);
    ciphertexts[i] = ope_->encrypt(chain_.assemble(mapped_batch[i], perm_));
  });
  counters_->encryptions.fetch_add(mapped_batch.size(), std::memory_order_relaxed);
  counters_->count_batch(mapped_batch.size());
  return ciphertexts;
}

StatusOr<std::vector<UploadMessage>> Client::make_upload_batch(std::size_t count,
                                                               RandomSource& rng,
                                                               ThreadPool* pool) const {
  if (!key_) {
    return Status(StatusCode::kMalformedMessage, "Client: profile key not generated yet");
  }
  // Fork one child generator per upload up front (the only step that may
  // not run concurrently), so the fan-out is deterministic given the seed
  // and identical with or without a pool.
  std::vector<Drbg> rngs;
  rngs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) rngs.emplace_back(rng.bytes(32));

  std::vector<UploadMessage> uploads(count);
  fan_out(pool, count, [&](std::size_t i) {
    SMATCH_SPAN_HIST("client.make_upload", &counters_->upload_hist);
    UploadMessage& up = uploads[i];
    up.user_id = id_;
    up.key_index = key_->index;
    up.chain_cipher = ope_->encrypt(chain_.assemble(init_data(rngs[i]), perm_));
    up.chain_cipher_bits = static_cast<std::uint32_t>(chain_cipher_bits());
    up.auth_token = auth_.make_token(key_->key, secret_, id_, rngs[i]);
  });
  counters_->encryptions.fetch_add(count, std::memory_order_relaxed);
  counters_->uploads.fetch_add(count, std::memory_order_relaxed);
  counters_->count_batch(count);
  return uploads;
}

bool Client::verify_entry(const MatchEntry& entry) const {
  return auth_.verify_token(profile_key().key, entry.auth_token, entry.user_id);
}

std::size_t Client::count_verified(const QueryResult& result) const {
  std::size_t n = 0;
  for (const auto& e : result.entries) {
    if (verify_entry(e)) ++n;
  }
  return n;
}

StatusOr<Client::VerifiedResult> Client::verify_result(const QueryRequest& query,
                                                       const QueryResult& result) const {
  if (result.query_id != query.query_id || result.timestamp != query.timestamp) {
    return Status(StatusCode::kMalformedMessage,
                  "result does not echo the query id/timestamp");
  }
  VerifiedResult report;
  for (const auto& e : result.entries) {
    if (verify_entry(e)) {
      report.verified.push_back(e);
    } else {
      ++report.rejected;
    }
  }
  return report;
}

ClientMetrics Client::metrics() const {
  ClientMetrics m;
  m.encryptions = counters_->encryptions.load(std::memory_order_relaxed);
  m.uploads = counters_->uploads.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(counters_->batch_mu);
    m.batches = counters_->batches;
    m.batched_uploads = counters_->batched_uploads;
    m.batch_size_histogram = counters_->batch_size_histogram;
  }
  if (ope_) {
    const OpeCacheStats cache = ope_->cache_stats();
    m.ope_cache_hits = cache.hits;
    m.ope_cache_misses = cache.misses;
    m.ope_cache_evictions = cache.evictions;
    m.ope_cache_entries = cache.entries;
  }
  m.encrypt_latency_ns = counters_->encrypt_hist.snapshot();
  m.upload_latency_ns = counters_->upload_hist.snapshot();
  return m;
}

std::vector<StatusOr<UploadMessage>> enroll_and_upload_batch(
    std::span<Client* const> clients, KeyServer& key_server, RandomSource& rng,
    ThreadPool* pool) {
  const std::size_t n = clients.size();

  // Fork one child generator per client up front (the only stage that
  // touches the shared RandomSource), so everything after runs on any
  // thread without contention.
  std::vector<Drbg> rngs;
  rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rngs.emplace_back(rng.bytes(32));

  // Stage 1 — per-client blinding plus all key-independent profile work
  // (verification secret, entropy mapping), hoisted ahead of the OPRF
  // round so stage 3 only runs what genuinely needs the derived key.
  std::vector<std::optional<KeygenSession>> sessions(n);
  std::vector<BigInt> secrets(n);
  std::vector<std::vector<BigInt>> mapped(n);
  std::vector<Bytes> wires(n);
  SMATCH_SPAN("client.enroll_batch");
  fan_out(pool, n, [&](std::size_t i) {
    SMATCH_SPAN("client.enroll.blind");
    Client& c = *clients[i];
    sessions[i].emplace(c.keygen(), c.profile(), key_server.public_key(), c.id(), rngs[i]);
    secrets[i] = c.auth().random_secret(rngs[i]);
    mapped[i] = c.init_data(rngs[i]);
    wires[i] = sessions[i]->request_wire();
  });

  // Stage 2 — one batched OPRF round against the key service.
  std::vector<StatusOr<Bytes>> responses;
  {
    SMATCH_SPAN("client.enroll.oprf_round");
    responses = key_server.handle_batch(wires);
  }

  // Stage 3 — unblind, install the key, and finish the upload (chaining,
  // OPE encryption, auth token), fanned across the pool.
  std::vector<StatusOr<UploadMessage>> results(
      n, Status(StatusCode::kMalformedMessage, "client not processed"));
  fan_out(pool, n, [&](std::size_t i) {
    SMATCH_SPAN("client.enroll.finalize");
    if (!responses[i].is_ok()) {
      results[i] = responses[i].status();
      return;
    }
    StatusOr<ProfileKey> key = sessions[i]->finalize(*responses[i]);
    if (!key.is_ok()) {
      results[i] = key.status();
      return;
    }
    Client& c = *clients[i];
    c.set_profile_key(std::move(*key), secrets[i]);
    results[i] = c.assemble_upload(mapped[i], rngs[i]);
  });
  return results;
}

}  // namespace smatch
