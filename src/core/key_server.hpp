// The OPRF key server as a network endpoint.
//
// FuzzyKeyGen::derive() runs the OPRF against an in-process object; this
// endpoint exposes the same round as wire messages so deployments (and
// the communication benchmarks) can run Keygen over a real channel:
//
//   client -> server : KeyRequest  { client_id, blinded element }
//   server -> client : KeyResponse { evaluated element }
//
// The OPRF's security story depends on the server being able to meter
// evaluations (each offline profile guess costs one round), so the
// endpoint enforces a per-client request budget per epoch — exceeding it
// is rejected, which is what makes brute-forcing the low-entropy profile
// space through the server impractical.
#pragma once

#include <cstdint>
#include <map>

#include "common/bytes.hpp"
#include "core/keygen.hpp"
#include "core/types.hpp"
#include "oprf/rsa_oprf.hpp"

namespace smatch {

struct KeyRequest {
  UserId client_id = 0;
  BigInt blinded;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static KeyRequest parse(BytesView data);
};

struct KeyResponse {
  BigInt evaluated;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static KeyResponse parse(BytesView data);
};

class KeyServer {
 public:
  /// `requests_per_epoch`: per-client OPRF budget (0 = unlimited).
  explicit KeyServer(RsaKeyPair key, std::uint32_t requests_per_epoch = 16);

  [[nodiscard]] const RsaPublicKey& public_key() const { return oprf_.public_key(); }

  /// Handles one serialized KeyRequest; returns a serialized KeyResponse.
  /// Throws ProtocolError when the client exceeded its budget and
  /// CryptoError/SerdeError on malformed requests.
  [[nodiscard]] Bytes handle(BytesView request_wire);

  /// Starts a new rate-limit epoch (e.g. daily).
  void next_epoch() { counts_.clear(); }

  [[nodiscard]] std::uint64_t evaluations() const { return evaluations_; }

 private:
  RsaOprfServer oprf_;
  std::uint32_t budget_;
  std::map<UserId, std::uint32_t> counts_;
  std::uint64_t evaluations_ = 0;
};

/// Client-side keygen over the wire: produces the request for a profile
/// and finalizes the response into a ProfileKey. One instance per run.
class KeygenSession {
 public:
  KeygenSession(const FuzzyKeyGen& keygen, const Profile& profile,
                const RsaPublicKey& server_key, UserId client_id, RandomSource& rng);

  [[nodiscard]] Bytes request_wire() const;
  /// Throws CryptoError when the server response fails the blind-RSA
  /// consistency check.
  [[nodiscard]] ProfileKey finalize(BytesView response_wire) const;

 private:
  UserId client_id_;
  RsaOprfClient oprf_client_;
};

}  // namespace smatch
