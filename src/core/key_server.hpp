// The OPRF key service: the second server of the system, redesigned as a
// concurrent engine symmetric with the matching engine (core/server.hpp).
//
// FuzzyKeyGen::derive() runs the OPRF against an in-process object; this
// service exposes the same round as wire messages so deployments (and the
// communication benchmarks) can run Keygen over a real channel:
//
//   client -> server : KeyRequest  { client_id, blinded element }
//   server -> client : KeyResponse { evaluated element }
//
// Both messages carry the versioned magic+version wire header shared by
// every protocol message (core/messages.hpp).
//
// The OPRF's security story depends on the server being able to meter
// evaluations (each offline profile guess costs one round), so the
// service enforces a per-client request budget per epoch — exceeding it
// returns kBudgetExhausted, which is what makes brute-forcing the
// low-entropy profile space through the server impractical.
//
// Service layout
// --------------
//   * Per-client budget state is sharded by client id; each shard is
//     guarded by its own std::shared_mutex, so concurrent requests from
//     different clients never contend on one lock. Only budget-shard
//     locks exist and at most one is held at a time — there is no lock
//     ordering to get wrong.
//   * `handle_batch()` fans requests out across an internal thread pool.
//     RSA-OPRF evaluations amortize their modular-exponentiation setup
//     through the ModExpContext instances cached inside RsaKeyPair
//     (Montgomery parameters + fixed-window exponent decomposition per
//     CRT prime, built once per key and shared read-only by all workers);
//     see bench/keygen_throughput.cpp for the measured effect.
//   * `KeyServerMetrics` (core/metrics.hpp) snapshots per-shard counters,
//     rejection totals, and the batch-size histogram without stopping
//     traffic.
//
// Error handling: the public API reports failures through Status /
// StatusOr (kBudgetExhausted, kMalformedMessage, kUnsupportedVersion) and
// never throws — this was the last throwing server endpoint, removed in
// the key-service redesign. Exceptions remain for construction-time
// misconfiguration only.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "core/keygen.hpp"
#include "core/metrics.hpp"
#include "core/types.hpp"
#include "obs/histogram.hpp"
#include "oprf/rsa_oprf.hpp"
#include "store/store.hpp"

namespace smatch {

/// Blinded OPRF request (x = h(m)·s^e mod N), framed like every other
/// protocol message: versioned header, then the body.
struct KeyRequest {
  UserId client_id = 0;
  BigInt blinded;

  [[nodiscard]] Bytes serialize() const;
  /// kMalformedMessage for truncation/corruption/bad magic,
  /// kUnsupportedVersion for an unknown version byte. Never throws.
  [[nodiscard]] static StatusOr<KeyRequest> parse(BytesView data);
};

/// Evaluated element (y = x^d mod N), same framing.
struct KeyResponse {
  BigInt evaluated;

  [[nodiscard]] Bytes serialize() const;
  /// Same Status contract as KeyRequest::parse. Never throws.
  [[nodiscard]] static StatusOr<KeyResponse> parse(BytesView data);
};

/// Service sizing. Defaults suit tests and examples; a deployment scales
/// shards and threads with core count.
struct KeyServerOptions {
  /// Per-client OPRF budget per epoch (0 = unlimited).
  std::uint32_t requests_per_epoch = 16;
  /// Budget-state shards (client id -> shard). Clamped to >= 1.
  std::size_t num_shards = 8;
  /// Worker threads for handle_batch; 0 = hardware concurrency.
  std::size_t batch_threads = 0;
};

class KeyServer {
 public:
  /// Convenience constructor matching the historical signature.
  explicit KeyServer(RsaKeyPair key, std::uint32_t requests_per_epoch = 16)
      : KeyServer(std::move(key), KeyServerOptions{.requests_per_epoch = requests_per_epoch}) {}
  KeyServer(RsaKeyPair key, KeyServerOptions options);

  KeyServer(const KeyServer&) = delete;
  KeyServer& operator=(const KeyServer&) = delete;

  [[nodiscard]] const RsaPublicKey& public_key() const { return oprf_.public_key(); }

  /// Attaches (opening or creating) a durable store and replays the
  /// per-client budget state: kBudget records carry the absolute used
  /// count (last-writer-wins), kEpoch records clear the clients of their
  /// WAL shard. Call once, at startup, before serving traffic. After
  /// this, every budget charge is WAL-logged before the evaluation runs —
  /// a restarted server keeps enforcing spent budgets instead of handing
  /// brute-force attackers a fresh allowance. Registers the budget-table
  /// checkpoint source with the store's maintenance plane (started here
  /// when the policy says background).
  [[nodiscard]] Status attach_store(const store::StoreOptions& options);

  /// DEPRECATED — accepts the flat StoreConfig shim; forwards to the
  /// StoreOptions overload. Removed next PR.
  [[nodiscard]] Status attach_store(const store::StoreConfig& config) {
    return attach_store(config.to_options());
  }

  /// Runs one maintenance cycle (rotate -> snapshot -> GC) through the
  /// store's scheduler and waits for it. The budget table is small, so
  /// the source always quiesces (all budget-shard locks) regardless of
  /// policy.staggered. Error when no store is attached.
  [[nodiscard]] Status checkpoint();

  /// The attached store (nullptr when persistence is off) — for metrics.
  [[nodiscard]] const store::ProfileStore* store() const { return store_.get(); }
  /// Mutable variant, for the maintenance seams (hooks, pause/resume).
  [[nodiscard]] store::ProfileStore* store() { return store_.get(); }

  /// Handles one serialized KeyRequest; returns a serialized KeyResponse.
  /// kMalformedMessage for unparseable wire or a blinded element outside
  /// the RSA group, kUnsupportedVersion for an unknown wire version,
  /// kBudgetExhausted when the client spent its per-epoch budget.
  /// Thread-safe; never throws.
  [[nodiscard]] StatusOr<Bytes> handle(BytesView request_wire);

  /// Batch entry point: requests fan out over the internal pool;
  /// results[i] corresponds to requests[i] and equals what sequential
  /// `handle(requests[i])` would return (budget charging is per-request
  /// atomic, so when a batch carries more requests from one client than
  /// budget remains, exactly the remaining number succeed — which ones is
  /// unspecified).
  [[nodiscard]] std::vector<StatusOr<Bytes>> handle_batch(std::span<const Bytes> requests);

  /// Starts a new rate-limit epoch (e.g. daily): every client's budget
  /// resets; cumulative metrics keep counting.
  void next_epoch();

  /// Total OPRF evaluations served (all shards, all epochs).
  [[nodiscard]] std::uint64_t evaluations() const;

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }

  /// Point-in-time metrics snapshot. Safe to call under traffic.
  [[nodiscard]] KeyServerMetrics metrics() const;

 private:
  /// One slice of the client id -> budget-used map.
  struct BudgetShard {
    mutable std::shared_mutex mu;
    std::map<UserId, std::uint32_t> used;
    std::atomic<std::uint64_t> evaluations{0};
    std::atomic<std::uint64_t> budget_rejections{0};
  };

  BudgetShard& shard_for(UserId client) { return *shards_[client % shards_.size()]; }

  /// The checkpoint source registered with the store: quiesce-all
  /// (every budget-shard lock) and emit one absolute kBudget record per
  /// client.
  Status stream_checkpoint(store::ProfileStore::Checkpoint& cp);

  ThreadPool& pool();

  RsaOprfServer oprf_;
  std::uint32_t budget_;
  std::vector<std::unique_ptr<BudgetShard>> shards_;
  std::unique_ptr<store::ProfileStore> store_;  // null = persistence off
  std::atomic<std::uint64_t> malformed_rejections_{0};
  std::atomic<std::uint64_t> version_rejections_{0};

  // Batch bookkeeping (cold: once per handle_batch call).
  mutable std::mutex batch_mu_;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_requests_ = 0;
  std::map<std::size_t, std::uint64_t> batch_size_histogram_;

  // Stage latency, fed by SMATCH_SPAN_HIST on the handle path; folded
  // into KeyServerMetrics.
  obs::Histogram handle_hist_;
  obs::Histogram modexp_hist_;

  std::size_t batch_threads_ = 0;
  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> pool_ready_{false};  // pool_ safe to read when true
};

/// Client-side keygen over the wire: produces the request for a profile
/// and finalizes the response into a ProfileKey. One instance per run.
class KeygenSession {
 public:
  KeygenSession(const FuzzyKeyGen& keygen, const Profile& profile,
                const RsaPublicKey& server_key, UserId client_id, RandomSource& rng);

  [[nodiscard]] Bytes request_wire() const;

  /// Parses the server response, unblinds it, and checks the blind-RSA
  /// consistency equation unblinded^e == h(m). kMalformedMessage /
  /// kUnsupportedVersion for wire damage; kMalformedMessage also when the
  /// consistency check fails (a tampered response or cheating key
  /// server). Never throws.
  [[nodiscard]] StatusOr<ProfileKey> finalize(BytesView response_wire) const;

 private:
  UserId client_id_;
  RsaOprfClient oprf_client_;
};

}  // namespace smatch
