// The S-MATCH mobile client: implements the user side of the scheme
// tuple (Keygen, InitData, Enc, Auth, Vf) from paper Fig. 3.
//
// The encryption pipeline is engineered like the two server engines:
//   * One cached OPE instance per installed profile key (ope/ope.hpp):
//     repeated encryptions memoize the recursion-tree nodes they share,
//     so re-uploads stop re-sampling the hypergeometric splits of common
//     path prefixes. The keyed chain permutation and the profile's
//     entropy-map sub-ranges are likewise resolved once, not per upload.
//   * Batch entry points (`encrypt_batch`, `make_upload_batch`, and the
//     fleet-wide `enroll_and_upload_batch`) fan the per-upload work —
//     entropy increase, chaining, OPE, auth tokens — across a caller
//     ThreadPool and report failures through StatusOr, never by throwing.
//   * `ClientMetrics` (core/metrics.hpp) snapshots the pipeline counters
//     and the OPE cache hit/miss numbers, mirroring ServerMetrics and
//     KeyServerMetrics.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include <span>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "core/auth.hpp"
#include "core/chain.hpp"
#include "core/entropy_map.hpp"
#include "core/key_server.hpp"
#include "core/keygen.hpp"
#include "core/messages.hpp"
#include "core/metrics.hpp"
#include "core/types.hpp"
#include "ope/ope.hpp"

namespace smatch {

struct ClientCounters;  // pipeline statistics (client.cpp)

/// Deployment-wide public configuration every client shares.
struct ClientConfig {
  SchemeParams params;
  /// Public per-attribute value distributions (the provider publishes the
  /// population statistics the big-jump mapping needs).
  std::vector<std::vector<double>> attribute_probs;
  /// Verification group (e.g. ModpGroup::rfc3526_2048()).
  std::shared_ptr<const ModpGroup> group;
  /// Optional adaptive per-attribute widths (paper Section X extension):
  /// when non-empty, attribute i occupies adaptive_widths[i] bits instead
  /// of the uniform params.attribute_bits. See core/adaptive.hpp.
  std::vector<std::size_t> adaptive_widths;
  /// OPE node-cache capacity for this deployment's clients (nodes; 0
  /// disables caching — ciphertexts are identical either way).
  std::size_t ope_cache_nodes = Ope::kDefaultCacheNodes;
};

/// Builds a deployment config from a dataset's published attribute
/// distributions.
[[nodiscard]] ClientConfig make_client_config(const DatasetSpec& spec,
                                              const SchemeParams& params,
                                              std::shared_ptr<const ModpGroup> group);

class Client {
 public:
  /// Validated construction: kMalformedMessage when the profile arity
  /// does not match the configured attributes, the adaptive width table
  /// is mis-sized, or the published distributions are unusable. Never
  /// throws — this replaced the historical throwing constructor.
  [[nodiscard]] static StatusOr<Client> create(UserId id, Profile profile,
                                               ClientConfig config);

  ~Client();
  Client(Client&&) noexcept;
  Client& operator=(Client&&) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] UserId id() const { return id_; }
  [[nodiscard]] const Profile& profile() const { return profile_; }
  [[nodiscard]] const SchemeParams& params() const { return config_.params; }

  /// Keygen: fuzzy quantization + OPRF round against the key server, and
  /// generation of the user verification secret s_u.
  void generate_key(const RsaOprfServer& oprf, RandomSource& rng);
  /// Installs an externally derived key (message-level OPRF flows).
  void set_profile_key(ProfileKey key, const BigInt& secret);
  [[nodiscard]] const ProfileKey& profile_key() const;

  /// InitData: entropy-increase each attribute (fresh randomness per
  /// upload — the same value maps to different strings each time).
  [[nodiscard]] std::vector<BigInt> init_data(RandomSource& rng) const;
  /// Enc: chain the mapped values in the keyed order and OPE-encrypt.
  [[nodiscard]] BigInt encrypt_chain(const std::vector<BigInt>& mapped) const;
  /// Auth: the verification token for this user.
  [[nodiscard]] Bytes make_auth_token(RandomSource& rng) const;

  /// Full upload message (InitData + Enc + Auth). Requires a key.
  [[nodiscard]] UploadMessage make_upload(RandomSource& rng) const;
  /// Upload from an already-mapped InitData vector (Enc + Auth only);
  /// what enroll_and_upload_batch uses after its blind stage mapped the
  /// profile. Requires a key. Bytes identical to assembling by hand.
  [[nodiscard]] UploadMessage assemble_upload(const std::vector<BigInt>& mapped,
                                              RandomSource& rng) const;
  [[nodiscard]] QueryRequest make_query(std::uint32_t query_id, std::uint64_t timestamp) const;

  /// Enc over many already-mapped uploads: ciphertexts[i] corresponds to
  /// mapped_batch[i], fanned across `pool` (inline when null). The walks
  /// share the key's OPE node cache, so a batch costs far fewer split
  /// samples than independent encryptions. kMalformedMessage when no
  /// profile key is installed or an input violates the chain layout;
  /// never throws, and ciphertexts are byte-identical to sequential
  /// encrypt_chain calls.
  [[nodiscard]] StatusOr<std::vector<BigInt>> encrypt_batch(
      const std::vector<std::vector<BigInt>>& mapped_batch,
      ThreadPool* pool = nullptr) const;

  /// Full InitData + Enc + Auth for `count` independent uploads, fanned
  /// across `pool`. Each upload draws from a child generator forked off
  /// `rng` up front, so results are deterministic given the seed and
  /// identical whether or not a pool is supplied. kMalformedMessage when
  /// no profile key is installed; never throws.
  [[nodiscard]] StatusOr<std::vector<UploadMessage>> make_upload_batch(
      std::size_t count, RandomSource& rng, ThreadPool* pool = nullptr) const;

  /// Vf for a single result entry.
  [[nodiscard]] bool verify_entry(const MatchEntry& entry) const;
  /// Convenience: number of entries that verify.
  [[nodiscard]] std::size_t count_verified(const QueryResult& result) const;

  /// Outcome of verifying a whole QueryResult (exception-free hot path).
  struct VerifiedResult {
    std::vector<MatchEntry> verified;  // entries that passed Vf
    std::size_t rejected = 0;          // entries that failed Vf
    [[nodiscard]] bool all_verified() const { return rejected == 0; }
  };

  /// Vf over a full result, echo-checked against the query that produced
  /// it: kMalformedMessage when the result does not echo the query id and
  /// timestamp (a mixed-up or spliced response), otherwise the per-entry
  /// verification outcome. Never throws on tampered input.
  [[nodiscard]] StatusOr<VerifiedResult> verify_result(const QueryRequest& query,
                                                       const QueryResult& result) const;

  /// OPE ciphertext width for this deployment (serialization).
  [[nodiscard]] std::size_t chain_cipher_bits() const;

  /// Pipeline counters + OPE cache numbers. Safe to call concurrently
  /// with the batch entry points.
  [[nodiscard]] ClientMetrics metrics() const;

  [[nodiscard]] const FuzzyKeyGen& keygen() const { return keygen_; }
  [[nodiscard]] const AuthScheme& auth() const { return auth_; }

 private:
  Client(UserId id, Profile profile, ClientConfig config);

  /// Installs the key and builds the key-derived hot-path state (cached
  /// OPE instance, chain permutation).
  void install_key(ProfileKey key, const BigInt& secret);

  UserId id_;
  Profile profile_;
  ClientConfig config_;
  std::vector<EntropyMapper> mappers_;
  AttributeChain chain_;
  FuzzyKeyGen keygen_;
  AuthScheme auth_;
  std::optional<ProfileKey> key_;
  BigInt secret_;  // s_u

  // Hot-path state resolved once instead of per upload.
  std::vector<EntropyMapper::PreparedValue> prepared_;  // this profile's sub-ranges
  std::optional<Ope> ope_;                              // cached; rebuilt per key
  std::vector<std::size_t> perm_;                       // keyed chain order
  std::unique_ptr<ClientCounters> counters_;
};

/// Batched wire-format enrollment: runs Keygen for many clients in one
/// key-server round and assembles their upload messages.
///
/// The pipeline hoists the key-independent profile work (entropy mapping)
/// out of the OPRF critical path, ships every blinded request through one
/// `KeyServer::handle_batch()` call, then fans the post-round work
/// (unblinding, chaining, OPE encryption, auth tokens) across `pool`.
/// Each client draws from an independent child generator forked off `rng`
/// up front, so the parallel stages are deterministic given the seed and
/// free of RandomSource contention.
///
/// On success, clients[i] has its profile key installed and results[i]
/// holds its upload; on failure results[i] carries the key-server or
/// finalization Status (kBudgetExhausted, kMalformedMessage, ...) and the
/// client is left without a key. Clients must be distinct objects. With
/// `pool == nullptr` the client-side stages run inline on the caller.
[[nodiscard]] std::vector<StatusOr<UploadMessage>> enroll_and_upload_batch(
    std::span<Client* const> clients, KeyServer& key_server, RandomSource& rng,
    ThreadPool* pool = nullptr);

}  // namespace smatch
