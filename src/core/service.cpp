#include "core/service.hpp"

#include <utility>

#include "core/messages.hpp"

namespace smatch {

SmatchService::SmatchService(MatchServer& match_server, KeyServer& key_server,
                             std::size_t top_k, UploadTap upload_tap) {
  dispatcher_.register_handler(
      MessageKind::kUpload,
      [&match_server, tap = std::move(upload_tap)](BytesView body) -> StatusOr<Bytes> {
        if (tap) tap(body);
        StatusOr<UploadMessage> upload = UploadMessage::parse(body);
        if (!upload.is_ok()) return upload.status();
        if (Status s = match_server.ingest(*upload); !s.is_ok()) return s;
        return Bytes{};
      });
  dispatcher_.register_handler(
      MessageKind::kQuery,
      [&match_server, top_k](BytesView body) -> StatusOr<Bytes> {
        StatusOr<QueryRequest> query = QueryRequest::parse(body);
        if (!query.is_ok()) return query.status();
        StatusOr<QueryResult> result = match_server.match(*query, top_k);
        if (!result.is_ok()) return result.status();
        return result->serialize();
      });
  dispatcher_.register_handler(
      MessageKind::kOprf, [&key_server](BytesView body) -> StatusOr<Bytes> {
        return key_server.handle(body);
      });
}

RemoteClient::RemoteClient(Client& client, Transport& transport,
                           const RsaPublicKey& key_server_public_key,
                           RetryPolicy policy, std::uint64_t seed)
    : client_(client),
      session_(transport, policy, seed),
      key_server_public_key_(key_server_public_key) {}

Status RemoteClient::enroll(RandomSource& rng) {
  KeygenSession keygen(client_.keygen(), client_.profile(), key_server_public_key_,
                       client_.id(), rng);
  StatusOr<Bytes> response = session_.call(MessageKind::kOprf, keygen.request_wire());
  if (!response.is_ok()) return response.status();
  StatusOr<ProfileKey> key = keygen.finalize(*response);
  if (!key.is_ok()) return key.status();
  client_.set_profile_key(std::move(*key), client_.auth().random_secret(rng));
  return Status::ok();
}

Status RemoteClient::upload(RandomSource& rng) {
  const UploadMessage message = client_.make_upload(rng);
  StatusOr<Bytes> response = session_.call(MessageKind::kUpload, message.serialize());
  return response.is_ok() ? Status::ok() : response.status();
}

StatusOr<Client::VerifiedResult> RemoteClient::query(std::uint32_t query_id,
                                                     std::uint64_t timestamp) {
  const QueryRequest request = client_.make_query(query_id, timestamp);
  StatusOr<Bytes> response = session_.call(MessageKind::kQuery, request.serialize());
  if (!response.is_ok()) return response.status();
  StatusOr<QueryResult> result = QueryResult::parse(*response);
  if (!result.is_ok()) return result.status();
  return client_.verify_result(request, *result);
}

}  // namespace smatch
