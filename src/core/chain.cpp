#include "core/chain.hpp"

#include <numeric>

#include "common/error.hpp"
#include "crypto/prf.hpp"

namespace smatch {

AttributeChain::AttributeChain(std::size_t num_attributes, std::size_t attribute_bits)
    : AttributeChain(std::vector<std::size_t>(num_attributes, attribute_bits)) {}

AttributeChain::AttributeChain(std::vector<std::size_t> widths)
    : widths_(std::move(widths)) {
  if (widths_.empty()) throw Error("AttributeChain: need at least one attribute");
  for (std::size_t w : widths_) {
    if (w == 0) throw Error("AttributeChain: attribute width must be >= 1");
  }
  total_bits_ = std::accumulate(widths_.begin(), widths_.end(), std::size_t{0});
}

std::vector<std::size_t> AttributeChain::permutation(BytesView profile_key) const {
  const std::size_t d = widths_.size();
  std::vector<std::size_t> perm(d);
  for (std::size_t i = 0; i < d; ++i) perm[i] = i;
  // Keyed Fisher-Yates: identical keys yield identical orders.
  Drbg coins = prf_stream(profile_key, to_bytes("smatch-chain-permutation"));
  for (std::size_t i = d; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(coins.below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

BigInt AttributeChain::assemble(const std::vector<BigInt>& mapped,
                                BytesView profile_key) const {
  return assemble(mapped, permutation(profile_key));
}

BigInt AttributeChain::assemble(const std::vector<BigInt>& mapped,
                                const std::vector<std::size_t>& perm) const {
  if (mapped.size() != widths_.size() || perm.size() != widths_.size()) {
    throw Error("AttributeChain: arity mismatch");
  }
  BigInt chain;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const std::size_t attr = perm[i];
    const BigInt& v = mapped[attr];
    if (v.is_negative() || v.bit_length() > widths_[attr]) {
      throw Error("AttributeChain: mapped value exceeds attribute width");
    }
    chain <<= widths_[attr];
    chain += v;
  }
  return chain;
}

std::vector<BigInt> AttributeChain::disassemble(const BigInt& chain,
                                                BytesView profile_key) const {
  return disassemble(chain, permutation(profile_key));
}

std::vector<BigInt> AttributeChain::disassemble(
    const BigInt& chain, const std::vector<std::size_t>& perm) const {
  if (chain.is_negative() || chain.bit_length() > chain_bits()) {
    throw Error("AttributeChain: chain out of range");
  }
  if (perm.size() != widths_.size()) throw Error("AttributeChain: arity mismatch");
  std::vector<BigInt> mapped(widths_.size());
  BigInt rest = chain;
  for (std::size_t i = perm.size(); i-- > 0;) {
    const std::size_t attr = perm[i];
    const BigInt mask = (BigInt{1} << widths_[attr]) - BigInt{1};
    mapped[attr] = rest % (BigInt{1} << widths_[attr]);
    rest >>= widths_[attr];
  }
  return mapped;
}

}  // namespace smatch
