// Umbrella header: the full public API of the S-MATCH library.
//
// S-MATCH = (Keygen, InitData, Enc, Match, Auth, Vf)   [paper Fig. 3]
//
//   Keygen  -> Client::generate_key / FuzzyKeyGen        (client)
//   InitData-> Client::init_data  (EntropyMapper + AttributeChain)
//   Enc     -> Client::encrypt_chain                      (OPE)
//   Match   -> MatchServer::match                         (server)
//   Auth    -> Client::make_auth_token / AuthScheme
//   Vf      -> Client::verify_entry
//
// Quickstart: see examples/quickstart.cpp.
#pragma once

#include "common/status.hpp"   // IWYU pragma: export
#include "core/adaptive.hpp"   // IWYU pragma: export
#include "core/auth.hpp"       // IWYU pragma: export
#include "core/chain.hpp"      // IWYU pragma: export
#include "core/client.hpp"     // IWYU pragma: export
#include "core/entropy_map.hpp"// IWYU pragma: export
#include "core/keygen.hpp"     // IWYU pragma: export
#include "core/key_server.hpp" // IWYU pragma: export
#include "core/messages.hpp"   // IWYU pragma: export
#include "core/metrics.hpp"    // IWYU pragma: export
#include "core/server.hpp"     // IWYU pragma: export
#include "core/types.hpp"      // IWYU pragma: export
