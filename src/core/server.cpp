#include "core/server.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace smatch {

void MatchServer::ingest(const UploadMessage& upload) {
  if (upload.key_index.empty()) throw ProtocolError("upload without key index");

  // Replace any previous upload from this user (periodic re-upload in the
  // system model).
  if (auto it = user_group_.find(upload.user_id); it != user_group_.end()) {
    auto& old_group = groups_[it->second];
    std::erase_if(old_group, [&](const Record& r) { return r.id == upload.user_id; });
    if (old_group.empty()) groups_.erase(it->second);
    user_group_.erase(it);
  }

  groups_[upload.key_index].push_back(
      {upload.user_id, upload.chain_cipher, upload.auth_token});
  user_group_[upload.user_id] = upload.key_index;
}

std::size_t MatchServer::sorted_group(UserId querier,
                                      std::vector<const Record*>& out) const {
  const auto group_it = user_group_.find(querier);
  if (group_it == user_group_.end()) {
    throw ProtocolError("match: unknown querier");
  }

  // EXTRA: the querier's key group (h(K_vp) filter).
  const auto& members = groups_.at(group_it->second);

  // SORT by OPE ciphertext == sort by plaintext chain order.
  out.clear();
  out.reserve(members.size());
  for (const auto& r : members) out.push_back(&r);
  std::sort(out.begin(), out.end(), [this](const Record* a, const Record* b) {
    ++comparisons_;
    return a->chain < b->chain;
  });

  // FIND the querier's position.
  const auto pos_it = std::find_if(out.begin(), out.end(),
                                   [&](const Record* r) { return r->id == querier; });
  return static_cast<std::size_t>(pos_it - out.begin());
}

void MatchServer::check_freshness(const QueryRequest& query) const {
  if (!replay_protection_) return;
  auto [it, inserted] = last_query_time_.try_emplace(query.user_id, query.timestamp);
  if (!inserted) {
    if (query.timestamp <= it->second) {
      throw ProtocolError("match: stale or replayed query timestamp");
    }
    it->second = query.timestamp;
  }
}

QueryResult MatchServer::match(const QueryRequest& query, std::size_t k) const {
  check_freshness(query);
  std::vector<const Record*> sorted;
  const std::size_t pos = sorted_group(query.user_id, sorted);

  // Return up to k/2 neighbours on each side (Algorithm Match), widening
  // to the other side when one side runs out.
  QueryResult result;
  result.query_id = query.query_id;
  result.timestamp = query.timestamp;

  std::size_t lo = pos;  // exclusive walk downward
  std::size_t hi = pos;  // exclusive walk upward
  while (result.entries.size() < k && (lo > 0 || hi + 1 < sorted.size())) {
    if (lo > 0) {
      --lo;
      result.entries.push_back({sorted[lo]->id, sorted[lo]->auth_token});
      if (result.entries.size() >= k) break;
    }
    if (hi + 1 < sorted.size()) {
      ++hi;
      result.entries.push_back({sorted[hi]->id, sorted[hi]->auth_token});
    }
  }
  return result;
}

QueryResult MatchServer::match_within(const QueryRequest& query,
                                      std::size_t max_order_distance) const {
  check_freshness(query);
  std::vector<const Record*> sorted;
  const std::size_t pos = sorted_group(query.user_id, sorted);

  QueryResult result;
  result.query_id = query.query_id;
  result.timestamp = query.timestamp;
  // Alternate outward so entries come back in increasing order distance.
  for (std::size_t d = 1; d <= max_order_distance; ++d) {
    if (pos >= d) {
      const Record* r = sorted[pos - d];
      result.entries.push_back({r->id, r->auth_token});
    }
    if (pos + d < sorted.size()) {
      const Record* r = sorted[pos + d];
      result.entries.push_back({r->id, r->auth_token});
    }
  }
  return result;
}

std::size_t MatchServer::group_size_of(UserId user) const {
  const auto it = user_group_.find(user);
  if (it == user_group_.end()) return 0;
  return groups_.at(it->second).size();
}

QueryResult tamper_result(const QueryResult& honest, ServerAttack attack,
                          RandomSource& rng, const std::vector<MatchEntry>& foreign) {
  QueryResult fake = honest;
  switch (attack) {
    case ServerAttack::kForgeToken:
      for (auto& e : fake.entries) {
        e.auth_token = rng.bytes(e.auth_token.size());
      }
      break;
    case ServerAttack::kSwapIdentity:
      // Claim each token belongs to a different user id.
      for (auto& e : fake.entries) {
        e.user_id = e.user_id ^ 0x5a5a5a5au;
      }
      break;
    case ServerAttack::kForeignUser:
      fake.entries.assign(foreign.begin(), foreign.end());
      break;
  }
  return fake;
}

}  // namespace smatch
