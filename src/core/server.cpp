#include "core/server.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace smatch {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

MatchServer::MatchServer(ServerOptions options)
    : batch_threads_(options.batch_threads) {
  const std::size_t n = std::max<std::size_t>(1, options.num_shards);
  shards_.reserve(n);
  directory_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    directory_.push_back(std::make_unique<DirectoryShard>());
  }
  replay_protection_.store(options.replay_protection, kRelaxed);
}

std::size_t MatchServer::shard_index(const Bytes& key_index) const {
  // Key-index prefix -> shard. h(K_up) is a hash, so the first two bytes
  // are uniform; two bytes keep the modulo unbiased up to 2^16 shards.
  std::size_t prefix = key_index[0];
  if (key_index.size() > 1) prefix = prefix << 8 | key_index[1];
  return prefix % shards_.size();
}

MatchServer::Shard& MatchServer::shard_for(const Bytes& key_index) {
  return *shards_[shard_index(key_index)];
}

const MatchServer::Shard& MatchServer::shard_for(const Bytes& key_index) const {
  return *shards_[shard_index(key_index)];
}

MatchServer::DirectoryShard& MatchServer::directory_for(UserId user) {
  return *directory_[user % directory_.size()];
}

const MatchServer::DirectoryShard& MatchServer::directory_for(UserId user) const {
  return *directory_[user % directory_.size()];
}

ThreadPool& MatchServer::pool() {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(batch_threads_);
    pool_ready_.store(true, std::memory_order_release);
  });
  return *pool_;
}

Status MatchServer::ingest(const UploadMessage& upload) {
  SMATCH_SPAN_HIST("match.ingest", &ingest_hist_);
  if (upload.key_index.empty()) {
    return {StatusCode::kMalformedMessage, "upload without key index"};
  }

  // The directory lock serializes all operations on this user; data-shard
  // locks are taken strictly after it and never two at a time.
  DirectoryShard& dir = directory_for(upload.user_id);
  std::unique_lock dir_lock(dir.mu);

  // Replace any previous upload from this user (periodic re-upload in the
  // system model), possibly moving it between shards.
  if (auto it = dir.key_of.find(upload.user_id); it != dir.key_of.end()) {
    Shard& old_shard = shard_for(it->second);
    std::unique_lock old_lock(old_shard.mu);
    if (auto git = old_shard.groups.find(it->second); git != old_shard.groups.end()) {
      std::erase_if(git->second, [&](const Record& r) { return r.id == upload.user_id; });
      if (git->second.empty()) old_shard.groups.erase(git);
    }
  }

  Shard& shard = shard_for(upload.key_index);
  {
    std::unique_lock shard_lock(shard.mu);
    shard.groups[upload.key_index].push_back(
        {upload.user_id, upload.chain_cipher, upload.auth_token});
  }
  shard.ingests.fetch_add(1, kRelaxed);
  dir.key_of[upload.user_id] = upload.key_index;
  return Status::ok();
}

std::vector<Status> MatchServer::ingest_batch(std::span<const UploadMessage> uploads) {
  SMATCH_SPAN("match.ingest_batch");
  std::vector<Status> statuses(uploads.size());
  pool().parallel_for(uploads.size(),
                      [&](std::size_t i) { statuses[i] = ingest(uploads[i]); });
  return statuses;
}

Status MatchServer::route_query(const QueryRequest& query, Bytes& key_index) {
  DirectoryShard& dir = directory_for(query.user_id);
  if (!replay_protection_.load(kRelaxed)) {
    std::shared_lock lk(dir.mu);
    const auto it = dir.key_of.find(query.user_id);
    if (it == dir.key_of.end()) return {StatusCode::kUnknownUser, "match: unknown querier"};
    key_index = it->second;
    return Status::ok();
  }

  // Replay protection mutates the per-user clock: exclusive lock.
  std::unique_lock lk(dir.mu);
  const auto it = dir.key_of.find(query.user_id);
  if (it == dir.key_of.end()) return {StatusCode::kUnknownUser, "match: unknown querier"};
  auto [clock, inserted] = dir.last_query_time.try_emplace(query.user_id, query.timestamp);
  if (!inserted) {
    if (query.timestamp <= clock->second) {
      replay_rejections_.fetch_add(1, kRelaxed);
      return {StatusCode::kStaleTimestamp, "match: stale or replayed query timestamp"};
    }
    clock->second = query.timestamp;
  }
  key_index = it->second;
  return Status::ok();
}

void MatchServer::sort_group(const std::vector<Record>& members,
                             std::vector<const Record*>& out,
                             std::uint64_t& comparisons) {
  // SORT by OPE ciphertext == sort by plaintext chain order.
  out.clear();
  out.reserve(members.size());
  for (const auto& r : members) out.push_back(&r);
  std::sort(out.begin(), out.end(), [&comparisons](const Record* a, const Record* b) {
    ++comparisons;
    return a->chain < b->chain;
  });
}

Status MatchServer::collect_knn(const std::vector<const Record*>& sorted, UserId querier,
                                std::size_t k, QueryResult& result) {
  // FIND the querier's position.
  const auto pos_it = std::find_if(sorted.begin(), sorted.end(),
                                   [&](const Record* r) { return r->id == querier; });
  if (pos_it == sorted.end()) {
    return {StatusCode::kEmptyGroup, "match: querier missing from its key group"};
  }
  const auto pos = static_cast<std::size_t>(pos_it - sorted.begin());

  // Return up to k/2 neighbours on each side (Algorithm Match), widening
  // to the other side when one side runs out.
  std::size_t lo = pos;  // exclusive walk downward
  std::size_t hi = pos;  // exclusive walk upward
  while (result.entries.size() < k && (lo > 0 || hi + 1 < sorted.size())) {
    if (lo > 0) {
      --lo;
      result.entries.push_back({sorted[lo]->id, sorted[lo]->auth_token});
      if (result.entries.size() >= k) break;
    }
    if (hi + 1 < sorted.size()) {
      ++hi;
      result.entries.push_back({sorted[hi]->id, sorted[hi]->auth_token});
    }
  }
  return Status::ok();
}

Status MatchServer::collect_within(const std::vector<const Record*>& sorted,
                                   UserId querier, std::size_t max_order_distance,
                                   QueryResult& result) {
  const auto pos_it = std::find_if(sorted.begin(), sorted.end(),
                                   [&](const Record* r) { return r->id == querier; });
  if (pos_it == sorted.end()) {
    return {StatusCode::kEmptyGroup, "match: querier missing from its key group"};
  }
  const auto pos = static_cast<std::size_t>(pos_it - sorted.begin());

  // Alternate outward so entries come back in increasing order distance.
  for (std::size_t d = 1; d <= max_order_distance; ++d) {
    if (pos >= d) {
      const Record* r = sorted[pos - d];
      result.entries.push_back({r->id, r->auth_token});
    }
    if (pos + d < sorted.size()) {
      const Record* r = sorted[pos + d];
      result.entries.push_back({r->id, r->auth_token});
    }
  }
  return Status::ok();
}

StatusOr<QueryResult> MatchServer::match(const QueryRequest& query, std::size_t k) {
  SMATCH_SPAN_HIST("match.match", &match_hist_);
  Bytes key_index;
  if (Status routed = route_query(query, key_index); !routed.is_ok()) return routed;

  Shard& shard = shard_for(key_index);
  QueryResult result;
  result.query_id = query.query_id;
  result.timestamp = query.timestamp;
  {
    std::shared_lock lk(shard.mu);
    const auto git = shard.groups.find(key_index);
    if (git == shard.groups.end()) {
      // The group moved between directory lookup and shard read (racing
      // re-upload); the caller simply retries.
      return Status(StatusCode::kEmptyGroup, "match: querier's key group is gone");
    }
    std::vector<const Record*> sorted;
    std::uint64_t comparisons = 0;
    sort_group(git->second, sorted, comparisons);
    shard.comparisons.fetch_add(comparisons, kRelaxed);
    if (Status s = collect_knn(sorted, query.user_id, k, result); !s.is_ok()) return s;
  }
  shard.matches.fetch_add(1, kRelaxed);
  return result;
}

StatusOr<QueryResult> MatchServer::match_within(const QueryRequest& query,
                                                std::size_t max_order_distance) {
  SMATCH_SPAN_HIST("match.match_within", &match_hist_);
  Bytes key_index;
  if (Status routed = route_query(query, key_index); !routed.is_ok()) return routed;

  Shard& shard = shard_for(key_index);
  QueryResult result;
  result.query_id = query.query_id;
  result.timestamp = query.timestamp;
  {
    std::shared_lock lk(shard.mu);
    const auto git = shard.groups.find(key_index);
    if (git == shard.groups.end()) {
      return Status(StatusCode::kEmptyGroup, "match: querier's key group is gone");
    }
    std::vector<const Record*> sorted;
    std::uint64_t comparisons = 0;
    sort_group(git->second, sorted, comparisons);
    shard.comparisons.fetch_add(comparisons, kRelaxed);
    if (Status s = collect_within(sorted, query.user_id, max_order_distance, result);
        !s.is_ok()) {
      return s;
    }
  }
  shard.matches.fetch_add(1, kRelaxed);
  return result;
}

std::vector<StatusOr<QueryResult>> MatchServer::match_batch(
    std::span<const QueryRequest> queries, std::size_t k) {
  SMATCH_SPAN("match.match_batch");
  std::vector<StatusOr<QueryResult>> results;
  results.reserve(queries.size());

  // Phase 1 — route every query through the directory in submission order
  // (replay clocks advance exactly as they would sequentially) and bucket
  // the survivors by data shard.
  std::vector<Bytes> keys(queries.size());
  std::vector<std::vector<std::size_t>> by_shard(shards_.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    Status routed = route_query(queries[i], keys[i]);
    if (routed.is_ok()) {
      by_shard[shard_index(keys[i])].push_back(i);
      results.emplace_back(QueryResult{});  // placeholder, overwritten below
    } else {
      results.emplace_back(std::move(routed));
    }
  }

  std::vector<std::size_t> active;
  for (std::size_t s = 0; s < by_shard.size(); ++s) {
    if (!by_shard[s].empty()) active.push_back(s);
  }

  // Phase 2 — per shard, under one shared lock: sort each key group once
  // for the whole batch, then answer every query against the cached order.
  pool().parallel_for(active.size(), [&](std::size_t a) {
    Shard& shard = *shards_[active[a]];
    std::shared_lock lk(shard.mu);
    std::map<Bytes, std::vector<const Record*>> sorted_cache;
    std::uint64_t comparisons = 0;
    std::uint64_t sorts = 0;
    std::uint64_t served = 0;

    for (const std::size_t i : by_shard[active[a]]) {
      // Per-query latency lands in the same histogram the sequential path
      // feeds, so the snapshot is comparable across entry points.
      SMATCH_SPAN_HIST("match.match", &match_hist_);
      auto [cached, fresh] = sorted_cache.try_emplace(keys[i]);
      if (fresh) {
        // Groups are erased when emptied, so an absent key leaves the
        // cached vector empty — the kEmptyGroup marker below.
        if (const auto git = shard.groups.find(keys[i]); git != shard.groups.end()) {
          sort_group(git->second, cached->second, comparisons);
          ++sorts;
        }
      }
      if (cached->second.empty()) {
        results[i] = Status(StatusCode::kEmptyGroup, "match: querier's key group is gone");
        continue;
      }
      QueryResult result;
      result.query_id = queries[i].query_id;
      result.timestamp = queries[i].timestamp;
      if (Status s = collect_knn(cached->second, queries[i].user_id, k, result);
          s.is_ok()) {
        results[i] = std::move(result);
        ++served;
      } else {
        results[i] = std::move(s);
      }
    }
    shard.comparisons.fetch_add(comparisons, kRelaxed);
    shard.matches.fetch_add(served, kRelaxed);
    batch_group_sorts_.fetch_add(sorts, kRelaxed);
  });
  return results;
}

std::size_t MatchServer::num_users() const {
  std::size_t n = 0;
  for (const auto& dir : directory_) {
    std::shared_lock lk(dir->mu);
    n += dir->key_of.size();
  }
  return n;
}

std::size_t MatchServer::num_groups() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lk(shard->mu);
    n += shard->groups.size();
  }
  return n;
}

std::size_t MatchServer::group_size_of(UserId user) const {
  Bytes key_index;
  {
    const DirectoryShard& dir = directory_for(user);
    std::shared_lock lk(dir.mu);
    const auto it = dir.key_of.find(user);
    if (it == dir.key_of.end()) return 0;
    key_index = it->second;
  }
  const Shard& shard = shard_for(key_index);
  std::shared_lock lk(shard.mu);
  const auto git = shard.groups.find(key_index);
  return git == shard.groups.end() ? 0 : git->second.size();
}

ServerMetrics MatchServer::metrics() const {
  ServerMetrics m;
  m.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardMetrics s;
    s.ingests = shard->ingests.load(kRelaxed);
    s.matches = shard->matches.load(kRelaxed);
    s.comparisons = shard->comparisons.load(kRelaxed);
    {
      std::shared_lock lk(shard->mu);
      s.groups = shard->groups.size();
      for (const auto& [key, members] : shard->groups) {
        s.users += members.size();
        ++m.group_size_histogram[members.size()];
      }
    }
    m.ingests += s.ingests;
    m.matches += s.matches;
    m.comparisons += s.comparisons;
    m.shards.push_back(s);
  }
  m.replay_rejections = replay_rejections_.load(kRelaxed);
  m.batch_group_sorts = batch_group_sorts_.load(kRelaxed);
  m.ingest_latency_ns = ingest_hist_.snapshot();
  m.match_latency_ns = match_hist_.snapshot();
  if (pool_ready_.load(std::memory_order_acquire)) m.pool = pool_->metrics();
  return m;
}

std::uint64_t MatchServer::comparisons() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->comparisons.load(kRelaxed);
  return n;
}

QueryResult tamper_result(const QueryResult& honest, ServerAttack attack,
                          RandomSource& rng, const std::vector<MatchEntry>& foreign) {
  QueryResult fake = honest;
  switch (attack) {
    case ServerAttack::kForgeToken:
      for (auto& e : fake.entries) {
        e.auth_token = rng.bytes(e.auth_token.size());
      }
      break;
    case ServerAttack::kSwapIdentity:
      // Claim each token belongs to a different user id.
      for (auto& e : fake.entries) {
        e.user_id = e.user_id ^ 0x5a5a5a5au;
      }
      break;
    case ServerAttack::kForeignUser:
      fake.entries.assign(foreign.begin(), foreign.end());
      break;
  }
  return fake;
}

}  // namespace smatch
