#include "core/server.hpp"

#include <algorithm>

#include "common/serde.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace smatch {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

/// The resident-bytes gauge shared by every MatchServer instance.
std::atomic<std::int64_t>* resident_gauge() {
  static std::atomic<std::int64_t>* g =
      obs::Registry::global().gauge("smatch_store_resident_bytes");
  return g;
}

}  // namespace

MatchServer::MatchServer(ServerOptions options)
    : batch_threads_(options.batch_threads) {
  const std::size_t n = std::max<std::size_t>(1, options.num_shards);
  shards_.reserve(n);
  directory_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    directory_.push_back(std::make_unique<DirectoryShard>());
  }
  replay_protection_.store(options.replay_protection, kRelaxed);
}

std::size_t MatchServer::shard_index(const Bytes& key_index) const {
  // Key-index prefix -> shard. h(K_up) is a hash, so the first two bytes
  // are uniform; two bytes keep the modulo unbiased up to 2^16 shards.
  std::size_t prefix = key_index[0];
  if (key_index.size() > 1) prefix = prefix << 8 | key_index[1];
  return prefix % shards_.size();
}

MatchServer::Shard& MatchServer::shard_for(const Bytes& key_index) {
  return *shards_[shard_index(key_index)];
}

const MatchServer::Shard& MatchServer::shard_for(const Bytes& key_index) const {
  return *shards_[shard_index(key_index)];
}

MatchServer::DirectoryShard& MatchServer::directory_for(UserId user) {
  return *directory_[user % directory_.size()];
}

const MatchServer::DirectoryShard& MatchServer::directory_for(UserId user) const {
  return *directory_[user % directory_.size()];
}

ThreadPool& MatchServer::pool() {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(batch_threads_);
    pool_ready_.store(true, std::memory_order_release);
  });
  return *pool_;
}

Bytes MatchServer::record_wire(const Bytes& key_index, const Record& r) {
  UploadMessage upload;
  upload.user_id = r.id;
  upload.key_index = key_index;
  upload.chain_cipher = r.chain;
  upload.chain_cipher_bits = r.chain_bits;
  upload.auth_token = r.auth_token;
  return upload.serialize();
}

std::size_t MatchServer::record_wire_size(const Bytes& key_index, const Record& r) {
  // header(3) + user(4) + len+key + bits(4) + chain + len+token — must
  // track UploadMessage::serialize exactly (store_test pins this).
  return 3 + 4 + 4 + key_index.size() + 4 + (r.chain_bits + 7) / 8 + 4 +
         r.auth_token.size();
}

void MatchServer::touch(Group& group) {
  group.last_touch = touch_clock_.fetch_add(1, kRelaxed) + 1;
}

Status MatchServer::ensure_resident(Shard& shard, const Bytes& key_index,
                                    Group& group) {
  if (group.resident) return Status::ok();
  // Page payload: count:u32 || count x var_bytes(upload wire).
  StatusOr<Bytes> page = store_->read_page(key_index);
  if (!page.is_ok()) return page.status();
  try {
    Reader r(*page);
    const std::uint32_t count = r.u32();
    group.members.clear();
    group.members.reserve(count);
    std::size_t bytes = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      const Bytes wire = r.var_bytes();
      StatusOr<UploadMessage> upload = UploadMessage::parse(wire);
      if (!upload.is_ok()) return upload.status();
      group.members.push_back({upload->user_id, upload->chain_cipher,
                               upload->chain_cipher_bits, upload->auth_token});
      bytes += wire.size();
    }
    r.finish();
    group.resident = true;
    group.bytes = bytes;
    group.count = 0;
    shard.resident_bytes += bytes;
    resident_gauge()->fetch_add(static_cast<std::int64_t>(bytes), kRelaxed);
  } catch (const SerdeError& e) {
    return Status(StatusCode::kMalformedMessage,
                  std::string("page payload: ") + e.what());
  }
  return Status::ok();
}

Status MatchServer::evict_over_budget(Shard& shard, const Bytes& keep) {
  while (shard.resident_bytes > shard_budget_) {
    // LRU scan: the coldest resident group other than the one just used.
    auto victim = shard.groups.end();
    for (auto it = shard.groups.begin(); it != shard.groups.end(); ++it) {
      if (!it->second.resident || it->first == keep) continue;
      if (victim == shard.groups.end() ||
          it->second.last_touch < victim->second.last_touch) {
        victim = it;
      }
    }
    if (victim == shard.groups.end()) return Status::ok();  // nothing evictable
    Group& group = victim->second;
    Writer w;
    w.u32(static_cast<std::uint32_t>(group.members.size()));
    for (const Record& r : group.members) w.var_bytes(record_wire(victim->first, r));
    if (Status s = store_->write_page(victim->first, w.bytes()); !s.is_ok()) return s;
    group.count = group.members.size();
    group.members.clear();
    group.members.shrink_to_fit();
    group.resident = false;
    shard.resident_bytes -= group.bytes;
    resident_gauge()->fetch_sub(static_cast<std::int64_t>(group.bytes), kRelaxed);
    group.bytes = 0;
  }
  return Status::ok();
}

Status MatchServer::apply_upload_locked(const UploadMessage& upload,
                                        DirectoryShard& dir) {
  // Replace any previous upload from this user (periodic re-upload in the
  // system model), possibly moving it between shards.
  if (auto it = dir.key_of.find(upload.user_id); it != dir.key_of.end()) {
    Shard& old_shard = shard_for(it->second);
    std::unique_lock old_lock(old_shard.mu);
    if (auto git = old_shard.groups.find(it->second); git != old_shard.groups.end()) {
      Group& group = git->second;
      if (Status s = ensure_resident(old_shard, it->second, group); !s.is_ok()) {
        return s;
      }
      std::erase_if(group.members, [&](const Record& r) {
        if (r.id != upload.user_id) return false;
        const std::size_t sz = record_wire_size(it->second, r);
        group.bytes -= sz;
        old_shard.resident_bytes -= sz;
        if (paging_) resident_gauge()->fetch_sub(static_cast<std::int64_t>(sz), kRelaxed);
        return true;
      });
      if (group.members.empty()) {
        if (store_) store_->drop_page(it->second);
        old_shard.groups.erase(git);
      }
    }
  }

  Shard& shard = shard_for(upload.key_index);
  {
    std::unique_lock shard_lock(shard.mu);
    Group& group = shard.groups[upload.key_index];
    if (Status s = ensure_resident(shard, upload.key_index, group); !s.is_ok()) {
      return s;
    }
    group.members.push_back({upload.user_id, upload.chain_cipher,
                             upload.chain_cipher_bits, upload.auth_token});
    const std::size_t sz = record_wire_size(upload.key_index, group.members.back());
    group.bytes += sz;
    shard.resident_bytes += sz;
    if (paging_) {
      resident_gauge()->fetch_add(static_cast<std::int64_t>(sz), kRelaxed);
      touch(group);
      if (Status s = evict_over_budget(shard, upload.key_index); !s.is_ok()) return s;
    }
  }
  shard.ingests.fetch_add(1, kRelaxed);
  dir.key_of[upload.user_id] = upload.key_index;
  return Status::ok();
}

Status MatchServer::ingest(const UploadMessage& upload) {
  SMATCH_SPAN_HIST("match.ingest", &ingest_hist_);
  if (upload.key_index.empty()) {
    return {StatusCode::kMalformedMessage, "upload without key index"};
  }

  // The directory lock serializes all operations on this user; data-shard
  // locks are taken strictly after it and never two at a time. The WAL
  // append happens under the same lock, so log order == memory order for
  // any one user (what makes replay reproduce the pre-crash state).
  DirectoryShard& dir = directory_for(upload.user_id);
  std::unique_lock dir_lock(dir.mu);
  if (store_) {
    if (Status s = store_->append(store_->shard_of(upload.user_id),
                                  store::RecordType::kUpload, upload.serialize());
        !s.is_ok()) {
      return s;
    }
  }
  return apply_upload_locked(upload, dir);
}

Status MatchServer::remove_locked(UserId user, DirectoryShard& dir, bool must_exist) {
  const auto it = dir.key_of.find(user);
  if (it == dir.key_of.end()) {
    return must_exist ? Status(StatusCode::kUnknownUser, "remove: unknown user")
                      : Status::ok();
  }
  Shard& shard = shard_for(it->second);
  {
    std::unique_lock shard_lock(shard.mu);
    if (auto git = shard.groups.find(it->second); git != shard.groups.end()) {
      Group& group = git->second;
      if (Status s = ensure_resident(shard, it->second, group); !s.is_ok()) return s;
      std::erase_if(group.members, [&](const Record& r) {
        if (r.id != user) return false;
        const std::size_t sz = record_wire_size(it->second, r);
        group.bytes -= sz;
        shard.resident_bytes -= sz;
        if (paging_) resident_gauge()->fetch_sub(static_cast<std::int64_t>(sz), kRelaxed);
        return true;
      });
      if (group.members.empty()) {
        if (store_) store_->drop_page(it->second);
        shard.groups.erase(git);
      }
    }
  }
  dir.key_of.erase(it);
  dir.last_query_time.erase(user);
  return Status::ok();
}

Status MatchServer::remove(UserId user) {
  DirectoryShard& dir = directory_for(user);
  std::unique_lock dir_lock(dir.mu);
  if (dir.key_of.find(user) == dir.key_of.end()) {
    return {StatusCode::kUnknownUser, "remove: unknown user"};
  }
  if (store_) {
    Writer w;
    w.u32(user);
    if (Status s = store_->append(store_->shard_of(user), store::RecordType::kDelete,
                                  w.bytes());
        !s.is_ok()) {
      return s;
    }
  }
  return remove_locked(user, dir, /*must_exist=*/true);
}

Status MatchServer::attach_store(const store::StoreOptions& options) {
  if (store_) {
    return {StatusCode::kMalformedMessage, "attach_store: store already attached"};
  }
  StatusOr<std::unique_ptr<store::ProfileStore>> opened =
      store::ProfileStore::open(options, shards_.size());
  if (!opened.is_ok()) return opened.status();
  store_ = std::move(*opened);
  if (options.residency.memory_budget_bytes != 0) {
    paging_ = true;
    shard_budget_ = std::max<std::size_t>(
        1, options.residency.memory_budget_bytes / shards_.size());
  }

  for (std::size_t s = 0; s < store_->shards(); ++s) {
    Status replayed = store_->replay(s, [&](const store::StoreRecord& rec) -> Status {
      switch (rec.type) {
        case store::RecordType::kUpload: {
          StatusOr<UploadMessage> upload = UploadMessage::parse(rec.payload);
          if (!upload.is_ok()) return upload.status();
          DirectoryShard& dir = directory_for(upload->user_id);
          std::unique_lock dir_lock(dir.mu);
          return apply_upload_locked(*upload, dir);
        }
        case store::RecordType::kDelete: {
          try {
            Reader r(rec.payload);
            const UserId user = r.u32();
            r.finish();
            DirectoryShard& dir = directory_for(user);
            std::unique_lock dir_lock(dir.mu);
            // Idempotent: a delete surviving in the WAL after its user's
            // records were folded into a snapshot must not error.
            return remove_locked(user, dir, /*must_exist=*/false);
          } catch (const SerdeError& e) {
            return Status(StatusCode::kMalformedMessage,
                          std::string("delete record: ") + e.what());
          }
        }
        default:
          return Status(StatusCode::kMalformedMessage,
                        "match store: unexpected record type");
      }
    });
    if (!replayed.is_ok()) return replayed;
  }

  store_->set_checkpoint_source(
      [this](store::ProfileStore::Checkpoint& cp) { return stream_checkpoint(cp); });
  store_->start_maintenance();
  return Status::ok();
}

Status MatchServer::checkpoint() {
  SMATCH_SPAN("match.checkpoint");
  if (!store_) {
    return {StatusCode::kMalformedMessage, "checkpoint: no store attached"};
  }
  return store_->request_checkpoint().get();
}

Status MatchServer::emit_group_records(store::ProfileStore::Checkpoint& cp,
                                       const Bytes& key, Group& group,
                                       std::optional<std::size_t> only_dir) {
  const std::size_t dirs = directory_.size();
  if (group.resident) {
    for (const Record& r : group.members) {
      if (only_dir.has_value() && r.id % dirs != *only_dir) continue;
      cp.add(store_->shard_of(r.id), store::RecordType::kUpload,
             record_wire(key, r));
    }
    return Status::ok();
  }
  // Evicted group: copy the member wires straight out of the page file
  // without materializing the records.
  StatusOr<Bytes> page = store_->read_page(key);
  if (!page.is_ok()) return page.status();
  try {
    Reader r(*page);
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const Bytes wire = r.var_bytes();
      // user_id sits right after the 3-byte wire header.
      Reader id_reader(BytesView(wire).subspan(3, 4));
      const UserId id = id_reader.u32();
      if (only_dir.has_value() && id % dirs != *only_dir) continue;
      cp.add(store_->shard_of(id), store::RecordType::kUpload, wire);
    }
    r.finish();
  } catch (const SerdeError& e) {
    return Status(StatusCode::kMalformedMessage,
                  std::string("page payload: ") + e.what());
  }
  return Status::ok();
}

Status MatchServer::stream_checkpoint(store::ProfileStore::Checkpoint& cp) {
  SMATCH_SPAN("match.checkpoint_stream");
  if (!store_->options().maintenance.policy.staggered) {
    // Quiesce-all: every mutation starts by taking a directory lock, so
    // holding all of them exclusively stops ingest/remove for the whole
    // sweep; in-flight matches only read. Lock order (directory before
    // data shard) is preserved.
    std::vector<std::unique_lock<std::shared_mutex>> dir_locks;
    dir_locks.reserve(directory_.size());
    for (auto& dir : directory_) dir_locks.emplace_back(dir->mu);
    for (auto& shard : shards_) {
      std::unique_lock shard_lock(shard->mu);
      for (auto& [key, group] : shard->groups) {
        if (Status s = emit_group_records(cp, key, group, std::nullopt);
            !s.is_ok()) {
          return s;
        }
      }
    }
    return Status::ok();
  }

  // Staggered sweep: one directory shard at a time, at a rotating start
  // offset, holding no lock for longer than one group. dir.mu is taken
  // (shared) only to copy the shard's key list; streaming then locks one
  // data shard per group. Mutations are free to interleave anywhere in
  // the sweep: the snapshot's boundary is the sealed frontier captured at
  // rotate_all, so whatever state the sweep observes is at least that
  // old, and every mutation since lives in an active segment that
  // survives GC and replays on top — per-user last-writer-wins makes
  // old-state, new-state, or even both-states emissions all converge. A
  // user keyed into shard d after the copy is simply absent from this
  // snapshot; their WAL record sits beyond the boundary and replays.
  const std::size_t dirs = directory_.size();
  const std::size_t start =
      static_cast<std::size_t>(checkpoint_stagger_.fetch_add(1, kRelaxed)) % dirs;
  for (std::size_t step = 0; step < dirs; ++step) {
    const std::size_t d = (start + step) % dirs;
    DirectoryShard& dir = *directory_[d];
    std::vector<Bytes> keys;
    {
      std::shared_lock dir_lock(dir.mu);
      keys.reserve(dir.key_of.size());
      for (const auto& [user, key] : dir.key_of) keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    for (const Bytes& key : keys) {
      Shard& shard = shard_for(key);
      std::unique_lock shard_lock(shard.mu);
      auto git = shard.groups.find(key);
      if (git == shard.groups.end()) continue;
      if (Status s = emit_group_records(cp, key, git->second, d); !s.is_ok()) {
        return s;
      }
    }
  }
  return Status::ok();
}

std::vector<Status> MatchServer::ingest_batch(std::span<const UploadMessage> uploads) {
  SMATCH_SPAN("match.ingest_batch");
  std::vector<Status> statuses(uploads.size());
  pool().parallel_for(uploads.size(),
                      [&](std::size_t i) { statuses[i] = ingest(uploads[i]); });
  return statuses;
}

Status MatchServer::route_query(const QueryRequest& query, Bytes& key_index) {
  DirectoryShard& dir = directory_for(query.user_id);
  if (!replay_protection_.load(kRelaxed)) {
    std::shared_lock lk(dir.mu);
    const auto it = dir.key_of.find(query.user_id);
    if (it == dir.key_of.end()) return {StatusCode::kUnknownUser, "match: unknown querier"};
    key_index = it->second;
    return Status::ok();
  }

  // Replay protection mutates the per-user clock: exclusive lock.
  std::unique_lock lk(dir.mu);
  const auto it = dir.key_of.find(query.user_id);
  if (it == dir.key_of.end()) return {StatusCode::kUnknownUser, "match: unknown querier"};
  auto [clock, inserted] = dir.last_query_time.try_emplace(query.user_id, query.timestamp);
  if (!inserted) {
    if (query.timestamp <= clock->second) {
      replay_rejections_.fetch_add(1, kRelaxed);
      return {StatusCode::kStaleTimestamp, "match: stale or replayed query timestamp"};
    }
    clock->second = query.timestamp;
  }
  key_index = it->second;
  return Status::ok();
}

void MatchServer::sort_group(const std::vector<Record>& members,
                             std::vector<const Record*>& out,
                             std::uint64_t& comparisons) {
  // SORT by OPE ciphertext == sort by plaintext chain order.
  out.clear();
  out.reserve(members.size());
  for (const auto& r : members) out.push_back(&r);
  std::sort(out.begin(), out.end(), [&comparisons](const Record* a, const Record* b) {
    ++comparisons;
    // Tie-break equal ciphertexts by user id: a total order makes the
    // sorted group — and therefore every kNN answer — byte-identical
    // after a crash-recovery replay (docs/PERSISTENCE.md).
    if (a->chain < b->chain) return true;
    if (b->chain < a->chain) return false;
    return a->id < b->id;
  });
}

Status MatchServer::collect_knn(const std::vector<const Record*>& sorted, UserId querier,
                                std::size_t k, QueryResult& result) {
  // FIND the querier's position.
  const auto pos_it = std::find_if(sorted.begin(), sorted.end(),
                                   [&](const Record* r) { return r->id == querier; });
  if (pos_it == sorted.end()) {
    return {StatusCode::kEmptyGroup, "match: querier missing from its key group"};
  }
  const auto pos = static_cast<std::size_t>(pos_it - sorted.begin());

  // Return up to k/2 neighbours on each side (Algorithm Match), widening
  // to the other side when one side runs out.
  std::size_t lo = pos;  // exclusive walk downward
  std::size_t hi = pos;  // exclusive walk upward
  while (result.entries.size() < k && (lo > 0 || hi + 1 < sorted.size())) {
    if (lo > 0) {
      --lo;
      result.entries.push_back({sorted[lo]->id, sorted[lo]->auth_token});
      if (result.entries.size() >= k) break;
    }
    if (hi + 1 < sorted.size()) {
      ++hi;
      result.entries.push_back({sorted[hi]->id, sorted[hi]->auth_token});
    }
  }
  return Status::ok();
}

Status MatchServer::collect_within(const std::vector<const Record*>& sorted,
                                   UserId querier, std::size_t max_order_distance,
                                   QueryResult& result) {
  const auto pos_it = std::find_if(sorted.begin(), sorted.end(),
                                   [&](const Record* r) { return r->id == querier; });
  if (pos_it == sorted.end()) {
    return {StatusCode::kEmptyGroup, "match: querier missing from its key group"};
  }
  const auto pos = static_cast<std::size_t>(pos_it - sorted.begin());

  // Alternate outward so entries come back in increasing order distance.
  for (std::size_t d = 1; d <= max_order_distance; ++d) {
    if (pos >= d) {
      const Record* r = sorted[pos - d];
      result.entries.push_back({r->id, r->auth_token});
    }
    if (pos + d < sorted.size()) {
      const Record* r = sorted[pos + d];
      result.entries.push_back({r->id, r->auth_token});
    }
  }
  return Status::ok();
}

StatusOr<QueryResult> MatchServer::match(const QueryRequest& query, std::size_t k) {
  SMATCH_SPAN_HIST("match.match", &match_hist_);
  Bytes key_index;
  if (Status routed = route_query(query, key_index); !routed.is_ok()) return routed;

  Shard& shard = shard_for(key_index);
  QueryResult result;
  result.query_id = query.query_id;
  result.timestamp = query.timestamp;
  {
    // Paging mode mutates the group (fault-in, LRU stamp): exclusive lock.
    std::shared_lock<std::shared_mutex> read_lock;
    std::unique_lock<std::shared_mutex> write_lock;
    if (paging_) {
      write_lock = std::unique_lock(shard.mu);
    } else {
      read_lock = std::shared_lock(shard.mu);
    }
    const auto git = shard.groups.find(key_index);
    if (git == shard.groups.end()) {
      // The group moved between directory lookup and shard read (racing
      // re-upload); the caller simply retries.
      return Status(StatusCode::kEmptyGroup, "match: querier's key group is gone");
    }
    if (paging_) {
      if (Status s = ensure_resident(shard, key_index, git->second); !s.is_ok()) {
        return s;
      }
      touch(git->second);
    }
    std::vector<const Record*> sorted;
    std::uint64_t comparisons = 0;
    sort_group(git->second.members, sorted, comparisons);
    shard.comparisons.fetch_add(comparisons, kRelaxed);
    if (Status s = collect_knn(sorted, query.user_id, k, result); !s.is_ok()) return s;
    if (paging_) {
      if (Status s = evict_over_budget(shard, key_index); !s.is_ok()) return s;
    }
  }
  shard.matches.fetch_add(1, kRelaxed);
  return result;
}

StatusOr<QueryResult> MatchServer::match_within(const QueryRequest& query,
                                                std::size_t max_order_distance) {
  SMATCH_SPAN_HIST("match.match_within", &match_hist_);
  Bytes key_index;
  if (Status routed = route_query(query, key_index); !routed.is_ok()) return routed;

  Shard& shard = shard_for(key_index);
  QueryResult result;
  result.query_id = query.query_id;
  result.timestamp = query.timestamp;
  {
    std::shared_lock<std::shared_mutex> read_lock;
    std::unique_lock<std::shared_mutex> write_lock;
    if (paging_) {
      write_lock = std::unique_lock(shard.mu);
    } else {
      read_lock = std::shared_lock(shard.mu);
    }
    const auto git = shard.groups.find(key_index);
    if (git == shard.groups.end()) {
      return Status(StatusCode::kEmptyGroup, "match: querier's key group is gone");
    }
    if (paging_) {
      if (Status s = ensure_resident(shard, key_index, git->second); !s.is_ok()) {
        return s;
      }
      touch(git->second);
    }
    std::vector<const Record*> sorted;
    std::uint64_t comparisons = 0;
    sort_group(git->second.members, sorted, comparisons);
    shard.comparisons.fetch_add(comparisons, kRelaxed);
    if (Status s = collect_within(sorted, query.user_id, max_order_distance, result);
        !s.is_ok()) {
      return s;
    }
    if (paging_) {
      if (Status s = evict_over_budget(shard, key_index); !s.is_ok()) return s;
    }
  }
  shard.matches.fetch_add(1, kRelaxed);
  return result;
}

std::vector<StatusOr<QueryResult>> MatchServer::match_batch(
    std::span<const QueryRequest> queries, std::size_t k) {
  SMATCH_SPAN("match.match_batch");
  std::vector<StatusOr<QueryResult>> results;
  results.reserve(queries.size());

  // Phase 1 — route every query through the directory in submission order
  // (replay clocks advance exactly as they would sequentially) and bucket
  // the survivors by data shard.
  std::vector<Bytes> keys(queries.size());
  std::vector<std::vector<std::size_t>> by_shard(shards_.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    Status routed = route_query(queries[i], keys[i]);
    if (routed.is_ok()) {
      by_shard[shard_index(keys[i])].push_back(i);
      results.emplace_back(QueryResult{});  // placeholder, overwritten below
    } else {
      results.emplace_back(std::move(routed));
    }
  }

  std::vector<std::size_t> active;
  for (std::size_t s = 0; s < by_shard.size(); ++s) {
    if (!by_shard[s].empty()) active.push_back(s);
  }

  // Phase 2 — per shard, under one shared lock: sort each key group once
  // for the whole batch, then answer every query against the cached order.
  pool().parallel_for(active.size(), [&](std::size_t a) {
    Shard& shard = *shards_[active[a]];
    // Paging mode mutates groups (fault-in, LRU stamps): exclusive lock.
    std::shared_lock<std::shared_mutex> read_lock;
    std::unique_lock<std::shared_mutex> write_lock;
    if (paging_) {
      write_lock = std::unique_lock(shard.mu);
    } else {
      read_lock = std::shared_lock(shard.mu);
    }
    std::map<Bytes, std::vector<const Record*>> sorted_cache;
    std::uint64_t comparisons = 0;
    std::uint64_t sorts = 0;
    std::uint64_t served = 0;

    for (const std::size_t i : by_shard[active[a]]) {
      // Per-query latency lands in the same histogram the sequential path
      // feeds, so the snapshot is comparable across entry points.
      SMATCH_SPAN_HIST("match.match", &match_hist_);
      auto [cached, fresh] = sorted_cache.try_emplace(keys[i]);
      if (fresh) {
        // Groups are erased when emptied, so an absent key leaves the
        // cached vector empty — the kEmptyGroup marker below.
        if (const auto git = shard.groups.find(keys[i]); git != shard.groups.end()) {
          if (paging_) {
            if (Status s = ensure_resident(shard, keys[i], git->second); !s.is_ok()) {
              results[i] = std::move(s);
              continue;
            }
            touch(git->second);
          }
          sort_group(git->second.members, cached->second, comparisons);
          ++sorts;
        }
      }
      if (cached->second.empty()) {
        results[i] = Status(StatusCode::kEmptyGroup, "match: querier's key group is gone");
        continue;
      }
      QueryResult result;
      result.query_id = queries[i].query_id;
      result.timestamp = queries[i].timestamp;
      if (Status s = collect_knn(cached->second, queries[i].user_id, k, result);
          s.is_ok()) {
        results[i] = std::move(result);
        ++served;
      } else {
        results[i] = std::move(s);
      }
    }
    shard.comparisons.fetch_add(comparisons, kRelaxed);
    shard.matches.fetch_add(served, kRelaxed);
    batch_group_sorts_.fetch_add(sorts, kRelaxed);
    if (paging_) {
      // Evict only after the whole batch: sorted_cache holds pointers
      // into resident members until here. A failed eviction leaves the
      // shard over budget but loses nothing — the next mutation retries.
      sorted_cache.clear();
      (void)evict_over_budget(shard, Bytes{});
    }
  });
  return results;
}

std::size_t MatchServer::num_users() const {
  std::size_t n = 0;
  for (const auto& dir : directory_) {
    std::shared_lock lk(dir->mu);
    n += dir->key_of.size();
  }
  return n;
}

std::size_t MatchServer::num_groups() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lk(shard->mu);
    n += shard->groups.size();
  }
  return n;
}

std::size_t MatchServer::group_size_of(UserId user) const {
  Bytes key_index;
  {
    const DirectoryShard& dir = directory_for(user);
    std::shared_lock lk(dir.mu);
    const auto it = dir.key_of.find(user);
    if (it == dir.key_of.end()) return 0;
    key_index = it->second;
  }
  const Shard& shard = shard_for(key_index);
  std::shared_lock lk(shard.mu);
  const auto git = shard.groups.find(key_index);
  return git == shard.groups.end() ? 0 : git->second.size();  // evicted: count
}

ServerMetrics MatchServer::metrics() const {
  ServerMetrics m;
  m.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardMetrics s;
    s.ingests = shard->ingests.load(kRelaxed);
    s.matches = shard->matches.load(kRelaxed);
    s.comparisons = shard->comparisons.load(kRelaxed);
    {
      std::shared_lock lk(shard->mu);
      s.groups = shard->groups.size();
      for (const auto& [key, group] : shard->groups) {
        s.users += group.size();
        ++m.group_size_histogram[group.size()];
      }
    }
    m.ingests += s.ingests;
    m.matches += s.matches;
    m.comparisons += s.comparisons;
    m.shards.push_back(s);
  }
  m.replay_rejections = replay_rejections_.load(kRelaxed);
  m.batch_group_sorts = batch_group_sorts_.load(kRelaxed);
  m.ingest_latency_ns = ingest_hist_.snapshot();
  m.match_latency_ns = match_hist_.snapshot();
  if (pool_ready_.load(std::memory_order_acquire)) m.pool = pool_->metrics();
  return m;
}

std::uint64_t MatchServer::comparisons() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->comparisons.load(kRelaxed);
  return n;
}

QueryResult tamper_result(const QueryResult& honest, ServerAttack attack,
                          RandomSource& rng, const std::vector<MatchEntry>& foreign) {
  QueryResult fake = honest;
  switch (attack) {
    case ServerAttack::kForgeToken:
      for (auto& e : fake.entries) {
        e.auth_token = rng.bytes(e.auth_token.size());
      }
      break;
    case ServerAttack::kSwapIdentity:
      // Claim each token belongs to a different user id.
      for (auto& e : fake.entries) {
        e.user_id = e.user_id ^ 0x5a5a5a5au;
      }
      break;
    case ServerAttack::kForeignUser:
      fake.entries.assign(foreign.begin(), foreign.end());
      break;
  }
  return fake;
}

}  // namespace smatch
