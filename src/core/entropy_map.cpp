#include "core/entropy_map.hpp"

#include <cmath>

#include "common/error.hpp"

namespace smatch {

EntropyMapper::EntropyMapper(std::vector<double> probs, std::size_t k_bits)
    : probs_(std::move(probs)), k_bits_(k_bits) {
  if (probs_.size() < 2) throw Error("EntropyMapper: need at least 2 values");
  if (k_bits_ < 4) throw Error("EntropyMapper: k_bits too small");
  const BigInt space = BigInt{1} << k_bits_;
  const BigInt n{static_cast<std::uint64_t>(probs_.size())};
  slot_width_ = space / n;
  if (slot_width_ < BigInt{4}) {
    throw Error("EntropyMapper: message space must be >= 4x the value count");
  }

  // Delta = slot_width / 2 keeps every sub-range R_j = p_j * Delta inside
  // its slot and satisfies the paper's R < 2^k / (2n - 1) bound.
  const BigInt delta = slot_width_ >> 1;
  const long double delta_ld = delta.to_long_double();
  subrange_.reserve(probs_.size());
  for (double p : probs_) {
    if (p < 0.0 || p > 1.0) throw Error("EntropyMapper: probability out of [0,1]");
    auto r_ld = static_cast<long double>(p) * delta_ld;
    BigInt r;
    if (r_ld < 1.0L) {
      r = BigInt{1};
    } else if (r_ld >= delta_ld) {
      r = delta;
    } else {
      // Convert via a 63-bit mantissa scale to preserve precision.
      int exp = 0;
      const long double mant = std::frexp(r_ld, &exp);
      const auto mi = static_cast<std::uint64_t>(std::ldexp(mant, 63));
      r = BigInt{mi};
      const int shift = exp - 63;
      if (shift > 0) r <<= static_cast<std::size_t>(shift);
      else if (shift < 0) r >>= static_cast<std::size_t>(-shift);
      if (r.is_zero()) r = BigInt{1};
    }
    subrange_.push_back(std::move(r));
  }
}

BigInt EntropyMapper::slot_base(AttrValue value) const {
  if (value >= probs_.size()) throw Error("EntropyMapper: value out of range");
  return slot_width_ * BigInt{static_cast<std::uint64_t>(value)};
}

BigInt EntropyMapper::subrange_size(AttrValue value) const {
  if (value >= probs_.size()) throw Error("EntropyMapper: value out of range");
  return subrange_[value];
}

BigInt EntropyMapper::map(AttrValue value, RandomSource& rng) const {
  return slot_base(value) + BigInt::random_below(rng, subrange_size(value));
}

EntropyMapper::PreparedValue EntropyMapper::prepare(AttrValue value) const {
  return {slot_base(value), subrange_size(value)};
}

BigInt EntropyMapper::map_prepared(const PreparedValue& pv, RandomSource& rng) {
  return pv.base + BigInt::random_below(rng, pv.size);
}

AttrValue EntropyMapper::unmap(const BigInt& mapped) const {
  if (mapped.is_negative()) throw Error("EntropyMapper: mapped value negative");
  const BigInt slot = mapped / slot_width_;
  if (slot >= BigInt{static_cast<std::uint64_t>(probs_.size())}) {
    throw Error("EntropyMapper: mapped value out of space");
  }
  return static_cast<AttrValue>(slot.to_u64());
}

double EntropyMapper::mapped_entropy() const {
  // Value j contributes p_j spread uniformly over R_j strings:
  // H = -sum_j R_j * (p_j/R_j) * lg(p_j/R_j) = -sum_j p_j lg(p_j / R_j).
  double h = 0.0;
  for (std::size_t j = 0; j < probs_.size(); ++j) {
    const double p = probs_[j];
    if (p <= 0.0) continue;
    // R_j can exceed double range (k up to 2048 bits); take the log in
    // long double, where 2^2048 is still representable.
    const long double lg_r = std::log2(subrange_[j].to_long_double());
    h += p * (static_cast<double>(lg_r) - std::log2(p));
  }
  return h;
}

double EntropyMapper::original_entropy() const {
  double h = 0.0;
  for (double p : probs_) {
    if (p > 0.0) h -= p * std::log2(p);
  }
  return h;
}

}  // namespace smatch
