// Attribute chaining (paper Section VI, "Attribute Chaining").
//
// After entropy increase, the d mapped attribute values are concatenated
// in a secret order into one chain, which is then encrypted with OPE as a
// single value. The order is derived from the profile key, so every
// member of a key group chains identically (their chains remain
// order-comparable) while an outsider cannot tell which bit positions
// hold which attribute — a landmark value's position cannot be isolated
// and brute-forced separately.
//
// Widths may be uniform (the paper's k bits per attribute) or
// heterogeneous (the adaptive-width extension of Section X, where each
// attribute gets just enough bits for its entropy target).
#pragma once

#include <cstddef>
#include <vector>

#include "bigint/bigint.hpp"
#include "common/bytes.hpp"

namespace smatch {

class AttributeChain {
 public:
  /// Uniform layout: every attribute occupies `attribute_bits` bits.
  AttributeChain(std::size_t num_attributes, std::size_t attribute_bits);
  /// Heterogeneous layout: attribute i occupies widths[i] bits.
  explicit AttributeChain(std::vector<std::size_t> widths);

  [[nodiscard]] std::size_t num_attributes() const { return widths_.size(); }
  /// Width of attribute i.
  [[nodiscard]] std::size_t attribute_bits(std::size_t i) const { return widths_.at(i); }
  [[nodiscard]] std::size_t chain_bits() const { return total_bits_; }

  /// The keyed secret attribute order: position i of the chain holds
  /// attribute perm[i].
  [[nodiscard]] std::vector<std::size_t> permutation(BytesView profile_key) const;

  /// Concatenates the mapped attribute values (original attribute order
  /// in `mapped`) into the chain integer using the keyed order.
  /// Every mapped value must fit its attribute's width.
  [[nodiscard]] BigInt assemble(const std::vector<BigInt>& mapped,
                                BytesView profile_key) const;
  /// Same, with the keyed order precomputed via permutation() — the batch
  /// pipeline hoists the keyed Fisher-Yates out of its per-profile loop.
  [[nodiscard]] BigInt assemble(const std::vector<BigInt>& mapped,
                                const std::vector<std::size_t>& perm) const;

  /// Splits a chain back into mapped values in original attribute order.
  [[nodiscard]] std::vector<BigInt> disassemble(const BigInt& chain,
                                                BytesView profile_key) const;
  /// Same, with the keyed order precomputed via permutation().
  [[nodiscard]] std::vector<BigInt> disassemble(const BigInt& chain,
                                                const std::vector<std::size_t>& perm) const;

 private:
  std::vector<std::size_t> widths_;
  std::size_t total_bits_ = 0;
};

}  // namespace smatch
