// Observability for the sharded matching engine.
//
// The engine keeps lock-free per-shard counters (relaxed atomics — these
// are statistics, not synchronization); `MatchServer::metrics()` folds
// them into a plain-value `ServerMetrics` snapshot that benchmarks and
// operators can read without stopping traffic.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace smatch {

/// Per-shard slice of a metrics snapshot.
struct ShardMetrics {
  std::uint64_t ingests = 0;      // uploads routed to this shard
  std::uint64_t matches = 0;      // match/match_within/batch lookups served
  std::uint64_t comparisons = 0;  // ciphertext comparisons spent sorting
  std::uint64_t groups = 0;       // key groups currently resident
  std::uint64_t users = 0;        // records currently resident
};

/// A consistent-enough point-in-time view of the engine. Counters are
/// monotonic; residency numbers reflect the moment of the snapshot.
struct ServerMetrics {
  std::vector<ShardMetrics> shards;

  // Totals across shards.
  std::uint64_t ingests = 0;
  std::uint64_t matches = 0;
  std::uint64_t comparisons = 0;       // the paper's server-cost metric
  std::uint64_t replay_rejections = 0; // queries dropped as stale/replayed
  std::uint64_t batch_group_sorts = 0; // group sorts amortized by match_batch

  /// Key-group size -> number of groups of that size, over all shards.
  /// The m of the PR-KK bound: the histogram is exactly what a curious
  /// server learns about population structure.
  std::map<std::size_t, std::uint64_t> group_size_histogram;
};

}  // namespace smatch
