// Observability for the engines on both sides of the protocol: the
// matching engine, the OPRF key service, and the client encryption
// pipeline.
//
// The servers keep lock-free per-shard counters (relaxed atomics — these
// are statistics, not synchronization); `MatchServer::metrics()` and
// `KeyServer::metrics()` fold them into plain-value snapshots that
// benchmarks and operators can read without stopping traffic.
// `Client::metrics()` does the same for the per-device pipeline, folding
// in the OPE node-cache counters (ope/ope.hpp).
//
// Beyond the counters, every snapshot carries stage-latency histograms
// (obs/histogram.hpp, log2 buckets, nanoseconds) fed by the SMATCH_SPAN_
// HIST instrumentation on the hot paths, plus the internal thread pool's
// scheduling metrics. The histograms answer the p50/p90/p99 questions of
// the paper's cost evaluation (Figs. 4c-e, 5a-c) under live traffic; they
// stay empty when instrumentation is compiled out (-DSMATCH_OBS=OFF).
// core/metrics_export.hpp publishes these snapshots into an
// obs::Registry for the Prometheus/JSON exporters.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/histogram.hpp"

namespace smatch {

/// Per-shard slice of a metrics snapshot.
struct ShardMetrics {
  std::uint64_t ingests = 0;      // uploads routed to this shard
  std::uint64_t matches = 0;      // match/match_within/batch lookups served
  std::uint64_t comparisons = 0;  // ciphertext comparisons spent sorting
  std::uint64_t groups = 0;       // key groups currently resident
  std::uint64_t users = 0;        // records currently resident
};

/// A consistent-enough point-in-time view of the engine. Counters are
/// monotonic; residency numbers reflect the moment of the snapshot.
struct ServerMetrics {
  std::vector<ShardMetrics> shards;

  // Totals across shards.
  std::uint64_t ingests = 0;
  std::uint64_t matches = 0;
  std::uint64_t comparisons = 0;       // the paper's server-cost metric
  std::uint64_t replay_rejections = 0; // queries dropped as stale/replayed
  std::uint64_t batch_group_sorts = 0; // group sorts amortized by match_batch

  /// Key-group size -> number of groups of that size, over all shards.
  /// The m of the PR-KK bound: the histogram is exactly what a curious
  /// server learns about population structure.
  std::map<std::size_t, std::uint64_t> group_size_histogram;

  // Stage latency (ns): per-operation, identical for the sequential and
  // batch entry points (batch paths record each query they serve).
  obs::HistogramSnapshot ingest_latency_ns;
  obs::HistogramSnapshot match_latency_ns;

  /// Internal batch pool scheduling (empty until a batch entry point ran).
  PoolMetrics pool;
};

/// Per-shard slice of the key-service metrics snapshot.
struct KeyShardMetrics {
  std::uint64_t evaluations = 0;        // OPRF evaluations served
  std::uint64_t budget_rejections = 0;  // requests refused over budget
  std::uint64_t clients = 0;            // clients with budget state this epoch
};

/// Point-in-time view of the OPRF key service (mirrors ServerMetrics).
/// Counters are monotonic across epochs; `clients` reflects the snapshot.
struct KeyServerMetrics {
  std::vector<KeyShardMetrics> shards;

  // Totals across shards.
  std::uint64_t evaluations = 0;        // the paper's rate-metering unit
  std::uint64_t budget_rejections = 0;  // kBudgetExhausted responses
  std::uint64_t malformed_rejections = 0;  // kMalformedMessage (wire or range)
  std::uint64_t version_rejections = 0;    // kUnsupportedVersion wire headers

  // Batch amortization.
  std::uint64_t batches = 0;            // handle_batch invocations
  std::uint64_t batched_requests = 0;   // requests served through batches
  /// Batch size -> number of handle_batch calls of that size.
  std::map<std::size_t, std::uint64_t> batch_size_histogram;

  // Stage latency (ns): the full handle() path and the RSA-CRT
  // exponentiation inside it (the paper's dominant key-service cost).
  obs::HistogramSnapshot handle_latency_ns;
  obs::HistogramSnapshot modexp_latency_ns;

  /// Internal batch pool scheduling (empty until handle_batch ran).
  PoolMetrics pool;
};

/// Point-in-time view of one client's encryption pipeline (mirrors
/// ServerMetrics / KeyServerMetrics). Counters are monotonic over the
/// client's lifetime; the cache numbers reflect the current profile key's
/// OPE instance (they reset when a new key is installed).
struct ClientMetrics {
  std::uint64_t encryptions = 0;      // chain OPE encryptions performed
  std::uint64_t uploads = 0;          // upload messages assembled
  std::uint64_t batches = 0;          // batch entry-point invocations
  std::uint64_t batched_uploads = 0;  // uploads/ciphertexts produced via batches

  // OPE node cache (the InitData/Enc hot path's memoization layer).
  std::uint64_t ope_cache_hits = 0;
  std::uint64_t ope_cache_misses = 0;
  std::uint64_t ope_cache_evictions = 0;
  std::uint64_t ope_cache_entries = 0;

  /// Batch size -> number of batch calls of that size.
  std::map<std::size_t, std::uint64_t> batch_size_histogram;

  // Stage latency (ns): chain-OPE encryption (the client-cost metric of
  // Fig. 4c-e) and full upload assembly (InitData + Enc + Auth).
  obs::HistogramSnapshot encrypt_latency_ns;
  obs::HistogramSnapshot upload_latency_ns;
};

}  // namespace smatch
