// The untrusted matching server (Algorithm Match in paper Fig. 3), grown
// into a sharded, thread-safe service engine.
//
// The server never sees plaintext attributes: it stores OPE-encrypted
// chains grouped by the hashed profile key h(K_up), and answers a query
// by (EXTRA) filtering to the querier's group, (SORT) ordering the group
// by ciphertext — valid because OPE preserves plaintext order — and
// (FIND) returning the k order-nearest users around the querier.
//
// Engine layout
// -------------
//   * The h(K_up) -> group index is sharded by key-index prefix; each
//     data shard is guarded by its own std::shared_mutex, so ingest and
//     match on different shards run fully concurrently and reads on one
//     shard run concurrently with each other.
//   * A user directory (UserId -> key index, sharded by user id) routes
//     queries to the right data shard and carries the per-user replay
//     clock. Lock order is always directory -> data shard, one of each.
//   * Batch entry points (`ingest_batch`, `match_batch`) fan out across
//     an internal thread pool; `match_batch` additionally sorts each key
//     group once per batch instead of once per query, which is where the
//     big sequential-vs-batch throughput win comes from (see
//     bench/engine_throughput.cpp).
//
// Error handling: the public API reports failures through Status /
// StatusOr (kUnknownUser, kStaleTimestamp, kMalformedMessage,
// kEmptyGroup) and never throws on the query/ingest hot paths. The old
// throw-on-everything API was removed in the service redesign; see
// docs/PROTOCOL.md for the deprecation notes.
//
// Durability (optional): `attach_store()` opens a store/ProfileStore and
// replays it, after which every ingest/remove appends a redo record to a
// per-user WAL shard *before* mutating memory. The engine registers a
// checkpoint source with the store's maintenance plane: when a cycle
// runs (on policy triggers, or via `checkpoint()` / the store's
// request_checkpoint()), the source streams the full state into
// atomically renamed snapshots — one directory shard at a time (a
// staggered sweep; ingest stalls for at most 1/D of the population per
// step), never a global quiesce unless the policy turns staggering off.
// When the options set a memory budget, cold ciphertext groups page out
// to disk and fault back in on query. Recovered state answers kNN
// queries byte-identically (the group sort is a total order:
// ciphertext, then user id). docs/PERSISTENCE.md is the full story;
// with no store attached the engine behaves exactly as before.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <vector>

#include "common/random.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "core/messages.hpp"
#include "core/metrics.hpp"
#include "obs/histogram.hpp"
#include "store/store.hpp"

namespace smatch {

/// Engine sizing. Defaults suit tests and examples; a service deployment
/// scales shards with core count and group cardinality.
struct ServerOptions {
  /// Data shards (key-index prefix -> shard). Also the user-directory
  /// shard count. Clamped to >= 1.
  std::size_t num_shards = 8;
  /// Worker threads for the batch entry points; 0 = hardware concurrency.
  std::size_t batch_threads = 0;
  /// Reject non-increasing per-user query timestamps (Q_q = <q, t, ID>).
  /// Off by default: benchmarks re-issue identical queries.
  bool replay_protection = false;
};

class MatchServer {
 public:
  MatchServer() : MatchServer(ServerOptions{}) {}
  explicit MatchServer(ServerOptions options);

  MatchServer(const MatchServer&) = delete;
  MatchServer& operator=(const MatchServer&) = delete;

  /// Attaches (opening or creating) a durable store and replays it into
  /// the engine: snapshot first, then each surviving WAL segment. After
  /// this call every ingest/remove is WAL-logged before it touches
  /// memory, a non-zero residency budget turns on cold-group paging,
  /// and the engine's checkpoint source is registered with the store's
  /// maintenance plane (started here when the policy says background).
  /// Call once, at startup, before serving traffic (the replay itself
  /// is not concurrent-safe against queries).
  [[nodiscard]] Status attach_store(const store::StoreOptions& options);

  /// DEPRECATED — accepts the flat StoreConfig shim; forwards to the
  /// StoreOptions overload. Removed next PR.
  [[nodiscard]] Status attach_store(const store::StoreConfig& config) {
    return attach_store(config.to_options());
  }

  /// Runs one full maintenance cycle (rotate -> snapshot -> GC) through
  /// the store's scheduler and waits for it — the same code path a
  /// background checkpoint takes, so tests and callers exercise exactly
  /// what production runs. The snapshot sweep staggers across directory
  /// shards (policy.staggered, the default) instead of quiescing the
  /// whole engine. Error when no store is attached.
  [[nodiscard]] Status checkpoint();

  /// The attached store (nullptr when persistence is off) — for metrics.
  [[nodiscard]] const store::ProfileStore* store() const { return store_.get(); }
  /// Mutable variant, for the maintenance seams (hooks, pause/resume)
  /// the crash harness and tests drive.
  [[nodiscard]] store::ProfileStore* store() { return store_.get(); }

  /// Stores (or replaces) a user's encrypted profile. Thread-safe.
  /// kMalformedMessage when the upload carries no key index.
  Status ingest(const UploadMessage& upload);

  /// Forgets a user: directory entry, group record, and replay clock.
  /// WAL-logged when a store is attached. kUnknownUser when absent.
  [[nodiscard]] Status remove(UserId user);

  /// Batch ingest: uploads fan out over the internal pool. statuses[i]
  /// corresponds to uploads[i]. When a batch contains several uploads for
  /// the same user, the last-writer wins but the order is unspecified —
  /// callers that care about per-user ordering must not split one user's
  /// re-uploads across a batch.
  [[nodiscard]] std::vector<Status> ingest_batch(std::span<const UploadMessage> uploads);

  /// Algorithm Match (kNN): the k order-nearest users in the querier's
  /// key group (excluding the querier). Returns fewer entries when the
  /// group is small. kUnknownUser for an unregistered querier,
  /// kStaleTimestamp under replay protection. Thread-safe.
  [[nodiscard]] StatusOr<QueryResult> match(const QueryRequest& query, std::size_t k);

  /// MAX-distance matching (the alternative algorithm of Section VI):
  /// every group member whose order distance |O(A'_u) - O(A'_v)|
  /// (Definition 4: difference of sorted positions) is at most
  /// `max_order_distance`. Entries are ordered by increasing distance.
  [[nodiscard]] StatusOr<QueryResult> match_within(const QueryRequest& query,
                                                   std::size_t max_order_distance);

  /// Batch kNN: results[i] corresponds to queries[i] and is entry-for-
  /// entry identical to what sequential `match(queries[i], k)` returns.
  /// Work is partitioned by shard across the pool, and each key group is
  /// sorted once per batch (amortizing SORT over all queries that hit the
  /// same group).
  [[nodiscard]] std::vector<StatusOr<QueryResult>> match_batch(
      std::span<const QueryRequest> queries, std::size_t k);

  [[nodiscard]] std::size_t num_users() const;
  [[nodiscard]] std::size_t num_groups() const;
  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  /// Size of the key group a user belongs to (the m of the PR-KK bound).
  [[nodiscard]] std::size_t group_size_of(UserId user) const;

  /// Point-in-time metrics snapshot (per-shard counters, group-size
  /// histogram, replay rejections). Safe to call under traffic.
  [[nodiscard]] ServerMetrics metrics() const;

  /// Cumulative ciphertext comparisons performed by the match paths — the
  /// server-cost metric that is independent of wall-clock noise.
  [[nodiscard]] std::uint64_t comparisons() const;

  void set_replay_protection(bool on) { replay_protection_ = on; }

 private:
  struct Record {
    UserId id = 0;
    BigInt chain;
    std::uint32_t chain_bits = 0;  // upload's fixed serialization width
    Bytes auth_token;
  };

  /// One h(K_up) key group. Under a memory budget a group can be evicted:
  /// its members live in a page file (store/pages/) and `members` is
  /// empty until a query or ingest faults it back in.
  struct Group {
    std::vector<Record> members;
    bool resident = true;
    std::size_t count = 0;        // member count while evicted
    std::size_t bytes = 0;        // serialized size of members (resident)
    std::uint64_t last_touch = 0; // eviction clock stamp (paging mode)

    [[nodiscard]] std::size_t size() const {
      return resident ? members.size() : count;
    }
  };

  /// One slice of the h(K_up) -> group index.
  struct Shard {
    mutable std::shared_mutex mu;
    std::map<Bytes, Group> groups;
    std::size_t resident_bytes = 0;  // guarded by mu (paging mode)
    std::atomic<std::uint64_t> ingests{0};
    std::atomic<std::uint64_t> matches{0};
    std::atomic<std::uint64_t> comparisons{0};
  };

  /// One slice of the UserId -> key-index directory (+ replay clocks).
  struct DirectoryShard {
    mutable std::shared_mutex mu;
    std::map<UserId, Bytes> key_of;
    std::map<UserId, std::uint64_t> last_query_time;
  };

  Shard& shard_for(const Bytes& key_index);
  const Shard& shard_for(const Bytes& key_index) const;
  std::size_t shard_index(const Bytes& key_index) const;
  DirectoryShard& directory_for(UserId user);
  const DirectoryShard& directory_for(UserId user) const;

  /// Directory lookup + replay check. On success fills `key_index`.
  Status route_query(const QueryRequest& query, Bytes& key_index);

  /// Ingest body minus validation and WAL logging (shared by the public
  /// path and store replay). Caller holds `dir.mu` exclusively.
  Status apply_upload_locked(const UploadMessage& upload, DirectoryShard& dir);
  /// Remove body minus WAL logging. Caller holds `dir.mu` exclusively.
  /// `must_exist` selects kUnknownUser vs idempotent-ok (replay).
  Status remove_locked(UserId user, DirectoryShard& dir, bool must_exist);

  /// Serialized UploadMessage wire bytes / size of one stored record —
  /// the page-file and snapshot unit (disk holds exactly wire bytes).
  static Bytes record_wire(const Bytes& key_index, const Record& r);
  static std::size_t record_wire_size(const Bytes& key_index, const Record& r);

  /// The checkpoint source registered with the store: streams the full
  /// engine state into `cp`. Staggered (default): one directory shard
  /// at a time in a rotating order, freezing 1/D of the users per step;
  /// otherwise a quiesce-all pass holding every directory lock.
  Status stream_checkpoint(store::ProfileStore::Checkpoint& cp);
  /// Emits one group's member records into `cp` (resident members
  /// directly, evicted ones straight out of the page file). Caller
  /// holds the group's data-shard lock. `only_dir` filters to users of
  /// one directory shard (the staggered sweep's membership test).
  Status emit_group_records(store::ProfileStore::Checkpoint& cp, const Bytes& key,
                            Group& group, std::optional<std::size_t> only_dir);

  /// Faults an evicted group back in from its page file. Caller holds
  /// `shard.mu` exclusively.
  Status ensure_resident(Shard& shard, const Bytes& key_index, Group& group);
  /// Pages out least-recently-touched groups until the shard fits its
  /// budget (never evicts `keep`). Caller holds `shard.mu` exclusively.
  Status evict_over_budget(Shard& shard, const Bytes& keep);
  /// Stamps the eviction clock (paging mode; caller holds shard.mu
  /// exclusively — paging mode never takes shared data-shard locks).
  void touch(Group& group);

  /// SORT: the group sorted by OPE ciphertext (== plaintext chain order).
  /// Caller must hold the shard lock. Counts comparator invocations into
  /// `comparisons`.
  static void sort_group(const std::vector<Record>& members,
                         std::vector<const Record*>& out, std::uint64_t& comparisons);

  /// FIND the querier + walk outward. Shared by the sequential and batch
  /// paths so their results are identical by construction.
  static Status collect_knn(const std::vector<const Record*>& sorted, UserId querier,
                            std::size_t k, QueryResult& result);
  static Status collect_within(const std::vector<const Record*>& sorted, UserId querier,
                               std::size_t max_order_distance, QueryResult& result);

  ThreadPool& pool();

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<DirectoryShard>> directory_;

  // Durability (null/false when no store is attached).
  std::unique_ptr<store::ProfileStore> store_;
  bool paging_ = false;            // memory budget > 0: groups can evict
  std::size_t shard_budget_ = 0;   // resident-byte budget per data shard
  std::atomic<std::uint64_t> touch_clock_{0};
  // Rotating start offset of the staggered checkpoint sweep, so no
  // directory shard is systematically snapshotted last.
  std::atomic<std::uint64_t> checkpoint_stagger_{0};

  std::atomic<std::uint64_t> replay_rejections_{0};
  std::atomic<std::uint64_t> batch_group_sorts_{0};
  std::atomic<bool> replay_protection_{false};

  // Stage latency, fed by SMATCH_SPAN_HIST on the ingest/match paths
  // (sequential and batch alike); folded into ServerMetrics.
  obs::Histogram ingest_hist_;
  obs::Histogram match_hist_;

  std::size_t batch_threads_ = 0;
  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> pool_ready_{false};  // pool_ safe to read when true
};

/// Fault-injection wrappers modelling the malicious server of the threat
/// model (Section V-B): each attack tampers with an honest result in a
/// way the verification protocol must detect.
enum class ServerAttack {
  kForgeToken,     // replace auth tokens with random bytes
  kSwapIdentity,   // claim a matched token belongs to a different user
  kForeignUser,    // return users from a different (dissimilar) key group
};

/// Applies `attack` to an honest result. `foreign` supplies entries from
/// another key group for kForeignUser (pass the honest result of a
/// different group's query).
[[nodiscard]] QueryResult tamper_result(const QueryResult& honest, ServerAttack attack,
                                        RandomSource& rng,
                                        const std::vector<MatchEntry>& foreign = {});

}  // namespace smatch
