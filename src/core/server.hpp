// The untrusted matching server (Algorithm Match in paper Fig. 3).
//
// The server never sees plaintext attributes: it stores OPE-encrypted
// chains grouped by the hashed profile key h(K_up), and answers a query
// by (EXTRA) filtering to the querier's group, (SORT) ordering the group
// by ciphertext — valid because OPE preserves plaintext order — and
// (FIND) returning the k order-nearest users around the querier.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/random.hpp"
#include "core/messages.hpp"

namespace smatch {

class MatchServer {
 public:
  /// Stores (or replaces) a user's encrypted profile.
  void ingest(const UploadMessage& upload);

  /// Algorithm Match (kNN): the k order-nearest users in the querier's
  /// key group (excluding the querier). Returns fewer entries when the
  /// group is small; throws ProtocolError for an unknown querier.
  [[nodiscard]] QueryResult match(const QueryRequest& query, std::size_t k) const;

  /// MAX-distance matching (the alternative algorithm of Section VI):
  /// every group member whose order distance |O(A'_u) - O(A'_v)|
  /// (Definition 4: difference of sorted positions) is at most
  /// `max_order_distance`. Entries are ordered by increasing distance.
  [[nodiscard]] QueryResult match_within(const QueryRequest& query,
                                         std::size_t max_order_distance) const;

  [[nodiscard]] std::size_t num_users() const { return user_group_.size(); }
  [[nodiscard]] std::size_t num_groups() const { return groups_.size(); }
  /// Size of the key group a user belongs to (the m of the PR-KK bound).
  [[nodiscard]] std::size_t group_size_of(UserId user) const;

  /// Cumulative ciphertext comparisons performed by match() — the
  /// server-cost metric that is independent of wall-clock noise.
  [[nodiscard]] std::uint64_t comparisons() const { return comparisons_; }

  /// Replay protection for the timestamped queries (Q_q = <q, t, ID>):
  /// when enabled, each user's queries must carry strictly increasing
  /// timestamps; a replayed or stale query is rejected with
  /// ProtocolError. Off by default (benchmarks re-issue queries).
  void set_replay_protection(bool on) { replay_protection_ = on; }

 protected:
  struct Record {
    UserId id = 0;
    BigInt chain;
    Bytes auth_token;
  };

  [[nodiscard]] const std::map<Bytes, std::vector<Record>>& groups() const { return groups_; }

 private:
  /// EXTRA + SORT + FIND: fills `out` with the querier's key group sorted
  /// by ciphertext and returns the querier's position in it. Throws
  /// ProtocolError for an unknown querier.
  std::size_t sorted_group(UserId querier, std::vector<const Record*>& out) const;

  void check_freshness(const QueryRequest& query) const;

  std::map<Bytes, std::vector<Record>> groups_;  // h(K_up) -> members
  std::map<UserId, Bytes> user_group_;
  mutable std::uint64_t comparisons_ = 0;
  bool replay_protection_ = false;
  mutable std::map<UserId, std::uint64_t> last_query_time_;
};

/// Fault-injection wrappers modelling the malicious server of the threat
/// model (Section V-B): each attack tampers with an honest result in a
/// way the verification protocol must detect.
enum class ServerAttack {
  kForgeToken,     // replace auth tokens with random bytes
  kSwapIdentity,   // claim a matched token belongs to a different user
  kForeignUser,    // return users from a different (dissimilar) key group
};

/// Applies `attack` to an honest result. `foreign` supplies entries from
/// another key group for kForeignUser (pass the honest result of a
/// different group's query).
[[nodiscard]] QueryResult tamper_result(const QueryResult& honest, ServerAttack attack,
                                        RandomSource& rng,
                                        const std::vector<MatchEntry>& foreign = {});

}  // namespace smatch
