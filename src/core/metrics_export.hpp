// Publishes engine metrics snapshots into an obs::Registry so one
// exporter endpoint (Prometheus exposition text or JSON) covers the whole
// pipeline: matching engine, OPRF key service, client pipeline, thread
// pools, and the simulated transport.
//
// The engines own their instruments (core/metrics.hpp folds them into
// per-instance snapshots); these helpers copy a snapshot into the
// registry under stable metric names with the given prefix (default
// "smatch"). Re-publishing refreshes the exported values, so an operator
// loop is just:
//
//   obs::Registry& reg = obs::Registry::global();
//   export_metrics(reg, server.metrics());
//   export_metrics(reg, key_server.metrics());
//   serve(reg.prometheus_text());
//
// Metric names are documented in docs/OBSERVABILITY.md.
#pragma once

#include <string_view>

#include "core/metrics.hpp"
#include "net/channel.hpp"
#include "obs/registry.hpp"

namespace smatch {

/// Matching engine: counters + ingest/match latency + pool scheduling,
/// under `<prefix>_match_*`.
void export_metrics(obs::Registry& registry, const ServerMetrics& m,
                    std::string_view prefix = "smatch");

/// OPRF key service: counters + handle/modexp latency + pool scheduling,
/// under `<prefix>_keyserver_*`.
void export_metrics(obs::Registry& registry, const KeyServerMetrics& m,
                    std::string_view prefix = "smatch");

/// Client pipeline: counters + encrypt/upload latency + OPE cache,
/// under `<prefix>_client_*`.
void export_metrics(obs::Registry& registry, const ClientMetrics& m,
                    std::string_view prefix = "smatch");

/// A thread pool on its own (the engines' internal pools ride along in
/// their snapshots), under `<prefix>_pool_*`.
void export_metrics(obs::Registry& registry, const PoolMetrics& m,
                    std::string_view prefix = "smatch");

/// Simulated transport: per-kind bytes, message counts, and simulated
/// transfer-latency histograms, under `<prefix>_channel_*`.
void export_metrics(obs::Registry& registry, const SimChannel& channel,
                    std::string_view prefix = "smatch");

}  // namespace smatch
