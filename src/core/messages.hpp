// Wire messages of the S-MATCH protocol (paper Fig. 2, Eq. 3).
//
// Upload:  u -> S : ID_u, h(K_up), E_{K_up}(A'_1 || ... || A'_n), ciph_u
// Query:   u -> S : Q_q = <q, t, ID_v>
// Result:  S -> u : R_q = <q, t, ID_1, ciph_1, ..., ID_k, ciph_k>
//
// All messages serialize through common/serde.hpp; the byte counts of
// these encodings are what the communication-cost benchmarks measure.
#pragma once

#include <cstdint>
#include <vector>

#include "bigint/bigint.hpp"
#include "common/bytes.hpp"
#include "core/types.hpp"

namespace smatch {

/// Profile upload (paper Eq. 3 plus the verification token).
struct UploadMessage {
  UserId user_id = 0;
  Bytes key_index;        // h(K_up), 32 bytes
  BigInt chain_cipher;    // OPE ciphertext of the attribute chain
  std::uint32_t chain_cipher_bits = 0;  // fixed width for serialization
  Bytes auth_token;       // ciph_u

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static UploadMessage parse(BytesView data);
};

/// Profile-matching query Q_q = <q, t, ID_v>.
struct QueryRequest {
  std::uint32_t query_id = 0;
  std::uint64_t timestamp = 0;
  UserId user_id = 0;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static QueryRequest parse(BytesView data);
};

/// One matched user in a query result.
struct MatchEntry {
  UserId user_id = 0;
  Bytes auth_token;
};

/// Query result R_q = <q, t, {ID_i, ciph_i}>.
struct QueryResult {
  std::uint32_t query_id = 0;
  std::uint64_t timestamp = 0;
  std::vector<MatchEntry> entries;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static QueryResult parse(BytesView data);
};

}  // namespace smatch
