// Wire messages of the S-MATCH protocol (paper Fig. 2, Eq. 3).
//
// Upload:  u -> S : ID_u, h(K_up), E_{K_up}(A'_1 || ... || A'_n), ciph_u
// Query:   u -> S : Q_q = <q, t, ID_v>
// Result:  S -> u : R_q = <q, t, ID_1, ciph_1, ..., ID_k, ciph_k>
//
// Every message is framed by a 3-byte versioned header — u16 magic "SM"
// followed by a u8 format version — so future wire changes can coexist
// with old readers. This includes the key-service messages
// (KeyRequest/KeyResponse in core/key_server.hpp), which build on the
// wire:: helpers below. Parsers return StatusOr: kMalformedMessage for
// truncation/corruption, kUnsupportedVersion for an unknown version byte;
// they never throw. Byte counts of these encodings are what the
// communication-cost benchmarks measure.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "bigint/bigint.hpp"
#include "common/bytes.hpp"
#include "common/serde.hpp"
#include "common/status.hpp"
#include "common/wire.hpp"  // kWireMagic / kWireVersion / wire:: helpers
#include "core/types.hpp"

namespace smatch {

/// Upper bound on a serialized chain-cipher width. The OPE expansion of a
/// realistic attribute chain is a few thousand bits; anything near 2^32
/// is an attack on the parser's length arithmetic, not a profile.
inline constexpr std::uint32_t kMaxChainCipherBits = 1u << 20;

/// Profile upload (paper Eq. 3 plus the verification token).
struct UploadMessage {
  UserId user_id = 0;
  Bytes key_index;        // h(K_up), 32 bytes
  BigInt chain_cipher;    // OPE ciphertext of the attribute chain
  std::uint32_t chain_cipher_bits = 0;  // fixed width for serialization
  Bytes auth_token;       // ciph_u

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static StatusOr<UploadMessage> parse(BytesView data);
};

/// Profile-matching query Q_q = <q, t, ID_v>.
struct QueryRequest {
  std::uint32_t query_id = 0;
  std::uint64_t timestamp = 0;
  UserId user_id = 0;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static StatusOr<QueryRequest> parse(BytesView data);
};

/// One matched user in a query result.
struct MatchEntry {
  UserId user_id = 0;
  Bytes auth_token;
};

/// Query result R_q = <q, t, {ID_i, ciph_i}>.
struct QueryResult {
  std::uint32_t query_id = 0;
  std::uint64_t timestamp = 0;
  std::vector<MatchEntry> entries;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static StatusOr<QueryResult> parse(BytesView data);
};

}  // namespace smatch
