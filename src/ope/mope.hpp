// mOPE: mutable order-preserving encoding (Popa, Li, Zeldovich — S&P'13).
//
// The paper's Related Work (Section II) contrasts S-MATCH's
// non-interactive OPE with mOPE, "the first OPE scheme to achieve
// IND-OCPA", rejected because it is *interactive*: every encryption is a
// protocol between the client (who can decrypt) and the server (who
// stores only deterministic ciphertexts in a search tree and assigns
// order codes from tree paths). This implementation exists to back that
// comparison with measurements (see bench/ablation_mope_interaction).
//
// Protocol shape, faithful to the original:
//   - the server keeps a binary search tree of DET ciphertexts;
//   - to insert, the server walks the client down the tree: each round it
//     sends one node's ciphertext, the client answers "left/right/equal";
//   - the order code of a node is its tree path, left-padded into a fixed
//     code width ("path * 2 + 1" high bits);
//   - when a path would exceed the code width, the tree is rebalanced and
//     affected codes CHANGE — the "mutable" part.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.hpp"

namespace smatch {

/// Client's answer to one interactive comparison round.
enum class MopeOrder { kLess, kEqual, kGreater };

/// The client side: holds the symmetric key, encrypts values
/// deterministically, and answers the server's navigation queries.
class MopeClient {
 public:
  /// Key must be 16, 24, or 32 bytes (AES).
  explicit MopeClient(Bytes key);

  /// Deterministic encryption of a 64-bit value (one AES block).
  [[nodiscard]] Bytes encrypt(std::uint64_t value) const;
  [[nodiscard]] std::uint64_t decrypt(BytesView det_ct) const;

  /// One interaction round: compares the plaintext of `target` with the
  /// plaintext of the server-provided `node`.
  [[nodiscard]] MopeOrder compare(BytesView target, BytesView node) const;

 private:
  Bytes key_;
};

/// The server side: the mutable encoding tree. Never sees plaintexts.
class MopeServer {
 public:
  /// Order-code width in bits (tree depth capacity before rebalancing).
  static constexpr std::size_t kCodeBits = 62;

  /// Inserts a DET ciphertext, driving the interactive navigation against
  /// `client` (in-process stand-in for the network round trips). Returns
  /// the ciphertext's order code. Re-inserting an existing ciphertext
  /// returns its current code.
  std::uint64_t insert(const Bytes& det_ct, const MopeClient& client);

  /// Current order code of a stored ciphertext.
  [[nodiscard]] std::optional<std::uint64_t> encoding_of(const Bytes& det_ct) const;

  /// All (ciphertext, code) pairs in code order.
  [[nodiscard]] std::vector<std::pair<Bytes, std::uint64_t>> entries() const;

  [[nodiscard]] std::size_t size() const { return size_; }
  /// Total client interaction rounds consumed so far — the cost S-MATCH
  /// avoids by being non-interactive.
  [[nodiscard]] std::uint64_t interaction_rounds() const { return rounds_; }
  /// How many times codes were invalidated by rebalancing.
  [[nodiscard]] std::uint64_t rebalances() const { return rebalances_; }

 private:
  struct Node {
    Bytes ct;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };

  static std::uint64_t path_code(std::uint64_t path, std::size_t depth);
  void flatten(Node* node, std::vector<Bytes>& out) const;
  static std::unique_ptr<Node> build_balanced(std::vector<Bytes>& sorted,
                                              std::size_t lo, std::size_t hi);
  void rebalance();
  const Node* find(const Bytes& det_ct, std::uint64_t& path, std::size_t& depth) const;

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t rebalances_ = 0;
};

}  // namespace smatch
