#include "ope/mope.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "crypto/aes.hpp"

namespace smatch {

MopeClient::MopeClient(Bytes key) : key_(std::move(key)) {
  Aes probe(key_);  // validates the key size
  (void)probe;
}

Bytes MopeClient::encrypt(std::uint64_t value) const {
  std::uint8_t block[16] = {0};
  for (int i = 0; i < 8; ++i) block[8 + i] = static_cast<std::uint8_t>(value >> (56 - 8 * i));
  Bytes out(16);
  Aes(key_).encrypt_block(block, out.data());
  return out;
}

std::uint64_t MopeClient::decrypt(BytesView det_ct) const {
  if (det_ct.size() != 16) throw CryptoError("mOPE: ciphertext must be one block");
  std::uint8_t block[16];
  Aes(key_).decrypt_block(det_ct.data(), block);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | block[8 + i];
  return v;
}

MopeOrder MopeClient::compare(BytesView target, BytesView node) const {
  const std::uint64_t a = decrypt(target);
  const std::uint64_t b = decrypt(node);
  if (a < b) return MopeOrder::kLess;
  if (a > b) return MopeOrder::kGreater;
  return MopeOrder::kEqual;
}

std::uint64_t MopeServer::path_code(std::uint64_t path, std::size_t depth) {
  // Path bits, then a 1, left-aligned in the code width: preserves the
  // tree's in-order ordering.
  return ((path << 1) | 1) << (kCodeBits - 1 - depth);
}

std::uint64_t MopeServer::insert(const Bytes& det_ct, const MopeClient& client) {
  while (true) {
    std::unique_ptr<Node>* slot = &root_;
    std::uint64_t path = 0;
    std::size_t depth = 0;
    bool overflow = false;
    while (*slot) {
      ++rounds_;  // one network round trip per visited node
      const MopeOrder order = client.compare(det_ct, (*slot)->ct);
      if (order == MopeOrder::kEqual) return path_code(path, depth);
      if (depth + 1 >= kCodeBits) {
        overflow = true;
        break;
      }
      if (order == MopeOrder::kLess) {
        slot = &(*slot)->left;
        path = path << 1;
      } else {
        slot = &(*slot)->right;
        path = path << 1 | 1;
      }
      ++depth;
    }
    if (overflow) {
      // Mutation: rebalance invalidates existing codes, then retry.
      rebalance();
      continue;
    }
    *slot = std::make_unique<Node>(Node{det_ct, nullptr, nullptr});
    ++size_;
    return path_code(path, depth);
  }
}

void MopeServer::flatten(Node* node, std::vector<Bytes>& out) const {
  if (!node) return;
  flatten(node->left.get(), out);
  out.push_back(node->ct);
  flatten(node->right.get(), out);
}

std::unique_ptr<MopeServer::Node> MopeServer::build_balanced(std::vector<Bytes>& sorted,
                                                             std::size_t lo,
                                                             std::size_t hi) {
  if (lo >= hi) return nullptr;
  const std::size_t mid = lo + (hi - lo) / 2;
  auto node = std::make_unique<Node>(Node{std::move(sorted[mid]), nullptr, nullptr});
  node->left = build_balanced(sorted, lo, mid);
  node->right = build_balanced(sorted, mid + 1, hi);
  return node;
}

void MopeServer::rebalance() {
  // The in-order sequence is already plaintext-ordered; rebuilding needs
  // no client interaction, but every stored code changes.
  std::vector<Bytes> sorted;
  sorted.reserve(size_);
  flatten(root_.get(), sorted);
  root_ = build_balanced(sorted, 0, sorted.size());
  ++rebalances_;
}

const MopeServer::Node* MopeServer::find(const Bytes& det_ct, std::uint64_t& path,
                                         std::size_t& depth) const {
  // Structural search by ciphertext equality (no client interaction; the
  // server can always locate a ciphertext it stored).
  struct Frame {
    const Node* node;
    std::uint64_t path;
    std::size_t depth;
  };
  std::vector<Frame> stack;
  if (root_) stack.push_back({root_.get(), 0, 0});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.node->ct == det_ct) {
      path = f.path;
      depth = f.depth;
      return f.node;
    }
    if (f.node->left) stack.push_back({f.node->left.get(), f.path << 1, f.depth + 1});
    if (f.node->right) {
      stack.push_back({f.node->right.get(), f.path << 1 | 1, f.depth + 1});
    }
  }
  return nullptr;
}

std::optional<std::uint64_t> MopeServer::encoding_of(const Bytes& det_ct) const {
  std::uint64_t path = 0;
  std::size_t depth = 0;
  if (!find(det_ct, path, depth)) return std::nullopt;
  return path_code(path, depth);
}

std::vector<std::pair<Bytes, std::uint64_t>> MopeServer::entries() const {
  std::vector<std::pair<Bytes, std::uint64_t>> out;
  out.reserve(size_);
  // In-order walk carrying paths.
  struct Frame {
    const Node* node;
    std::uint64_t path;
    std::size_t depth;
    bool expanded;
  };
  std::vector<Frame> stack;
  if (root_) stack.push_back({root_.get(), 0, 0, false});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (!f.node) continue;
    if (f.expanded) {
      out.emplace_back(f.node->ct, path_code(f.path, f.depth));
      continue;
    }
    // Right, self, left pushed so left pops first (in-order).
    if (f.node->right) stack.push_back({f.node->right.get(), f.path << 1 | 1, f.depth + 1, false});
    stack.push_back({f.node, f.path, f.depth, true});
    if (f.node->left) stack.push_back({f.node->left.get(), f.path << 1, f.depth + 1, false});
  }
  return out;
}

}  // namespace smatch
