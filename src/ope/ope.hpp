// Order-preserving symmetric encryption (Boldyreva et al., EUROCRYPT'09
// construction shape), over arbitrary-size integer domains.
//
// Enc maps [0, 2^plaintext_bits) into [0, 2^ciphertext_bits) such that
// m1 <= m2  <=>  Enc(m1) <= Enc(m2). The map is determined entirely by the
// secret key: both encryption and decryption walk the same recursive
// range-bisection, re-deriving the hypergeometric split at every node from
// a PRF keyed on the OPE key.
//
// Sampling: exact hypergeometric inversion for small populations, a
// deterministic normal-approximated sample (clamped to the valid support)
// for big-integer populations — see DESIGN.md substitution #3. Order
// preservation holds structurally for any in-support sampler.
#pragma once

#include <cstddef>

#include "bigint/bigint.hpp"
#include "common/bytes.hpp"

namespace smatch {

class Ope {
 public:
  /// Key is arbitrary bytes (32 recommended). Requires
  /// ciphertext_bits >= plaintext_bits >= 1.
  /// Note: when ciphertext_bits == plaintext_bits the only order-preserving
  /// injection is the identity; the paper's "N = M" setting degenerates to
  /// exactly that, so callers wanting a non-trivial cipher should leave
  /// slack (default in core: ciphertext_bits = plaintext_bits + 64).
  Ope(Bytes key, std::size_t plaintext_bits, std::size_t ciphertext_bits);

  [[nodiscard]] std::size_t plaintext_bits() const { return pt_bits_; }
  [[nodiscard]] std::size_t ciphertext_bits() const { return ct_bits_; }

  /// Encrypts m in [0, 2^plaintext_bits); throws CryptoError out of range.
  [[nodiscard]] BigInt encrypt(const BigInt& m) const;
  /// Decrypts c back to its plaintext; throws CryptoError when c is not a
  /// valid ciphertext under this key.
  [[nodiscard]] BigInt decrypt(const BigInt& c) const;

 private:
  /// Deterministic hypergeometric-ish sample: number of the `domain`
  /// points that fall at or below the range midpoint, drawn from coins
  /// bound (via a keyed path seed) to the recursion node.
  [[nodiscard]] BigInt sample_split(const BigInt& domain_size, const BigInt& range_size,
                                    const BigInt& draws, RandomSource& coins) const;

  Bytes key_;
  std::size_t pt_bits_;
  std::size_t ct_bits_;
};

/// Distance-preserving encryption (Ozsoyoglu et al.): E(m) = a*m + b.
/// Preserves |mi - mj| ordering (PPE with k = 3). Provided as the second
/// PPE instance discussed in paper Section III.
class Dpe {
 public:
  /// a > 0 scales, b offsets; both secret.
  Dpe(BigInt a, BigInt b);
  /// Derives (a, b) from a key with the given scale bit width.
  static Dpe from_key(BytesView key, std::size_t scale_bits);

  [[nodiscard]] BigInt encrypt(const BigInt& m) const;
  [[nodiscard]] BigInt decrypt(const BigInt& c) const;

 private:
  BigInt a_;
  BigInt b_;
};

}  // namespace smatch
