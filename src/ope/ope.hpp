// Order-preserving symmetric encryption (Boldyreva et al., EUROCRYPT'09
// construction shape), over arbitrary-size integer domains.
//
// Enc maps [0, 2^plaintext_bits) into [0, 2^ciphertext_bits) such that
// m1 <= m2  <=>  Enc(m1) <= Enc(m2). The map is determined entirely by the
// secret key: both encryption and decryption walk the same recursive
// range-bisection, deriving the hypergeometric split at every node from a
// PRF keyed on the OPE key.
//
// Sampling: exact hypergeometric inversion for small populations, a
// deterministic normal-approximated sample (clamped to the valid support)
// for big-integer populations — see DESIGN.md substitution #3. Order
// preservation holds structurally for any in-support sampler.
//
// Node cache: the recursion tree is fixed per key, so repeated
// encryptions under one key revisit the same nodes — every walk starts at
// the root, and close plaintexts share long path prefixes. Following the
// state-persistence idea of Popa et al.'s mOPE tree, each Ope keeps an
// LRU cache keyed on the recursion path that memoizes the sampled split
// (or leaf ciphertext offset) and the node's PRF seed. Cached nodes skip
// the DRBG setup and hypergeometric sampling entirely; evicted interior
// nodes are transparently recomputed from the seed chain. Caching is
// confined to the top of the tree (a depth a little past where a full
// binary tree would exceed the capacity): that is where independent walks
// actually share prefixes and where the per-node sampling is most
// expensive, while the long distinct tails below would only churn the
// LRU. The cache is internally synchronized, so one (const) Ope may
// encrypt and decrypt concurrently from many threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "bigint/bigint.hpp"
#include "common/bytes.hpp"

namespace smatch {

/// Point-in-time counters of one Ope instance's node cache. Hits/misses/
/// evictions are monotonic; `entries` is the resident node count at the
/// snapshot. All zero (capacity included) for an uncached instance.
struct OpeCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
  std::uint64_t capacity = 0;
};

class Ope {
 public:
  /// Default node-cache capacity: deep enough for the full path of a few
  /// dozen recent ciphertexts at production widths (~200 levels each).
  static constexpr std::size_t kDefaultCacheNodes = 4096;

  /// Key is arbitrary bytes (32 recommended). Requires
  /// ciphertext_bits >= plaintext_bits >= 1.
  /// `cache_nodes` bounds the node cache (0 disables caching; results are
  /// byte-identical either way — the cache memoizes deterministic values).
  /// Note: when ciphertext_bits == plaintext_bits the only order-preserving
  /// injection is the identity; the paper's "N = M" setting degenerates to
  /// exactly that, so callers wanting a non-trivial cipher should leave
  /// slack (default in core: ciphertext_bits = plaintext_bits + 64).
  Ope(Bytes key, std::size_t plaintext_bits, std::size_t ciphertext_bits,
      std::size_t cache_nodes = kDefaultCacheNodes);
  ~Ope();

  Ope(Ope&&) noexcept;
  Ope& operator=(Ope&&) noexcept;
  Ope(const Ope&) = delete;
  Ope& operator=(const Ope&) = delete;

  [[nodiscard]] std::size_t plaintext_bits() const { return pt_bits_; }
  [[nodiscard]] std::size_t ciphertext_bits() const { return ct_bits_; }

  /// Encrypts m in [0, 2^plaintext_bits); throws CryptoError out of range.
  /// Thread-safe.
  [[nodiscard]] BigInt encrypt(const BigInt& m) const;
  /// Decrypts c back to its plaintext; throws CryptoError when c is not a
  /// valid ciphertext under this key. Thread-safe.
  [[nodiscard]] BigInt decrypt(const BigInt& c) const;

  /// Node-cache counters. Safe to call concurrently with encrypt/decrypt.
  [[nodiscard]] OpeCacheStats cache_stats() const;

 private:
  struct NodeCache;  // LRU over recursion-path keys (ope.cpp)

  /// Deterministic hypergeometric-ish sample: number of the `domain`
  /// points that fall at or below the range midpoint, drawn from coins
  /// bound (via a keyed path seed) to the recursion node.
  [[nodiscard]] BigInt sample_split(const BigInt& domain_size, const BigInt& range_size,
                                    const BigInt& draws, RandomSource& coins) const;

  /// The node's memoized value — split x for an interior node, ciphertext
  /// offset for a leaf — computing and caching it on a miss. `seed` must
  /// hold the parent node's seed on entry (ignored for the root) and holds
  /// this node's seed on return.
  [[nodiscard]] BigInt node_value(const std::string& path, bool leaf,
                                  const BigInt& domain_size, const BigInt& range_size,
                                  Bytes& seed) const;

  Bytes key_;
  std::size_t pt_bits_;
  std::size_t ct_bits_;
  std::unique_ptr<NodeCache> cache_;  // null when cache_nodes == 0
};

/// Distance-preserving encryption (Ozsoyoglu et al.): E(m) = a*m + b.
/// Preserves |mi - mj| ordering (PPE with k = 3). Provided as the second
/// PPE instance discussed in paper Section III.
class Dpe {
 public:
  /// a > 0 scales, b offsets; both secret.
  Dpe(BigInt a, BigInt b);
  /// Derives (a, b) from a key with the given scale bit width.
  static Dpe from_key(BytesView key, std::size_t scale_bits);

  [[nodiscard]] BigInt encrypt(const BigInt& m) const;
  [[nodiscard]] BigInt decrypt(const BigInt& c) const;

 private:
  BigInt a_;
  BigInt b_;
};

}  // namespace smatch
