#include "ope/ope.hpp"

#include <bit>
#include <cmath>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "crypto/prf.hpp"
#include "obs/trace.hpp"

namespace smatch {
namespace {

// Truncating conversion long double -> BigInt (used only to add a sampled
// perturbation around an exactly computed integer mean).
BigInt bigint_from_long_double(long double v) {
  if (!std::isfinite(v)) throw CryptoError("OPE: non-finite sample");
  const bool neg = v < 0;
  v = std::fabs(v);
  if (v < 1.0L) return BigInt{};
  int exp = 0;
  const long double mant = std::frexp(v, &exp);  // v = mant * 2^exp
  const auto mi = static_cast<std::uint64_t>(std::ldexp(mant, 63));
  BigInt r{mi};
  const int shift = exp - 63;
  if (shift > 0) {
    r <<= static_cast<std::size_t>(shift);
  } else if (shift < 0) {
    r >>= static_cast<std::size_t>(-shift);
  }
  return neg ? -r : r;
}

// Uniform in [0, 1) with 53 random bits.
long double uniform01(RandomSource& coins) {
  return static_cast<long double>(coins.u64() >> 11) * 0x1p-53L;
}

// log2 of a positive BigInt, exact to long-double precision even when the
// value itself exceeds the long-double range (bit lengths past 16384).
long double lg2(const BigInt& v) {
  const std::size_t bits = v.bit_length();
  if (bits == 0) throw CryptoError("OPE: log of zero");
  if (bits <= 64) {
    return std::log2(static_cast<long double>(v.to_u64()));
  }
  const std::uint64_t top = (v >> (bits - 64)).to_u64();
  return std::log2(static_cast<long double>(top)) + static_cast<long double>(bits - 64);
}

// z * 2^lg_sigma as a BigInt, truncated; handles lg_sigma far beyond the
// long-double exponent range by splitting off an integer shift.
BigInt scaled_offset(long double z, long double lg_sigma) {
  if (!std::isfinite(lg_sigma) || lg_sigma < 0.0L) {
    return BigInt{};  // sigma < 1: the offset rounds to zero
  }
  std::size_t shift = 0;
  if (lg_sigma > 60.0L) {
    shift = static_cast<std::size_t>(lg_sigma - 60.0L);
    lg_sigma -= static_cast<long double>(shift);
  }
  BigInt off = bigint_from_long_double(z * std::exp2(lg_sigma));
  return off << shift;
}

// Support of the exact-inversion sampler is capped to keep the per-node
// cost bounded; larger populations use the normal approximation.
constexpr std::uint64_t kExactSupportCap = 4096;

// Child node seed: the recursion path (sequence of left/right branches)
// uniquely identifies a node, so chaining the seed through a keyed PRF is
// equivalent to binding coins to the node's range — and it keeps the
// per-level hashing cost constant instead of O(chain width).
Bytes child_seed(BytesView key, BytesView seed, bool right_branch) {
  Bytes input(seed.begin(), seed.end());
  input.push_back(right_branch ? 0x01 : 0x00);
  return prf(key, input);
}

}  // namespace

// LRU map from recursion path ('L'/'R' per level, "" = root) to the
// node's memoized state. Evictions are safe: every walk descends from the
// root, so an evicted node's seed is always re-derivable from the level
// above via one PRF call.
struct Ope::NodeCache {
  struct Entry {
    std::string path;
    BigInt value;  // split x (interior) or ciphertext offset (leaf)
    Bytes seed;    // this node's PRF seed (children derive from it)
  };

  // Only paths up to this depth are cached. n independent walks share
  // ~log2(n) top levels, so hits concentrate where the tree is widest-
  // domained and sampling is most expensive; consulting the cache on the
  // long random tail below would hash an O(depth)-byte key per level and
  // churn the LRU for nodes that are never revisited. Sized a little past
  // the depth at which a full binary tree exceeds the capacity.
  explicit NodeCache(std::size_t capacity)
      : capacity(capacity), max_path(std::bit_width(capacity) + 8) {}

  /// On hit, copies the memoized value/seed out and refreshes recency.
  bool lookup(const std::string& path, BigInt& value, Bytes& seed) {
    std::lock_guard<std::mutex> lock(mu);
    const auto it = map.find(path);
    if (it == map.end()) {
      ++misses;
      return false;
    }
    lru.splice(lru.end(), lru, it->second);  // most recently used
    value = it->second->value;
    seed = it->second->seed;
    ++hits;
    return true;
  }

  void insert(const std::string& path, const BigInt& value, const Bytes& seed) {
    std::lock_guard<std::mutex> lock(mu);
    if (map.find(path) != map.end()) return;  // another thread raced us
    if (map.size() >= capacity) {
      map.erase(lru.front().path);
      lru.pop_front();
      ++evictions;
    }
    lru.push_back(Entry{path, value, seed});
    map.emplace(path, std::prev(lru.end()));
  }

  [[nodiscard]] OpeCacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu);
    return {hits, misses, evictions, map.size(), capacity};
  }

  mutable std::mutex mu;
  std::size_t capacity;
  std::size_t max_path;
  std::list<Entry> lru;  // front = least recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> map;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

Ope::Ope(Bytes key, std::size_t plaintext_bits, std::size_t ciphertext_bits,
         std::size_t cache_nodes)
    : key_(std::move(key)), pt_bits_(plaintext_bits), ct_bits_(ciphertext_bits) {
  if (pt_bits_ == 0) throw CryptoError("OPE: plaintext_bits must be >= 1");
  if (ct_bits_ < pt_bits_) {
    throw CryptoError("OPE: ciphertext space must not be smaller than plaintext space");
  }
  if (cache_nodes > 0) cache_ = std::make_unique<NodeCache>(cache_nodes);
}

Ope::~Ope() = default;
Ope::Ope(Ope&&) noexcept = default;
Ope& Ope::operator=(Ope&&) noexcept = default;

OpeCacheStats Ope::cache_stats() const {
  return cache_ ? cache_->stats() : OpeCacheStats{};
}

BigInt Ope::sample_split(const BigInt& domain_size, const BigInt& range_size,
                         const BigInt& draws, RandomSource& coins) const {
  // Valid support for "number of domain points in the left half":
  // left side cannot exceed its slots (draws) or the domain (M); the right
  // side needs at least M - x slots among N - draws.
  BigInt lo = domain_size - (range_size - draws);
  if (lo.is_negative()) lo = BigInt{};
  const BigInt hi = domain_size < draws ? domain_size : draws;
  if (lo >= hi) return lo;

  if (range_size.bit_length() <= 63 && (hi - lo).to_u64() <= kExactSupportCap) {
    // Exact hypergeometric inversion. Population N = range_size balls,
    // M white; draw `draws`; count white drawn.
    const long double n = range_size.to_long_double();
    const long double m = domain_size.to_long_double();
    const long double k = draws.to_long_double();
    auto log_choose = [](long double a, long double b) {
      return std::lgamma(a + 1.0L) - std::lgamma(b + 1.0L) - std::lgamma(a - b + 1.0L);
    };
    const long double log_denom = log_choose(n, k);
    const long double u = uniform01(coins);
    long double cdf = 0.0L;
    const std::uint64_t lo64 = lo.to_u64();
    const std::uint64_t hi64 = hi.to_u64();
    for (std::uint64_t x = lo64; x <= hi64; ++x) {
      const auto xl = static_cast<long double>(x);
      const long double log_pmf =
          log_choose(m, xl) + log_choose(n - m, k - xl) - log_denom;
      cdf += std::exp(log_pmf);
      if (u < cdf) return BigInt{x};
    }
    return hi;  // numerical slack: cdf summed to slightly below 1
  }

  // Normal approximation around the exact integer mean.
  // For the midpoint split draws = ceil(N/2) the exact mean
  // floor(draws * M / N) equals floor(M / 2) (for M < N, which lo < hi
  // guarantees here) — avoiding a full-width multiply/divide per level.
  const BigInt mean = draws == ((range_size + BigInt{1}) >> 1)
                          ? (domain_size >> 1)
                          : (draws * domain_size) / range_size;

  // Variance in log space: operand sizes (tens of kilobits) exceed the
  // long-double range.   var = k * (M/N) * ((N-M)/N) * ((N-k)/(N-1))
  const long double lg_n = lg2(range_size);
  const BigInt n_minus_m = range_size - domain_size;  // > 0 since M < N here
  const BigInt n_minus_k = range_size - draws;        // > 0 since draws < N
  const long double lg_var = lg2(draws) + (lg2(domain_size) - lg_n) +
                             (lg2(n_minus_m) - lg_n) +
                             (lg2(n_minus_k) - lg2(range_size - BigInt{1}));
  const long double lg_sigma = lg_var / 2.0L;

  // Box-Muller for a deterministic standard normal.
  const long double u1 = std::max(uniform01(coins), 0x1p-60L);
  const long double u2 = uniform01(coins);
  const long double z =
      std::sqrt(-2.0L * std::log(u1)) * std::cos(2.0L * 3.14159265358979323846L * u2);

  BigInt x = mean + scaled_offset(z, lg_sigma);
  if (x < lo) x = lo;
  if (x > hi) x = hi;
  return x;
}

BigInt Ope::node_value(const std::string& path, bool leaf, const BigInt& domain_size,
                       const BigInt& range_size, Bytes& seed) const {
  BigInt value;
  const bool cacheable = cache_ && path.size() <= cache_->max_path;
  if (cacheable && cache_->lookup(path, value, seed)) return value;

  // Miss: derive this node's seed from the parent's (the walk hands us the
  // parent seed in `seed`; the root derives from the key alone), then
  // sample. Concurrent walks may compute the same node twice — the value
  // is deterministic, so the duplicate insert is a no-op.
  seed = path.empty() ? prf(key_, to_bytes("smatch-ope-root"))
                      : child_seed(key_, seed, path.back() == 'R');
  Drbg coins(seed);
  if (leaf) {
    value = BigInt::random_below(coins, range_size);
  } else {
    const BigInt draws = (range_size + BigInt{1}) >> 1;  // ceil(N/2)
    value = sample_split(domain_size, range_size, draws, coins);
  }
  if (cacheable) cache_->insert(path, value, seed);
  return value;
}

BigInt Ope::encrypt(const BigInt& m) const {
  SMATCH_SPAN("ope.encrypt");
  if (m.is_negative() || m.bit_length() > pt_bits_) {
    throw CryptoError("OPE: plaintext out of domain");
  }
  BigInt d_lo{0};
  BigInt d_hi = (BigInt{1} << pt_bits_) - BigInt{1};
  BigInt r_lo{0};
  BigInt r_hi = (BigInt{1} << ct_bits_) - BigInt{1};
  std::string path;  // current node: branch taken at each level so far
  path.reserve(ct_bits_);
  Bytes seed;  // parent seed on entry to node_value, node seed after

  while (true) {
    const BigInt domain_size = d_hi - d_lo + BigInt{1};
    const BigInt range_size = r_hi - r_lo + BigInt{1};

    if (domain_size == BigInt{1}) {
      // Leaf: one plaintext left (the path determines it); its ciphertext
      // sits at a memoized uniform offset in the remaining range.
      return r_lo + node_value(path, /*leaf=*/true, domain_size, range_size, seed);
    }

    // Interior node: split the range in half, sample how many domain
    // points land in the left half.
    const BigInt draws = (range_size + BigInt{1}) >> 1;  // ceil(N/2)
    const BigInt y = r_lo + draws - BigInt{1};           // last left-half slot
    const BigInt x = node_value(path, /*leaf=*/false, domain_size, range_size, seed);

    if (m < d_lo + x) {
      d_hi = d_lo + x - BigInt{1};
      r_hi = y;
      path.push_back('L');
    } else {
      d_lo = d_lo + x;
      r_lo = y + BigInt{1};
      path.push_back('R');
    }
  }
}

BigInt Ope::decrypt(const BigInt& c) const {
  if (c.is_negative() || c.bit_length() > ct_bits_) {
    throw CryptoError("OPE: ciphertext out of range");
  }
  BigInt d_lo{0};
  BigInt d_hi = (BigInt{1} << pt_bits_) - BigInt{1};
  BigInt r_lo{0};
  BigInt r_hi = (BigInt{1} << ct_bits_) - BigInt{1};
  std::string path;
  path.reserve(ct_bits_);
  Bytes seed;

  while (true) {
    const BigInt domain_size = d_hi - d_lo + BigInt{1};
    const BigInt range_size = r_hi - r_lo + BigInt{1};

    if (domain_size == BigInt{1}) {
      // Verify that c is the ciphertext this key assigns to d_lo.
      const BigInt expected =
          r_lo + node_value(path, /*leaf=*/true, domain_size, range_size, seed);
      if (expected != c) throw CryptoError("OPE: not a valid ciphertext");
      return d_lo;
    }

    const BigInt draws = (range_size + BigInt{1}) >> 1;
    const BigInt y = r_lo + draws - BigInt{1};
    const BigInt x = node_value(path, /*leaf=*/false, domain_size, range_size, seed);

    if (c <= y) {
      if (x.is_zero()) throw CryptoError("OPE: not a valid ciphertext");
      d_hi = d_lo + x - BigInt{1};
      r_hi = y;
      path.push_back('L');
    } else {
      if (x == domain_size) throw CryptoError("OPE: not a valid ciphertext");
      d_lo = d_lo + x;
      r_lo = y + BigInt{1};
      path.push_back('R');
    }
  }
}

Dpe::Dpe(BigInt a, BigInt b) : a_(std::move(a)), b_(std::move(b)) {
  if (a_ <= BigInt{0}) throw CryptoError("DPE: scale must be positive");
}

Dpe Dpe::from_key(BytesView key, std::size_t scale_bits) {
  Drbg coins = prf_stream(key, to_bytes("smatch-dpe-params"));
  BigInt a = BigInt::random_bits(coins, scale_bits);
  BigInt b = BigInt::random_bits(coins, scale_bits);
  return Dpe(std::move(a), std::move(b));
}

BigInt Dpe::encrypt(const BigInt& m) const { return a_ * m + b_; }

BigInt Dpe::decrypt(const BigInt& c) const {
  auto [q, r] = BigInt::div_mod(c - b_, a_);
  if (!r.is_zero()) throw CryptoError("DPE: not a valid ciphertext");
  return q;
}

}  // namespace smatch
