#!/usr/bin/env bash
# CI entry point: docs hygiene, the tier-1 build+test gate, and a
# ThreadSanitizer pass over the concurrency suites.
#
#   ./scripts/ci.sh           # everything
#   SKIP_TSAN=1 ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== docs: no stale throwing-contract mentions in public headers =="
# The server surfaces migrated to Status/StatusOr; a header claiming to
# throw ProtocolError documents an API that no longer exists.
if grep -rni "throws ProtocolError" src --include='*.hpp'; then
  echo "FAIL: header doc-comments still describe the removed throwing API" >&2
  exit 1
fi
echo "ok"

echo "== tier-1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== client pipeline: property + differential suites, OPE cache gate =="
./build/tests/ope_property_test
./build/tests/golden_vectors_test
pipeline_out=$(./build/tests/client_pipeline_test)
echo "$pipeline_out" | tail -3
# The differential suite prints the OPE node-cache hit counter; a zero
# means the memoization layer silently stopped engaging.
hits=$(echo "$pipeline_out" | sed -n 's/^ope-cache-hits=//p')
if [[ -z "$hits" || "$hits" -eq 0 ]]; then
  echo "FAIL: OPE cache-hit counter read zero (got: '${hits:-missing}')" >&2
  exit 1
fi
echo "ok (ope-cache-hits=$hits)"

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== tsan: concurrency suites under -DSMATCH_SANITIZE=thread =="
  cmake -B build-tsan -S . -DSMATCH_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target engine_test key_server_test client_pipeline_test
  ./build-tsan/tests/engine_test
  ./build-tsan/tests/key_server_test
  ./build-tsan/tests/client_pipeline_test
fi

echo "== ci: all gates passed =="
