#!/usr/bin/env bash
# CI entry point: docs hygiene, the tier-1 build+test gate, the store
# crash-recovery gate, and a ThreadSanitizer pass over the concurrency
# suites.
#
#   ./scripts/ci.sh           # everything
#   SKIP_TSAN=1 ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# The crash gate and the scenario sweep create smatch_store_* temp
# directories; make sure a failing (or killed) gate cannot leak them.
# The admin-demo gate adds a background scenario process and its
# rendezvous files.
crash_dir=""
crash_pid=""
demo_pid=""
demo_prefix=""
cleanup() {
  if [[ -n "$crash_pid" ]]; then kill -9 "$crash_pid" 2>/dev/null || true; fi
  if [[ -n "$crash_dir" ]]; then rm -rf "$crash_dir"; fi
  if [[ -n "$demo_pid" ]]; then kill -9 "$demo_pid" 2>/dev/null || true; fi
  if [[ -n "$demo_prefix" ]]; then rm -f "$demo_prefix".port "$demo_prefix".go "$demo_prefix".out; fi
}
trap cleanup EXIT

echo "== docs: no stale throwing-contract mentions in public headers =="
# The server surfaces migrated to Status/StatusOr; a header claiming to
# throw ProtocolError documents an API that no longer exists.
if grep -rni "throws ProtocolError" src --include='*.hpp'; then
  echo "FAIL: header doc-comments still describe the removed throwing API" >&2
  exit 1
fi
echo "ok"

echo "== tier-1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== client pipeline: property + differential suites, OPE cache gate =="
./build/tests/ope_property_test
./build/tests/golden_vectors_test
pipeline_out=$(./build/tests/client_pipeline_test)
echo "$pipeline_out" | tail -3
# The differential suite prints the OPE node-cache hit counter; a zero
# means the memoization layer silently stopped engaging.
hits=$(echo "$pipeline_out" | sed -n 's/^ope-cache-hits=//p')
if [[ -z "$hits" || "$hits" -eq 0 ]]; then
  echo "FAIL: OPE cache-hit counter read zero (got: '${hits:-missing}')" >&2
  exit 1
fi
echo "ok (ope-cache-hits=$hits)"

echo "== obs: kill-switch build (-DSMATCH_OBS=OFF) + overhead gate =="
# The OFF tree proves the instrumentation compiles out cleanly and that
# protocol bytes are unaffected (golden vectors must still match).
cmake -B build-obs-off -S . -DSMATCH_OBS=OFF >/dev/null
cmake --build build-obs-off -j --target obs_test golden_vectors_test obs_overhead
./build-obs-off/tests/obs_test
./build-obs-off/tests/golden_vectors_test

# Overhead gate: the same end-to-end workload from both trees, best of 5.
# obs_overhead exits nonzero on a malformed trace artifact or one that
# does not span all three engines, so artifact validity is gated here too.
on_out=$(./build/bench/obs_overhead --runs 5 \
  --trace build/obs_trace.json --prom build/obs_metrics.prom)
echo "$on_out" | tail -4
off_out=$(./build-obs-off/bench/obs_overhead --runs 5)
on_ms=$(echo "$on_out" | sed -n 's/^workload_ms=//p')
off_ms=$(echo "$off_out" | sed -n 's/^workload_ms=//p')
if [[ -z "$on_ms" || -z "$off_ms" ]]; then
  echo "FAIL: obs_overhead did not report workload_ms" >&2
  exit 1
fi
if ! awk -v on="$on_ms" -v off="$off_ms" 'BEGIN { exit !(on <= off * 1.05) }'; then
  echo "FAIL: instrumentation overhead above 5%: on=${on_ms}ms off=${off_ms}ms" >&2
  exit 1
fi
# Admin-plane gates from the same binaries: the ON tree must show a
# concurrent /metrics scraper moving echo-load p99 by under 5%, and the
# OFF tree must have no admin surface at all (admin_enabled=0 is printed
# only after the binary verified ServerConfig::admin_port is ignored).
scrape_ratio=$(echo "$on_out" | sed -n 's/^admin_scrape_p99_ratio=//p')
if [[ -z "$scrape_ratio" ]]; then
  echo "FAIL: obs_overhead (ON) did not report admin_scrape_p99_ratio" >&2
  exit 1
fi
if ! awk -v r="$scrape_ratio" 'BEGIN { exit !(r <= 1.05) }'; then
  echo "FAIL: admin scrape moved p99 by more than 5%: ratio=$scrape_ratio" >&2
  exit 1
fi
if ! grep -q '^admin_enabled=0$' <<<"$off_out"; then
  echo "FAIL: OFF build did not verify the admin plane is compiled out" >&2
  exit 1
fi
echo "ok (on=${on_ms}ms off=${off_ms}ms scrape_ratio=${scrape_ratio}, artifacts in build/)"

echo "== net: loopback TCP + fault-injection suites, throughput gate =="
# The full S-MATCH flow over real localhost TCP (byte parity with the
# in-process transport) and the seeded drop/corrupt/reorder suites.
./build/tests/transport_test
./build/tests/tcp_loopback_test
# Throughput bench must run and emit a parseable BENCH_net.json,
# including the connection sweep (100 / 1k / 10k clients against one
# event-loop server process).
./build/bench/net_throughput --smoke --json build/BENCH_net.json | tail -4
for key in inproc_rps tcp_rps tcp_concurrent_rps session_rtt_count \
           conns_100_rps conns_1000_rps conns_10000_rps; do
  if ! grep -q "\"$key\"" build/BENCH_net.json; then
    echo "FAIL: BENCH_net.json missing \"$key\"" >&2
    exit 1
  fi
done
# Load-shedding is for overload, not steady state: at the 1k tier every
# request must complete, and tail latency must stay bounded (0.5 s is an
# order of magnitude above observed p99 on the 1-core CI box).
failed_1k=$(sed -n 's/.*"conns_1000_failed": \([0-9.e+]*\).*/\1/p' build/BENCH_net.json)
p99_1k=$(sed -n 's/.*"conns_1000_p99_ns": \([0-9.e+]*\).*/\1/p' build/BENCH_net.json)
if [[ -z "$failed_1k" || -z "$p99_1k" ]]; then
  echo "FAIL: BENCH_net.json missing 1k-tier sweep fields" >&2
  exit 1
fi
if ! awk -v f="$failed_1k" -v p="$p99_1k" 'BEGIN { exit !(f == 0 && p < 5e8) }'; then
  echo "FAIL: 1k-connection tier degraded: failed=$failed_1k p99_ns=$p99_1k" >&2
  exit 1
fi
echo "ok (BENCH_net.json in build/; 1k tier failed=$failed_1k p99_ns=$p99_1k)"

echo "== store: crash-recovery gate (kill -9 mid-ingest), throughput =="
# Ingest with fsync=always in the background, kill -9 it mid-stream, then
# reopen the directory and require every recovered kNN answer to match a
# fresh reference engine byte for byte (the harness prints VERIFIED).
crash_dir=$(mktemp -d)
./build/tests/store_crash_harness --mode ingest --dir "$crash_dir" --users 5000 &
crash_pid=$!
for _ in $(seq 1 400); do
  n=$(cat "$crash_dir/progress" 2>/dev/null || echo 0)
  [[ "$n" =~ ^[0-9]+$ ]] && (( n >= 100 )) && break
  sleep 0.05
done
kill -9 "$crash_pid" 2>/dev/null || true
wait "$crash_pid" 2>/dev/null || true
if (( $(cat "$crash_dir/progress") < 100 )); then
  echo "FAIL: harness never reached 100 ingests before the kill window" >&2
  exit 1
fi
verify_out=$(./build/tests/store_crash_harness --mode verify --dir "$crash_dir")
echo "$verify_out"
if ! grep -q "^VERIFIED" <<<"$verify_out"; then
  echo "FAIL: post-crash recovery did not verify" >&2
  exit 1
fi
rm -rf "$crash_dir"
crash_dir=""
crash_pid=""

# Same gate with the background maintenance plane live underneath the
# ingest: segments rotate and checkpoints compact them while the kill -9
# lands in whatever rotation/compaction state the scheduler is in.
crash_dir=$(mktemp -d)
./build/tests/store_crash_harness --mode ingest --dir "$crash_dir" \
  --users 5000 --maintenance &
crash_pid=$!
for _ in $(seq 1 400); do
  n=$(cat "$crash_dir/progress" 2>/dev/null || echo 0)
  [[ "$n" =~ ^[0-9]+$ ]] && (( n >= 100 )) && break
  sleep 0.05
done
kill -9 "$crash_pid" 2>/dev/null || true
wait "$crash_pid" 2>/dev/null || true
if (( $(cat "$crash_dir/progress") < 100 )); then
  echo "FAIL: maintenance harness never reached 100 ingests before the kill" >&2
  exit 1
fi
verify_out=$(./build/tests/store_crash_harness --mode verify --dir "$crash_dir")
echo "$verify_out"
if ! grep -q "^VERIFIED" <<<"$verify_out"; then
  echo "FAIL: post-crash recovery (maintenance enabled) did not verify" >&2
  exit 1
fi
rm -rf "$crash_dir"
crash_pid=""

# Precision kill points: die *inside* each named rotation/compaction
# window (the harness _exit()s in the maintenance hook, skipping all
# destructors — same effect as a kill -9 landing exactly there), then
# recovery must still answer byte-identically.
for point in rotate.sealed rotate.manifest checkpoint.after_snapshots gc.manifest; do
  rm -rf "$crash_dir"; crash_dir=$(mktemp -d)
  kill_out=$(./build/tests/store_crash_harness --mode ingest --dir "$crash_dir" \
    --users 2000 --maintenance --kill-at "$point")
  if ! grep -q "^KILLED at $point" <<<"$kill_out"; then
    echo "FAIL: crash window '$point' was never reached (got: $kill_out)" >&2
    exit 1
  fi
  verify_out=$(./build/tests/store_crash_harness --mode verify --dir "$crash_dir")
  if ! grep -q "^VERIFIED" <<<"$verify_out"; then
    echo "FAIL: recovery after crash at '$point' did not verify" >&2
    exit 1
  fi
  echo "crash at $point: $verify_out"
done
rm -rf "$crash_dir"
crash_dir=""

# Durability cost bench must run and emit a parseable BENCH_store.json
# covering all four ingest tiers plus recovery, checkpoint timing, and
# the checkpoint_under_load latency tier.
./build/bench/store_throughput --smoke --json build/BENCH_store.json | tail -5
for key in ingest_off_rps ingest_fsync_never_rps ingest_fsync_batch_rps \
           ingest_fsync_always_rps recover_rps recovered_users checkpoint_ms \
           steady_p99_ns checkpoint_under_load_p99_ns checkpoint_under_load_ratio \
           checkpoint_under_load_maintenance_cycles; do
  if ! grep -q "\"$key\"" build/BENCH_store.json; then
    echo "FAIL: BENCH_store.json missing \"$key\"" >&2
    exit 1
  fi
done
# The headline claim of the maintenance plane: background compaction must
# actually run during the measured stream AND hold p99 ingest latency
# under 2x the steady state — no global quiesce anywhere in the cycle.
cycles=$(sed -n 's/.*"checkpoint_under_load_maintenance_cycles": \([0-9.e+]*\).*/\1/p' build/BENCH_store.json)
ratio=$(sed -n 's/.*"checkpoint_under_load_ratio": \([0-9.e+-]*\).*/\1/p' build/BENCH_store.json)
if ! awk -v c="$cycles" -v r="$ratio" 'BEGIN { exit !(c >= 1 && r < 2.0) }'; then
  echo "FAIL: checkpoint_under_load degraded: cycles=$cycles p99_ratio=$ratio" >&2
  exit 1
fi
echo "ok (crash gates verified; checkpoint_under_load p99 ratio=$ratio cycles=$cycles)"

echo "== scenarios: mixed-workload sweep, adversary + zero-loss gates =="
# The six standard scenarios over the real stack. Gates: every scenario
# reports its keys; the fault-injected scenario ends with zero failed
# requests (the session layer must absorb the injected loss); and the
# frequency-analysis attacker's advantage over random guessing stays
# under 10% while the raw-OPE strawman shows the attack itself works.
./build/bench/scenario_throughput --smoke --json build/BENCH_scenarios.json | tail -8
scenarios="enroll_storm churn_reenroll hot_query_skew lossy_clients evicting_store checkpoint_under_load"
for s in $scenarios; do
  for suffix in rps p99_ns failed attacker_advantage; do
    if ! grep -q "\"${s}_${suffix}\"" build/BENCH_scenarios.json; then
      echo "FAIL: BENCH_scenarios.json missing \"${s}_${suffix}\"" >&2
      exit 1
    fi
  done
  failed=$(sed -n "s/.*\"${s}_failed\": \([0-9.e+]*\).*/\1/p" build/BENCH_scenarios.json)
  adv=$(sed -n "s/.*\"${s}_attacker_advantage\": \([0-9.e+-]*\).*/\1/p" build/BENCH_scenarios.json)
  if ! awk -v f="$failed" -v a="$adv" 'BEGIN { exit !(f == 0 && a < 0.10) }'; then
    echo "FAIL: scenario $s degraded: failed=$failed attacker_advantage=$adv" >&2
    exit 1
  fi
done
# The strawman contrast: deterministic raw-value OPE must be visibly
# attackable under the same Zipf workload, or the adversary is toothless.
raw_adv=$(sed -n 's/.*"enroll_storm_attacker_advantage_raw": \([0-9.e+-]*\).*/\1/p' build/BENCH_scenarios.json)
if ! awk -v r="$raw_adv" 'BEGIN { exit !(r > 0.10) }'; then
  echo "FAIL: raw-OPE strawman advantage suspiciously low: $raw_adv" >&2
  exit 1
fi
# Eviction scenario must actually evict and fault back.
evict=$(sed -n 's/.*"evicting_store_store_evictions": \([0-9.e+]*\).*/\1/p' build/BENCH_scenarios.json)
if ! awk -v e="$evict" 'BEGIN { exit !(e > 0) }'; then
  echo "FAIL: evicting_store scenario never evicted (store_evictions=$evict)" >&2
  exit 1
fi
# The maintenance scenario must have run real background cycles under
# the live workload — otherwise it is just evicting_store with extra steps.
mcycles=$(sed -n 's/.*"checkpoint_under_load_store_maintenance_cycles": \([0-9.e+]*\).*/\1/p' build/BENCH_scenarios.json)
if ! awk -v c="$mcycles" 'BEGIN { exit !(c >= 1) }'; then
  echo "FAIL: checkpoint_under_load ran no maintenance cycles (got=$mcycles)" >&2
  exit 1
fi
# Per-phase quantiles come from the driver scraping its own admin plane
# between phases: every scenario must report an enroll-phase sample, and
# the query-heavy ones a query-phase sample.
for key in enroll_storm_enroll_p99_ns churn_reenroll_churn_p99_ns \
           hot_query_skew_query_p99_ns evicting_store_enroll_p50_ns \
           evicting_store_query_p99_ns; do
  if ! grep -q "\"$key\"" build/BENCH_scenarios.json; then
    echo "FAIL: BENCH_scenarios.json missing admin-scraped phase key \"$key\"" >&2
    exit 1
  fi
done
if compgen -G "${TMPDIR:-/tmp}/smatch_store_*" >/dev/null; then
  echo "FAIL: leaked smatch_store_* temp directories:" >&2
  ls -d "${TMPDIR:-/tmp}"/smatch_store_* >&2
  exit 1
fi
echo "ok (BENCH_scenarios.json in build/; adversary advantage=$adv raw=$raw_adv)"

echo "== admin plane: curl a live mid-scenario server, exemplar gate =="
# A store-backed scenario with injected delays runs in the background and
# holds at the end of its enroll phase until we finish probing it from
# the outside: /healthz answers, /metrics lints clean (charset, TYPE
# lines, cumulative buckets), /trace serves. Then the driver resumes and
# self-validates that the injected delays produced slow-request
# exemplars with stitched client+server trace ids.
demo_prefix="$PWD/build/admin_demo"
rm -f "$demo_prefix".port "$demo_prefix".go
./build/bench/scenario_throughput --admin-demo "$demo_prefix" --seed 11 \
  > "$demo_prefix".out 2>&1 &
demo_pid=$!
for _ in $(seq 1 600); do
  [[ -s "$demo_prefix".port ]] && break
  if ! kill -0 "$demo_pid" 2>/dev/null; then break; fi
  sleep 0.05
done
if [[ ! -s "$demo_prefix".port ]]; then
  echo "FAIL: admin demo never published its port" >&2
  cat "$demo_prefix".out >&2 || true
  exit 1
fi
admin_port=$(cat "$demo_prefix".port)
if [[ "$(curl -sf "http://127.0.0.1:$admin_port/healthz")" != "ok" ]]; then
  echo "FAIL: /healthz on the live scenario server did not answer ok" >&2
  exit 1
fi
curl -sf "http://127.0.0.1:$admin_port/metrics" > build/admin_demo_metrics.prom
curl -sf "http://127.0.0.1:$admin_port/trace?exemplars=1" > /dev/null
# Independent exposition lint, outside the C++ implementation: names in
# the Prometheus charset, every family announced by a TYPE line, and
# histogram le-buckets cumulative.
awk '
  /^# TYPE / {
    if ($4 != "counter" && $4 != "gauge" && $4 != "histogram") {
      print "lint: unknown type: " $0; exit 1
    }
    type[$3] = $4; next
  }
  /^#/ { print "lint: unexpected comment: " $0; exit 1 }
  /^$/ { next }
  {
    name = $1; le = ""
    if (match(name, /\{le="[^"]*"\}$/)) {
      le = substr(name, RSTART + 5, RLENGTH - 7)
      name = substr(name, 1, RSTART - 1)
    }
    if (name !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/) {
      print "lint: bad metric name charset: " name; exit 1
    }
    fam = name
    if (!(fam in type)) {
      f2 = fam; sub(/_(bucket|sum|count)$/, "", f2)
      if (f2 in type && type[f2] == "histogram") fam = f2
    }
    if (!(fam in type)) { print "lint: no TYPE line for " name; exit 1 }
    if (le != "" && le != "+Inf") {
      v = $2 + 0
      if (fam in last && v < last[fam]) {
        print "lint: non-cumulative buckets in " fam; exit 1
      }
      last[fam] = v
    }
    samples++
  }
  END { if (samples == 0) { print "lint: empty exposition"; exit 1 } }
' build/admin_demo_metrics.prom
if ! grep -q 'smatch_net_rtt_ns_bucket' build/admin_demo_metrics.prom; then
  echo "FAIL: live /metrics scrape is missing the rtt histogram" >&2
  exit 1
fi
touch "$demo_prefix".go
demo_rc=0
wait "$demo_pid" || demo_rc=$?
demo_pid=""
tail -6 "$demo_prefix".out
if (( demo_rc != 0 )); then
  echo "FAIL: admin demo exited rc=$demo_rc" >&2
  exit 1
fi
exemplars=$(sed -n 's/^slow_exemplars=//p' "$demo_prefix".out)
if [[ -z "$exemplars" ]] || (( exemplars < 1 )); then
  echo "FAIL: injected delays produced no slow-request exemplars" >&2
  exit 1
fi
if ! grep -q '^trace_stitched=1$' "$demo_prefix".out; then
  echo "FAIL: client and server spans did not share trace ids" >&2
  exit 1
fi
if ! grep -q '^admin_scrape_lint=ok$' "$demo_prefix".out; then
  echo "FAIL: the driver-side scrapes failed lint/parse" >&2
  exit 1
fi
rm -f "$demo_prefix".port "$demo_prefix".go "$demo_prefix".out
demo_prefix=""
echo "ok (live scrape linted; exemplars=$exemplars, stitched traces)"

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== tsan: concurrency suites under -DSMATCH_SANITIZE=thread =="
  cmake -B build-tsan -S . -DSMATCH_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target engine_test key_server_test client_pipeline_test obs_test \
    transport_test tcp_loopback_test admin_test store_test scenario_test
  ./build-tsan/tests/engine_test
  ./build-tsan/tests/key_server_test
  ./build-tsan/tests/client_pipeline_test
  ./build-tsan/tests/obs_test
  ./build-tsan/tests/transport_test
  ./build-tsan/tests/tcp_loopback_test
  ./build-tsan/tests/admin_test
  ./build-tsan/tests/store_test
  ./build-tsan/tests/scenario_test
fi

echo "== ci: all gates passed =="
