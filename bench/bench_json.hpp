// Machine-readable benchmark output: every throughput bench accepts
// `--json <path>` and writes a flat BENCH_<name>.json with its scalar
// results (throughput, speedups) plus p50/p99/count summaries of the
// latency histograms the observability layer collects (obs/histogram.hpp).
// scripts/ci.sh and plotting scripts consume these instead of scraping
// the human-readable tables.
#pragma once

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace smatch::bench {

/// Returns the value following `flag` in argv, or nullptr when absent.
inline const char* arg_after(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

/// True when `flag` appears anywhere in argv.
inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// JSON string escaping for names/keys/labels (scenario names are
/// caller-supplied). Quotes, backslashes, and control bytes only — keys
/// here are ASCII by construction.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Accumulates one flat JSON object and writes it in one shot.
class JsonResult {
 public:
  explicit JsonResult(std::string name) : name_(std::move(name)) {}

  void add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    fields_.emplace_back(key, buf);
  }

  /// Adds a string-valued field (quoted and escaped).
  void add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + json_escape(value) + "\"");
  }

  /// Adds `<key>_{count,p50_ns,p99_ns}` from a latency histogram.
  void add_hist(const std::string& key, const obs::HistogramSnapshot& h) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%" PRIu64, h.count);
    fields_.emplace_back(key + "_count", buf);
    std::snprintf(buf, sizeof buf, "%" PRIu64, h.p50());
    fields_.emplace_back(key + "_p50_ns", buf);
    std::snprintf(buf, sizeof buf, "%" PRIu64, h.p99());
    fields_.emplace_back(key + "_p99_ns", buf);
  }

  /// Writes {"name":..., fields...} to `path`; returns false on I/O error.
  [[nodiscard]] bool write(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"name\": \"%s\"", json_escape(name_).c_str());
    for (const auto& [key, value] : fields_) {
      std::fprintf(f, ",\n  \"%s\": %s", json_escape(key).c_str(), value.c_str());
    }
    std::fprintf(f, "\n}\n");
    return std::fclose(f) == 0;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace smatch::bench
