// Ablation: where does S-MATCH's client key-generation time go?
//
// The paper (Section IX-C) observes that at small plaintext sizes "the
// computation cost of the client side mainly comes from the key
// generation, which is relatively stable as the plaintext size
// increases", attributing it to the RS decoder and the RSA-OPRF's two
// modular exponentiations. This bench decomposes Keygen:
//
//   quantize + RS decode   (FuzzyKeyGen::fuzzy_vector)
//   hashing to key material (SHA-256 over the fuzzy vector)
//   OPRF round             (blind, server exponentiation, unblind+verify)
//
// and shows the whole of Keygen against InitData+Enc at two plaintext
// sizes, confirming the crossover.
//
// Run: ./build/bench/ablation_keygen_breakdown
#include <benchmark/benchmark.h>

#include <memory>

#include "core/smatch.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"

using namespace smatch;

namespace {

const RsaOprfServer& oprf_server() {
  static const RsaOprfServer server = [] {
    Drbg rng(5150);
    return RsaOprfServer(RsaKeyPair::generate(rng, 1024));
  }();
  return server;
}

SchemeParams params_for(std::size_t k) {
  SchemeParams p;
  p.attribute_bits = k;
  p.rs_threshold = 8;
  return p;
}

const Profile& test_profile() {
  static const Profile p = {12, 250, 7, 99, 180, 33};
  return p;
}

void keygen_quantize_and_decode(benchmark::State& state) {
  const FuzzyKeyGen kg(params_for(64), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kg.fuzzy_vector(test_profile()));
  }
}

void keygen_key_material(benchmark::State& state) {
  const FuzzyKeyGen kg(params_for(64), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kg.key_material(test_profile()));
  }
}

void keygen_oprf_round(benchmark::State& state) {
  const FuzzyKeyGen kg(params_for(64), 6);
  const Bytes material = kg.key_material(test_profile());
  Drbg rng(2);
  for (auto _ : state) {
    RsaOprfClient client(oprf_server().public_key(), material, rng);
    const OprfResponse resp = oprf_server().evaluate(client.request());
    benchmark::DoNotOptimize(client.finalize(resp));
  }
}

void keygen_total(benchmark::State& state) {
  const FuzzyKeyGen kg(params_for(64), 6);
  Drbg rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kg.derive(test_profile(), oprf_server(), rng));
  }
}

void initdata_plus_enc(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  DatasetSpec spec;
  spec.name = "kb";
  spec.num_users = 1;
  for (int i = 0; i < 6; ++i) {
    spec.attributes.push_back(AttributeSpec::uniform("a" + std::to_string(i), 8.0));
  }
  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());
  Client client =
      Client::create(1, test_profile(), make_client_config(spec, params_for(k), group))
          .value();
  Drbg rng(4);
  client.generate_key(oprf_server(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.encrypt_chain(client.init_data(rng)));
  }
  state.counters["plaintext_bits"] = static_cast<double>(k);
}

}  // namespace

int main(int argc, char** argv) {
  (void)oprf_server();  // key generation outside any timed region
  benchmark::RegisterBenchmark("keygen/quantize+rs_decode", keygen_quantize_and_decode)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("keygen/key_material", keygen_key_material)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("keygen/oprf_round", keygen_oprf_round)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("keygen/total", keygen_total)->Unit(benchmark::kMicrosecond);
  for (std::int64_t k : {64, 512, 2048}) {
    benchmark::RegisterBenchmark("initdata_plus_enc", initdata_plus_enc)
        ->Arg(k)
        ->Unit(benchmark::kMicrosecond)
        ->Iterations(k >= 2048 ? 2 : 10);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
