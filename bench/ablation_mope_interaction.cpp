// Ablation: why S-MATCH uses non-interactive OPE instead of mOPE
// (paper Section II: "mOPE is an interactive scheme, which is not
// suitable for the privacy-preserving profile matching scenario").
//
// Measures, for a population of n uploads: total client<->server
// interaction rounds, simulated round-trip latency on the paper's
// 802.11n link, and encode time — mOPE versus this repo's OPE.
//
// Run: ./build/bench/ablation_mope_interaction
#include <chrono>
#include <cstdio>

#include "crypto/drbg.hpp"
#include "net/channel.hpp"
#include "ope/mope.hpp"
#include "ope/ope.hpp"

using namespace smatch;

int main() {
  const LinkModel link{.bandwidth_mbps = 53.0, .latency_ms = 2.0};

  std::printf("ABLATION: interactivity of mOPE vs non-interactive OPE\n");
  std::printf("(one mOPE round = 2 messages of ~16B; latency %.0f ms each way)\n\n",
              link.latency_ms);
  std::printf("%-8s %-14s %-16s %-14s %-14s\n", "n", "mOPE rounds",
              "mOPE latency(s)", "mOPE cpu(ms)", "OPE cpu(ms)");

  for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
    Drbg rng(n);
    const MopeClient client(rng.bytes(16));
    MopeServer server;

    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      (void)server.insert(client.encrypt(rng.u64()), client);
    }
    const double mope_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    // Each round = server->client node ciphertext + client->server answer.
    const double mope_latency =
        static_cast<double>(server.interaction_rounds()) *
        (link.transfer_seconds(16) + link.transfer_seconds(1));

    const Ope ope(rng.bytes(32), 64, 128);
    t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      (void)ope.encrypt(BigInt{rng.u64()});
    }
    const double ope_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();

    std::printf("%-8zu %-14llu %-16.1f %-14.1f %-14.1f\n", n,
                static_cast<unsigned long long>(server.interaction_rounds()),
                mope_latency, mope_ms, ope_ms);
  }
  std::printf("\nOPE interaction rounds: 0 (clients encrypt offline and upload once);\n"
              "mOPE additionally *mutates* existing codes on rebalance, forcing\n"
              "re-synchronization of every stored ciphertext's order code.\n");
  return 0;
}
