// Durability cost: ingest throughput with the store off vs on at each
// fsync policy, recovery (replay) throughput, checkpoint latency, and —
// since the maintenance plane landed — ingest tail latency *while a
// background checkpoint runs* (the checkpoint_under_load tier). The
// numbers quantify exactly what docs/PERSISTENCE.md claims: kNever and
// kBatch ride the page cache and stay near the in-memory engine, kAlways
// pays one fsync per upload and is bounded by the disk, and the staggered
// background checkpoint holds p99 ingest latency under 2x steady state
// (scripts/ci.sh gates on the ratio).
//
// Run:  ./build/bench/store_throughput            (full size)
//       ./build/bench/store_throughput --smoke    (small; used by ctest)
//       add --json <path> to write BENCH_store.json (scripts/ci.sh gates
//       on it appearing and carrying all ingest tiers + recovery +
//       checkpoint_under_load).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/server.hpp"
#include "crypto/drbg.hpp"
#include "store/store.hpp"

using namespace smatch;

namespace {

namespace fs = std::filesystem;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

UploadMessage synthetic_upload(UserId id, std::size_t num_groups) {
  UploadMessage up;
  up.user_id = id;
  up.key_index.assign(32, static_cast<std::uint8_t>(id % num_groups));
  up.key_index[1] = static_cast<std::uint8_t>((id % num_groups) * 37 + 1);
  up.chain_cipher = BigInt::from_decimal(std::to_string(1000000007ull * id + 13));
  up.chain_cipher_bits = 64;
  Drbg rng(id + 1);
  up.auth_token = rng.bytes(16);
  return up;
}

struct Tier {
  const char* key;           // JSON field prefix
  bool store_on;
  store::FsyncPolicy fsync;
  std::size_t users;
};

double run_ingest(const Tier& tier, const std::vector<UploadMessage>& uploads,
                  const std::string& dir) {
  MatchServer server(ServerOptions{.num_shards = 8});
  if (tier.store_on) {
    fs::remove_all(dir);
    store::StoreOptions opts;
    opts.directory = dir;
    opts.durability.fsync = tier.fsync;
    if (Status s = server.attach_store(opts); !s.is_ok()) {
      std::fprintf(stderr, "attach_store: %s\n", s.message().c_str());
      return 0.0;
    }
  }
  const double t0 = now_ms();
  for (std::size_t i = 0; i < tier.users; ++i) {
    if (!server.ingest(uploads[i]).is_ok()) return 0.0;
  }
  const double ms = now_ms() - t0;
  return ms > 0 ? static_cast<double>(tier.users) / ms * 1000.0 : 0.0;
}

/// One per-op latency run: store on (fsync=never), optionally with the
/// background maintenance plane rotating and checkpointing underneath.
struct LatencyRun {
  double rps = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t maintenance_cycles = 0;
  bool ok = false;
};

LatencyRun run_latency(const std::vector<UploadMessage>& uploads,
                       std::size_t count, const std::string& dir,
                       bool maintenance, std::uint64_t target_cycles,
                       std::size_t min_passes) {
  LatencyRun out;
  MatchServer server(ServerOptions{.num_shards = 8});
  fs::remove_all(dir);
  store::StoreOptions opts;
  opts.directory = dir;
  opts.durability.fsync = store::FsyncPolicy::kNever;
  if (maintenance) {
    // Busier than the defaults so `target_cycles` full rotate->snapshot
    // ->GC cycles genuinely overlap the measured stream. The cadence
    // scales with the run: a checkpoint re-serializes the whole engine,
    // so at smoke size (tiny engine, ~ms cycles) we demand several tight
    // back-to-back cycles, while at full size one cycle already costs
    // ~100ms of CPU and the honest measurement is that cycle (plus any
    // follow-ups its cadence allows) amortized over a long stream —
    // chaining full-engine compactions every 25ms would measure a
    // duty-cycle no real deployment of this engine size runs at.
    store::MaintenancePolicy& policy = opts.maintenance.policy;
    const bool tight = target_cycles > 1;
    policy.background = true;
    policy.rotate_segment_bytes = tight ? 64 * 1024 : 512 * 1024;
    policy.checkpoint_sealed_segments = 1;
    policy.min_interval =
        tight ? std::chrono::milliseconds(25) : std::chrono::milliseconds(600);
    policy.poll_interval = std::chrono::milliseconds(2);
  }
  if (Status s = server.attach_store(opts); !s.is_ok()) {
    std::fprintf(stderr, "attach_store: %s\n", s.message().c_str());
    return out;
  }
  std::vector<std::uint64_t> lat;
  lat.reserve(count * 4);
  const double t0 = now_ms();
  // Both runs replay the upload stream (last-writer-wins, so re-ingest
  // is idempotent) at least `min_passes` times so they measure the same
  // op mix — a re-upload replaces an existing group member, which costs
  // more than a fresh insert, so letting only the maintenance run loop
  // would inflate the ratio with work that has nothing to do with
  // compaction. The maintenance run additionally keeps looping until
  // `target_cycles` cycles have completed — otherwise a fast machine
  // finishes before the scheduler fires and the "under load"
  // percentiles would be measuring nothing.
  std::size_t pass = 0;
  do {
    for (std::size_t i = 0; i < count; ++i) {
      const auto begin = std::chrono::steady_clock::now();
      if (!server.ingest(uploads[i]).is_ok()) return out;
      lat.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - begin)
              .count()));
    }
    ++pass;
  } while (pass < 60 &&
           (pass < min_passes ||
            (maintenance &&
             server.store()->metrics().maintenance_cycles < target_cycles)));
  const double ms = now_ms() - t0;
  const std::size_t ops = lat.size();
  std::sort(lat.begin(), lat.end());
  out.rps = ms > 0 ? static_cast<double>(ops) / ms * 1000.0 : 0.0;
  out.p50_ns = lat[ops / 2];
  out.p99_ns = lat[std::min(ops - 1, ops * 99 / 100)];
  out.maintenance_cycles = server.store()->metrics().maintenance_cycles;
  out.ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const char* json_path = bench::arg_after(argc, argv, "--json");
  const std::size_t n = smoke ? 2000 : 50000;
  const std::size_t n_always = smoke ? 300 : 2000;  // fsync-per-upload tier
  const std::size_t groups = 64;
  const std::string dir =
      (fs::temp_directory_path() /
       ("smatch_store_bench_" + std::to_string(::getpid())))
          .string();
  // Removed on every exit path, including the early error returns —
  // leaked smatch_store_* directories fail scripts/ci.sh.
  struct DirGuard {
    const std::string& d;
    ~DirGuard() {
      std::error_code ec;
      fs::remove_all(d, ec);
    }
  } guard{dir};

  std::vector<UploadMessage> uploads;
  uploads.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    uploads.push_back(synthetic_upload(static_cast<UserId>(i), groups));
  }

  const Tier tiers[] = {
      {"ingest_off", false, store::FsyncPolicy::kNever, n},
      {"ingest_fsync_never", true, store::FsyncPolicy::kNever, n},
      {"ingest_fsync_batch", true, store::FsyncPolicy::kBatch, n},
      {"ingest_fsync_always", true, store::FsyncPolicy::kAlways, n_always},
  };

  bench::JsonResult json("store_throughput");
  std::printf("%-22s %12s %10s\n", "tier", "uploads", "rps");
  for (const Tier& tier : tiers) {
    const double rps = run_ingest(tier, uploads, dir);
    if (rps == 0.0) {
      std::fprintf(stderr, "%s failed\n", tier.key);
      return 1;
    }
    std::printf("%-22s %12zu %10.0f\n", tier.key, tier.users, rps);
    json.add(std::string(tier.key) + "_rps", rps);
  }

  // Tail latency with and without the background maintenance plane: the
  // steady run is the baseline, the checkpoint_under_load run rotates,
  // snapshots (staggered), and GCs continuously under the same ingest
  // stream. The ratio is the cost of compaction as the writer sees it.
  const std::uint64_t target_cycles = smoke ? 3 : 1;
  const std::size_t min_passes = smoke ? 1 : 5;
  const LatencyRun steady = run_latency(uploads, n, dir, /*maintenance=*/false,
                                        target_cycles, min_passes);
  if (!steady.ok) {
    std::fprintf(stderr, "steady latency run failed\n");
    return 1;
  }
  const LatencyRun under_load = run_latency(uploads, n, dir,
                                            /*maintenance=*/true, target_cycles,
                                            min_passes);
  if (!under_load.ok) {
    std::fprintf(stderr, "checkpoint_under_load run failed\n");
    return 1;
  }
  const double ratio =
      steady.p99_ns > 0 ? static_cast<double>(under_load.p99_ns) /
                              static_cast<double>(steady.p99_ns)
                        : 0.0;
  std::printf("%-22s %12zu %10.0f  p50=%lluns p99=%lluns\n", "steady", n,
              steady.rps, static_cast<unsigned long long>(steady.p50_ns),
              static_cast<unsigned long long>(steady.p99_ns));
  std::printf("%-22s %12zu %10.0f  p50=%lluns p99=%lluns cycles=%llu "
              "(p99 ratio %.2fx)\n",
              "checkpoint_under_load", n, under_load.rps,
              static_cast<unsigned long long>(under_load.p50_ns),
              static_cast<unsigned long long>(under_load.p99_ns),
              static_cast<unsigned long long>(under_load.maintenance_cycles),
              ratio);
  json.add("steady_p50_ns", static_cast<double>(steady.p50_ns));
  json.add("steady_p99_ns", static_cast<double>(steady.p99_ns));
  json.add("checkpoint_under_load_rps", under_load.rps);
  json.add("checkpoint_under_load_p50_ns", static_cast<double>(under_load.p50_ns));
  json.add("checkpoint_under_load_p99_ns", static_cast<double>(under_load.p99_ns));
  json.add("checkpoint_under_load_ratio", ratio);
  json.add("checkpoint_under_load_maintenance_cycles",
           static_cast<double>(under_load.maintenance_cycles));

  // Recovery: reopen the maintenance run's store — snapshot plus the
  // segments the last checkpoint left live — into a fresh engine, then
  // measure an explicit checkpoint of the recovered state.
  {
    MatchServer recovered(ServerOptions{.num_shards = 8});
    store::StoreOptions opts;
    opts.directory = dir;
    opts.durability.fsync = store::FsyncPolicy::kNever;
    const double t0 = now_ms();
    if (Status s = recovered.attach_store(opts); !s.is_ok()) {
      std::fprintf(stderr, "recover: %s\n", s.message().c_str());
      return 1;
    }
    const double recover_ms = now_ms() - t0;
    const double recover_rps =
        recover_ms > 0
            ? static_cast<double>(recovered.num_users()) / recover_ms * 1000.0
            : 0.0;
    std::printf("%-22s %12zu %10.0f\n", "recover", recovered.num_users(),
                recover_rps);
    json.add("recover_rps", recover_rps);
    json.add("recovered_users", static_cast<double>(recovered.num_users()));

    const double c0 = now_ms();
    if (Status s = recovered.checkpoint(); !s.is_ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", s.message().c_str());
      return 1;
    }
    const double checkpoint_ms = now_ms() - c0;
    std::printf("%-22s %12zu %8.1fms\n", "checkpoint", recovered.num_users(),
                checkpoint_ms);
    json.add("checkpoint_ms", checkpoint_ms);
  }

  if (json_path != nullptr && !json.write(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path);
    return 1;
  }
  return 0;
}
