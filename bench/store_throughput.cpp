// Durability cost: ingest throughput with the store off vs on at each
// fsync policy, recovery (replay) throughput, and checkpoint latency.
// The numbers quantify exactly what docs/PERSISTENCE.md claims: kNever
// and kBatch ride the page cache and stay near the in-memory engine,
// kAlways pays one fsync per upload and is bounded by the disk.
//
// Run:  ./build/bench/store_throughput            (full size)
//       ./build/bench/store_throughput --smoke    (small; used by ctest)
//       add --json <path> to write BENCH_store.json (scripts/ci.sh gates
//       on it appearing and carrying all four ingest tiers + recovery).
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/server.hpp"
#include "crypto/drbg.hpp"
#include "store/store.hpp"

using namespace smatch;

namespace {

namespace fs = std::filesystem;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

UploadMessage synthetic_upload(UserId id, std::size_t num_groups) {
  UploadMessage up;
  up.user_id = id;
  up.key_index.assign(32, static_cast<std::uint8_t>(id % num_groups));
  up.key_index[1] = static_cast<std::uint8_t>((id % num_groups) * 37 + 1);
  up.chain_cipher = BigInt::from_decimal(std::to_string(1000000007ull * id + 13));
  up.chain_cipher_bits = 64;
  Drbg rng(id + 1);
  up.auth_token = rng.bytes(16);
  return up;
}

struct Tier {
  const char* key;           // JSON field prefix
  bool store_on;
  store::FsyncPolicy fsync;
  std::size_t users;
};

double run_ingest(const Tier& tier, const std::vector<UploadMessage>& uploads,
                  const std::string& dir) {
  MatchServer server(ServerOptions{.num_shards = 8});
  if (tier.store_on) {
    fs::remove_all(dir);
    store::StoreConfig cfg;
    cfg.directory = dir;
    cfg.fsync = tier.fsync;
    if (Status s = server.attach_store(cfg); !s.is_ok()) {
      std::fprintf(stderr, "attach_store: %s\n", s.message().c_str());
      return 0.0;
    }
  }
  const double t0 = now_ms();
  for (std::size_t i = 0; i < tier.users; ++i) {
    if (!server.ingest(uploads[i]).is_ok()) return 0.0;
  }
  const double ms = now_ms() - t0;
  return ms > 0 ? static_cast<double>(tier.users) / ms * 1000.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const char* json_path = bench::arg_after(argc, argv, "--json");
  const std::size_t n = smoke ? 2000 : 50000;
  const std::size_t n_always = smoke ? 300 : 2000;  // fsync-per-upload tier
  const std::size_t groups = 64;
  const std::string dir =
      (fs::temp_directory_path() /
       ("smatch_store_bench_" + std::to_string(::getpid())))
          .string();
  // Removed on every exit path, including the early error returns —
  // leaked smatch_store_* directories fail scripts/ci.sh.
  struct DirGuard {
    const std::string& d;
    ~DirGuard() {
      std::error_code ec;
      fs::remove_all(d, ec);
    }
  } guard{dir};

  std::vector<UploadMessage> uploads;
  uploads.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    uploads.push_back(synthetic_upload(static_cast<UserId>(i), groups));
  }

  const Tier tiers[] = {
      {"ingest_off", false, store::FsyncPolicy::kNever, n},
      {"ingest_fsync_never", true, store::FsyncPolicy::kNever, n},
      {"ingest_fsync_batch", true, store::FsyncPolicy::kBatch, n},
      {"ingest_fsync_always", true, store::FsyncPolicy::kAlways, n_always},
  };

  bench::JsonResult json("store_throughput");
  std::printf("%-22s %12s %10s\n", "tier", "uploads", "rps");
  double last_durable_rps = 0.0;
  for (const Tier& tier : tiers) {
    const double rps = run_ingest(tier, uploads, dir);
    if (rps == 0.0) {
      std::fprintf(stderr, "%s failed\n", tier.key);
      return 1;
    }
    std::printf("%-22s %12zu %10.0f\n", tier.key, tier.users, rps);
    json.add(std::string(tier.key) + "_rps", rps);
    last_durable_rps = rps;
  }
  (void)last_durable_rps;

  // Recovery: replay the kAlways run's log (n_always uploads) into a
  // fresh engine, then measure a checkpoint of the recovered state.
  {
    MatchServer recovered(ServerOptions{.num_shards = 8});
    store::StoreConfig cfg;
    cfg.directory = dir;
    cfg.fsync = store::FsyncPolicy::kNever;
    const double t0 = now_ms();
    if (Status s = recovered.attach_store(cfg); !s.is_ok()) {
      std::fprintf(stderr, "recover: %s\n", s.message().c_str());
      return 1;
    }
    const double recover_ms = now_ms() - t0;
    const double recover_rps =
        recover_ms > 0
            ? static_cast<double>(recovered.num_users()) / recover_ms * 1000.0
            : 0.0;
    std::printf("%-22s %12zu %10.0f\n", "recover", recovered.num_users(),
                recover_rps);
    json.add("recover_rps", recover_rps);
    json.add("recovered_users", static_cast<double>(recovered.num_users()));

    const double c0 = now_ms();
    if (Status s = recovered.checkpoint(); !s.is_ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", s.message().c_str());
      return 1;
    }
    const double checkpoint_ms = now_ms() - c0;
    std::printf("%-22s %12zu %8.1fms\n", "checkpoint", recovered.num_users(),
                checkpoint_ms);
    json.add("checkpoint_ms", checkpoint_ms);
  }

  if (json_path != nullptr && !json.write(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path);
    return 1;
  }
  return 0;
}
