// Table II: properties of the three datasets — node count, attribute
// count, entropy AVG/MAX/MIN, and landmark-attribute counts at
// tau = 0.6 / 0.8 — measured on the synthetic populations this repo
// generates, next to the paper's published values.
//
// Run: ./build/bench/table2_datasets
#include <cstdio>

#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"
#include "datasets/stats.hpp"

using namespace smatch;

namespace {

struct PaperRow {
  double avg, max, min;
  std::size_t lm06, lm08;
  std::size_t nodes;
};

void report(const char* name, const DatasetSpec& spec, const PaperRow& paper,
            const char* node_note) {
  Drbg rng(20140625);
  const Dataset ds = Dataset::generate(spec, rng);
  const DatasetStats s = analyze_dataset(ds);
  std::printf("%-10s nodes %-9s attrs %-3zu", name, node_note, ds.num_attributes());
  std::printf("  AVG %.2f (paper %.2f)  MAX %.2f (%.2f)  MIN %.2f (%.2f)",
              s.avg_entropy, paper.avg, s.max_entropy, paper.max, s.min_entropy,
              paper.min);
  std::printf("  LM@0.6 %zu (%zu)  LM@0.8 %zu (%zu)\n", s.landmark_count(0.6),
              paper.lm06, s.landmark_count(0.8), paper.lm08);
}

}  // namespace

int main() {
  std::printf("TABLE II: dataset properties (measured vs paper)\n");
  report("Infocom06", infocom06_spec(), {3.10, 5.34, 0.82, 2, 1, 78}, "78");
  report("Sigcomm09", sigcomm09_spec(), {3.40, 5.62, 0.86, 3, 1, 76}, "76");
  report("Weibo", weibo_spec(50000), {5.14, 9.21, 0.54, 5, 3, 1000000}, "50k(1M)");
  std::printf("\n(Weibo generated at 50k users, paper crawled 1M; distributional\n"
              " parameters are identical, so per-attribute statistics match.)\n");
  return 0;
}
