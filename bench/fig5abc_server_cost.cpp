// Figures 5(a,b,c): server-side computation cost versus plaintext size
// (bits per attribute), for Infocom06 / Sigcomm09 / Weibo.
//
// Series, as in the paper:
//   PM     — S-MATCH server: EXTRA (group filter) + SORT (ciphertext
//            comparisons) + FIND over the whole population.
//   homoPM — per-candidate homomorphic aggregation (d ciphertext
//            exponentiations with k-bit exponents + multiplications).
//
// The S-MATCH server is measured over the full population (its work is
// comparisons on d*k-bit integers). The homoPM server is measured over a
// small candidate sample — one evaluation per candidate is embarrassingly
// independent, so cost extrapolates linearly; the `users_total` and
// `per_user_ms` counters report the scaling (see EXPERIMENTS.md).
//
// Run: ./build/bench/fig5abc_server_cost
#include <benchmark/benchmark.h>

#include <chrono>
#include <map>
#include <string>

#include "baseline/homopm.hpp"
#include "core/smatch.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"

using namespace smatch;

namespace {

struct DatasetInfo {
  const char* name;
  std::size_t users;  // population (Weibo scaled; see DESIGN.md)
  std::size_t attrs;
  DatasetSpec spec;
};

const std::vector<DatasetInfo>& datasets() {
  static const std::vector<DatasetInfo> d = {
      {"Infocom06", 78, 6, infocom06_spec()},
      {"Sigcomm09", 76, 6, sigcomm09_spec()},
      {"Weibo", 2000, 17, weibo_spec(100)},
  };
  return d;
}

// S-MATCH server cost: population of N ciphertext chains of d*k (+slack)
// bits in a handful of key groups. Chain values are synthesized directly
// (the server's work depends only on ciphertext widths and group sizes,
// not on how the ciphertexts were produced).
void bench_smatch_server(benchmark::State& state, const DatasetInfo& info) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t chain_bits = info.attrs * k + 64;
  Drbg rng(11);

  MatchServer server;
  const std::size_t num_groups = 8;
  std::vector<Bytes> indexes;
  for (std::size_t g = 0; g < num_groups; ++g) indexes.push_back(rng.bytes(32));
  for (std::size_t u = 0; u < info.users; ++u) {
    UploadMessage up;
    up.user_id = static_cast<UserId>(u + 1);
    up.key_index = indexes[u % num_groups];
    up.chain_cipher = BigInt::random_bits(rng, chain_bits);
    up.chain_cipher_bits = static_cast<std::uint32_t>(chain_bits);
    up.auth_token = Bytes(304, 0);
    (void)server.ingest(up);
  }

  const QueryRequest query{1, 1, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.match(query, 5).value());
  }
  const ServerMetrics m = server.metrics();
  state.counters["plaintext_bits"] = static_cast<double>(k);
  state.counters["users_total"] = static_cast<double>(info.users);
  state.counters["matches"] = static_cast<double>(m.matches);
  state.counters["comparisons"] = static_cast<double>(m.comparisons);
  state.counters["comparisons_per_match"] =
      m.matches == 0 ? 0.0
                     : static_cast<double>(m.comparisons) / static_cast<double>(m.matches);
}

const PaillierKeyPair& paillier_keys(std::size_t modulus_bits) {
  static std::map<std::size_t, PaillierKeyPair> cache;
  auto it = cache.find(modulus_bits);
  if (it == cache.end()) {
    Drbg rng(2000 + modulus_bits);
    it = cache.emplace(modulus_bits, PaillierKeyPair::generate(rng, modulus_bits)).first;
  }
  return it->second;
}

void bench_homopm_server(benchmark::State& state, const DatasetInfo& info) {
  HomoPmParams params;
  params.plaintext_bits = static_cast<std::size_t>(state.range(0));
  // Candidate sample: per-candidate cost is independent, so a small
  // sample suffices; counters expose the full-population scaling.
  const std::size_t sample =
      params.plaintext_bits >= 2048 ? 1 : (params.plaintext_bits >= 1024 ? 2 : 4);

  Drbg rng(12);
  HomoPmServer server(params);
  Drbg prof_rng(13);
  const Dataset ds = Dataset::generate(info.spec, prof_rng);
  for (std::size_t u = 0; u < sample; ++u) {
    server.ingest(static_cast<UserId>(u + 2), ds.profile(u % ds.num_users()));
  }

  HomoPmQuerier querier(ds.profile(0), params, paillier_keys(params.modulus_bits()));
  const HomoPmQuery query = querier.make_query(rng);

  double elapsed_per_user_ms = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(server.evaluate(1, query, rng));
    elapsed_per_user_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count() /
        static_cast<double>(sample);
  }
  state.counters["plaintext_bits"] = static_cast<double>(params.plaintext_bits);
  state.counters["users_measured"] = static_cast<double>(sample);
  state.counters["users_total"] = static_cast<double>(info.users);
  state.counters["per_user_ms"] = elapsed_per_user_ms;
  state.counters["full_population_ms"] =
      elapsed_per_user_ms * static_cast<double>(info.users);
}

void register_all() {
  for (const auto& info : datasets()) {
    for (std::int64_t k : {64, 128, 256, 512, 1024, 2048}) {
      benchmark::RegisterBenchmark(
          (std::string("fig5abc/") + info.name + "/PM").c_str(),
          [&info](benchmark::State& s) { bench_smatch_server(s, info); })
          ->Arg(k)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          (std::string("fig5abc/") + info.name + "/homoPM").c_str(),
          [&info](benchmark::State& s) { bench_homopm_server(s, info); })
          ->Arg(k)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
