// Figure 4(b): true positive rate of profile matching versus the RS
// decoder threshold theta (5..10), for the three datasets. Plaintext size
// 64 bits per attribute, top-5 queries, as in the paper.
//
// Workload: community-structured populations (users deviate from their
// community profile on a few attributes), the realistic regime where
// fuzzy keying is supposed to cluster users. Ground truth: v is a true
// match for u when ||A_u - A_v||_inf <= theta (Definition 3). The scheme
// finds v when both derive the same profile key AND v lands in u's top-5
// order-nearest results. TPR = recall@5 = found / min(5, |truth|),
// averaged over all queries with non-empty truth sets.
//
// Expected shape (paper): TPR in the ~0.85-1.0 band, decreasing in theta
// (a larger claimed radius admits ground-truth pairs the quantizer
// separates), with Weibo (17 attributes) lowest.
//
// Run: ./build/bench/fig4b_tpr
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/smatch.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"

using namespace smatch;

namespace {

constexpr std::uint32_t kValueRange = 48;  // per-attribute value alphabet
constexpr std::size_t kTopK = 5;
constexpr double kMutationProb = 0.02;  // per-attribute deviation rate

struct Workload {
  std::vector<Profile> profiles;
};

// Community model: centers uniform over the alphabet; each user copies
// their community profile and deviates on a few attributes by a magnitude
// that scales with the claimed radius theta.
Workload make_workload(std::size_t num_users, std::size_t d, std::uint32_t theta,
                       Drbg& rng) {
  const std::size_t num_clusters = std::max<std::size_t>(2, num_users / 8);
  std::vector<Profile> centers(num_clusters, Profile(d));
  for (auto& c : centers) {
    for (auto& v : c) v = static_cast<AttrValue>(rng.below(kValueRange));
  }
  Workload w;
  w.profiles.reserve(num_users);
  for (std::size_t u = 0; u < num_users; ++u) {
    Profile p = centers[u % num_clusters];
    for (auto& v : p) {
      const double coin = static_cast<double>(rng.u64() >> 11) * 0x1p-53;
      if (coin >= kMutationProb) continue;
      const auto mag = 1 + static_cast<std::int64_t>(rng.below(theta));
      const std::int64_t delta = (rng.u64() & 1) ? mag : -mag;
      v = static_cast<AttrValue>(std::clamp<std::int64_t>(
          static_cast<std::int64_t>(v) + delta, 0, kValueRange - 1));
    }
    w.profiles.push_back(std::move(p));
  }
  return w;
}

double measure_tpr(const char* name, std::size_t num_users, std::size_t d,
                   std::uint32_t theta, std::uint64_t seed) {
  Drbg rng(seed);
  const Workload w = make_workload(num_users, d, theta, rng);

  DatasetSpec spec;
  spec.name = name;
  spec.num_users = num_users;
  for (std::size_t a = 0; a < d; ++a) {
    spec.attributes.push_back(AttributeSpec::uniform("a" + std::to_string(a),
                                                     std::log2(kValueRange)));
  }

  SchemeParams params;
  params.attribute_bits = 64;  // the paper's Fig 4(b) setting
  params.rs_threshold = theta;

  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());
  const ClientConfig config = make_client_config(spec, params, group);
  RsaOprfServer key_server(RsaKeyPair::generate(rng, 512));
  MatchServer server;

  std::vector<Client> clients;
  clients.reserve(num_users);
  for (std::size_t u = 0; u < num_users; ++u) {
    clients.push_back(
        Client::create(static_cast<UserId>(u + 1), w.profiles[u], config).value());
    clients.back().generate_key(key_server, rng);
    (void)server.ingest(clients.back().make_upload(rng));
  }

  double recall_sum = 0.0;
  std::size_t queries = 0;
  for (std::size_t u = 0; u < num_users; ++u) {
    // Ground truth for this query.
    std::size_t truth = 0;
    for (std::size_t v = 0; v < num_users; ++v) {
      if (v != u && profile_distance(w.profiles[u], w.profiles[v]) <= theta) ++truth;
    }
    if (truth == 0) continue;

    const QueryResult r = server.match(clients[u].make_query(1, 1), kTopK).value();
    std::size_t found = 0;
    for (const auto& e : r.entries) {
      if (profile_distance(w.profiles[u], w.profiles[e.user_id - 1]) <= theta) ++found;
    }
    recall_sum += static_cast<double>(found) /
                  static_cast<double>(std::min<std::size_t>(kTopK, truth));
    ++queries;
  }
  return queries == 0 ? 0.0 : recall_sum / static_cast<double>(queries);
}

}  // namespace

int main() {
  struct Row {
    const char* name;
    std::size_t users;
    std::size_t attrs;
  };
  // Weibo is evaluated at 200 users (paper: 1M); TPR is a per-query
  // average, so it is population-size-insensitive once groups are formed.
  const Row rows[] = {{"Infocom06", 78, 6}, {"Sigcomm09", 76, 6}, {"Weibo", 200, 17}};

  std::printf("FIG 4(b): true positive rate vs RS decoder threshold "
              "(k=64 bits, top-5)\n\n");
  std::printf("%-8s %-12s %-12s %-12s\n", "theta", "Infocom06", "Sigcomm09", "Weibo");
  constexpr int kTrials = 3;
  for (std::uint32_t theta = 5; theta <= 10; ++theta) {
    std::printf("%-8u", theta);
    std::uint64_t dataset_salt = 0;
    for (const Row& row : rows) {
      double tpr = 0.0;
      for (int trial = 0; trial < kTrials; ++trial) {
        tpr += measure_tpr(row.name, row.users, row.attrs, theta,
                           7000 + 100 * dataset_salt + 10 * theta +
                               static_cast<std::uint64_t>(trial));
      }
      std::printf(" %-12.3f", tpr / kTrials);
      ++dataset_salt;
    }
    std::printf("\n");
  }
  std::printf("\npaper at theta=8: Infocom06 0.972, Sigcomm09 0.958, Weibo 0.930\n");
  return 0;
}
