// Ablation: adaptive per-attribute plaintext widths (the Section X
// future-work extension implemented in core/adaptive.hpp) versus uniform
// sizing, per dataset.
//
// Compares, at a common 64-bit mapped-entropy security target:
//   uniform-64     : the paper's default; *misses* the target on
//                    large-alphabet attributes (entropy < 64 bits there)
//   uniform-worst  : uniform width sized for the hardest attribute;
//                    hits the target but pays it on every attribute
//   adaptive       : per-attribute minimum widths; hits the target with
//                    the smallest chain
//
// Reports chain width, upload size, and client OPE encryption time.
//
// Run: ./build/bench/ablation_adaptive_widths
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>

#include "core/smatch.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"

using namespace smatch;

namespace {

double encrypt_ms(Client& client, Drbg& rng) {
  const auto mapped = client.init_data(rng);
  const auto start = std::chrono::steady_clock::now();
  (void)client.encrypt_chain(mapped);
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

void report(const char* label, ClientConfig config, const Profile& profile,
            const RsaOprfServer& oprf, double min_entropy, Drbg& rng) {
  Client client = Client::create(1, profile, config).value();
  client.generate_key(oprf, rng);
  const double ms = encrypt_ms(client, rng);
  const std::size_t bytes = client.make_upload(rng).serialize().size();
  std::printf("  %-15s chain %6zu bits  upload %5zu B  OPE %7.1f ms  "
              "min mapped entropy %6.1f bits %s\n",
              label, client.chain_cipher_bits() - config.params.ope_slack_bits, bytes,
              ms, min_entropy, min_entropy < 64.0 ? "(below target!)" : "");
}

}  // namespace

int main() {
  Drbg rng(31);
  const RsaOprfServer oprf(RsaKeyPair::generate(rng, 1024));
  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());

  std::printf("ABLATION: uniform vs adaptive plaintext widths "
              "(security target: 64-bit mapped entropy)\n\n");

  for (const DatasetSpec& spec :
       {infocom06_spec(), sigcomm09_spec(), weibo_spec(8)}) {
    std::printf("%s (d = %zu):\n", spec.name.c_str(), spec.attributes.size());
    Drbg data_rng(7);
    const Profile profile = Dataset::generate(spec, data_rng).profile(0);

    SchemeParams params;
    params.rs_threshold = 8;

    // Collect attribute distributions once.
    ClientConfig base = make_client_config(spec, params, group);
    const AdaptiveWidths adaptive = AdaptiveWidths::for_target(base.attribute_probs, 64.0);

    auto min_entropy_at = [&](std::size_t k) {
      double m = 1e300;
      for (const auto& p : base.attribute_probs) {
        m = std::min(m, EntropyMapper(p, k).mapped_entropy());
      }
      return m;
    };

    // uniform-64.
    {
      ClientConfig cfg = base;
      cfg.params.attribute_bits = 64;
      report("uniform-64", cfg, profile, oprf, min_entropy_at(64), rng);
    }
    // uniform sized for the worst attribute.
    {
      const std::size_t worst =
          *std::max_element(adaptive.bits.begin(), adaptive.bits.end());
      ClientConfig cfg = base;
      cfg.params.attribute_bits = worst;
      report(("uniform-" + std::to_string(worst)).c_str(), cfg, profile, oprf,
             min_entropy_at(worst), rng);
    }
    // adaptive.
    {
      ClientConfig cfg = base;
      cfg.adaptive_widths = adaptive.bits;
      report("adaptive", cfg, profile, oprf,
             adaptive.achieved_entropy(base.attribute_probs), rng);
    }
    std::printf("\n");
  }
  return 0;
}
