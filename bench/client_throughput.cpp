// Client pipeline throughput: sequential vs batched fleet enrollment
// (enroll_and_upload_batch), plus a single-core microbench isolating the
// OPE node cache (the Popa-style recursion-state memoization inside Ope).
//
// The harness proves the paths are interchangeable before timing anything:
// a warmup round enrolls two identical fleets — one sequential with a
// single-threaded key server, one batched over a ThreadPool — and every
// upload wire must be byte-identical. Only then are fresh fleets timed.
//
// The >= 3x batched-vs-sequential acceptance gate only applies to full
// runs on machines with >= 8 hardware threads; the batch win is thread
// parallelism (client-side RSA blinding, OPE walks, and auth-token
// modexps all fan out), which a small container cannot exhibit. The
// single-core ratio is reported separately: with one worker the batch
// path must not cost materially more than the sequential one.
//
// Run:   ./build/bench/client_throughput            (64 clients, RSA-1024)
//        ./build/bench/client_throughput --smoke    (8 clients, RSA-512; ctest)
//        add --json <path> to also write a machine-readable result file
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/client.hpp"
#include "core/key_server.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"
#include "group/modp_group.hpp"

using namespace smatch;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

constexpr std::size_t kAttributes = 6;

ClientConfig make_config(std::size_t attribute_bits) {
  DatasetSpec spec;
  spec.name = "throughput";
  spec.num_users = 1;
  for (std::size_t i = 0; i < kAttributes; ++i) {
    spec.attributes.push_back(AttributeSpec::uniform("a" + std::to_string(i), 8.0));
  }
  SchemeParams params;
  params.attribute_bits = attribute_bits;
  params.rs_threshold = 8;
  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());
  return make_client_config(spec, params, group);
}

std::vector<Client> make_fleet(const ClientConfig& config, std::size_t n,
                               std::uint64_t seed) {
  Drbg rng(seed);
  std::vector<Client> fleet;
  fleet.reserve(n);
  for (std::size_t u = 0; u < n; ++u) {
    Profile p;
    for (std::size_t a = 0; a < kAttributes; ++a) {
      p.push_back(static_cast<AttrValue>(rng.below(256)));
    }
    fleet.push_back(Client::create(static_cast<UserId>(u + 1), p, config).value());
  }
  return fleet;
}

std::vector<Client*> ptrs(std::vector<Client>& fleet) {
  std::vector<Client*> out;
  out.reserve(fleet.size());
  for (auto& c : fleet) out.push_back(&c);
  return out;
}

// Enrolls a fresh fleet and returns (elapsed ms, serialized uploads,
// fleet-merged pipeline latency histograms).
struct EnrollRun {
  double ms = 0;
  std::vector<Bytes> wires;
  obs::HistogramSnapshot encrypt_ns;
  obs::HistogramSnapshot upload_ns;
};

EnrollRun run_enroll(const ClientConfig& config, std::size_t n, const RsaKeyPair& rsa,
                     std::size_t server_threads, ThreadPool* pool,
                     std::uint64_t enroll_seed) {
  std::vector<Client> fleet = make_fleet(config, n, /*seed=*/1);
  KeyServer server(RsaKeyPair{rsa},
                   KeyServerOptions{.requests_per_epoch = 0,
                                    .batch_threads = server_threads});
  std::vector<Client*> clients = ptrs(fleet);
  Drbg rng(enroll_seed);
  const auto t0 = Clock::now();
  const auto uploads = enroll_and_upload_batch(clients, server, rng, pool);
  EnrollRun run;
  run.ms = ms_since(t0);
  for (const auto& up : uploads) {
    if (!up.is_ok()) {
      std::fprintf(stderr, "FAIL: enrollment error: %s\n",
                   up.status().to_string().c_str());
      std::exit(1);
    }
    run.wires.push_back(up->serialize());
  }
  for (const Client& c : fleet) {
    const ClientMetrics cm = c.metrics();
    run.encrypt_ns.merge(cm.encrypt_latency_ns);
    run.upload_ns.merge(cm.upload_latency_ns);
  }
  return run;
}

// Node-cache microbench: the same plaintext stream through a cached and
// an uncached Ope under one key, single-threaded. Returns the speedup.
double ope_cache_speedup(std::size_t pt_bits, std::size_t iters) {
  Drbg rng(2718);
  const Bytes key = rng.bytes(32);
  std::vector<BigInt> plain;
  plain.reserve(iters);
  for (std::size_t i = 0; i < iters; ++i) {
    plain.push_back(BigInt::random_below(rng, BigInt{1} << pt_bits));
  }

  const Ope uncached(key, pt_bits, pt_bits + 64, /*cache_nodes=*/0);
  auto t0 = Clock::now();
  std::vector<BigInt> cold;
  cold.reserve(iters);
  for (const BigInt& m : plain) cold.push_back(uncached.encrypt(m));
  const double cold_ms = ms_since(t0);

  const Ope cached(key, pt_bits, pt_bits + 64);
  t0 = Clock::now();
  std::vector<BigInt> warm;
  warm.reserve(iters);
  for (const BigInt& m : plain) warm.push_back(cached.encrypt(m));
  const double warm_ms = ms_since(t0);

  for (std::size_t i = 0; i < iters; ++i) {
    if (cold[i] != warm[i]) {
      std::fprintf(stderr, "FAIL: cached OPE ciphertext %zu differs\n", i);
      std::exit(1);
    }
  }
  const OpeCacheStats stats = cached.cache_stats();
  const double total = static_cast<double>(stats.hits + stats.misses);
  std::printf("  ope %zu-bit:        uncached %8.1f ms, cached %8.1f ms"
              "  (%.2fx, hit rate %.0f%%, %zu encryptions)\n",
              pt_bits, cold_ms, warm_ms, cold_ms / warm_ms,
              total == 0 ? 0.0 : 100.0 * static_cast<double>(stats.hits) / total,
              iters);
  return cold_ms / warm_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const char* json_path = bench::arg_after(argc, argv, "--json");
  const std::size_t fleet_size = smoke ? 8 : 64;
  const std::size_t rsa_bits = smoke ? 512 : 1024;
  const std::size_t attribute_bits = smoke ? 32 : 64;
  const unsigned cores = std::thread::hardware_concurrency();

  const ClientConfig config = make_config(attribute_bits);
  Drbg key_rng(2014);
  const RsaKeyPair rsa = RsaKeyPair::generate(key_rng, rsa_bits);

  // Identity phase (untimed warmup): the batched pipeline must be
  // byte-for-byte the sequential one before any timing is trusted.
  ThreadPool pool;
  {
    const EnrollRun seq = run_enroll(config, fleet_size, rsa, /*server_threads=*/1,
                                     /*pool=*/nullptr, /*enroll_seed=*/7);
    const EnrollRun par = run_enroll(config, fleet_size, rsa, /*server_threads=*/0,
                                     &pool, /*enroll_seed=*/7);
    for (std::size_t i = 0; i < fleet_size; ++i) {
      if (seq.wires[i] != par.wires[i]) {
        std::fprintf(stderr, "FAIL: batched upload %zu differs from sequential\n", i);
        return 1;
      }
    }
  }

  // Timed phase: fresh fleets, fresh servers, same profiles and seeds.
  const EnrollRun seq = run_enroll(config, fleet_size, rsa, 1, nullptr, 11);
  const EnrollRun par = run_enroll(config, fleet_size, rsa, 0, &pool, 11);
  ThreadPool single(1);
  const EnrollRun one = run_enroll(config, fleet_size, rsa, 1, &single, 11);

  const double speedup = seq.ms / par.ms;
  const double single_ratio = seq.ms / one.ms;

  std::printf("CLIENT THROUGHPUT: sequential vs batched fleet enrollment\n");
  std::printf("  workload:   %zu clients x %zu attributes, k = %zu bits, RSA-%zu, "
              "%u hardware threads\n",
              fleet_size, kAttributes, attribute_bits, rsa_bits, cores);
  std::printf("  identity:   warmup fleets byte-identical (%zu uploads)\n\n",
              fleet_size);
  std::printf("  sequential enroll: %8.1f ms  (%.0f clients/s)\n", seq.ms,
              static_cast<double>(fleet_size) / (seq.ms / 1e3));
  std::printf("  batched enroll:    %8.1f ms  (%.0f clients/s)\n", par.ms,
              static_cast<double>(fleet_size) / (par.ms / 1e3));
  std::printf("  batch speedup:     %.2fx   (single-core ratio %.2fx)\n\n", speedup,
              single_ratio);

  const double cache = ope_cache_speedup(attribute_bits * kAttributes,
                                         smoke ? 24 : 200);

  if (json_path != nullptr) {
    bench::JsonResult json("client_throughput");
    json.add("fleet_size", static_cast<double>(fleet_size));
    json.add("rsa_bits", static_cast<double>(rsa_bits));
    json.add("sequential_ms", seq.ms);
    json.add("batch_ms", par.ms);
    json.add("sequential_cps", static_cast<double>(fleet_size) / (seq.ms / 1e3));
    json.add("batch_cps", static_cast<double>(fleet_size) / (par.ms / 1e3));
    json.add("batch_speedup", speedup);
    json.add("single_core_ratio", single_ratio);
    json.add("ope_cache_speedup", cache);
    json.add_hist("encrypt_latency", par.encrypt_ns);
    json.add_hist("upload_latency", par.upload_ns);
    if (!json.write(json_path)) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", json_path);
      return 1;
    }
    std::printf("  json: %s\n", json_path);
  }

  if (smoke) return 0;  // timing gates are only meaningful full-size
  if (cache < 0.9) {  // sanity: the node cache must never cost on net
    std::fprintf(stderr, "FAIL: cached OPE slower than uncached (%.2fx)\n", cache);
    return 1;
  }
  if (cores >= 8 && speedup < 3.0) {
    std::fprintf(stderr, "FAIL: batch speedup %.2fx below 3x on %u cores\n", speedup,
                 cores);
    return 1;
  }
  std::printf("  gate: %s\n",
              cores >= 8 ? (speedup >= 3.0 ? ">= 3x on >= 8 cores met" : "unreachable")
                         : "skipped (< 8 hardware threads)");
  return 0;
}
