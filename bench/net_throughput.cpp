// Transport/session throughput: request-response RPCs per second through
// the full net stack (frame codec -> session envelopes -> dispatcher ->
// replay cache), compared across the in-process transport and real
// loopback TCP, single-connection and concurrent, plus a seeded-loss run
// that prices the retry machinery.
//
// Run:  ./build/bench/net_throughput            (full size)
//       ./build/bench/net_throughput --smoke    (small; used by ctest)
//       add --json <path> to also write a machine-readable result file
//       (scripts/ci.sh gates on BENCH_net.json appearing and parsing).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "net/fault.hpp"
#include "net/inproc_transport.hpp"
#include "net/server.hpp"
#include "net/session.hpp"
#include "net/tcp_transport.hpp"
#include "obs/registry.hpp"

using namespace smatch;

namespace {

constexpr std::chrono::milliseconds kIo{2000};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Bytes payload_of(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i);
  return out;
}

FrameDispatcher echo_dispatcher() {
  FrameDispatcher dispatcher;
  dispatcher.register_handler(MessageKind::kOther, [](BytesView body) -> StatusOr<Bytes> {
    return Bytes(body.begin(), body.end());
  });
  return dispatcher;
}

struct RunResult {
  double ms = 0.0;
  std::uint64_t retries = 0;
  bool ok = true;
};

/// `calls` sequential RPCs over one connection; returns elapsed time.
RunResult drive(Transport& conn, std::size_t calls, std::size_t payload_bytes,
                std::uint64_t seed, const RetryPolicy& policy = {}) {
  SessionClient session(conn, policy, seed);
  const Bytes body = payload_of(payload_bytes);
  RunResult r;
  const double t0 = now_ms();
  for (std::size_t i = 0; i < calls; ++i) {
    if (!session.call(MessageKind::kOther, body).is_ok()) r.ok = false;
  }
  r.ms = now_ms() - t0;
  r.retries = session.stats().retries;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const char* json_path = bench::arg_after(argc, argv, "--json");
  const std::size_t calls = smoke ? 300 : 5000;
  const std::size_t payload = 512;  // ~ an S-MATCH upload frame
  const std::size_t fanout = smoke ? 2 : 4;

  const FrameDispatcher dispatcher = echo_dispatcher();

  // --- In-process transport, one connection -------------------------------
  NetServer inproc_server(dispatcher, /*workers=*/2);
  auto [inproc_client, inproc_end] = InProcTransport::make_pair();
  inproc_server.attach(std::move(inproc_end));
  const RunResult inproc = drive(*inproc_client, calls, payload, /*seed=*/1);
  (void)inproc_client->close();
  inproc_server.stop();

  // --- Loopback TCP, one connection ---------------------------------------
  NetServer tcp_server(dispatcher, /*workers=*/fanout + 1);
  if (Status s = tcp_server.start(0); !s.is_ok()) {
    std::fprintf(stderr, "bind failed: %s\n", s.to_string().c_str());
    return 1;
  }
  auto tcp_conn = TcpTransport::connect("127.0.0.1", tcp_server.port(), kIo);
  if (!tcp_conn.is_ok()) {
    std::fprintf(stderr, "connect failed: %s\n", tcp_conn.status().to_string().c_str());
    return 1;
  }
  const RunResult tcp = drive(**tcp_conn, calls, payload, /*seed=*/2);
  (void)(*tcp_conn)->close();  // frees its worker for the concurrent fleet

  // --- Loopback TCP, `fanout` concurrent connections ----------------------
  std::vector<std::unique_ptr<Transport>> conns;
  for (std::size_t c = 0; c < fanout; ++c) {
    auto conn = TcpTransport::connect("127.0.0.1", tcp_server.port(), kIo);
    if (!conn.is_ok()) {
      std::fprintf(stderr, "connect failed: %s\n", conn.status().to_string().c_str());
      return 1;
    }
    conns.push_back(std::move(*conn));
  }
  std::atomic<bool> all_ok{true};
  const double t0 = now_ms();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < fanout; ++c) {
    threads.emplace_back([&, c] {
      const RunResult r = drive(*conns[c], calls / fanout, payload, /*seed=*/10 + c);
      if (!r.ok) all_ok.store(false);
    });
  }
  for (auto& t : threads) t.join();
  const double concurrent_ms = now_ms() - t0;
  for (auto& conn : conns) (void)conn->close();

  // --- Seeded 20% loss over TCP: what retries cost ------------------------
  auto lossy_conn = TcpTransport::connect("127.0.0.1", tcp_server.port(), kIo);
  if (!lossy_conn.is_ok()) {
    std::fprintf(stderr, "connect failed: %s\n", lossy_conn.status().to_string().c_str());
    return 1;
  }
  FaultSpec faults;
  faults.drop = 0.2;
  faults.seed = 9;
  FaultInjector injector(faults);
  (*lossy_conn)->set_fault_injector(&injector);
  RetryPolicy lossy_policy;
  lossy_policy.max_attempts = 8;
  lossy_policy.attempt_timeout = std::chrono::milliseconds{200};
  lossy_policy.initial_backoff = std::chrono::milliseconds{1};
  lossy_policy.max_backoff = std::chrono::milliseconds{8};
  const std::size_t lossy_calls = calls / 10;
  const RunResult lossy =
      drive(**lossy_conn, lossy_calls, payload, /*seed=*/3, lossy_policy);
  (void)(*lossy_conn)->close();
  tcp_server.stop();

  if (!inproc.ok || !tcp.ok || !all_ok.load() || !lossy.ok) {
    std::fprintf(stderr, "FAIL: at least one RPC did not complete\n");
    return 1;
  }

  const double inproc_rps = 1e3 * static_cast<double>(calls) / inproc.ms;
  const double tcp_rps = 1e3 * static_cast<double>(calls) / tcp.ms;
  const double concurrent_rps =
      1e3 * static_cast<double>(calls / fanout * fanout) / concurrent_ms;
  const double lossy_rps = 1e3 * static_cast<double>(lossy_calls) / lossy.ms;

  std::printf("NET THROUGHPUT: %zu-byte echo RPCs through the session stack%s\n\n",
              payload, smoke ? " (smoke)" : "");
  std::printf("  %-28s %10s %12s %10s\n", "configuration", "calls", "rps", "retries");
  std::printf("  %-28s %10zu %12.0f %10llu\n", "inproc, 1 connection", calls,
              inproc_rps, static_cast<unsigned long long>(inproc.retries));
  std::printf("  %-28s %10zu %12.0f %10llu\n", "tcp loopback, 1 connection", calls,
              tcp_rps, static_cast<unsigned long long>(tcp.retries));
  std::printf("  %-28s %10zu %12.0f %10s\n", "tcp loopback, concurrent",
              calls / fanout * fanout, concurrent_rps, "-");
  std::printf("  %-28s %10zu %12.0f %10llu\n", "tcp + 20% seeded loss",
              lossy_calls, lossy_rps, static_cast<unsigned long long>(lossy.retries));

  const auto rtt = obs::Registry::global().histogram("smatch_net_rtt_ns")->snapshot();
  std::printf("\n  session RTT: p50 %.1f us, p99 %.1f us over %llu calls\n",
              static_cast<double>(rtt.p50()) / 1e3, static_cast<double>(rtt.p99()) / 1e3,
              static_cast<unsigned long long>(rtt.count));

  if (json_path != nullptr) {
    bench::JsonResult json("net_throughput");
    json.add("calls", static_cast<double>(calls));
    json.add("payload_bytes", static_cast<double>(payload));
    json.add("inproc_rps", inproc_rps);
    json.add("tcp_rps", tcp_rps);
    json.add("tcp_concurrent_rps", concurrent_rps);
    json.add("tcp_concurrent_connections", static_cast<double>(fanout));
    json.add("lossy_rps", lossy_rps);
    json.add("lossy_retries", static_cast<double>(lossy.retries));
    json.add_hist("session_rtt", rtt);
    if (!json.write(json_path)) {
      std::fprintf(stderr, "FAIL: could not write %s\n", json_path);
      return 1;
    }
    std::printf("  wrote %s\n", json_path);
  }
  return 0;
}
