// Transport/session throughput: request-response RPCs per second through
// the full net stack (frame codec -> session envelopes -> event loop ->
// dispatcher -> replay cache), compared across the in-process transport
// and real loopback TCP, plus a seeded-loss run that prices the retry
// machinery and a connection sweep (100 / 1k / 10k concurrently
// connected clients against ONE server process).
//
// The sweep drives clients from a child process (`--client-driver`,
// spawned via popen on our own executable): the container caps each
// process at 20000 file descriptors, so the 10k tier only fits when the
// server holds its 10k sockets alone and the clients live elsewhere —
// which is also the honest shape of the claim being measured.
//
// Run:  ./build/bench/net_throughput            (full size)
//       ./build/bench/net_throughput --smoke    (small; used by ctest)
//       add --json <path> to also write a machine-readable result file
//       (scripts/ci.sh gates on BENCH_net.json appearing, parsing, and
//       the 1k tier completing with zero failed requests).
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "net/fault.hpp"
#include "net/inproc_transport.hpp"
#include "net/server.hpp"
#include "net/session.hpp"
#include "net/tcp_transport.hpp"
#include "obs/registry.hpp"

using namespace smatch;

namespace {

constexpr std::chrono::milliseconds kIo{2000};
constexpr std::chrono::milliseconds kSweepIo{15000};  // connect storms queue
constexpr std::size_t kPayload = 512;                 // ~ an S-MATCH upload frame

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Lifts RLIMIT_NOFILE to the hard cap so the fd-heavy tiers fit.
void raise_fd_limit() {
  struct rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    (void)setrlimit(RLIMIT_NOFILE, &rl);
  }
}

Bytes payload_of(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i);
  return out;
}

FrameDispatcher echo_dispatcher() {
  FrameDispatcher dispatcher;
  dispatcher.register_handler(MessageKind::kOther, [](BytesView body) -> StatusOr<Bytes> {
    return Bytes(body.begin(), body.end());
  });
  return dispatcher;
}

struct RunResult {
  double ms = 0.0;
  std::uint64_t retries = 0;
  bool ok = true;
};

/// `calls` sequential RPCs over one connection; returns elapsed time.
RunResult drive(Transport& conn, std::size_t calls, std::size_t payload_bytes,
                std::uint64_t seed, const RetryPolicy& policy = {}) {
  SessionClient session(conn, policy, seed);
  const Bytes body = payload_of(payload_bytes);
  RunResult r;
  const double t0 = now_ms();
  for (std::size_t i = 0; i < calls; ++i) {
    if (!session.call(MessageKind::kOther, body).is_ok()) r.ok = false;
  }
  r.ms = now_ms() - t0;
  r.retries = session.stats().retries;
  return r;
}

// --- Child process: the client side of one sweep tier ---------------------

/// Opens `conns` loopback connections, keeps ALL of them connected, and
/// drives `calls_per_conn` RPCs over each from a small thread pool.
/// Reports on stdout: a CONNECTED line once every socket is up (the
/// parent samples its connection gauge at that moment) and a RESULT line
/// with throughput, failure count, and per-call latency quantiles.
int run_client_driver(std::uint16_t port, std::size_t conns,
                      std::size_t calls_per_conn) {
  raise_fd_limit();
  const std::size_t threads_n = std::min<std::size_t>(conns, 8);
  std::vector<std::unique_ptr<Transport>> transports(conns);
  std::atomic<std::uint64_t> connect_failed{0};
  std::atomic<std::uint64_t> call_failed{0};
  std::vector<std::vector<std::uint64_t>> latencies(threads_n);

  // Barrier between warm-up and the timed phase: the parent samples its
  // connection gauge when we print CONNECTED, so every socket must not
  // only be connected but also *accepted and adopted* server-side by
  // then — which one completed warm-up RPC per connection guarantees.
  std::mutex mu;
  std::condition_variable cv;
  std::size_t warmed = 0;
  bool go = false;

  auto slice = [&](std::size_t t) {
    const std::size_t per = (conns + threads_n - 1) / threads_n;
    const std::size_t lo = t * per;
    return std::pair<std::size_t, std::size_t>{lo, std::min(conns, lo + per)};
  };

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < threads_n; ++t) {
    threads.emplace_back([&, t] {
      const auto [lo, hi] = slice(t);
      // One session per connection, kept across warm-up and the timed
      // rounds: a fresh session would reuse the seeded request-id
      // sequence and the server's replay cache would answer from memory.
      std::vector<std::unique_ptr<SessionClient>> sessions(hi - lo);
      const Bytes body = payload_of(kPayload);
      for (std::size_t c = lo; c < hi; ++c) {
        auto conn = TcpTransport::connect("127.0.0.1", port, kSweepIo);
        if (!conn.is_ok()) {
          connect_failed.fetch_add(1);
          continue;
        }
        transports[c] = std::move(*conn);
        sessions[c - lo] = std::make_unique<SessionClient>(
            *transports[c], RetryPolicy{}, /*seed=*/c + 1);
        if (!sessions[c - lo]->call(MessageKind::kOther, body).is_ok()) {
          call_failed.fetch_add(1);
        }
      }
      {
        std::unique_lock lk(mu);
        ++warmed;
        cv.notify_all();
        cv.wait(lk, [&] { return go; });
      }
      auto& lat = latencies[t];
      lat.reserve((hi - lo) * calls_per_conn);
      // Round-robin across the slice so every connection stays live for
      // the whole tier rather than burning down one at a time.
      for (std::size_t round = 0; round < calls_per_conn; ++round) {
        for (std::size_t c = lo; c < hi; ++c) {
          if (sessions[c - lo] == nullptr) continue;
          const std::uint64_t start = now_ns();
          if (sessions[c - lo]->call(MessageKind::kOther, body).is_ok()) {
            lat.push_back(now_ns() - start);
          } else {
            call_failed.fetch_add(1);
          }
        }
      }
    });
  }

  {
    std::unique_lock lk(mu);
    cv.wait(lk, [&] { return warmed == threads_n; });
  }
  const std::size_t connected = conns - connect_failed.load();
  std::printf("CONNECTED %zu\n", connected);
  std::fflush(stdout);  // the parent samples its gauge on this line
  const double t0 = now_ms();
  {
    std::lock_guard lk(mu);
    go = true;
  }
  cv.notify_all();
  for (auto& th : threads) th.join();
  const double elapsed_ms = now_ms() - t0;
  for (auto& t : transports) {
    if (t != nullptr) (void)t->close();
  }

  std::vector<std::uint64_t> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  const std::uint64_t p50 = all.empty() ? 0 : all[all.size() / 2];
  const std::uint64_t p99 = all.empty() ? 0 : all[(all.size() * 99) / 100];
  const std::uint64_t failed = connect_failed.load() + call_failed.load();
  std::printf("RESULT conns=%zu calls=%zu failed=%llu elapsed_ms=%.3f "
              "p50_ns=%llu p99_ns=%llu\n",
              connected, all.size(), static_cast<unsigned long long>(failed),
              elapsed_ms, static_cast<unsigned long long>(p50),
              static_cast<unsigned long long>(p99));
  std::fflush(stdout);
  return failed == 0 ? 0 : 1;
}

// --- Parent process: one sweep tier ---------------------------------------

struct TierResult {
  std::size_t conns = 0;      // requested tier size
  std::uint64_t calls = 0;    // RPCs completed
  std::uint64_t failed = 0;   // connects + calls that did not succeed
  std::int64_t active_peak = 0;  // server's connection gauge at full tier
  double rps = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  bool ok = false;
};

/// Spawns the client driver for one tier and collects its report while
/// the server (owned by the caller) carries the connections.
TierResult run_tier(const char* exe, const NetServer& net, std::size_t conns,
                    std::size_t calls_per_conn) {
  TierResult r;
  r.conns = conns;
  char cmd[512];
  std::snprintf(cmd, sizeof cmd, "'%s' --client-driver %u %zu %zu", exe,
                static_cast<unsigned>(net.port()), conns, calls_per_conn);
  std::FILE* child = popen(cmd, "r");
  if (child == nullptr) {
    std::fprintf(stderr, "FAIL: could not spawn client driver\n");
    return r;
  }
  char line[512];
  double elapsed_ms = 0.0;
  while (std::fgets(line, sizeof line, child) != nullptr) {
    std::size_t connected = 0;
    if (std::sscanf(line, "CONNECTED %zu", &connected) == 1) {
      // Every client socket is up and none have been torn down yet: the
      // gauge now shows how many this one process actually holds.
      r.active_peak = net.active_connections();
      continue;
    }
    unsigned long long calls = 0, failed = 0, p50 = 0, p99 = 0;
    std::size_t got_conns = 0;
    if (std::sscanf(line,
                    "RESULT conns=%zu calls=%llu failed=%llu elapsed_ms=%lf "
                    "p50_ns=%llu p99_ns=%llu",
                    &got_conns, &calls, &failed, &elapsed_ms, &p50, &p99) == 6) {
      r.calls = calls;
      r.failed = failed;
      r.p50_ns = p50;
      r.p99_ns = p99;
      r.ok = true;
    }
  }
  const int status = pclose(child);
  if (status != 0) r.ok = r.ok && r.failed == 0;
  if (elapsed_ms > 0.0) r.rps = 1e3 * static_cast<double>(r.calls) / elapsed_ms;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  raise_fd_limit();
  if (argc >= 5 && std::strcmp(argv[1], "--client-driver") == 0) {
    return run_client_driver(static_cast<std::uint16_t>(std::atoi(argv[2])),
                             static_cast<std::size_t>(std::atol(argv[3])),
                             static_cast<std::size_t>(std::atol(argv[4])));
  }

  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const char* json_path = bench::arg_after(argc, argv, "--json");
  const std::size_t calls = smoke ? 300 : 5000;
  const std::size_t fanout = smoke ? 2 : 4;

  const FrameDispatcher dispatcher = echo_dispatcher();

  // --- In-process transport, one connection -------------------------------
  NetServer inproc_server(dispatcher);
  {
    ServerConfig config;  // no tcp_port: in-process only
    config.dispatch_workers = 2;
    if (Status s = inproc_server.start(config); !s.is_ok()) {
      std::fprintf(stderr, "start failed: %s\n", s.to_string().c_str());
      return 1;
    }
  }
  auto [inproc_client, inproc_end] = InProcTransport::make_pair();
  inproc_server.attach(std::move(inproc_end));
  const RunResult inproc = drive(*inproc_client, calls, kPayload, /*seed=*/1);
  (void)inproc_client->close();
  inproc_server.stop();

  // --- Loopback TCP server: single, fanout, lossy, and sweep tiers all
  // ride one event-loop server instance.
  NetServer tcp_server(dispatcher);
  {
    ServerConfig config;
    config.tcp_port = 0;  // ephemeral
    config.io_threads = 2;
    config.dispatch_workers = fanout;
    if (Status s = tcp_server.start(config); !s.is_ok()) {
      std::fprintf(stderr, "bind failed: %s\n", s.to_string().c_str());
      return 1;
    }
  }

  // --- Loopback TCP, one connection ---------------------------------------
  auto tcp_conn = TcpTransport::connect("127.0.0.1", tcp_server.port(), kIo);
  if (!tcp_conn.is_ok()) {
    std::fprintf(stderr, "connect failed: %s\n", tcp_conn.status().to_string().c_str());
    return 1;
  }
  const RunResult tcp = drive(**tcp_conn, calls, kPayload, /*seed=*/2);
  (void)(*tcp_conn)->close();

  // --- Loopback TCP, `fanout` concurrent connections ----------------------
  std::vector<std::unique_ptr<Transport>> conns;
  for (std::size_t c = 0; c < fanout; ++c) {
    auto conn = TcpTransport::connect("127.0.0.1", tcp_server.port(), kIo);
    if (!conn.is_ok()) {
      std::fprintf(stderr, "connect failed: %s\n", conn.status().to_string().c_str());
      return 1;
    }
    conns.push_back(std::move(*conn));
  }
  std::atomic<bool> all_ok{true};
  const double t0 = now_ms();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < fanout; ++c) {
    threads.emplace_back([&, c] {
      const RunResult r = drive(*conns[c], calls / fanout, kPayload, /*seed=*/10 + c);
      if (!r.ok) all_ok.store(false);
    });
  }
  for (auto& t : threads) t.join();
  const double concurrent_ms = now_ms() - t0;
  for (auto& conn : conns) (void)conn->close();

  // --- Seeded 20% loss over TCP: what retries cost ------------------------
  auto lossy_conn = TcpTransport::connect("127.0.0.1", tcp_server.port(), kIo);
  if (!lossy_conn.is_ok()) {
    std::fprintf(stderr, "connect failed: %s\n", lossy_conn.status().to_string().c_str());
    return 1;
  }
  FaultSpec faults;
  faults.drop = 0.2;
  faults.seed = 9;
  FaultInjector injector(faults);
  (*lossy_conn)->set_fault_injector(&injector);
  RetryPolicy lossy_policy;
  lossy_policy.max_attempts = 8;
  lossy_policy.attempt_timeout = std::chrono::milliseconds{200};
  lossy_policy.initial_backoff = std::chrono::milliseconds{1};
  lossy_policy.max_backoff = std::chrono::milliseconds{8};
  const std::size_t lossy_calls = calls / 10;
  const RunResult lossy =
      drive(**lossy_conn, lossy_calls, kPayload, /*seed=*/3, lossy_policy);
  (void)(*lossy_conn)->close();

  // --- Connection sweep: 100 / 1k / 10k concurrently connected clients ----
  // Same server instance; each tier's clients live in a child process so
  // the per-process fd cap never constrains the server's side.
  struct Tier {
    std::size_t conns;
    std::size_t calls_per_conn;
  };
  const std::vector<Tier> tiers = smoke
      ? std::vector<Tier>{{100, 5}, {1000, 2}, {10000, 1}}
      : std::vector<Tier>{{100, 50}, {1000, 10}, {10000, 2}};
  // popen goes through `sh -c`, where /proc/self/exe would name the
  // shell — resolve our own binary's path up front instead.
  char exe[256] = {0};
  if (::readlink("/proc/self/exe", exe, sizeof exe - 1) <= 0) {
    std::snprintf(exe, sizeof exe, "%s", argv[0]);
  }
  std::vector<TierResult> sweep;
  for (const Tier& tier : tiers) {
    sweep.push_back(run_tier(exe, tcp_server, tier.conns, tier.calls_per_conn));
    if (!sweep.back().ok) {
      std::fprintf(stderr, "FAIL: sweep tier %zu did not complete\n", tier.conns);
      return 1;
    }
  }
  tcp_server.stop();

  if (!inproc.ok || !tcp.ok || !all_ok.load() || !lossy.ok) {
    std::fprintf(stderr, "FAIL: at least one RPC did not complete\n");
    return 1;
  }

  const double inproc_rps = 1e3 * static_cast<double>(calls) / inproc.ms;
  const double tcp_rps = 1e3 * static_cast<double>(calls) / tcp.ms;
  const double concurrent_rps =
      1e3 * static_cast<double>(calls / fanout * fanout) / concurrent_ms;
  const double lossy_rps = 1e3 * static_cast<double>(lossy_calls) / lossy.ms;

  std::printf("NET THROUGHPUT: %zu-byte echo RPCs through the session stack%s\n\n",
              kPayload, smoke ? " (smoke)" : "");
  std::printf("  %-28s %10s %12s %10s\n", "configuration", "calls", "rps", "retries");
  std::printf("  %-28s %10zu %12.0f %10llu\n", "inproc, 1 connection", calls,
              inproc_rps, static_cast<unsigned long long>(inproc.retries));
  std::printf("  %-28s %10zu %12.0f %10llu\n", "tcp loopback, 1 connection", calls,
              tcp_rps, static_cast<unsigned long long>(tcp.retries));
  std::printf("  %-28s %10zu %12.0f %10s\n", "tcp loopback, concurrent",
              calls / fanout * fanout, concurrent_rps, "-");
  std::printf("  %-28s %10zu %12.0f %10llu\n", "tcp + 20% seeded loss",
              lossy_calls, lossy_rps, static_cast<unsigned long long>(lossy.retries));

  std::printf("\n  connection sweep (one server process, clients in a child):\n");
  std::printf("  %-14s %10s %10s %10s %12s %12s\n", "connections", "held", "calls",
              "failed", "p50 us", "p99 us");
  for (const TierResult& t : sweep) {
    std::printf("  %-14zu %10lld %10llu %10llu %12.1f %12.1f\n", t.conns,
                static_cast<long long>(t.active_peak),
                static_cast<unsigned long long>(t.calls),
                static_cast<unsigned long long>(t.failed),
                static_cast<double>(t.p50_ns) / 1e3,
                static_cast<double>(t.p99_ns) / 1e3);
  }

  const auto rtt = obs::Registry::global().histogram("smatch_net_rtt_ns")->snapshot();
  std::printf("\n  session RTT: p50 %.1f us, p99 %.1f us over %llu calls\n",
              static_cast<double>(rtt.p50()) / 1e3, static_cast<double>(rtt.p99()) / 1e3,
              static_cast<unsigned long long>(rtt.count));

  if (json_path != nullptr) {
    bench::JsonResult json("net_throughput");
    json.add("calls", static_cast<double>(calls));
    json.add("payload_bytes", static_cast<double>(kPayload));
    json.add("inproc_rps", inproc_rps);
    json.add("tcp_rps", tcp_rps);
    json.add("tcp_concurrent_rps", concurrent_rps);
    json.add("tcp_concurrent_connections", static_cast<double>(fanout));
    json.add("lossy_rps", lossy_rps);
    json.add("lossy_retries", static_cast<double>(lossy.retries));
    for (const TierResult& t : sweep) {
      const std::string prefix = "conns_" + std::to_string(t.conns);
      json.add(prefix + "_held", static_cast<double>(t.active_peak));
      json.add(prefix + "_rps", t.rps);
      json.add(prefix + "_failed", static_cast<double>(t.failed));
      json.add(prefix + "_p50_ns", static_cast<double>(t.p50_ns));
      json.add(prefix + "_p99_ns", static_cast<double>(t.p99_ns));
    }
    json.add_hist("session_rtt", rtt);
    if (!json.write(json_path)) {
      std::fprintf(stderr, "FAIL: could not write %s\n", json_path);
      return 1;
    }
    std::printf("  wrote %s\n", json_path);
  }
  return 0;
}
