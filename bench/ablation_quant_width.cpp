// Ablation: the fuzzy-keygen quantization width (DESIGN.md substitution
// #6 decouples it from theta — this bench shows why it is a real knob).
//
// On a community-structured population, sweeps quant_width and reports:
//   key groups      — how many distinct profile keys the server sees;
//   intra-community agreement — fraction of users deriving their
//                     community's majority key (drives match recall);
//   cross-community collisions — communities sharing one key (privacy:
//                     a colluding member exposes every collided group).
//
// Small widths fragment communities (recall drops); large widths merge
// unrelated communities (the PR-KK exposure set m grows). The default
// (8) sits in the regime where communities map 1:1 onto key groups.
//
// Run: ./build/bench/ablation_quant_width
#include <cstdio>
#include <map>
#include <set>

#include "common/bytes.hpp"
#include "core/keygen.hpp"
#include "crypto/drbg.hpp"

using namespace smatch;

int main() {
  Drbg rng(404);
  const std::size_t d = 6;
  const std::size_t num_users = 240;
  const std::size_t num_communities = 12;
  const std::uint32_t value_range = 64;
  const std::uint32_t jitter = 2;

  // Community-structured profiles.
  std::vector<Profile> centers(num_communities, Profile(d));
  for (auto& c : centers) {
    for (auto& v : c) v = static_cast<AttrValue>(rng.below(value_range));
  }
  std::vector<Profile> profiles;
  std::vector<std::size_t> community;
  for (std::size_t u = 0; u < num_users; ++u) {
    const std::size_t c = u % num_communities;
    Profile p = centers[c];
    for (auto& v : p) {
      const auto delta = static_cast<std::int64_t>(rng.below(2 * jitter + 1)) -
                         static_cast<std::int64_t>(jitter);
      const std::int64_t nv = std::max<std::int64_t>(
          0, std::min<std::int64_t>(value_range - 1, static_cast<std::int64_t>(v) + delta));
      v = static_cast<AttrValue>(nv);
    }
    profiles.push_back(std::move(p));
    community.push_back(c);
  }

  std::printf("ABLATION: quantization cell width of the fuzzy keygen\n");
  std::printf("(%zu users, %zu communities, jitter +/-%u, alphabet %u)\n\n", num_users,
              num_communities, jitter, value_range);
  std::printf("%-8s %-12s %-22s %-24s\n", "width", "key groups", "intra-agreement",
              "cross-community merges");

  for (std::uint32_t width : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    SchemeParams params;
    params.rs_threshold = 8;
    params.quant_width = width;
    const FuzzyKeyGen kg(params, d);

    std::vector<Bytes> materials;
    materials.reserve(num_users);
    for (const auto& p : profiles) materials.push_back(kg.key_material(p));

    // Distinct keys.
    std::set<Bytes> groups(materials.begin(), materials.end());

    // Majority-key agreement within communities.
    std::size_t agree = 0;
    for (std::size_t c = 0; c < num_communities; ++c) {
      std::map<Bytes, std::size_t> votes;
      std::size_t members = 0;
      for (std::size_t u = 0; u < num_users; ++u) {
        if (community[u] != c) continue;
        ++votes[materials[u]];
        ++members;
      }
      std::size_t best = 0;
      for (const auto& [key, n] : votes) best = std::max(best, n);
      agree += best;
      (void)members;
    }

    // Keys claimed by more than one community.
    std::map<Bytes, std::set<std::size_t>> owners;
    for (std::size_t u = 0; u < num_users; ++u) {
      owners[materials[u]].insert(community[u]);
    }
    std::size_t merges = 0;
    for (const auto& [key, cs] : owners) {
      if (cs.size() > 1) ++merges;
    }

    std::printf("%-8u %-12zu %-22.3f %-24zu\n", width, groups.size(),
                static_cast<double>(agree) / static_cast<double>(num_users), merges);
  }
  std::printf("\nToo narrow: communities shatter into many keys (recall falls).\n"
              "Too wide: unrelated communities share keys (PR-KK exposure grows).\n");
  return 0;
}
