// Figure 4(a): entropy of the three datasets after entropy increase and
// attribute chaining, versus plaintext size k (bits per attribute),
// compared with perfect entropy (the k-bit theoretical limit).
//
// Entropy accounting (per attribute, averaged over the d attributes):
//   mapped attribute entropy = -sum_j p_j lg(p_j / R_j)   (big-jump map)
//   chaining bonus           = lg(d!) / d                 (secret order)
// Values approach — but stay below — the perfect-entropy diagonal, faster
// for datasets with fewer/smaller-alphabet attributes (Infocom06,
// Sigcomm09) and slower at small k for Weibo (17 attributes, large
// alphabets), matching the paper's narrative.
//
// Run: ./build/bench/fig4a_entropy
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/entropy_map.hpp"
#include "datasets/dataset.hpp"

using namespace smatch;

namespace {

double lg_factorial(std::size_t n) {
  double v = 0.0;
  for (std::size_t i = 2; i <= n; ++i) v += std::log2(static_cast<double>(i));
  return v;
}

// Average per-attribute entropy of the chained message at plaintext size k.
double chained_entropy(const DatasetSpec& spec, std::size_t k) {
  const std::size_t d = spec.attributes.size();
  double total = 0.0;
  for (const auto& attr : spec.attributes) {
    total += EntropyMapper(attr.probs, k).mapped_entropy();
  }
  total += lg_factorial(d);  // the keyed random order of the chain
  return total / static_cast<double>(d);
}

// Entropy of the raw (unmapped) chained attributes, for the "original
// data" reference the paper mentions.
double raw_entropy(const DatasetSpec& spec) {
  double total = 0.0;
  for (const auto& attr : spec.attributes) total += attr.entropy();
  return total / static_cast<double>(spec.attributes.size());
}

}  // namespace

int main() {
  const DatasetSpec specs[] = {infocom06_spec(), sigcomm09_spec(), weibo_spec(50000)};

  std::printf("FIG 4(a): entropy (bits/attribute) after entropy increase + chaining\n\n");
  std::printf("%-8s %-12s %-12s %-12s %-10s\n", "k(bits)", "Infocom06", "Sigcomm09",
              "Weibo", "Perfect");
  for (std::size_t k : {32u, 64u, 128u, 256u, 512u, 1024u, 2048u}) {
    std::printf("%-8zu", k);
    for (const auto& spec : specs) {
      std::printf(" %-12.1f", chained_entropy(spec, k));
    }
    std::printf(" %-10zu\n", k);
  }
  std::printf("\nraw per-attribute entropy (before the technique): "
              "Infocom06 %.2f, Sigcomm09 %.2f, Weibo %.2f bits\n",
              raw_entropy(specs[0]), raw_entropy(specs[1]), raw_entropy(specs[2]));
  return 0;
}
