// Table I: feature comparison of related schemes.
//
// The S-MATCH and homoPM (ZZS12) columns are derived from the actual
// capabilities of the code in this repository (compile-time checks where
// possible); the other columns restate the paper's literature table.
//
// Run: ./build/bench/table1_features
#include <cstdio>
#include <type_traits>

#include "baseline/homopm.hpp"
#include "core/smatch.hpp"

using namespace smatch;

namespace {

struct SchemeRow {
  const char* name;
  const char* category;      // SE / HE
  const char* security;      // M/HBC or HBC
  bool verification;
  bool fine_grained;
  bool fuzzy;
};

constexpr char check(bool b) { return b ? 'Y' : '-'; }

}  // namespace

int main() {
  // Capabilities backed by this implementation:
  // - verification: Client::verify_entry exists and the malicious-server
  //   integration tests pass.
  static_assert(std::is_member_function_pointer_v<decltype(&Client::verify_entry)>);
  // - fine-grained: matching ranks by attribute-value order (Definition 4),
  //   not mere set intersection.
  static_assert(std::is_member_function_pointer_v<decltype(&MatchServer::match)>);
  // - fuzzy: top-k results around the querier's position.
  const bool smatch_fuzzy = true;
  // homoPM ranks exact squared distances (fine-grained + fuzzy top-k) but
  // has no verification path at all:
  const bool homopm_verifiable = false;

  const SchemeRow rows[] = {
      {"S-MATCH",      "SE", "M/HBC", true,              true,  smatch_fuzzy},
      {"ZLL13 [14]",   "SE", "M/HBC", true,              false, false},
      {"ZZS12 [8]",    "HE", "HBC",   homopm_verifiable, true,  true},
      {"LCY11 [9]",    "HE", "HBC",   false,             false, false},
      {"NCD13 [15]",   "HE", "HBC",   false,             false, false},
      {"LGD12 [12]",   "HE", "HBC",   false,             true,  false},
  };

  std::printf("TABLE I: comparison of related works (paper Table I)\n");
  std::printf("%-14s %-9s %-9s %-13s %-18s %-11s\n", "Scheme", "Category",
              "Security", "Verification", "Fine-grained", "Fuzzy");
  for (const auto& r : rows) {
    std::printf("%-14s %-9s %-9s %-13c %-18c %-11c\n", r.name, r.category,
                r.security, check(r.verification), check(r.fine_grained),
                check(r.fuzzy));
  }
  std::printf("\n(S-MATCH and ZZS12 columns reflect this repository's "
              "implementations; others restate the paper.)\n");
  return 0;
}
