// Figures 4(c,d,e): client-side computation cost versus plaintext size
// (bits per attribute), for Infocom06 / Sigcomm09 / Weibo.
//
// Series, as in the paper:
//   PM     — S-MATCH profile matching client work: fuzzy key generation
//            (RSD + RSA-OPRF) + entropy increase + chaining + OPE.
//   PM+V   — PM plus the verification token (Auth).
//   homoPM — the Paillier baseline's client work: d+1 encryptions under a
//            modulus sized for k-bit plaintexts (2k + 96 bits).
//
// Expected shape: PM nearly flat at small k (keygen-dominated), growing
// with k; homoPM above PM by >= an order of magnitude for k >= 256.
//
// Run: ./build/bench/fig4cde_client_cost
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "baseline/homopm.hpp"
#include "core/smatch.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"

using namespace smatch;

namespace {

struct DatasetInfo {
  const char* name;
  DatasetSpec spec;
};

const std::vector<DatasetInfo>& datasets() {
  static const std::vector<DatasetInfo> d = {
      {"Infocom06", infocom06_spec()},
      {"Sigcomm09", sigcomm09_spec()},
      {"Weibo", weibo_spec(100)},
  };
  return d;
}

// Deployment-wide fixtures shared across benchmark iterations.
const RsaOprfServer& oprf_server() {
  static const RsaOprfServer server = [] {
    Drbg rng(1);
    return RsaOprfServer(RsaKeyPair::generate(rng, 1024));
  }();
  return server;
}

std::shared_ptr<const ModpGroup> auth_group() {
  static const auto group = std::make_shared<const ModpGroup>(ModpGroup::rfc3526_2048());
  return group;
}

Profile first_profile(const DatasetSpec& spec) {
  Drbg rng(7);
  return Dataset::generate(spec, rng).profile(0);
}

std::unique_ptr<Client> make_client(const DatasetInfo& info, std::size_t k_bits) {
  SchemeParams params;
  params.attribute_bits = k_bits;
  params.rs_threshold = 8;
  return std::make_unique<Client>(
      Client::create(1, first_profile(info.spec),
                     make_client_config(info.spec, params, auth_group()))
          .value());
}

// PM: Keygen + InitData + Enc.
void bench_pm(benchmark::State& state, const DatasetInfo& info, bool with_verification) {
  auto client = make_client(info, static_cast<std::size_t>(state.range(0)));
  Drbg rng(42);
  for (auto _ : state) {
    client->generate_key(oprf_server(), rng);
    const auto mapped = client->init_data(rng);
    benchmark::DoNotOptimize(client->encrypt_chain(mapped));
    if (with_verification) {
      benchmark::DoNotOptimize(client->make_auth_token(rng));
    }
  }
  state.counters["plaintext_bits"] = static_cast<double>(state.range(0));
}

// homoPM client: d+1 Paillier encryptions (keys cached per size: key
// generation is the offline cost the paper excludes from the client
// series).
const PaillierKeyPair& paillier_keys(std::size_t modulus_bits) {
  static std::map<std::size_t, PaillierKeyPair> cache;
  auto it = cache.find(modulus_bits);
  if (it == cache.end()) {
    Drbg rng(1000 + modulus_bits);
    it = cache.emplace(modulus_bits, PaillierKeyPair::generate(rng, modulus_bits)).first;
  }
  return it->second;
}

void bench_homopm(benchmark::State& state, const DatasetInfo& info) {
  HomoPmParams params;
  params.plaintext_bits = static_cast<std::size_t>(state.range(0));
  HomoPmQuerier querier(first_profile(info.spec), params,
                        paillier_keys(params.modulus_bits()));
  Drbg rng(43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(querier.make_query(rng));
  }
  state.counters["plaintext_bits"] = static_cast<double>(state.range(0));
}

void register_all() {
  for (const auto& info : datasets()) {
    for (std::int64_t k : {64, 128, 256, 512, 1024, 2048}) {
      benchmark::RegisterBenchmark(
          (std::string("fig4cde/") + info.name + "/PM").c_str(),
          [&info](benchmark::State& s) { bench_pm(s, info, false); })
          ->Arg(k)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(k >= 1024 ? 1 : 3);
      benchmark::RegisterBenchmark(
          (std::string("fig4cde/") + info.name + "/PM+V").c_str(),
          [&info](benchmark::State& s) { bench_pm(s, info, true); })
          ->Arg(k)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(k >= 1024 ? 1 : 3);
      benchmark::RegisterBenchmark(
          (std::string("fig4cde/") + info.name + "/homoPM").c_str(),
          [&info](benchmark::State& s) { bench_homopm(s, info); })
          ->Arg(k)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Warm the shared fixtures so their one-time key generation never lands
  // inside a timed region.
  (void)oprf_server();
  (void)auth_group();
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
