// Figure 1: information leakage of OPE under an ordered known-plaintext
// attack. The untrusted server knows (plaintext, ciphertext) pairs
// (3, Enc(3)) and (7, Enc(7)) and prunes the stored ciphertext table to
// the candidates for Enc(5). Reproduces the paper's search-space sizes
// (3 for the sparse table, 39 for the dense one) and extends the
// experiment with a density sweep on a real OPE instance.
//
// Run: ./build/bench/fig1_leakage
#include <algorithm>
#include <cstdio>
#include <vector>

#include "crypto/drbg.hpp"
#include "ope/ope.hpp"

using namespace smatch;

namespace {

std::size_t prune(const std::vector<BigInt>& table, const BigInt& lo, const BigInt& hi) {
  return static_cast<std::size_t>(std::count_if(
      table.begin(), table.end(), [&](const BigInt& c) { return c > lo && c < hi; }));
}

}  // namespace

int main() {
  std::printf("FIG 1: OPE search-space pruning with known pairs (30,3) and (70,7)\n\n");

  // Paper's illustrative tables (ciphertext values as printed in Fig. 1).
  {
    std::vector<BigInt> sparse;
    for (std::uint64_t c : {10u, 30u, 42u, 55u, 61u, 70u, 88u}) sparse.emplace_back(c);
    std::vector<BigInt> dense;
    for (std::uint64_t c = 1; c <= 100; ++c) dense.emplace_back(c);
    std::printf("paper Fig 1(a) sparse table: search space N = %zu (paper: 3)\n",
                prune(sparse, BigInt{30}, BigInt{70}));
    std::printf("paper Fig 1(b) dense table : search space N = %zu (paper: 39)\n\n",
                prune(dense, BigInt{30}, BigInt{70}));
  }

  // The same attack against a real OPE instance: encrypt a table of
  // `population` distinct plaintexts from an 8-bit message space; the
  // attacker knows Enc(64) and Enc(192) and targets Enc(128).
  std::printf("attack on a real OPE instance (8-bit message space):\n");
  std::printf("%-12s %-14s %-16s\n", "population", "search space", "space/population");
  Drbg rng(1);
  const Ope ope(rng.bytes(32), 8, 24);
  const BigInt lo_ct = ope.encrypt(BigInt{64});
  const BigInt hi_ct = ope.encrypt(BigInt{192});
  for (std::size_t population : {8u, 16u, 32u, 64u, 128u, 256u}) {
    // Uniformly spaced plaintexts => the stored table of a population of
    // that size.
    std::vector<BigInt> table;
    for (std::size_t i = 0; i < population; ++i) {
      table.push_back(ope.encrypt(BigInt{static_cast<std::uint64_t>(i * 256 / population)}));
    }
    const std::size_t space = prune(table, lo_ct, hi_ct);
    std::printf("%-12zu %-14zu %.3f\n", population, space,
                static_cast<double>(space) / static_cast<double>(population));
  }
  std::printf("\nTakeaway: small populations (low-entropy attributes) leave the\n"
              "target ciphertext with only a handful of candidates — why raw\n"
              "social attributes must not be OPE-encrypted directly (Sec. IV).\n");
  return 0;
}
