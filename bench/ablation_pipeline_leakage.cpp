// Ablation: how much does each stage of the S-MATCH pipeline contribute
// to killing frequency-analysis leakage?
//
//   stage 0: OPE directly on raw attribute values (the naive scheme of
//            Section IV — deterministic, landmark fully visible)
//   stage 1: + entropy increase (big-jump mapping)
//   stage 2: + attribute chaining in a keyed secret order (full S-MATCH)
//
// Metric: over a population, the frequency of the most common ciphertext
// (what a landmark attack keys on) and the number of distinct
// ciphertexts. Also reports, for stage 2, whether the *position* of the
// landmark attribute inside the chain is recoverable without the key
// (it is not: the order is keyed).
//
// Run: ./build/bench/ablation_pipeline_leakage
#include <cstdio>
#include <map>
#include <vector>

#include "core/chain.hpp"
#include "core/entropy_map.hpp"
#include "crypto/drbg.hpp"
#include "ope/ope.hpp"

using namespace smatch;

namespace {

struct Leakage {
  double top_freq;
  std::size_t distinct;
};

Leakage measure(const std::vector<BigInt>& ciphertexts) {
  std::map<std::string, std::size_t> freq;
  for (const auto& c : ciphertexts) ++freq[c.to_hex_string()];
  std::size_t top = 0;
  for (const auto& [h, n] : freq) top = std::max(top, n);
  return {static_cast<double>(top) / static_cast<double>(ciphertexts.size()),
          freq.size()};
}

}  // namespace

int main() {
  Drbg rng(9);
  const std::size_t population = 1500;
  // Two attributes: a 0.8-landmark and a near-uniform one.
  const std::vector<std::vector<double>> probs = {
      {0.80, 0.08, 0.06, 0.06},
      {0.25, 0.25, 0.25, 0.25},
  };

  // Draw the raw population.
  std::vector<std::vector<AttrValue>> users(population, std::vector<AttrValue>(2));
  for (auto& u : users) {
    for (std::size_t a = 0; a < 2; ++a) {
      double x = static_cast<double>(rng.u64() >> 11) * 0x1p-53;
      AttrValue v = 0;
      for (std::size_t j = 0; j < probs[a].size(); ++j) {
        x -= probs[a][j];
        if (x <= 0.0) { v = static_cast<AttrValue>(j); break; }
        v = static_cast<AttrValue>(j);
      }
      u[a] = v;
    }
  }

  std::printf("ABLATION: leakage after each pipeline stage (%zu users,\n"
              "landmark attribute with p0 = 0.80)\n\n", population);
  std::printf("%-34s %-14s %-12s\n", "stage", "top-ct freq", "distinct ct");

  const Bytes ope_key = rng.bytes(32);

  // Stage 0: raw OPE on the landmark attribute.
  {
    const Ope ope(ope_key, 8, 24);
    std::vector<BigInt> cts;
    for (const auto& u : users) cts.push_back(ope.encrypt(BigInt{u[0]}));
    const Leakage l = measure(cts);
    std::printf("%-34s %-14.3f %-12zu   <- landmark exposed\n",
                "0: raw OPE", l.top_freq, l.distinct);
  }

  // Stage 1: entropy increase, then OPE (per attribute).
  const EntropyMapper mapper0(probs[0], 32);
  const EntropyMapper mapper1(probs[1], 32);
  {
    const Ope ope(ope_key, 32, 64);
    std::vector<BigInt> cts;
    for (const auto& u : users) cts.push_back(ope.encrypt(mapper0.map(u[0], rng)));
    const Leakage l = measure(cts);
    std::printf("%-34s %-14.4f %-12zu\n", "1: + entropy increase", l.top_freq,
                l.distinct);
  }

  // Stage 2: entropy increase + keyed chaining, then OPE on the chain.
  {
    const AttributeChain chain(2, 32);
    const Ope ope(ope_key, 64, 128);
    std::vector<BigInt> cts;
    for (const auto& u : users) {
      cts.push_back(ope.encrypt(
          chain.assemble({mapper0.map(u[0], rng), mapper1.map(u[1], rng)}, ope_key)));
    }
    const Leakage l = measure(cts);
    std::printf("%-34s %-14.4f %-12zu\n", "2: + chaining (full S-MATCH)",
                l.top_freq, l.distinct);

    // Positional leakage: does the chain reveal *where* the landmark
    // attribute sits? Compare the keyed order against the natural order.
    const auto perm = chain.permutation(ope_key);
    std::printf("\nchain order under this key: attribute %zu first, %zu second\n",
                perm[0], perm[1]);
    const auto perm_other = chain.permutation(rng.bytes(32));
    std::printf("chain order under another key: attribute %zu first "
                "(keyed => position not publicly recoverable)\n",
                perm_other[0]);
  }
  return 0;
}
