// Mixed-scenario serving benchmark: replays the six standard workload
// scenarios (src/scenario/scenarios.hpp) over the real NetServer stack
// and reports per-scenario throughput, tail latency, shed/retry counts,
// and the frequency-analysis attacker's measured advantage.
//
// Run:  ./build/bench/scenario_throughput                  (full size)
//       ./build/bench/scenario_throughput --smoke          (small; ctest)
//       --seed <n>   reseed every workload (digests/advantage move with it)
//       --users <n>  population scale knob
//       --json <path> write BENCH_scenarios.json — scripts/ci.sh gates on
//       per-scenario _rps/_p99_ns/_failed/_attacker_advantage keys, the
//       lossy scenario finishing with zero failures, and the advantage
//       staying under the frequency-analysis threshold.
//
// --admin-demo <prefix>: one evicting_store-style run with delay faults
// and a low slow-request threshold, serving the admin plane. After the
// enroll phase it writes <prefix>.port and holds until <prefix>.go
// appears (the scripts/ci.sh curl window), then self-validates trace
// stitching and exemplar capture and prints greppable gate lines.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <string_view>

#include "bench_json.hpp"
#include "obs/exemplar.hpp"
#include "obs/trace.hpp"
#include "scenario/scenarios.hpp"

using namespace smatch;
using namespace smatch::scenario;

namespace {

namespace fs = std::filesystem;

/// Removes the scenario store root on every exit path (satisfies the
/// no-leaked-smatch_store_* rule scripts/ci.sh enforces).
struct DirGuard {
  fs::path dir;
  ~DirGuard() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
};

/// The CI admin-demo: a store-backed scenario with injected delays and a
/// slow-request threshold low enough that fault-delayed calls become
/// exemplars, probed externally through the <prefix>.port/.go rendezvous.
int run_admin_demo(const char* prefix, std::uint64_t seed, std::size_t scale) {
#if !SMATCH_OBS_ENABLED
  (void)prefix;
  (void)seed;
  (void)scale;
  std::printf("admin_enabled=0\n");
  return 0;
#else
  const DirGuard store_root{
      fs::temp_directory_path() /
      ("smatch_store_admin_demo_" + std::to_string(::getpid()))};

  ScenarioSpec spec;
  bool found = false;
  for (ScenarioSpec& s :
       standard_scenarios(scale, seed, store_root.dir.string())) {
    if (s.name == "evicting_store") {
      spec = std::move(s);
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "admin-demo: no evicting_store scenario\n");
    return 1;
  }
  spec.admin = true;
  spec.admin_sync_prefix = prefix;
  spec.slow_request_threshold_ns = 1000000;  // 1ms: delayed calls qualify
  spec.faulty = true;
  spec.faults.delay = 0.3;
  spec.faults.delay_ms = std::chrono::milliseconds{2};
  spec.faults.seed = seed + 99;
  spec.policy.max_attempts = 10;
  spec.policy.attempt_timeout = std::chrono::milliseconds{500};
  spec.policy.initial_backoff = std::chrono::milliseconds{2};
  spec.policy.max_backoff = std::chrono::milliseconds{20};

  smatch::obs::TraceBuffer::instance().begin(/*capacity=*/1u << 15);
  smatch::obs::ExemplarRecorder::instance().clear();
  StatusOr<ScenarioResult> run = run_scenario(spec);
  smatch::obs::TraceBuffer::instance().end();
  if (!run.is_ok()) {
    std::fprintf(stderr, "admin-demo: %s\n", run.status().message().c_str());
    return 1;
  }

  // Trace stitching: server-side net.handle spans must reuse the trace
  // ids the client-side net.call spans minted.
  std::set<std::uint64_t> calls;
  std::set<std::uint64_t> handles;
  for (const smatch::obs::TraceEvent& ev :
       smatch::obs::TraceBuffer::instance().events()) {
    if (ev.trace_id == 0) continue;
    if (std::string_view(ev.name) == "net.call") calls.insert(ev.trace_id);
    if (std::string_view(ev.name) == "net.handle") handles.insert(ev.trace_id);
  }
  std::size_t stitched = 0;
  for (const std::uint64_t id : handles) stitched += calls.count(id);
  const bool trace_stitched = stitched > 0 && stitched == handles.size();

  const std::size_t exemplars = smatch::obs::ExemplarRecorder::instance().occupancy();
  std::printf("admin_enabled=1\n");
  std::printf("admin_scrapes=%llu\n",
              static_cast<unsigned long long>(run->admin_scrapes));
  std::printf("admin_scrape_lint=%s\n", run->admin_scrape_clean ? "ok" : "FAIL");
  std::printf("slow_exemplars=%zu\n", exemplars);
  std::printf("trace_stitched=%d\n", trace_stitched ? 1 : 0);
  std::printf("failed_requests=%llu\n",
              static_cast<unsigned long long>(run->failed_requests));
  return (run->admin_scrape_clean && exemplars >= 1 && trace_stitched &&
          run->failed_requests == 0)
             ? 0
             : 1;
#endif  // SMATCH_OBS_ENABLED
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const char* json_path = bench::arg_after(argc, argv, "--json");
  const char* seed_arg = bench::arg_after(argc, argv, "--seed");
  const char* users_arg = bench::arg_after(argc, argv, "--users");
  const std::uint64_t seed =
      seed_arg != nullptr ? std::strtoull(seed_arg, nullptr, 10) : 42;
  const std::size_t scale =
      users_arg != nullptr ? std::strtoul(users_arg, nullptr, 10)
                           : (smoke ? 48 : 256);
  if (const char* demo_prefix = bench::arg_after(argc, argv, "--admin-demo");
      demo_prefix != nullptr) {
    return run_admin_demo(demo_prefix, seed, std::min<std::size_t>(scale, 48));
  }

  const DirGuard store_root{
      fs::temp_directory_path() /
      ("smatch_store_scenario_" + std::to_string(::getpid()))};

  bench::JsonResult json("scenario_throughput");
  json.add("seed", static_cast<double>(seed));
  json.add("scale_users", static_cast<double>(scale));

  std::printf("%-16s %8s %9s %8s %7s %8s %6s %10s %10s\n", "scenario", "ops",
              "rps", "p99_us", "failed", "retries", "shed", "advantage",
              "raw_adv");
  bool ok = true;
  std::uint64_t combined_digest = 1469598103934665603ull;
  for (ScenarioSpec spec :
       standard_scenarios(scale, seed, store_root.dir.string())) {
    // Every sweep run serves the admin plane and scrapes itself between
    // phases; the per-phase quantiles land in the JSON below. Under
    // -DSMATCH_OBS=OFF there is no admin surface and no phase samples.
    spec.admin = true;
    StatusOr<ScenarioResult> run = run_scenario(spec);
    if (!run.is_ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   run.status().message().c_str());
      ok = false;
      continue;
    }
    const ScenarioResult& r = *run;
    std::printf("%-16s %8llu %9.0f %8.0f %7llu %8llu %6llu %10.4f %10.4f\n",
                r.name.c_str(), static_cast<unsigned long long>(r.ops),
                r.throughput_rps, static_cast<double>(r.p99_ns) / 1e3,
                static_cast<unsigned long long>(r.failed_requests),
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.shed_requests),
                r.adversary.advantage, r.adversary.raw_ope_advantage);

    json.add(r.name + "_rps", r.throughput_rps);
    json.add(r.name + "_ops", static_cast<double>(r.ops));
    json.add(r.name + "_p50_ns", static_cast<double>(r.p50_ns));
    json.add(r.name + "_p99_ns", static_cast<double>(r.p99_ns));
    json.add(r.name + "_failed", static_cast<double>(r.failed_requests));
    json.add(r.name + "_retries", static_cast<double>(r.retries));
    json.add(r.name + "_shed", static_cast<double>(r.shed_requests));
    json.add(r.name + "_enrolled", static_cast<double>(r.enrolled));
    json.add(r.name + "_churned", static_cast<double>(r.churned));
    json.add(r.name + "_queries_done", static_cast<double>(r.queries_done));
    json.add(r.name + "_entries_verified",
             static_cast<double>(r.entries_verified));
    json.add(r.name + "_attacker_advantage", r.adversary.advantage);
    json.add(r.name + "_attacker_advantage_raw", r.adversary.raw_ope_advantage);
    if (spec.store_budget_bytes > 0) {
      json.add(r.name + "_store_evictions",
               static_cast<double>(r.store_evictions));
      json.add(r.name + "_store_page_ins",
               static_cast<double>(r.store_page_ins));
    }
    if (spec.store_maintenance) {
      json.add(r.name + "_store_maintenance_cycles",
               static_cast<double>(r.store_maintenance_cycles));
      json.add(r.name + "_store_segments_gced",
               static_cast<double>(r.store_segments_gced));
    }
    for (const PhaseSample& ph : r.phases) {
      json.add(r.name + "_" + ph.phase + "_p50_ns",
               static_cast<double>(ph.p50_ns));
      json.add(r.name + "_" + ph.phase + "_p99_ns",
               static_cast<double>(ph.p99_ns));
      json.add(r.name + "_" + ph.phase + "_ops", static_cast<double>(ph.ops));
    }
#if SMATCH_OBS_ENABLED
    // The scrapes themselves are a gate: every mid-run /metrics fetch
    // must lint clean and parse back as a histogram.
    if (!r.admin_scrape_clean || r.phases.empty()) {
      std::fprintf(stderr, "%s: admin scrape failed lint/parse\n",
                   r.name.c_str());
      ok = false;
    }
#endif  // SMATCH_OBS_ENABLED
    // Fold per-scenario digests FNV-style: one byte-reproducibility
    // fingerprint for the whole sweep.
    combined_digest = (combined_digest ^ r.workload_digest) * 1099511628211ull;

    if (r.failed_requests != 0) {
      std::fprintf(stderr, "%s: %llu failed requests\n", r.name.c_str(),
                   static_cast<unsigned long long>(r.failed_requests));
      ok = false;
    }
  }
  char digest_buf[32];
  std::snprintf(digest_buf, sizeof digest_buf, "%016llx",
                static_cast<unsigned long long>(combined_digest));
  json.add("workload_digest", std::string(digest_buf));

  if (json_path != nullptr && !json.write(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path);
    return 1;
  }
  return ok ? 0 : 1;
}
