// Figures 5(d,e,f): communication cost (bits) of S-MATCH per user versus
// entropy (plaintext size k, bits per attribute), for the three datasets.
//
// Setup mirrors the paper: user ID 32 bits, k = 5 query results, N = M
// (ciphertext width = chain width), PM = profile-matching upload
// (ID + h(K_up) + OPE chain), PM+V additionally ships the verification
// token ciph_u (AES-CTR IV + 2048-bit group element + SHA-256 tag).
// Message sizes come from the real wire serialization in core/messages.
//
// Every measured wire travels through the Transport API
// (net/inproc_transport.hpp) backed by the paper's 802.11n SimChannel
// link model, so the per-kind attribution below is the same accounting a
// deployed transport reports — TransportStats counts frame payload
// (protocol) bytes, which is why the numbers match the historical
// SimChannel-only figures bit for bit.
//
// Run: ./build/bench/fig5def_comm_cost
#include <cstdio>
#include <memory>

#include "core/auth.hpp"
#include "core/messages.hpp"
#include "datasets/dataset.hpp"
#include "net/channel.hpp"
#include "net/inproc_transport.hpp"

using namespace smatch;

namespace {

constexpr std::chrono::milliseconds kIoTimeout{1000};

struct Costs {
  std::size_t pm_bits;
  std::size_t pmv_bits;
  std::size_t result_bits;
};

// Every measured wire passes through the transport pair (and the
// SimChannel behind it), so the per-kind message/byte attribution below
// comes from the same accounting the integration tests exercise, not a
// parallel tally. The receiving end drains each frame — byte parity
// between sender stats, receiver stats, and the link model is part of
// what this bench demonstrates.
Costs measure(std::size_t d, std::size_t k, std::size_t auth_token_size,
              std::size_t top_k, Transport& phone, Transport& server) {
  UploadMessage up;
  up.user_id = 0x01020304;                 // l_id = 32 bits
  up.key_index = Bytes(32, 0);             // l_h = 256 bits
  up.chain_cipher = BigInt{};              // magnitude irrelevant: fixed width
  up.chain_cipher_bits = static_cast<std::uint32_t>(d * k);  // N = M
  Costs c{};
  Bytes wire = up.serialize();
  (void)phone.send(MessageKind::kUpload, wire, kIoTimeout);
  (void)server.recv(kIoTimeout);
  c.pm_bits = wire.size() * 8;
  up.auth_token = Bytes(auth_token_size, 0);
  wire = up.serialize();
  (void)phone.send(MessageKind::kUpload, wire, kIoTimeout);
  (void)server.recv(kIoTimeout);
  c.pmv_bits = wire.size() * 8;

  QueryResult r;
  r.entries.assign(top_k, MatchEntry{1, Bytes(auth_token_size, 0)});
  wire = r.serialize();
  (void)server.send(MessageKind::kResult, wire, kIoTimeout);
  (void)phone.recv(kIoTimeout);
  c.result_bits = wire.size() * 8;
  return c;
}

}  // namespace

int main() {
  const AuthScheme auth(std::make_shared<const ModpGroup>(ModpGroup::rfc3526_2048()));
  const std::size_t token = auth.token_size();

  struct Row {
    const char* name;
    std::size_t d;
  };
  const Row rows[] = {{"Infocom06 (Fig 5d)", infocom06_spec().attributes.size()},
                      {"Sigcomm09 (Fig 5e)", sigcomm09_spec().attributes.size()},
                      {"Weibo (Fig 5f)", weibo_spec(1).attributes.size()}};

  std::printf("FIG 5(d,e,f): upload communication cost per user (bits), top-5 query\n");
  std::printf("verification token: %zu bytes (IV + 2048-bit group element + tag)\n\n",
              token);
  SimChannel channel;  // paper's 802.11n link model
  auto [phone_end, server_end] = InProcTransport::make_pair(&channel);
  for (const auto& row : rows) {
    std::printf("%s — d = %zu attributes\n", row.name, row.d);
    std::printf("  %-14s %-12s %-12s %-14s\n", "entropy(bits)", "PM", "PM+V",
                "query result");
    for (std::size_t k : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
      const Costs c = measure(row.d, k, token, 5, *phone_end, *server_end);
      std::printf("  %-14zu %-12zu %-12zu %-14zu\n", k, c.pm_bits, c.pmv_bits,
                  c.result_bits);
    }
    std::printf("\n");
  }

  // Per-kind channel attribution across everything measured above:
  // message counts alongside bytes, so fixed per-message overheads stay
  // distinguishable from payload growth.
  std::printf("SimChannel traffic by message kind (all rows, both directions):\n");
  std::printf("  %-8s %10s %12s %16s\n", "kind", "messages", "bytes",
              "sim p50 latency");
  for (std::size_t k = 0; k < kNumMessageKinds; ++k) {
    const auto kind = static_cast<MessageKind>(k);
    if (channel.messages_of(kind) == 0) continue;
    std::printf("  %-8s %10llu %12llu %13.3f ms\n",
                std::string(to_string(kind)).c_str(),
                static_cast<unsigned long long>(channel.messages_of(kind)),
                static_cast<unsigned long long>(channel.bytes_of(kind)),
                static_cast<double>(channel.latency_of(kind).p50()) / 1e6);
  }
  std::printf("  uplink %llu msgs / %llu bytes, downlink %llu msgs / %llu bytes\n",
              static_cast<unsigned long long>(channel.uplink().messages),
              static_cast<unsigned long long>(channel.uplink().bytes),
              static_cast<unsigned long long>(channel.downlink().messages),
              static_cast<unsigned long long>(channel.downlink().bytes));

  // Byte parity across the layers: what the phone transport sent per
  // kind must equal what the link model recorded and what the server
  // transport received.
  const TransportStats phone_stats = phone_end->stats();
  const TransportStats server_stats = server_end->stats();
  const bool upload_parity =
      phone_stats.sent_of(MessageKind::kUpload) == channel.bytes_of(MessageKind::kUpload) &&
      server_stats.received_of(MessageKind::kUpload) ==
          channel.bytes_of(MessageKind::kUpload);
  const bool result_parity =
      server_stats.sent_of(MessageKind::kResult) == channel.bytes_of(MessageKind::kResult) &&
      phone_stats.received_of(MessageKind::kResult) ==
          channel.bytes_of(MessageKind::kResult);
  std::printf("  transport/link byte parity: upload %s, result %s\n\n",
              upload_parity ? "OK" : "MISMATCH", result_parity ? "OK" : "MISMATCH");

  std::printf("Shape check vs paper: linear growth in k, constant PM+V offset\n"
              "(the token), Weibo highest (more attributes). No homomorphic\n"
              "ciphertext expansion: at k=2048 a homoPM query ships d+1\n"
              "Paillier ciphertexts of 2*(2k+96) bits each (~%zu bits for d=6).\n",
              static_cast<std::size_t>((6 + 1) * 2 * (2 * 2048 + 96)));
  return 0;
}
