// Ablation: system-wide communication scaling of the Table I scheme
// families — the quantitative version of the paper's Section II
// criticisms.
//
//   S-MATCH   : N uploads + N top-5 queries            (O(N))
//   ZLL13-like: N(N-1)/2 two-party sessions             (O(N^2))
//   PSI-like  : N(N-1)/2 set exchanges                  (O(N^2), element
//               size = one group element per attribute)
//   homoPM    : N queries, each d+1 Paillier ciphertexts
//               + N-1 encrypted distances back          (O(N^2) online)
//
// Run: ./build/bench/ablation_related_comm
#include <cstdio>
#include <memory>

#include "baseline/homopm.hpp"
#include "baseline/pairwise_match.hpp"
#include "baseline/psi_match.hpp"
#include "core/auth.hpp"
#include "core/messages.hpp"
#include "crypto/drbg.hpp"

using namespace smatch;

int main() {
  Drbg rng(12);
  const std::size_t d = 6;            // attributes
  const std::size_t k = 64;           // bits per attribute
  auto group = std::make_shared<const ModpGroup>(ModpGroup::rfc3526_2048());

  // Per-unit costs from the real message layouts.
  const AuthScheme auth(group);
  UploadMessage up;
  up.user_id = 1;
  up.key_index = Bytes(32, 0);
  up.chain_cipher_bits = static_cast<std::uint32_t>(d * k);
  up.auth_token = Bytes(auth.token_size(), 0);
  const std::size_t smatch_upload = up.serialize().size();
  QueryResult res;
  res.entries.assign(5, MatchEntry{1, Bytes(auth.token_size(), 0)});
  const std::size_t smatch_query = QueryRequest{1, 1, 1}.serialize().size() +
                                   res.serialize().size();

  Drbg pw_rng(1);
  PairwiseUser pw(1, Profile(d, 1), group, k, pw_rng);
  const std::size_t zll13_session = pw.session_bytes();

  const std::size_t psi_exchange = 2 * 2 * d * group->element_bytes();

  HomoPmParams hp;
  hp.plaintext_bits = k;
  HomoPmQuery hq;
  hq.enc_neg_2a.resize(d);
  const std::size_t homopm_query = hq.wire_bytes(hp);
  const std::size_t homopm_dist = 4 + 2 * ((hp.modulus_bits() + 7) / 8);

  std::printf("ABLATION: total system communication for all-pairs matching\n"
              "(d=%zu attributes, k=%zu bits; bytes)\n\n", d, k);
  std::printf("%-8s %-14s %-16s %-16s %-16s\n", "N", "S-MATCH", "ZLL13 pairwise",
              "PSI pairwise", "homoPM");
  for (std::size_t n : {10u, 50u, 100u, 500u, 1000u}) {
    const std::size_t pairs = n * (n - 1) / 2;
    const std::size_t smatch_total = n * (smatch_upload + smatch_query);
    const std::size_t zll13_total = pairs * zll13_session;
    const std::size_t psi_total = pairs * psi_exchange;
    const std::size_t homopm_total = n * (homopm_query + (n - 1) * homopm_dist);
    std::printf("%-8zu %-14zu %-16zu %-16zu %-16zu\n", n, smatch_total, zll13_total,
                psi_total, homopm_total);
  }
  std::printf("\nS-MATCH grows linearly (each user uploads once and queries the\n"
              "server); every pairwise scheme grows quadratically — the paper's\n"
              "Section II scalability argument.\n");
  return 0;
}
