// Instrumentation overhead gate + artifact dump for the observability
// layer (src/obs/).
//
// Runs the full S-MATCH pipeline — fleet enrollment through the OPRF key
// service, upload ingest, sequential and batched matching, all messages
// routed through a SimChannel — with the span ring buffer armed, and
// reports the best-of-N wall time on a stable `workload_ms=` line.
// scripts/ci.sh runs the same binary from a -DSMATCH_OBS=ON and a
// -DSMATCH_OBS=OFF build tree and fails if the enabled/compiled-out ratio
// exceeds 1.05: instrumentation must cost under 5% end to end.
//
// In the ON build it also dumps the two exporter artifacts and
// self-validates them:
//   * --trace <path>: Chrome trace-event JSON of the last run, loadable
//     in Perfetto / chrome://tracing. Must parse, nest correctly, and
//     contain spans from all three engines (>= 6 distinct names).
//   * --prom <path>:  Prometheus exposition-text snapshot of every
//     engine's metrics (via core/metrics_export.hpp).
//
// The ON build finishes with an admin-scrape-under-load tier: an echo
// NetServer saturated by closed-loop callers, exact (sorted, not
// bucketed) p99 measured with and without a concurrent /metrics scraper
// hammering the admin plane. Printed as admin_scrape_p99_ratio= and
// gated by scripts/ci.sh at 5%. The OFF build instead prints
// admin_enabled=0 after verifying the admin surface really is compiled
// out (ServerConfig::admin_port is ignored).
//
// Run: ./build/bench/obs_overhead [--runs N] [--trace t.json] [--prom m.prom]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/client.hpp"
#include "core/key_server.hpp"
#include "core/metrics_export.hpp"
#include "core/server.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"
#include "group/modp_group.hpp"
#include "net/admin.hpp"
#include "net/channel.hpp"
#include "net/server.hpp"
#include "net/tcp_transport.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

using namespace smatch;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Sized so one pass takes a few hundred ms: long enough that the CI
// gate's 5% threshold sits well above scheduler noise on the best-of-N
// minimum, short enough that two build trees x N runs stays cheap.
constexpr std::size_t kFleet = 96;
constexpr std::size_t kAttributes = 4;
constexpr std::size_t kMatchRounds = 150;

ClientConfig make_config() {
  DatasetSpec spec;
  spec.name = "obs-overhead";
  spec.num_users = kFleet;
  for (std::size_t i = 0; i < kAttributes; ++i) {
    spec.attributes.push_back(AttributeSpec::uniform("a" + std::to_string(i), 6.0));
  }
  SchemeParams params;
  params.attribute_bits = 32;
  params.rs_threshold = 8;
  params.quant_width = 64;  // everyone lands in one key group
  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());
  return make_client_config(spec, params, group);
}

/// One end-to-end pipeline pass. Every stage is instrumented, so this is
/// the workload whose ON/OFF wall-time ratio the CI gate compares. The
/// engines are passed in so their metrics survive for the exporters.
void run_pipeline(const ClientConfig& config, KeyServer& key_server,
                  MatchServer& server, SimChannel& channel,
                  ClientMetrics& fleet_metrics, std::uint64_t seed) {
  Drbg rng(seed);
  std::vector<Client> fleet;
  fleet.reserve(kFleet);
  for (std::size_t u = 0; u < kFleet; ++u) {
    Profile p;
    for (std::size_t a = 0; a < kAttributes; ++a) {
      p.push_back(static_cast<AttrValue>(rng.below(4)));
    }
    fleet.push_back(Client::create(static_cast<UserId>(u + 1), p, config).value());
  }
  std::vector<Client*> clients;
  for (auto& c : fleet) clients.push_back(&c);

  // Enroll: client blinding -> key service OPRF -> finalize -> upload.
  const auto uploads = enroll_and_upload_batch(clients, key_server, rng);
  std::vector<UploadMessage> batch;
  for (const auto& up : uploads) {
    if (!up.is_ok()) {
      std::fprintf(stderr, "FAIL: enrollment error: %s\n",
                   up.status().to_string().c_str());
      std::exit(1);
    }
    (void)channel.send_to_server(up->serialize(), MessageKind::kUpload);
    batch.push_back(*up);
  }
  for (const Status& s : server.ingest_batch(batch)) {
    if (!s.is_ok()) {
      std::fprintf(stderr, "FAIL: ingest error: %s\n", s.to_string().c_str());
      std::exit(1);
    }
  }

  // Match: sequential queries plus batched rounds, results downlinked.
  std::uint64_t ts = seed * 1000000;
  for (std::size_t round = 0; round < kMatchRounds; ++round) {
    std::vector<QueryRequest> queries;
    for (std::size_t u = 0; u < kFleet; ++u) {
      queries.push_back(fleet[u].make_query(static_cast<std::uint32_t>(round), ++ts));
      (void)channel.send_to_server(queries.back().serialize(), MessageKind::kQuery);
    }
    if (round % 2 == 0) {
      for (const auto& q : queries) {
        const auto r = server.match(q, 5);
        if (!r.is_ok()) std::exit(1);
        (void)channel.send_to_client(r->serialize(), MessageKind::kResult);
      }
    } else {
      for (const auto& r : server.match_batch(queries, 5)) {
        if (!r.is_ok()) std::exit(1);
        (void)channel.send_to_client(r->serialize(), MessageKind::kResult);
      }
    }
  }

  // Fold this fleet's pipeline metrics for the exporter snapshot.
  for (const Client& c : fleet) {
    const ClientMetrics cm = c.metrics();
    fleet_metrics.encryptions += cm.encryptions;
    fleet_metrics.uploads += cm.uploads;
    fleet_metrics.batches += cm.batches;
    fleet_metrics.ope_cache_hits += cm.ope_cache_hits;
    fleet_metrics.ope_cache_misses += cm.ope_cache_misses;
    fleet_metrics.ope_cache_entries += cm.ope_cache_entries;
    fleet_metrics.encrypt_latency_ns.merge(cm.encrypt_latency_ns);
    fleet_metrics.upload_latency_ns.merge(cm.upload_latency_ns);
  }
}

bool write_file(const char* path, const std::string& content) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return (std::fclose(f) == 0) && ok;
}

// --- Admin-scrape-under-load tier -----------------------------------------

constexpr std::size_t kEchoConnections = 4;
constexpr std::size_t kEchoCallsPerConn = 1500;

/// Closed-loop echo load: every connection drives calls synchronously
/// and records each call's wall time. Returns the exact p99 in ns
/// (sorted samples, no histogram bucketing — this tier measures a <5%
/// shift, below the log2 bucket resolution).
std::uint64_t echo_load_p99(std::uint16_t port) {
  std::vector<std::vector<std::uint64_t>> per_conn(kEchoConnections);
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (std::size_t c = 0; c < kEchoConnections; ++c) {
    threads.emplace_back([port, c, &per_conn, &failed] {
      auto conn =
          TcpTransport::connect("127.0.0.1", port, std::chrono::milliseconds{2000});
      if (!conn.is_ok()) {
        failed.store(true);
        return;
      }
      SessionClient client(**conn, {}, /*seed=*/0xbe9c + c);
      const Bytes body = {9, 9, 9, 9};
      per_conn[c].reserve(kEchoCallsPerConn);
      for (std::size_t i = 0; i < kEchoCallsPerConn; ++i) {
        const auto t0 = Clock::now();
        if (!client.call(MessageKind::kOther, body).is_ok()) {
          failed.store(true);
          break;
        }
        per_conn[c].push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
                .count()));
      }
      (void)(*conn)->close();
    });
  }
  for (std::thread& t : threads) t.join();
  if (failed.load()) return 0;
  std::vector<std::uint64_t> all;
  for (auto& v : per_conn) all.insert(all.end(), v.begin(), v.end());
  if (all.empty()) return 0;
  const std::size_t rank = (all.size() * 99) / 100;
  std::nth_element(all.begin(), all.begin() + rank, all.end());
  return all[rank];
}

/// Best-of-N p99 of the echo load, optionally with a scraper thread
/// hitting the admin /metrics endpoint in a tight loop for the whole
/// run. Best-of-N minimizes scheduler noise the same way the workload
/// gate above does.
std::uint64_t best_p99(std::uint16_t port, std::uint16_t admin_port,
                       bool scrape, std::size_t runs) {
  std::uint64_t best = 0;
  for (std::size_t r = 0; r < runs; ++r) {
    std::atomic<bool> stop{false};
    std::thread scraper;
    if (scrape) {
      scraper = std::thread([admin_port, &stop] {
        while (!stop.load(std::memory_order_relaxed)) {
          (void)http_get("127.0.0.1", admin_port, "/metrics");
          // 10 Hz: ~150x a default Prometheus interval, yet still a
          // cadence instead of a render-lock saturation loop (each
          // render serializes with the hot path's registry lookups).
          std::this_thread::sleep_for(std::chrono::milliseconds{100});
        }
      });
    }
    const std::uint64_t p99 = echo_load_p99(port);
    stop.store(true);
    if (scraper.joinable()) scraper.join();
    if (p99 == 0) return 0;  // load failure; caller reports
    if (best == 0 || p99 < best) best = p99;
  }
  return best;
}

/// Runs the tier and prints its gate lines. Returns false on harness
/// failure (bind/connect/call errors), not on a slow ratio — the ratio
/// gate lives in scripts/ci.sh where both numbers are visible.
bool run_admin_scrape_tier() {
  FrameDispatcher dispatcher;
  dispatcher.register_handler(MessageKind::kOther, [](BytesView body) {
    return StatusOr<Bytes>(Bytes(body.begin(), body.end()));
  });
  NetServer net(std::move(dispatcher));
  ServerConfig cfg;
  cfg.tcp_port = 0;
  cfg.admin_port = 0;
  cfg.io_threads = 2;
  cfg.dispatch_workers = 4;
  if (Status s = net.start(cfg); !s.is_ok()) {
    std::fprintf(stderr, "FAIL: admin tier server: %s\n", s.message().c_str());
    return false;
  }
#if SMATCH_OBS_ENABLED
  if (net.admin_port() == 0) {
    std::fprintf(stderr, "FAIL: admin plane did not come up\n");
    return false;
  }
  std::printf("admin_enabled=1\n");
  // Warm once (connection setup, registry families), then measure.
  (void)echo_load_p99(net.port());
  const std::uint64_t quiet = best_p99(net.port(), net.admin_port(), false, 3);
  const std::uint64_t scraped = best_p99(net.port(), net.admin_port(), true, 3);
  net.stop();
  if (quiet == 0 || scraped == 0) {
    std::fprintf(stderr, "FAIL: admin tier load errors\n");
    return false;
  }
  std::printf("admin_scrape_p99_quiet_ns=%llu\n",
              static_cast<unsigned long long>(quiet));
  std::printf("admin_scrape_p99_scraped_ns=%llu\n",
              static_cast<unsigned long long>(scraped));
  std::printf("admin_scrape_p99_ratio=%.4f\n",
              static_cast<double>(scraped) / static_cast<double>(quiet));
#else
  // The OFF build must ignore admin_port entirely: no listener, no
  // thread, no surface. That absence is this build's gate line.
  if (net.admin_port() != 0) {
    std::fprintf(stderr, "FAIL: admin surface exists under SMATCH_OBS=OFF\n");
    return false;
  }
  net.stop();
  std::printf("admin_enabled=0\n");
#endif
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* runs_arg = bench::arg_after(argc, argv, "--runs");
  const std::size_t runs = runs_arg != nullptr
                               ? static_cast<std::size_t>(std::atoi(runs_arg))
                               : 5;
  const char* trace_path = bench::arg_after(argc, argv, "--trace");
  const char* prom_path = bench::arg_after(argc, argv, "--prom");

  const ClientConfig config = make_config();
  Drbg key_rng(2014);
  const RsaKeyPair rsa = RsaKeyPair::generate(key_rng, 512);

  std::printf("OBS OVERHEAD: end-to-end pipeline, instrumentation %s\n",
              SMATCH_OBS_ENABLED ? "enabled (spans + histograms + ring)"
                                 : "compiled out (-DSMATCH_OBS=OFF)");

  KeyServer key_server(RsaKeyPair{rsa}, KeyServerOptions{.requests_per_epoch = 0});
  MatchServer server(ServerOptions{.num_shards = 4, .batch_threads = 2,
                                   .replay_protection = false});
  SimChannel channel;
  ClientMetrics fleet_metrics;

  double best_ms = -1.0;
  for (std::size_t r = 0; r < runs; ++r) {
    // Arm the ring each run: "enabled" means spans actually record.
    obs::TraceBuffer::instance().begin(/*capacity=*/1 << 16);
    const auto t0 = Clock::now();
    run_pipeline(config, key_server, server, channel, fleet_metrics, r + 1);
    const double ms = ms_since(t0);
    obs::TraceBuffer::instance().end();
    if (best_ms < 0.0 || ms < best_ms) best_ms = ms;
    std::printf("  run %zu: %8.1f ms\n", r + 1, ms);
  }

  // The stable, machine-readable line scripts/ci.sh compares across the
  // ON and OFF build trees.
  std::printf("workload_ms=%.3f\n", best_ms);

#if SMATCH_OBS_ENABLED
  // Artifact 1: Chrome trace of the last run, self-validated with the
  // same checker the unit tests use. Gate: parses, nests, and spans all
  // three engines.
  const std::string trace = obs::TraceBuffer::instance().chrome_json();
  std::string error;
  std::size_t distinct = 0;
  if (!obs::validate_chrome_trace(trace, &error, &distinct)) {
    std::fprintf(stderr, "FAIL: malformed trace: %s\n", error.c_str());
    return 1;
  }
  std::set<std::string> names;
  for (const auto& e : obs::TraceBuffer::instance().events()) names.insert(e.name);
  bool client_spans = false, keyserver_spans = false, match_spans = false;
  for (const std::string& n : names) {
    client_spans |= n.rfind("client.", 0) == 0;
    keyserver_spans |= n.rfind("keyserver.", 0) == 0;
    match_spans |= n.rfind("match.", 0) == 0;
  }
  if (distinct < 6 || !client_spans || !keyserver_spans || !match_spans) {
    std::fprintf(stderr,
                 "FAIL: trace coverage too thin: %zu distinct spans "
                 "(client=%d keyserver=%d match=%d)\n",
                 distinct, client_spans, keyserver_spans, match_spans);
    return 1;
  }
  std::printf("  trace: %zu events, %zu distinct spans, %llu dropped\n",
              obs::TraceBuffer::instance().events().size(), distinct,
              static_cast<unsigned long long>(obs::TraceBuffer::instance().dropped()));
  if (trace_path != nullptr) {
    if (!write_file(trace_path, trace)) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", trace_path);
      return 1;
    }
    std::printf("  trace json: %s (load in Perfetto / chrome://tracing)\n", trace_path);
  }

  // Artifact 2: one Prometheus snapshot covering all three engines, the
  // pools, and the channel.
  obs::Registry registry;
  export_metrics(registry, server.metrics());
  export_metrics(registry, key_server.metrics());
  export_metrics(registry, fleet_metrics);
  export_metrics(registry, channel);
  const std::string prom = registry.prometheus_text();
  if (prom.find("smatch_match_match_latency_ns_count") == std::string::npos ||
      prom.find("smatch_keyserver_handle_latency_ns_count") == std::string::npos ||
      prom.find("smatch_client_encrypt_latency_ns_count") == std::string::npos) {
    std::fprintf(stderr, "FAIL: Prometheus snapshot missing engine histograms\n");
    return 1;
  }
  if (prom_path != nullptr) {
    if (!write_file(prom_path, prom)) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", prom_path);
      return 1;
    }
    std::printf("  prometheus snapshot: %s\n", prom_path);
  }
#else
  (void)write_file;
  if (trace_path != nullptr || prom_path != nullptr) {
    std::printf("  artifacts skipped: instrumentation compiled out\n");
  }
#endif

  if (!run_admin_scrape_tier()) return 1;
  return 0;
}
