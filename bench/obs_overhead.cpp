// Instrumentation overhead gate + artifact dump for the observability
// layer (src/obs/).
//
// Runs the full S-MATCH pipeline — fleet enrollment through the OPRF key
// service, upload ingest, sequential and batched matching, all messages
// routed through a SimChannel — with the span ring buffer armed, and
// reports the best-of-N wall time on a stable `workload_ms=` line.
// scripts/ci.sh runs the same binary from a -DSMATCH_OBS=ON and a
// -DSMATCH_OBS=OFF build tree and fails if the enabled/compiled-out ratio
// exceeds 1.05: instrumentation must cost under 5% end to end.
//
// In the ON build it also dumps the two exporter artifacts and
// self-validates them:
//   * --trace <path>: Chrome trace-event JSON of the last run, loadable
//     in Perfetto / chrome://tracing. Must parse, nest correctly, and
//     contain spans from all three engines (>= 6 distinct names).
//   * --prom <path>:  Prometheus exposition-text snapshot of every
//     engine's metrics (via core/metrics_export.hpp).
//
// Run: ./build/bench/obs_overhead [--runs N] [--trace t.json] [--prom m.prom]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/client.hpp"
#include "core/key_server.hpp"
#include "core/metrics_export.hpp"
#include "core/server.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"
#include "group/modp_group.hpp"
#include "net/channel.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

using namespace smatch;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Sized so one pass takes a few hundred ms: long enough that the CI
// gate's 5% threshold sits well above scheduler noise on the best-of-N
// minimum, short enough that two build trees x N runs stays cheap.
constexpr std::size_t kFleet = 96;
constexpr std::size_t kAttributes = 4;
constexpr std::size_t kMatchRounds = 150;

ClientConfig make_config() {
  DatasetSpec spec;
  spec.name = "obs-overhead";
  spec.num_users = kFleet;
  for (std::size_t i = 0; i < kAttributes; ++i) {
    spec.attributes.push_back(AttributeSpec::uniform("a" + std::to_string(i), 6.0));
  }
  SchemeParams params;
  params.attribute_bits = 32;
  params.rs_threshold = 8;
  params.quant_width = 64;  // everyone lands in one key group
  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());
  return make_client_config(spec, params, group);
}

/// One end-to-end pipeline pass. Every stage is instrumented, so this is
/// the workload whose ON/OFF wall-time ratio the CI gate compares. The
/// engines are passed in so their metrics survive for the exporters.
void run_pipeline(const ClientConfig& config, KeyServer& key_server,
                  MatchServer& server, SimChannel& channel,
                  ClientMetrics& fleet_metrics, std::uint64_t seed) {
  Drbg rng(seed);
  std::vector<Client> fleet;
  fleet.reserve(kFleet);
  for (std::size_t u = 0; u < kFleet; ++u) {
    Profile p;
    for (std::size_t a = 0; a < kAttributes; ++a) {
      p.push_back(static_cast<AttrValue>(rng.below(4)));
    }
    fleet.push_back(Client::create(static_cast<UserId>(u + 1), p, config).value());
  }
  std::vector<Client*> clients;
  for (auto& c : fleet) clients.push_back(&c);

  // Enroll: client blinding -> key service OPRF -> finalize -> upload.
  const auto uploads = enroll_and_upload_batch(clients, key_server, rng);
  std::vector<UploadMessage> batch;
  for (const auto& up : uploads) {
    if (!up.is_ok()) {
      std::fprintf(stderr, "FAIL: enrollment error: %s\n",
                   up.status().to_string().c_str());
      std::exit(1);
    }
    (void)channel.send_to_server(up->serialize(), MessageKind::kUpload);
    batch.push_back(*up);
  }
  for (const Status& s : server.ingest_batch(batch)) {
    if (!s.is_ok()) {
      std::fprintf(stderr, "FAIL: ingest error: %s\n", s.to_string().c_str());
      std::exit(1);
    }
  }

  // Match: sequential queries plus batched rounds, results downlinked.
  std::uint64_t ts = seed * 1000000;
  for (std::size_t round = 0; round < kMatchRounds; ++round) {
    std::vector<QueryRequest> queries;
    for (std::size_t u = 0; u < kFleet; ++u) {
      queries.push_back(fleet[u].make_query(static_cast<std::uint32_t>(round), ++ts));
      (void)channel.send_to_server(queries.back().serialize(), MessageKind::kQuery);
    }
    if (round % 2 == 0) {
      for (const auto& q : queries) {
        const auto r = server.match(q, 5);
        if (!r.is_ok()) std::exit(1);
        (void)channel.send_to_client(r->serialize(), MessageKind::kResult);
      }
    } else {
      for (const auto& r : server.match_batch(queries, 5)) {
        if (!r.is_ok()) std::exit(1);
        (void)channel.send_to_client(r->serialize(), MessageKind::kResult);
      }
    }
  }

  // Fold this fleet's pipeline metrics for the exporter snapshot.
  for (const Client& c : fleet) {
    const ClientMetrics cm = c.metrics();
    fleet_metrics.encryptions += cm.encryptions;
    fleet_metrics.uploads += cm.uploads;
    fleet_metrics.batches += cm.batches;
    fleet_metrics.ope_cache_hits += cm.ope_cache_hits;
    fleet_metrics.ope_cache_misses += cm.ope_cache_misses;
    fleet_metrics.ope_cache_entries += cm.ope_cache_entries;
    fleet_metrics.encrypt_latency_ns.merge(cm.encrypt_latency_ns);
    fleet_metrics.upload_latency_ns.merge(cm.upload_latency_ns);
  }
}

bool write_file(const char* path, const std::string& content) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace

int main(int argc, char** argv) {
  const char* runs_arg = bench::arg_after(argc, argv, "--runs");
  const std::size_t runs = runs_arg != nullptr
                               ? static_cast<std::size_t>(std::atoi(runs_arg))
                               : 5;
  const char* trace_path = bench::arg_after(argc, argv, "--trace");
  const char* prom_path = bench::arg_after(argc, argv, "--prom");

  const ClientConfig config = make_config();
  Drbg key_rng(2014);
  const RsaKeyPair rsa = RsaKeyPair::generate(key_rng, 512);

  std::printf("OBS OVERHEAD: end-to-end pipeline, instrumentation %s\n",
              SMATCH_OBS_ENABLED ? "enabled (spans + histograms + ring)"
                                 : "compiled out (-DSMATCH_OBS=OFF)");

  KeyServer key_server(RsaKeyPair{rsa}, KeyServerOptions{.requests_per_epoch = 0});
  MatchServer server(ServerOptions{.num_shards = 4, .batch_threads = 2,
                                   .replay_protection = false});
  SimChannel channel;
  ClientMetrics fleet_metrics;

  double best_ms = -1.0;
  for (std::size_t r = 0; r < runs; ++r) {
    // Arm the ring each run: "enabled" means spans actually record.
    obs::TraceBuffer::instance().begin(/*capacity=*/1 << 16);
    const auto t0 = Clock::now();
    run_pipeline(config, key_server, server, channel, fleet_metrics, r + 1);
    const double ms = ms_since(t0);
    obs::TraceBuffer::instance().end();
    if (best_ms < 0.0 || ms < best_ms) best_ms = ms;
    std::printf("  run %zu: %8.1f ms\n", r + 1, ms);
  }

  // The stable, machine-readable line scripts/ci.sh compares across the
  // ON and OFF build trees.
  std::printf("workload_ms=%.3f\n", best_ms);

#if SMATCH_OBS_ENABLED
  // Artifact 1: Chrome trace of the last run, self-validated with the
  // same checker the unit tests use. Gate: parses, nests, and spans all
  // three engines.
  const std::string trace = obs::TraceBuffer::instance().chrome_json();
  std::string error;
  std::size_t distinct = 0;
  if (!obs::validate_chrome_trace(trace, &error, &distinct)) {
    std::fprintf(stderr, "FAIL: malformed trace: %s\n", error.c_str());
    return 1;
  }
  std::set<std::string> names;
  for (const auto& e : obs::TraceBuffer::instance().events()) names.insert(e.name);
  bool client_spans = false, keyserver_spans = false, match_spans = false;
  for (const std::string& n : names) {
    client_spans |= n.rfind("client.", 0) == 0;
    keyserver_spans |= n.rfind("keyserver.", 0) == 0;
    match_spans |= n.rfind("match.", 0) == 0;
  }
  if (distinct < 6 || !client_spans || !keyserver_spans || !match_spans) {
    std::fprintf(stderr,
                 "FAIL: trace coverage too thin: %zu distinct spans "
                 "(client=%d keyserver=%d match=%d)\n",
                 distinct, client_spans, keyserver_spans, match_spans);
    return 1;
  }
  std::printf("  trace: %zu events, %zu distinct spans, %llu dropped\n",
              obs::TraceBuffer::instance().events().size(), distinct,
              static_cast<unsigned long long>(obs::TraceBuffer::instance().dropped()));
  if (trace_path != nullptr) {
    if (!write_file(trace_path, trace)) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", trace_path);
      return 1;
    }
    std::printf("  trace json: %s (load in Perfetto / chrome://tracing)\n", trace_path);
  }

  // Artifact 2: one Prometheus snapshot covering all three engines, the
  // pools, and the channel.
  obs::Registry registry;
  export_metrics(registry, server.metrics());
  export_metrics(registry, key_server.metrics());
  export_metrics(registry, fleet_metrics);
  export_metrics(registry, channel);
  const std::string prom = registry.prometheus_text();
  if (prom.find("smatch_match_match_latency_ns_count") == std::string::npos ||
      prom.find("smatch_keyserver_handle_latency_ns_count") == std::string::npos ||
      prom.find("smatch_client_encrypt_latency_ns_count") == std::string::npos) {
    std::fprintf(stderr, "FAIL: Prometheus snapshot missing engine histograms\n");
    return 1;
  }
  if (prom_path != nullptr) {
    if (!write_file(prom_path, prom)) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", prom_path);
      return 1;
    }
    std::printf("  prometheus snapshot: %s\n", prom_path);
  }
#else
  (void)write_file;
  if (trace_path != nullptr || prom_path != nullptr) {
    std::printf("  artifacts skipped: instrumentation compiled out\n");
  }
#endif

  return 0;
}
