// Key-service throughput: sequential handle() vs handle_batch() over the
// same blinded OPRF requests, plus a single-core microbench isolating the
// ModExpContext setup amortization (Montgomery parameters + fixed-window
// exponent decomposition computed once instead of per call).
//
// The harness proves the two server paths are interchangeable before
// timing anything: both servers hold copies of one RSA key, so every
// response — and every finalized ProfileKey — must be byte-identical
// between the sequential and batched runs.
//
// The >= 3x batched-vs-sequential acceptance gate only applies to full
// runs on machines with >= 8 hardware threads; the batch win is thread
// parallelism, which a small container cannot exhibit.
//
// Run:   ./build/bench/keygen_throughput            (RSA-1024, 128 requests)
//        ./build/bench/keygen_throughput --smoke    (RSA-512, small; ctest)
//        add --json <path> to also write a machine-readable result file
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/key_server.hpp"
#include "crypto/drbg.hpp"

using namespace smatch;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Context-reuse microbench: the same fixed-exponent power computed with a
// fresh setup per call (pow_mod) vs a context built once (ModExpContext).
// The setup (R^2 mod m division + window decomposition of the exponent)
// is a small constant next to the O(bits) multiplications of one modexp,
// so this ratio hovers a few percent above 1.0 — the check is that
// hoisting it never makes the hot path slower; the large batched win in
// the numbers above is thread parallelism. Returns the speedup factor.
double modexp_reuse_speedup(std::size_t bits, std::size_t iters) {
  Drbg rng(4242);
  BigInt modulus = BigInt::random_bits(rng, bits);
  if (!modulus.is_odd()) modulus += BigInt{1};
  const BigInt exponent = BigInt::random_bits(rng, bits);
  std::vector<BigInt> bases;
  bases.reserve(iters);
  for (std::size_t i = 0; i < iters; ++i) {
    bases.push_back(BigInt::random_below(rng, modulus));
  }

  auto t0 = Clock::now();
  std::vector<BigInt> fresh;
  fresh.reserve(iters);
  for (const BigInt& x : bases) fresh.push_back(x.pow_mod(exponent, modulus));
  const double fresh_ms = ms_since(t0);

  const ModExpContext ctx(exponent, modulus);
  t0 = Clock::now();
  std::vector<BigInt> reused;
  reused.reserve(iters);
  for (const BigInt& x : bases) reused.push_back(ctx.pow(x));
  const double reused_ms = ms_since(t0);

  for (std::size_t i = 0; i < iters; ++i) {
    if (fresh[i] != reused[i]) {
      std::fprintf(stderr, "FAIL: ModExpContext result differs from pow_mod\n");
      std::exit(1);
    }
  }
  std::printf("  modexp %zu-bit:    fresh setup %8.1f ms, reused context %8.1f ms"
              "  (%.2fx, %zu calls)\n",
              bits, fresh_ms, reused_ms, fresh_ms / reused_ms, iters);
  return fresh_ms / reused_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const char* json_path = bench::arg_after(argc, argv, "--json");
  const std::size_t rsa_bits = smoke ? 512 : 1024;
  const std::size_t requests = smoke ? 12 : 128;
  const unsigned cores = std::thread::hardware_concurrency();

  Drbg rng(2014);
  const RsaKeyPair key = RsaKeyPair::generate(rng, rsa_bits);
  const KeyServerOptions options{.requests_per_epoch = 0, .num_shards = 8,
                                 .batch_threads = 0};
  KeyServer seq_server(RsaKeyPair{key}, options);
  KeyServer batch_server(RsaKeyPair{key}, options);

  const FuzzyKeyGen kg(SchemeParams{}, 6);
  std::vector<KeygenSession> sessions;
  std::vector<Bytes> wires;
  sessions.reserve(requests);
  wires.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const auto v = static_cast<std::uint32_t>(i);
    sessions.emplace_back(kg, Profile{v, v * 3 + 1, v * 7, 2 * v, 500 - v, v + 9},
                          key.public_key(), static_cast<UserId>(i + 1), rng);
    wires.push_back(sessions.back().request_wire());
  }

  // Sequential baseline: one handle() per request.
  auto t0 = Clock::now();
  std::vector<StatusOr<Bytes>> seq(wires.size(),
                                   Status(StatusCode::kMalformedMessage, "pending"));
  for (std::size_t i = 0; i < wires.size(); ++i) seq[i] = seq_server.handle(wires[i]);
  const double seq_ms = ms_since(t0);

  // Batch path: the same wires, one call, fanned over the pool.
  t0 = Clock::now();
  const std::vector<StatusOr<Bytes>> batched = batch_server.handle_batch(wires);
  const double batch_ms = ms_since(t0);

  // Identity: responses byte-for-byte, then keys byte-for-byte.
  for (std::size_t i = 0; i < wires.size(); ++i) {
    if (!seq[i].is_ok() || !batched[i].is_ok() || *seq[i] != *batched[i]) {
      std::fprintf(stderr, "FAIL: batched response %zu differs from sequential\n", i);
      return 1;
    }
    const StatusOr<ProfileKey> a = sessions[i].finalize(*seq[i]);
    const StatusOr<ProfileKey> b = sessions[i].finalize(*batched[i]);
    if (!a.is_ok() || !b.is_ok() || a->key != b->key || a->index != b->index) {
      std::fprintf(stderr, "FAIL: ProfileKey %zu not bit-identical\n", i);
      return 1;
    }
  }

  const KeyServerMetrics m = batch_server.metrics();
  const double seq_rps = static_cast<double>(requests) / (seq_ms / 1e3);
  const double batch_rps = static_cast<double>(requests) / (batch_ms / 1e3);
  const double speedup = seq_ms / batch_ms;

  std::printf("KEYGEN THROUGHPUT: sequential handle() vs handle_batch()\n");
  std::printf("  workload:   %zu OPRF requests, RSA-%zu, %u hardware threads\n",
              requests, rsa_bits, cores);
  std::printf("  service:    %zu budget shards, batch threads = hardware\n\n",
              batch_server.num_shards());
  std::printf("  sequential handle: %8.1f ms  (%.0f req/s)\n", seq_ms, seq_rps);
  std::printf("  handle_batch:      %8.1f ms  (%.0f req/s)\n", batch_ms, batch_rps);
  std::printf("  batch speedup:     %.2fx\n", speedup);
  std::printf("  evaluations: %llu, batches: %llu (largest %zu)\n",
              static_cast<unsigned long long>(m.evaluations),
              static_cast<unsigned long long>(m.batches),
              m.batch_size_histogram.empty() ? std::size_t{0}
                                             : m.batch_size_histogram.rbegin()->first);
  std::printf("  keys identical: yes (%zu ProfileKeys, byte-for-byte)\n\n",
              requests);

  const double reuse = modexp_reuse_speedup(rsa_bits, smoke ? 6 : 96);

  if (json_path != nullptr) {
    bench::JsonResult json("keygen_throughput");
    json.add("requests", static_cast<double>(requests));
    json.add("rsa_bits", static_cast<double>(rsa_bits));
    json.add("sequential_ms", seq_ms);
    json.add("batch_ms", batch_ms);
    json.add("sequential_rps", seq_rps);
    json.add("batch_rps", batch_rps);
    json.add("batch_speedup", speedup);
    json.add("modexp_reuse_speedup", reuse);
    json.add_hist("handle_latency", m.handle_latency_ns);
    json.add_hist("modexp_latency", m.modexp_latency_ns);
    if (!json.write(json_path)) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", json_path);
      return 1;
    }
    std::printf("  json: %s\n", json_path);
  }

  if (smoke) return 0;  // timing gates are only meaningful full-size
  if (reuse < 0.9) {  // sanity: the reused context must not cost extra
    std::fprintf(stderr, "FAIL: ModExpContext reuse slower than fresh setup\n");
    return 1;
  }
  if (cores >= 8 && speedup < 3.0) {
    std::fprintf(stderr, "FAIL: batch speedup %.2fx below 3x on %u cores\n", speedup,
                 cores);
    return 1;
  }
  std::printf("  gate: %s\n",
              cores >= 8 ? (speedup >= 3.0 ? ">= 3x on >= 8 cores met" : "unreachable")
                         : "skipped (< 8 hardware threads)");
  return 0;
}
