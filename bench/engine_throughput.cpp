// Sharded engine throughput: sequential match() vs match_batch() on a
// large synthetic population.
//
// The batch path wins twice: queries fan out across shards on the
// internal thread pool, and each key group is sorted once per batch
// instead of once per query (SORT — the dominant server cost — amortizes
// over every query hitting the same group). The harness verifies that the
// batch results are entry-for-entry identical to the sequential path
// before reporting any number.
//
// Run:   ./build/bench/engine_throughput            (12k users, full run)
//        ./build/bench/engine_throughput --smoke    (small; used by ctest)
//        add --json <path> to also write a machine-readable result file
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/smatch.hpp"
#include "crypto/drbg.hpp"

using namespace smatch;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct Workload {
  std::vector<UploadMessage> uploads;
  std::vector<QueryRequest> queries;
};

Workload make_workload(std::size_t users, std::size_t groups, std::size_t chain_bits) {
  Drbg rng(2014);
  std::vector<Bytes> indexes;
  indexes.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) indexes.push_back(rng.bytes(32));

  Workload w;
  w.uploads.reserve(users);
  w.queries.reserve(users);
  for (std::size_t u = 0; u < users; ++u) {
    UploadMessage up;
    up.user_id = static_cast<UserId>(u + 1);
    up.key_index = indexes[u % groups];
    up.chain_cipher = BigInt::random_bits(rng, chain_bits);
    up.chain_cipher_bits = static_cast<std::uint32_t>(chain_bits);
    up.auth_token = Bytes(304, 0);
    w.uploads.push_back(std::move(up));
    w.queries.push_back({static_cast<std::uint32_t>(u), 0, static_cast<UserId>(u + 1)});
  }
  return w;
}

bool identical(const std::vector<StatusOr<QueryResult>>& batch,
               const std::vector<QueryResult>& sequential) {
  if (batch.size() != sequential.size()) return false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!batch[i].is_ok()) return false;
    const auto& b = batch[i]->entries;
    const auto& s = sequential[i].entries;
    if (b.size() != s.size()) return false;
    for (std::size_t e = 0; e < b.size(); ++e) {
      if (b[e].user_id != s[e].user_id || b[e].auth_token != s[e].auth_token) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const char* json_path = bench::arg_after(argc, argv, "--json");
  const std::size_t users = smoke ? 800 : 12000;
  const std::size_t groups = smoke ? 16 : 96;
  const std::size_t chain_bits = 6 * 64 + 64;  // Infocom06-like, k = 64
  const std::size_t shards = 8;
  const std::size_t threads = 4;
  const std::size_t k = 5;

  const Workload w = make_workload(users, groups, chain_bits);

  MatchServer server(ServerOptions{.num_shards = shards, .batch_threads = threads});
  auto t0 = Clock::now();
  for (const Status& s : server.ingest_batch(w.uploads)) {
    if (!s.is_ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", s.to_string().c_str());
      return 1;
    }
  }
  const double ingest_ms = ms_since(t0);

  // Sequential baseline: one match() per query.
  const std::uint64_t comparisons_before_seq = server.comparisons();
  t0 = Clock::now();
  std::vector<QueryResult> sequential;
  sequential.reserve(w.queries.size());
  for (const auto& q : w.queries) {
    auto r = server.match(q, k);
    if (!r.is_ok()) {
      std::fprintf(stderr, "sequential match failed: %s\n", r.status().to_string().c_str());
      return 1;
    }
    sequential.push_back(std::move(*r));
  }
  const double seq_ms = ms_since(t0);
  const std::uint64_t seq_comparisons = server.comparisons() - comparisons_before_seq;

  // Batch path: same queries, one call.
  const std::uint64_t comparisons_before_batch = server.comparisons();
  t0 = Clock::now();
  const auto batched = server.match_batch(w.queries, k);
  const double batch_ms = ms_since(t0);
  const std::uint64_t batch_comparisons = server.comparisons() - comparisons_before_batch;

  if (!identical(batched, sequential)) {
    std::fprintf(stderr, "FAIL: batch results differ from sequential results\n");
    return 1;
  }

  const ServerMetrics m = server.metrics();
  const double seq_qps = static_cast<double>(users) / (seq_ms / 1e3);
  const double batch_qps = static_cast<double>(users) / (batch_ms / 1e3);
  const double speedup = seq_ms / batch_ms;

  std::printf("ENGINE THROUGHPUT: sequential match() vs match_batch()\n");
  std::printf("  population: %zu users, %zu key groups, %zu-bit chains\n", users, groups,
              chain_bits);
  std::printf("  engine:     %zu shards, %zu batch threads, k = %zu\n\n", shards, threads,
              k);
  std::printf("  ingest_batch:     %10.1f ms  (%.0f uploads/s)\n", ingest_ms,
              static_cast<double>(users) / (ingest_ms / 1e3));
  std::printf("  sequential match: %10.1f ms  (%.0f queries/s, %llu comparisons)\n",
              seq_ms, seq_qps, static_cast<unsigned long long>(seq_comparisons));
  std::printf("  match_batch:      %10.1f ms  (%.0f queries/s, %llu comparisons, "
              "%llu group sorts)\n",
              batch_ms, batch_qps, static_cast<unsigned long long>(batch_comparisons),
              static_cast<unsigned long long>(m.batch_group_sorts));
  std::printf("\n  results identical: yes (entry-for-entry, %zu queries)\n",
              sequential.size());
  std::printf("  batch speedup: %.1fx  %s\n", speedup,
              speedup >= 2.0 ? "(>= 2x target met)" : "(below 2x target!)");

  if (json_path != nullptr) {
    bench::JsonResult json("engine_throughput");
    json.add("users", static_cast<double>(users));
    json.add("groups", static_cast<double>(groups));
    json.add("ingest_ms", ingest_ms);
    json.add("sequential_ms", seq_ms);
    json.add("batch_ms", batch_ms);
    json.add("sequential_qps", seq_qps);
    json.add("batch_qps", batch_qps);
    json.add("batch_speedup", speedup);
    json.add_hist("ingest_latency", m.ingest_latency_ns);
    json.add_hist("match_latency", m.match_latency_ns);
    json.add_hist("pool_task_run", m.pool.task_run_ns);
    if (!json.write(json_path)) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", json_path);
      return 1;
    }
    std::printf("  json: %s\n", json_path);
  }

  if (smoke) return 0;  // timing thresholds are only meaningful full-size
  return speedup >= 2.0 ? 0 : 1;
}
