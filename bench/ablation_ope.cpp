// Ablation: OPE engine design knobs.
//
//   (1) cost scaling — encryption/decryption time versus plaintext width
//       (the recursion is one level per ciphertext bit);
//   (2) ciphertext slack — the paper sets N = M, which degenerates OPE to
//       the identity; this sweep shows what slack buys (a non-trivial
//       cipher) and what it costs (more recursion levels + bytes);
//   (3) sampler regions — small nodes use exact hypergeometric inversion,
//       large nodes a normal approximation; this measures the pure-exact
//       regime (tiny domains) against the mixed regime.
//
// Run: ./build/bench/ablation_ope
#include <benchmark/benchmark.h>

#include "crypto/drbg.hpp"
#include "ope/ope.hpp"

using namespace smatch;

namespace {

Bytes bench_key() {
  Drbg rng(606);
  return rng.bytes(32);
}

void ope_encrypt(benchmark::State& state) {
  const auto pt_bits = static_cast<std::size_t>(state.range(0));
  const auto slack = static_cast<std::size_t>(state.range(1));
  const Ope ope(bench_key(), pt_bits, pt_bits + slack);
  Drbg rng(707);
  const BigInt m = BigInt::random_below(rng, BigInt{1} << pt_bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ope.encrypt(m));
  }
  state.counters["pt_bits"] = static_cast<double>(pt_bits);
  state.counters["slack_bits"] = static_cast<double>(slack);
}

void ope_decrypt(benchmark::State& state) {
  const auto pt_bits = static_cast<std::size_t>(state.range(0));
  const Ope ope(bench_key(), pt_bits, pt_bits + 64);
  Drbg rng(808);
  const BigInt c = ope.encrypt(BigInt::random_below(rng, BigInt{1} << pt_bits));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ope.decrypt(c));
  }
  state.counters["pt_bits"] = static_cast<double>(pt_bits);
}

// Exact-sampler regime: tiny domains where every recursion node falls
// under the exact-inversion cap.
void ope_exact_regime(benchmark::State& state) {
  const Ope ope(bench_key(), 8, 20);
  Drbg rng(909);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ope.encrypt(BigInt{rng.below(256)}));
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (std::int64_t bits : {64, 256, 1024, 4096, 16384}) {
    benchmark::RegisterBenchmark("ablation_ope/encrypt", ope_encrypt)
        ->Args({bits, 64})
        ->Unit(benchmark::kMillisecond);
  }
  for (std::int64_t slack : {0, 8, 64, 256, 1024}) {
    benchmark::RegisterBenchmark("ablation_ope/slack", ope_encrypt)
        ->Args({512, slack})
        ->Unit(benchmark::kMillisecond);
  }
  for (std::int64_t bits : {64, 1024, 4096}) {
    benchmark::RegisterBenchmark("ablation_ope/decrypt", ope_decrypt)
        ->Arg(bits)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("ablation_ope/exact_regime", ope_exact_regime)
      ->Unit(benchmark::kMicrosecond);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
