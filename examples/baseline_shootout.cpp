// S-MATCH vs homoPM on one concrete workload: a 40-user deployment with
// 6 attributes, 64-bit plaintexts — the paper's headline comparison in
// miniature, with wall-clock numbers from your machine.
//
// Build & run:  ./build/examples/baseline_shootout
#include <chrono>
#include <cstdio>

#include "baseline/homopm.hpp"
#include "core/smatch.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"

using namespace smatch;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

int main() {
  Drbg rng(77);
  const std::size_t num_users = 40;

  DatasetSpec spec;
  spec.name = "shootout";
  spec.num_users = num_users;
  for (int i = 0; i < 6; ++i) {
    spec.attributes.push_back(AttributeSpec::uniform("a" + std::to_string(i), 6.0));
  }
  const Dataset ds = Dataset::generate_clustered(spec, rng, 5, 1);

  // ---------------- S-MATCH ----------------
  SchemeParams params;
  params.attribute_bits = 64;
  params.rs_threshold = 8;
  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());
  const ClientConfig config = make_client_config(spec, params, group);
  RsaOprfServer key_server(RsaKeyPair::generate(rng, 1024));
  MatchServer server;

  std::vector<Client> clients;
  auto t0 = Clock::now();
  for (std::size_t u = 0; u < num_users; ++u) {
    clients.push_back(
        Client::create(static_cast<UserId>(u + 1), ds.profile(u), config).value());
    clients.back().generate_key(key_server, rng);
    (void)server.ingest(clients.back().make_upload(rng));
  }
  const double smatch_client_total = ms_since(t0);

  t0 = Clock::now();
  const QueryResult result = server.match(clients[0].make_query(1, 1), 5).value();
  const double smatch_server = ms_since(t0);

  t0 = Clock::now();
  const std::size_t verified = clients[0].count_verified(result);
  const double smatch_verify = ms_since(t0);

  std::printf("S-MATCH:  client %.2f ms/user (keygen+map+chain+OPE+auth)\n",
              smatch_client_total / num_users);
  std::printf("          server match %.3f ms, verify %zu results in %.2f ms\n\n",
              smatch_server, verified, smatch_verify);

  // ---------------- homoPM ----------------
  HomoPmParams hp;
  hp.plaintext_bits = 64;
  HomoPmServer hserver(hp);
  for (std::size_t u = 0; u < num_users; ++u) {
    hserver.ingest(static_cast<UserId>(u + 1), ds.profile(u));
  }

  t0 = Clock::now();
  PaillierKeyPair keys = PaillierKeyPair::generate(rng, hp.modulus_bits());
  const double homopm_keygen = ms_since(t0);

  HomoPmQuerier querier(ds.profile(0), hp, std::move(keys));
  t0 = Clock::now();
  const HomoPmQuery query = querier.make_query(rng);
  const double homopm_client = ms_since(t0);

  t0 = Clock::now();
  const HomoPmResponse resp = hserver.evaluate(1, query, rng);
  const double homopm_server = ms_since(t0);

  t0 = Clock::now();
  const auto top = querier.rank(resp, 5);
  const double homopm_rank = ms_since(t0);

  std::printf("homoPM:   Paillier keygen %.1f ms (offline)\n", homopm_keygen);
  std::printf("          client encrypt %.1f ms, server %.1f ms (%llu modular ops),"
              " decrypt+rank %.1f ms\n",
              homopm_client, homopm_server,
              static_cast<unsigned long long>(hserver.modular_ops()), homopm_rank);
  std::printf("          verifiable: no (S-MATCH: yes)\n\n");

  const double speedup = (homopm_client + homopm_rank) / (smatch_client_total / num_users);
  std::printf("client-side online speedup of S-MATCH over homoPM: %.0fx\n", speedup);
  return 0;
}
