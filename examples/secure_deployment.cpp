// A production-shaped deployment: everything the paper's Implementation
// section describes, end to end —
//
//   * Encrypt-then-MAC session channels (Section VIII "Communication"),
//     keyed by a Diffie-Hellman handshake and layered as a SecureTransport
//     decorator under the session/RPC stack (net/secure_channel.hpp);
//   * key generation over the wire against a rate-limited OPRF key server,
//     through the same Transport API a TCP deployment uses;
//   * adaptive per-attribute plaintext widths (the Section X extension);
//   * a replay-protected matching server;
//   * verification of every result, plus replay/forgery attempts that
//     the stack rejects — every rejection a typed Status off the wire.
//
// Build & run:  ./build/examples/secure_deployment
#include <cstdio>
#include <memory>

#include "core/service.hpp"
#include "core/smatch.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"
#include "net/inproc_transport.hpp"
#include "net/secure_channel.hpp"
#include "net/server.hpp"

using namespace smatch;

namespace {

/// DH handshake over the deployment group -> per-direction EtM keys.
SessionKeys handshake(const ModpGroup& group, RandomSource& rng) {
  const BigInt client_eph = group.random_exponent(rng);
  const BigInt server_eph = group.random_exponent(rng);
  const BigInt shared = group.pow(group.pow_g(server_eph), client_eph);
  return make_session_keys(shared.to_bytes_padded(group.element_bytes()));
}

}  // namespace

int main() {
  Drbg rng(2026);

  // --- Deployment configuration -------------------------------------------
  DatasetSpec spec;
  spec.name = "secure-deployment";
  spec.num_users = 12;
  spec.attributes = {AttributeSpec::landmark("country", 1.0, 0.7),
                     AttributeSpec::uniform("city", 6.0),
                     AttributeSpec::uniform("interest_a", 6.0),
                     AttributeSpec::uniform("interest_b", 6.0)};

  SchemeParams params;
  params.rs_threshold = 8;
  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());

  ClientConfig config = make_client_config(spec, params, group);
  config.adaptive_widths = AdaptiveWidths::for_target(config.attribute_probs, 64.0).bits;
  std::printf("adaptive widths:");
  for (std::size_t w : config.adaptive_widths) std::printf(" %zu", w);
  std::printf(" bits (security target: 64-bit mapped entropy)\n");

  // --- Infrastructure ------------------------------------------------------
  KeyServer key_server(RsaKeyPair::generate(rng, 1024), /*requests_per_epoch=*/4);
  MatchServer server;
  server.set_replay_protection(true);
  SmatchService service(server, key_server, /*top_k=*/5);
  NetServer net(service.dispatcher());
  ServerConfig net_config;  // in-process only: no tcp_port
  net_config.dispatch_workers = 2;
  if (Status s = net.start(net_config); !s.is_ok()) {
    std::printf("server start failed: %s\n", s.to_string().c_str());
    return 1;
  }

  // --- Enrolment: each phone runs Keygen and uploads through an
  // Encrypt-then-MAC channel under the session layer.
  const Dataset population = Dataset::generate_clustered(spec, rng, 3, 0);
  std::vector<Client> phones;
  for (std::size_t u = 0; u < population.num_users(); ++u) {
    phones.push_back(
        Client::create(static_cast<UserId>(u + 1), population.profile(u), config).value());
    Client& phone = phones.back();

    // DH handshake -> EtM session over an in-process transport pair; the
    // server end is served by the same worker pool a TCP listener feeds.
    const SessionKeys session = handshake(*group, rng);
    auto [phone_end, server_end] = InProcTransport::make_pair();
    auto secure_phone = SecureTransport::client_end(std::move(phone_end), session, rng);
    net.attach(SecureTransport::server_end(std::move(server_end), session, rng));

    RemoteClient remote(phone, *secure_phone, key_server.public_key());
    if (Status s = remote.enroll(rng); !s.is_ok()) {
      std::printf("keygen refused: %s\n", s.to_string().c_str());
      return 1;
    }
    if (Status s = remote.upload(rng); !s.is_ok()) {
      std::printf("upload refused: %s\n", s.to_string().c_str());
      return 1;
    }
    (void)secure_phone->close();
  }
  std::printf("enrolled %zu phones in %zu key groups; key server evaluations: %llu\n\n",
              server.num_users(), server.num_groups(),
              static_cast<unsigned long long>(key_server.evaluations()));

  // --- Query + verify ------------------------------------------------------
  Client& alice = phones[0];
  const SessionKeys alice_session = handshake(*group, rng);
  auto [alice_end, alice_server_end] = InProcTransport::make_pair();
  auto alice_secure =
      SecureTransport::client_end(std::move(alice_end), alice_session, rng);
  net.attach(SecureTransport::server_end(std::move(alice_server_end), alice_session, rng));
  RemoteClient alice_remote(alice, *alice_secure, key_server.public_key());

  const auto report = alice_remote.query(1, /*timestamp=*/5000).value();
  std::printf("alice's top-5 query returned %zu verified match(es), %zu rejected\n",
              report.verified.size(), report.rejected);

  // --- Attacks the stack rejects -------------------------------------------
  // 1. Replayed query timestamp: the server's typed status comes back
  // through the session envelope, not as an exception.
  const auto replayed = alice_remote.query(2, 5000);
  if (!replayed.is_ok() && replayed.code() == StatusCode::kStaleTimestamp) {
    std::printf("replayed query: rejected by the server (%s; %llu rejection(s) so far)\n",
                replayed.status().to_string().c_str(),
                static_cast<unsigned long long>(server.metrics().replay_rejections));
  } else {
    std::printf("replayed query: ACCEPTED (bug!)\n");
  }
  // 2. Key-server brute force beyond the per-epoch budget: each probe
  // past the budget comes back as kBudgetExhausted over the wire.
  // Distinct session seed: request ids must not collide with the ids
  // alice's RemoteClient already used on this connection.
  SessionClient probe_session(*alice_secure, {}, /*seed=*/0xa11ce);
  std::size_t refused = 0;
  for (std::uint32_t guess = 0; guess < 8; ++guess) {
    KeygenSession probe(alice.keygen(), Profile{guess, guess, guess, guess},
                        key_server.public_key(), alice.id(), rng);
    if (probe_session.call(MessageKind::kOprf, probe.request_wire()).code() ==
        StatusCode::kBudgetExhausted) {
      ++refused;
    }
  }
  std::printf("profile brute-force probes refused by rate limit: %zu/8 "
              "(%llu budget rejections total)\n",
              refused,
              static_cast<unsigned long long>(key_server.metrics().budget_rejections));
  // 3. Forged match results: tampered tokens fail Vf locally.
  const QueryRequest forged_query = alice.make_query(3, 5001);
  const QueryResult honest = server.match(forged_query, 5).value();
  const QueryResult forged = tamper_result(honest, ServerAttack::kForgeToken, rng);
  std::printf("forged results verifying: %zu/%zu (expect 0)\n",
              alice.count_verified(forged), forged.entries.size());
  (void)alice_secure->close();
  net.stop();
  return 0;
}
