// A production-shaped deployment: everything the paper's Implementation
// section describes, end to end —
//
//   * Encrypt-then-MAC session channels (Section VIII "Communication"),
//     keyed by a Diffie-Hellman handshake;
//   * key generation over the wire against a rate-limited OPRF key server;
//   * adaptive per-attribute plaintext widths (the Section X extension);
//   * a replay-protected matching server;
//   * verification of every result, plus a replay/forgery attempt that
//     the stack rejects.
//
// Build & run:  ./build/examples/secure_deployment
#include <cstdio>
#include <memory>

#include "core/smatch.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"
#include "net/secure_channel.hpp"

using namespace smatch;

int main() {
  Drbg rng(2026);

  // --- Deployment configuration -------------------------------------------
  DatasetSpec spec;
  spec.name = "secure-deployment";
  spec.num_users = 12;
  spec.attributes = {AttributeSpec::landmark("country", 1.0, 0.7),
                     AttributeSpec::uniform("city", 6.0),
                     AttributeSpec::uniform("interest_a", 6.0),
                     AttributeSpec::uniform("interest_b", 6.0)};

  SchemeParams params;
  params.rs_threshold = 8;
  auto group = std::make_shared<const ModpGroup>(ModpGroup::test_512());

  ClientConfig config = make_client_config(spec, params, group);
  config.adaptive_widths = AdaptiveWidths::for_target(config.attribute_probs, 64.0).bits;
  std::printf("adaptive widths:");
  for (std::size_t w : config.adaptive_widths) std::printf(" %zu", w);
  std::printf(" bits (security target: 64-bit mapped entropy)\n");

  // --- Infrastructure ------------------------------------------------------
  KeyServer key_server(RsaKeyPair::generate(rng, 1024), /*requests_per_epoch=*/4);
  MatchServer server;
  server.set_replay_protection(true);

  // --- Enrolment: each phone runs Keygen over the wire and uploads through
  // an Encrypt-then-MAC session.
  const Dataset population = Dataset::generate_clustered(spec, rng, 3, 0);
  std::vector<Client> phones;
  for (std::size_t u = 0; u < population.num_users(); ++u) {
    phones.push_back(
        Client::create(static_cast<UserId>(u + 1), population.profile(u), config).value());
    Client& phone = phones.back();

    // DH handshake -> session keys for the EtM channel.
    const BigInt client_eph = group->random_exponent(rng);
    const BigInt server_eph = group->random_exponent(rng);
    const BigInt shared = group->pow(group->pow_g(server_eph), client_eph);
    const SessionKeys session =
        make_session_keys(shared.to_bytes_padded(group->element_bytes()));
    SecureSender phone_tx(session.client_to_server);
    SecureReceiver server_rx(session.client_to_server);

    // Wire-level Keygen (rate limited at the key server).
    KeygenSession keygen(phone.keygen(), phone.profile(), key_server.public_key(),
                         phone.id(), rng);
    const StatusOr<Bytes> key_resp = key_server.handle(keygen.request_wire());
    if (!key_resp.is_ok()) {
      std::printf("keygen refused: %s\n", key_resp.status().to_string().c_str());
      return 1;
    }
    StatusOr<ProfileKey> key = keygen.finalize(*key_resp);
    if (!key.is_ok()) {
      std::printf("keygen finalize failed: %s\n", key.status().to_string().c_str());
      return 1;
    }
    phone.set_profile_key(std::move(*key), phone.auth().random_secret(rng));

    // Sealed upload: the server opens and ingests.
    const Bytes sealed = phone_tx.seal(phone.make_upload(rng).serialize(), rng);
    (void)server.ingest(UploadMessage::parse(server_rx.open(sealed)).value());
  }
  std::printf("enrolled %zu phones in %zu key groups; key server evaluations: %llu\n\n",
              server.num_users(), server.num_groups(),
              static_cast<unsigned long long>(key_server.evaluations()));

  // --- Query + verify ------------------------------------------------------
  Client& alice = phones[0];
  const QueryRequest query = alice.make_query(1, /*timestamp=*/5000);
  const QueryResult result = server.match(query, 5).value();
  const auto report = alice.verify_result(query, result).value();
  std::printf("alice's top-5 query returned %zu match(es); %zu verified\n",
              result.entries.size(), report.verified.size());

  // --- Attacks the stack rejects -------------------------------------------
  // 1. Replayed query timestamp: a typed status, not an exception.
  const auto replayed = server.match(alice.make_query(2, 5000), 5);
  if (!replayed.is_ok() && replayed.code() == StatusCode::kStaleTimestamp) {
    std::printf("replayed query: rejected by the server (%s; %llu rejection(s) so far)\n",
                replayed.status().to_string().c_str(),
                static_cast<unsigned long long>(server.metrics().replay_rejections));
  } else {
    std::printf("replayed query: ACCEPTED (bug!)\n");
  }
  // 2. Key-server brute force beyond the per-epoch budget: each probe
  // past the budget comes back as kBudgetExhausted (a status, never an
  // exception).
  std::size_t refused = 0;
  for (std::uint32_t guess = 0; guess < 8; ++guess) {
    KeygenSession probe(alice.keygen(), Profile{guess, guess, guess, guess},
                        key_server.public_key(), alice.id(), rng);
    if (key_server.handle(probe.request_wire()).code() == StatusCode::kBudgetExhausted) {
      ++refused;
    }
  }
  std::printf("profile brute-force probes refused by rate limit: %zu/8 "
              "(%llu budget rejections total)\n",
              refused,
              static_cast<unsigned long long>(key_server.metrics().budget_rejections));
  // 3. Forged match results.
  const QueryResult forged = tamper_result(result, ServerAttack::kForgeToken, rng);
  std::printf("forged results verifying: %zu/%zu (expect 0)\n",
              alice.count_verified(forged), forged.entries.size());
  return 0;
}
