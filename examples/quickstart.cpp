// Quickstart: the smallest complete S-MATCH deployment.
//
// Three users (two with similar profiles, one different), one untrusted
// matching server, one OPRF key server. Walks the full pipeline:
//   Keygen -> InitData -> Enc -> upload -> Match -> Auth/Vf.
//
// Build & run:  ./build/examples/quickstart
#include <array>
#include <cstdio>

#include "core/smatch.hpp"
#include "crypto/drbg.hpp"
#include "datasets/dataset.hpp"

using namespace smatch;

int main() {
  Drbg rng(2014);  // seeded for a reproducible demo

  // --- Deployment-wide public configuration -------------------------------
  // Four attributes (say: education, city, interest A, interest B), each
  // with 64 possible values and published population statistics.
  DatasetSpec spec;
  spec.name = "quickstart";
  spec.num_users = 3;
  for (const char* name : {"education", "city", "interest_a", "interest_b"}) {
    spec.attributes.push_back(AttributeSpec::uniform(name, 6.0));
  }

  SchemeParams params;
  params.attribute_bits = 64;  // the paper's default plaintext size
  params.rs_threshold = 8;     // RS decoder threshold theta

  auto group = std::make_shared<const ModpGroup>(ModpGroup::rfc3526_2048());
  const ClientConfig config = make_client_config(spec, params, group);

  // --- Infrastructure ------------------------------------------------------
  KeyServer key_server(RsaKeyPair::generate(rng, 1024));  // rate-limited OPRF service
  MatchServer server;                                     // untrusted matcher

  // --- Users ---------------------------------------------------------------
  // Client::create validates the profile against the published config and
  // reports misconfiguration as a Status (value() asserts success here).
  Client alice = Client::create(1, Profile{20, 33, 40, 50}, config).value();
  Client bob = Client::create(2, Profile{22, 30, 38, 49}, config).value();   // close to Alice
  Client carol = Client::create(3, Profile{60, 5, 10, 62}, config).value();  // far from both

  // Keygen over the wire (one batched OPRF round), then upload. Failures
  // come back as a Status per client — kBudgetExhausted when the key
  // server's rate limit trips, kMalformedMessage for damaged wire.
  const std::array<Client*, 3> users = {&alice, &bob, &carol};
  for (const StatusOr<UploadMessage>& up : enroll_and_upload_batch(users, key_server, rng)) {
    if (!up.is_ok()) {
      std::printf("enrollment failed: %s\n", up.status().to_string().c_str());
      return 1;
    }
    const Status s = server.ingest(*up);  // InitData + Enc + Auth
    if (!s.is_ok()) std::printf("upload rejected: %s\n", s.to_string().c_str());
  }

  std::printf("users uploaded: %zu, key groups on server: %zu\n",
              server.num_users(), server.num_groups());
  std::printf("alice/bob share a key: %s\n",
              alice.profile_key().index == bob.profile_key().index ? "yes" : "no");
  std::printf("alice/carol share a key: %s\n",
              alice.profile_key().index == carol.profile_key().index ? "yes" : "no");

  // --- Alice queries for her top-5 nearest profiles ------------------------
  const QueryRequest query = alice.make_query(/*query_id=*/1, /*timestamp=*/1700000000);
  const StatusOr<QueryResult> matched = server.match(query, /*k=*/5);
  if (!matched.is_ok()) {
    std::printf("match failed: %s\n", matched.status().to_string().c_str());
    return 1;
  }
  const QueryResult& result = *matched;
  std::printf("\nquery returned %zu match(es):\n", result.entries.size());
  for (const auto& entry : result.entries) {
    const bool ok = alice.verify_entry(entry);  // Vf
    std::printf("  user %u  verification: %s\n", entry.user_id, ok ? "PASS" : "FAIL");
  }

  // --- A malicious server forging results is caught ------------------------
  const QueryResult forged = tamper_result(result, ServerAttack::kForgeToken, rng);
  std::printf("\nforged result: %zu of %zu entries verify (expect 0)\n",
              alice.count_verified(forged), forged.entries.size());

  return 0;
}
